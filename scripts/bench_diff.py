#!/usr/bin/env python3
"""Compare two rbsim bench JSON dumps and flag IPC regressions.

Usage: bench_diff.py [--threshold PCT] [--speed-gate PCT] old.json new.json

Cells are matched on (machine, workload); per-machine harmonic-mean IPC
is recomputed over the *common* cells only, so dumps taken with
different --machines/--scale filters still compare what they share.
Exits 1 when any machine's harmonic-mean IPC dropped by more than the
threshold (default 1%), 0 otherwise (including when there is nothing
comparable, which is reported).

A cell with non-positive IPC (a deadlock-aborted or budget-capped run
reports 0.0) cannot be averaged harmonically and means the dump itself
is broken; it is reported with its (machine, workload) coordinates and
the file it came from, and the script exits 2 — never a
ZeroDivisionError traceback, and never a silent pass.

Cells carrying a "ci95" field (sampled runs: IPC is a mean over
measured windows with a 95% confidence half-width) are gated
statistically instead of exactly: the cell fails only when the new IPC
falls below the old by more than the combined half-widths
(|new - old| beyond ci_old + ci_new, in the regression direction).
A sampled dump compared against a full-detail dump (ci95 on one side
only) therefore gates on the sampled run's own CI — exactly the
sampled-vs-full acceptance check. Cells without ci95 on either side
keep the exact harmonic-mean threshold gate.

When both dumps carry per-cell host speed (sim_khz, written since the
wakeup-array scheduler landed), a second section reports per-machine
harmonic-mean simulation-speed deltas. By default it is informational
only — host speed is noisy and machine-dependent. With --speed-gate PCT
the section becomes gating: any machine whose harmonic-mean sim_khz
dropped by more than PCT percent fails the run (exit 1), which CI uses
as a coarse host-performance ratchet (docs/PERFORMANCE.md). Pick PCT
well above run-to-run noise on shared runners.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema != "rbsim-bench-1":
        sys.exit(f"{path}: unsupported schema {schema!r}")
    return doc


def cell_map(doc):
    return {(c["machine"], c["workload"]): c["ipc"] for c in doc["cells"]}


def speed_map(doc):
    return {(c["machine"], c["workload"]): c["sim_khz"]
            for c in doc["cells"] if c.get("sim_khz", 0) > 0}


def ci_map(doc):
    """Cells that carry a 95% CI half-width (sampled runs)."""
    return {(c["machine"], c["workload"]): c["ci95"]
            for c in doc["cells"] if "ci95" in c}


def hmean(xs):
    """Harmonic mean. Refuses empty and non-positive inputs with a
    message instead of raising ZeroDivisionError — callers are expected
    to have reported the offending cells already (check_cells)."""
    if not xs:
        sys.exit("bench_diff: harmonic mean of an empty series "
                 "(no cells for a machine?)")
    if min(xs) <= 0:
        sys.exit("bench_diff: harmonic mean of a non-positive series")
    return len(xs) / sum(1.0 / x for x in xs)


def check_cells(path, cells, keys):
    """Report every non-positive IPC cell in `cells` (restricted to
    `keys`) with its coordinates, and exit 2 when any exist."""
    bad = [(k, cells[k]) for k in keys if cells[k] <= 0]
    for (machine, workload), ipc in bad:
        print(f"bench_diff: {path}: non-positive IPC {ipc:g} in cell "
              f"(machine={machine!r}, workload={workload!r}) — "
              f"deadlock-aborted or budget-capped run?", file=sys.stderr)
    if bad:
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--threshold", type=float, default=1.0,
                    help="max tolerated hmean-IPC drop, percent "
                         "(default 1.0)")
    ap.add_argument("--speed-gate", type=float, default=None,
                    metavar="PCT",
                    help="also fail when a machine's hmean sim_khz "
                         "dropped by more than PCT percent (default: "
                         "speed is informational only)")
    ap.add_argument("old")
    ap.add_argument("new")
    args = ap.parse_args()

    old_doc, new_doc = load(args.old), load(args.new)
    old_cells, new_cells = cell_map(old_doc), cell_map(new_doc)
    common = sorted(set(old_cells) & set(new_cells))
    if not common:
        print("bench_diff: no common (machine, workload) cells; "
              "nothing to compare")
        return 0

    machines = []
    for machine, _ in common:
        if machine not in machines:
            machines.append(machine)
    if not machines:
        sys.exit("bench_diff: common cells name no machines; "
                 "malformed dumps?")

    # Broken dumps fail loudly before any averaging: a deadlocked run's
    # 0.0 IPC must never be skipped into a green exit.
    check_cells(args.old, old_cells, common)
    check_cells(args.new, new_cells, common)

    # Cells with a CI on either side are gated statistically per cell;
    # the rest go through the exact harmonic-mean threshold gate.
    old_ci, new_ci = ci_map(old_doc), ci_map(new_doc)
    ci_keys = [k for k in common if k in old_ci or k in new_ci]
    exact = [k for k in common if k not in set(ci_keys)]

    print(f"comparing {len(common)} common cells across "
          f"{len(machines)} machines "
          f"({old_doc['bench']} vs {new_doc['bench']})")
    width = max(len(m) for m in machines)
    failures = []
    for machine in machines:
        old_ipcs = [old_cells[k] for k in exact if k[0] == machine]
        new_ipcs = [new_cells[k] for k in exact if k[0] == machine]
        if not old_ipcs:
            continue  # only CI-gated cells for this machine
        old_h, new_h = hmean(old_ipcs), hmean(new_ipcs)
        delta = 100.0 * (new_h / old_h - 1.0)
        flag = ""
        if delta < -args.threshold:
            failures.append(machine)
            flag = f"  REGRESSION (> {args.threshold:g}% drop)"
        print(f"  {machine:<{width}}  hmean IPC {old_h:.4f} -> "
              f"{new_h:.4f}  ({delta:+.2f}%){flag}")

    if ci_keys:
        print(f"CI-gated cells ({len(ci_keys)}; fail when the drop "
              "exceeds the combined 95% CI half-widths):")
        for k in ci_keys:
            machine, workload = k
            allowed = old_ci.get(k, 0.0) + new_ci.get(k, 0.0)
            drop = old_cells[k] - new_cells[k]
            flag = ""
            if drop > allowed:
                failures.append(f"{machine}/{workload}")
                flag = "  REGRESSION (beyond combined CI)"
            print(f"  {machine:<{width}}  {workload:<10}  IPC "
                  f"{old_cells[k]:.4f} -> {new_cells[k]:.4f}  "
                  f"(CI +/- {allowed:.4f}){flag}")

    old_speed, new_speed = speed_map(old_doc), speed_map(new_doc)
    speed_common = [k for k in common
                    if k in old_speed and k in new_speed]
    speed_failures = []
    gating = args.speed_gate is not None
    if speed_common:
        sched = (old_doc.get("scheduler", "?"),
                 new_doc.get("scheduler", "?"))
        mode = (f"gating at {args.speed_gate:g}%" if gating
                else "informational, non-gating")
        print(f"host speed ({mode}; scheduler "
              f"{sched[0]} vs {sched[1]}):")
        for machine in machines:
            old_khz = [old_speed[k] for k in speed_common
                       if k[0] == machine]
            new_khz = [new_speed[k] for k in speed_common
                       if k[0] == machine]
            if not old_khz or not new_khz:
                continue
            old_h, new_h = hmean(old_khz), hmean(new_khz)
            delta = 100.0 * (new_h / old_h - 1.0)
            flag = ""
            if gating and delta < -args.speed_gate:
                speed_failures.append(machine)
                flag = f"  TOO SLOW (> {args.speed_gate:g}% drop)"
            print(f"  {machine:<{width}}  hmean sim speed "
                  f"{old_h:.0f} -> {new_h:.0f} kcyc/s  "
                  f"({delta:+.1f}%){flag}")
    elif gating:
        # A gate that silently skips is worse than no gate.
        sys.exit("bench_diff: --speed-gate given but no common cells "
                 "carry sim_khz in both dumps")

    if failures:
        print(f"bench_diff: FAIL — {len(failures)} machine(s) regressed: "
              + ", ".join(failures))
        return 1
    if speed_failures:
        print(f"bench_diff: FAIL — {len(speed_failures)} machine(s) "
              "simulate too slowly: " + ", ".join(speed_failures))
        return 1
    print("bench_diff: OK — no machine regressed beyond "
          f"{args.threshold:g}%"
          + (f" (speed gate {args.speed_gate:g}% passed)" if gating
             else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
