#!/bin/sh
# Reproduce everything: build, run the full test suite (including the
# lockstep co-simulated integration tests), then regenerate every table
# and figure of the paper into bench_output.txt.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt
echo "done: see test_output.txt and bench_output.txt"
