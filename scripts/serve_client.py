#!/usr/bin/env python3
"""JSON-lines client for rbsim-serve (docs/SERVING.md).

Boots (or connects to) a serve instance, submits a (machine, workload)
grid, and writes the responses as an rbsim-bench-1 JSON dump that
scripts/bench_diff.py consumes directly. Submitting the same grid twice
over one server session exercises the result cache; --expect-cached
asserts every response of the round was a cache hit.

Usage:
  # spawn a server on stdio, run the fig12 grid, write a bench dump
  serve_client.py --serve-bin build/src/rbsim-serve \
      --grid fig12 --json fig12_serve.json

  # second round against the same session must be all cache hits
  (handled internally: --rounds 2 --expect-cached-round 2)

  # or talk to an already-running TCP server
  serve_client.py --connect 127.0.0.1:7774 --grid fig12 --json out.json
"""

import argparse
import json
import socket
import subprocess
import sys

FIG12_MACHINES = [
    ("base", "Baseline"),
    ("rblim", "RB-limited"),
    ("rbfull", "RB-full"),
    ("ideal", "Ideal"),
]
SPEC95 = ["go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl",
          "vortex"]


class StdioServer:
    """rbsim-serve child on stdin/stdout pipes."""

    def __init__(self, serve_bin, workers):
        cmd = [serve_bin]
        if workers:
            cmd += ["--workers", str(workers)]
        self.proc = subprocess.Popen(cmd, stdin=subprocess.PIPE,
                                     stdout=subprocess.PIPE, text=True)

    def send(self, line):
        self.proc.stdin.write(line + "\n")
        self.proc.stdin.flush()

    def recv(self):
        line = self.proc.stdout.readline()
        if not line:
            sys.exit("serve_client: server closed its stdout")
        return line

    def close(self):
        self.proc.stdin.close()
        self.proc.wait(timeout=60)


class TcpServer:
    """Connection to an already-running rbsim-serve --port."""

    def __init__(self, host_port):
        host, _, port = host_port.rpartition(":")
        self.sock = socket.create_connection((host, int(port)))
        self.rfile = self.sock.makefile("r")

    def send(self, line):
        self.sock.sendall((line + "\n").encode())

    def recv(self):
        line = self.rfile.readline()
        if not line:
            sys.exit("serve_client: server closed the connection")
        return line

    def close(self):
        self.sock.close()


def run_round(server, tag, scale, scheduler):
    """Submit the grid, wait for every response, return cells by id."""
    ids = {}
    for wl in SPEC95:
        for alias, label in FIG12_MACHINES:
            jid = f"{tag}-{alias}-{wl}"
            ids[jid] = (label, wl)
            server.send(json.dumps({
                "id": jid, "workload": wl, "scale": scale,
                "machine": alias, "width": 4, "scheduler": scheduler,
            }))
    cells = {}
    while len(cells) < len(ids):
        resp = json.loads(server.recv())
        jid = resp.get("id")
        if jid not in ids or jid in cells:
            sys.exit(f"serve_client: unexpected response id {jid!r}")
        if not resp.get("ok"):
            sys.exit(f"serve_client: job {jid} failed: "
                     f"{resp.get('code')}: {resp.get('error')}")
        cells[jid] = resp
    return [cells[jid] for jid in ids]  # submission order


def to_bench_json(cells, scale, scheduler):
    """Assemble responses into an rbsim-bench-1 dump for bench_diff."""
    machines = []
    for c in cells:
        if c["machine"] not in machines:
            machines.append(c["machine"])
    return {
        "schema": "rbsim-bench-1",
        "bench": "serve_client",
        "scale": scale,
        "scheduler": scheduler,
        "machines": machines,
        "cells": [{
            "machine": c["machine"],
            "workload": c["workload"],
            "ipc": c["ipc"],
            "host_ms": c["host_ms"],
            "sim_khz": c["sim_khz"],
            "stats": c["stats"],
        } for c in cells],
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--serve-bin", help="spawn this rbsim-serve on stdio")
    ap.add_argument("--connect", help="host:port of a running server")
    ap.add_argument("--grid", choices=["fig12"], default="fig12")
    ap.add_argument("--scale", type=int, default=1)
    ap.add_argument("--scheduler", default="wakeup",
                    choices=["wakeup", "polled", "oracle"])
    ap.add_argument("--workers", type=int, default=0)
    ap.add_argument("--rounds", type=int, default=2,
                    help="grid submissions over one session (default 2)")
    ap.add_argument("--expect-cached-round", type=int, default=2,
                    help="assert every cell of this round is a cache "
                         "hit (0 disables)")
    ap.add_argument("--json", help="write round 1 as an rbsim-bench-1 "
                                   "dump here")
    args = ap.parse_args()

    if bool(args.serve_bin) == bool(args.connect):
        ap.error("exactly one of --serve-bin / --connect")
    server = (StdioServer(args.serve_bin, args.workers)
              if args.serve_bin else TcpServer(args.connect))

    first = None
    for rnd in range(1, args.rounds + 1):
        cells = run_round(server, f"r{rnd}", args.scale, args.scheduler)
        hits = sum(1 for c in cells if c.get("cache_hit"))
        print(f"serve_client: round {rnd}: {len(cells)} cells, "
              f"{hits} cache hits")
        if rnd == 1:
            first = cells
            if hits:
                sys.exit("serve_client: round 1 against a fresh session "
                         "must not hit the cache")
        else:
            for a, b in zip(first, cells):
                if a["ipc"] != b["ipc"]:
                    sys.exit(f"serve_client: {a['machine']}/"
                             f"{a['workload']} ipc changed across rounds")
        if rnd == args.expect_cached_round and hits != len(cells):
            sys.exit(f"serve_client: round {rnd} expected all "
                     f"{len(cells)} cells cached, got {hits}")

    server.close()
    if args.json:
        with open(args.json, "w") as f:
            json.dump(to_bench_json(first, args.scale, args.scheduler),
                      f, indent=2)
        print(f"serve_client: wrote {args.json}")


if __name__ == "__main__":
    main()
