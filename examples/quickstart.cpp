/**
 * @file
 * Quickstart: assemble a small TinyAlpha program, run it on the paper's
 * four machine models, and print what happened.
 *
 *   $ ./build/examples/quickstart
 *
 * This walks the whole public API surface in ~60 lines: the assembler,
 * the machine configurations, the simulator with its built-in
 * co-simulation (every retired instruction is verified against the
 * functional reference model), and the result statistics.
 */

#include <cstdio>

#include "func/interp.hh"
#include "isa/assembler.hh"
#include "sim/simulator.hh"

int
main()
{
    using namespace rbsim;

    // A toy kernel: sum an array, track the maximum, and store both.
    const Program prog = assemble(R"(
        .name quickstart
        .org 0x20000
        .quad 12, 7, 41, 3, 25, 18, 9, 33
            ldiq r1, 0x20000     ; base
            ldiq r2, 8           ; count
            ldiq r3, 0           ; sum
            ldiq r4, 0           ; max
        loop:
            ldq  r5, 0(r1)
            addq r3, r5, r3      ; sum += *p
            cmplt r4, r5, r6
            cmovne r6, r5, r4    ; max = max(max, *p)
            lda  r1, 8(r1)       ; p++
            subq r2, #1, r2
            bne  r2, loop
            stq  r3, 0(r1)
            stq  r4, 8(r1)
            halt
    )");

    std::printf("running '%s' (%zu static instructions) on the paper's "
                "four machines:\n\n",
                prog.name.c_str(), prog.code.size());
    std::printf("%-12s %8s %8s %6s %12s\n", "machine", "cycles",
                "retired", "IPC", "verified");

    for (MachineKind kind : {MachineKind::Baseline, MachineKind::RbLimited,
                             MachineKind::RbFull, MachineKind::Ideal}) {
        const MachineConfig cfg = MachineConfig::make(kind, 8);
        const SimResult r = simulate(cfg, prog);
        std::printf("%-12s %8llu %8llu %6.2f %9llu ok\n",
                    cfg.label.c_str(),
                    static_cast<unsigned long long>(r.counter("core.cycles")),
                    static_cast<unsigned long long>(r.counter("core.retired")),
                    r.ipc(),
                    static_cast<unsigned long long>(r.counter("cosim.checked")));
    }

    // Inspect the architectural result through the reference interpreter.
    Interp in(prog);
    in.run(100000);
    std::printf("\nresult: sum = %llu, max = %llu\n",
                static_cast<unsigned long long>(in.mem().read64(0x20040)),
                static_cast<unsigned long long>(in.mem().read64(0x20048)));
    return 0;
}
