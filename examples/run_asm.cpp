/**
 * @file
 * rbsim's command-line runner: assemble a TinyAlpha .s file and run it
 * on any machine configuration, with per-run statistics.
 *
 *   usage: run_asm FILE.s [options]
 *     --machine base|rblim|rbfull|ideal   (default rbfull)
 *     --width 4|8                         (default 8)
 *     --no-levels 1,2,3                   remove bypass levels (Ideal)
 *     --no-hole-sched                     disable Fig. 8 hole wakeup
 *     --steer-dep                         dependence-aware steering
 *     --scale-cluster N                   cross-cluster delay (default 1)
 *     --max-cycles N                      safety cap (default 100M)
 *     --dump-mem ADDR,N                   print N quadwords at ADDR
 *     --trace FILE                        O3PipeView pipeline trace
 *                                         (load in Konata)
 *     --trace-last N                      ring-buffer the last N insts,
 *                                         dumped on failure (to FILE if
 *                                         --trace given, else stderr)
 *
 * Example:
 *   ./build/examples/run_asm prog.s --machine rblim --width 4
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "isa/assembler.hh"
#include "sim/simulator.hh"
#include "trace/tracer.hh"

namespace
{

using namespace rbsim;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s FILE.s [--machine base|rblim|rbfull|ideal] "
                 "[--width 4|8]\n"
                 "          [--no-levels 1,2,3] [--no-hole-sched] "
                 "[--steer-dep]\n"
                 "          [--scale-cluster N] [--max-cycles N] "
                 "[--dump-mem ADDR,N]\n"
                 "          [--trace FILE] [--trace-last N]\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);

    std::string machine = "rbfull";
    unsigned width = 8;
    std::uint8_t level_mask = 0b111;
    bool limited_levels = false;
    bool hole_sched = true;
    bool steer_dep = false;
    unsigned cluster_delay = 1;
    Cycle max_cycles = 100'000'000;
    Addr dump_addr = 0;
    unsigned dump_count = 0;
    std::string trace_file;
    std::size_t trace_last = 0;

    const char *path = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--machine") {
            machine = next();
        } else if (arg == "--width") {
            width = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--no-levels") {
            limited_levels = true;
            for (const char *p = next(); *p; ++p) {
                if (*p >= '1' && *p <= '3')
                    level_mask &= static_cast<std::uint8_t>(
                        ~(1u << (*p - '1')));
            }
        } else if (arg == "--no-hole-sched") {
            hole_sched = false;
        } else if (arg == "--steer-dep") {
            steer_dep = true;
        } else if (arg == "--scale-cluster") {
            cluster_delay = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--max-cycles") {
            max_cycles = static_cast<Cycle>(std::atoll(next()));
        } else if (arg == "--trace") {
            trace_file = next();
        } else if (arg == "--trace-last") {
            trace_last = static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--dump-mem") {
            const char *spec = next();
            char *comma = nullptr;
            dump_addr = std::strtoull(spec, &comma, 0);
            if (comma && *comma == ',')
                dump_count = static_cast<unsigned>(
                    std::atoi(comma + 1));
        } else {
            usage(argv[0]);
        }
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 1;
    }
    std::stringstream source;
    source << in.rdbuf();

    Program prog;
    try {
        prog = assemble(source.str());
    } catch (const AsmError &e) {
        std::fprintf(stderr, "%s: %s\n", path, e.what());
        return 1;
    }

    MachineKind kind = MachineKind::RbFull;
    if (machine == "base")
        kind = MachineKind::Baseline;
    else if (machine == "rblim")
        kind = MachineKind::RbLimited;
    else if (machine == "ideal")
        kind = MachineKind::Ideal;
    else if (machine != "rbfull")
        usage(argv[0]);

    MachineConfig cfg = limited_levels && kind == MachineKind::Ideal
        ? MachineConfig::makeIdealLimited(width, level_mask)
        : MachineConfig::make(kind, width);
    cfg.holeAwareScheduling = hole_sched;
    cfg.crossClusterDelay = cluster_delay;
    if (steer_dep)
        cfg.steering = Steering::DependenceAware;

    SimOptions opts;
    opts.maxCycles = max_cycles;

    std::ofstream trace_out;
    std::unique_ptr<trace::Tracer> tracer;
    if (!trace_file.empty() || trace_last) {
        trace::Tracer::Options topts;
        if (!trace_file.empty() && !trace_last) {
            trace_out.open(trace_file);
            if (!trace_out) {
                std::fprintf(stderr, "cannot open %s\n",
                             trace_file.c_str());
                return 1;
            }
            topts.stream = &trace_out;
        }
        topts.ringCap = trace_last;
        topts.codeBase = prog.codeBase;
        topts.decodeDepth = cfg.fetchDecodeDepth;
        topts.renameDepth = cfg.renameDepth;
        tracer = std::make_unique<trace::Tracer>(topts);
        opts.tracer = tracer.get();
    }

    // On failure (cosim mismatch, deadlock, cycle budget): dump the
    // ring buffer of the last N instructions to FILE or stderr.
    auto dump_ring = [&]() {
        if (!tracer || !trace_last)
            return;
        const std::string doc = tracer->renderRing();
        if (!trace_file.empty()) {
            std::ofstream out(trace_file);
            out << doc;
            std::fprintf(stderr,
                         "pipeline trace of last %zu instructions: %s\n",
                         tracer->ring().size(), trace_file.c_str());
        } else {
            std::fprintf(stderr,
                         "pipeline trace of last %zu instructions:\n%s",
                         tracer->ring().size(), doc.c_str());
        }
    };

    SimResult r;
    OooCore core(cfg, prog);
    try {
        r = simulate(cfg, prog, opts);
        // A second (identical, deterministic) run exposes committed
        // memory for --dump-mem.
        if (dump_count)
            core.run(max_cycles);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "simulation failed: %s\n", e.what());
        dump_ring();
        return 1;
    }

    std::printf("%s (%zu static insts) on %s %u-wide\n",
                prog.name.c_str(), prog.code.size(), cfg.label.c_str(),
                width);
    if (!r.halted) {
        std::printf("DID NOT HALT within %llu cycles\n",
                    static_cast<unsigned long long>(max_cycles));
        dump_ring();
        return 1;
    }
    std::printf("cycles %llu  retired %llu  IPC %.3f  (verified %llu)\n",
                static_cast<unsigned long long>(r.counter("core.cycles")),
                static_cast<unsigned long long>(r.counter("core.retired")), r.ipc(),
                static_cast<unsigned long long>(r.counter("cosim.checked")));
    std::printf("branch accuracy %.2f%%  flushes %llu  dl1 miss %.1f%%"
                "  l2 miss %.1f%%\n",
                100.0 * r.branchAccuracy(),
                static_cast<unsigned long long>(r.counter("core.flushes")),
                r.counter("dl1.accesses")
                    ? 100.0 * r.counter("dl1.misses") / double(r.counter("dl1.accesses")) : 0.0,
                r.counter("l2.accesses")
                    ? 100.0 * r.counter("l2.misses") / double(r.counter("l2.accesses")) : 0.0);

    if (dump_count) {
        std::printf("\nmemory at 0x%llx:\n",
                    static_cast<unsigned long long>(dump_addr));
        for (unsigned i = 0; i < dump_count; ++i) {
            std::printf("  +%3u: 0x%016llx\n", i * 8,
                        static_cast<unsigned long long>(
                            core.committedMem().read64(dump_addr + i * 8)));
        }
    }
    return 0;
}
