/**
 * @file
 * Sum-addressed memory demo (paper section 3.6): index a cache with
 * base + displacement — and with a redundant binary base — without ever
 * performing the carry-propagating addition.
 *
 *   $ ./build/examples/sam_cache_demo
 */

#include <cstdio>

#include "common/rng.hh"
#include "mem/sam.hh"
#include "rb/rbalu.hh"

int
main()
{
    using namespace rbsim;

    // The paper's data cache: 8KB, 2-way, 64B lines -> 64 sets.
    SamDecoder sam(64, 64);

    std::printf("SAM decoder for a 64-set, 64B-line cache\n\n");

    const Addr base = 0x20040;
    const SWord disp = -24;
    const Addr ea = base + static_cast<Addr>(disp);
    std::printf("base=0x%llx disp=%lld -> effective 0x%llx, set %llu\n",
                static_cast<unsigned long long>(base),
                static_cast<long long>(disp),
                static_cast<unsigned long long>(ea),
                static_cast<unsigned long long>((ea / 64) % 64));

    std::printf("SAM row-equality decode (no full add): set %u\n",
                sam.decode(base, static_cast<Addr>(disp)));

    // Now with a redundant binary base, as the RB machines produce from
    // pointer arithmetic: the 3-input modified SAM folds X+, ~X-, and
    // the displacement with a carry-save stage.
    const RbNum rb_base =
        rbAdd(RbNum::fromTc(0x20000), RbNum::fromTc(0x40)).sum;
    std::printf("redundant-binary base (digit planes +:0x%llx -:0x%llx), "
                "modified SAM: set %u\n",
                static_cast<unsigned long long>(rb_base.plus()),
                static_cast<unsigned long long>(rb_base.minus()),
                sam.decodeRb(rb_base, disp));

    // Exhaustive agreement check over random (base, disp) pairs.
    Rng rng(99);
    unsigned checked = 0;
    for (int i = 0; i < 100000; ++i) {
        const Addr b = rng.next() & 0xffffff;
        const SWord d = static_cast<SWord>(rng.range(-32768, 32767));
        const unsigned expect = static_cast<unsigned>(
            ((b + static_cast<Addr>(d)) / 64) % 64);
        if (sam.decode(b, static_cast<Addr>(d)) != expect) {
            std::printf("MISMATCH at base=0x%llx\n",
                        static_cast<unsigned long long>(b));
            return 1;
        }
        const RbNum rb = rbAdd(RbNum::fromTc(b),
                               RbNum::fromTc(rng.next() & 0xff)).sum;
        const unsigned expect_rb = static_cast<unsigned>(
            ((rb.toTc() + static_cast<Addr>(d)) / 64) % 64);
        if (sam.decodeRb(rb, d) != expect_rb) {
            std::printf("RB MISMATCH at base=0x%llx\n",
                        static_cast<unsigned long long>(rb.toTc()));
            return 1;
        }
        ++checked;
    }
    std::printf("\n%u random decodes agreed with the full addition "
                "(both conventional and 3-input RB SAM).\n",
                checked);
    return 0;
}
