/**
 * @file
 * Machine-design exploration: build custom MachineConfig variants beyond
 * the paper's four — different widths, bypass level sets, cluster
 * penalties, and scheduler policies — and compare them on a workload of
 * your choice.
 *
 *   $ ./build/examples/machine_compare [workload]   (default: gap)
 *
 * `gap` is the multiword-bignum kernel whose serial add/carry chains
 * make adder latency maximally visible.
 */

#include <cstdio>
#include <string>

#include "sim/simulator.hh"
#include "workloads/micro.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace rbsim;

    const std::string name = argc > 1 ? argv[1] : "gap";
    // Accept both the SPEC-like registry and the micro suite.
    const WorkloadInfo *info = nullptr;
    for (const WorkloadInfo &w : allWorkloads()) {
        if (w.name == name)
            info = &w;
    }
    for (const WorkloadInfo &w : microWorkloads()) {
        if (w.name == name)
            info = &w;
    }
    if (!info) {
        std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
        return 1;
    }
    const Program prog = info->build(WorkloadParams{});
    std::printf("workload: %s (%s)\n\n", name.c_str(),
                info->description.c_str());

    struct Variant
    {
        const char *label;
        MachineConfig cfg;
    };
    std::vector<Variant> variants;

    for (unsigned width : {4u, 8u}) {
        for (MachineKind kind : {MachineKind::Baseline,
                                 MachineKind::RbLimited,
                                 MachineKind::RbFull, MachineKind::Ideal}) {
            MachineConfig cfg = MachineConfig::make(kind, width);
            cfg.label += width == 4 ? " 4w" : " 8w";
            variants.push_back({"paper", cfg});
        }
    }
    {
        // A flat (uncluster-penalized) 8-wide Ideal machine.
        MachineConfig cfg = MachineConfig::make(MachineKind::Ideal, 8);
        cfg.crossClusterDelay = 0;
        cfg.label = "Ideal 8w flat";
        variants.push_back({"custom", cfg});
    }
    {
        // The Figure 14 hole machine: Ideal without levels 2 and 3.
        MachineConfig cfg = MachineConfig::makeIdealLimited(8, 0b001);
        cfg.label = "Ideal 8w No-2,3";
        variants.push_back({"custom", cfg});
    }
    {
        // RB-limited without hole-aware scheduling (section 4.3 off).
        MachineConfig cfg = MachineConfig::make(MachineKind::RbLimited, 8);
        cfg.holeAwareScheduling = false;
        cfg.label = "RB-lim 8w naive";
        variants.push_back({"custom", cfg});
    }

    std::printf("%-18s %8s %6s %9s %10s %9s\n", "machine", "cycles",
                "IPC", "branches", "mispred%", "dl1miss%");
    for (const Variant &v : variants) {
        const SimResult r = simulate(v.cfg, prog);
        std::printf("%-18s %8llu %6.3f %9llu %9.1f%% %8.1f%%\n",
                    v.cfg.label.c_str(),
                    static_cast<unsigned long long>(r.counter("core.cycles")),
                    r.ipc(),
                    static_cast<unsigned long long>(r.counter("core.condBranches")),
                    100.0 * (1.0 - r.branchAccuracy()),
                    r.counter("dl1.accesses")
                        ? 100.0 * double(r.counter("dl1.misses")) / double(r.counter("dl1.accesses"))
                        : 0.0);
    }
    return 0;
}
