/**
 * @file
 * A tour of the redundant binary number system (paper section 3): the
 * representation, carry-free addition with its bounded carry
 * propagation, the paper's worked increment sequence, overflow handling,
 * free negation, digit shifts, and the cost asymmetry of the two
 * conversions.
 *
 *   $ ./build/examples/rb_arithmetic_tour
 */

#include <cstdio>

#include "rb/convert.hh"
#include "rb/digit_slice.hh"
#include "rb/gatedelay.hh"
#include "rb/rbalu.hh"

int
main()
{
    using namespace rbsim;

    std::printf("== the representation (section 3.1) ==\n");
    const RbNum three_a(0b0100, 0b0001); // <0,1,0,-1> = 4 - 1
    const RbNum three_b(0b0011, 0);      // <0,0,1,1> = 2 + 1
    std::printf("two representations of 3: %s and %s (both = %llu)\n\n",
                three_a.toString(4).c_str(), three_b.toString(4).c_str(),
                static_cast<unsigned long long>(three_a.toTc()));

    std::printf("== carry-free addition (section 3.3) ==\n");
    std::printf("repeatedly incrementing 1 (the paper's example):\n");
    RbNum x = RbNum::fromTc(1);
    for (int i = 0; i < 5; ++i) {
        std::printf("  value %d = %s\n",
                    static_cast<int>(x.toTc()), x.toString(4).c_str());
        x = rbAdd(x, RbNum::fromTc(1)).sum;
    }
    std::printf("nonzero digits move left faster than in two's "
                "complement,\nbut the carry chain is never longer than "
                "two digit positions.\n\n");

    std::printf("== overflow (section 3.5) ==\n");
    const Word big = 0x7fffffffffffffffull;
    const RbAddResult ovf = rbAdd(RbNum::fromTc(big), RbNum::fromTc(1));
    std::printf("INT64_MAX + 1: tcOverflow=%d, wrapped value = 0x%llx\n",
                ovf.tcOverflow,
                static_cast<unsigned long long>(ovf.sum.toTc()));
    std::printf("the sign test (most significant nonzero digit) still "
                "agrees with TC: negative=%d\n\n",
                ovf.sum.signNegative());

    std::printf("== negation is free (swap the digit planes) ==\n");
    const RbNum v = rbAdd(RbNum::fromTc(12345),
                          RbNum::fromTc(67890)).sum;
    std::printf("v = %lld, -v = %lld (no adder involved)\n\n",
                static_cast<long long>(v.toTc()),
                static_cast<long long>(rbNegate(v).toTc()));

    std::printf("== digit shifts (section 3.6) ==\n");
    const RbNum m3(0b0101, 0b1000); // <-1,1,0,1> = -3
    std::printf("%s (-3) shifted left one digit = %lld\n\n",
                m3.toString(4).c_str(),
                static_cast<long long>(rbShiftLeftDigits(m3, 1).toTc()));

    std::printf("== the conversion asymmetry (section 3.2) ==\n");
    std::printf("TC -> RB is hardwired (zero gates).\n");
    std::printf("RB -> TC is a full borrow-propagating subtract: ");
    std::printf("%u unit-gate levels for 64 bits,\nversus %u for the RB "
                "adder itself — which is why the paper forwards\n"
                "intermediate results in RB and converts off the "
                "critical path.\n\n",
                converterDepth(64), rbAdderDepth(64));

    std::printf("== the gate-level digit slice (Figure 2) ==\n");
    const RbNum a = RbNum::fromTc(0xdeadbeef);
    const RbNum b = RbNum::fromTc(0x12345678);
    const RbRawSum fast = rbAddRaw(a, b);
    const RbRawSum slices = addBySlices(a, b);
    std::printf("bit-parallel adder and chained digit slices agree: %s\n",
                fast.digits == slices.digits &&
                        fast.carryOut == slices.carryOut
                    ? "yes" : "NO");
    return 0;
}
