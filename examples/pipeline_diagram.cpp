/**
 * @file
 * Reproduces the paper's Figures 5 and 7 from live simulation: the
 * Figure 4 dependency graph (a producer feeding an RB consumer, a TC
 * consumer, and a grand-dependent) scheduled on the RB machine with a
 * full bypass network versus the limited network of section 4.2.
 *
 * With the full network the SUB issues back-to-back behind the ADD
 * (Figure 5); with BYP-2 removed and BYP-3 unreachable from RB-input
 * units, the SUB misses the one-cycle BYP-1 window and waits for the
 * register file — issuing 3 cycles later (Figure 7).
 *
 *   $ ./build/examples/pipeline_diagram
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/core.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"

namespace
{

using namespace rbsim;

struct Timing
{
    std::string text;
    Cycle dispatch, issue, complete;
};

std::vector<Timing>
runAndCollect(const MachineConfig &cfg, const Program &prog,
              std::uint64_t first_pc, std::uint64_t last_pc)
{
    OooCore core(cfg, prog);
    std::vector<Timing> out;
    core.onRetire([&](const RobEntry &e) {
        if (e.pcIndex >= first_pc && e.pcIndex <= last_pc) {
            out.push_back(Timing{disassemble(e.inst, e.pcIndex),
                                 e.dispatchCycle, e.issueCycle,
                                 e.completeCycle});
        }
    });
    core.run(100000);
    return out;
}

void
printDiagram(const char *title, const std::vector<Timing> &rows)
{
    std::printf("%s\n", title);
    Cycle base = ~Cycle{0};
    Cycle end = 0;
    for (const Timing &t : rows) {
        base = std::min(base, t.issue);
        end = std::max(end, t.complete);
    }
    std::printf("  %-22s", "cycle:");
    for (Cycle c = 0; c <= end - base && c < 14; ++c)
        std::printf("%3llu", static_cast<unsigned long long>(c));
    std::printf("\n");
    for (const Timing &t : rows) {
        std::printf("  %-22s", t.text.c_str());
        for (Cycle c = base; c <= end && c < base + 14; ++c) {
            const char *mark = "  .";
            if (c == t.issue)
                mark = " EX";
            else if (c > t.issue && c <= t.complete)
                mark = "  =";
            std::printf("%s", mark);
        }
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    // The Figure 4 graph with 1-cycle RB ops (as in the paper's worked
    // example): a producer ADD; an AND (TC consumer) and an ADD (RB
    // consumer) of its result; a SUB consuming both intermediate values.
    // The serial r9 chain (which the producer extends) lets the setup
    // constants settle into the
    // register file before the graph issues, as the paper's example
    // assumes.
    const Program prog = assemble(R"(
        .name fig4
            ldiq r3, 3
            ldiq r5, 11
            ldiq r9, 1
            addq r9, #1, r9
            addq r9, #1, r9
            addq r9, #1, r9
            addq r9, #1, r9
            addq r9, #1, r9
            addq r9, #1, r9
            addq r9, #1, r9
            addq r9, #1, r9
            addq r9, #1, r2    ; the producer (think: the SLL of Fig. 4)
            and  r2, r3, r4    ; TC consumer -> waits for the converter
            addq r2, r5, r6    ; RB consumer -> BYP-1, back-to-back
            subq r6, r2, r7    ; depends on both RB intermediates
            halt
    )");

    std::printf("The paper's Figure 4 dependency graph, simulated.\n\n");

    const MachineConfig full = MachineConfig::make(MachineKind::RbFull, 4);
    const auto t5 = runAndCollect(full, prog, 11, 14);
    printDiagram("Figure 5 analogue - RB machine, full bypass:", t5);

    const MachineConfig lim =
        MachineConfig::make(MachineKind::RbLimited, 4);
    const auto t7 = runAndCollect(lim, prog, 11, 14);
    printDiagram("Figure 7 analogue - RB machine, limited bypass:", t7);

    // The headline delta: the SUB's issue slips by the hole depth.
    const Cycle sub_full = t5.back().issue - t5.front().issue;
    const Cycle sub_lim = t7.back().issue - t7.front().issue;
    std::printf("SUB issues %llu cycles after the producer with full "
                "bypass,\n%llu cycles after it with the limited network "
                "(paper: 2 vs 5).\n",
                static_cast<unsigned long long>(sub_full),
                static_cast<unsigned long long>(sub_lim));
    return 0;
}
