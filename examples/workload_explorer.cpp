/**
 * @file
 * Workload explorer: run any of the 20 SPEC-like benchmarks on one
 * machine and dump the paper-relevant microarchitectural detail — the
 * Table 1 classification of its dynamic stream, the Figure 13 bypass
 * cases, scheduler behaviour, and memory-system counters.
 *
 *   $ ./build/examples/workload_explorer [workload] [machine]
 *     workload: any of the registry names (default: crafty)
 *     machine:  base | rblim | rbfull | ideal (default: rbfull)
 */

#include <cstdio>
#include <string>

#include "core/scoreboard.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace rbsim;

    const std::string name = argc > 1 ? argv[1] : "crafty";
    const std::string machine = argc > 2 ? argv[2] : "rbfull";

    MachineKind kind = MachineKind::RbFull;
    if (machine == "base")
        kind = MachineKind::Baseline;
    else if (machine == "rblim")
        kind = MachineKind::RbLimited;
    else if (machine == "ideal")
        kind = MachineKind::Ideal;

    const WorkloadInfo &info = findWorkload(name);
    const Program prog = info.build(WorkloadParams{});
    const MachineConfig cfg = MachineConfig::make(kind, 8);
    const SimResult r = simulate(cfg, prog);

    std::printf("workload %s on %s (8-wide)\n", name.c_str(),
                cfg.label.c_str());
    std::printf("  %s\n\n", info.description.c_str());

    const StatSnapshot &s = r.stats;
    std::printf("cycles %llu, retired %llu, IPC %.3f (co-sim verified "
                "%llu)\n",
                static_cast<unsigned long long>(s.counter("core.cycles")),
                static_cast<unsigned long long>(s.counter("core.retired")), r.ipc(),
                static_cast<unsigned long long>(r.counter("cosim.checked")));
    std::printf("fetched %llu, squashed %llu, flushes %llu\n",
                static_cast<unsigned long long>(s.counter("core.fetched")),
                static_cast<unsigned long long>(s.counter("core.squashed")),
                static_cast<unsigned long long>(s.counter("core.flushes")));
    std::printf("cond branches %llu, mispredicted %.2f%%\n",
                static_cast<unsigned long long>(s.counter("core.condBranches")),
                100.0 * (1.0 - r.branchAccuracy()));
    std::printf("loads %llu (forwarded %llu), stores %llu\n",
                static_cast<unsigned long long>(s.counter("core.loads")),
                static_cast<unsigned long long>(s.counter("core.loadForwards")),
                static_cast<unsigned long long>(s.counter("core.stores")));
    std::printf("dl1 miss %.1f%%, l2 miss %.1f%%, DRAM accesses %llu\n",
                r.counter("dl1.accesses") ? 100.0 * r.counter("dl1.misses") / double(r.counter("dl1.accesses"))
                              : 0.0,
                r.counter("l2.accesses") ? 100.0 * r.counter("l2.misses") / double(r.counter("l2.accesses"))
                             : 0.0,
                static_cast<unsigned long long>(r.counter("mem.accesses")));
    std::printf("mean issue wait %.2f cycles; hole-blocked entry-cycles "
                "%llu\n",
                s.counter("core.retired") ? double(s.counter("core.issueWaitSum")) / double(s.counter("core.retired")) : 0,
                static_cast<unsigned long long>(s.counter("core.holeWaitCycles")));
    if (s.counter("core.rbPathExecs")) {
        std::printf("RB-datapath executions %llu (%.1f%% of retired); "
                    "bogus-overflow corrections %llu\n",
                    static_cast<unsigned long long>(s.counter("core.rbPathExecs")),
                    100.0 * double(s.counter("core.rbPathExecs")) / double(s.counter("core.retired")),
                    static_cast<unsigned long long>(
                        s.counter("core.rbBogusCorrections")));
    }

    std::printf("\nTable 1 classification of the retired stream:\n");
    for (unsigned i = 0; i < numTable1Rows; ++i) {
        if (s.vec("core.table1")[i] == 0)
            continue;
        std::printf("  %-55s %6.1f%%\n",
                    table1RowLabel(static_cast<Table1Row>(i)),
                    100.0 * double(s.vec("core.table1")[i]) / double(s.counter("core.retired")));
    }

    std::uint64_t bypass_total = 0;
    for (std::uint64_t v : s.vec("bypass.case"))
        bypass_total += v;
    if (bypass_total) {
        std::printf("\nFigure 13 bypass cases (last-arriving bypassed "
                    "operands):\n");
        for (unsigned i = 0; i < numBypassCases; ++i) {
            std::printf("  %-36s %6.1f%%\n",
                        bypassCaseName(static_cast<BypassCase>(i)),
                        100.0 * double(s.vec("bypass.case")[i]) /
                            double(bypass_total));
        }
        std::printf("  instructions with a bypassed source: %.1f%%\n",
                    100.0 * double(s.counter("core.withBypassedSource")) /
                        double(s.counter("core.retired")));
    }

    std::printf("\nbypass slot used by the last-arriving operand "
                "(cycles past first availability):\n");
    for (unsigned i = 0; i < s.vec("bypass.slot").size(); ++i) {
        if (s.vec("bypass.slot")[i] == 0)
            continue;
        std::printf("  +%u: %llu\n", i,
                    static_cast<unsigned long long>(s.vec("bypass.slot")[i]));
    }
    return 0;
}
