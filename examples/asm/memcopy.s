; Copy 64 quadwords from 0x20000 to 0x21000 and checksum them.
; Demonstrates load/store streaming and loop-carried addressing.
.name memcopy
.org 0x20000
.quad 11, 22, 33, 44, 55, 66, 77, 88
    ldiq r1, 0x20000    ; src
    ldiq r2, 0x21000    ; dst
    ldiq r3, 64         ; count
    ldiq r4, 0          ; checksum
loop:
    ldq r5, 0(r1)
    stq r5, 0(r2)
    addq r4, r5, r4
    lda r1, 8(r1)
    lda r2, 8(r2)
    subq r3, #1, r3
    bne r3, loop
    ldiq r6, 0x22000
    stq r4, 0(r6)
    halt
