; Fibonacci: stores fib(1)..fib(30) at 0x20000, fib(30) stays in r2.
; Run: ./build/examples/run_asm examples/asm/fib.s --dump-mem 0x200e8,1
.name fib
    ldiq r1, 0
    ldiq r2, 1
    ldiq r3, 30
    ldiq r5, 0x20000
loop:
    addq r1, r2, r4
    mov r2, r1
    mov r4, r2
    stq r4, 0(r5)
    lda r5, 8(r5)
    subq r3, #1, r3
    bne r3, loop
    halt
