; Euclid's GCD by repeated subtraction: gcd(9840, 2208) -> r1 (48),
; stored at 0x20000.
; Run: ./build/examples/run_asm examples/asm/gcd.s --dump-mem 0x20000,1
.name gcd
    ldiq r1, 9840
    ldiq r2, 2208
loop:
    cmpeq r1, r2, r3
    bne r3, done
    cmplt r1, r2, r3
    bne r3, swap
    subq r1, r2, r1
    br loop
swap:
    subq r2, r1, r2
    br loop
done:
    ldiq r4, 0x20000
    stq r1, 0(r4)
    halt
