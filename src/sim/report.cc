#include "sim/report.hh"

#include <algorithm>
#include <sstream>

#include "common/strutil.hh"

namespace rbsim
{

void
TextTable::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(head.size());
    auto widen = [&width](const std::vector<std::string> &cells) {
        if (cells.size() > width.size())
            width.resize(cells.size());
        for (std::size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    widen(head);
    for (const auto &r : rows)
        widen(r);

    std::ostringstream os;
    auto emit = [&os, &width](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i]
               << std::string(width[i] - cells[i].size() + 2, ' ');
        }
        os << "\n";
    };
    emit(head);
    std::size_t total = 0;
    for (std::size_t w : width)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &r : rows)
        emit(r);
    return os.str();
}

std::string
textBar(double value, double full, unsigned width)
{
    if (full <= 0.0)
        full = 1.0;
    const double frac = std::clamp(value / full, 0.0, 1.0);
    const unsigned n = static_cast<unsigned>(frac * width + 0.5);
    return std::string(n, '#') + std::string(width - n, ' ');
}

std::string
banner(const std::string &title)
{
    std::string line(title.size() + 4, '=');
    return line + "\n= " + title + " =\n" + line + "\n";
}

std::string
fmtSimSpeed(double sim_khz)
{
    if (sim_khz >= 1e3)
        return fmtDouble(sim_khz / 1e3, 2) + " Mcyc/s";
    return fmtDouble(sim_khz, 1) + " kcyc/s";
}

} // namespace rbsim
