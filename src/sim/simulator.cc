#include "sim/simulator.hh"

#include "sim/cosim.hh"

namespace rbsim
{

SimResult
simulate(const MachineConfig &cfg, const Program &prog,
         const SimOptions &opts)
{
    OooCore core(cfg, prog);
    CosimChecker checker(prog);
    if (opts.cosim) {
        core.onRetire(
            [&checker](const RobEntry &e) { checker.onRetire(e); });
    }

    SimResult res;
    res.machine = cfg.label;
    res.workload = prog.name;
    res.halted = core.run(opts.maxCycles);
    res.core = core.stats();

    const MemHierarchy &mh = core.memoryHierarchy();
    res.il1Accesses = mh.il1().accesses;
    res.il1Misses = mh.il1().misses;
    res.dl1Accesses = mh.dl1().accesses;
    res.dl1Misses = mh.dl1().misses;
    res.l2Accesses = mh.l2().accesses;
    res.l2Misses = mh.l2().misses;
    res.memAccesses = mh.memAccesses;
    res.cosimChecked = checker.checked();
    return res;
}

} // namespace rbsim
