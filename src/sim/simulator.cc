#include "sim/simulator.hh"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "common/alloccount.hh"

namespace rbsim
{

std::string
SimOptions::resultKey() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "mc=%" PRIu64 ";co=%d;mi=%" PRIu64 ";wu=%" PRIu64
                  ";ck=%016" PRIx64,
                  static_cast<std::uint64_t>(maxCycles), cosim ? 1 : 0,
                  maxInsts, warmupInsts,
                  startFrom ? startFrom->fingerprint() : 0);
    return std::string(buf);
}

Simulator::Simulator(const MachineConfig &cfg_)
    : cfg(cfg_), core(cfg, prog), checker(prog)
{
    // The retire hook is installed once; per-run cosim enablement is a
    // flag check so switching SimOptions::cosim never reallocates the
    // std::function.
    core.onRetire([this](const RobEntry &e) {
        if (cosimOn)
            checker.onRetire(e);
    });

    // Every component self-registers its statistics exactly once; the
    // registry stores pointers into the core/checker, whose counters
    // keep their addresses across reset().
    core.registerStats(reg);
    checker.registerStats(statGroup(reg, "cosim"));
}

SimResult
Simulator::run(const Program &program, const SimOptions &opts)
{
    SimResult res;
    runInto(program, opts, res);
    return res;
}

void
Simulator::runInto(const Program &program, const SimOptions &opts,
                   SimResult &out)
{
    // Copy the program into the member the core/checker are bound to.
    // Copy-assignment reuses the existing buffers when the shapes
    // match, which is what keeps warm repeat jobs allocation-free.
    prog = program;
    core.reset(prog);
    checker.reset(prog);
    cosimOn = opts.cosim;
    instBase = 0;

    if (opts.startFrom) {
        const ArchCheckpoint &ck = *opts.startFrom;
        if (ck.progHash != prog.hash())
            throw std::invalid_argument(
                "checkpoint/program mismatch in Simulator::runInto");
        core.restoreArchState(ck);
        checker.restoreArch(ck);
        instBase = ck.instsExecuted;
    }

    out.machine = cfg.label;
    out.workload = prog.name;
    out.halted = false;
    out.instLimited = false;
    core.attachTracer(opts.tracer);
    core.attachProfiler(opts.profiler);
    const std::uint64_t allocs0 = alloccount::threadCount();
    const auto t0 = std::chrono::steady_clock::now();
    try {
        if (opts.warmupInsts) {
            // Detailed-warmup leg: run, then zero the stats in place so
            // the measured window's counters (cycles included — and with
            // them core.ipc) cover only post-warmup work. Model state
            // stays warm. A program that halts or aborts during warmup
            // skips the measured leg; the caller sees it via
            // halted/instLimited.
            out.halted = core.run(opts.maxCycles, opts.warmupInsts);
            if (!out.halted && !core.deadlocked() &&
                core.instLimitHit()) {
                core.clearStats();
                checker.clearStats();
                out.halted = core.run(opts.maxCycles, opts.maxInsts);
            }
        } else {
            out.halted = core.run(opts.maxCycles, opts.maxInsts);
        }
        out.instLimited = core.instLimitHit();
    } catch (...) {
        // Cosim mismatch mid-retire: capture the pipeline tail before
        // the exception reaches the caller, and detach the borrowed
        // tracer/profiler so a reused instance cannot dangle into them.
        if (opts.tracer) {
            core.traceInFlight("cosim-mismatch");
            opts.tracer->finish();
        }
        core.attachTracer(nullptr);
        core.attachProfiler(nullptr);
        throw;
    }
    if (opts.tracer) {
        core.traceInFlight(out.halted       ? "post-halt"
                           : out.instLimited ? "inst-budget"
                                             : "run-aborted");
        opts.tracer->finish();
    }
    const auto t1 = std::chrono::steady_clock::now();
    out.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    if (opts.profiler) {
        opts.profiler->allocationsCounted =
            alloccount::hooked() && alloccount::enabled();
        opts.profiler->allocations = alloccount::threadCount() - allocs0;
    }
    core.attachTracer(nullptr);
    core.attachProfiler(nullptr);
    reg.snapshotInto(out.stats);
    ++runs;
}

void
Simulator::checkpoint(ArchCheckpoint &out) const
{
    if (!cosimOn)
        throw std::logic_error(
            "checkpoint capture needs the cosim reference (SimOptions::"
            "cosim) for exact retired architectural state");
    const Interp &ref = checker.ref();
    if (ref.halted())
        throw std::logic_error("cannot checkpoint a halted program");

    out = ArchCheckpoint{};
    out.progHash = prog.hash();
    out.pc = ref.pc();
    out.instsExecuted = instBase + ref.instsExecuted();
    for (unsigned r = 0; r < numArchRegs; ++r)
        out.regs[r] = ref.reg(r);
    out.pages = ref.mem().snapshotPages();

    const FetchEngine &fe = core.fetchEngine();
    out.bpred = fe.predictor.saveState();
    out.btb = fe.btb.entries();
    fe.ras.save(out.ras);
    const MemHierarchy &mh = core.memoryHierarchy();
    out.il1 = mh.il1().saveTags();
    out.dl1 = mh.dl1().saveTags();
    out.l2 = mh.l2().saveTags();
}

SimResult
simulate(const MachineConfig &cfg, const Program &prog,
         const SimOptions &opts)
{
    Simulator sim(cfg);
    SimResult res;
    sim.runInto(prog, opts, res);
    return res;
}

} // namespace rbsim
