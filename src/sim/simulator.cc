#include "sim/simulator.hh"

#include <chrono>

#include "common/alloccount.hh"
#include "sim/cosim.hh"

namespace rbsim
{

SimResult
simulate(const MachineConfig &cfg, const Program &prog,
         const SimOptions &opts)
{
    OooCore core(cfg, prog);
    CosimChecker checker(prog);
    if (opts.cosim) {
        core.onRetire(
            [&checker](const RobEntry &e) { checker.onRetire(e); });
    }

    // Every component self-registers its statistics; the snapshot taken
    // after the run is the complete machine-readable result.
    StatRegistry reg;
    core.registerStats(reg);
    checker.registerStats(statGroup(reg, "cosim"));

    SimResult res;
    res.machine = cfg.label;
    res.workload = prog.name;
    if (opts.tracer)
        core.attachTracer(opts.tracer);
    if (opts.profiler)
        core.attachProfiler(opts.profiler);
    const std::uint64_t allocs0 = alloccount::threadCount();
    const auto t0 = std::chrono::steady_clock::now();
    try {
        res.halted = core.run(opts.maxCycles);
    } catch (...) {
        // Cosim mismatch mid-retire: capture the pipeline tail before
        // the exception reaches the caller.
        if (opts.tracer) {
            core.traceInFlight("cosim-mismatch");
            opts.tracer->finish();
        }
        throw;
    }
    if (opts.tracer) {
        core.traceInFlight(res.halted ? "post-halt" : "run-aborted");
        opts.tracer->finish();
    }
    const auto t1 = std::chrono::steady_clock::now();
    res.hostSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    if (opts.profiler) {
        opts.profiler->allocationsCounted =
            alloccount::hooked() && alloccount::enabled();
        opts.profiler->allocations =
            alloccount::threadCount() - allocs0;
    }
    res.stats = reg.snapshot();
    return res;
}

} // namespace rbsim
