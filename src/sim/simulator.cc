#include "sim/simulator.hh"

#include <chrono>

#include "common/alloccount.hh"

namespace rbsim
{

Simulator::Simulator(const MachineConfig &cfg_)
    : cfg(cfg_), core(cfg, prog), checker(prog)
{
    // The retire hook is installed once; per-run cosim enablement is a
    // flag check so switching SimOptions::cosim never reallocates the
    // std::function.
    core.onRetire([this](const RobEntry &e) {
        if (cosimOn)
            checker.onRetire(e);
    });

    // Every component self-registers its statistics exactly once; the
    // registry stores pointers into the core/checker, whose counters
    // keep their addresses across reset().
    core.registerStats(reg);
    checker.registerStats(statGroup(reg, "cosim"));
}

SimResult
Simulator::run(const Program &program, const SimOptions &opts)
{
    SimResult res;
    runInto(program, opts, res);
    return res;
}

void
Simulator::runInto(const Program &program, const SimOptions &opts,
                   SimResult &out)
{
    // Copy the program into the member the core/checker are bound to.
    // Copy-assignment reuses the existing buffers when the shapes
    // match, which is what keeps warm repeat jobs allocation-free.
    prog = program;
    core.reset(prog);
    checker.reset(prog);
    cosimOn = opts.cosim;

    out.machine = cfg.label;
    out.workload = prog.name;
    out.halted = false;
    core.attachTracer(opts.tracer);
    core.attachProfiler(opts.profiler);
    const std::uint64_t allocs0 = alloccount::threadCount();
    const auto t0 = std::chrono::steady_clock::now();
    try {
        out.halted = core.run(opts.maxCycles);
    } catch (...) {
        // Cosim mismatch mid-retire: capture the pipeline tail before
        // the exception reaches the caller, and detach the borrowed
        // tracer/profiler so a reused instance cannot dangle into them.
        if (opts.tracer) {
            core.traceInFlight("cosim-mismatch");
            opts.tracer->finish();
        }
        core.attachTracer(nullptr);
        core.attachProfiler(nullptr);
        throw;
    }
    if (opts.tracer) {
        core.traceInFlight(out.halted ? "post-halt" : "run-aborted");
        opts.tracer->finish();
    }
    const auto t1 = std::chrono::steady_clock::now();
    out.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    if (opts.profiler) {
        opts.profiler->allocationsCounted =
            alloccount::hooked() && alloccount::enabled();
        opts.profiler->allocations = alloccount::threadCount() - allocs0;
    }
    core.attachTracer(nullptr);
    core.attachProfiler(nullptr);
    reg.snapshotInto(out.stats);
    ++runs;
}

SimResult
simulate(const MachineConfig &cfg, const Program &prog,
         const SimOptions &opts)
{
    Simulator sim(cfg);
    SimResult res;
    sim.runInto(prog, opts, res);
    return res;
}

} // namespace rbsim
