/**
 * @file
 * Plain-text report helpers used by the benchmark binaries to print the
 * paper's tables and figure data (aligned columns, text bar charts).
 */

#ifndef RBSIM_SIM_REPORT_HH
#define RBSIM_SIM_REPORT_HH

#include <string>
#include <vector>

namespace rbsim
{

/** A simple aligned-column table. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

/** Horizontal text bar scaled to `width` characters at `full` value. */
std::string textBar(double value, double full, unsigned width = 40);

/** Section banner. */
std::string banner(const std::string &title);

/** Human-readable host simulation speed from simulated kilocycles per
 * host second: "873 kcyc/s", "12.4 Mcyc/s". */
std::string fmtSimSpeed(double sim_khz);

} // namespace rbsim

#endif // RBSIM_SIM_REPORT_HH
