#include "sim/fastfwd.hh"

#include <stdexcept>

#include "isa/opclass.hh"

namespace rbsim
{

FastForward::FastForward(const MachineConfig &config, const Program &prog)
    : cfg(config), program(&prog), interp(prog), warmMem(cfg)
{
}

void
FastForward::reset(const Program &prog)
{
    program = &prog;
    interp.reset(prog);
    warmMem.reset();
    predictor.reset();
    btb.reset();
    ras.reset();
    lastLine = ~Addr{0};
    insts = 0;
}

std::uint64_t
FastForward::run(std::uint64_t max_insts)
{
    std::uint64_t done = 0;
    while (done < max_insts && !interp.halted()) {
        const StepRecord rec = interp.step();

        // Instruction side: the fetch engine touches the IL1 only when
        // the fetch line changes, so mirror its lastLine discipline.
        const Addr line = program->byteAddrOf(rec.pcIndex) &
                          ~Addr{cfg.il1.lineBytes - 1};
        if (line != lastLine) {
            warmMem.warmInstTouch(line);
            lastLine = line;
        }

        if (rec.readMem)
            warmMem.warmLoadTouch(rec.memAddr);
        else if (rec.wroteMem)
            warmMem.warmStoreTouch(rec.memAddr);

        const Inst &inst = rec.inst;
        if (isCondBranch(inst.op)) {
            predictor.touch(rec.pcIndex, rec.taken);
        } else if (inst.op == Opcode::BSR) {
            if (inst.ra != zeroReg)
                ras.push(program->byteAddrOf(rec.pcIndex + 1));
        } else if (inst.op == Opcode::JMP) {
            if (inst.ra == zeroReg) {
                ras.pop(); // return idiom
            } else {
                // Indirect call: fetch pushes the return address, and
                // retirement trains the BTB at the architectural target.
                ras.push(program->byteAddrOf(rec.pcIndex + 1));
                btb.update(rec.pcIndex, rec.nextPc);
            }
        }

        ++done;
        ++insts;
    }
    return done;
}

void
FastForward::capture(ArchCheckpoint &out) const
{
    if (interp.halted())
        throw std::logic_error("cannot checkpoint a halted program");
    out = ArchCheckpoint{};
    out.progHash = program->hash();
    out.pc = interp.pc();
    out.instsExecuted = insts;
    for (unsigned r = 0; r < numArchRegs; ++r)
        out.regs[r] = interp.reg(r);
    out.pages = interp.mem().snapshotPages();
    out.bpred = predictor.saveState();
    out.btb = btb.entries();
    ras.save(out.ras);
    out.il1 = warmMem.il1().saveTags();
    out.dl1 = warmMem.dl1().saveTags();
    out.l2 = warmMem.l2().saveTags();
}

void
FastForward::restore(const ArchCheckpoint &ck)
{
    if (ck.progHash != program->hash())
        throw std::runtime_error(
            "checkpoint/program mismatch in FastForward::restore");
    interp.mem().restorePages(ck.pages);
    for (unsigned r = 0; r < numArchRegs; ++r)
        interp.setReg(r, ck.regs[r]);
    interp.setPc(ck.pc);
    predictor.restoreState(ck.bpred);
    btb.restoreEntries(ck.btb);
    ras.restore(ck.ras);
    warmMem.il1().restoreTags(ck.il1);
    warmMem.dl1().restoreTags(ck.dl1);
    warmMem.l2().restoreTags(ck.l2);
    lastLine = ~Addr{0};
    insts = ck.instsExecuted;
}

} // namespace rbsim
