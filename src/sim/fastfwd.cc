#include "sim/fastfwd.hh"

#include <stdexcept>

#include "isa/opclass.hh"

namespace rbsim
{

namespace
{

/**
 * Execution-event sink plugged into the predecoded interpreter loop
 * (Interp::runSink): warms exactly the state the old StepRecord-driven
 * loop did, in the same order per instruction — IL1 line on line change,
 * then the data-side touch, then predictor/RAS/BTB — so checkpoints and
 * every gated sampling baseline stay bit-identical, minus the StepRecord
 * materialization cost.
 */
struct WarmSink
{
    MemHierarchy &mem;
    HybridPredictor &predictor;
    Btb &btb;
    Ras &ras;
    Addr &lastLine;
    Addr codeBase;
    Addr lineMask;

    void
    preStep(std::uint64_t pc)
    {
        // The fetch engine touches the IL1 only when the fetch line
        // changes (FetchEngine's lastLine discipline).
        const Addr line = (codeBase + Addr{4} * pc) & lineMask;
        if (line != lastLine) {
            mem.warmInstTouch(line);
            lastLine = line;
        }
    }

    void regWrite(std::uint16_t, Word) {}
    void load(Addr ea, Word) { mem.warmLoadTouch(ea); }
    void store(Addr ea, Word) { mem.warmStoreTouch(ea); }

    void
    condBranch(std::uint64_t pc, bool taken)
    {
        predictor.touch(pc, taken);
    }

    void br() {}

    //! Only linking BSRs decode to the Bsr handler (an unlinked BSR is
    //! a plain Br), so every bsr() event pushes the RAS.
    void bsr(Addr ret) { ras.push(ret); }

    void jmpRet() { ras.pop(); } // return idiom (JMP with ra == r31)

    void
    jmpCall(std::uint64_t pc, std::uint64_t target_index, Addr ret)
    {
        // Indirect call: fetch pushes the return address, and
        // retirement trains the BTB at the architectural target.
        ras.push(ret);
        btb.update(pc, target_index);
    }

    void halt() {}
};

} // namespace

FastForward::FastForward(const MachineConfig &config, const Program &prog)
    : cfg(config), program(&prog), interp(prog), warmMem(cfg)
{
}

void
FastForward::reset(const Program &prog)
{
    program = &prog;
    interp.reset(prog);
    warmMem.reset();
    predictor.reset();
    btb.reset();
    ras.reset();
    lastLine = ~Addr{0};
    insts = 0;
}

std::uint64_t
FastForward::run(std::uint64_t max_insts)
{
    WarmSink sink{warmMem,           predictor,
                  btb,               ras,
                  lastLine,          program->codeBase,
                  ~Addr{cfg.il1.lineBytes - 1}};
    const std::uint64_t done = interp.runSink(max_insts, sink);
    insts += done;
    return done;
}

void
FastForward::capture(ArchCheckpoint &out) const
{
    if (interp.halted())
        throw std::logic_error("cannot checkpoint a halted program");
    out = ArchCheckpoint{};
    out.progHash = program->hash();
    out.pc = interp.pc();
    out.instsExecuted = insts;
    for (unsigned r = 0; r < numArchRegs; ++r)
        out.regs[r] = interp.reg(r);
    out.pages = interp.mem().snapshotPages();
    out.bpred = predictor.saveState();
    out.btb = btb.entries();
    ras.save(out.ras);
    out.il1 = warmMem.il1().saveTags();
    out.dl1 = warmMem.dl1().saveTags();
    out.l2 = warmMem.l2().saveTags();
}

void
FastForward::restore(const ArchCheckpoint &ck)
{
    if (ck.progHash != program->hash())
        throw std::runtime_error(
            "checkpoint/program mismatch in FastForward::restore");
    interp.mem().restorePages(ck.pages);
    for (unsigned r = 0; r < numArchRegs; ++r)
        interp.setReg(r, ck.regs[r]);
    interp.setPc(ck.pc);
    predictor.restoreState(ck.bpred);
    btb.restoreEntries(ck.btb);
    ras.restore(ck.ras);
    warmMem.il1().restoreTags(ck.il1);
    warmMem.dl1().restoreTags(ck.dl1);
    warmMem.l2().restoreTags(ck.l2);
    lastLine = ~Addr{0};
    insts = ck.instsExecuted;
}

} // namespace rbsim
