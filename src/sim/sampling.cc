#include "sim/sampling.hh"

#include <chrono>
#include <cmath>

#include "sim/fastfwd.hh"

namespace rbsim
{

std::vector<std::shared_ptr<const ArchCheckpoint>>
collectCheckpoints(const MachineConfig &cfg, const Program &prog,
                   const SamplingOptions &opts, std::uint64_t *ff_insts,
                   bool *completed)
{
    std::vector<std::shared_ptr<const ArchCheckpoint>> points;
    FastForward ff(cfg, prog);
    ff.run(opts.skipInsts);
    while (!ff.halted() &&
           (opts.maxWindows == 0 || points.size() < opts.maxWindows)) {
        auto ck = std::make_shared<ArchCheckpoint>();
        ff.capture(*ck);
        points.push_back(std::move(ck));
        ff.run(opts.periodInsts);
    }
    // Run out the stream so ffInsts reports the true program length
    // when no window cap stopped us early.
    if (opts.maxWindows == 0) {
        while (!ff.halted())
            ff.run(1u << 20);
    }
    if (ff_insts)
        *ff_insts = ff.instsExecuted();
    if (completed)
        *completed = ff.halted();
    return points;
}

double
ci95HalfWidth(const std::vector<double> &xs)
{
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    const double mean = arithmeticMean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - mean) * (x - mean);
    const double sd = std::sqrt(ss / static_cast<double>(n - 1));

    // Two-sided Student t quantiles at 97.5%, df = n - 1 (df > 30 is
    // within half a percent of the normal 1.96).
    static const double t975[] = {
        0,     12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
        2.306, 2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
        2.120, 2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
        2.064, 2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    const std::size_t df = n - 1;
    const double t = df < sizeof(t975) / sizeof(t975[0]) ? t975[df] : 1.96;
    return t * sd / std::sqrt(static_cast<double>(n));
}

void
accumulateWindowStats(StatSnapshot &into, const StatSnapshot &win)
{
    for (const auto &kv : win.counters)
        into.counters[kv.first] += kv.second;
    for (const auto &kv : win.vectors) {
        auto &dst = into.vectors[kv.first];
        if (dst.size() < kv.second.size())
            dst.resize(kv.second.size(), 0);
        for (std::size_t i = 0; i < kv.second.size(); ++i)
            dst[i] += kv.second[i];
    }
    // Carry the formula keys so the merged snapshot has the same schema;
    // values are recomputed from the summed counters in finalize.
    for (const auto &kv : win.formulas)
        into.formulas.emplace(kv.first, 0.0);
}

void
finalizeMergedStats(StatSnapshot &merged)
{
    auto ratio = [&merged](const char *num, const char *den, double dflt) {
        const std::uint64_t d = merged.counter(den);
        return d ? static_cast<double>(merged.counter(num)) /
                       static_cast<double>(d)
                 : dflt;
    };
    auto set = [&merged](const std::string &name, double v) {
        auto it = merged.formulas.find(name);
        if (it != merged.formulas.end())
            it->second = v;
    };
    set("core.ipc", ratio("core.retired", "core.cycles", 0.0));
    set("core.branchAccuracy",
        merged.counter("core.condBranches")
            ? 1.0 - ratio("core.condMispredicts", "core.condBranches", 0.0)
            : 1.0);
    set("core.issueWaitMean",
        ratio("core.issueWaitSum", "core.retired", 0.0));
    for (const char *c : {"il1", "dl1", "l2"}) {
        set(std::string(c) + ".missRate",
            ratio((std::string(c) + ".misses").c_str(),
                  (std::string(c) + ".accesses").c_str(), 0.0));
    }
}

SampledResult
simulateSampled(const MachineConfig &cfg, const Program &prog,
                const SamplingOptions &opts)
{
    SampledResult res;
    res.machine = cfg.label;
    res.workload = prog.name;

    const auto t0 = std::chrono::steady_clock::now();
    const auto points =
        collectCheckpoints(cfg, prog, opts, &res.ffInsts, &res.completed);

    Simulator sim(cfg);
    SimResult window;
    SimOptions wopts;
    wopts.maxCycles = opts.maxCyclesPerWindow;
    wopts.cosim = opts.cosim;
    wopts.warmupInsts = opts.warmupInsts;
    wopts.maxInsts = opts.measureInsts;
    for (const auto &ck : points) {
        wopts.startFrom = ck;
        sim.runInto(prog, wopts, window);
        res.windowIpc.push_back(window.ipc());
        accumulateWindowStats(res.merged, window.stats);
        ++res.windows;
    }
    finalizeMergedStats(res.merged);
    res.ipcMean = arithmeticMean(res.windowIpc);
    res.ipcCi95 = ci95HalfWidth(res.windowIpc);
    const auto t1 = std::chrono::steady_clock::now();
    res.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    return res;
}

} // namespace rbsim
