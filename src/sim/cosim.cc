#include "sim/cosim.hh"

#include <sstream>

#include "isa/disasm.hh"

namespace rbsim
{

namespace
{

[[noreturn]] void
fail(const RobEntry &e, const std::string &what)
{
    std::ostringstream os;
    os << "co-sim mismatch at retired inst #" << e.seq << " pc="
       << e.pcIndex << " [" << disassemble(e.inst, e.pcIndex) << "]: "
       << what;
    throw CosimMismatch(os.str(), e.seq, e.pcIndex);
}

} // namespace

void
CosimChecker::onRetire(const RobEntry &e)
{
    if (interp.halted())
        fail(e, "reference already halted");
    if (interp.pc() != e.pcIndex) {
        fail(e, "pc diverged (reference at " +
                std::to_string(interp.pc()) + ")");
    }

    const StepRecord rec = interp.step();
    ++count;

    if (rec.wroteReg != e.wroteReg)
        fail(e, "register-write presence differs");
    if (rec.wroteReg && rec.regValue != e.resultTc) {
        std::ostringstream os;
        os << "register value differs: core=0x" << std::hex << e.resultTc
           << " ref=0x" << rec.regValue;
        fail(e, os.str());
    }
    if (rec.wroteMem) {
        if (!e.isMemStore)
            fail(e, "reference stored but core did not");
        if (rec.memAddr != e.effAddr)
            fail(e, "store address differs");
        const Word mask =
            e.memSize == 8 ? ~Word{0} : Word{0xffffffff};
        if (rec.memValue != (e.storeData & mask))
            fail(e, "store data differs");
    }
    if (e.isCtrl) {
        if (rec.taken != e.actualTaken)
            fail(e, "branch direction differs");
        if (rec.nextPc != e.actualNextPc)
            fail(e, "branch target differs");
    }
    if (e.isHalt && !rec.halted)
        fail(e, "core halted but reference did not");
}

} // namespace rbsim
