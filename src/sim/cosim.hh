/**
 * @file
 * Co-simulation checker: locksteps the functional reference interpreter
 * with the timing core's retirement stream and cross-checks every
 * architectural effect. This is what proves the redundant binary
 * datapath, the bypass/scheduling model, and misprediction recovery
 * preserve program semantics end to end.
 */

#ifndef RBSIM_SIM_COSIM_HH
#define RBSIM_SIM_COSIM_HH

#include <stdexcept>

#include "common/stats.hh"
#include "core/rob.hh"
#include "func/interp.hh"
#include "sim/checkpoint.hh"

namespace rbsim
{

/** Thrown when the timing core diverges from the reference. */
class CosimMismatch : public std::runtime_error
{
  public:
    explicit CosimMismatch(const std::string &what_arg,
                           std::uint64_t seq_ = 0,
                           std::uint64_t pc_index = 0)
        : std::runtime_error(what_arg), divergedSeq(seq_),
          divergedPc(pc_index)
    {}

    /** Sequence number of the diverging retired instruction (0 when the
     * divergence is not tied to one instruction). The fuzzer uses this to
     * rank failures when shrinking. */
    std::uint64_t seq() const { return divergedSeq; }

    /** Instruction index of the divergence. */
    std::uint64_t pcIndex() const { return divergedPc; }

  private:
    std::uint64_t divergedSeq;
    std::uint64_t divergedPc;
};

/** The checker. */
class CosimChecker
{
  public:
    explicit CosimChecker(const Program &prog)
        : interp(prog)
    {}

    /** Back to construction state, rebound to `prog`. The `checked`
     * counter keeps its address (stat registrations stay valid). */
    void
    reset(const Program &prog)
    {
        interp.reset(prog);
        count = 0;
    }

    /**
     * Verify one retired instruction against one architectural step.
     * Throws CosimMismatch on any divergence.
     */
    void onRetire(const RobEntry &e);

    /**
     * Move the reference to a checkpoint's architectural state (call
     * right after reset() with the checkpointed program): registers,
     * memory pages, and PC. The timing core resumes from the same
     * checkpoint, so lockstep continues from the resume point.
     */
    void
    restoreArch(const ArchCheckpoint &ck)
    {
        interp.mem().restorePages(ck.pages);
        for (unsigned r = 0; r < numArchRegs; ++r)
            interp.setReg(r, ck.regs[r]);
        interp.setPc(ck.pc);
    }

    /** The reference interpreter (checkpoint capture reads the exact
     * retired architectural state from here). */
    const Interp &ref() const { return interp; }

    /** Zero the `checked` tally (measurement windows). */
    void clearStats() { count = 0; }

    /** Instructions verified. */
    std::uint64_t checked() const { return count; }

    /** Bind checker stats into `g` (the "cosim" group). */
    void
    registerStats(StatGroup g) const
    {
        g.counter("checked", &count,
                  "retired instructions architecturally verified");
    }

  private:
    Interp interp;
    std::uint64_t count = 0;
};

} // namespace rbsim

#endif // RBSIM_SIM_COSIM_HH
