#include "sim/checkpoint.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace rbsim
{

namespace
{

// Little-endian byte stream helpers. The format is versioned by a magic
// header; every vector is length-prefixed so deserialize() can validate
// before allocating.
constexpr char ckptMagic[8] = {'R', 'B', 'C', 'K', '0', '0', '0', '1'};

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

struct Reader
{
    const unsigned char *p;
    const unsigned char *end;

    void
    need(std::size_t n) const
    {
        if (static_cast<std::size_t>(end - p) < n)
            throw std::runtime_error("truncated checkpoint image");
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
        p += 8;
        return v;
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
        p += 4;
        return v;
    }

    std::uint8_t
    u8()
    {
        need(1);
        return *p++;
    }

    /** Bounded length prefix: counts over this cap cannot be a valid
     * image and would otherwise drive a bad-alloc-sized resize. */
    std::size_t
    count(std::uint64_t cap)
    {
        const std::uint64_t n = u64();
        if (n > cap)
            throw std::runtime_error("malformed checkpoint image");
        return static_cast<std::size_t>(n);
    }
};

void
putTagState(std::string &out, const CacheModel::TagState &t)
{
    putU64(out, t.array.size());
    for (const CacheModel::Way &w : t.array) {
        out.push_back(w.valid ? 1 : 0);
        putU64(out, w.tag);
        putU64(out, w.lastUse);
    }
    putU64(out, t.useClock);
}

CacheModel::TagState
getTagState(Reader &r)
{
    CacheModel::TagState t;
    t.array.resize(r.count(1u << 24));
    for (CacheModel::Way &w : t.array) {
        w.valid = r.u8() != 0;
        w.tag = r.u64();
        w.lastUse = r.u64();
    }
    t.useClock = r.u64();
    return t;
}

} // namespace

std::string
ArchCheckpoint::serialize() const
{
    std::string out;
    // Rough size hint: pages dominate, then the gshare table.
    out.reserve(pages.size() * (MemImage::pageSize + 16) +
                bpred.gshare.size() + 4 * bpred.localHist.size() +
                bpred.localPht.size() + bpred.chooser.size() +
                32 * (il1.array.size() + dl1.array.size() +
                      l2.array.size()) +
                16 * btb.size() + 1024);

    out.append(ckptMagic, sizeof(ckptMagic));
    putU64(out, progHash);
    putU64(out, pc);
    putU64(out, instsExecuted);
    for (Word w : regs)
        putU64(out, w);

    // Memory pages in ascending page-number order, so two checkpoints of
    // identical content serialize identically regardless of map history.
    std::vector<const MemImage::PageMap::value_type *> sorted;
    sorted.reserve(pages.size());
    for (const auto &kv : pages)
        sorted.push_back(&kv);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto *a, const auto *b) {
                  return a->first < b->first;
              });
    putU64(out, sorted.size());
    for (const auto *kv : sorted) {
        putU64(out, kv->first);
        out.append(reinterpret_cast<const char *>(kv->second->data()),
                   kv->second->size());
    }

    putU32(out, bpred.ghist);
    putU64(out, bpred.gshare.size());
    out.append(reinterpret_cast<const char *>(bpred.gshare.data()),
               bpred.gshare.size());
    putU64(out, bpred.localHist.size());
    for (std::uint16_t h : bpred.localHist)
        putU32(out, h);
    putU64(out, bpred.localPht.size());
    out.append(reinterpret_cast<const char *>(bpred.localPht.data()),
               bpred.localPht.size());
    putU64(out, bpred.chooser.size());
    out.append(reinterpret_cast<const char *>(bpred.chooser.data()),
               bpred.chooser.size());

    putU64(out, btb.size());
    for (const Btb::Entry &e : btb) {
        out.push_back(e.valid ? 1 : 0);
        putU32(out, e.tag);
        putU64(out, e.target);
    }

    out.push_back(static_cast<char>(ras.rasTop));
    for (Addr a : ras.ras)
        putU64(out, a);

    putTagState(out, il1);
    putTagState(out, dl1);
    putTagState(out, l2);
    return out;
}

ArchCheckpoint
ArchCheckpoint::deserialize(const std::string &bytes)
{
    Reader r{reinterpret_cast<const unsigned char *>(bytes.data()),
             reinterpret_cast<const unsigned char *>(bytes.data()) +
                 bytes.size()};
    r.need(sizeof(ckptMagic));
    if (std::memcmp(r.p, ckptMagic, sizeof(ckptMagic)) != 0)
        throw std::runtime_error("not a checkpoint image (bad magic)");
    r.p += sizeof(ckptMagic);

    ArchCheckpoint ck;
    ck.progHash = r.u64();
    ck.pc = r.u64();
    ck.instsExecuted = r.u64();
    for (Word &w : ck.regs)
        w = r.u64();

    const std::size_t npages = r.count(1u << 24);
    for (std::size_t i = 0; i < npages; ++i) {
        const Addr pageNo = r.u64();
        r.need(MemImage::pageSize);
        auto page = std::make_shared<MemImage::Page>();
        std::memcpy(page->data(), r.p, MemImage::pageSize);
        r.p += MemImage::pageSize;
        ck.pages.emplace(pageNo, std::move(page));
    }

    ck.bpred.ghist = r.u32();
    ck.bpred.gshare.resize(r.count(1u << 24));
    for (std::uint8_t &v : ck.bpred.gshare)
        v = r.u8();
    ck.bpred.localHist.resize(r.count(1u << 24));
    for (std::uint16_t &v : ck.bpred.localHist)
        v = static_cast<std::uint16_t>(r.u32());
    ck.bpred.localPht.resize(r.count(1u << 24));
    for (std::uint8_t &v : ck.bpred.localPht)
        v = r.u8();
    ck.bpred.chooser.resize(r.count(1u << 24));
    for (std::uint8_t &v : ck.bpred.chooser)
        v = r.u8();

    ck.btb.resize(r.count(1u << 24));
    for (Btb::Entry &e : ck.btb) {
        e.valid = r.u8() != 0;
        e.tag = r.u32();
        e.target = r.u64();
    }

    ck.ras.rasTop = r.u8();
    for (Addr &a : ck.ras.ras)
        a = r.u64();

    ck.il1 = getTagState(r);
    ck.dl1 = getTagState(r);
    ck.l2 = getTagState(r);
    if (r.p != r.end)
        throw std::runtime_error("trailing bytes in checkpoint image");
    return ck;
}

std::uint64_t
ArchCheckpoint::fingerprint() const
{
    if (cachedFp)
        return cachedFp;
    const std::string bytes = serialize();
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    cachedFp = h ? h : 1; // reserve 0 for "not computed"
    return cachedFp;
}

} // namespace rbsim
