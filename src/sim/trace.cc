#include "sim/trace.hh"

#include <algorithm>
#include <sstream>

#include "isa/disasm.hh"

namespace rbsim
{

std::string
PipelineTrace::renderLog(std::size_t first, std::size_t count) const
{
    std::ostringstream os;
    const std::size_t end = std::min(records.size(), first + count);
    for (std::size_t i = first; i < end; ++i) {
        const TraceRecord &r = records[i];
        os << "seq=" << r.seq << " pc=" << r.pcIndex << " disp="
           << r.dispatch << " issue=" << r.issue << " done="
           << r.complete << "  " << disassemble(r.inst, r.pcIndex);
        if (r.mispredicted)
            os << "  [mispredict]";
        if (r.loadForwarded)
            os << "  [fwd]";
        if (r.bypassSlot != 0xff)
            os << "  [byp+" << static_cast<unsigned>(r.bypassSlot) << "]";
        os << "\n";
    }
    return os.str();
}

std::string
PipelineTrace::renderDiagram(std::size_t first, std::size_t count) const
{
    std::ostringstream os;
    const std::size_t end = std::min(records.size(), first + count);
    if (first >= end)
        return "";

    Cycle base = records[first].dispatch;
    Cycle last = 0;
    for (std::size_t i = first; i < end; ++i) {
        base = std::min(base, records[i].dispatch);
        last = std::max(last, records[i].complete);
    }
    constexpr Cycle maxSpan = 60;
    last = std::min(last, base + maxSpan - 1);

    for (std::size_t i = first; i < end; ++i) {
        const TraceRecord &r = records[i];
        std::string text = disassemble(r.inst, r.pcIndex);
        text.resize(24, ' ');
        os << text << '|';
        for (Cycle c = base; c <= last; ++c) {
            char mark = ' ';
            if (c == r.issue)
                mark = 'E';
            else if (c >= r.dispatch && c < r.issue)
                mark = '.';
            else if (c > r.issue && c <= r.complete)
                mark = '=';
            os << mark;
        }
        os << "|\n";
    }
    return os.str();
}

} // namespace rbsim
