/**
 * @file
 * Functional fast-forward: drive the predecoded threaded-dispatch
 * interpreter loop (func/predecode.hh) through a warming event sink at
 * tens of MIPS while warming the same cache tag arrays and
 * branch-predictor state a detailed run would touch, so an
 * ArchCheckpoint captured here
 * drops a detailed window into representative microarchitectural
 * context (the SMARTS functional-warming discipline).
 *
 * Warming mirrors the pipeline's architectural-path behavior exactly:
 * instruction lines touch the IL1 on line change (FetchEngine's lastLine
 * discipline), loads/stores walk DL1 -> L2 with write-allocate,
 * conditional branches fold predict-index/speculate/update into one
 * touch, BSR/indirect-JMP push the RAS, returns pop it, and indirect
 * JMPs train the BTB at their architectural target. What is *not*
 * modeled is wrong-path pollution and the in-flight fetch-to-retire
 * window — the standard functional-warming approximation, quantified in
 * docs/PERFORMANCE.md.
 */

#ifndef RBSIM_SIM_FASTFWD_HH
#define RBSIM_SIM_FASTFWD_HH

#include "core/machine_config.hh"
#include "frontend/branch_pred.hh"
#include "func/interp.hh"
#include "mem/hierarchy.hh"
#include "sim/checkpoint.hh"

namespace rbsim
{

/** The functional fast-forward engine. */
class FastForward
{
  public:
    /** Bind to a machine (cache geometry) and a program. The program
     * must outlive the engine; the configuration is copied. */
    FastForward(const MachineConfig &cfg, const Program &prog);

    /** Back to the program entry with cold caches and predictor. */
    void reset(const Program &prog);

    /**
     * Execute up to `max_insts` architectural instructions, warming
     * caches and predictor along the way.
     * @return instructions actually executed (short on HALT)
     */
    std::uint64_t run(std::uint64_t max_insts);

    /** True once the program halted (HALT or ran off the code). */
    bool halted() const { return interp.halted(); }

    /** Architectural instructions executed since reset/restore base. */
    std::uint64_t instsExecuted() const { return insts; }

    /** Capture the current point as a checkpoint. @pre !halted() */
    void capture(ArchCheckpoint &out) const;

    /** Resume from a checkpoint (restartable sampling campaigns). The
     * checkpoint must come from the same program. */
    void restore(const ArchCheckpoint &ck);

    /** The reference interpreter (tests compare architectural state). */
    const Interp &ref() const { return interp; }

  private:
    MachineConfig cfg;
    const Program *program;
    Interp interp;
    MemHierarchy warmMem;
    HybridPredictor predictor;
    Btb btb;
    Ras ras;
    Addr lastLine = ~Addr{0};
    std::uint64_t insts = 0;
};

} // namespace rbsim

#endif // RBSIM_SIM_FASTFWD_HH
