/**
 * @file
 * Top-level simulation entry point: run one program on one machine
 * configuration with co-simulation, and collect everything the paper's
 * experiments report.
 */

#ifndef RBSIM_SIM_SIMULATOR_HH
#define RBSIM_SIM_SIMULATOR_HH

#include <memory>
#include <string>

#include "common/stats.hh"
#include "core/core.hh"
#include "sim/checkpoint.hh"
#include "sim/cosim.hh"

namespace rbsim
{

/**
 * Everything a run produces: identification plus a snapshot of every
 * statistic the pipeline components registered (core.*, bypass.*,
 * il1/dl1/l2/mem.*, fetch.*, bpred.*, lsq.*, cosim.*). There are no
 * hand-flattened counter fields; the named accessors below are thin
 * views over the registry snapshot.
 */
struct SimResult
{
    std::string machine;
    std::string workload;
    bool halted = false;
    //! The run stopped on SimOptions::maxInsts rather than HALT or an
    //! abort (sampled measurement windows).
    bool instLimited = false;
    double hostSeconds = 0.0; //!< wall-clock spent inside core.run()
    StatSnapshot stats;

    /** Host simulation speed in simulated kilocycles per host second. */
    double
    simKhz() const
    {
        return hostSeconds > 0.0
                   ? static_cast<double>(stats.counter("core.cycles")) /
                         hostSeconds / 1e3
                   : 0.0;
    }

    /** Instructions per cycle. */
    double ipc() const { return stats.value("core.ipc"); }

    /** Conditional-branch prediction accuracy. */
    double
    branchAccuracy() const
    {
        return stats.counter("core.condBranches")
                   ? stats.value("core.branchAccuracy")
                   : 1.0;
    }

    /** Any registered counter by dotted name (0 when absent). */
    std::uint64_t
    counter(const std::string &name) const
    {
        return stats.counter(name);
    }

    /** Any registered vector/histogram by dotted name. */
    const std::vector<std::uint64_t> &
    vec(const std::string &name) const
    {
        return stats.vec(name);
    }
};

/**
 * Options for a run.
 *
 * Every field that can change a run's RESULT must be folded into
 * resultKey() — the serve layer derives its result-cache identity from
 * it, and tests/test_serve.cc carries a sizeof() guard that fails when
 * a field is added here without revisiting resultKey(). `tracer` and
 * `profiler` are pure observers (they never alter stats) and are
 * deliberately excluded.
 */
struct SimOptions
{
    Cycle maxCycles = 100'000'000;
    bool cosim = true; //!< lockstep-verify against the reference model
    //! Optional pipeline tracer (borrowed; must outlive the call).
    //! simulate() attaches it, reports stranded in-flight instructions
    //! when the run does not drain cleanly (cosim mismatch, watchdog
    //! abort, cycle budget), and finishes it — even when it rethrows.
    trace::Tracer *tracer = nullptr;
    //! Optional host-time per-stage profiler (borrowed; must outlive the
    //! call). simulate() attaches it to the core and fills its
    //! allocation counters when the counting allocator is linked in.
    HostProfiler *profiler = nullptr;
    //! Retired-instruction budget (0 = run to HALT). With warmupInsts,
    //! this is the MEASURED window length after the warmup leg.
    std::uint64_t maxInsts = 0;
    //! Detailed-warmup leg: run this many instructions, then zero every
    //! statistic (state stays warm) before the measured window. Each leg
    //! gets its own maxCycles budget.
    std::uint64_t warmupInsts = 0;
    //! Resume from this checkpoint instead of the program entry
    //! (shared so one checkpoint fans out to many jobs without copies).
    std::shared_ptr<const ArchCheckpoint> startFrom;

    /**
     * Canonical encoding of every result-affecting field (the serve
     * result-cache key component; checkpoints contribute their content
     * fingerprint).
     */
    std::string resultKey() const;
};

/**
 * A reusable simulator instance: one machine configuration, one
 * pre-constructed core + co-simulation checker + stat registry, reset in
 * place between runs (docs/SERVING.md).
 *
 * Construction is the expensive part (ring/pool/table sizing, stat
 * registration); run() rewinds everything via OooCore::reset() and the
 * per-component reset hooks, so a warm Simulator re-running a
 * same-footprint program performs zero heap allocations when paired
 * with runInto() — the serve worker pool keeps one Simulator per
 * distinct configuration and feeds jobs through exactly this path.
 *
 * Determinism contract (pinned by tests/test_serve.cc): a reset-reused
 * Simulator produces a StatSnapshot bit-identical to a freshly
 * constructed one for the same (config, program, options).
 */
class Simulator
{
  public:
    explicit Simulator(const MachineConfig &cfg);

    /** The (owned) configuration this instance simulates. */
    const MachineConfig &config() const { return cfg; }

    /** Completed runs since construction (serve telemetry). */
    std::uint64_t runsCompleted() const { return runs; }

    /**
     * Reset in place and run `prog` to completion.
     * Throws CosimMismatch if verification fails (cosim enabled).
     */
    SimResult run(const Program &prog,
                  const SimOptions &opts = SimOptions{});

    /**
     * Like run(), but reusing `out` (its maps/vectors keep their
     * storage). On a warm repeat of a same-shaped job this performs no
     * heap allocations.
     */
    void runInto(const Program &prog, const SimOptions &opts,
                 SimResult &out);

    /**
     * Capture the point the last run() stopped at as a resumable
     * checkpoint: exact retired architectural state from the cosim
     * reference (in-flight ROB/LSQ work is simply not architectural, so
     * a mid-pipeline stop — wrapped ROB, occupied LSQ — needs no
     * draining) plus the core's warm predictor/BTB/RAS/cache-tag state.
     * Requires the last run to have used cosim and stopped short of
     * HALT; throws std::logic_error otherwise.
     */
    void checkpoint(ArchCheckpoint &out) const;

  private:
    // Owned by value at stable addresses: the core/checker hold
    // pointers into `prog`, and the registry holds pointers into the
    // core's counters; both stay valid across resets because only the
    // *contents* change.
    MachineConfig cfg;
    Program prog;
    OooCore core;
    CosimChecker checker;
    StatRegistry reg;
    bool cosimOn = true;
    //! Dynamic-stream position of the last run's entry point (nonzero
    //! when it resumed from a checkpoint); checkpoint() adds it to the
    //! reference's step count so positions stay absolute across chains.
    std::uint64_t instBase = 0;
    std::uint64_t runs = 0;
};

/**
 * Run `prog` to completion on `cfg` (one-shot convenience: constructs a
 * Simulator and runs once, so both paths share one implementation).
 * Throws CosimMismatch if verification fails (cosim enabled).
 */
SimResult simulate(const MachineConfig &cfg, const Program &prog,
                   const SimOptions &opts = SimOptions{});

} // namespace rbsim

#endif // RBSIM_SIM_SIMULATOR_HH
