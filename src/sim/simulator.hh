/**
 * @file
 * Top-level simulation entry point: run one program on one machine
 * configuration with co-simulation, and collect everything the paper's
 * experiments report.
 */

#ifndef RBSIM_SIM_SIMULATOR_HH
#define RBSIM_SIM_SIMULATOR_HH

#include <string>

#include "common/stats.hh"
#include "core/core.hh"
#include "sim/cosim.hh"

namespace rbsim
{

/**
 * Everything a run produces: identification plus a snapshot of every
 * statistic the pipeline components registered (core.*, bypass.*,
 * il1/dl1/l2/mem.*, fetch.*, bpred.*, lsq.*, cosim.*). There are no
 * hand-flattened counter fields; the named accessors below are thin
 * views over the registry snapshot.
 */
struct SimResult
{
    std::string machine;
    std::string workload;
    bool halted = false;
    double hostSeconds = 0.0; //!< wall-clock spent inside core.run()
    StatSnapshot stats;

    /** Host simulation speed in simulated kilocycles per host second. */
    double
    simKhz() const
    {
        return hostSeconds > 0.0
                   ? static_cast<double>(stats.counter("core.cycles")) /
                         hostSeconds / 1e3
                   : 0.0;
    }

    /** Instructions per cycle. */
    double ipc() const { return stats.value("core.ipc"); }

    /** Conditional-branch prediction accuracy. */
    double
    branchAccuracy() const
    {
        return stats.counter("core.condBranches")
                   ? stats.value("core.branchAccuracy")
                   : 1.0;
    }

    /** Any registered counter by dotted name (0 when absent). */
    std::uint64_t
    counter(const std::string &name) const
    {
        return stats.counter(name);
    }

    /** Any registered vector/histogram by dotted name. */
    const std::vector<std::uint64_t> &
    vec(const std::string &name) const
    {
        return stats.vec(name);
    }
};

/** Options for a run. */
struct SimOptions
{
    Cycle maxCycles = 100'000'000;
    bool cosim = true; //!< lockstep-verify against the reference model
    //! Optional pipeline tracer (borrowed; must outlive the call).
    //! simulate() attaches it, reports stranded in-flight instructions
    //! when the run does not drain cleanly (cosim mismatch, watchdog
    //! abort, cycle budget), and finishes it — even when it rethrows.
    trace::Tracer *tracer = nullptr;
    //! Optional host-time per-stage profiler (borrowed; must outlive the
    //! call). simulate() attaches it to the core and fills its
    //! allocation counters when the counting allocator is linked in.
    HostProfiler *profiler = nullptr;
};

/**
 * A reusable simulator instance: one machine configuration, one
 * pre-constructed core + co-simulation checker + stat registry, reset in
 * place between runs (docs/SERVING.md).
 *
 * Construction is the expensive part (ring/pool/table sizing, stat
 * registration); run() rewinds everything via OooCore::reset() and the
 * per-component reset hooks, so a warm Simulator re-running a
 * same-footprint program performs zero heap allocations when paired
 * with runInto() — the serve worker pool keeps one Simulator per
 * distinct configuration and feeds jobs through exactly this path.
 *
 * Determinism contract (pinned by tests/test_serve.cc): a reset-reused
 * Simulator produces a StatSnapshot bit-identical to a freshly
 * constructed one for the same (config, program, options).
 */
class Simulator
{
  public:
    explicit Simulator(const MachineConfig &cfg);

    /** The (owned) configuration this instance simulates. */
    const MachineConfig &config() const { return cfg; }

    /** Completed runs since construction (serve telemetry). */
    std::uint64_t runsCompleted() const { return runs; }

    /**
     * Reset in place and run `prog` to completion.
     * Throws CosimMismatch if verification fails (cosim enabled).
     */
    SimResult run(const Program &prog,
                  const SimOptions &opts = SimOptions{});

    /**
     * Like run(), but reusing `out` (its maps/vectors keep their
     * storage). On a warm repeat of a same-shaped job this performs no
     * heap allocations.
     */
    void runInto(const Program &prog, const SimOptions &opts,
                 SimResult &out);

  private:
    // Owned by value at stable addresses: the core/checker hold
    // pointers into `prog`, and the registry holds pointers into the
    // core's counters; both stay valid across resets because only the
    // *contents* change.
    MachineConfig cfg;
    Program prog;
    OooCore core;
    CosimChecker checker;
    StatRegistry reg;
    bool cosimOn = true;
    std::uint64_t runs = 0;
};

/**
 * Run `prog` to completion on `cfg` (one-shot convenience: constructs a
 * Simulator and runs once, so both paths share one implementation).
 * Throws CosimMismatch if verification fails (cosim enabled).
 */
SimResult simulate(const MachineConfig &cfg, const Program &prog,
                   const SimOptions &opts = SimOptions{});

} // namespace rbsim

#endif // RBSIM_SIM_SIMULATOR_HH
