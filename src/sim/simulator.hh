/**
 * @file
 * Top-level simulation entry point: run one program on one machine
 * configuration with co-simulation, and collect everything the paper's
 * experiments report.
 */

#ifndef RBSIM_SIM_SIMULATOR_HH
#define RBSIM_SIM_SIMULATOR_HH

#include <string>

#include "core/core.hh"

namespace rbsim
{

/** Everything a run produces. */
struct SimResult
{
    std::string machine;
    std::string workload;
    bool halted = false;
    CoreStats core;

    // Memory system.
    std::uint64_t il1Accesses = 0, il1Misses = 0;
    std::uint64_t dl1Accesses = 0, dl1Misses = 0;
    std::uint64_t l2Accesses = 0, l2Misses = 0;
    std::uint64_t memAccesses = 0;

    // Co-simulation.
    std::uint64_t cosimChecked = 0;

    /** Instructions per cycle. */
    double ipc() const { return core.ipc(); }

    /** Conditional-branch prediction accuracy. */
    double
    branchAccuracy() const
    {
        if (core.condBranches == 0)
            return 1.0;
        return 1.0 - double(core.condMispredicts) /
                         double(core.condBranches);
    }
};

/** Options for a run. */
struct SimOptions
{
    Cycle maxCycles = 100'000'000;
    bool cosim = true; //!< lockstep-verify against the reference model
};

/**
 * Run `prog` to completion on `cfg`.
 * Throws CosimMismatch if verification fails (cosim enabled).
 */
SimResult simulate(const MachineConfig &cfg, const Program &prog,
                   const SimOptions &opts = SimOptions{});

} // namespace rbsim

#endif // RBSIM_SIM_SIMULATOR_HH
