/**
 * @file
 * SMARTS-style systematic sampling: alternate cheap functional
 * fast-forward (with cache/predictor warming, src/sim/fastfwd.hh) with
 * short detailed windows, and report mean IPC with a 95% confidence
 * interval instead of simulating every instruction in detail.
 *
 * The functional model advances through the WHOLE program; detailed
 * windows run "on the side" from checkpoints captured at each sampling
 * point. That makes the windows independent of one another — they can
 * run sequentially here or be sharded across the serve worker pool
 * (src/serve/sampled.hh) with identical results.
 *
 * Methodology, bias sources, and CI interpretation: docs/EXPERIMENTS.md.
 */

#ifndef RBSIM_SIM_SAMPLING_HH
#define RBSIM_SIM_SAMPLING_HH

#include <memory>
#include <vector>

#include "sim/simulator.hh"

namespace rbsim
{

/** Sampling regimen. Window k starts at dynamic-instruction position
 * skipInsts + k * periodInsts; keep periodInsts >= warmupInsts +
 * measureInsts so measured windows never overlap. */
struct SamplingOptions
{
    std::uint64_t skipInsts = 0;      //!< initialization skip
    std::uint64_t periodInsts = 50'000; //!< sampling period U
    std::uint64_t warmupInsts = 2'000;  //!< detailed pipeline warmup/window
    std::uint64_t measureInsts = 10'000; //!< measured instructions/window
    std::uint64_t maxWindows = 0;     //!< cap (0 = to program end)
    Cycle maxCyclesPerWindow = 10'000'000; //!< per detailed leg
    bool cosim = true; //!< lockstep-verify the detailed windows
};

/** What a sampling campaign produces. */
struct SampledResult
{
    std::string machine;
    std::string workload;
    std::uint64_t windows = 0;   //!< detailed windows simulated
    std::uint64_t ffInsts = 0;   //!< functional instructions executed
    bool completed = false;      //!< functional model reached HALT
    double ipcMean = 0.0;        //!< mean of per-window IPCs
    double ipcCi95 = 0.0;        //!< 95% CI half-width of that mean
    double hostSeconds = 0.0;    //!< wall clock, fast-forward included
    std::vector<double> windowIpc; //!< per-window IPC, in stream order
    //! Counters/vectors summed across measured windows, with the known
    //! derived formulas (core.ipc, missRates, ...) recomputed from the
    //! merged counters. Describes the sampled subset, not the program.
    StatSnapshot merged;
};

/**
 * One fast-forward pass over the program collecting a checkpoint at
 * every sampling point of `opts`. Optionally reports the functional
 * instruction count reached and whether the program completed.
 */
std::vector<std::shared_ptr<const ArchCheckpoint>>
collectCheckpoints(const MachineConfig &cfg, const Program &prog,
                   const SamplingOptions &opts,
                   std::uint64_t *ff_insts = nullptr,
                   bool *completed = nullptr);

/** 95% CI half-width of the mean of `xs` (Student t for small samples;
 * 0 for fewer than two samples). */
double ci95HalfWidth(const std::vector<double> &xs);

/** Element-wise accumulate one measured window's counters/vectors into
 * `into` (formula keys are carried over; recompute via
 * finalizeMergedStats once all windows are in). */
void accumulateWindowStats(StatSnapshot &into, const StatSnapshot &win);

/** Recompute the derived formulas of a merged snapshot from its summed
 * counters (ratios of sums, not means of ratios). */
void finalizeMergedStats(StatSnapshot &merged);

/**
 * Run a whole sampling campaign in-process: collect checkpoints, run
 * each detailed window on one warm Simulator, merge. Throws
 * CosimMismatch if any window diverges (cosim enabled).
 */
SampledResult simulateSampled(const MachineConfig &cfg,
                              const Program &prog,
                              const SamplingOptions &opts);

} // namespace rbsim

#endif // RBSIM_SIM_SAMPLING_HH
