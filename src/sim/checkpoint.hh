/**
 * @file
 * Architectural checkpoints: everything needed to resume a program
 * mid-run on a fresh (reset) core — architectural registers, PC, the
 * memory image (copy-on-write page shares, zumastor-snapshot style) —
 * plus the warm microarchitectural state that makes short detailed
 * windows representative: branch-predictor tables, BTB, RAS, and the
 * three cache tag arrays.
 *
 * Checkpoints are immutable after capture and cheap to hold: memory
 * pages are shared with the image they were captured from (the first
 * write on either side clones the touched page), and the warm tables are
 * flat copies (~1 MiB for the paper's Table 2 machine). serialize() /
 * deserialize() give a stable little-endian binary form whose round-trip
 * is bit-exact (tests/test_checkpoint.cc), and fingerprint() hashes that
 * form for result-cache identity.
 */

#ifndef RBSIM_SIM_CHECKPOINT_HH
#define RBSIM_SIM_CHECKPOINT_HH

#include <array>
#include <cstdint>
#include <string>

#include "frontend/branch_pred.hh"
#include "func/mem_image.hh"
#include "mem/cache.hh"

namespace rbsim
{

/** One resumable point of one program's execution. */
struct ArchCheckpoint
{
    // ------------------------------------------- architectural state
    std::uint64_t progHash = 0; //!< Program::hash() of the captured run
    std::uint64_t pc = 0;       //!< next instruction index to execute
    std::uint64_t instsExecuted = 0; //!< position in the dynamic stream
    std::array<Word, numArchRegs> regs{};
    MemImage::PageMap pages; //!< CoW shares of the captured image

    // ---------------------------------- warm microarchitectural state
    PredictorState bpred;
    std::vector<Btb::Entry> btb;
    BpSnapshot ras; //!< rasTop + stack (the indices field is unused)
    CacheModel::TagState il1, dl1, l2;

    /** Stable binary form (little-endian, pages in address order). */
    std::string serialize() const;

    /** Rebuild from serialize() output. Throws std::runtime_error on a
     * malformed or truncated image. */
    static ArchCheckpoint deserialize(const std::string &bytes);

    /**
     * FNV-1a hash of the serialized form: the checkpoint's result-cache
     * identity (two checkpoints with equal fingerprints resume
     * identically). Computed once and memoized — checkpoints are
     * immutable after capture.
     */
    std::uint64_t fingerprint() const;

  private:
    mutable std::uint64_t cachedFp = 0; //!< 0 = not yet computed
};

} // namespace rbsim

#endif // RBSIM_SIM_CHECKPOINT_HH
