/**
 * @file
 * Pipeline tracing: records per-retired-instruction stage timings and
 * renders them as text (a machine-readable log or a Figure 5/7-style
 * pipeline diagram). Attachable to any core through the retire hook, so
 * tracing composes with co-simulation.
 */

#ifndef RBSIM_SIM_TRACE_HH
#define RBSIM_SIM_TRACE_HH

#include <string>
#include <vector>

#include "core/rob.hh"

namespace rbsim
{

/** One retired instruction's timing record. */
struct TraceRecord
{
    std::uint64_t seq = 0;
    std::uint64_t pcIndex = 0;
    Inst inst;
    Cycle dispatch = 0;
    Cycle issue = 0;
    Cycle complete = 0;
    bool mispredicted = false;
    bool loadForwarded = false;
    std::uint8_t bypassSlot = 0xff;
};

/**
 * Collects retirement-order timing records.
 *
 * Usage:
 * @code
 *   PipelineTrace trace(2000);
 *   core.onRetire([&](const RobEntry &e) { trace.record(e); });
 *   core.run(...);
 *   std::cout << trace.renderDiagram(0, 20);
 * @endcode
 * To combine with co-simulation, call both from one hook.
 */
class PipelineTrace
{
  public:
    /** @param max_records stop recording beyond this many (0 = all) */
    explicit PipelineTrace(std::size_t max_records = 0)
        : cap(max_records)
    {}

    /** Record one retired instruction. */
    void
    record(const RobEntry &e)
    {
        if (cap && records.size() >= cap)
            return;
        TraceRecord r;
        r.seq = e.seq;
        r.pcIndex = e.pcIndex;
        r.inst = e.inst;
        r.dispatch = e.dispatchCycle;
        r.issue = e.issueCycle;
        r.complete = e.completeCycle;
        r.mispredicted = e.mispredicted;
        r.loadForwarded = e.loadForwarded;
        r.bypassSlot = e.bypassSlot;
        records.push_back(r);
    }

    /** All records, retirement order. */
    const std::vector<TraceRecord> &all() const { return records; }

    /**
     * One line per instruction: cycles, disassembly, annotations.
     * @param first index of the first record to render
     * @param count how many records
     */
    std::string renderLog(std::size_t first, std::size_t count) const;

    /**
     * A Figure 5/7-style diagram: one row per instruction, one column
     * per cycle ('D' dispatch wait, 'E' issue, '=' completing).
     */
    std::string renderDiagram(std::size_t first, std::size_t count) const;

  private:
    std::vector<TraceRecord> records;
    std::size_t cap;
};

} // namespace rbsim

#endif // RBSIM_SIM_TRACE_HH
