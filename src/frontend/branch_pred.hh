/**
 * @file
 * Branch prediction: the 48KB hybrid gshare/PAs predictor, 4096-entry BTB,
 * and return-address stack of paper Table 2.
 *
 * Budget breakdown (~48KB):
 *  - gshare: 2^17 two-bit counters (32 KiB), 17-bit global history
 *  - PAs: 4096 x 12-bit local histories (6 KiB) + 2^12 two-bit pattern
 *    counters (1 KiB)
 *  - chooser: 2^15 two-bit counters (8 KiB), indexed like gshare
 *
 * Global history is updated speculatively at prediction time and repaired
 * from a per-branch snapshot on misprediction. Local histories update
 * speculatively without repair (a standard simulator approximation, noted
 * in DESIGN.md); all counters update at retirement.
 */

#ifndef RBSIM_FRONTEND_BRANCH_PRED_HH
#define RBSIM_FRONTEND_BRANCH_PRED_HH

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace rbsim
{

/** Saturating 2-bit counter helpers. */
inline std::uint8_t
counterUpdate(std::uint8_t ctr, bool up)
{
    if (up)
        return ctr < 3 ? ctr + 1 : 3;
    return ctr > 0 ? ctr - 1 : 0;
}

/** Table indices latched at prediction time so retirement trains the
 * exact entries the prediction read. */
struct BpIndices
{
    std::uint32_t gidx = 0;
    std::uint32_t lidx = 0;
    std::uint32_t cidx = 0;
};

/** Predictor state captured per in-flight branch for repair. */
struct BpSnapshot
{
    std::uint32_t globalHistory = 0;
    std::uint8_t rasTop = 0;
    std::array<Addr, 16> ras{};
    BpIndices indices; //!< conditional branches: fetch-time table indices
};

/** Direction predictor component choice (for stats). */
enum class BpComponent : unsigned char { Gshare, Local };

/** Complete table/history state of the hybrid predictor (checkpoints). */
struct PredictorState
{
    std::uint32_t ghist = 0;
    std::vector<std::uint8_t> gshare;
    std::vector<std::uint16_t> localHist;
    std::vector<std::uint8_t> localPht;
    std::vector<std::uint8_t> chooser;
};

/** The hybrid direction predictor. */
class HybridPredictor
{
  public:
    HybridPredictor();

    /** Back to construction state in place: counter tables refilled to
     * their initial biases, histories and stat counters zeroed. */
    void
    reset()
    {
        ghist = 0;
        std::fill(gshareTable.begin(), gshareTable.end(), 1);
        std::fill(localHist.begin(), localHist.end(), 0);
        std::fill(localPht.begin(), localPht.end(), 1);
        std::fill(chooser.begin(), chooser.end(), 2);
        lookups = gshareChosen = localChosen = 0;
    }

    /**
     * Predict the direction of a conditional branch at pc (index),
     * optionally latching the table indices used (pass them back to
     * update() at retirement).
     */
    bool predict(std::uint64_t pc, BpIndices *latched = nullptr) const;

    /** Which component the chooser would select (stats/tests). */
    BpComponent chosenComponent(std::uint64_t pc) const;

    /** Speculatively shift the outcome into the histories. */
    void speculate(std::uint64_t pc, bool taken);

    /** Current global history (captured into snapshots). */
    std::uint32_t globalHistory() const { return ghist; }

    /** Restore global history after a squash. */
    void restoreHistory(std::uint32_t h) { ghist = h & ghistMask; }

    /** Retirement update: train the exact entries read at fetch. */
    void update(const BpIndices &idx, bool taken);

    /**
     * Functional-touch warming (fast-forward): one architectural branch
     * outcome folded through the same predict-time index latch,
     * speculative history shift, and retirement training the pipeline
     * performs — minus the in-flight window between them, which is the
     * standard warming approximation.
     */
    void
    touch(std::uint64_t pc, bool taken)
    {
        const BpIndices idx = indicesFor(pc);
        speculate(pc, taken);
        update(idx, taken);
    }

    /** Copy out the complete table/history state (checkpoints). */
    PredictorState
    saveState() const
    {
        return PredictorState{ghist, gshareTable, localHist, localPht,
                              chooser};
    }

    /** Install a saved state; stat counters are left untouched. */
    void
    restoreState(const PredictorState &s)
    {
        assert(s.gshare.size() == gshareTable.size() &&
               s.localHist.size() == localHist.size() &&
               s.localPht.size() == localPht.size() &&
               s.chooser.size() == chooser.size() &&
               "predictor state geometry mismatch");
        ghist = s.ghist & ghistMask;
        gshareTable = s.gshare;
        localHist = s.localHist;
        localPht = s.localPht;
        chooser = s.chooser;
    }

    /** Zero the lookup tallies only (measurement windows). */
    void clearStats() { lookups = gshareChosen = localChosen = 0; }

    /** Bind predictor stats into `g` (the "bpred" group). */
    void
    registerStats(StatGroup g) const
    {
        g.counter("lookups", &lookups,
                  "direction predictions (wrong path included)");
        g.counter("gshareChosen", &gshareChosen,
                  "lookups the chooser sent to gshare");
        g.counter("localChosen", &localChosen,
                  "lookups the chooser sent to PAs");
    }

  private:
    // Lookup tallies live in const predict(); wrong-path predictions
    // are counted, matching the hardware's table activity.
    mutable std::uint64_t lookups = 0;
    mutable std::uint64_t gshareChosen = 0;
    mutable std::uint64_t localChosen = 0;

    static constexpr unsigned ghistBits = 17;
    static constexpr std::uint32_t ghistMask = (1u << ghistBits) - 1;
    static constexpr unsigned localHistBits = 12;
    static constexpr unsigned numLocalHist = 4096;
    static constexpr unsigned chooserBits = 15;

    unsigned gshareIndex(std::uint64_t pc) const;
    unsigned gshareIndexWith(std::uint64_t pc, std::uint32_t hist) const;
    unsigned localIndex(std::uint64_t pc) const;
    unsigned chooserIndex(std::uint64_t pc) const;

    std::uint32_t ghist = 0;
    std::vector<std::uint8_t> gshareTable;   // 2^17 2-bit counters
    std::vector<std::uint16_t> localHist;    // 4096 12-bit histories
    std::vector<std::uint8_t> localPht;      // 2^12 2-bit counters
    std::vector<std::uint8_t> chooser;       // 2^15 2-bit counters

    BpIndices indicesFor(std::uint64_t pc) const;
};

/** Direct-mapped branch target buffer with partial tags. */
class Btb
{
  public:
    struct Entry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        std::uint64_t target = 0;
    };

    explicit Btb(unsigned entries = 4096);

    /** Look up a predicted target; nullopt on miss. */
    bool lookup(std::uint64_t pc, std::uint64_t &target) const;

    /** Install / update a target. */
    void update(std::uint64_t pc, std::uint64_t target);

    /** Invalidate every entry in place. */
    void
    reset()
    {
        std::fill(table.begin(), table.end(), Entry{});
    }

    /** Copy out / install the whole table (checkpoints). */
    const std::vector<Entry> &entries() const { return table; }
    void
    restoreEntries(const std::vector<Entry> &e)
    {
        assert(e.size() == table.size() && "BTB size mismatch");
        table = e;
    }

  private:
    unsigned indexOf(std::uint64_t pc) const;
    std::uint32_t tagOf(std::uint64_t pc) const;
    std::vector<Entry> table;
    unsigned indexBits;
};

/** 16-entry return address stack. */
class Ras
{
  public:
    /** Back to construction state. */
    void
    reset()
    {
        stack.fill(0);
        top = 0;
    }

    /** Push a return address (byte address). */
    void
    push(Addr a)
    {
        top = (top + 1) % stack.size();
        stack[top] = a;
    }

    /** Pop the predicted return address (0 if apparently empty). */
    Addr
    pop()
    {
        const Addr a = stack[top];
        top = (top + stack.size() - 1) % stack.size();
        return a;
    }

    /** Capture for repair. */
    void
    save(BpSnapshot &s) const
    {
        s.rasTop = static_cast<std::uint8_t>(top);
        for (std::size_t i = 0; i < stack.size(); ++i)
            s.ras[i] = stack[i];
    }

    /** Restore after a squash. */
    void
    restore(const BpSnapshot &s)
    {
        top = s.rasTop;
        for (std::size_t i = 0; i < stack.size(); ++i)
            stack[i] = s.ras[i];
    }

  private:
    std::array<Addr, 16> stack{};
    std::size_t top = 0;
};

} // namespace rbsim

#endif // RBSIM_FRONTEND_BRANCH_PRED_HH
