#include "frontend/fetch.hh"

#include "isa/opclass.hh"

namespace rbsim
{

FetchEngine::FetchEngine(const MachineConfig &cfg, const Program &prog,
                         MemHierarchy &mem)
    : config(cfg), program(&prog), memory(mem), fetchPc(prog.entry)
{
}

void
FetchEngine::redirect(std::uint64_t pc_index, Cycle now)
{
    fetchPc = pc_index;
    stopped = false;
    resumeCycle = now + 1;
    lastLine = ~Addr{0};
}

unsigned
FetchEngine::fetchCycle(Cycle now, std::vector<FetchedInst> &out)
{
    unsigned fetched = 0;
    if (stopped || now < resumeCycle)
        return fetched;
    if (fetchPc >= program->code.size()) {
        stopped = true; // off the code image: wait for a squash
        return fetched;
    }

    unsigned blocks_started = 1;
    while (fetched < config.fetchWidth) {
        if (fetchPc >= program->code.size())
            break;

        // Instruction cache: charge misses; pipelined hits are covered
        // by the front-end depth.
        const Addr line =
            program->byteAddrOf(fetchPc) & ~Addr{config.il1.lineBytes - 1};
        if (line != lastLine) {
            const Cycle ready = memory.instFetch(line, now);
            lastLine = line;
            if (ready > now + config.il1.latency) {
                // Miss: deliver what we have, resume when the line fills.
                resumeCycle = ready;
                icacheStallCycles += ready - now;
                return fetched;
            }
        }

        FetchedInst f;
        f.pcIndex = fetchPc;
        f.inst = program->code[fetchPc];
        f.isCtrl = isControl(f.inst.op);

        if (f.inst.op == Opcode::HALT) {
            out.push_back(f);
            ++fetched;
            stopped = true; // nothing sensible follows
            break;
        }

        if (!f.isCtrl) {
            out.push_back(f);
            ++fetched;
            ++fetchPc;
            continue;
        }

        // Control instruction: capture repair state, predict, follow.
        f.snapshot.globalHistory = predictor.globalHistory();
        ras.save(f.snapshot);

        const Inst &inst = f.inst;
        if (isCondBranch(inst.op)) {
            f.predTaken = predictor.predict(f.pcIndex,
                                            &f.snapshot.indices);
            predictor.speculate(f.pcIndex, f.predTaken);
            f.predNextPc = f.predTaken
                ? static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(f.pcIndex) + 1 + inst.disp)
                : f.pcIndex + 1;
        } else if (inst.op == Opcode::BR || inst.op == Opcode::BSR) {
            f.predTaken = true;
            f.predNextPc = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(f.pcIndex) + 1 + inst.disp);
            if (inst.op == Opcode::BSR && inst.ra != zeroReg)
                ras.push(program->byteAddrOf(f.pcIndex + 1));
        } else { // JMP
            f.predTaken = true;
            const bool is_return = inst.ra == zeroReg;
            if (is_return) {
                const Addr target = ras.pop();
                if (program->isCodeAddr(target)) {
                    f.predNextPc = program->indexOf(target);
                } else {
                    f.stalledJmp = true;
                }
            } else {
                // Indirect call: predict through the BTB, push the
                // return address.
                std::uint64_t target = 0;
                if (btb.lookup(f.pcIndex, target) &&
                    target < program->code.size()) {
                    f.predNextPc = target;
                } else {
                    f.stalledJmp = true;
                }
                ras.push(program->byteAddrOf(f.pcIndex + 1));
            }
        }

        out.push_back(f);
        ++fetched;

        if (f.stalledJmp) {
            stopped = true; // resume at resolution via redirect()
            break;
        }

        fetchPc = f.predNextPc;
        if (f.predTaken && f.predNextPc != f.pcIndex + 1) {
            // Followed a taken branch: starting another basic block.
            if (++blocks_started > config.fetchBlocks)
                break;
        } else {
            // Not-taken branch also ends a basic block.
            if (++blocks_started > config.fetchBlocks)
                break;
        }
    }
    return fetched;
}

} // namespace rbsim
