#include "frontend/branch_pred.hh"

namespace rbsim
{

HybridPredictor::HybridPredictor()
    : gshareTable(1u << ghistBits, 1),    // weakly not-taken
      localHist(numLocalHist, 0),
      localPht(1u << localHistBits, 1),
      chooser(1u << chooserBits, 2)       // weakly prefer gshare... see below
{
    // Chooser semantics: counter >= 2 selects gshare, < 2 selects local.
    // Initialized to 2 so the global component starts as the default.
}

unsigned
HybridPredictor::gshareIndexWith(std::uint64_t pc, std::uint32_t hist) const
{
    return static_cast<unsigned>(
        (pc ^ hist) & ((1u << ghistBits) - 1));
}

unsigned
HybridPredictor::gshareIndex(std::uint64_t pc) const
{
    return gshareIndexWith(pc, ghist);
}

unsigned
HybridPredictor::localIndex(std::uint64_t pc) const
{
    return static_cast<unsigned>(pc & (numLocalHist - 1));
}

unsigned
HybridPredictor::chooserIndex(std::uint64_t pc) const
{
    return static_cast<unsigned>(
        (pc ^ ghist) & ((1u << chooserBits) - 1));
}

BpIndices
HybridPredictor::indicesFor(std::uint64_t pc) const
{
    BpIndices idx;
    idx.gidx = gshareIndex(pc);
    const std::uint16_t lh = localHist[localIndex(pc)];
    idx.lidx = static_cast<std::uint32_t>(
        (lh ^ pc) & ((1u << localHistBits) - 1));
    idx.cidx = chooserIndex(pc);
    return idx;
}

bool
HybridPredictor::predict(std::uint64_t pc, BpIndices *latched) const
{
    const BpIndices idx = indicesFor(pc);
    if (latched)
        *latched = idx;
    const bool g = gshareTable[idx.gidx] >= 2;
    const bool l = localPht[idx.lidx] >= 2;
    const bool useGshare = chooser[idx.cidx] >= 2;
    ++lookups;
    ++(useGshare ? gshareChosen : localChosen);
    return useGshare ? g : l;
}

BpComponent
HybridPredictor::chosenComponent(std::uint64_t pc) const
{
    return chooser[chooserIndex(pc)] >= 2 ? BpComponent::Gshare
                                          : BpComponent::Local;
}

void
HybridPredictor::speculate(std::uint64_t pc, bool taken)
{
    ghist = ((ghist << 1) | (taken ? 1 : 0)) & ghistMask;
    // Local history updates speculatively and is not repaired on squash
    // (documented approximation).
    std::uint16_t &lh = localHist[localIndex(pc)];
    lh = static_cast<std::uint16_t>(
        ((lh << 1) | (taken ? 1 : 0)) & ((1u << localHistBits) - 1));
}

void
HybridPredictor::update(const BpIndices &idx, bool taken)
{
    // Retirement training of the exact entries the prediction read.
    const bool g = gshareTable[idx.gidx] >= 2;
    const bool l = localPht[idx.lidx] >= 2;
    gshareTable[idx.gidx] = counterUpdate(gshareTable[idx.gidx], taken);
    localPht[idx.lidx] = counterUpdate(localPht[idx.lidx], taken);
    if (g != l) {
        // Train the chooser toward whichever component was right.
        chooser[idx.cidx] = counterUpdate(chooser[idx.cidx], g == taken);
    }
}

Btb::Btb(unsigned entries)
    : table(entries)
{
    unsigned bits = 0;
    while ((1u << bits) < entries)
        ++bits;
    indexBits = bits;
}

unsigned
Btb::indexOf(std::uint64_t pc) const
{
    return static_cast<unsigned>(pc & ((1u << indexBits) - 1));
}

std::uint32_t
Btb::tagOf(std::uint64_t pc) const
{
    return static_cast<std::uint32_t>(pc >> indexBits) & 0xffff;
}

bool
Btb::lookup(std::uint64_t pc, std::uint64_t &target) const
{
    const Entry &e = table[indexOf(pc)];
    if (!e.valid || e.tag != tagOf(pc))
        return false;
    target = e.target;
    return true;
}

void
Btb::update(std::uint64_t pc, std::uint64_t target)
{
    Entry &e = table[indexOf(pc)];
    e.valid = true;
    e.tag = tagOf(pc);
    e.target = target;
}

} // namespace rbsim
