/**
 * @file
 * Fetch engine: up to 8 instructions / 2 basic blocks per cycle from a
 * pipelined instruction cache, with branch prediction at fetch (paper
 * Table 2).
 *
 * Direct branch targets are visible at fetch (instructions are stored
 * pre-decoded); the BTB predicts indirect-jump targets and the RAS
 * predicts returns (JMP with ra == r31 is the return idiom). A JMP with
 * no predicted target stalls fetch until it resolves.
 */

#ifndef RBSIM_FRONTEND_FETCH_HH
#define RBSIM_FRONTEND_FETCH_HH

#include <vector>

#include "frontend/branch_pred.hh"
#include "isa/program.hh"
#include "mem/hierarchy.hh"

namespace rbsim
{

/** One fetched instruction with its prediction state. */
struct FetchedInst
{
    std::uint64_t pcIndex = 0;
    Inst inst;
    bool isCtrl = false;
    bool predTaken = false;
    std::uint64_t predNextPc = 0;
    bool stalledJmp = false;  //!< no predicted target; fetch stalled
    BpSnapshot snapshot;      //!< predictor state before this branch
};

/** The fetch engine. */
class FetchEngine
{
  public:
    FetchEngine(const MachineConfig &cfg, const Program &prog,
                MemHierarchy &mem);

    /**
     * Back to construction state, rebound to `prog` (which must outlive
     * the engine): PC at the entry point, predictor/BTB/RAS cold, stat
     * counters zeroed. No allocation — every table is refilled in
     * place.
     */
    void
    reset(const Program &prog)
    {
        program = &prog;
        fetchPc = prog.entry;
        resumeCycle = 0;
        stopped = false;
        lastLine = ~Addr{0};
        icacheStallCycles = 0;
        predictor.reset();
        btb.reset();
        ras.reset();
    }

    /**
     * Fetch one cycle's worth of instructions, appending to the
     * caller-owned `out` (not cleared here; the core reuses one buffer
     * across cycles so the hot path never allocates).
     * @return the number of instructions appended (may be 0)
     */
    unsigned fetchCycle(Cycle now, std::vector<FetchedInst> &out);

    /** Redirect after a branch resolution or squash. */
    void redirect(std::uint64_t pc_index, Cycle now);

    /**
     * Start fetching at `pc_index` instead of the program entry point
     * (checkpoint restore; call right after reset()). A PC off the end
     * of the code image parks fetch, matching the functional model's
     * run-off-the-end halt.
     */
    void
    startAt(std::uint64_t pc_index)
    {
        fetchPc = pc_index;
        stopped = pc_index >= program->code.size();
        lastLine = ~Addr{0};
    }

    /** Zero the stall/lookup counters only, leaving predictor and icache
     * state warm (measurement windows after a warmup leg). */
    void
    clearStats()
    {
        icacheStallCycles = 0;
        predictor.clearStats();
    }

    /** True when fetch is parked (HALT fetched, unpredicted JMP, or PC
     * off the end of the code). */
    bool parked() const { return stopped; }

    /** Cycle at which a stalled (icache miss / post-redirect) fetch can
     * next deliver instructions; earlier fetchCycle calls are inert.
     * Drives the core's idle-cycle skipping. */
    Cycle resumeAt() const { return resumeCycle; }

    /** The direction predictor (resolution/retire updates, repair). */
    HybridPredictor predictor;

    /** Indirect-target predictor. */
    Btb btb;

    /** Return address stack. */
    Ras ras;

    /** Fetch stall cycles due to instruction-cache misses (stats). */
    std::uint64_t icacheStallCycles = 0;

    /** Register fetch + branch predictor stats as root groups of
     * `reg`. */
    void
    registerStats(StatRegistry &reg) const
    {
        statGroup(reg, "fetch").counter(
            "icacheStallCycles", &icacheStallCycles,
            "fetch cycles lost to instruction-cache misses");
        predictor.registerStats(statGroup(reg, "bpred"));
    }

  private:
    const MachineConfig &config;
    //! Pointer, not reference: reset(prog) rebinds it for simulator
    //! reuse. Never null.
    const Program *program;
    MemHierarchy &memory;

    std::uint64_t fetchPc = 0;
    Cycle resumeCycle = 0;
    bool stopped = false;
    Addr lastLine = ~Addr{0};
};

} // namespace rbsim

#endif // RBSIM_FRONTEND_FETCH_HH
