#include "workloads/kernels.hh"

#include <algorithm>
#include <numeric>

namespace rbsim
{

void
emitXorshift(CodeBuilder &cb, Reg state, Reg tmp)
{
    cb.opi(Opcode::SLL, state, 13, tmp);
    cb.op3(Opcode::XOR, state, tmp, state);
    cb.opi(Opcode::SRL, state, 7, tmp);
    cb.op3(Opcode::XOR, state, tmp, state);
    cb.opi(Opcode::SLL, state, 17, tmp);
    cb.op3(Opcode::XOR, state, tmp, state);
}

std::vector<Word>
randomWords(Rng &rng, std::size_t n, Word mask)
{
    std::vector<Word> out(n);
    for (Word &w : out)
        w = rng.next() & mask;
    return out;
}

Addr
buildRandomStream(CodeBuilder &cb, Rng &rng, Addr base, std::size_t count,
                  Word mask)
{
    cb.dataWords(base, randomWords(rng, count, mask));
    return base;
}

Addr
buildLinkedList(CodeBuilder &cb, Rng &rng, Addr base, std::size_t count,
                std::size_t node_bytes)
{
    assert(node_bytes >= 16 && (node_bytes & 7) == 0);
    // Shuffled placement order.
    std::vector<std::size_t> order(count);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = count; i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);

    std::vector<Word> image(count * node_bytes / 8, 0);
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t slot = order[i];
        const std::size_t next_slot =
            i + 1 < count ? order[i + 1] : ~std::size_t{0};
        const Addr next =
            i + 1 < count ? base + next_slot * node_bytes : 0;
        image[slot * node_bytes / 8] = next;
        image[slot * node_bytes / 8 + 1] = rng.next() & 0xffff;
    }
    cb.dataWords(base, image);
    return base + order[0] * node_bytes;
}

Addr
buildBinaryTree(CodeBuilder &cb, Rng &rng, Addr base, std::size_t count)
{
    // Node: [left, right, key, payload], inserted in random key order so
    // the tree is roughly balanced.
    constexpr std::size_t nodeWords = 4;
    std::vector<Word> image(count * nodeWords, 0);
    auto addr_of = [base](std::size_t i) {
        return base + i * nodeWords * 8;
    };

    std::vector<Word> keys = randomWords(rng, count, 0xffffff);
    image[2] = keys[0];
    image[3] = rng.next() & 0xff;
    for (std::size_t i = 1; i < count; ++i) {
        // Insert node i under the BST rooted at 0.
        std::size_t cur = 0;
        for (;;) {
            const bool left = keys[i] < image[cur * nodeWords + 2];
            const std::size_t slot = cur * nodeWords + (left ? 0 : 1);
            if (image[slot] == 0) {
                image[slot] = addr_of(i);
                break;
            }
            cur = (image[slot] - base) / (nodeWords * 8);
        }
        image[i * nodeWords + 2] = keys[i];
        image[i * nodeWords + 3] = rng.next() & 0xff;
    }
    cb.dataWords(base, image);
    return base;
}

} // namespace rbsim
