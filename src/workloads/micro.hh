/**
 * @file
 * Microbenchmark workloads: single-behavior kernels that isolate one
 * machine characteristic each (dependence-chain latency, issue
 * bandwidth, load-to-use latency, shift-conversion cost, store-load
 * forwarding, branch misprediction, multiplier throughput). Used by the
 * characterization bench and handy for regression-hunting.
 */

#ifndef RBSIM_WORKLOADS_MICRO_HH
#define RBSIM_WORKLOADS_MICRO_HH

#include "workloads/workload.hh"

namespace rbsim
{

/** Serial chain of dependent 1-cycle adds: pure add latency. */
Program buildMicroDepChain(const WorkloadParams &);

/** 16 independent add streams: pure issue bandwidth. */
Program buildMicroIlp(const WorkloadParams &);

/** Pointer chase through a cache-resident ring: load-to-use latency. */
Program buildMicroPointerChase(const WorkloadParams &);

/** Serial shift-xor chain: the RB machines' conversion-hostile case. */
Program buildMicroShiftXor(const WorkloadParams &);

/** Store immediately reloaded every iteration: forwarding path. */
Program buildMicroStoreLoad(const WorkloadParams &);

/** Random data-dependent branches: misprediction recovery. */
Program buildMicroBranchTorture(const WorkloadParams &);

/** Dependent multiply chain: the 10-cycle unit. */
Program buildMicroMulChain(const WorkloadParams &);

/** The micro suite (names prefixed "u-"). */
const std::vector<WorkloadInfo> &microWorkloads();

} // namespace rbsim

#endif // RBSIM_WORKLOADS_MICRO_HH
