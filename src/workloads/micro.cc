#include "workloads/micro.hh"

#include "workloads/kernels.hh"

namespace rbsim
{

Program
buildMicroDepChain(const WorkloadParams &wp)
{
    CodeBuilder cb("u-depchain");
    const unsigned iters = 2000 * wp.scale;
    cb.ldiq(R(1), 1);
    cb.ldiq(R(2), iters);
    const Label loop = cb.newLabel();
    cb.bind(loop);
    for (int i = 0; i < 16; ++i)
        cb.opi(Opcode::ADDQ, R(1), 3, R(1));
    cb.opi(Opcode::SUBQ, R(2), 1, R(2));
    cb.branch(Opcode::BNE, R(2), loop);
    cb.halt();
    return cb.finish();
}

Program
buildMicroIlp(const WorkloadParams &wp)
{
    CodeBuilder cb("u-ilp");
    const unsigned iters = 1800 * wp.scale;
    for (unsigned r = 1; r <= 16; ++r)
        cb.ldiq(R(r), r);
    cb.ldiq(R(17), iters);
    const Label loop = cb.newLabel();
    cb.bind(loop);
    for (unsigned r = 1; r <= 16; ++r)
        cb.opi(Opcode::ADDQ, R(r), 1, R(r));
    cb.opi(Opcode::SUBQ, R(17), 1, R(17));
    cb.branch(Opcode::BNE, R(17), loop);
    cb.halt();
    return cb.finish();
}

Program
buildMicroPointerChase(const WorkloadParams &wp)
{
    CodeBuilder cb("u-chase");
    Rng rng(wp.seed);
    const Addr heap = 0x100000;
    // 64 nodes x 32B = 2KB: L1-resident; latency, not misses.
    const Addr head = buildLinkedList(cb, rng, heap, 64, 32);
    const unsigned steps = 30000 * wp.scale;
    cb.ldiq(R(1), static_cast<std::int64_t>(head));
    cb.mov(R(1), R(2));
    cb.ldiq(R(3), steps);
    const Label loop = cb.newLabel();
    const Label cont = cb.newLabel();
    cb.bind(loop);
    cb.load(Opcode::LDQ, R(2), 0, R(2));
    cb.branch(Opcode::BNE, R(2), cont);
    cb.mov(R(1), R(2));
    cb.bind(cont);
    cb.opi(Opcode::SUBQ, R(3), 1, R(3));
    cb.branch(Opcode::BNE, R(3), loop);
    cb.halt();
    return cb.finish();
}

Program
buildMicroShiftXor(const WorkloadParams &wp)
{
    CodeBuilder cb("u-shiftxor");
    const unsigned iters = 4000 * wp.scale;
    cb.ldiq(R(1), 0x123456789abcdefll);
    cb.ldiq(R(2), iters);
    const Label loop = cb.newLabel();
    cb.bind(loop);
    // The conversion-hostile serial backbone: SLL feeding XOR.
    for (int i = 0; i < 4; ++i) {
        cb.opi(Opcode::SLL, R(1), 13, R(3));
        cb.op3(Opcode::XOR, R(1), R(3), R(1));
    }
    cb.opi(Opcode::SUBQ, R(2), 1, R(2));
    cb.branch(Opcode::BNE, R(2), loop);
    cb.halt();
    return cb.finish();
}

Program
buildMicroStoreLoad(const WorkloadParams &wp)
{
    CodeBuilder cb("u-stld");
    const unsigned iters = 12000 * wp.scale;
    cb.ldiq(R(1), 0x20000);
    cb.ldiq(R(2), iters);
    cb.ldiq(R(3), 7);
    const Label loop = cb.newLabel();
    cb.bind(loop);
    cb.store(Opcode::STQ, R(3), 0, R(1));
    cb.load(Opcode::LDQ, R(4), 0, R(1));
    cb.op3(Opcode::ADDQ, R(4), R(3), R(3));
    cb.opi(Opcode::SUBQ, R(2), 1, R(2));
    cb.branch(Opcode::BNE, R(2), loop);
    cb.halt();
    return cb.finish();
}

Program
buildMicroBranchTorture(const WorkloadParams &wp)
{
    CodeBuilder cb("u-branch");
    Rng rng(wp.seed ^ 0xb7);
    const unsigned iters = 9000 * wp.scale;
    const Addr noise = 0xa00000;
    buildRandomStream(cb, rng, noise, iters + 8);
    cb.ldiq(R(1), static_cast<std::int64_t>(noise));
    cb.ldiq(R(2), iters);
    cb.ldiq(R(3), 0);
    const Label loop = cb.newLabel();
    const Label skip = cb.newLabel();
    cb.bind(loop);
    emitStreamNext(cb, R(1), R(4));
    cb.opi(Opcode::AND, R(4), 1, R(5));
    cb.branch(Opcode::BEQ, R(5), skip);
    cb.opi(Opcode::ADDQ, R(3), 1, R(3));
    cb.bind(skip);
    cb.opi(Opcode::SUBQ, R(2), 1, R(2));
    cb.branch(Opcode::BNE, R(2), loop);
    cb.halt();
    return cb.finish();
}

Program
buildMicroMulChain(const WorkloadParams &wp)
{
    CodeBuilder cb("u-mulchain");
    const unsigned iters = 1500 * wp.scale;
    cb.ldiq(R(1), 3);
    cb.ldiq(R(2), iters);
    const Label loop = cb.newLabel();
    cb.bind(loop);
    cb.opi(Opcode::MULQ, R(1), 3, R(1));
    cb.opi(Opcode::BIS, R(1), 1, R(1));
    cb.opi(Opcode::SUBQ, R(2), 1, R(2));
    cb.branch(Opcode::BNE, R(2), loop);
    cb.halt();
    return cb.finish();
}

const std::vector<WorkloadInfo> &
microWorkloads()
{
    static const std::vector<WorkloadInfo> registry = {
        {"u-depchain", "micro", "serial dependent adds",
         buildMicroDepChain},
        {"u-ilp", "micro", "16 independent add streams", buildMicroIlp},
        {"u-chase", "micro", "L1-resident pointer chase",
         buildMicroPointerChase},
        {"u-shiftxor", "micro", "serial shift-xor (conversion-hostile)",
         buildMicroShiftXor},
        {"u-stld", "micro", "store immediately reloaded",
         buildMicroStoreLoad},
        {"u-branch", "micro", "random data-dependent branches",
         buildMicroBranchTorture},
        {"u-mulchain", "micro", "dependent 10-cycle multiplies",
         buildMicroMulChain},
    };
    return registry;
}

} // namespace rbsim
