/**
 * @file
 * Workload registry: the 20 synthetic benchmarks standing in for
 * SPECint95 (8) and SPECint2000 (12).
 *
 * The paper evaluates on SPEC binaries we cannot ship; each generator
 * here builds a TinyAlpha program that mimics its namesake's kernel
 * structure (instruction mix, dependence shape, branch behaviour, and
 * memory locality — the properties the experiments actually depend on).
 * Every workload runs to completion and is validated against the
 * reference interpreter. See DESIGN.md for the substitution rationale.
 */

#ifndef RBSIM_WORKLOADS_WORKLOAD_HH
#define RBSIM_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace rbsim
{

/** Knobs shared by all generators. */
struct WorkloadParams
{
    /** Linear dynamic-length multiplier (1 = benchmark default, a few
     * hundred thousand dynamic instructions). */
    unsigned scale = 1;

    /** Seed for the data/pattern generators. */
    std::uint64_t seed = 2002;
};

/** One registered workload. */
struct WorkloadInfo
{
    std::string name;        //!< e.g. "mcf"
    std::string suite;       //!< "spec95", "spec2000", "gen", ...
    std::string description; //!< what the kernel mimics
    /** Program factory; a std::function so generator-backed entries can
     * capture their GenConfig (plain function pointers still convert). */
    std::function<Program(const WorkloadParams &)> build;
};

/** All 20 workloads, SPECint95 first. */
const std::vector<WorkloadInfo> &allWorkloads();

/** The workloads of one suite ("spec95" or "spec2000"). */
std::vector<WorkloadInfo> suiteWorkloads(const std::string &suite);

/**
 * Find a workload by name (throws std::out_of_range if unknown).
 *
 * Generator-preset names ("zipf-0.75", "chase-l2", ...) resolve through
 * a bounded LRU intern table: lookups are O(1) and the table never
 * exceeds internedWorkloadCap() entries, so a server fed adversarial
 * distinct preset names cannot grow it without bound. A returned
 * preset reference stays valid until internedWorkloadCap() further
 * *distinct* preset names have been resolved (registry references are
 * permanent); copy the WorkloadInfo if you hold it across unbounded
 * lookups.
 */
const WorkloadInfo &findWorkload(const std::string &name);

/** Live generator-preset intern entries (regression tests). */
std::size_t internedWorkloadCount();

/** Intern-table capacity bound. */
std::size_t internedWorkloadCap();

// SPECint95-like generators (spec95.cc).
Program buildGo95(const WorkloadParams &);
Program buildM88ksim95(const WorkloadParams &);
Program buildGcc95(const WorkloadParams &);
Program buildCompress95(const WorkloadParams &);
Program buildLi95(const WorkloadParams &);
Program buildIjpeg95(const WorkloadParams &);
Program buildPerl95(const WorkloadParams &);
Program buildVortex95(const WorkloadParams &);

// SPECint2000-like generators (spec2000.cc).
Program buildGzip00(const WorkloadParams &);
Program buildVpr00(const WorkloadParams &);
Program buildGcc00(const WorkloadParams &);
Program buildMcf00(const WorkloadParams &);
Program buildCrafty00(const WorkloadParams &);
Program buildParser00(const WorkloadParams &);
Program buildEon00(const WorkloadParams &);
Program buildPerlbmk00(const WorkloadParams &);
Program buildGap00(const WorkloadParams &);
Program buildVortex00(const WorkloadParams &);
Program buildBzip200(const WorkloadParams &);
Program buildTwolf00(const WorkloadParams &);

} // namespace rbsim

#endif // RBSIM_WORKLOADS_WORKLOAD_HH
