/**
 * @file
 * Shared code-emission helpers for the workload generators.
 */

#ifndef RBSIM_WORKLOADS_KERNELS_HH
#define RBSIM_WORKLOADS_KERNELS_HH

#include "common/rng.hh"
#include "isa/builder.hh"

namespace rbsim
{

/**
 * Emit an in-register xorshift64 step: state ^= state << 13;
 * state ^= state >> 7; state ^= state << 17. Uses `tmp` as scratch.
 * Exercises the shift-left (RB) and shift-right (TC) classes.
 */
void emitXorshift(CodeBuilder &cb, Reg state, Reg tmp);

/**
 * Emit `dst = src % (2^bits)` as a mask (AND with an immediate-built
 * mask held in `mask_reg`, which the caller loaded once).
 */
inline void
emitMask(CodeBuilder &cb, Reg src, Reg mask_reg, Reg dst)
{
    cb.op3(Opcode::AND, src, mask_reg, dst);
}

/** Generate `n` random 64-bit words. */
std::vector<Word> randomWords(Rng &rng, std::size_t n,
                              Word mask = ~Word{0});

/**
 * Lay down a pre-generated random input stream in memory and return its
 * base address. Programs consume it sequentially with emitStreamNext —
 * the SPEC-like way to be data-driven without a serial shift/xor RNG
 * recurrence in the loop backbone.
 */
Addr buildRandomStream(CodeBuilder &cb, Rng &rng, Addr base,
                       std::size_t count, Word mask = ~Word{0});

/**
 * Emit `dst = *cursor++`: one sequential load from the input stream plus
 * the LDA cursor bump. The caller must size the stream to the iteration
 * count (no wrap is emitted).
 */
inline void
emitStreamNext(CodeBuilder &cb, Reg cursor, Reg dst)
{
    cb.load(Opcode::LDQ, dst, 0, cursor);
    cb.lda(cursor, 8, cursor);
}

/**
 * Build a singly-linked list in memory: each node is `node_bytes` long,
 * with the next-pointer at offset 0 and a payload word at offset 8.
 * Nodes are placed in a shuffled order so pointer chasing defeats the
 * stride the array layout would give.
 * @return the address of the head node
 */
Addr buildLinkedList(CodeBuilder &cb, Rng &rng, Addr base,
                     std::size_t count, std::size_t node_bytes);

/**
 * Build a random binary tree: nodes of 4 words (left, right, key,
 * payload); null pointers are 0. Returns the root address.
 */
Addr buildBinaryTree(CodeBuilder &cb, Rng &rng, Addr base,
                     std::size_t count);

} // namespace rbsim

#endif // RBSIM_WORKLOADS_KERNELS_HH
