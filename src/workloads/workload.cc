#include "workloads/workload.hh"

#include <list>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "workloads/gen/opstream.hh"

namespace rbsim
{

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> registry = {
        // SPECint95-like.
        {"go", "spec95", "board-scan heuristics, branchy", buildGo95},
        {"m88ksim", "spec95", "interpreter with indirect dispatch",
         buildM88ksim95},
        {"gcc", "spec95", "binary-tree walks, pointer chasing",
         buildGcc95},
        {"compress", "spec95", "LZW hash loop over a byte stream",
         buildCompress95},
        {"li", "spec95", "cons-cell traversals with helper calls",
         buildLi95},
        {"ijpeg", "spec95", "integer DCT blocks, multiply-heavy",
         buildIjpeg95},
        {"perl", "spec95", "string hashing and table probing",
         buildPerl95},
        {"vortex", "spec95", "record/transaction processing",
         buildVortex95},
        // SPECint2000-like.
        {"gzip", "spec2000", "LZ77 hash chains and match loops",
         buildGzip00},
        {"vpr", "spec2000", "placement swaps with accept/reject",
         buildVpr00},
        {"gcc00", "spec2000", "larger tree walks plus RTL bit mangling",
         buildGcc00},
        {"mcf", "spec2000", "out-of-cache pointer chasing", buildMcf00},
        {"crafty", "spec2000", "bitboard logicals and popcounts",
         buildCrafty00},
        {"parser", "spec2000", "dictionary bucket-list lookups",
         buildParser00},
        {"eon", "spec2000", "fp-flavored interpolation loops",
         buildEon00},
        {"perlbmk", "spec2000", "hashing plus char-class dispatch",
         buildPerlbmk00},
        {"gap", "spec2000", "multiword bignum add/carry chains",
         buildGap00},
        {"vortex00", "spec2000", "scaled-up record transactions",
         buildVortex00},
        {"bzip2", "spec2000", "partition sort and byte histograms",
         buildBzip200},
        {"twolf", "spec2000", "annealing with table-driven costs",
         buildTwolf00},
    };
    return registry;
}

std::vector<WorkloadInfo>
suiteWorkloads(const std::string &suite)
{
    std::vector<WorkloadInfo> out;
    for (const WorkloadInfo &w : allWorkloads()) {
        if (w.suite == suite)
            out.push_back(w);
    }
    return out;
}

namespace
{

// Generator-preset intern table: a bounded LRU. Previously this was an
// unbounded deque scanned linearly under the mutex — a server fed a
// stream of distinct preset names ("zipf-0.612", "zipf-0.613", ...)
// grew it forever and every miss paid an O(n) scan while holding the
// global lock. List nodes keep entries address-stable until eviction;
// the index makes hits O(1).
constexpr std::size_t internCap = 256;
std::mutex internMu;
std::list<WorkloadInfo> internLru;          //!< most recent first
std::unordered_map<std::string, std::list<WorkloadInfo>::iterator>
    internIndex;

} // namespace

std::size_t
internedWorkloadCount()
{
    std::lock_guard<std::mutex> lock(internMu);
    return internLru.size();
}

std::size_t
internedWorkloadCap()
{
    return internCap;
}

const WorkloadInfo &
findWorkload(const std::string &name)
{
    for (const WorkloadInfo &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    // Generator presets ("ycsb-a", "zipf-0.75", "chase-l2", ...) resolve
    // like registered workloads, so the serve protocol and every bench
    // CLI reach them by name.
    try {
        std::lock_guard<std::mutex> lock(internMu);
        auto it = internIndex.find(name);
        if (it != internIndex.end()) {
            internLru.splice(internLru.begin(), internLru, it->second);
            return internLru.front();
        }
        const gen::GenConfig cfg = gen::genPreset(name);
        WorkloadInfo info = gen::genWorkloadInfo(cfg);
        info.name = name; // keep the queried spelling addressable
        internLru.push_front(std::move(info));
        internIndex[name] = internLru.begin();
        while (internLru.size() > internCap) {
            internIndex.erase(internLru.back().name);
            internLru.pop_back();
        }
        return internLru.front();
    } catch (const std::invalid_argument &) {
        throw std::out_of_range("unknown workload: " + name);
    }
}

} // namespace rbsim
