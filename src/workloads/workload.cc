#include "workloads/workload.hh"

#include <deque>
#include <mutex>
#include <stdexcept>

#include "workloads/gen/opstream.hh"

namespace rbsim
{

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> registry = {
        // SPECint95-like.
        {"go", "spec95", "board-scan heuristics, branchy", buildGo95},
        {"m88ksim", "spec95", "interpreter with indirect dispatch",
         buildM88ksim95},
        {"gcc", "spec95", "binary-tree walks, pointer chasing",
         buildGcc95},
        {"compress", "spec95", "LZW hash loop over a byte stream",
         buildCompress95},
        {"li", "spec95", "cons-cell traversals with helper calls",
         buildLi95},
        {"ijpeg", "spec95", "integer DCT blocks, multiply-heavy",
         buildIjpeg95},
        {"perl", "spec95", "string hashing and table probing",
         buildPerl95},
        {"vortex", "spec95", "record/transaction processing",
         buildVortex95},
        // SPECint2000-like.
        {"gzip", "spec2000", "LZ77 hash chains and match loops",
         buildGzip00},
        {"vpr", "spec2000", "placement swaps with accept/reject",
         buildVpr00},
        {"gcc00", "spec2000", "larger tree walks plus RTL bit mangling",
         buildGcc00},
        {"mcf", "spec2000", "out-of-cache pointer chasing", buildMcf00},
        {"crafty", "spec2000", "bitboard logicals and popcounts",
         buildCrafty00},
        {"parser", "spec2000", "dictionary bucket-list lookups",
         buildParser00},
        {"eon", "spec2000", "fp-flavored interpolation loops",
         buildEon00},
        {"perlbmk", "spec2000", "hashing plus char-class dispatch",
         buildPerlbmk00},
        {"gap", "spec2000", "multiword bignum add/carry chains",
         buildGap00},
        {"vortex00", "spec2000", "scaled-up record transactions",
         buildVortex00},
        {"bzip2", "spec2000", "partition sort and byte histograms",
         buildBzip200},
        {"twolf", "spec2000", "annealing with table-driven costs",
         buildTwolf00},
    };
    return registry;
}

std::vector<WorkloadInfo>
suiteWorkloads(const std::string &suite)
{
    std::vector<WorkloadInfo> out;
    for (const WorkloadInfo &w : allWorkloads()) {
        if (w.suite == suite)
            out.push_back(w);
    }
    return out;
}

const WorkloadInfo &
findWorkload(const std::string &name)
{
    for (const WorkloadInfo &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    // Generator presets ("ycsb-a", "zipf-0.75", "chase-l2", ...) resolve
    // like registered workloads, so the serve protocol and every bench
    // CLI reach them by name. Resolved entries are interned for
    // reference stability (a deque never moves its elements).
    try {
        const gen::GenConfig cfg = gen::genPreset(name);
        static std::mutex mu;
        static std::deque<WorkloadInfo> interned;
        std::lock_guard<std::mutex> lock(mu);
        for (const WorkloadInfo &w : interned) {
            if (w.name == name)
                return w;
        }
        WorkloadInfo info = gen::genWorkloadInfo(cfg);
        info.name = name; // keep the queried spelling addressable
        return interned.emplace_back(std::move(info));
    } catch (const std::invalid_argument &) {
        throw std::out_of_range("unknown workload: " + name);
    }
}

} // namespace rbsim
