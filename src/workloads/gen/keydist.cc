#include "workloads/gen/keydist.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "workloads/gen/opstream.hh"

namespace rbsim::gen
{

namespace
{

/** Uniform double in [0, 1) with 53 random bits. */
double
unitDraw(Rng &rng)
{
    return static_cast<double>(rng.next() >> 11) *
           (1.0 / 9007199254740992.0);
}

/** FNV-1a over the 8 bytes of a rank (the YCSB scramble hash). */
std::uint64_t
fnv1a64(std::uint64_t v)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

KeyPicker::KeyPicker(KeyDist dist_, std::uint64_t n_, double skew_,
                     bool scramble_)
    : dist(dist_), n(n_), skew(skew_), scramble(scramble_)
{
    assert(n >= 1);
    // Both curves degenerate at the interval ends; clamp rather than
    // special-case (0.995 zipfian is already extremely concentrated).
    skew = std::clamp(skew, 0.01, 0.995);

    if (dist == KeyDist::Zipfian) {
        theta = skew;
        zetan = 0.0;
        for (std::uint64_t i = 1; i <= n; ++i)
            zetan += 1.0 / std::pow(static_cast<double>(i), theta);
        alpha = 1.0 / (1.0 - theta);
        const double zeta2 = 1.0 + std::pow(0.5, theta);
        eta = (1.0 - std::pow(2.0 / static_cast<double>(n),
                              1.0 - theta)) /
              (1.0 - zeta2 / zetan);
    } else if (dist == KeyDist::SelfSimilar) {
        ssExp = std::log(skew) / std::log(1.0 - skew);
    }
}

std::uint64_t
KeyPicker::pickRank(Rng &rng)
{
    switch (dist) {
      case KeyDist::Zipfian: {
        const double u = unitDraw(rng);
        const double uz = u * zetan;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, theta))
            return 1;
        const double r = static_cast<double>(n) *
                         std::pow(eta * u - eta + 1.0, alpha);
        return std::min<std::uint64_t>(
            n - 1, static_cast<std::uint64_t>(r));
      }
      case KeyDist::SelfSimilar: {
        const double u = unitDraw(rng);
        const double r =
            static_cast<double>(n) * std::pow(u, ssExp);
        return std::min<std::uint64_t>(
            n - 1, static_cast<std::uint64_t>(r));
      }
      case KeyDist::Uniform:
      default:
        return rng.below(n);
    }
}

std::uint64_t
KeyPicker::slotOfRank(std::uint64_t rank) const
{
    if (!scramble || dist == KeyDist::Uniform)
        return rank;
    return fnv1a64(rank) % n;
}

std::uint64_t
KeyPicker::pick(Rng &rng)
{
    return slotOfRank(pickRank(rng));
}

double
KeyPicker::rankProbability(std::uint64_t rank) const
{
    assert(rank < n);
    switch (dist) {
      case KeyDist::Zipfian:
        return 1.0 /
               std::pow(static_cast<double>(rank + 1), theta) / zetan;
      case KeyDist::SelfSimilar: {
        auto cdf = [this](std::uint64_t k) {
            return std::pow(static_cast<double>(k) /
                                static_cast<double>(n),
                            1.0 / ssExp);
        };
        return cdf(rank + 1) - cdf(rank);
      }
      case KeyDist::Uniform:
      default:
        return 1.0 / static_cast<double>(n);
    }
}

} // namespace rbsim::gen
