/**
 * @file
 * Stream lowering: encode an abstract op stream into data memory and
 * emit a compact dispatch loop that consumes it.
 *
 * Each op becomes one tagged word: (payload << 3) | tag. The dispatch
 * loop loads a word, splits tag/payload, and branches into a per-kind
 * handler; present-kind handlers are emitted once (their shape comes
 * from the config), so static code stays small while the op *sequence*
 * — and with it key locality, chase pressure, and branch directions —
 * lives entirely in the data image. The whole stream is replayed
 * `trips * scale` times.
 *
 * Memory map (all comfortably separated; the key table is left to the
 * page-sparse MemImage's implicit zero fill):
 *   fold area   0x0180000   (final accumulator store)
 *   key table   0x0200000   (numKeys * 8 bytes, <= 4 MiB)
 *   chase ring  0x0800000   (workingSetBytes, <= 8 MiB)
 *   op stream   0x1800000   (one word per op, <= 8 MiB)
 *
 * Register map: r1 stream cursor, r2 stream end, r3 table base, r4
 * accumulator, r5 fetched word, r6 tag, r7 payload, r8 trip counter,
 * r9 chase node, r10/r11 scratch.
 */

#include "workloads/gen/opstream.hh"

#include <algorithm>
#include <array>
#include <cassert>

#include "common/rng.hh"
#include "isa/builder.hh"

namespace rbsim::gen
{

namespace
{

// Stream word tags (low 3 bits).
constexpr unsigned kTagRead = 0;
constexpr unsigned kTagUpdate = 1;
constexpr unsigned kTagRmw = 2;
constexpr unsigned kTagScan = 3;
constexpr unsigned kTagChase = 4;
constexpr unsigned kTagCompute = 5;
constexpr unsigned kTagBranch = 6;
constexpr unsigned kNumTags = 7;

constexpr Addr foldBase = 0x180000;
constexpr Addr tableBase = 0x200000;
constexpr Addr ringBase = 0x800000;
constexpr Addr streamBase = 0x1800000;

constexpr std::uint64_t maxKeys = 1u << 19;   // 4 MiB table
constexpr std::uint32_t maxRingBytes = 8u << 20;
constexpr std::size_t maxStreamOps = 1u << 20;
constexpr unsigned maxUnroll = 64; // scan/chase/burst emission cap

unsigned
tagOf(WorkloadOp::Kind kind)
{
    switch (kind) {
      case WorkloadOp::Kind::KeyRead: return kTagRead;
      case WorkloadOp::Kind::KeyUpdate: return kTagUpdate;
      case WorkloadOp::Kind::KeyRmw: return kTagRmw;
      case WorkloadOp::Kind::KeyScan: return kTagScan;
      case WorkloadOp::Kind::PointerChase: return kTagChase;
      case WorkloadOp::Kind::Compute: return kTagCompute;
      case WorkloadOp::Kind::Branch:
      default:
        return kTagBranch;
    }
}

/** Build the circular shuffled pointer ring; returns the head node. */
Addr
buildRing(CodeBuilder &cb, Rng &rng, std::size_t count,
          std::size_t nodeBytes)
{
    std::vector<std::size_t> order(count);
    for (std::size_t i = 0; i < count; ++i)
        order[i] = i;
    for (std::size_t i = count; i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);

    const std::size_t nodeWords = nodeBytes / 8;
    std::vector<Word> image(count * nodeWords, 0);
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t slot = order[i];
        const std::size_t nextSlot = order[(i + 1) % count];
        image[slot * nodeWords] = ringBase + nextSlot * nodeBytes;
        image[slot * nodeWords + 1] = rng.next() & 0xffff;
    }
    cb.dataWords(ringBase, image);
    return ringBase + order[0] * nodeBytes;
}

} // namespace

Program
lowerStream(const GenConfig &cfg, const std::vector<WorkloadOp> &ops,
            const WorkloadParams &wp)
{
    assert(ops.size() <= maxStreamOps);

    CodeBuilder cb(cfg.name());
    Rng dataRng(Rng::mixSeed(wp.seed, 2));

    // --- survey the stream: present tags and per-kind shapes ---
    std::array<bool, kNumTags> present{};
    unsigned scanLen = 1, chaseLen = 1, burstLen = 1;
    bool burstRb = false;
    std::vector<Word> words;
    words.reserve(ops.size());
    for (const WorkloadOp &op : ops) {
        const unsigned tag = tagOf(op.kind);
        present[tag] = true;
        std::uint64_t payload = 0;
        switch (op.kind) {
          case WorkloadOp::Kind::KeyRead:
          case WorkloadOp::Kind::KeyUpdate:
          case WorkloadOp::Kind::KeyRmw:
          case WorkloadOp::Kind::KeyScan:
            assert(op.key < maxKeys);
            payload = op.key * 8;
            if (op.kind == WorkloadOp::Kind::KeyScan)
                scanLen = std::max(scanLen, std::min(op.len, maxUnroll));
            break;
          case WorkloadOp::Kind::PointerChase:
            chaseLen = std::max(chaseLen, std::min(op.len, maxUnroll));
            break;
          case WorkloadOp::Kind::Compute:
            burstLen = std::max(burstLen, std::min(op.len, maxUnroll));
            burstRb = burstRb || op.rb;
            break;
          case WorkloadOp::Kind::Branch:
            payload = op.taken ? 1 : 0;
            break;
          default:
            break;
        }
        words.push_back((payload << 3) | tag);
    }
    cb.dataWords(streamBase, words);

    std::vector<unsigned> tags;
    for (unsigned t = 0; t < kNumTags; ++t)
        if (present[t])
            tags.push_back(t);

    const bool keyed = present[kTagRead] || present[kTagUpdate] ||
                       present[kTagRmw] || present[kTagScan];
    const std::uint64_t totalTrips = std::max<std::uint64_t>(
        1, std::uint64_t{cfg.trips} * std::max(1u, wp.scale));

    // --- static setup ---
    const Reg cursor = R(1), streamEnd = R(2), table = R(3), acc = R(4),
              word = R(5), tag = R(6), payload = R(7), trip = R(8),
              node = R(9), t1 = R(10), t2 = R(11);

    if (keyed)
        cb.ldiq(table, tableBase);
    cb.ldiq(acc, static_cast<std::int64_t>(dataRng.next() | 1));
    cb.ldiq(trip, static_cast<std::int64_t>(totalTrips));
    if (present[kTagChase]) {
        const std::size_t nodeBytes =
            std::max<std::size_t>(16, cfg.nodeBytes & ~7u);
        const std::size_t count = std::max<std::size_t>(
            2, std::min(cfg.workingSetBytes, maxRingBytes) / nodeBytes);
        cb.ldiq(node, buildRing(cb, dataRng, count, nodeBytes));
    }

    const Label outer = cb.newLabel();
    const Label inner = cb.newLabel();
    const Label opNext = cb.newLabel();

    // --- outer loop: rewind the stream cursor ---
    cb.bind(outer);
    cb.ldiq(cursor, streamBase);
    cb.ldiq(streamEnd, streamBase + words.size() * 8);

    if (!words.empty()) {
        // --- fetch + decode ---
        cb.bind(inner);
        cb.load(Opcode::LDQ, word, 0, cursor);
        cb.lda(cursor, 8, cursor);
        cb.opi(Opcode::AND, word, 7, tag);
        cb.opi(Opcode::SRL, word, 3, payload);

        // Dispatch: compare-and-branch for every present tag but the
        // last, which becomes the fall-through handler.
        std::array<Label, kNumTags> handler{};
        for (unsigned t : tags)
            handler[t] = cb.newLabel();
        for (std::size_t i = 0; i + 1 < tags.size(); ++i) {
            cb.opi(Opcode::CMPEQ, tag,
                   static_cast<std::uint8_t>(tags[i]), t1);
            cb.branch(Opcode::BNE, t1, handler[tags[i]]);
        }

        // --- handlers (fall-through one first) ---
        std::vector<unsigned> order;
        order.push_back(tags.back());
        for (std::size_t i = 0; i + 1 < tags.size(); ++i)
            order.push_back(tags[i]);

        for (std::size_t i = 0; i < order.size(); ++i) {
            const unsigned t = order[i];
            cb.bind(handler[t]);
            switch (t) {
              case kTagRead:
                cb.op3(Opcode::ADDQ, table, payload, t1);
                cb.load(Opcode::LDQ, t2, 0, t1);
                cb.op3(Opcode::XOR, acc, t2, acc);
                break;
              case kTagUpdate:
                cb.op3(Opcode::ADDQ, table, payload, t1);
                cb.store(Opcode::STQ, acc, 0, t1);
                cb.opi(Opcode::ADDQ, acc, 3, acc);
                break;
              case kTagRmw:
                cb.op3(Opcode::ADDQ, table, payload, t1);
                cb.load(Opcode::LDQ, t2, 0, t1);
                cb.opi(Opcode::ADDQ, t2, 1, t2);
                cb.store(Opcode::STQ, t2, 0, t1);
                cb.op3(Opcode::XOR, acc, t2, acc);
                break;
              case kTagScan:
                cb.op3(Opcode::ADDQ, table, payload, t1);
                for (unsigned s = 0; s < scanLen; ++s) {
                    cb.load(Opcode::LDQ, t2,
                            static_cast<std::int32_t>(s * 8), t1);
                    cb.op3(Opcode::ADDQ, acc, t2, acc);
                }
                break;
              case kTagChase:
                for (unsigned s = 0; s < chaseLen; ++s) {
                    cb.load(Opcode::LDQ, t1, 8, node);
                    cb.op3(Opcode::ADDQ, acc, t1, acc);
                    cb.load(Opcode::LDQ, node, 0, node);
                }
                break;
              case kTagCompute:
                if (burstRb) {
                    // Serial shift->logical pairs: each result feeds
                    // the next shift, so every step pays the RB->TC
                    // conversion latency on the RB machines (Table 3's
                    // worst case). XOR keeps the value live; the
                    // periodic BIS varies the logical unit mix.
                    static const std::uint8_t amt[8] = {13, 7,  17, 5,
                                                        11, 3, 19, 9};
                    for (unsigned s = 0; s < burstLen; ++s) {
                        cb.opi(Opcode::SLL, acc, amt[s % 8], t1);
                        cb.op3(s % 4 == 3 ? Opcode::BIS : Opcode::XOR,
                               acc, t1, acc);
                    }
                } else {
                    for (unsigned s = 0; s < burstLen; ++s)
                        cb.opi(Opcode::ADDQ, acc,
                               static_cast<std::uint8_t>(1 + (s & 7)),
                               acc);
                }
                break;
              case kTagBranch:
              default: {
                // Direction comes from the payload bit — fully
                // data-dependent, so the predictor sees exactly the
                // drawn taken-rate.
                const Label bTaken = cb.newLabel();
                cb.branch(Opcode::BLBS, payload, bTaken);
                cb.opi(Opcode::ADDQ, acc, 2, acc);
                cb.br(opNext);
                cb.bind(bTaken);
                cb.opi(Opcode::SUBQ, acc, 1, acc);
                break;
              }
            }
            if (i + 1 < order.size())
                cb.br(opNext);
        }
    }

    // --- loop control ---
    cb.bind(opNext);
    if (!words.empty()) {
        cb.op3(Opcode::CMPULT, cursor, streamEnd, t1);
        cb.branch(Opcode::BNE, t1, inner);
    }
    cb.opi(Opcode::SUBQ, trip, 1, trip);
    cb.branch(Opcode::BNE, trip, outer);

    // --- fold: make the run's state observable in memory ---
    cb.ldiq(t1, foldBase);
    cb.store(Opcode::STQ, acc, 0, t1);
    if (present[kTagChase])
        cb.store(Opcode::STQ, node, 8, t1);
    cb.halt();

    return cb.finish();
}

} // namespace rbsim::gen
