/**
 * @file
 * Workload-description API: abstract op streams and their generators.
 *
 * Modeled on the codes-workload interface (load() binds a generator
 * instance to a configuration, get_next() drains one abstract operation
 * at a time until an End marker), this layer separates *what a workload
 * does* — skewed key accesses, pointer derefs, compute bursts, branches
 * — from *how it is expressed* as a TinyAlpha program. A `WorkloadGen`
 * emits a stream of `WorkloadOp`s; `lowerStream` turns the stream into a
 * runnable program through the existing CodeBuilder, encoding the stream
 * into data memory and emitting a compact dispatch loop over it (the
 * suite's "data-driven, not RNG-driven" rule: programs consume
 * pre-generated inputs instead of computing a serial shift-xor
 * recurrence that would unfairly punish the RB machines).
 *
 * Concrete generators (gen.cc) cover what the hand-written SPEC-like
 * suite cannot express directly:
 *  - key-access kernels in the YCSB A-F mold with Zipfian, self-similar
 *    or uniform key popularity (skew sweepable 0.5 -> 0.99),
 *  - pointer chasing with a controlled working-set size aimed at a
 *    specific level of the DL1/L2/memory hierarchy,
 *  - branch-entropy sweeps with a configured taken-rate,
 *  - an RB-adversarial mode biased toward serial shift->logical chains
 *    (the Table 3 worst case for the redundant-binary machines).
 *
 * Every generator is a pure function of (GenConfig, seed): the same pair
 * produces a byte-identical program (Program::hash() equality), which
 * the fuzz oracles and the determinism tests rely on.
 */

#ifndef RBSIM_WORKLOADS_GEN_OPSTREAM_HH
#define RBSIM_WORKLOADS_GEN_OPSTREAM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hh"
#include "workloads/workload.hh"

namespace rbsim::gen
{

/** Generator families. */
enum class GenFamily : unsigned char
{
    KeyAccess,     //!< skewed reads/updates/RMWs/scans over a key table
    PointerChase,  //!< serial derefs through a sized pointer ring
    BranchEntropy, //!< data-dependent branches at a target taken-rate
    RbAdversarial, //!< serial shift->logical chains (RB worst case)
};

/** Printable family name ("key-access", "pointer-chase", ...). */
const char *genFamilyName(GenFamily family);

/** Inverse of genFamilyName; throws std::invalid_argument. */
GenFamily genFamilyFromName(const std::string &name);

/** Key-popularity distributions for the KeyAccess family. */
enum class KeyDist : unsigned char
{
    Uniform,     //!< every key equally likely
    Zipfian,     //!< YCSB-style zipfian(theta), scrambled over the table
    SelfSimilar, //!< Gray's self-similar(h): 1-h of accesses hit h keys
};

/** Printable distribution name ("uniform", "zipfian", "selfsimilar"). */
const char *keyDistName(KeyDist dist);

/** Inverse of keyDistName; throws std::invalid_argument. */
KeyDist keyDistFromName(const std::string &name);

/**
 * Full description of one generator instance. Serializable (JSON) so
 * fuzz presets round-trip through .repro files and bench sweeps are
 * self-describing. Every field has a usable default; families ignore
 * the knobs that do not apply to them.
 */
struct GenConfig
{
    GenFamily family = GenFamily::KeyAccess;

    // --- KeyAccess knobs (YCSB mold) ---
    KeyDist dist = KeyDist::Zipfian;
    /** Zipfian theta or self-similar h. Ignored for Uniform. */
    double skew = 0.99;
    /** Key-space size; the lowered key table is numKeys * 8 bytes. */
    std::uint32_t numKeys = 64 * 1024;
    /** Hash key ranks over the table (YCSB ScrambledZipfian) so hot
     * keys do not share cache lines by construction. */
    bool scramble = true;
    /** Operation mix, normalized internally (YCSB A = 50/50 read/
     * update, B = 95/5, C = read-only, E = scan-heavy, F = RMW). */
    double readFrac = 0.5;
    double updateFrac = 0.5;
    double rmwFrac = 0.0;
    double scanFrac = 0.0;
    /** Keys touched per scan op. */
    unsigned scanLen = 4;

    // --- PointerChase knobs ---
    /** Ring footprint in bytes: aim below 8 KiB for DL1 residency,
     * below 1 MiB for L2, above for memory. */
    std::uint32_t workingSetBytes = 256 * 1024;
    /** Bytes per ring node (>= 16, multiple of 8; 64 = one line). */
    unsigned nodeBytes = 64;
    /** Serial derefs per chase op. */
    unsigned chaseSteps = 4;

    // --- BranchEntropy knobs ---
    /** Target taken-rate of the data-dependent branch. */
    double takenRate = 0.5;

    // --- RbAdversarial knobs ---
    /** shift->logical pairs per compute burst. */
    unsigned chainLen = 8;

    // --- shared stream shape ---
    /** Abstract ops per stream pass. */
    std::uint32_t streamOps = 4096;
    /** Stream passes at scale 1 (WorkloadParams::scale multiplies). */
    unsigned trips = 2;

    /** Optional display name; name() derives one when empty. */
    std::string label;

    /** Derived or explicit display name, e.g. "zipf-0.99". */
    std::string name() const;

    /** Serialize to a compact one-line JSON object. */
    Json toJsonValue() const;
    std::string toJson() const { return toJsonValue().dump(); }

    /** Rebuild from toJson output. Throws JsonError/invalid_argument. */
    static GenConfig fromJsonValue(const Json &j);
    static GenConfig fromJson(const std::string &text);

    bool operator==(const GenConfig &) const = default;
};

/**
 * Named configurations:
 *  - "ycsb-a" .. "ycsb-f": the YCSB core-workload molds over a zipfian
 *    key table (D approximates read-latest with zipfian popularity; E's
 *    inserts become updates — the simulated table is fixed-size).
 *  - "zipf-<skew>", "selfsim-<h>", "uniform": 50/50 read/update mixes
 *    with the given popularity curve.
 *  - "chase-dl1" / "chase-l2" / "chase-mem": pointer rings sized to the
 *    three levels of the hierarchy.
 *  - "branch-<rate>": branch-entropy at the given taken-rate.
 *  - "rb-adversarial": the shift->logical worst case.
 * Throws std::invalid_argument for unknown names.
 */
GenConfig genPreset(const std::string &name);

/** All fixed genPreset names (the parameterized forms excluded). */
std::vector<std::string> genPresetNames();

/** One abstract operation of a workload stream. */
struct WorkloadOp
{
    enum class Kind : unsigned char
    {
        KeyRead,      //!< load key
        KeyUpdate,    //!< store key
        KeyRmw,       //!< load-modify-store key
        KeyScan,      //!< len sequential loads starting at key
        PointerChase, //!< len serial derefs through the ring
        Compute,      //!< compute burst of len ops (rb = shift->logical)
        Branch,       //!< data-dependent branch, direction = taken
        End,          //!< end of stream
    };

    Kind kind = Kind::End;
    std::uint64_t key = 0; //!< key index (key-access kinds)
    unsigned len = 0;      //!< scan/chase/burst length
    bool rb = false;       //!< Compute: shift->logical flavor
    bool taken = false;    //!< Branch: drawn direction
};

/**
 * A workload generator in the codes-workload mold: load() binds it to a
 * configuration and seed (and rewinds it), next() drains one operation
 * and returns false once the stream is exhausted (op.kind == End).
 */
class WorkloadGen
{
  public:
    virtual ~WorkloadGen() = default;

    /** Bind to a configuration + seed and rewind to the stream start. */
    virtual void load(const GenConfig &cfg, std::uint64_t seed) = 0;

    /** Produce the next op; false (and op.kind == End) at stream end. */
    virtual bool next(WorkloadOp &op) = 0;

    /** The family this generator implements. */
    virtual GenFamily family() const = 0;
};

/** Instantiate the generator for a family (unloaded). */
std::unique_ptr<WorkloadGen> makeWorkloadGen(GenFamily family);

/** Convenience: load the family's generator and drain the full stream
 * (cfg.streamOps ops; the End marker is not included). */
std::vector<WorkloadOp> drawStream(const GenConfig &cfg,
                                   std::uint64_t seed);

/**
 * Lower an op stream to a runnable TinyAlpha program: the stream is
 * encoded into data memory (one tagged word per op) and consumed by a
 * compact dispatch loop, re-run `cfg.trips * wp.scale` times. Lowering
 * is deterministic: it consumes no randomness beyond `wp.seed` (used
 * only for data-image contents), so equal inputs produce byte-identical
 * programs.
 */
Program lowerStream(const GenConfig &cfg,
                    const std::vector<WorkloadOp> &ops,
                    const WorkloadParams &wp);

/** drawStream + lowerStream from the config alone (the generator seed
 * and the data seed both derive from wp.seed). */
Program buildGenProgram(const GenConfig &cfg, const WorkloadParams &wp);

/** Wrap a config as a registry entry (suite "gen") whose build closure
 * captures the config. */
WorkloadInfo genWorkloadInfo(const GenConfig &cfg);

/** The default bench sweep set: zipfian skews 0.5 -> 0.99 plus
 * self-similar/uniform key access, the three pointer-chase levels, the
 * branch-entropy sweep, and the RB-adversarial mode. `skews` overrides
 * the zipfian skew points when non-empty. */
std::vector<GenConfig> genSweepConfigs(const std::vector<double> &skews = {});

} // namespace rbsim::gen

#endif // RBSIM_WORKLOADS_GEN_OPSTREAM_HH
