/**
 * @file
 * Key-popularity distributions for the workload generators: uniform,
 * YCSB-style Zipfian (Gray et al.'s rejection-free inverse-CDF
 * construction with precomputed zeta), and Gray's self-similar(h)
 * (the recursive 80/20 rule: a 1-h share of accesses falls on the
 * hottest h fraction of the key space).
 *
 * pickRank() draws a popularity *rank* (0 = hottest); pick() maps the
 * rank onto a table slot, optionally scrambled through an FNV-1a hash
 * (YCSB's ScrambledZipfian) so hot keys do not end up on adjacent cache
 * lines by construction — without scrambling, low skews would get a
 * spurious line-locality bonus.
 */

#ifndef RBSIM_WORKLOADS_GEN_KEYDIST_HH
#define RBSIM_WORKLOADS_GEN_KEYDIST_HH

#include <cstdint>

#include "common/rng.hh"

namespace rbsim::gen
{

enum class KeyDist : unsigned char;

/** Draws keys in [0, n) under a configured popularity curve. */
class KeyPicker
{
  public:
    /**
     * @param dist distribution kind
     * @param n key-space size (>= 1)
     * @param skew zipfian theta in (0, 1) or self-similar h in (0, 1);
     *             ignored for Uniform
     * @param scramble hash ranks over the slot space
     */
    KeyPicker(KeyDist dist, std::uint64_t n, double skew,
              bool scramble = true);

    /** Popularity rank of one draw (0 = most popular). */
    std::uint64_t pickRank(Rng &rng);

    /** Table slot of one draw (rank, scrambled when configured). */
    std::uint64_t pick(Rng &rng);

    /** The slot a given rank maps to (exposed for tests). */
    std::uint64_t slotOfRank(std::uint64_t rank) const;

    /** Theoretical probability of a given rank under the curve
     * (exposed for the statistical property tests). */
    double rankProbability(std::uint64_t rank) const;

  private:
    KeyDist dist;
    std::uint64_t n;
    double skew;
    bool scramble;

    // Zipfian precomputation (Gray et al., "Quickly generating
    // billion-record synthetic databases").
    double zetan = 0.0;
    double theta = 0.0;
    double alpha = 0.0;
    double eta = 0.0;

    // Self-similar exponent: log(h) / log(1 - h).
    double ssExp = 0.0;
};

} // namespace rbsim::gen

#endif // RBSIM_WORKLOADS_GEN_KEYDIST_HH
