/**
 * @file
 * GenConfig (de)serialization and naming, the named presets, and the
 * four concrete WorkloadGen families. The lowering pass lives in
 * lower.cc.
 */

#include "workloads/gen/opstream.hh"

#include <cassert>
#include <cstdio>
#include <stdexcept>

#include "common/rng.hh"
#include "workloads/gen/keydist.hh"

namespace rbsim::gen
{

const char *
genFamilyName(GenFamily family)
{
    switch (family) {
      case GenFamily::KeyAccess: return "key-access";
      case GenFamily::PointerChase: return "pointer-chase";
      case GenFamily::BranchEntropy: return "branch-entropy";
      case GenFamily::RbAdversarial: return "rb-adversarial";
      default: return "<bad>";
    }
}

GenFamily
genFamilyFromName(const std::string &name)
{
    for (GenFamily f :
         {GenFamily::KeyAccess, GenFamily::PointerChase,
          GenFamily::BranchEntropy, GenFamily::RbAdversarial}) {
        if (name == genFamilyName(f))
            return f;
    }
    throw std::invalid_argument("unknown generator family '" + name +
                                "'");
}

const char *
keyDistName(KeyDist dist)
{
    switch (dist) {
      case KeyDist::Uniform: return "uniform";
      case KeyDist::Zipfian: return "zipfian";
      case KeyDist::SelfSimilar: return "selfsimilar";
      default: return "<bad>";
    }
}

KeyDist
keyDistFromName(const std::string &name)
{
    for (KeyDist d : {KeyDist::Uniform, KeyDist::Zipfian,
                      KeyDist::SelfSimilar}) {
        if (name == keyDistName(d))
            return d;
    }
    throw std::invalid_argument("unknown key distribution '" + name +
                                "'");
}

namespace
{

std::string
fmt2(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return buf;
}

std::string
humanBytes(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0)
        std::snprintf(buf, sizeof buf, "%llum",
                      static_cast<unsigned long long>(bytes >> 20));
    else
        std::snprintf(buf, sizeof buf, "%lluk",
                      static_cast<unsigned long long>(bytes >> 10));
    return buf;
}

} // namespace

std::string
GenConfig::name() const
{
    if (!label.empty())
        return label;
    switch (family) {
      case GenFamily::KeyAccess:
        switch (dist) {
          case KeyDist::Zipfian: return "zipf-" + fmt2(skew);
          case KeyDist::SelfSimilar: return "selfsim-" + fmt2(skew);
          case KeyDist::Uniform:
          default: return "uniform";
        }
      case GenFamily::PointerChase:
        return "chase-" + humanBytes(workingSetBytes);
      case GenFamily::BranchEntropy:
        return "branch-" + fmt2(takenRate);
      case GenFamily::RbAdversarial:
      default:
        return "rbadv-" + std::to_string(chainLen);
    }
}

Json
GenConfig::toJsonValue() const
{
    Json j = Json::object();
    j["family"] = Json(genFamilyName(family));
    j["dist"] = Json(keyDistName(dist));
    j["skew"] = Json(skew);
    j["numKeys"] = Json(numKeys);
    j["scramble"] = Json(scramble);
    j["readFrac"] = Json(readFrac);
    j["updateFrac"] = Json(updateFrac);
    j["rmwFrac"] = Json(rmwFrac);
    j["scanFrac"] = Json(scanFrac);
    j["scanLen"] = Json(scanLen);
    j["workingSetBytes"] = Json(workingSetBytes);
    j["nodeBytes"] = Json(nodeBytes);
    j["chaseSteps"] = Json(chaseSteps);
    j["takenRate"] = Json(takenRate);
    j["chainLen"] = Json(chainLen);
    j["streamOps"] = Json(streamOps);
    j["trips"] = Json(trips);
    if (!label.empty())
        j["label"] = Json(label);
    return j;
}

GenConfig
GenConfig::fromJsonValue(const Json &j)
{
    if (!j.isObject())
        throw std::invalid_argument("GenConfig JSON must be an object");
    GenConfig c;
    auto u32 = [&j](const char *key, std::uint32_t dflt) {
        const Json *v = j.find(key);
        return v ? static_cast<std::uint32_t>(v->asU64()) : dflt;
    };
    auto dbl = [&j](const char *key, double dflt) {
        const Json *v = j.find(key);
        return v ? v->asDouble() : dflt;
    };
    if (const Json *v = j.find("family"))
        c.family = genFamilyFromName(v->asString());
    if (const Json *v = j.find("dist"))
        c.dist = keyDistFromName(v->asString());
    c.skew = dbl("skew", c.skew);
    c.numKeys = u32("numKeys", c.numKeys);
    if (const Json *v = j.find("scramble"))
        c.scramble = v->asBool();
    c.readFrac = dbl("readFrac", c.readFrac);
    c.updateFrac = dbl("updateFrac", c.updateFrac);
    c.rmwFrac = dbl("rmwFrac", c.rmwFrac);
    c.scanFrac = dbl("scanFrac", c.scanFrac);
    c.scanLen = u32("scanLen", c.scanLen);
    c.workingSetBytes = u32("workingSetBytes", c.workingSetBytes);
    c.nodeBytes = u32("nodeBytes", c.nodeBytes);
    c.chaseSteps = u32("chaseSteps", c.chaseSteps);
    c.takenRate = dbl("takenRate", c.takenRate);
    c.chainLen = u32("chainLen", c.chainLen);
    c.streamOps = u32("streamOps", c.streamOps);
    c.trips = u32("trips", c.trips);
    if (const Json *v = j.find("label"))
        c.label = v->asString();
    return c;
}

GenConfig
GenConfig::fromJson(const std::string &text)
{
    return fromJsonValue(Json::parse(text));
}

// ------------------------------------------------------------- presets

namespace
{

GenConfig
keyMix(double read, double update, double rmw, double scan,
       KeyDist dist, double skew)
{
    GenConfig c;
    c.family = GenFamily::KeyAccess;
    c.dist = dist;
    c.skew = skew;
    c.readFrac = read;
    c.updateFrac = update;
    c.rmwFrac = rmw;
    c.scanFrac = scan;
    return c;
}

GenConfig
chaseConfig(std::uint32_t ws)
{
    GenConfig c;
    c.family = GenFamily::PointerChase;
    c.workingSetBytes = ws;
    return c;
}

GenConfig
branchConfig(double rate)
{
    GenConfig c;
    c.family = GenFamily::BranchEntropy;
    c.takenRate = rate;
    return c;
}

/** Parse the numeric suffix of "zipf-0.75"-style names. */
bool
paramSuffix(const std::string &name, const char *prefix, double &out)
{
    const std::string p(prefix);
    if (name.rfind(p, 0) != 0 || name.size() <= p.size())
        return false;
    try {
        std::size_t used = 0;
        out = std::stod(name.substr(p.size()), &used);
        return used == name.size() - p.size();
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace

namespace
{

GenConfig
genPresetImpl(const std::string &name)
{
    // The YCSB core-workload molds (zipfian popularity, theta 0.99).
    // D approximates read-latest with plain zipfian popularity and E's
    // inserts become updates: the simulated key table is fixed-size.
    if (name == "ycsb-a")
        return keyMix(0.5, 0.5, 0, 0, KeyDist::Zipfian, 0.99);
    if (name == "ycsb-b" || name == "ycsb-d")
        return keyMix(0.95, 0.05, 0, 0, KeyDist::Zipfian, 0.99);
    if (name == "ycsb-c")
        return keyMix(1.0, 0, 0, 0, KeyDist::Zipfian, 0.99);
    if (name == "ycsb-e")
        return keyMix(0, 0.05, 0, 0.95, KeyDist::Zipfian, 0.99);
    if (name == "ycsb-f")
        return keyMix(0.5, 0, 0.5, 0, KeyDist::Zipfian, 0.99);
    if (name == "uniform")
        return keyMix(0.5, 0.5, 0, 0, KeyDist::Uniform, 0);
    if (name == "chase-dl1")
        return chaseConfig(4 * 1024); // resident in the 8 KiB DL1
    if (name == "chase-l2")
        return chaseConfig(256 * 1024); // spills DL1, fits 1 MiB L2
    if (name == "chase-mem")
        return chaseConfig(4 * 1024 * 1024); // spills L2
    if (name == "rb-adversarial") {
        GenConfig c;
        c.family = GenFamily::RbAdversarial;
        c.numKeys = 512; // small observability table
        return c;
    }
    double v = 0;
    if (paramSuffix(name, "zipf-", v))
        return keyMix(0.5, 0.5, 0, 0, KeyDist::Zipfian, v);
    if (paramSuffix(name, "selfsim-", v))
        return keyMix(0.5, 0.5, 0, 0, KeyDist::SelfSimilar, v);
    if (paramSuffix(name, "branch-", v))
        return branchConfig(v);
    throw std::invalid_argument("unknown generator preset '" + name +
                                "'");
}

} // namespace

GenConfig
genPreset(const std::string &name)
{
    GenConfig c = genPresetImpl(name);
    // Fixed preset names become the config's label so the derived
    // workload name round-trips ("chase-l2" stays "chase-l2", not
    // "chase-256k"); parameterized forms already derive their own
    // canonical spelling.
    for (const std::string &fixed : genPresetNames()) {
        if (name == fixed)
            c.label = name;
    }
    return c;
}

std::vector<std::string>
genPresetNames()
{
    return {"ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e", "ycsb-f",
            "uniform", "chase-dl1", "chase-l2", "chase-mem",
            "rb-adversarial"};
}

// ---------------------------------------------------------- generators

namespace
{

/** Shared plumbing: a bound config, a forked rng, an op countdown. */
class StreamGenBase : public WorkloadGen
{
  public:
    void
    load(const GenConfig &cfg_, std::uint64_t seed) override
    {
        cfg = cfg_;
        rng = Rng(seed);
        left = cfg.streamOps;
        onLoad();
    }

    bool
    next(WorkloadOp &op) override
    {
        if (left == 0) {
            op = WorkloadOp{};
            return false;
        }
        --left;
        op = draw();
        return true;
    }

  protected:
    virtual void onLoad() {}
    virtual WorkloadOp draw() = 0;

    GenConfig cfg;
    Rng rng{0};
    std::uint64_t left = 0;
};

/** Skewed reads/updates/RMWs/scans over the key table (YCSB mold). */
class KeyAccessGen : public StreamGenBase
{
  public:
    GenFamily family() const override { return GenFamily::KeyAccess; }

  protected:
    void
    onLoad() override
    {
        picker = std::make_unique<KeyPicker>(cfg.dist, cfg.numKeys,
                                             cfg.skew, cfg.scramble);
        const double total = cfg.readFrac + cfg.updateFrac +
                             cfg.rmwFrac + cfg.scanFrac;
        const double norm = total > 0 ? total : 1.0;
        cdfRead = cfg.readFrac / norm;
        cdfUpdate = cdfRead + cfg.updateFrac / norm;
        cdfRmw = cdfUpdate + cfg.rmwFrac / norm;
    }

    WorkloadOp
    draw() override
    {
        WorkloadOp op;
        // 1/2^20-granular mix draw keeps the stream integer-only.
        const double u =
            static_cast<double>(rng.below(1u << 20)) / (1u << 20);
        if (u < cdfRead)
            op.kind = WorkloadOp::Kind::KeyRead;
        else if (u < cdfUpdate)
            op.kind = WorkloadOp::Kind::KeyUpdate;
        else if (u < cdfRmw)
            op.kind = WorkloadOp::Kind::KeyRmw;
        else
            op.kind = WorkloadOp::Kind::KeyScan;
        op.key = picker->pick(rng);
        op.len = op.kind == WorkloadOp::Kind::KeyScan ? cfg.scanLen : 0;
        return op;
    }

  private:
    std::unique_ptr<KeyPicker> picker;
    double cdfRead = 1.0, cdfUpdate = 1.0, cdfRmw = 1.0;
};

/** Serial derefs through the sized ring, with light compute filler. */
class PointerChaseGen : public StreamGenBase
{
  public:
    GenFamily family() const override { return GenFamily::PointerChase; }

  protected:
    WorkloadOp
    draw() override
    {
        WorkloadOp op;
        if (rng.chance(1, 8)) {
            op.kind = WorkloadOp::Kind::Compute;
            op.len = 2;
        } else {
            op.kind = WorkloadOp::Kind::PointerChase;
            op.len = cfg.chaseSteps;
        }
        return op;
    }
};

/** Data-dependent branches drawn at the configured taken-rate. */
class BranchEntropyGen : public StreamGenBase
{
  public:
    GenFamily
    family() const override
    {
        return GenFamily::BranchEntropy;
    }

  protected:
    WorkloadOp
    draw() override
    {
        WorkloadOp op;
        if (rng.chance(1, 4)) {
            op.kind = WorkloadOp::Kind::Compute;
            op.len = 2;
        } else {
            op.kind = WorkloadOp::Kind::Branch;
            op.taken = static_cast<double>(rng.below(1u << 20)) /
                           (1u << 20) <
                       cfg.takenRate;
        }
        return op;
    }
};

/** Serial shift->logical bursts — the Table 3 conversion worst case —
 * with occasional key updates so state lands in memory. */
class RbAdversarialGen : public StreamGenBase
{
  public:
    GenFamily
    family() const override
    {
        return GenFamily::RbAdversarial;
    }

  protected:
    WorkloadOp
    draw() override
    {
        WorkloadOp op;
        if (rng.chance(1, 4)) {
            op.kind = WorkloadOp::Kind::KeyUpdate;
            op.key = rng.below(cfg.numKeys);
        } else {
            op.kind = WorkloadOp::Kind::Compute;
            op.len = cfg.chainLen;
            op.rb = true;
        }
        return op;
    }
};

} // namespace

std::unique_ptr<WorkloadGen>
makeWorkloadGen(GenFamily family)
{
    switch (family) {
      case GenFamily::KeyAccess:
        return std::make_unique<KeyAccessGen>();
      case GenFamily::PointerChase:
        return std::make_unique<PointerChaseGen>();
      case GenFamily::BranchEntropy:
        return std::make_unique<BranchEntropyGen>();
      case GenFamily::RbAdversarial:
      default:
        return std::make_unique<RbAdversarialGen>();
    }
}

std::vector<WorkloadOp>
drawStream(const GenConfig &cfg, std::uint64_t seed)
{
    auto gen = makeWorkloadGen(cfg.family);
    gen->load(cfg, seed);
    std::vector<WorkloadOp> ops;
    ops.reserve(cfg.streamOps);
    WorkloadOp op;
    while (gen->next(op))
        ops.push_back(op);
    return ops;
}

Program
buildGenProgram(const GenConfig &cfg, const WorkloadParams &wp)
{
    const std::vector<WorkloadOp> ops =
        drawStream(cfg, Rng::mixSeed(wp.seed, 1));
    return lowerStream(cfg, ops, wp);
}

WorkloadInfo
genWorkloadInfo(const GenConfig &cfg)
{
    WorkloadInfo info;
    info.name = cfg.name();
    info.suite = "gen";
    info.description = genFamilyName(cfg.family);
    info.build = [cfg](const WorkloadParams &wp) {
        return buildGenProgram(cfg, wp);
    };
    return info;
}

std::vector<GenConfig>
genSweepConfigs(const std::vector<double> &skews)
{
    const std::vector<double> zipfSkews =
        skews.empty()
            ? std::vector<double>{0.5, 0.6, 0.7, 0.8, 0.9, 0.99}
            : skews;
    std::vector<GenConfig> out;
    for (double s : zipfSkews)
        out.push_back(keyMix(0.5, 0.5, 0, 0, KeyDist::Zipfian, s));
    out.push_back(keyMix(0.5, 0.5, 0, 0, KeyDist::SelfSimilar, 0.2));
    out.push_back(genPreset("uniform"));
    out.push_back(genPreset("chase-dl1"));
    out.push_back(genPreset("chase-l2"));
    out.push_back(genPreset("chase-mem"));
    out.push_back(branchConfig(0.5));
    out.push_back(branchConfig(0.9));
    out.push_back(branchConfig(0.99));
    out.push_back(genPreset("rb-adversarial"));
    return out;
}

} // namespace rbsim::gen
