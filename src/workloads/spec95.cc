/**
 * @file
 * SPECint95-like workload generators (substitution for the paper's
 * benchmark binaries — see DESIGN.md).
 *
 * Each generator mimics its namesake's dominant kernel: go (branchy
 * board-scan heuristics), m88ksim (interpreter dispatch), gcc (tree
 * walks), compress (LZW hash loop), li (cons-cell list processing),
 * ijpeg (integer DCT blocks), perl (string hashing + probing), vortex
 * (record/transaction processing).
 */

#include "workloads/workload.hh"

#include "workloads/kernels.hh"

namespace rbsim
{

Program
buildGo95(const WorkloadParams &wp)
{
    // 32x32 board of random stone colors {0,1,2}; several evaluation
    // passes count same-color neighbors with data-dependent branches,
    // and mutate a cell between passes. ~21 insts/position.
    constexpr unsigned n = 32;
    const unsigned passes = 9 * wp.scale;

    CodeBuilder cb("go");
    Rng rng(wp.seed ^ 0x60);
    const Addr board = 0x100000;
    std::vector<Word> cells(n * n);
    for (Word &c : cells)
        c = rng.below(3);
    cb.dataWords(board, cells);

    const Reg base = R(1), idx = R(2), limit = R(3), cell = R(4);
    const Reg nb = R(5), score = R(6), addr = R(7), tmp = R(8);
    const Reg pass = R(9), rngr = R(10), t2 = R(11);

    cb.ldiq(base, static_cast<std::int64_t>(board));
    cb.ldiq(limit, n * n - n - 1);
    cb.ldiq(score, 0);
    cb.ldiq(pass, passes);
    cb.ldiq(rngr, static_cast<std::int64_t>(wp.seed | 1));

    const Label pass_loop = cb.newLabel();
    const Label pos_loop = cb.newLabel();
    const Label skip_empty = cb.newLabel();
    const Label next_pos = cb.newLabel();

    cb.bind(pass_loop);
    cb.ldiq(idx, n + 1);

    cb.bind(pos_loop);
    cb.op3(Opcode::S8ADDQ, idx, base, addr);
    cb.load(Opcode::LDQ, cell, 0, addr);
    // Empty point: skip the neighbor scan (branchy on random data).
    cb.branch(Opcode::BEQ, cell, skip_empty);
    // Four neighbors; each same-color match bumps the score.
    cb.load(Opcode::LDQ, nb, -8, addr);
    cb.op3(Opcode::CMPEQ, cell, nb, tmp);
    cb.op3(Opcode::ADDQ, score, tmp, score);
    cb.load(Opcode::LDQ, nb, 8, addr);
    cb.op3(Opcode::CMPEQ, cell, nb, tmp);
    cb.op3(Opcode::ADDQ, score, tmp, score);
    cb.load(Opcode::LDQ, nb, -8 * static_cast<int>(n), addr);
    cb.op3(Opcode::CMPEQ, cell, nb, tmp);
    cb.op3(Opcode::ADDQ, score, tmp, score);
    cb.load(Opcode::LDQ, nb, 8 * static_cast<int>(n), addr);
    cb.op3(Opcode::CMPEQ, cell, nb, tmp);
    cb.op3(Opcode::ADDQ, score, tmp, score);
    // Liberty bookkeeping: record the running score per position.
    cb.ldiq(t2, 0x110000);
    cb.op3(Opcode::S8ADDQ, idx, t2, t2);
    cb.store(Opcode::STQ, score, 0, t2);
    // A color-2 stone with a high score flips to color 1 (data-dependent
    // store).
    cb.opi(Opcode::AND, score, 7, t2);
    cb.opi(Opcode::CMPEQ, t2, 7, t2);
    cb.branch(Opcode::BEQ, t2, next_pos);
    cb.opi(Opcode::AND, cell, 1, cell);
    cb.store(Opcode::STQ, cell, 0, addr);
    cb.br(next_pos);

    cb.bind(skip_empty);
    cb.opi(Opcode::ADDQ, score, 1, score);

    cb.bind(next_pos);
    cb.opi(Opcode::ADDQ, idx, 1, idx);
    cb.op3(Opcode::CMPLT, idx, limit, tmp);
    cb.branch(Opcode::BNE, tmp, pos_loop);

    // Mutate one random cell between passes.
    emitXorshift(cb, rngr, tmp);
    cb.ldiq(t2, n * n - 1);
    cb.op3(Opcode::AND, rngr, t2, t2);
    cb.op3(Opcode::S8ADDQ, t2, base, addr);
    cb.opi(Opcode::AND, rngr, 1, t2);
    cb.store(Opcode::STQ, t2, 0, addr);

    cb.opi(Opcode::SUBQ, pass, 1, pass);
    cb.branch(Opcode::BNE, pass, pass_loop);
    // Publish the score.
    cb.store(Opcode::STQ, score, -8, base);
    cb.halt();
    return cb.finish();
}

Program
buildM88ksim95(const WorkloadParams &wp)
{
    // Interpreter: a 256-entry pseudo-program of (op, operand) words is
    // dispatched through an in-memory handler table with an indirect
    // jump, the signature behaviour of a CPU simulator.
    constexpr unsigned progLen = 256;
    const unsigned rounds = 50 * wp.scale;

    CodeBuilder cb("m88ksim");
    Rng rng(wp.seed ^ 0x88);
    const Addr pseudo = 0x100000;
    const Addr table = 0x110000;
    // Real instruction streams repeat opcodes in runs, which is what
    // lets the BTB predict the dispatch jump most of the time.
    std::vector<Word> ops(progLen);
    Word cur_op = 0;
    for (Word &w : ops) {
        if (rng.chance(1, 4))
            cur_op = rng.below(8);
        w = cur_op | (rng.below(4096) << 8);
    }
    cb.dataWords(pseudo, ops);

    const Reg pbase = R(1), pc = R(2), word = R(3), op = R(4);
    const Reg operand = R(5), acc = R(6), tbl = R(7), haddr = R(8);
    const Reg round = R(9), tmp = R(10), cnt = R(11), simrf = R(12);

    cb.ldiq(pbase, static_cast<std::int64_t>(pseudo));
    cb.ldiq(tbl, static_cast<std::int64_t>(table));
    cb.ldiq(simrf, 0x120000); // the simulated CPU's register file
    cb.ldiq(acc, 0x1234);
    cb.ldiq(round, rounds);
    cb.ldiq(cnt, 0);

    const Label round_loop = cb.newLabel();
    const Label dispatch = cb.newLabel();
    const Label next = cb.newLabel();
    std::array<Label, 8> handlers{};
    for (auto &h : handlers)
        h = cb.newLabel();

    cb.bind(round_loop);
    cb.ldiq(pc, 0);

    cb.bind(dispatch);
    cb.op3(Opcode::S8ADDQ, pc, pbase, tmp);
    cb.load(Opcode::LDQ, word, 0, tmp);
    cb.opi(Opcode::AND, word, 7, op);
    cb.opi(Opcode::SRL, word, 8, operand);
    cb.op3(Opcode::S8ADDQ, op, tbl, haddr);
    cb.load(Opcode::LDQ, haddr, 0, haddr);
    cb.jmp(R(26), haddr); // indirect dispatch

    // Handlers.
    cb.bind(handlers[0]); // add
    cb.op3(Opcode::ADDQ, acc, operand, acc);
    cb.br(next);
    cb.bind(handlers[1]); // xor
    cb.op3(Opcode::XOR, acc, operand, acc);
    cb.br(next);
    cb.bind(handlers[2]); // shift-add
    cb.op3(Opcode::S4ADDQ, operand, acc, acc);
    cb.br(next);
    cb.bind(handlers[3]); // sub
    cb.op3(Opcode::SUBQ, acc, operand, acc);
    cb.br(next);
    cb.bind(handlers[4]); // conditional count
    cb.opi(Opcode::AND, acc, 1, tmp);
    cb.op3(Opcode::ADDQ, cnt, tmp, cnt);
    cb.br(next);
    cb.bind(handlers[5]); // rotate-ish
    cb.opi(Opcode::SLL, acc, 3, tmp);
    cb.opi(Opcode::SRL, acc, 61, acc);
    cb.op3(Opcode::BIS, acc, tmp, acc);
    cb.br(next);
    cb.bind(handlers[6]); // compare-accumulate
    cb.op3(Opcode::CMPLT, acc, operand, tmp);
    cb.op3(Opcode::ADDQ, cnt, tmp, cnt);
    cb.br(next);
    cb.bind(handlers[7]); // byte mix
    cb.opi(Opcode::EXTBL, acc, 2, tmp);
    cb.op3(Opcode::XOR, acc, tmp, acc);
    cb.br(next);

    cb.bind(next);
    // Simulators write the result back to the simulated register file.
    cb.opi(Opcode::AND, operand, 31, tmp);
    cb.op3(Opcode::S8ADDQ, tmp, simrf, tmp);
    cb.store(Opcode::STQ, acc, 0, tmp);
    cb.opi(Opcode::ADDQ, pc, 1, pc);
    cb.ldiq(tmp, progLen);
    cb.op3(Opcode::CMPLT, pc, tmp, tmp);
    cb.branch(Opcode::BNE, tmp, dispatch);
    cb.opi(Opcode::SUBQ, round, 1, round);
    cb.branch(Opcode::BNE, round, round_loop);
    cb.store(Opcode::STQ, acc, 0, pbase);
    cb.halt();

    // Handler jump table: the byte addresses of the handler labels.
    std::vector<Word> haddrs;
    for (const Label &hl : handlers)
        haddrs.push_back(cb.labelByteAddr(hl));
    cb.dataWords(table, haddrs);
    return cb.finish();
}

Program
buildGcc95(const WorkloadParams &wp)
{
    // Binary-tree searches: load-compare-branch chains over pointers,
    // the shape of gcc's symbol/tree manipulation.
    constexpr unsigned treeNodes = 2048;
    const unsigned searches = 2600 * wp.scale;

    CodeBuilder cb("gcc");
    Rng rng(wp.seed ^ 0xcc);
    const Addr tree = 0x200000;
    const Addr root = buildBinaryTree(cb, rng, tree, treeNodes);

    const Reg rootr = R(1), node = R(2), key = R(3), nkey = R(4);
    const Reg acc = R(5), tmp = R(6), rngr = R(7), n = R(8), mask = R(9);

    buildRandomStream(cb, rng, 0xa00000, searches + 8);
    cb.ldiq(rootr, static_cast<std::int64_t>(root));
    cb.ldiq(rngr, 0xa00000); // input cursor
    cb.ldiq(n, searches);
    cb.ldiq(acc, 0);
    cb.ldiq(mask, 0xffffff);

    const Label search = cb.newLabel();
    const Label walk = cb.newLabel();
    const Label go_right = cb.newLabel();
    const Label done = cb.newLabel();

    const Reg hot = R(10);
    cb.ldiq(hot, 0x1ffff); // hot symbol range
    cb.bind(search);
    emitStreamNext(cb, rngr, tmp); // next symbol reference from input
    cb.op3(Opcode::AND, tmp, mask, key);
    // Symbol tables see repeated lookups of the same names: bias 3 of 4
    // searches into a hot key range.
    cb.opi(Opcode::SRL, tmp, 27, tmp);
    cb.opi(Opcode::AND, tmp, 3, tmp);
    cb.op3(Opcode::AND, key, hot, nkey);
    cb.op3(Opcode::CMOVNE, tmp, nkey, key);
    cb.mov(rootr, node);

    cb.bind(walk);
    cb.branch(Opcode::BEQ, node, done);
    cb.load(Opcode::LDQ, nkey, 16, node); // key field
    cb.op3(Opcode::SUBQ, key, nkey, tmp);
    cb.branch(Opcode::BEQ, tmp, done);
    cb.branch(Opcode::BGT, tmp, go_right);
    cb.load(Opcode::LDQ, node, 0, node); // left
    cb.br(walk);
    cb.bind(go_right);
    cb.load(Opcode::LDQ, node, 8, node); // right
    cb.br(walk);

    cb.bind(done);
    // Accumulate the payload of the last non-null node visited (or the
    // key when the search fell off).
    cb.op3(Opcode::CMOVEQ, node, key, tmp);
    cb.op3(Opcode::ADDQ, acc, tmp, acc);
    cb.opi(Opcode::SUBQ, n, 1, n);
    cb.branch(Opcode::BNE, n, search);
    cb.ldiq(tmp, static_cast<std::int64_t>(tree - 8));
    cb.store(Opcode::STQ, acc, 0, tmp);
    cb.halt();
    return cb.finish();
}

Program
buildCompress95(const WorkloadParams &wp)
{
    // LZW-flavored hash loop: walk a byte stream (packed 8 per word,
    // unpacked with EXTBL), hash each (prefix, byte) pair, probe a code
    // table, insert on miss.
    constexpr unsigned streamWords = 1024; // 8 KiB of input bytes
    const unsigned rounds = 2 * wp.scale;

    CodeBuilder cb("compress");
    Rng rng(wp.seed ^ 0xc0);
    const Addr stream = 0x100000;
    const Addr htab = 0x180000; // 4096-entry table
    // Text-like input: a small alphabet with strong repetition so the
    // probe branch behaves like real compress (mostly hits once warm).
    std::vector<Word> text(streamWords);
    Word phrase = 0;
    for (Word &w : text) {
        if (rng.chance(1, 5))
            phrase = rng.next() & 0x0f0f0f0f0f0f0f0full;
        w = phrase;
    }
    cb.dataWords(stream, text);

    const Reg sbase = R(1), hbase = R(2), wi = R(3), word = R(4);
    const Reg byte = R(5), h = R(6), pair = R(7), probe = R(8);
    const Reg hits = R(9), tmp = R(10), addr = R(11), wlimit = R(12);
    const Reg round = R(13), hmask = R(14);

    cb.ldiq(sbase, static_cast<std::int64_t>(stream));
    cb.ldiq(hbase, static_cast<std::int64_t>(htab));
    cb.ldiq(wlimit, streamWords);
    cb.ldiq(hmask, 0xfff);
    cb.ldiq(hits, 0);
    cb.ldiq(round, rounds);

    const Reg pmask = R(15);
    cb.ldiq(pmask, 0xffffff);

    const Label round_loop = cb.newLabel();
    const Label word_loop = cb.newLabel();

    cb.bind(round_loop);
    cb.ldiq(wi, 0);
    cb.ldiq(h, 0);
    cb.ldiq(pair, 0);

    cb.bind(word_loop);
    cb.op3(Opcode::S8ADDQ, wi, sbase, addr);
    cb.load(Opcode::LDQ, word, 0, addr);
    // Unrolled: consume all 8 bytes of the word.
    for (unsigned k = 0; k < 8; ++k) {
        cb.opi(Opcode::EXTBL, word, static_cast<std::uint8_t>(k), byte);
        // h = ((h << 4) ^ byte) & 0xfff
        cb.opi(Opcode::SLL, h, 4, h);
        cb.op3(Opcode::XOR, h, byte, h);
        cb.op3(Opcode::AND, h, hmask, h);
        // pair = ((pair << 8) | byte) & 0xffffff
        cb.opi(Opcode::SLL, pair, 8, pair);
        cb.op3(Opcode::BIS, pair, byte, pair);
        cb.op3(Opcode::AND, pair, pmask, pair);
        // Probe.
        cb.op3(Opcode::S8ADDQ, h, hbase, addr);
        cb.load(Opcode::LDQ, probe, 0, addr);
        cb.op3(Opcode::CMPEQ, probe, pair, tmp);
        const Label miss = cb.newLabel();
        const Label next_byte = cb.newLabel();
        cb.branch(Opcode::BEQ, tmp, miss);
        cb.opi(Opcode::ADDQ, hits, 1, hits);
        cb.br(next_byte);
        cb.bind(miss);
        cb.store(Opcode::STQ, pair, 0, addr);
        cb.bind(next_byte);
    }
    cb.opi(Opcode::ADDQ, wi, 1, wi);
    cb.op3(Opcode::CMPLT, wi, wlimit, tmp);
    cb.branch(Opcode::BNE, tmp, word_loop);
    cb.opi(Opcode::SUBQ, round, 1, round);
    cb.branch(Opcode::BNE, round, round_loop);
    cb.store(Opcode::STQ, hits, -8, sbase);
    cb.halt();
    return cb.finish();
}

Program
buildLi95(const WorkloadParams &wp)
{
    // Cons-cell list processing: pointer-chased traversals with a
    // filtering helper called through BSR/RET, lisp-interpreter flavor.
    constexpr unsigned cells = 2048;
    const unsigned traversals = 11 * wp.scale;

    CodeBuilder cb("li");
    Rng rng(wp.seed ^ 0x11);
    const Addr heap = 0x300000;
    // Allocator-like layout: runs of 16 sequentially-placed cells with
    // shuffled run order (lisp heaps have strong run locality), and
    // payloads biased 3:1 odd so the filter branch is predictable-ish.
    const Addr head = [&] {
        constexpr std::size_t run = 16;
        const std::size_t nruns = cells / run;
        std::vector<std::size_t> order(nruns);
        for (std::size_t i = 0; i < nruns; ++i)
            order[i] = i;
        for (std::size_t i = nruns; i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);
        std::vector<Word> image(cells * 4, 0);
        std::size_t prev = ~std::size_t{0};
        std::size_t first = 0;
        for (std::size_t r = 0; r < nruns; ++r) {
            for (std::size_t k = 0; k < run; ++k) {
                const std::size_t cell = order[r] * run + k;
                if (prev != ~std::size_t{0})
                    image[prev * 4] = heap + cell * 32;
                else
                    first = cell;
                Word payload = rng.next() & 0xffff;
                if (rng.chance(3, 4))
                    payload |= 1;
                else
                    payload &= ~Word{1};
                image[cell * 4 + 1] = payload;
                prev = cell;
            }
        }
        cb.dataWords(heap, image);
        return heap + first * 32;
    }();

    const Reg node = R(1), headr = R(2), sum = R(3), val = R(4);
    const Reg tmp = R(5), trav = R(6), odd = R(7);
    const Reg logb = R(8), logc = R(9), logmask = R(10);

    const Label fn = cb.newLabel();
    const Label fn_skip = cb.newLabel();
    const Label trav_loop = cb.newLabel();
    const Label walk = cb.newLabel();
    const Label done = cb.newLabel();
    const Label start = cb.newLabel();

    cb.br(start);

    // Helper: log the visit (heap write traffic), then
    // if (val & 1) sum += val else sum -= 1.
    cb.bind(fn);
    cb.op3(Opcode::AND, logc, logmask, tmp);
    cb.op3(Opcode::S8ADDQ, tmp, logb, tmp);
    cb.store(Opcode::STQ, val, 0, tmp);
    cb.opi(Opcode::ADDQ, logc, 1, logc);
    cb.opi(Opcode::AND, val, 1, odd);
    cb.branch(Opcode::BEQ, odd, fn_skip);
    cb.op3(Opcode::ADDQ, sum, val, sum);
    cb.ret(R(26));
    cb.bind(fn_skip);
    cb.opi(Opcode::SUBQ, sum, 1, sum);
    cb.ret(R(26));

    cb.bind(start);
    cb.ldiq(headr, static_cast<std::int64_t>(head));
    cb.ldiq(sum, 0);
    cb.ldiq(trav, traversals);
    cb.ldiq(logb, 0x380000);
    cb.ldiq(logc, 0);
    cb.ldiq(logmask, 511);

    cb.bind(trav_loop);
    cb.mov(headr, node);
    cb.bind(walk);
    cb.branch(Opcode::BEQ, node, done);
    cb.load(Opcode::LDQ, val, 8, node); // payload
    cb.bsr(R(26), fn);
    cb.load(Opcode::LDQ, node, 0, node); // next
    cb.br(walk);
    cb.bind(done);
    cb.opi(Opcode::SUBQ, trav, 1, trav);
    cb.branch(Opcode::BNE, trav, trav_loop);
    cb.ldiq(tmp, static_cast<std::int64_t>(heap - 8));
    cb.store(Opcode::STQ, sum, 0, tmp);
    cb.halt();
    return cb.finish();
}

Program
buildIjpeg95(const WorkloadParams &wp)
{
    // Integer DCT-like block transforms: regular, multiply- and
    // shift-heavy, high ILP, highly predictable branches.
    constexpr unsigned blocks = 64;
    const unsigned passes = 48 * wp.scale;

    CodeBuilder cb("ijpeg");
    Rng rng(wp.seed ^ 0x3e);
    const Addr data = 0x100000;
    cb.dataWords(data, randomWords(rng, blocks * 8, 0xffff));

    const Reg base = R(1), blk = R(2), addr = R(3), pass = R(16);
    const Reg a = R(4), b = R(5), c = R(6), d = R(7);
    const Reg t0 = R(8), t1 = R(9), t2 = R(10), t3 = R(11);
    const Reg tmp = R(12), nblk = R(13);

    cb.ldiq(base, static_cast<std::int64_t>(data));
    cb.ldiq(pass, passes);
    cb.ldiq(nblk, blocks);

    const Label pass_loop = cb.newLabel();
    const Label blk_loop = cb.newLabel();

    cb.bind(pass_loop);
    cb.ldiq(blk, 0);

    cb.bind(blk_loop);
    // addr = base + blk*64; process two independent blocks per
    // iteration with disjoint registers so the 10-cycle multiplies of
    // neighboring blocks overlap (real DCT code transforms independent
    // rows/columns).
    cb.opi(Opcode::SLL, blk, 6, addr);
    cb.op3(Opcode::ADDQ, addr, base, addr);
    const Reg c362 = R(14), c473 = R(15);
    cb.ldiq(c362, 362);
    cb.ldiq(c473, 473);
    const Reg regs2[2][8] = {
        {a, b, c, d, t0, t1, t2, t3},
        {R(17), R(18), R(19), R(20), R(21), R(22), R(23), R(24)},
    };
    for (int half = 0; half < 2; ++half) {
        const Reg va = regs2[half][0], vb = regs2[half][1];
        const Reg vc = regs2[half][2], vd = regs2[half][3];
        const Reg u0 = regs2[half][4], u1 = regs2[half][5];
        const Reg u2 = regs2[half][6], u3 = regs2[half][7];
        const int off = half * 32;
        cb.load(Opcode::LDQ, va, off + 0, addr);
        cb.load(Opcode::LDQ, vb, off + 8, addr);
        cb.load(Opcode::LDQ, vc, off + 16, addr);
        cb.load(Opcode::LDQ, vd, off + 24, addr);
        cb.op3(Opcode::ADDQ, va, vd, u0);
        cb.op3(Opcode::SUBQ, va, vd, u3);
        cb.op3(Opcode::ADDQ, vb, vc, u1);
        cb.op3(Opcode::SUBQ, vb, vc, u2);
        cb.op3(Opcode::ADDQ, u0, u1, va);
        cb.op3(Opcode::SUBQ, u0, u1, vc);
        // Scaled rotation approximations: x*362 >> 8 etc., with the
        // multiplies started straight off the loads' results.
        cb.op3(Opcode::MULQ, u2, c362, u2);
        cb.opi(Opcode::SRA, u2, 8, u2);
        cb.op3(Opcode::MULQ, u3, c473, u3);
        cb.opi(Opcode::SRA, u3, 8, u3);
        cb.op3(Opcode::ADDQ, u2, u3, vb);
        cb.op3(Opcode::SUBQ, u3, u2, vd);
        cb.store(Opcode::STQ, va, off + 0, addr);
        cb.store(Opcode::STQ, vb, off + 8, addr);
        cb.store(Opcode::STQ, vc, off + 16, addr);
        cb.store(Opcode::STQ, vd, off + 24, addr);
    }
    cb.opi(Opcode::ADDQ, blk, 1, blk);
    cb.op3(Opcode::CMPLT, blk, nblk, tmp);
    cb.branch(Opcode::BNE, tmp, blk_loop);
    cb.opi(Opcode::SUBQ, pass, 1, pass);
    cb.branch(Opcode::BNE, pass, pass_loop);
    cb.halt();
    return cb.finish();
}

Program
buildPerl95(const WorkloadParams &wp)
{
    // String hashing and hash-table probing: h = h*33 + c inner loops
    // (shift-add chains, byte extracts) with probe/compare branches.
    constexpr unsigned strings = 512;
    constexpr unsigned strWords = 2; // 16-byte strings
    const unsigned rounds = 8 * wp.scale;

    CodeBuilder cb("perl");
    Rng rng(wp.seed ^ 0x9e);
    const Addr pool = 0x100000;
    const Addr htab = 0x140000;
    cb.dataWords(pool, randomWords(rng, strings * strWords));

    const Reg pbase = R(1), hbase = R(2), si = R(3), saddr = R(4);
    const Reg word = R(5), ch = R(6), h = R(7), tmp = R(8);
    const Reg probe = R(9), found = R(10), round = R(11), mask = R(12);
    const Reg nstr = R(13);

    cb.ldiq(pbase, static_cast<std::int64_t>(pool));
    cb.ldiq(hbase, static_cast<std::int64_t>(htab));
    cb.ldiq(mask, 0x7ff);
    cb.ldiq(found, 0);
    cb.ldiq(round, rounds);
    cb.ldiq(nstr, strings);

    const Label round_loop = cb.newLabel();
    const Label str_loop = cb.newLabel();
    const Label insert = cb.newLabel();
    const Label next_str = cb.newLabel();

    cb.bind(round_loop);
    cb.ldiq(si, 0);

    cb.bind(str_loop);
    cb.opi(Opcode::SLL, si, 4, saddr);
    cb.op3(Opcode::ADDQ, saddr, pbase, saddr);
    cb.ldiq(h, 5381);
    for (unsigned w = 0; w < strWords; ++w) {
        cb.load(Opcode::LDQ, word, static_cast<int>(w * 8), saddr);
        for (unsigned k = 0; k < 8; k += 2) { // every other byte
            cb.opi(Opcode::EXTBL, word, static_cast<std::uint8_t>(k), ch);
            // h = h*33 + ch  (h<<5 + h + ch: RB-friendly shift-add)
            cb.opi(Opcode::SLL, h, 5, tmp);
            cb.op3(Opcode::ADDQ, tmp, h, h);
            cb.op3(Opcode::ADDQ, h, ch, h);
        }
    }
    // Keep the hash in the per-string results vector.
    cb.op3(Opcode::S8ADDQ, si, hbase, tmp);
    cb.store(Opcode::STQ, h, 16384, tmp); // results live above the table
    cb.op3(Opcode::AND, h, mask, tmp);
    cb.op3(Opcode::S8ADDQ, tmp, hbase, tmp);
    cb.load(Opcode::LDQ, probe, 0, tmp);
    cb.op3(Opcode::CMPEQ, probe, h, probe);
    cb.branch(Opcode::BEQ, probe, insert);
    cb.opi(Opcode::ADDQ, found, 1, found);
    cb.br(next_str);
    cb.bind(insert);
    cb.store(Opcode::STQ, h, 0, tmp);
    cb.bind(next_str);
    cb.opi(Opcode::ADDQ, si, 1, si);
    cb.op3(Opcode::CMPLT, si, nstr, tmp);
    cb.branch(Opcode::BNE, tmp, str_loop);
    cb.opi(Opcode::SUBQ, round, 1, round);
    cb.branch(Opcode::BNE, round, round_loop);
    cb.store(Opcode::STQ, found, -8, pbase);
    cb.halt();
    return cb.finish();
}

Program
buildVortex95(const WorkloadParams &wp)
{
    // Object-database transactions: pick a record, call an update
    // routine that reads/writes several fields, maintain an index.
    constexpr unsigned records = 4096; // 8 words each = 256 KiB
    const unsigned txns = 8000 * wp.scale;

    CodeBuilder cb("vortex");
    Rng rng(wp.seed ^ 0x40);
    const Addr db = 0x400000;
    const Addr index = 0x600000;
    const Addr txn_in = 0xa00000;
    cb.dataWords(db, randomWords(rng, records * 8, 0xffffff));
    buildRandomStream(cb, rng, txn_in, txns + 8);

    const Reg dbase = R(1), ibase = R(2), rec = R(3), raddr = R(4);
    const Reg f0 = R(5), f1 = R(6), f2 = R(7), tmp = R(8);
    const Reg rngr = R(9), n = R(10), mask = R(11);

    const Label update = cb.newLabel();
    const Label txn_loop = cb.newLabel();
    const Label start = cb.newLabel();

    cb.br(start);

    // update(raddr): f0 += f1; f2 = f0 ^ f1 (byte-swizzled); write back.
    cb.bind(update);
    cb.load(Opcode::LDQ, f0, 0, raddr);
    cb.load(Opcode::LDQ, f1, 8, raddr);
    cb.load(Opcode::LDQ, f2, 16, raddr);
    cb.op3(Opcode::ADDQ, f0, f1, f0);
    cb.op3(Opcode::XOR, f0, f1, tmp);
    cb.opi(Opcode::ZAPNOT, tmp, 0x0f, tmp);
    cb.op3(Opcode::ADDQ, f2, tmp, f2);
    cb.store(Opcode::STQ, f0, 0, raddr);
    cb.store(Opcode::STQ, f2, 16, raddr);
    cb.ret(R(26));

    cb.bind(start);
    cb.ldiq(dbase, static_cast<std::int64_t>(db));
    cb.ldiq(ibase, static_cast<std::int64_t>(index));
    cb.ldiq(rngr, static_cast<std::int64_t>(txn_in)); // input cursor
    cb.ldiq(n, txns);
    cb.ldiq(mask, records - 1);

    const Reg hotmask = R(12), rnd = R(13);
    cb.ldiq(hotmask, 63); // 64 hot records = 4KB, fits the L1
    cb.bind(txn_loop);
    emitStreamNext(cb, rngr, rnd); // next transaction id from the input
    // 7 of 8 transactions touch the hot page set; 1 of 8 goes cold
    // (database page-buffer locality).
    cb.op3(Opcode::AND, rnd, mask, rec);
    cb.opi(Opcode::SRL, rnd, 29, tmp);
    cb.opi(Opcode::AND, tmp, 7, tmp);
    cb.op3(Opcode::AND, rnd, hotmask, raddr); // hot candidate index
    cb.op3(Opcode::CMOVNE, tmp, raddr, rec);  // cold only when tmp==0
    // raddr = dbase + rec*64
    cb.opi(Opcode::SLL, rec, 6, raddr);
    cb.op3(Opcode::ADDQ, raddr, dbase, raddr);
    cb.bsr(R(26), update);
    // Index maintenance: index[rec & 1023] = f0.
    cb.ldiq(tmp, 1023);
    cb.op3(Opcode::AND, rec, tmp, tmp);
    cb.op3(Opcode::S8ADDQ, tmp, ibase, tmp);
    cb.store(Opcode::STQ, f0, 0, tmp);
    cb.opi(Opcode::SUBQ, n, 1, n);
    cb.branch(Opcode::BNE, n, txn_loop);
    cb.halt();
    return cb.finish();
}

} // namespace rbsim
