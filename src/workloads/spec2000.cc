/**
 * @file
 * SPECint2000-like workload generators (substitution for the paper's
 * benchmark binaries — see DESIGN.md).
 *
 * gzip (LZ77 match loops), vpr (annealing swaps), gcc (tree walks +
 * logical mix), mcf (out-of-cache pointer chasing), crafty (bitboard
 * logicals + population counts), parser (hash buckets + list walks),
 * eon (FP-flavored interpolation), perlbmk (hashing + dispatch), gap
 * (multiword bignum arithmetic: serial add/carry chains), vortex
 * (record transactions), bzip2 (partition sort + byte histograms),
 * twolf (annealing accept/reject).
 */

#include "workloads/workload.hh"

#include "workloads/kernels.hh"

namespace rbsim
{

Program
buildGzip00(const WorkloadParams &wp)
{
    // LZ77-style matching: hash three "bytes" (packed small values, one
    // per word for addressing simplicity), probe the chain head, then
    // run an inner match-length loop against the candidate.
    constexpr unsigned inputLen = 8192;
    const unsigned positions = 3400 * wp.scale;

    CodeBuilder cb("gzip");
    Rng rng(wp.seed ^ 0x62);
    const Addr input = 0x100000;
    const Addr heads = 0x200000;
    // Compressible input: values repeat with period-ish structure.
    std::vector<Word> data(inputLen);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = (i % 97 < 52) ? (i % 7) : rng.below(64);
    }
    cb.dataWords(input, data);

    const Reg ibase = R(1), hbase = R(2), pos = R(3), addr = R(4);
    const Reg b0 = R(5), b1 = R(6), b2 = R(7), h = R(8);
    const Reg cand = R(9), mlen = R(10), tmp = R(11), t2 = R(12);
    const Reg matched = R(13), n = R(14), hmask = R(15), posmask = R(16);

    cb.ldiq(ibase, static_cast<std::int64_t>(input));
    cb.ldiq(hbase, static_cast<std::int64_t>(heads));
    cb.ldiq(n, positions);
    cb.ldiq(pos, 8);
    cb.ldiq(hmask, 0x7ff);
    cb.ldiq(posmask, inputLen - 9);
    cb.ldiq(matched, 0);

    const Label pos_loop = cb.newLabel();
    const Label match_loop = cb.newLabel();
    const Label match_done = cb.newLabel();
    const Label no_cand = cb.newLabel();
    const Label next_pos = cb.newLabel();

    cb.bind(pos_loop);
    cb.op3(Opcode::AND, pos, posmask, pos);
    cb.op3(Opcode::S8ADDQ, pos, ibase, addr);
    cb.load(Opcode::LDQ, b0, 0, addr);
    cb.load(Opcode::LDQ, b1, 8, addr);
    cb.load(Opcode::LDQ, b2, 16, addr);
    // h = (b0*31 + b1*7 + b2) & hmask via shift-adds.
    cb.opi(Opcode::SLL, b0, 5, h);
    cb.op3(Opcode::SUBQ, h, b0, h);
    cb.op3(Opcode::S8ADDQ, b1, h, h);
    cb.op3(Opcode::SUBQ, h, b1, h);
    cb.op3(Opcode::ADDQ, h, b2, h);
    cb.op3(Opcode::AND, h, hmask, h);
    // Probe the chain head; candidate position comes back.
    cb.op3(Opcode::S8ADDQ, h, hbase, t2);
    cb.load(Opcode::LDQ, cand, 0, t2);
    cb.store(Opcode::STQ, pos, 0, t2); // new head
    cb.branch(Opcode::BEQ, cand, no_cand);
    // Match loop: compare up to 8 positions.
    cb.ldiq(mlen, 0);
    cb.bind(match_loop);
    cb.op3(Opcode::ADDQ, pos, mlen, tmp);
    cb.op3(Opcode::S8ADDQ, tmp, ibase, tmp);
    cb.load(Opcode::LDQ, t2, 0, tmp);
    cb.op3(Opcode::ADDQ, cand, mlen, tmp);
    cb.op3(Opcode::S8ADDQ, tmp, ibase, tmp);
    cb.load(Opcode::LDQ, tmp, 0, tmp);
    cb.op3(Opcode::CMPEQ, t2, tmp, tmp);
    cb.branch(Opcode::BEQ, tmp, match_done);
    cb.opi(Opcode::ADDQ, mlen, 1, mlen);
    cb.opi(Opcode::CMPLT, mlen, 8, tmp);
    cb.branch(Opcode::BNE, tmp, match_loop);
    cb.bind(match_done);
    cb.op3(Opcode::ADDQ, matched, mlen, matched);
    cb.bind(no_cand);
    cb.bind(next_pos);
    cb.opi(Opcode::ADDQ, pos, 3, pos);
    cb.opi(Opcode::SUBQ, n, 1, n);
    cb.branch(Opcode::BNE, n, pos_loop);
    cb.store(Opcode::STQ, matched, -8, ibase);
    cb.halt();
    return cb.finish();
}

Program
buildVpr00(const WorkloadParams &wp)
{
    // Placement annealing: pick two cells, compute the wirelength delta
    // with abs-via-cmov, accept or reject (data-dependent branch), swap
    // on accept.
    constexpr unsigned cells = 4096;
    const unsigned moves = 7000 * wp.scale;

    CodeBuilder cb("vpr");
    Rng rng(wp.seed ^ 0x47);
    const Addr pos = 0x100000;
    const Addr moves_in = 0xa00000;
    cb.dataWords(pos, randomWords(rng, cells, 0xffff));
    buildRandomStream(cb, rng, moves_in, moves + 8);

    const Reg base = R(1), rngr = R(2), i = R(3), j = R(4);
    const Reg xi = R(5), xj = R(6), d = R(7), nd = R(8);
    const Reg cost = R(9), tmp = R(10), mask = R(11), n = R(12);
    const Reg ai = R(13), aj = R(14);

    cb.ldiq(base, static_cast<std::int64_t>(pos));
    cb.ldiq(rngr, static_cast<std::int64_t>(moves_in)); // input cursor
    cb.ldiq(mask, cells - 1);
    cb.ldiq(cost, 0);
    cb.ldiq(n, moves);

    const Label move_loop = cb.newLabel();
    const Label reject = cb.newLabel();

    cb.bind(move_loop);
    emitStreamNext(cb, rngr, tmp); // next proposed move from the input
    cb.op3(Opcode::AND, tmp, mask, i);
    cb.opi(Opcode::SRL, tmp, 17, j);
    cb.op3(Opcode::AND, j, mask, j);
    cb.op3(Opcode::S8ADDQ, i, base, ai);
    cb.op3(Opcode::S8ADDQ, j, base, aj);
    cb.load(Opcode::LDQ, xi, 0, ai);
    cb.load(Opcode::LDQ, xj, 0, aj);
    // d = |xi - xj|; nd = |xi - xj - 64| (pretend target offset).
    cb.op3(Opcode::SUBQ, xi, xj, d);
    cb.op3(Opcode::SUBQ, R(31), d, tmp);
    cb.op3(Opcode::CMOVLT, d, tmp, d);
    cb.opi(Opcode::SUBQ, d, 64, nd);
    cb.op3(Opcode::SUBQ, R(31), nd, tmp);
    cb.op3(Opcode::CMOVLT, nd, tmp, nd);
    // Accept if the new distance is smaller (data-dependent).
    cb.op3(Opcode::CMPLT, nd, d, tmp);
    cb.branch(Opcode::BEQ, tmp, reject);
    cb.store(Opcode::STQ, xj, 0, ai);
    cb.store(Opcode::STQ, xi, 0, aj);
    cb.op3(Opcode::ADDQ, cost, nd, cost);
    cb.bind(reject);
    cb.opi(Opcode::SUBQ, n, 1, n);
    cb.branch(Opcode::BNE, n, move_loop);
    cb.store(Opcode::STQ, cost, -8, base);
    cb.halt();
    return cb.finish();
}

Program
buildGcc00(const WorkloadParams &wp)
{
    // Larger tree than gcc95 plus a per-visit "RTL mangling" mix of
    // logicals, shifts, and byte operations.
    constexpr unsigned treeNodes = 4096;
    const unsigned searches = 1900 * wp.scale;

    CodeBuilder cb("gcc00");
    Rng rng(wp.seed ^ 0xcc00);
    const Addr tree = 0x200000;
    const Addr root = buildBinaryTree(cb, rng, tree, treeNodes);

    const Reg rootr = R(1), node = R(2), key = R(3), nkey = R(4);
    const Reg acc = R(5), tmp = R(6), rngr = R(7), n = R(8), mask = R(9);
    const Reg flags = R(10);

    buildRandomStream(cb, rng, 0xa00000, searches + 8);
    cb.ldiq(rootr, static_cast<std::int64_t>(root));
    cb.ldiq(rngr, 0xa00000); // input cursor
    cb.ldiq(n, searches);
    cb.ldiq(acc, 0);
    cb.ldiq(flags, 0);
    cb.ldiq(mask, 0xffffff);

    const Label search = cb.newLabel();
    const Label walk = cb.newLabel();
    const Label go_right = cb.newLabel();
    const Label done = cb.newLabel();

    const Reg hotmask = R(11);
    cb.ldiq(hotmask, 0x1ffff); // hot symbol range
    cb.bind(search);
    emitStreamNext(cb, rngr, tmp); // next symbol reference from input
    cb.op3(Opcode::AND, tmp, mask, key);
    // Compilers look the same symbols up repeatedly: bias 3 of 4
    // searches into a hot key range.
    cb.opi(Opcode::SRL, tmp, 27, tmp);
    cb.opi(Opcode::AND, tmp, 3, tmp);
    cb.op3(Opcode::AND, key, hotmask, nkey);
    cb.op3(Opcode::CMOVNE, tmp, nkey, key);
    cb.mov(rootr, node);

    cb.bind(walk);
    cb.branch(Opcode::BEQ, node, done);
    cb.load(Opcode::LDQ, nkey, 16, node);
    // Per-visit mangles: flag bookkeeping the way RTL passes chew bits.
    cb.op3(Opcode::XOR, flags, nkey, flags);
    cb.opi(Opcode::ZAPNOT, flags, 0x3f, flags);
    cb.op3(Opcode::SUBQ, key, nkey, tmp);
    cb.branch(Opcode::BEQ, tmp, done);
    cb.branch(Opcode::BGT, tmp, go_right);
    cb.load(Opcode::LDQ, node, 0, node);
    cb.br(walk);
    cb.bind(go_right);
    cb.load(Opcode::LDQ, node, 8, node);
    cb.br(walk);

    cb.bind(done);
    cb.op3(Opcode::CMOVEQ, node, key, tmp);
    cb.op3(Opcode::ADDQ, acc, tmp, acc);
    cb.op3(Opcode::ADDQ, acc, flags, acc);
    cb.opi(Opcode::SUBQ, n, 1, n);
    cb.branch(Opcode::BNE, n, search);
    cb.ldiq(tmp, static_cast<std::int64_t>(tree - 8));
    cb.store(Opcode::STQ, acc, 0, tmp);
    cb.halt();
    return cb.finish();
}

Program
buildMcf00(const WorkloadParams &wp)
{
    // Network-simplex flavor: pointer chasing through a 1.5 MiB node
    // pool (larger than the 1 MiB L2), long load-to-load dependence
    // chains, sparse updates. Memory-bound, low IPC.
    constexpr unsigned nodes = 48 * 1024; // 48k x 32B = 1.5 MiB
    const unsigned steps = 30000 * wp.scale;

    CodeBuilder cb("mcf");
    Rng rng(wp.seed ^ 0x3c);
    const Addr pool = 0x800000;
    const Addr head = buildLinkedList(cb, rng, pool, nodes, 32);

    const Reg node = R(1), headr = R(2), cost = R(3), val = R(4);
    const Reg tmp = R(5), n = R(6), best = R(7);

    cb.ldiq(headr, static_cast<std::int64_t>(head));
    cb.mov(headr, node);
    cb.ldiq(cost, 0);
    cb.ldiq(best, 0);
    cb.ldiq(n, steps);

    const Label step = cb.newLabel();
    const Label wrapped = cb.newLabel();
    const Label cont = cb.newLabel();

    cb.bind(step);
    cb.load(Opcode::LDQ, val, 8, node);
    cb.op3(Opcode::ADDQ, cost, val, cost);
    cb.op3(Opcode::CMPLT, best, val, tmp);
    cb.op3(Opcode::CMOVNE, tmp, val, best);
    // Sparse update: nodes whose payload ends in 11 get reduced.
    cb.opi(Opcode::AND, val, 3, tmp);
    cb.opi(Opcode::CMPEQ, tmp, 3, tmp);
    cb.branch(Opcode::BEQ, tmp, cont);
    cb.opi(Opcode::SRL, val, 1, val);
    cb.store(Opcode::STQ, val, 8, node);
    cb.bind(cont);
    cb.load(Opcode::LDQ, node, 0, node); // the chase
    cb.branch(Opcode::BNE, node, wrapped);
    cb.mov(headr, node);
    cb.bind(wrapped);
    cb.opi(Opcode::SUBQ, n, 1, n);
    cb.branch(Opcode::BNE, n, step);
    cb.ldiq(tmp, static_cast<std::int64_t>(pool - 8));
    cb.store(Opcode::STQ, cost, 0, tmp);
    cb.halt();
    return cb.finish();
}

Program
buildCrafty00(const WorkloadParams &wp)
{
    // Bitboard move generation flavor: 64-bit logicals, shifts, and the
    // count instructions (CTPOP/CTLZ/CTTZ), mostly register-resident.
    constexpr unsigned boards = 256;
    const unsigned rounds = 35 * wp.scale;

    CodeBuilder cb("crafty");
    Rng rng(wp.seed ^ 0xcf);
    const Addr bpool = 0x100000;
    cb.dataWords(bpool, randomWords(rng, boards));

    const Reg base = R(1), i = R(2), b = R(3), occ = R(4);
    const Reg att = R(5), tmp = R(6), score = R(7), n = R(8);
    const Reg t2 = R(9), nb = R(10);

    cb.ldiq(base, static_cast<std::int64_t>(bpool));
    cb.ldiq(score, 0);
    cb.ldiq(occ, static_cast<std::int64_t>(0xaa55aa55aa55aa55ull));
    cb.ldiq(n, rounds);
    cb.ldiq(nb, boards);

    const Label round_loop = cb.newLabel();
    const Label board_loop = cb.newLabel();

    cb.bind(round_loop);
    cb.ldiq(i, 0);
    cb.bind(board_loop);
    cb.op3(Opcode::S8ADDQ, i, base, tmp);
    cb.load(Opcode::LDQ, b, 0, tmp);
    // Knight-ish attack spread: shifted copies OR-ed together.
    cb.opi(Opcode::SLL, b, 17, att);
    cb.opi(Opcode::SRL, b, 17, t2);
    cb.op3(Opcode::BIS, att, t2, att);
    cb.opi(Opcode::SLL, b, 15, t2);
    cb.op3(Opcode::BIS, att, t2, att);
    cb.opi(Opcode::SRL, b, 15, t2);
    cb.op3(Opcode::BIS, att, t2, att);
    cb.op3(Opcode::AND, att, occ, att);
    // Move-list generation writes the attack set out.
    cb.ldiq(t2, 0x118000);
    cb.op3(Opcode::S8ADDQ, i, t2, t2);
    cb.store(Opcode::STQ, att, 0, t2);
    // Score: popcount of attacks, leading/trailing structure.
    cb.op1(Opcode::CTPOP, att, t2);
    cb.op3(Opcode::ADDQ, score, t2, score);
    cb.op1(Opcode::CTLZ, att, t2);
    cb.op3(Opcode::SUBQ, score, t2, score);
    cb.op1(Opcode::CTTZ, b, t2);
    cb.op3(Opcode::ADDQ, score, t2, score);
    cb.opi(Opcode::ADDQ, i, 1, i);
    cb.op3(Opcode::CMPLT, i, nb, tmp);
    cb.branch(Opcode::BNE, tmp, board_loop);
    // Rotate the occupancy once per round so rounds differ (kept out of
    // the inner loop: boards within a round stay independent).
    cb.opi(Opcode::SLL, occ, 1, tmp);
    cb.opi(Opcode::SRL, occ, 63, occ);
    cb.op3(Opcode::BIS, occ, tmp, occ);
    cb.opi(Opcode::SUBQ, n, 1, n);
    cb.branch(Opcode::BNE, n, round_loop);
    cb.store(Opcode::STQ, score, -8, base);
    cb.halt();
    return cb.finish();
}

Program
buildParser00(const WorkloadParams &wp)
{
    // Dictionary lookups: hash a token, walk the bucket's linked list
    // comparing keys (chase + compare + branch).
    constexpr unsigned buckets = 1024;
    constexpr unsigned entries = 4096;
    const unsigned lookups = 5500 * wp.scale;

    CodeBuilder cb("parser");
    Rng rng(wp.seed ^ 0xa3);
    const Addr table = 0x100000;      // bucket heads
    const Addr pool = 0x200000;       // entries: [next, key]
    std::vector<Word> heads(buckets, 0);
    std::vector<Word> epool(entries * 2, 0);
    for (unsigned e = 0; e < entries; ++e) {
        const Word key = rng.next() & 0xfffff;
        const unsigned b = key & (buckets - 1);
        epool[e * 2] = heads[b];
        epool[e * 2 + 1] = key;
        heads[b] = pool + e * 16;
    }
    cb.dataWords(table, heads);
    cb.dataWords(pool, epool);
    buildRandomStream(cb, rng, 0xa00000, lookups + 8);

    const Reg tbase = R(1), rngr = R(2), key = R(3), node = R(4);
    const Reg nkey = R(5), tmp = R(6), hits = R(7), n = R(8);
    const Reg bmask = R(9), kmask = R(10);

    cb.ldiq(tbase, static_cast<std::int64_t>(table));
    cb.ldiq(rngr, static_cast<std::int64_t>(0xa00000)); // input cursor
    cb.ldiq(hits, 0);
    cb.ldiq(n, lookups);
    cb.ldiq(bmask, buckets - 1);
    cb.ldiq(kmask, 0xfffff);

    const Label lookup = cb.newLabel();
    const Label chase = cb.newLabel();
    const Label found = cb.newLabel();
    const Label next = cb.newLabel();

    const Reg hotmask = R(11);
    cb.ldiq(hotmask, 0xff); // common-word working set (fits the L1)
    cb.bind(lookup);
    emitStreamNext(cb, rngr, tmp); // next token from the input
    cb.op3(Opcode::AND, tmp, kmask, key);
    // Dictionaries see mostly common words: 3 of 4 lookups draw from a
    // small hot key range.
    cb.opi(Opcode::SRL, tmp, 27, tmp);
    cb.opi(Opcode::AND, tmp, 3, tmp);
    cb.op3(Opcode::AND, key, hotmask, nkey);
    cb.op3(Opcode::CMOVNE, tmp, nkey, key);
    cb.op3(Opcode::AND, key, bmask, tmp);
    cb.op3(Opcode::S8ADDQ, tmp, tbase, tmp);
    cb.load(Opcode::LDQ, node, 0, tmp);
    cb.bind(chase);
    cb.branch(Opcode::BEQ, node, next);
    cb.load(Opcode::LDQ, nkey, 8, node);
    cb.op3(Opcode::CMPEQ, nkey, key, tmp);
    cb.branch(Opcode::BNE, tmp, found);
    cb.load(Opcode::LDQ, node, 0, node);
    cb.br(chase);
    cb.bind(found);
    cb.opi(Opcode::ADDQ, hits, 1, hits);
    cb.bind(next);
    cb.opi(Opcode::SUBQ, n, 1, n);
    cb.branch(Opcode::BNE, n, lookup);
    cb.store(Opcode::STQ, hits, -8, tbase);
    cb.halt();
    return cb.finish();
}

Program
buildEon00(const WorkloadParams &wp)
{
    // Ray-marching flavor: regular interpolation loops using the FP
    // subset (8-cycle ADDT/MULT) mixed with integer bookkeeping.
    constexpr unsigned raysPerPass = 256;
    const unsigned passes = 42 * wp.scale;

    CodeBuilder cb("eon");
    Rng rng(wp.seed ^ 0xe0);
    const Addr scene = 0x100000;
    cb.dataWords(scene, randomWords(rng, raysPerPass * 2, 0xffff));

    const Reg base = R(1), ray = R(2), addr = R(3), px = R(4);
    const Reg dx = R(5), acc = R(6), tmp = R(7), n = R(8), nr = R(9);
    const Reg t = R(10);

    cb.ldiq(base, static_cast<std::int64_t>(scene));
    cb.ldiq(acc, 0);
    cb.ldiq(n, passes);
    cb.ldiq(nr, raysPerPass);

    const Label pass_loop = cb.newLabel();
    const Label ray_loop = cb.newLabel();

    cb.bind(pass_loop);
    cb.ldiq(ray, 0);
    cb.bind(ray_loop);
    cb.opi(Opcode::SLL, ray, 4, addr);
    cb.op3(Opcode::ADDQ, addr, base, addr);
    cb.load(Opcode::LDQ, px, 0, addr);
    cb.load(Opcode::LDQ, dx, 8, addr);
    // March "fp" steps: the multiplies depend only on the loaded
    // direction, so independent rays overlap their 8-cycle units.
    cb.op3(Opcode::MULT, dx, dx, t);
    cb.opi(Opcode::SRL, t, 16, t);
    cb.op3(Opcode::ADDT, px, t, px);
    cb.op3(Opcode::ADDT, px, dx, px);
    cb.opi(Opcode::SRL, t, 8, t);
    cb.op3(Opcode::ADDQ, acc, t, acc);
    cb.store(Opcode::STQ, px, 0, addr);
    cb.opi(Opcode::ADDQ, ray, 1, ray);
    cb.op3(Opcode::CMPLT, ray, nr, tmp);
    cb.branch(Opcode::BNE, tmp, ray_loop);
    cb.opi(Opcode::SUBQ, n, 1, n);
    cb.branch(Opcode::BNE, n, pass_loop);
    cb.store(Opcode::STQ, acc, -8, base);
    cb.halt();
    return cb.finish();
}

Program
buildPerlbmk00(const WorkloadParams &wp)
{
    // Hashing plus a character-class jump table: the regex-engine flavor
    // of perlbmk (indirect dispatch on data).
    constexpr unsigned streamWords = 1024;
    const unsigned rounds = 4 * wp.scale;

    CodeBuilder cb("perlbmk");
    Rng rng(wp.seed ^ 0x9b);
    const Addr stream = 0x100000;
    const Addr table = 0x180000;
    // Text-like class distribution: most characters are "word" class, so
    // the regex engine's dispatch jump repeats (BTB-predictable runs).
    std::vector<Word> stream_words(streamWords);
    for (Word &w : stream_words) {
        w = rng.next();
        if (rng.chance(7, 10))
            w &= ~Word{3}; // low byte class 0
    }
    cb.dataWords(stream, stream_words);

    const Reg sbase = R(1), tbl = R(2), wi = R(3), word = R(4);
    const Reg cls = R(5), h = R(6), tmp = R(7), haddr = R(8);
    const Reg counts = R(9), round = R(10), wlimit = R(11), ch = R(12);

    cb.ldiq(sbase, static_cast<std::int64_t>(stream));
    cb.ldiq(tbl, static_cast<std::int64_t>(table));
    cb.ldiq(counts, 0);
    cb.ldiq(round, rounds);
    cb.ldiq(wlimit, streamWords);

    const Label round_loop = cb.newLabel();
    const Label word_loop = cb.newLabel();
    const Label after = cb.newLabel();
    std::array<Label, 4> cases{};
    for (auto &c : cases)
        c = cb.newLabel();

    cb.bind(round_loop);
    cb.ldiq(wi, 0);
    cb.ldiq(h, 5381);

    cb.bind(word_loop);
    cb.op3(Opcode::S8ADDQ, wi, sbase, tmp);
    cb.load(Opcode::LDQ, word, 0, tmp);
    for (unsigned k = 0; k < 4; ++k) {
        cb.opi(Opcode::EXTBL, word, static_cast<std::uint8_t>(k * 2), ch);
        cb.opi(Opcode::SLL, h, 5, tmp);
        cb.op3(Opcode::ADDQ, tmp, h, h);
        cb.op3(Opcode::ADDQ, h, ch, h);
    }
    // Dispatch on the character's class bits through a jump table.
    cb.opi(Opcode::AND, ch, 3, cls);
    cb.op3(Opcode::S8ADDQ, cls, tbl, haddr);
    cb.load(Opcode::LDQ, haddr, 0, haddr);
    cb.jmp(R(25), haddr);

    cb.bind(cases[0]);
    cb.opi(Opcode::ADDQ, counts, 1, counts);
    cb.br(after);
    cb.bind(cases[1]);
    cb.op3(Opcode::XOR, counts, h, counts);
    cb.br(after);
    cb.bind(cases[2]);
    cb.opi(Opcode::S4ADDQ, counts, 1, counts);
    cb.br(after);
    cb.bind(cases[3]);
    cb.opi(Opcode::SRL, counts, 1, counts);
    cb.br(after);

    cb.bind(after);
    cb.opi(Opcode::ADDQ, wi, 1, wi);
    cb.op3(Opcode::CMPLT, wi, wlimit, tmp);
    cb.branch(Opcode::BNE, tmp, word_loop);
    cb.opi(Opcode::SUBQ, round, 1, round);
    cb.branch(Opcode::BNE, round, round_loop);
    cb.store(Opcode::STQ, counts, -8, sbase);
    cb.halt();

    std::vector<Word> caddrs;
    for (const Label &cl : cases)
        caddrs.push_back(cb.labelByteAddr(cl));
    cb.dataWords(table, caddrs);
    return cb.finish();
}

Program
buildGap00(const WorkloadParams &wp)
{
    // Multiword bignum arithmetic: 4-word adds with carry chains built
    // from ADDQ + CMPULT — exactly the serial add-latency-bound pattern
    // where redundant binary adders shine.
    constexpr unsigned numbers = 512; // 4-word bignums
    const unsigned ops = 4200 * wp.scale;

    CodeBuilder cb("gap");
    Rng rng(wp.seed ^ 0x6a);
    const Addr pool = 0x100000;
    const Addr ops_in = 0xa00000;
    cb.dataWords(pool, randomWords(rng, numbers * 4));
    buildRandomStream(cb, rng, ops_in, ops + 8);

    const Reg base = R(1), rngr = R(2), an = R(3), bn = R(4);
    const Reg aaddr = R(5), baddr = R(6), n = R(7), mask = R(8);
    const Reg aw = R(9), bw = R(10), sum = R(11), carry = R(12);
    const Reg tmp = R(13), t2 = R(14);

    cb.ldiq(base, static_cast<std::int64_t>(pool));
    cb.ldiq(rngr, static_cast<std::int64_t>(ops_in)); // input cursor
    cb.ldiq(mask, numbers - 1);
    cb.ldiq(n, ops);

    const Label op_loop = cb.newLabel();

    cb.bind(op_loop);
    emitStreamNext(cb, rngr, tmp); // next operand pair from the input
    cb.op3(Opcode::AND, tmp, mask, an);
    cb.opi(Opcode::SRL, tmp, 23, bn);
    cb.op3(Opcode::AND, bn, mask, bn);
    cb.opi(Opcode::SLL, an, 5, aaddr);
    cb.op3(Opcode::ADDQ, aaddr, base, aaddr);
    cb.opi(Opcode::SLL, bn, 5, baddr);
    cb.op3(Opcode::ADDQ, baddr, base, baddr);
    // a += b over 4 words with carry propagation (serial chain).
    cb.ldiq(carry, 0);
    for (int w = 0; w < 4; ++w) {
        cb.load(Opcode::LDQ, aw, w * 8, aaddr);
        cb.load(Opcode::LDQ, bw, w * 8, baddr);
        cb.op3(Opcode::ADDQ, aw, bw, sum);
        cb.op3(Opcode::CMPULT, sum, aw, t2);   // carry out of the add
        cb.op3(Opcode::ADDQ, sum, carry, sum);
        cb.op3(Opcode::CMPULT, sum, carry, tmp); // carry from carry-in
        cb.op3(Opcode::BIS, t2, tmp, carry);
        cb.store(Opcode::STQ, sum, w * 8, aaddr);
    }
    cb.opi(Opcode::SUBQ, n, 1, n);
    cb.branch(Opcode::BNE, n, op_loop);
    cb.halt();
    return cb.finish();
}

Program
buildVortex00(const WorkloadParams &wp)
{
    // Scaled-up vortex95: larger database and a two-level index.
    constexpr unsigned records = 8192;
    const unsigned txns = 6200 * wp.scale;

    CodeBuilder cb("vortex00");
    Rng rng(wp.seed ^ 0x4000);
    const Addr db = 0x400000;
    const Addr index = 0x800000;
    const Addr txn_in = 0xa00000;
    cb.dataWords(db, randomWords(rng, records * 8, 0xffffff));
    buildRandomStream(cb, rng, txn_in, txns + 8);

    const Reg dbase = R(1), ibase = R(2), rec = R(3), raddr = R(4);
    const Reg f0 = R(5), f1 = R(6), f2 = R(7), tmp = R(8);
    const Reg rngr = R(9), n = R(10), mask = R(11), iaddr = R(12);

    const Label update = cb.newLabel();
    const Label txn_loop = cb.newLabel();
    const Label start = cb.newLabel();

    cb.br(start);

    cb.bind(update);
    cb.load(Opcode::LDQ, f0, 0, raddr);
    cb.load(Opcode::LDQ, f1, 8, raddr);
    cb.load(Opcode::LDQ, f2, 24, raddr);
    cb.op3(Opcode::S4ADDQ, f1, f0, f0);
    cb.opi(Opcode::EXTWL, f2, 2, tmp);
    cb.op3(Opcode::XOR, f0, tmp, f2);
    cb.store(Opcode::STQ, f0, 0, raddr);
    cb.store(Opcode::STQ, f2, 24, raddr);
    cb.ret(R(26));

    cb.bind(start);
    cb.ldiq(dbase, static_cast<std::int64_t>(db));
    cb.ldiq(ibase, static_cast<std::int64_t>(index));
    cb.ldiq(rngr, static_cast<std::int64_t>(txn_in)); // input cursor
    cb.ldiq(n, txns);
    cb.ldiq(mask, records - 1);

    const Reg hotmask = R(13), rnd = R(14);
    cb.ldiq(hotmask, 127); // hot page set
    cb.bind(txn_loop);
    emitStreamNext(cb, rngr, rnd); // next transaction id from the input
    cb.op3(Opcode::AND, rnd, mask, rec);
    cb.opi(Opcode::SRL, rnd, 29, tmp);
    cb.opi(Opcode::AND, tmp, 7, tmp);
    cb.op3(Opcode::AND, rnd, hotmask, raddr);
    cb.op3(Opcode::CMOVNE, tmp, raddr, rec);
    cb.opi(Opcode::SLL, rec, 6, raddr);
    cb.op3(Opcode::ADDQ, raddr, dbase, raddr);
    cb.bsr(R(26), update);
    // Two-level index touch.
    cb.ldiq(tmp, 2047);
    cb.op3(Opcode::AND, rec, tmp, iaddr);
    cb.op3(Opcode::S8ADDQ, iaddr, ibase, iaddr);
    cb.load(Opcode::LDQ, tmp, 0, iaddr);
    cb.op3(Opcode::ADDQ, tmp, f0, tmp);
    cb.store(Opcode::STQ, tmp, 0, iaddr);
    cb.opi(Opcode::SUBQ, n, 1, n);
    cb.branch(Opcode::BNE, n, txn_loop);
    cb.halt();
    return cb.finish();
}

Program
buildBzip200(const WorkloadParams &wp)
{
    // Block-sort flavor: repeated partition passes over a buffer
    // (data-dependent compare/swap branches) plus byte-frequency
    // counting with EXTBL.
    constexpr unsigned bufLen = 2048;
    const unsigned passes = 8 * wp.scale;

    CodeBuilder cb("bzip2");
    Rng rng(wp.seed ^ 0xb2);
    const Addr buf = 0x100000;
    const Addr freq = 0x180000;
    cb.dataWords(buf, randomWords(rng, bufLen, 0xffffffff));

    const Reg base = R(1), fbase = R(2), lo = R(3), hi = R(4);
    const Reg pivot = R(5), lv = R(6), hv = R(7), tmp = R(8);
    const Reg laddr = R(9), haddr = R(10), n = R(11), byte = R(12);
    const Reg t2 = R(13);

    cb.ldiq(base, static_cast<std::int64_t>(buf));
    cb.ldiq(fbase, static_cast<std::int64_t>(freq));
    cb.ldiq(n, passes);

    const Label pass_loop = cb.newLabel();
    const Label part_loop = cb.newLabel();
    const Label no_swap = cb.newLabel();
    const Label part_done = cb.newLabel();

    cb.bind(pass_loop);
    cb.ldiq(lo, 0);
    cb.ldiq(hi, bufLen - 1);
    // pivot = buf[mid]
    cb.ldiq(tmp, bufLen / 2);
    cb.op3(Opcode::S8ADDQ, tmp, base, tmp);
    cb.load(Opcode::LDQ, pivot, 0, tmp);

    cb.bind(part_loop);
    cb.op3(Opcode::CMPLT, lo, hi, tmp);
    cb.branch(Opcode::BEQ, tmp, part_done);
    cb.op3(Opcode::S8ADDQ, lo, base, laddr);
    cb.op3(Opcode::S8ADDQ, hi, base, haddr);
    cb.load(Opcode::LDQ, lv, 0, laddr);
    cb.load(Opcode::LDQ, hv, 0, haddr);
    // Frequency count of one byte of lv while it is in hand.
    cb.opi(Opcode::EXTBL, lv, 1, byte);
    cb.op3(Opcode::S8ADDQ, byte, fbase, t2);
    cb.load(Opcode::LDQ, tmp, 0, t2);
    cb.opi(Opcode::ADDQ, tmp, 1, tmp);
    cb.store(Opcode::STQ, tmp, 0, t2);
    // Partition step: swap when out of order wrt the pivot.
    cb.op3(Opcode::CMPULT, lv, pivot, tmp);
    cb.branch(Opcode::BNE, tmp, no_swap);
    cb.op3(Opcode::CMPULT, pivot, hv, tmp);
    cb.branch(Opcode::BNE, tmp, no_swap);
    cb.store(Opcode::STQ, hv, 0, laddr);
    cb.store(Opcode::STQ, lv, 0, haddr);
    cb.bind(no_swap);
    cb.opi(Opcode::ADDQ, lo, 1, lo);
    cb.opi(Opcode::SUBQ, hi, 1, hi);
    cb.br(part_loop);

    cb.bind(part_done);
    cb.opi(Opcode::SUBQ, n, 1, n);
    cb.branch(Opcode::BNE, n, pass_loop);
    cb.halt();
    return cb.finish();
}

Program
buildTwolf00(const WorkloadParams &wp)
{
    // Standard-cell annealing: propose a random displacement, evaluate a
    // table-driven cost, accept/reject on a data-dependent threshold.
    constexpr unsigned cells = 2048;
    const unsigned moves = 6800 * wp.scale;

    CodeBuilder cb("twolf");
    Rng rng(wp.seed ^ 0x2f);
    const Addr place = 0x100000;
    const Addr costs = 0x140000;
    const Addr moves_in = 0xa00000;
    cb.dataWords(place, randomWords(rng, cells, 0x3fff));
    cb.dataWords(costs, randomWords(rng, 256, 0xff));
    buildRandomStream(cb, rng, moves_in, moves + 8);

    const Reg pbase = R(1), cbase = R(2), rngr = R(3), ci = R(4);
    const Reg old_pos = R(5), new_pos = R(6), oc = R(7), nc = R(8);
    const Reg tmp = R(9), n = R(10), mask = R(11), acc = R(12);
    const Reg addr = R(13), t2 = R(14), rnd = R(15);

    cb.ldiq(pbase, static_cast<std::int64_t>(place));
    cb.ldiq(cbase, static_cast<std::int64_t>(costs));
    cb.ldiq(rngr, static_cast<std::int64_t>(moves_in)); // input cursor
    cb.ldiq(mask, cells - 1);
    cb.ldiq(acc, 0);
    cb.ldiq(n, moves);

    const Label move_loop = cb.newLabel();
    const Label rejectm = cb.newLabel();

    cb.bind(move_loop);
    emitStreamNext(cb, rngr, rnd); // next proposed move from the input
    cb.op3(Opcode::AND, rnd, mask, ci);
    cb.op3(Opcode::S8ADDQ, ci, pbase, addr);
    cb.load(Opcode::LDQ, old_pos, 0, addr);
    // Propose: new = old ^ (random & 0x3ff).
    cb.opi(Opcode::SRL, rnd, 31, t2);
    cb.ldiq(tmp, 0x3ff);
    cb.op3(Opcode::AND, t2, tmp, t2);
    cb.op3(Opcode::XOR, old_pos, t2, new_pos);
    // Table-driven costs of old and new low bytes.
    cb.opi(Opcode::EXTBL, old_pos, 0, tmp);
    cb.op3(Opcode::S8ADDQ, tmp, cbase, tmp);
    cb.load(Opcode::LDQ, oc, 0, tmp);
    cb.opi(Opcode::EXTBL, new_pos, 0, tmp);
    cb.op3(Opcode::S8ADDQ, tmp, cbase, tmp);
    cb.load(Opcode::LDQ, nc, 0, tmp);
    // Accept when cheaper, or occasionally uphill (random bit).
    cb.op3(Opcode::CMPLT, nc, oc, tmp);
    cb.opi(Opcode::SRL, rnd, 11, t2);
    cb.opi(Opcode::AND, t2, 15, t2);
    cb.opi(Opcode::CMPEQ, t2, 0, t2);
    cb.op3(Opcode::BIS, tmp, t2, tmp);
    cb.branch(Opcode::BEQ, tmp, rejectm);
    cb.store(Opcode::STQ, new_pos, 0, addr);
    cb.op3(Opcode::SUBQ, oc, nc, tmp);
    cb.op3(Opcode::ADDQ, acc, tmp, acc);
    cb.bind(rejectm);
    cb.opi(Opcode::SUBQ, n, 1, n);
    cb.branch(Opcode::BNE, n, move_loop);
    cb.store(Opcode::STQ, acc, -8, pbase);
    cb.halt();
    return cb.finish();
}

} // namespace rbsim
