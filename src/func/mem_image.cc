#include "func/mem_image.hh"

namespace rbsim
{

std::uint64_t
MemImage::read(Addr addr, unsigned size) const
{
    assert(size == 1 || size == 2 || size == 4 || size == 8);
    assert((addr & (size - 1)) == 0 && "unaligned access");
    std::uint64_t value = 0;
    // A naturally-aligned access never crosses a page boundary.
    const std::uint8_t *page = lookupRead(pageOf(addr));
    if (!page)
        return 0;
    const std::size_t off = offsetOf(addr);
    for (unsigned i = 0; i < size; ++i)
        value |= static_cast<std::uint64_t>(page[off + i]) << (8 * i);
    return value;
}

void
MemImage::write(Addr addr, std::uint64_t value, unsigned size)
{
    assert(size == 1 || size == 2 || size == 4 || size == 8);
    assert((addr & (size - 1)) == 0 && "unaligned access");
    std::uint8_t *page = lookupWrite(pageOf(addr));
    const std::size_t off = offsetOf(addr);
    for (unsigned i = 0; i < size; ++i)
        page[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
}

void
MemImage::loadProgram(const Program &prog)
{
    for (const DataSegment &seg : prog.data) {
        for (std::size_t i = 0; i < seg.bytes.size(); ++i)
            write8(seg.base + i, seg.bytes[i]);
    }
}

} // namespace rbsim
