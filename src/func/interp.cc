#include "func/interp.hh"

#include "common/bitutil.hh"
#include "isa/opclass.hh"

namespace rbsim
{

Interp::Interp(const Program &prog)
    : program(&prog), pcIndex(prog.entry)
{
    memory.loadProgram(prog);
}

StepRecord
Interp::step()
{
    assert(!isHalted);
    assert(pcIndex < program->code.size() && "PC ran off the code image");

    const Inst &inst = program->code[pcIndex];
    StepRecord rec;
    rec.pcIndex = pcIndex;
    rec.inst = inst;
    rec.nextPc = pcIndex + 1;

    Operands ops;
    ops.a = reg(inst.ra);
    ops.b = inst.useLit ? inst.lit : reg(inst.rb);
    ops.c = reg(inst.rc);

    const Addr return_addr = program->byteAddrOf(pcIndex + 1);
    const EvalResult ev = evalOp(inst, ops, return_addr);

    auto writeReg = [&](unsigned r, Word v) {
        if (r == zeroReg)
            return;
        regs[r] = v;
        rec.wroteReg = true;
        rec.archReg = r;
        rec.regValue = v;
    };

    if (isLoad(inst.op)) {
        const unsigned size = memAccessSize(inst.op);
        const Addr ea = ev.value & ~Addr{size - 1};
        Word v = memory.read(ea, size);
        if (inst.op == Opcode::LDL)
            v = static_cast<Word>(sext(v, 32));
        writeReg(inst.ra, v);
        rec.readMem = true;
        rec.memAddr = ea;
    } else if (isStore(inst.op)) {
        const unsigned size = memAccessSize(inst.op);
        const Addr ea = ev.value & ~Addr{size - 1};
        const Word v = size == 8 ? ops.a : (ops.a & 0xffffffffull);
        // ops.a is the store data: srcRegs order is [data, base] but the
        // data always comes from ra directly.
        memory.write(ea, v, size);
        rec.wroteMem = true;
        rec.memAddr = ea;
        rec.memValue = v;
    } else if (isControl(inst.op)) {
        rec.taken = ev.taken;
        if (inst.op == Opcode::JMP) {
            writeReg(inst.ra, ev.value);
            const Word target = ops.b;
            assert(program->isCodeAddr(target) &&
                   "JMP to a non-code address");
            rec.nextPc = program->indexOf(target);
        } else if (inst.op == Opcode::BR || inst.op == Opcode::BSR) {
            writeReg(inst.ra, ev.value);
            rec.nextPc = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(pcIndex) + 1 + inst.disp);
        } else if (ev.taken) {
            rec.nextPc = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(pcIndex) + 1 + inst.disp);
        }
    } else if (inst.op == Opcode::HALT) {
        isHalted = true;
        rec.halted = true;
        rec.nextPc = pcIndex;
    } else if (inst.op != Opcode::NOP) {
        writeReg(destReg(inst), ev.value);
    }

    pcIndex = rec.nextPc;
    ++steps;
    if (!isHalted && pcIndex >= program->code.size())
        isHalted = true;
    return rec;
}

std::uint64_t
Interp::run(std::uint64_t max_steps)
{
    std::uint64_t n = 0;
    while (!isHalted && n < max_steps) {
        step();
        ++n;
    }
    return n;
}

} // namespace rbsim
