#include "func/interp.hh"

#include "common/bitutil.hh"
#include "isa/opclass.hh"

namespace rbsim
{

namespace
{

/**
 * Event sink that reconstructs the co-simulation StepRecord from the
 * predecoded loop's hooks — bit-identical to what stepReference()
 * materializes (tests/test_predecode.cc proves it over the corpus).
 * Writes to the scratch slot are architectural writes to r31, which the
 * reference never records.
 */
struct RecordSink
{
    StepRecord &rec;
    std::uint16_t scratch;

    void preStep(std::uint64_t) {}

    void
    regWrite(std::uint16_t slot, Word v)
    {
        if (slot == scratch)
            return;
        rec.wroteReg = true;
        rec.archReg = slot;
        rec.regValue = v;
    }

    void
    load(Addr ea, Word)
    {
        rec.readMem = true;
        rec.memAddr = ea;
    }

    void
    store(Addr ea, Word v)
    {
        rec.wroteMem = true;
        rec.memAddr = ea;
        rec.memValue = v;
    }

    void condBranch(std::uint64_t, bool t) { rec.taken = t; }
    void br() { rec.taken = true; }
    void bsr(Addr) { rec.taken = true; }
    void jmpRet() { rec.taken = true; }
    void jmpCall(std::uint64_t, std::uint64_t, Addr) { rec.taken = true; }
    void halt() { rec.halted = true; }
};

} // namespace

Interp::Interp(const Program &prog)
{
    bindProgram(prog);
    memory.loadProgram(prog);
    pcIndex = prog.entry;
}

StepRecord
Interp::step()
{
    assert(!isHalted);
    assert(pcIndex < program->code.size() && "PC ran off the code image");

    StepRecord rec;
    rec.pcIndex = pcIndex;
    rec.inst = program->code[pcIndex];
    RecordSink sink{rec, dec->scratch};
    runSink(1, sink);
    // Every handler leaves the post-step pc exactly where the reference
    // puts rec.nextPc (HALT leaves it on itself; a taken branch leaves
    // the raw, possibly off-image target).
    rec.nextPc = pcIndex;
    return rec;
}

StepRecord
Interp::stepReference()
{
    assert(!isHalted);
    assert(pcIndex < program->code.size() && "PC ran off the code image");

    const Inst &inst = program->code[pcIndex];
    StepRecord rec;
    rec.pcIndex = pcIndex;
    rec.inst = inst;
    rec.nextPc = pcIndex + 1;

    Operands ops;
    ops.a = reg(inst.ra);
    ops.b = inst.useLit ? inst.lit : reg(inst.rb);
    ops.c = reg(inst.rc);

    const Addr return_addr = program->byteAddrOf(pcIndex + 1);
    const EvalResult ev = evalOp(inst, ops, return_addr);

    auto writeReg = [&](unsigned r, Word v) {
        if (r == zeroReg)
            return;
        xregs[r] = v;
        rec.wroteReg = true;
        rec.archReg = r;
        rec.regValue = v;
    };

    if (isLoad(inst.op)) {
        const unsigned size = memAccessSize(inst.op);
        const Addr ea = ev.value & ~Addr{size - 1};
        Word v = memory.read(ea, size);
        if (inst.op == Opcode::LDL)
            v = static_cast<Word>(sext(v, 32));
        writeReg(inst.ra, v);
        rec.readMem = true;
        rec.memAddr = ea;
    } else if (isStore(inst.op)) {
        const unsigned size = memAccessSize(inst.op);
        const Addr ea = ev.value & ~Addr{size - 1};
        const Word v = size == 8 ? ops.a : (ops.a & 0xffffffffull);
        // ops.a is the store data: srcRegs order is [data, base] but the
        // data always comes from ra directly.
        memory.write(ea, v, size);
        rec.wroteMem = true;
        rec.memAddr = ea;
        rec.memValue = v;
    } else if (isControl(inst.op)) {
        rec.taken = ev.taken;
        if (inst.op == Opcode::JMP) {
            // The return-address write lands before target validation —
            // same defined state as the predecoded handlers.
            writeReg(inst.ra, ev.value);
            const Word target = ops.b;
            if (!program->isCodeAddr(target))
                throwBadJmp(*dec, pcIndex, target);
            rec.nextPc = program->indexOf(target);
        } else if (inst.op == Opcode::BR || inst.op == Opcode::BSR) {
            writeReg(inst.ra, ev.value);
            rec.nextPc = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(pcIndex) + 1 + inst.disp);
        } else if (ev.taken) {
            rec.nextPc = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(pcIndex) + 1 + inst.disp);
        }
    } else if (inst.op == Opcode::HALT) {
        isHalted = true;
        rec.halted = true;
        rec.nextPc = pcIndex;
    } else if (inst.op != Opcode::NOP) {
        writeReg(destReg(inst), ev.value);
    }

    pcIndex = rec.nextPc;
    ++steps;
    if (!isHalted && pcIndex >= program->code.size())
        isHalted = true;
    return rec;
}

} // namespace rbsim
