/**
 * @file
 * Sparse 64-bit byte-addressable memory image.
 *
 * Backed by 4 KiB pages allocated on first touch. Reads of untouched
 * memory return zero, which also makes wrong-path loads after a branch
 * misprediction safe.
 *
 * Pages are shared_ptr-held so an architectural checkpoint can snapshot
 * the whole image by sharing the page map (copy-on-write): the first
 * write to a page shared with a live snapshot clones it. Images with no
 * outstanding snapshots behave exactly as before, including the
 * zero-allocation reset-in-place serving path.
 */

#ifndef RBSIM_FUNC_MEM_IMAGE_HH
#define RBSIM_FUNC_MEM_IMAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hh"
#include "isa/program.hh"

namespace rbsim
{

/** Sparse memory. */
class MemImage
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr Addr pageSize = Addr{1} << pageShift;
    using Page = std::array<std::uint8_t, pageSize>;
    //! Page number -> page. Checkpoints hold one of these with the
    //! shared_ptrs aliasing the image's pages (copy-on-write).
    using PageMap = std::unordered_map<Addr, std::shared_ptr<Page>>;

    /** Read one byte. */
    std::uint8_t
    read8(Addr addr) const
    {
        const Page *page = findPage(addr);
        return page ? (*page)[offsetOf(addr)] : 0;
    }

    /** Write one byte. */
    void
    write8(Addr addr, std::uint8_t value)
    {
        touchPage(addr)[offsetOf(addr)] = value;
    }

    /** Read a naturally-aligned little-endian value of `size` bytes. */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write a naturally-aligned little-endian value of `size` bytes. */
    void write(Addr addr, std::uint64_t value, unsigned size);

    /** 64-bit convenience accessors (addresses are aligned down). */
    Word read64(Addr addr) const { return read(addr & ~Addr{7}, 8); }
    void write64(Addr addr, Word v) { write(addr & ~Addr{7}, v, 8); }

    /** 32-bit convenience accessors. */
    std::uint32_t
    read32(Addr addr) const
    {
        return static_cast<std::uint32_t>(read(addr & ~Addr{3}, 4));
    }
    void
    write32(Addr addr, std::uint32_t v)
    {
        write(addr & ~Addr{3}, v, 4);
    }

    /** Load a program's data segments. */
    void loadProgram(const Program &prog);

    /**
     * Zero the image in place: every resident page is cleared but kept
     * allocated, so a reset-reused simulator re-running a program with
     * the same footprint touches no new pages (the zero-allocation
     * serving steady state). Reads behave exactly as on a fresh image.
     */
    void
    reset()
    {
        for (auto &[addr, page] : pages) {
            // A page shared with a live checkpoint must not be zeroed
            // through; replace it instead (the snapshot keeps the old
            // bytes). With no snapshots alive this never triggers, so
            // the warm path stays allocation-free.
            if (page.use_count() > 1)
                page = std::make_shared<Page>();
            else
                page->fill(0);
        }
    }

    /**
     * Share every resident page with the caller (a checkpoint). O(pages)
     * in map size, O(0) in bytes: later writes on either side clone the
     * affected page first (see touchPage).
     */
    PageMap snapshotPages() const { return pages; }

    /**
     * Replace the whole image with a snapshot's pages, re-sharing them
     * (the inverse of snapshotPages). The first write per page after a
     * restore clones it, leaving the checkpoint intact for the next
     * restore.
     */
    void restorePages(const PageMap &snapshot) { pages = snapshot; }

    /** Number of resident pages (for tests). */
    std::size_t residentPages() const { return pages.size(); }

  private:
    static Addr pageOf(Addr addr) { return addr >> pageShift; }
    static std::size_t
    offsetOf(Addr addr)
    {
        return static_cast<std::size_t>(addr & (pageSize - 1));
    }

    const Page *
    findPage(Addr addr) const
    {
        const auto it = pages.find(pageOf(addr));
        return it == pages.end() ? nullptr : it->second.get();
    }

    Page &
    touchPage(Addr addr)
    {
        auto &slot = pages[pageOf(addr)];
        if (!slot)
            slot = std::make_shared<Page>();
        else if (slot.use_count() > 1)
            slot = std::make_shared<Page>(*slot); // break CoW sharing
        return *slot;
    }

    PageMap pages;
};

} // namespace rbsim

#endif // RBSIM_FUNC_MEM_IMAGE_HH
