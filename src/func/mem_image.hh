/**
 * @file
 * Sparse 64-bit byte-addressable memory image.
 *
 * Backed by 4 KiB pages allocated on first touch. Reads of untouched
 * memory return zero, which also makes wrong-path loads after a branch
 * misprediction safe.
 *
 * Pages are shared_ptr-held so an architectural checkpoint can snapshot
 * the whole image by sharing the page map (copy-on-write): the first
 * write to a page shared with a live snapshot clones it. Images with no
 * outstanding snapshots behave exactly as before, including the
 * zero-allocation reset-in-place serving path.
 *
 * A small direct-mapped translation cache (the "xlat" array) sits in
 * front of the page map so the interpreter's hot loads/stores are one
 * compare plus a raw-pointer deref instead of an unordered_map lookup
 * and a shared_ptr chase. Each entry caches the page's *data pointer*
 * directly, plus a `writable` bit recording that the page was
 * exclusively owned when the entry was filled — so a store hit touches
 * neither the map nor the control block. Correctness rests on
 * invalidating the cache at every operation that can replace a page's
 * storage or raise its use_count behind the cache's back: reset()
 * (shared pages are replaced in place), restorePages, snapshotPages
 * (sharing stales `writable`), and copy/move construction/assignment
 * (both sides). A same-image CoW clone refreshes its own entry in
 * lookupWrite, and a *peer* image cloning its copy never moves this
 * image's page, so cached read pointers stay valid across peer writes.
 */

#ifndef RBSIM_FUNC_MEM_IMAGE_HH
#define RBSIM_FUNC_MEM_IMAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hh"
#include "isa/program.hh"

namespace rbsim
{

/** Sparse memory. */
class MemImage
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr Addr pageSize = Addr{1} << pageShift;
    using Page = std::array<std::uint8_t, pageSize>;
    //! Page number -> page. Checkpoints hold one of these with the
    //! shared_ptrs aliasing the image's pages (copy-on-write).
    using PageMap = std::unordered_map<Addr, std::shared_ptr<Page>>;

    MemImage() = default;
    //! The xlat cache points into the source's map nodes; a copy gets
    //! its own nodes, so it must start cold. The pages themselves are
    //! shared CoW-style, exactly like a snapshot — which also stales
    //! the source's cached exclusivity, so its cache drops too.
    MemImage(const MemImage &o) : pages(o.pages) { o.invalidateXlat(); }
    MemImage(MemImage &&o) noexcept : pages(std::move(o.pages))
    {
        o.invalidateXlat(); // its cache points at nodes we now own
    }
    MemImage &
    operator=(const MemImage &o)
    {
        pages = o.pages;
        invalidateXlat();
        o.invalidateXlat(); // now shares its pages with us
        return *this;
    }
    MemImage &
    operator=(MemImage &&o) noexcept
    {
        pages = std::move(o.pages);
        invalidateXlat();
        o.invalidateXlat();
        return *this;
    }

    /** Read one byte. */
    std::uint8_t
    read8(Addr addr) const
    {
        const std::uint8_t *page = lookupRead(pageOf(addr));
        return page ? page[offsetOf(addr)] : 0;
    }

    /** Write one byte. */
    void
    write8(Addr addr, std::uint8_t value)
    {
        lookupWrite(pageOf(addr))[offsetOf(addr)] = value;
    }

    /**
     * Read a naturally-aligned little-endian value, size fixed at
     * compile time — the interpreter's load fast path (the byte loop
     * folds into a single host load).
     */
    template <unsigned N>
    std::uint64_t
    loadAligned(Addr addr) const
    {
        static_assert(N == 1 || N == 2 || N == 4 || N == 8);
        assert((addr & (N - 1)) == 0 && "unaligned access");
        const std::uint8_t *page = lookupRead(pageOf(addr));
        if (!page)
            return 0;
        const std::uint8_t *b = page + offsetOf(addr);
        std::uint64_t value = 0;
        for (unsigned i = 0; i < N; ++i)
            value |= static_cast<std::uint64_t>(b[i]) << (8 * i);
        return value;
    }

    /** Compile-time-sized aligned store (the store fast path). */
    template <unsigned N>
    void
    storeAligned(Addr addr, std::uint64_t value)
    {
        static_assert(N == 1 || N == 2 || N == 4 || N == 8);
        assert((addr & (N - 1)) == 0 && "unaligned access");
        std::uint8_t *b = lookupWrite(pageOf(addr)) + offsetOf(addr);
        for (unsigned i = 0; i < N; ++i)
            b[i] = static_cast<std::uint8_t>(value >> (8 * i));
    }

    /** Read a naturally-aligned little-endian value of `size` bytes. */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write a naturally-aligned little-endian value of `size` bytes. */
    void write(Addr addr, std::uint64_t value, unsigned size);

    /** 64-bit convenience accessors (addresses are aligned down). */
    Word read64(Addr addr) const { return loadAligned<8>(addr & ~Addr{7}); }
    void write64(Addr addr, Word v) { storeAligned<8>(addr & ~Addr{7}, v); }

    /** 32-bit convenience accessors. */
    std::uint32_t
    read32(Addr addr) const
    {
        return static_cast<std::uint32_t>(loadAligned<4>(addr & ~Addr{3}));
    }
    void
    write32(Addr addr, std::uint32_t v)
    {
        storeAligned<4>(addr & ~Addr{3}, v);
    }

    /** Load a program's data segments. */
    void loadProgram(const Program &prog);

    /**
     * Zero the image in place: every resident page is cleared but kept
     * allocated, so a reset-reused simulator re-running a program with
     * the same footprint touches no new pages (the zero-allocation
     * serving steady state). Reads behave exactly as on a fresh image.
     */
    void
    reset()
    {
        for (auto &[addr, page] : pages) {
            // A page shared with a live checkpoint must not be zeroed
            // through; replace it instead (the snapshot keeps the old
            // bytes). With no snapshots alive this never triggers, so
            // the warm path stays allocation-free.
            if (page.use_count() > 1)
                page = std::make_shared<Page>();
            else
                page->fill(0);
        }
        // Replaced pages got fresh storage; cached data pointers to
        // them would be stale.
        invalidateXlat();
    }

    /**
     * Share every resident page with the caller (a checkpoint). O(pages)
     * in map size, O(0) in bytes: later writes on either side clone the
     * affected page first (see lookupWrite). Sharing stales the cached
     * exclusivity bits, so the xlat cache is dropped.
     */
    PageMap
    snapshotPages() const
    {
        invalidateXlat();
        return pages;
    }

    /**
     * Replace the whole image with a snapshot's pages, re-sharing them
     * (the inverse of snapshotPages). The first write per page after a
     * restore clones it, leaving the checkpoint intact for the next
     * restore. Destroys the old map nodes, so the xlat cache drops cold.
     */
    void
    restorePages(const PageMap &snapshot)
    {
        pages = snapshot;
        invalidateXlat();
    }

    /** Number of resident pages (for tests). */
    std::size_t residentPages() const { return pages.size(); }

  private:
    static Addr pageOf(Addr addr) { return addr >> pageShift; }
    static std::size_t
    offsetOf(Addr addr)
    {
        return static_cast<std::size_t>(addr & (pageSize - 1));
    }

    //! One xlat entry: page number -> the page's raw data pointer.
    //! Absent pages are never cached (a later first-touch insert must
    //! be observed), so a hit always has live storage behind it.
    //! `writable` caches `use_count() == 1` at fill time so the store
    //! fast path skips both the map and the atomic probe; every
    //! operation that can raise a page's use_count or replace its
    //! storage without going through lookupWrite (snapshotPages,
    //! reset, restorePages, copy/move construction/assignment)
    //! invalidates the cache, so a stale `true` cannot survive into a
    //! write that must clone. A stale `false` only costs the slow path.
    struct XlatEntry
    {
        Addr pageNo = ~Addr{0};
        std::uint8_t *data = nullptr;
        bool writable = false;
    };
    static constexpr std::size_t xlatSlots = 32; // power of two

    void
    invalidateXlat() const
    {
        for (XlatEntry &e : xlat)
            e = XlatEntry{};
    }

    /** Page data for reading (nullptr when untouched). The cache is
     * warmed on miss; `mutable` because warming is logically const. A
     * MemImage is single-owner state (one interpreter / one core), so
     * the mutation is not a concurrency hazard. */
    const std::uint8_t *
    lookupRead(Addr page_no) const
    {
        XlatEntry &e = xlat[page_no & (xlatSlots - 1)];
        if (e.pageNo == page_no)
            return e.data;
        const auto it = pages.find(page_no);
        if (it == pages.end())
            return nullptr;
        e.pageNo = page_no;
        e.data = it->second->data();
        e.writable = it->second.use_count() == 1;
        return e.data;
    }

    /** Page data for writing: allocate on first touch, clone when
     * shared with a snapshot (CoW). Cache hits are served only for
     * pages known to be exclusively owned (see XlatEntry::writable),
     * so the clone check can never be skipped. */
    std::uint8_t *
    lookupWrite(Addr page_no)
    {
        XlatEntry &e = xlat[page_no & (xlatSlots - 1)];
        if (e.pageNo == page_no && e.writable)
            return e.data;
        auto &slot = pages[page_no];
        if (!slot)
            slot = std::make_shared<Page>();
        else if (slot.use_count() > 1)
            slot = std::make_shared<Page>(*slot); // break CoW sharing
        e.pageNo = page_no;
        e.data = slot->data();
        e.writable = true; // just allocated, cloned, or probed == 1
        return e.data;
    }

    PageMap pages;
    //! Direct-mapped page-translation cache; see the file comment.
    mutable std::array<XlatEntry, xlatSlots> xlat{};
};

} // namespace rbsim

#endif // RBSIM_FUNC_MEM_IMAGE_HH
