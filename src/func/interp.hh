/**
 * @file
 * Functional reference interpreter — the architectural golden model.
 *
 * Executes a program one instruction at a time in pure two's complement.
 * The timing simulator runs this model in lockstep at retirement and
 * cross-checks every register write, memory write, and control transfer
 * (co-simulation), which is what validates the redundant binary datapath
 * end to end.
 *
 * Two implementations live behind one architectural contract:
 *
 *  - `step()` / `run*()` execute the program's predecoded form
 *    (func/predecode.hh) with threaded dispatch and the direct-page
 *    memory fast path — the production paths;
 *  - `stepReference()` is the original decode-every-step implementation,
 *    kept verbatim as the oracle. tests/test_predecode.cc locksteps the
 *    two over the whole fuzz corpus and every workload-generator preset
 *    and requires bit-equal StepRecords under both dispatch strategies.
 *
 * A JMP to an address outside the code image raises InterpError
 * (func/predecode.hh) from every path, in every build type.
 */

#ifndef RBSIM_FUNC_INTERP_HH
#define RBSIM_FUNC_INTERP_HH

#include <vector>

#include "func/mem_image.hh"
#include "func/predecode.hh"
#include "isa/eval.hh"
#include "isa/program.hh"

namespace rbsim
{

/** What one architectural step did (consumed by the co-sim checker). */
struct StepRecord
{
    std::uint64_t pcIndex = 0;  //!< instruction index executed
    Inst inst;                  //!< the instruction
    bool wroteReg = false;      //!< wrote an integer register
    unsigned archReg = zeroReg; //!< which register
    Word regValue = 0;          //!< value written
    bool wroteMem = false;      //!< was a store
    bool readMem = false;       //!< was a load
    Addr memAddr = 0;           //!< load/store address (aligned)
    Word memValue = 0;          //!< store value (after size truncation)
    bool taken = false;         //!< control transfer taken
    std::uint64_t nextPc = 0;   //!< next instruction index
    bool halted = false;        //!< this step executed HALT

    //! Field-wise equality (the predecode parity tests compare records
    //! from the two implementations bit-for-bit).
    bool operator==(const StepRecord &other) const = default;
};

/** The interpreter. */
class Interp
{
  public:
    /** Bind to a program; loads its data segments into a fresh memory. */
    explicit Interp(const Program &prog);

    /**
     * Back to construction state, rebound to `prog` (which must outlive
     * the interpreter). Memory is zeroed in place (resident pages kept)
     * and the program image reloaded; the predecoded form comes from the
     * process-wide cache — so repeated same-footprint runs allocate
     * nothing.
     */
    void
    reset(const Program &prog)
    {
        bindProgram(prog);
        memory.reset();
        memory.loadProgram(prog);
        pcIndex = prog.entry;
        steps = 0;
        isHalted = false;
    }

    /** True once HALT has executed or the PC ran off the code. */
    bool halted() const { return isHalted; }

    /**
     * Execute one instruction via the predecoded program, materializing
     * the full co-simulation record. Bit-identical to stepReference().
     * @pre !halted()
     */
    StepRecord step();

    /**
     * The original interpreter step — re-decodes through evalOp every
     * time. Kept as the oracle the predecoded paths are differentially
     * tested against. @pre !halted()
     */
    StepRecord stepReference();

    /** Run until halted or `max_steps` instructions; returns steps run.
     * Record-free (alias of runFast). */
    std::uint64_t run(std::uint64_t max_steps) { return runFast(max_steps); }

    /**
     * Record-free execution of up to `max_steps` instructions: the
     * threaded-dispatch loop touching only registers, memory, and the
     * pc — the `sim/fastfwd` engine and anything else that does not
     * need StepRecords should use this. Returns instructions executed.
     */
    std::uint64_t
    runFast(std::uint64_t max_steps)
    {
        NullExecSink sink;
        return runSink(max_steps, sink);
    }

    /**
     * Like runFast but reporting execution events (memory touches,
     * branch outcomes, calls/returns) to `sink` — see NullExecSink for
     * the hook set. FastForward's warming sink plugs in here.
     */
    template <class Sink>
    std::uint64_t
    runSink(std::uint64_t max_steps, Sink &sink)
    {
        ExecCtx cx;
        cx.regs = xregs.data();
        cx.mem = &memory;
        cx.dp = dec.get();
        cx.pc = pcIndex;
        cx.halted = isHalted;
        std::uint64_t done = 0;
        try {
            done = execDecoded(cx, max_steps, sink);
        } catch (...) {
            // InterpError from a bad JMP: the handler synced pc/steps
            // before throwing, so the interpreter stays inspectable
            // (pc on the faulting instruction, its step uncounted).
            pcIndex = cx.pc;
            steps += cx.steps;
            isHalted = cx.halted;
            throw;
        }
        pcIndex = cx.pc;
        steps += cx.steps;
        isHalted = cx.halted;
        return done;
    }

    /** Architectural register value. */
    Word
    reg(unsigned r) const
    {
        assert(r < numArchRegs);
        return r == zeroReg ? 0 : xregs[r];
    }

    /** Set an architectural register (test setup). */
    void
    setReg(unsigned r, Word v)
    {
        assert(r < numArchRegs);
        if (r != zeroReg)
            xregs[r] = v;
    }

    /** Current PC (instruction index). */
    std::uint64_t pc() const { return pcIndex; }

    /** Move the PC (checkpoint restore). A PC off the end of the code
     * image is the run-off-the-end halt state, same as after step(). */
    void
    setPc(std::uint64_t pc_index)
    {
        pcIndex = pc_index;
        isHalted = pc_index >= program->code.size();
    }

    /** The memory image. */
    MemImage &mem() { return memory; }
    const MemImage &mem() const { return memory; }

    /** Instructions executed so far. */
    std::uint64_t instsExecuted() const { return steps; }

    /** The predecoded form this interpreter executes (tests/bench). */
    const DecodedProgram &decoded() const { return *dec; }

  private:
    /** Rebind program + predecoded form and lay out the register file
     * (arch regs zeroed, literal pool filled, scratch slot). */
    void
    bindProgram(const Program &prog)
    {
        program = &prog;
        dec = decodeProgram(prog);
        xregs.resize(dec->slotCount());
        std::fill(xregs.begin(), xregs.begin() + numArchRegs, 0);
        for (std::size_t i = 0; i < dec->pool.size(); ++i)
            xregs[numArchRegs + i] = dec->pool[i];
        xregs[dec->scratch] = 0;
    }

    //! Pointer, not reference: reset(prog) rebinds it. Never null.
    const Program *program;
    std::shared_ptr<const DecodedProgram> dec;
    MemImage memory;
    //! Register-file slots: arch regs + literal pool + scratch (see
    //! func/predecode.hh for the layout contract).
    std::vector<Word> xregs;
    std::uint64_t pcIndex = 0;
    std::uint64_t steps = 0;
    bool isHalted = false;
};

} // namespace rbsim

#endif // RBSIM_FUNC_INTERP_HH
