/**
 * @file
 * Functional reference interpreter — the architectural golden model.
 *
 * Executes a program one instruction at a time in pure two's complement.
 * The timing simulator runs this model in lockstep at retirement and
 * cross-checks every register write, memory write, and control transfer
 * (co-simulation), which is what validates the redundant binary datapath
 * end to end.
 */

#ifndef RBSIM_FUNC_INTERP_HH
#define RBSIM_FUNC_INTERP_HH

#include <array>

#include "func/mem_image.hh"
#include "isa/eval.hh"
#include "isa/program.hh"

namespace rbsim
{

/** What one architectural step did (consumed by the co-sim checker). */
struct StepRecord
{
    std::uint64_t pcIndex = 0;  //!< instruction index executed
    Inst inst;                  //!< the instruction
    bool wroteReg = false;      //!< wrote an integer register
    unsigned archReg = zeroReg; //!< which register
    Word regValue = 0;          //!< value written
    bool wroteMem = false;      //!< was a store
    bool readMem = false;       //!< was a load
    Addr memAddr = 0;           //!< load/store address (aligned)
    Word memValue = 0;          //!< store value (after size truncation)
    bool taken = false;         //!< control transfer taken
    std::uint64_t nextPc = 0;   //!< next instruction index
    bool halted = false;        //!< this step executed HALT
};

/** The interpreter. */
class Interp
{
  public:
    /** Bind to a program; loads its data segments into a fresh memory. */
    explicit Interp(const Program &prog);

    /**
     * Back to construction state, rebound to `prog` (which must outlive
     * the interpreter). Memory is zeroed in place (resident pages kept)
     * and the program image reloaded, so repeated same-footprint runs
     * allocate nothing.
     */
    void
    reset(const Program &prog)
    {
        program = &prog;
        memory.reset();
        memory.loadProgram(prog);
        regs.fill(0);
        pcIndex = prog.entry;
        steps = 0;
        isHalted = false;
    }

    /** True once HALT has executed or the PC ran off the code. */
    bool halted() const { return isHalted; }

    /** Execute one instruction. @pre !halted() */
    StepRecord step();

    /** Run until halted or `max_steps` instructions; returns steps run. */
    std::uint64_t run(std::uint64_t max_steps);

    /** Architectural register value. */
    Word
    reg(unsigned r) const
    {
        assert(r < numArchRegs);
        return r == zeroReg ? 0 : regs[r];
    }

    /** Set an architectural register (test setup). */
    void
    setReg(unsigned r, Word v)
    {
        assert(r < numArchRegs);
        if (r != zeroReg)
            regs[r] = v;
    }

    /** Current PC (instruction index). */
    std::uint64_t pc() const { return pcIndex; }

    /** Move the PC (checkpoint restore). A PC off the end of the code
     * image is the run-off-the-end halt state, same as after step(). */
    void
    setPc(std::uint64_t pc_index)
    {
        pcIndex = pc_index;
        isHalted = pc_index >= program->code.size();
    }

    /** The memory image. */
    MemImage &mem() { return memory; }
    const MemImage &mem() const { return memory; }

    /** Instructions executed so far. */
    std::uint64_t instsExecuted() const { return steps; }

  private:
    //! Pointer, not reference: reset(prog) rebinds it. Never null.
    const Program *program;
    MemImage memory;
    std::array<Word, numArchRegs> regs{};
    std::uint64_t pcIndex = 0;
    std::uint64_t steps = 0;
    bool isHalted = false;
};

} // namespace rbsim

#endif // RBSIM_FUNC_INTERP_HH
