#include "func/predecode.hh"

#include <cstdlib>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "isa/inst.hh"

namespace rbsim
{

namespace
{

/** Does evalOp consume ops.b for this opcode? (Decides whether a
 * `useLit` literal needs a constant-pool slot.) */
bool
readsB(Opcode op)
{
    switch (op) {
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLE: case Opcode::BGT:
      case Opcode::BLBS: case Opcode::BLBC:
      case Opcode::BR: case Opcode::BSR:
      case Opcode::LDIQ:
      case Opcode::CTLZ: case Opcode::CTTZ: case Opcode::CTPOP:
      case Opcode::NOP: case Opcode::HALT:
        return false;
      default:
        return true;
    }
}

/** Straight opcode -> handler map for the operate/memory cases that
 * need no extra decode-time context. */
Handler
baseHandler(Opcode op)
{
    switch (op) {
      case Opcode::ADDQ: return Handler::AddQ;
      case Opcode::SUBQ: return Handler::SubQ;
      case Opcode::ADDL: return Handler::AddL;
      case Opcode::SUBL: return Handler::SubL;
      case Opcode::S4ADDQ: return Handler::S4AddQ;
      case Opcode::S8ADDQ: return Handler::S8AddQ;
      case Opcode::S4SUBQ: return Handler::S4SubQ;
      case Opcode::S8SUBQ: return Handler::S8SubQ;
      case Opcode::LDA: case Opcode::LDAH: return Handler::Lda;
      case Opcode::LDIQ: return Handler::Const;
      case Opcode::MULQ: return Handler::MulQ;
      case Opcode::MULL: return Handler::MulL;
      case Opcode::AND: return Handler::And;
      case Opcode::BIS: return Handler::Bis;
      case Opcode::XOR: return Handler::Xor;
      case Opcode::BIC: return Handler::Bic;
      case Opcode::ORNOT: return Handler::Ornot;
      case Opcode::EQV: return Handler::Eqv;
      case Opcode::SLL: return Handler::Sll;
      case Opcode::SRL: return Handler::Srl;
      case Opcode::SRA: return Handler::Sra;
      case Opcode::CMPEQ: return Handler::CmpEq;
      case Opcode::CMPLT: return Handler::CmpLt;
      case Opcode::CMPLE: return Handler::CmpLe;
      case Opcode::CMPULT: return Handler::CmpUlt;
      case Opcode::CMPULE: return Handler::CmpUle;
      case Opcode::CMOVEQ: return Handler::CmovEq;
      case Opcode::CMOVNE: return Handler::CmovNe;
      case Opcode::CMOVLT: return Handler::CmovLt;
      case Opcode::CMOVGE: return Handler::CmovGe;
      case Opcode::CMOVLE: return Handler::CmovLe;
      case Opcode::CMOVGT: return Handler::CmovGt;
      case Opcode::CMOVLBS: return Handler::CmovLbs;
      case Opcode::CMOVLBC: return Handler::CmovLbc;
      case Opcode::CTLZ: return Handler::Ctlz;
      case Opcode::CTTZ: return Handler::Cttz;
      case Opcode::CTPOP: return Handler::Ctpop;
      case Opcode::EXTBL: return Handler::Extbl;
      case Opcode::EXTWL: return Handler::Extwl;
      case Opcode::EXTLL: return Handler::Extll;
      case Opcode::INSBL: return Handler::Insbl;
      case Opcode::MSKBL: return Handler::Mskbl;
      case Opcode::ZAPNOT: return Handler::Zapnot;
      case Opcode::LDQ: return Handler::Ld8;
      case Opcode::LDL: return Handler::Ld4;
      case Opcode::STQ: return Handler::St8;
      case Opcode::STL: return Handler::St4;
      case Opcode::BEQ: return Handler::Beq;
      case Opcode::BNE: return Handler::Bne;
      case Opcode::BLT: return Handler::Blt;
      case Opcode::BGE: return Handler::Bge;
      case Opcode::BLE: return Handler::Ble;
      case Opcode::BGT: return Handler::Bgt;
      case Opcode::BLBS: return Handler::Blbs;
      case Opcode::BLBC: return Handler::Blbc;
      // The FP subset runs on integer values (DESIGN.md); ADDT/MULT
      // fold onto their integer twins, DIVT keeps its zero guard.
      case Opcode::ADDT: return Handler::AddQ;
      case Opcode::MULT: return Handler::MulQ;
      case Opcode::DIVT: return Handler::DivT;
      case Opcode::NOP: return Handler::Nop;
      case Opcode::HALT: return Handler::Halt;
      case Opcode::BR: case Opcode::BSR: case Opcode::JMP:
      default:
        break; // resolved by the caller
    }
    assert(false && "unmapped opcode in predecode");
    return Handler::Nop;
}

/** An operate op (writes a register and does nothing else), so a dead
 * r31 destination makes the whole instruction a NOP. */
bool
foldableWhenDead(Opcode op)
{
    return !isLoad(op) && !isStore(op) && !isControl(op) &&
           op != Opcode::NOP && op != Opcode::HALT;
}

std::shared_ptr<const DecodedProgram>
buildDecodedProgram(const Program &prog, std::uint64_t hash)
{
    auto out = std::make_shared<DecodedProgram>();
    out->codeBase = prog.codeBase;
    out->codeSize = prog.code.size();
    out->progHash = hash;

    // Pass 1: the literal pool. At most 256 distinct 8-bit values, in
    // first-encounter order so decode is deterministic.
    std::unordered_map<std::uint8_t, std::uint16_t> litSlot;
    for (const Inst &inst : prog.code) {
        if (inst.useLit && readsB(inst.op) &&
            !litSlot.count(inst.lit)) {
            const auto slot = static_cast<std::uint16_t>(
                numArchRegs + out->pool.size());
            litSlot.emplace(inst.lit, slot);
            out->pool.push_back(inst.lit);
        }
    }
    out->scratch =
        static_cast<std::uint16_t>(numArchRegs + out->pool.size());

    // Pass 2: lower every instruction.
    out->ops.reserve(prog.code.size());
    for (std::uint64_t i = 0; i < prog.code.size(); ++i) {
        const Inst &inst = prog.code[i];
        DecodedOp d;
        d.ra = inst.ra;
        d.rb = inst.useLit && readsB(inst.op) ? litSlot.at(inst.lit)
                                              : inst.rb;
        d.rc = inst.rc;
        const unsigned dest = destReg(inst);
        d.rd = dest == zeroReg ? out->scratch
                               : static_cast<std::uint16_t>(dest);

        const Word sdisp =
            static_cast<Word>(static_cast<SWord>(inst.disp));
        switch (inst.op) {
          case Opcode::LDA:
            d.h = Handler::Lda;
            d.k = sdisp;
            break;
          case Opcode::LDAH:
            d.h = Handler::Lda;
            d.k = sdisp << 16;
            break;
          case Opcode::LDIQ:
            d.h = Handler::Const;
            d.k = static_cast<Word>(inst.imm64);
            break;
          case Opcode::LDQ: case Opcode::LDL:
          case Opcode::STQ: case Opcode::STL:
            d.h = baseHandler(inst.op);
            d.k = sdisp;
            break;
          case Opcode::BR:
            d.h = Handler::Br;
            break;
          case Opcode::BSR:
            // BSR pushes the RAS only when it links; an unlinked BSR
            // warms like a plain BR.
            d.h = inst.ra != zeroReg ? Handler::Bsr : Handler::Br;
            break;
          case Opcode::JMP:
            d.h = inst.ra == zeroReg ? Handler::JmpRet
                                     : Handler::JmpCall;
            break;
          default:
            d.h = baseHandler(inst.op);
            break;
        }

        if (isCondBranch(inst.op) || inst.op == Opcode::BR ||
            inst.op == Opcode::BSR) {
            // Raw i64 arithmetic, exactly the reference's nextPc: an
            // off-image target must round-trip bit-for-bit through
            // StepRecord before the halt check fires.
            d.target = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(i) + 1 + inst.disp);
        }
        if (isControl(inst.op) && !isCondBranch(inst.op))
            d.k = prog.byteAddrOf(i + 1); // BR/BSR/JMP return address

        // Operate ops writing r31 have no architectural effect at all.
        if (dest == zeroReg && foldableWhenDead(inst.op))
            d = DecodedOp{}; // Handler::Nop

        out->ops.push_back(d);
    }
    return out;
}

} // namespace

std::shared_ptr<const DecodedProgram>
decodeProgram(const Program &prog)
{
    // Process-wide bounded cache. Eviction is a full clear — holders
    // keep their shared_ptrs alive, and 256 distinct programs resident
    // at once only happens in fuzz campaigns, where re-decoding is
    // noise next to the simulations.
    static std::mutex mu;
    static std::unordered_map<std::uint64_t,
                              std::shared_ptr<const DecodedProgram>>
        cache;
    constexpr std::size_t cacheCap = 256;

    const std::uint64_t h = prog.hash();
    std::lock_guard<std::mutex> lock(mu);
    if (const auto it = cache.find(h); it != cache.end())
        return it->second;
    auto dp = buildDecodedProgram(prog, h);
    if (cache.size() >= cacheCap)
        cache.clear();
    cache.emplace(h, dp);
    return dp;
}

bool
threadedDispatchEnabled()
{
#if RBSIM_HAS_COMPUTED_GOTO
    static const bool enabled = [] {
        const char *env = std::getenv("RBSIM_FORCE_SWITCH");
        const bool force_switch = env != nullptr && *env != '\0' &&
                                  !(env[0] == '0' && env[1] == '\0');
        return !force_switch;
    }();
    return enabled;
#else
    return false;
#endif
}

const char *
dispatchName()
{
    return threadedDispatchEnabled() ? "goto" : "switch";
}

void
throwBadJmp(const DecodedProgram &dp, std::uint64_t pc_index, Addr target)
{
    std::ostringstream os;
    os << "JMP to a non-code address: pc index " << pc_index
       << " jumps to 0x" << std::hex << target << std::dec
       << " (code spans [0x" << std::hex << dp.codeBase << ", 0x"
       << dp.codeBase + 4 * dp.codeSize << std::dec << "), "
       << dp.codeSize << " insts)";
    throw InterpError(os.str(), pc_index, target);
}

} // namespace rbsim
