/**
 * @file
 * Predecoded program representation and the threaded-dispatch execute
 * loop behind the functional interpreter (docs/PERFORMANCE.md §8).
 *
 * `decodeProgram` lowers a Program once into a dense array of
 * `DecodedOp` records: a resolved handler id, an operand-fetch plan
 * (register-file slot indices; literals live in a per-program constant
 * pool appended to the register file so operand fetch never branches on
 * `useLit`), the pre-sign-extended displacement or immediate, the
 * precomputed branch-target pc index and `byteAddrOf` return address,
 * and the load/store size+sign baked into the handler itself. The
 * result is cached process-wide keyed by `Program::hash()`, so the warm
 * serving path (Interp::reset on a program already seen) allocates
 * nothing.
 *
 * `execDecodedLoop` is the one hot loop, written once and instantiated
 * for both dispatch strategies and every event sink:
 *
 *  - token-threaded dispatch (computed goto, GNU C `&&label`) on
 *    GCC/Clang: every handler ends in its own indirect jump, giving the
 *    host branch predictor one BTB entry per (handler, successor) pair;
 *  - a portable `switch` fallback, also selectable at runtime with
 *    `RBSIM_FORCE_SWITCH=1` in the environment (mirroring the SIMD
 *    layer's `RBSIM_FORCE_SCALAR`), which is what the CI parity lane
 *    pins to prove both strategies execute bit-identically.
 *
 * The `Sink` parameter is a compile-time event listener: the record-free
 * `Interp::runFast` passes `NullExecSink` (all hooks inline to nothing),
 * the co-simulation `Interp::step` passes a StepRecord-building sink,
 * and `FastForward::run` passes a warming sink that touches cache tags
 * and predictor state. One loop body, three specializations, zero
 * dispatch overhead for the hooks.
 *
 * Register-file slot layout shared by Interp and the loop:
 *   [0, 32)              architectural registers (slot 31 pinned to 0)
 *   [32, 32 + pool)      literal-pool constants (written once at bind)
 *   [32 + pool]          scratch: writes whose architectural dest is r31
 * Redirecting dead destinations at decode time makes every register
 * write unconditional — no zero-register test anywhere in the loop.
 */

#ifndef RBSIM_FUNC_PREDECODE_HH
#define RBSIM_FUNC_PREDECODE_HH

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/bitutil.hh"
#include "func/mem_image.hh"
#include "isa/program.hh"

//! Token-threaded dispatch needs the GNU computed-goto extension; other
//! compilers fall back to the switch loop unconditionally.
#if defined(__GNUC__) || defined(__clang__)
#define RBSIM_HAS_COMPUTED_GOTO 1
#else
#define RBSIM_HAS_COMPUTED_GOTO 0
#endif

namespace rbsim
{

/**
 * A program-level fault the functional model detects at execution time
 * (currently: JMP to an address outside the code image). Unlike the
 * LSQ/ROB `fatal` aborts — which flag *model* invariant violations —
 * this is a property of the simulated program, so it is a catchable
 * error in every build type rather than a Release no-op assert. The
 * interpreter is left in a defined state: the faulting instruction's
 * return-address write (if any) has landed, the PC still points at the
 * faulting instruction, and its step is uncounted.
 */
class InterpError : public std::runtime_error
{
  public:
    InterpError(const std::string &what, std::uint64_t pc_index,
                Addr target_addr)
        : std::runtime_error(what), pcIndex(pc_index), target(target_addr)
    {}

    std::uint64_t pcIndex; //!< instruction index of the faulting op
    Addr target;           //!< the offending byte address
};

/**
 * Execution handlers, one per distinct semantic case after decode-time
 * resolution (LDA/LDAH share one handler behind a pre-shifted constant;
 * LDIQ becomes a generic constant load; ADDT/MULT alias their integer
 * twins; operate ops whose destination is r31 decode to Nop; BSR and
 * JMP split by their RAS discipline). The X-macro keeps the enum, the
 * computed-goto table, and the handler count in sync by construction.
 */
#define RBSIM_HANDLERS(X)                                                \
    X(AddQ) X(SubQ) X(AddL) X(SubL)                                      \
    X(S4AddQ) X(S8AddQ) X(S4SubQ) X(S8SubQ)                              \
    X(Lda) X(Const) X(MulQ) X(MulL)                                      \
    X(And) X(Bis) X(Xor) X(Bic) X(Ornot) X(Eqv)                          \
    X(Sll) X(Srl) X(Sra)                                                 \
    X(CmpEq) X(CmpLt) X(CmpLe) X(CmpUlt) X(CmpUle)                       \
    X(CmovEq) X(CmovNe) X(CmovLt) X(CmovGe)                              \
    X(CmovLe) X(CmovGt) X(CmovLbs) X(CmovLbc)                            \
    X(Ctlz) X(Cttz) X(Ctpop)                                             \
    X(Extbl) X(Extwl) X(Extll) X(Insbl) X(Mskbl) X(Zapnot)               \
    X(DivT)                                                              \
    X(Ld8) X(Ld4) X(St8) X(St4)                                          \
    X(Beq) X(Bne) X(Blt) X(Bge) X(Ble) X(Bgt) X(Blbs) X(Blbc)            \
    X(Br) X(Bsr) X(JmpRet) X(JmpCall)                                    \
    X(Nop) X(Halt)

/** Handler ids (indices into the dispatch table). */
enum class Handler : std::uint8_t
{
#define RBSIM_HANDLER_ENUM(name) name,
    RBSIM_HANDLERS(RBSIM_HANDLER_ENUM)
#undef RBSIM_HANDLER_ENUM
};

/** Number of handlers. */
constexpr unsigned numHandlers = 0
#define RBSIM_HANDLER_COUNT(name) +1
    RBSIM_HANDLERS(RBSIM_HANDLER_COUNT)
#undef RBSIM_HANDLER_COUNT
    ;

/**
 * One predecoded instruction (32 bytes). `ra/rb/rc` are register-file
 * *slot* indices (arch register, literal-pool slot, never scratch);
 * `rd` is the destination slot (scratch when the architectural dest is
 * r31). `target` is the precomputed fall-off-raw next pc index of a
 * direct branch — raw i64 arithmetic like the reference, so an
 * off-the-end target reproduces the reference's StepRecord::nextPc
 * bit-for-bit. `k` is the handler constant: the sign-extended (and for
 * LDAH pre-shifted) displacement for memory/LDA ops, the immediate for
 * Const, and the `byteAddrOf` return address for BR/BSR/JMP.
 */
struct DecodedOp
{
    Handler h = Handler::Nop;
    std::uint16_t ra = 0;
    std::uint16_t rb = 0;
    std::uint16_t rc = 0;
    std::uint16_t rd = 0;
    std::uint64_t target = 0;
    std::uint64_t k = 0;
};

static_assert(sizeof(DecodedOp) <= 32, "keep DecodedOp cache-friendly");

/** A fully lowered program; immutable and shareable across interpreters
 * (the decode cache hands out shared_ptrs keyed by Program::hash()). */
struct DecodedProgram
{
    std::vector<DecodedOp> ops;
    std::vector<Word> pool;    //!< literal-pool slot values
    Addr codeBase = 0;
    std::uint64_t codeSize = 0; //!< instruction count
    std::uint64_t progHash = 0;

    /** Scratch slot index (also: first index past the literal pool). */
    std::uint16_t scratch = 0;

    /** Register-file slots an executor must provide. */
    std::size_t slotCount() const { return std::size_t{scratch} + 1; }
};

/**
 * Lower `prog` (or fetch the cached lowering — process-wide, bounded,
 * keyed by Program::hash(); equal hashes are treated as equal programs,
 * the same contract the serve result cache relies on).
 */
std::shared_ptr<const DecodedProgram> decodeProgram(const Program &prog);

/** True when the computed-goto loop is compiled in and the environment
 * did not pin `RBSIM_FORCE_SWITCH` (resolved once, like the SIMD
 * backend's RBSIM_FORCE_SCALAR). */
bool threadedDispatchEnabled();

/** Dispatch strategy name for logs/benches: "goto" or "switch". */
const char *dispatchName();

/** Raise the structured bad-JMP error (satellite of PR 10). */
[[noreturn]] void throwBadJmp(const DecodedProgram &dp,
                              std::uint64_t pc_index, Addr target);

/**
 * The mutable state `execDecodedLoop` advances. Plain pointers/values so
 * the loop keeps everything in registers; the caller copies the results
 * back (on both return and throw — handlers sync pc/steps before
 * raising InterpError).
 */
struct ExecCtx
{
    Word *regs = nullptr;          //!< slotCount() entries, laid out above
    MemImage *mem = nullptr;
    const DecodedProgram *dp = nullptr;
    std::uint64_t pc = 0;          //!< instruction index
    std::uint64_t steps = 0;       //!< incremented by executed count
    bool halted = false;
};

/** The do-nothing event sink (`Interp::runFast`). Hooks mirror exactly
 * the facts StepRecord/functional-warming consumers need; every hook
 * inlines to nothing here. */
struct NullExecSink
{
    void preStep(std::uint64_t) {}
    void regWrite(std::uint16_t, Word) {}
    void load(Addr, Word) {}
    void store(Addr, Word) {}
    void condBranch(std::uint64_t, bool) {}
    void br() {}
    void bsr(Addr) {}
    void jmpRet() {}
    void jmpCall(std::uint64_t, std::uint64_t, Addr) {}
    void halt() {}
};

namespace detail
{

/** ZAPNOT byte mask (must match eval.cc's). */
inline Word
zapnotByteMask(Word mask)
{
    Word out = 0;
    for (unsigned i = 0; i < 8; ++i) {
        if ((mask >> i) & 1)
            out |= Word{0xff} << (8 * i);
    }
    return out;
}

/** Sign-extend the low 32 bits (longword results). */
inline Word
sext32(Word w)
{
    return static_cast<Word>(sext(w, 32));
}

} // namespace detail

/**
 * Execute up to `max_steps` instructions from `cx`, reporting events to
 * `sink`. Returns the number executed; `cx.pc/steps/halted` are synced
 * on every exit path, including the InterpError throw.
 *
 * Written once as a switch whose cases double as computed-goto labels:
 * the `UseGoto` instantiation re-dispatches from the tail of every
 * handler (token-threading), the portable one jumps back to the single
 * switch at the top. Do not instantiate `UseGoto=true` without
 * RBSIM_HAS_COMPUTED_GOTO.
 */
template <bool UseGoto, class Sink>
std::uint64_t
execDecodedLoop(ExecCtx &cx, std::uint64_t max_steps, Sink &sink)
{
    static_assert(!UseGoto || RBSIM_HAS_COMPUTED_GOTO,
                  "threaded dispatch needs the GNU computed-goto "
                  "extension");

    const DecodedOp *const ops = cx.dp->ops.data();
    const std::uint64_t n = cx.dp->codeSize;
    const Addr cb = cx.dp->codeBase;
    const Addr code_bytes = Addr{4} * n;
    Word *const R = cx.regs;
    MemImage *const M = cx.mem;

    std::uint64_t pc = cx.pc;
    // Step count is derived as `max_steps - left` on every exit path,
    // keeping the per-step bookkeeping to the single budget decrement.
    std::uint64_t left = max_steps;

    if (cx.halted || left == 0)
        return 0;
    if (pc >= n) {
        // A PC already off the code image is the run-off-the-end halt
        // state (see Interp::setPc).
        cx.halted = true;
        return 0;
    }
    const DecodedOp *d = &ops[pc];

#if RBSIM_HAS_COMPUTED_GOTO
    // Built in both instantiations (taking a label's address marks it
    // used); only the UseGoto one jumps through it.
#define RBSIM_HANDLER_ADDR(name) &&H_##name,
    static const void *const jumpTable[numHandlers] = {
        RBSIM_HANDLERS(RBSIM_HANDLER_ADDR)};
#undef RBSIM_HANDLER_ADDR
    (void)jumpTable;
#define RBSIM_TGOTO() goto *jumpTable[static_cast<unsigned>(d->h)]
#define RBSIM_CASE(name) case Handler::name: H_##name:
#else
#define RBSIM_TGOTO() std::abort() /* never instantiated */
#define RBSIM_CASE(name) case Handler::name:
#endif

    // Step bookkeeping + re-dispatch, expanded at the tail of every
    // handler (so the threaded build gets one indirect jump per
    // handler).
#define RBSIM_NEXT_AT(np)                                                \
    do {                                                                 \
        pc = (np);                                                       \
        --left;                                                          \
        /* Halt check before the budget check: running off the code   */ \
        /* image halts even when this was the last budgeted step      */ \
        /* (the reference sets halted after every step).              */ \
        if (pc >= n) {                                                   \
            cx.halted = true;                                            \
            goto L_out;                                                  \
        }                                                                \
        if (left == 0)                                                   \
            goto L_out;                                                  \
        if constexpr (UseGoto) {                                         \
            sink.preStep(pc);                                            \
            d = &ops[pc];                                                \
            RBSIM_TGOTO();                                               \
        } else {                                                         \
            goto L_top;                                                  \
        }                                                                \
    } while (0)
#define RBSIM_NEXT() RBSIM_NEXT_AT(pc + 1)

    // A two-source operate op: dest <- expr over slots a/b.
#define RBSIM_BINOP(name, expr)                                          \
    RBSIM_CASE(name)                                                     \
    {                                                                    \
        const Word a = R[d->ra];                                         \
        const Word b = R[d->rb];                                         \
        (void)a;                                                         \
        (void)b;                                                         \
        const Word v = (expr);                                           \
        R[d->rd] = v;                                                    \
        sink.regWrite(d->rd, v);                                         \
        RBSIM_NEXT();                                                    \
    }

    // Conditional move: cond(a) ? b : old dest.
#define RBSIM_CMOV(name, cond)                                           \
    RBSIM_CASE(name)                                                     \
    {                                                                    \
        const Word a = R[d->ra];                                         \
        const Word v = (cond) ? R[d->rb] : R[d->rc];                     \
        R[d->rd] = v;                                                    \
        sink.regWrite(d->rd, v);                                         \
        RBSIM_NEXT();                                                    \
    }

    // Conditional branch on a; target precomputed at decode.
#define RBSIM_CONDBR(name, cond)                                         \
    RBSIM_CASE(name)                                                     \
    {                                                                    \
        const Word a = R[d->ra];                                         \
        (void)a;                                                         \
        const bool t = (cond);                                           \
        sink.condBranch(pc, t);                                          \
        if (t)                                                           \
            RBSIM_NEXT_AT(d->target);                                    \
        RBSIM_NEXT();                                                    \
    }

    if constexpr (UseGoto) {
        sink.preStep(pc);
        d = &ops[pc];
        RBSIM_TGOTO();
    }

// In the UseGoto instantiation the only reference to this label sits in
// a discarded `if constexpr` branch, so tell the compiler it may go
// unused.
#if RBSIM_HAS_COMPUTED_GOTO
L_top: __attribute__((unused));
#else
L_top:;
#endif
    sink.preStep(pc);
    d = &ops[pc];
    switch (d->h) {
        RBSIM_BINOP(AddQ, a + b)
        RBSIM_BINOP(SubQ, a - b)
        RBSIM_BINOP(AddL, detail::sext32(a + b))
        RBSIM_BINOP(SubL, detail::sext32(a - b))
        RBSIM_BINOP(S4AddQ, (a << 2) + b)
        RBSIM_BINOP(S8AddQ, (a << 3) + b)
        RBSIM_BINOP(S4SubQ, (a << 2) - b)
        RBSIM_BINOP(S8SubQ, (a << 3) - b)
        RBSIM_BINOP(MulQ, a * b)
        RBSIM_BINOP(MulL, detail::sext32(a * b))
        RBSIM_BINOP(And, a & b)
        RBSIM_BINOP(Bis, a | b)
        RBSIM_BINOP(Xor, a ^ b)
        RBSIM_BINOP(Bic, a & ~b)
        RBSIM_BINOP(Ornot, a | ~b)
        RBSIM_BINOP(Eqv, a ^ ~b)
        RBSIM_BINOP(Sll, a << (b & 63))
        RBSIM_BINOP(Srl, a >> (b & 63))
        RBSIM_BINOP(Sra,
                    static_cast<Word>(static_cast<SWord>(a) >> (b & 63)))
        RBSIM_BINOP(CmpEq, a == b)
        RBSIM_BINOP(CmpLt,
                    static_cast<SWord>(a) < static_cast<SWord>(b))
        RBSIM_BINOP(CmpLe,
                    static_cast<SWord>(a) <= static_cast<SWord>(b))
        RBSIM_BINOP(CmpUlt, a < b)
        RBSIM_BINOP(CmpUle, a <= b)
        RBSIM_BINOP(Ctlz, clz64(a))
        RBSIM_BINOP(Cttz, ctz64(a))
        RBSIM_BINOP(Ctpop, popcount64(a))
        RBSIM_BINOP(Extbl, (a >> (8 * (b & 7))) & 0xff)
        RBSIM_BINOP(Extwl, (a >> (8 * (b & 7))) & 0xffff)
        RBSIM_BINOP(Extll, (a >> (8 * (b & 7))) & 0xffffffffull)
        RBSIM_BINOP(Insbl, (a & 0xff) << (8 * (b & 7)))
        RBSIM_BINOP(Mskbl, a & ~(Word{0xff} << (8 * (b & 7))))
        RBSIM_BINOP(Zapnot, a & detail::zapnotByteMask(b))
        RBSIM_BINOP(DivT,
                    static_cast<SWord>(b) == 0 ? Word{0} : a / (b | 1))

        RBSIM_CMOV(CmovEq, a == 0)
        RBSIM_CMOV(CmovNe, a != 0)
        RBSIM_CMOV(CmovLt, static_cast<SWord>(a) < 0)
        RBSIM_CMOV(CmovGe, static_cast<SWord>(a) >= 0)
        RBSIM_CMOV(CmovLe, static_cast<SWord>(a) <= 0)
        RBSIM_CMOV(CmovGt, static_cast<SWord>(a) > 0)
        RBSIM_CMOV(CmovLbs, a & 1)
        RBSIM_CMOV(CmovLbc, !(a & 1))

        RBSIM_CASE(Lda)
        {
            const Word v = R[d->rb] + d->k;
            R[d->rd] = v;
            sink.regWrite(d->rd, v);
            RBSIM_NEXT();
        }
        RBSIM_CASE(Const)
        {
            const Word v = d->k;
            R[d->rd] = v;
            sink.regWrite(d->rd, v);
            RBSIM_NEXT();
        }

        RBSIM_CASE(Ld8)
        {
            const Addr ea = (R[d->rb] + d->k) & ~Addr{7};
            const Word v = M->loadAligned<8>(ea);
            R[d->rd] = v;
            sink.regWrite(d->rd, v);
            sink.load(ea, v);
            RBSIM_NEXT();
        }
        RBSIM_CASE(Ld4)
        {
            const Addr ea = (R[d->rb] + d->k) & ~Addr{3};
            const Word v = detail::sext32(M->loadAligned<4>(ea));
            R[d->rd] = v;
            sink.regWrite(d->rd, v);
            sink.load(ea, v);
            RBSIM_NEXT();
        }
        RBSIM_CASE(St8)
        {
            const Addr ea = (R[d->rb] + d->k) & ~Addr{7};
            const Word v = R[d->ra];
            M->storeAligned<8>(ea, v);
            sink.store(ea, v);
            RBSIM_NEXT();
        }
        RBSIM_CASE(St4)
        {
            const Addr ea = (R[d->rb] + d->k) & ~Addr{3};
            const Word v = R[d->ra] & 0xffffffffull;
            M->storeAligned<4>(ea, v);
            sink.store(ea, v);
            RBSIM_NEXT();
        }

        RBSIM_CONDBR(Beq, a == 0)
        RBSIM_CONDBR(Bne, a != 0)
        RBSIM_CONDBR(Blt, static_cast<SWord>(a) < 0)
        RBSIM_CONDBR(Bge, static_cast<SWord>(a) >= 0)
        RBSIM_CONDBR(Ble, static_cast<SWord>(a) <= 0)
        RBSIM_CONDBR(Bgt, static_cast<SWord>(a) > 0)
        RBSIM_CONDBR(Blbs, (a & 1) != 0)
        RBSIM_CONDBR(Blbc, (a & 1) == 0)

        RBSIM_CASE(Br)
        {
            R[d->rd] = d->k; // return address (or scratch)
            sink.regWrite(d->rd, d->k);
            sink.br();
            RBSIM_NEXT_AT(d->target);
        }
        RBSIM_CASE(Bsr)
        {
            R[d->rd] = d->k;
            sink.regWrite(d->rd, d->k);
            sink.bsr(d->k);
            RBSIM_NEXT_AT(d->target);
        }
        RBSIM_CASE(JmpRet)
        {
            const Word t = R[d->rb];
            R[d->rd] = d->k;
            sink.regWrite(d->rd, d->k);
            if (t < cb || t - cb >= code_bytes || (t & 3) != 0) {
                cx.pc = pc;
                cx.steps += max_steps - left; // this step uncounted
                throwBadJmp(*cx.dp, pc, t);
            }
            const std::uint64_t np = (t - cb) >> 2;
            sink.jmpRet();
            RBSIM_NEXT_AT(np);
        }
        RBSIM_CASE(JmpCall)
        {
            const Word t = R[d->rb];
            R[d->rd] = d->k;
            sink.regWrite(d->rd, d->k);
            if (t < cb || t - cb >= code_bytes || (t & 3) != 0) {
                cx.pc = pc;
                cx.steps += max_steps - left; // this step uncounted
                throwBadJmp(*cx.dp, pc, t);
            }
            const std::uint64_t np = (t - cb) >> 2;
            sink.jmpCall(pc, np, d->k);
            RBSIM_NEXT_AT(np);
        }

        RBSIM_CASE(Nop) { RBSIM_NEXT(); }
        RBSIM_CASE(Halt)
        {
            // HALT leaves the pc on itself (the reference's
            // rec.nextPc == pcIndex) and counts as one step.
            cx.halted = true;
            sink.halt();
            --left;
            goto L_out;
        }
    }
    // Every case re-dispatches or exits; reaching here means a corrupt
    // handler id.
    std::abort();

L_out: {
    const std::uint64_t done = max_steps - left;
    cx.pc = pc;
    cx.steps += done;
    return done;
}

#undef RBSIM_BINOP
#undef RBSIM_CMOV
#undef RBSIM_CONDBR
#undef RBSIM_NEXT
#undef RBSIM_NEXT_AT
#undef RBSIM_CASE
#undef RBSIM_TGOTO
}

/** Run the loop with the process-selected dispatch strategy. */
template <class Sink>
inline std::uint64_t
execDecoded(ExecCtx &cx, std::uint64_t max_steps, Sink &sink)
{
#if RBSIM_HAS_COMPUTED_GOTO
    if (threadedDispatchEnabled())
        return execDecodedLoop<true>(cx, max_steps, sink);
#endif
    return execDecodedLoop<false>(cx, max_steps, sink);
}

} // namespace rbsim

#endif // RBSIM_FUNC_PREDECODE_HH
