/**
 * @file
 * Data format tags used throughout the execution core.
 *
 * The paper's machines carry values either in conventional two's complement
 * (TC) or in the redundant binary (RB) signed-digit representation.
 */

#ifndef RBSIM_RB_FORMAT_HH
#define RBSIM_RB_FORMAT_HH

namespace rbsim
{

/** The representation a value is carried in. */
enum class Format : unsigned char
{
    TC, //!< two's complement
    RB, //!< redundant binary (signed-digit, digits in {-1, 0, 1})
};

/** Printable name of a format. */
inline const char *
formatName(Format f)
{
    return f == Format::TC ? "TC" : "RB";
}

} // namespace rbsim

#endif // RBSIM_RB_FORMAT_HH
