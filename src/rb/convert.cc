#include "rb/convert.hh"

namespace rbsim
{

Word
rbToTcRipple(const RbNum &x)
{
    const std::uint64_t p = x.plus();
    const std::uint64_t m = x.minus();
    std::uint64_t result = 0;
    unsigned borrow = 0;
    for (unsigned i = 0; i < 64; ++i) {
        const unsigned a = (p >> i) & 1;
        const unsigned b = (m >> i) & 1;
        const unsigned diff = a ^ b ^ borrow;
        borrow = ((a ^ 1u) & (b | borrow)) | (b & borrow);
        result |= static_cast<std::uint64_t>(diff) << i;
    }
    return result;
}

} // namespace rbsim
