#include "rb/convert.hh"

#include <array>

#include "common/rng.hh"

namespace rbsim
{

Word
rbToTcRipple(const RbNum &x)
{
    const std::uint64_t p = x.plus();
    const std::uint64_t m = x.minus();
    std::uint64_t result = 0;
    unsigned borrow = 0;
    for (unsigned i = 0; i < 64; ++i) {
        const unsigned a = (p >> i) & 1;
        const unsigned b = (m >> i) & 1;
        const unsigned diff = a ^ b ^ borrow;
        borrow = ((a ^ 1u) & (b | borrow)) | (b & borrow);
        result |= static_cast<std::uint64_t>(diff) << i;
    }
    return result;
}

RbNum
redundantEncodingOf(Word w, Rng &rng, unsigned rewrites)
{
    // Work on an explicit digit array; the rewrites are exact integer
    // identities (2^(i+1) - 2^i == 2^i), so the unwrapped value never
    // changes.
    std::array<int, 64> d{};
    const RbNum canon = RbNum::fromTc(w);
    for (unsigned i = 0; i < 64; ++i)
        d[i] = static_cast<int>(canon.digit(i));

    for (unsigned n = 0; n < rewrites; ++n) {
        const unsigned i = static_cast<unsigned>(rng.below(63));
        if (d[i] == 1 && d[i + 1] <= 0) {
            d[i] = -1;
            d[i + 1] += 1;
        } else if (d[i] == -1 && d[i + 1] >= 0) {
            d[i] = 1;
            d[i + 1] -= 1;
        }
    }

    RbNum out;
    for (unsigned i = 0; i < 64; ++i)
        out.setDigit(i, static_cast<Digit>(d[i]));
    return out;
}

} // namespace rbsim
