#include "rb/digit_slice.hh"

#include <cassert>
#include <cstring>

namespace rbsim
{

namespace
{

/**
 * In-place 64x64 bit-matrix transpose (recursive block swap, the
 * Hacker's Delight 7-3 routine widened to 64 bits). In raw (row, bit)
 * coordinates it computes a'[r] bit b = a[63-b] bit (63-r); applied
 * twice it is the identity, and the slice loop below accounts for the
 * reversed indexing in between.
 */
void
transpose64(std::uint64_t a[64])
{
    std::uint64_t m = 0x00000000ffffffffull;
    for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
        for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
            const std::uint64_t t = (a[k] ^ (a[k + j] >> j)) & m;
            a[k] ^= t;
            a[k + j] ^= t << j;
        }
    }
}

} // namespace

SliceOutputs
evalDigitSlice(DigitWires x, DigitWires y, bool h_prev, TransferWires f_prev)
{
    // Digit-sum classification for position i (z = x + y).
    const bool z_p2 = x.pos && y.pos;
    const bool z_m2 = x.neg && y.neg;
    const bool z_p1 = (x.pos != y.pos) && !x.neg && !y.neg;
    const bool z_m1 = (x.neg != y.neg) && !x.pos && !y.pos;
    const bool z_abs1 = z_p1 || z_m1;

    SliceOutputs out;

    // h_i: both digits at position i are nonnegative.
    out.h = !x.neg && !y.neg;

    // f_i: transfer out of position i, steered by h_{i-1}.
    out.f.plus = z_p2 || (z_p1 && h_prev);
    out.f.minus = z_m2 || (z_m1 && !h_prev);

    // Interim digit d_i: nonzero only when |z| == 1; its sign is chosen so
    // it can never collide with an incoming transfer of the same sign.
    const bool d_plus = z_abs1 && !h_prev;
    const bool d_minus = z_abs1 && h_prev;

    // s_i = d_i + f_{i-1}; same-sign collisions are impossible and
    // opposite signs cancel.
    out.sum.pos = (d_plus && !f_prev.minus) || (f_prev.plus && !d_minus);
    out.sum.neg = (d_minus && !f_prev.plus) || (f_prev.minus && !d_plus);

    return out;
}

RbRawSum
addBySlices(const RbNum &x, const RbNum &y)
{
    std::uint64_t sum_plus = 0;
    std::uint64_t sum_minus = 0;

    bool h_prev = true;          // below digit 0 everything is "nonnegative"
    TransferWires f_prev{};      // no transfer into digit 0

    TransferWires f_out{};
    for (unsigned i = 0; i < 64; ++i) {
        const std::uint64_t m = std::uint64_t{1} << i;
        const DigitWires xd{(x.minus() & m) != 0, (x.plus() & m) != 0};
        const DigitWires yd{(y.minus() & m) != 0, (y.plus() & m) != 0};

        const SliceOutputs out = evalDigitSlice(xd, yd, h_prev, f_prev);

        if (out.sum.pos)
            sum_plus |= m;
        if (out.sum.neg)
            sum_minus |= m;

        h_prev = out.h;
        f_prev = out.f;
        f_out = out.f;
    }

    int carry_out = 0;
    if (f_out.plus)
        carry_out = 1;
    else if (f_out.minus)
        carry_out = -1;

    return RbRawSum{RbNum(sum_plus, sum_minus), carry_out};
}

void
addBySlicesBatch(const std::uint64_t *xp, const std::uint64_t *xm,
                 const std::uint64_t *yp, const std::uint64_t *ym,
                 std::uint64_t *sp, std::uint64_t *sm,
                 std::int8_t *carryOut, std::size_t n)
{
    assert(n <= 64);

    // Lane planes -> digit-position words. After transpose64, word w
    // holds digit (63 - w) of every pair, with pair j at bit (63 - j);
    // unused lanes are zero (a legal 0 + 0 column).
    std::uint64_t txp[64], txm[64], typ[64], tym[64];
    std::memset(txp, 0, sizeof(txp));
    std::memset(txm, 0, sizeof(txm));
    std::memset(typ, 0, sizeof(typ));
    std::memset(tym, 0, sizeof(tym));
    std::memcpy(txp, xp, n * sizeof(*xp));
    std::memcpy(txm, xm, n * sizeof(*xm));
    std::memcpy(typ, yp, n * sizeof(*yp));
    std::memcpy(tym, ym, n * sizeof(*ym));
    transpose64(txp);
    transpose64(txm);
    transpose64(typ);
    transpose64(tym);

    std::uint64_t tsp[64], tsm[64];

    // The evalDigitSlice equations verbatim, each bool widened to a
    // 64-lane mask; digit positions run 0 -> 63 (word 63 -> 0) so the
    // h/f neighbor chain is identical to the scalar slice chain.
    std::uint64_t h_prev = ~std::uint64_t{0}; // below digit 0: nonneg
    std::uint64_t fp_prev = 0, fm_prev = 0;   // no transfer into digit 0
    for (int w = 63; w >= 0; --w) {
        const std::uint64_t xpos = txp[w], xneg = txm[w];
        const std::uint64_t ypos = typ[w], yneg = tym[w];

        const std::uint64_t z_p2 = xpos & ypos;
        const std::uint64_t z_m2 = xneg & yneg;
        const std::uint64_t z_p1 = (xpos ^ ypos) & ~xneg & ~yneg;
        const std::uint64_t z_m1 = (xneg ^ yneg) & ~xpos & ~ypos;
        const std::uint64_t z_abs1 = z_p1 | z_m1;

        const std::uint64_t h = ~xneg & ~yneg;
        const std::uint64_t f_plus = z_p2 | (z_p1 & h_prev);
        const std::uint64_t f_minus = z_m2 | (z_m1 & ~h_prev);
        const std::uint64_t d_plus = z_abs1 & ~h_prev;
        const std::uint64_t d_minus = z_abs1 & h_prev;

        tsp[w] = (d_plus & ~fm_prev) | (fp_prev & ~d_minus);
        tsm[w] = (d_minus & ~fp_prev) | (fm_prev & ~d_plus);

        h_prev = h;
        fp_prev = f_plus;
        fm_prev = f_minus;
    }

    // Digit words -> lane planes (transpose64 twice is the identity).
    transpose64(tsp);
    transpose64(tsm);
    std::memcpy(sp, tsp, n * sizeof(*sp));
    std::memcpy(sm, tsm, n * sizeof(*sm));

    // Final transfers are the lane carry-outs; pair j sits at bit 63-j.
    for (std::size_t j = 0; j < n; ++j) {
        const std::uint64_t lane = std::uint64_t{1} << (63 - j);
        carryOut[j] = (fp_prev & lane)   ? std::int8_t{1}
                      : (fm_prev & lane) ? std::int8_t{-1}
                                         : std::int8_t{0};
    }
}

} // namespace rbsim
