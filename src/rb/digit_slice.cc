#include "rb/digit_slice.hh"

namespace rbsim
{

SliceOutputs
evalDigitSlice(DigitWires x, DigitWires y, bool h_prev, TransferWires f_prev)
{
    // Digit-sum classification for position i (z = x + y).
    const bool z_p2 = x.pos && y.pos;
    const bool z_m2 = x.neg && y.neg;
    const bool z_p1 = (x.pos != y.pos) && !x.neg && !y.neg;
    const bool z_m1 = (x.neg != y.neg) && !x.pos && !y.pos;
    const bool z_abs1 = z_p1 || z_m1;

    SliceOutputs out;

    // h_i: both digits at position i are nonnegative.
    out.h = !x.neg && !y.neg;

    // f_i: transfer out of position i, steered by h_{i-1}.
    out.f.plus = z_p2 || (z_p1 && h_prev);
    out.f.minus = z_m2 || (z_m1 && !h_prev);

    // Interim digit d_i: nonzero only when |z| == 1; its sign is chosen so
    // it can never collide with an incoming transfer of the same sign.
    const bool d_plus = z_abs1 && !h_prev;
    const bool d_minus = z_abs1 && h_prev;

    // s_i = d_i + f_{i-1}; same-sign collisions are impossible and
    // opposite signs cancel.
    out.sum.pos = (d_plus && !f_prev.minus) || (f_prev.plus && !d_minus);
    out.sum.neg = (d_minus && !f_prev.plus) || (f_prev.minus && !d_plus);

    return out;
}

RbRawSum
addBySlices(const RbNum &x, const RbNum &y)
{
    std::uint64_t sum_plus = 0;
    std::uint64_t sum_minus = 0;

    bool h_prev = true;          // below digit 0 everything is "nonnegative"
    TransferWires f_prev{};      // no transfer into digit 0

    TransferWires f_out{};
    for (unsigned i = 0; i < 64; ++i) {
        const std::uint64_t m = std::uint64_t{1} << i;
        const DigitWires xd{(x.minus() & m) != 0, (x.plus() & m) != 0};
        const DigitWires yd{(y.minus() & m) != 0, (y.plus() & m) != 0};

        const SliceOutputs out = evalDigitSlice(xd, yd, h_prev, f_prev);

        if (out.sum.pos)
            sum_plus |= m;
        if (out.sum.neg)
            sum_minus |= m;

        h_prev = out.h;
        f_prev = out.f;
        f_out = out.f;
    }

    int carry_out = 0;
    if (f_out.plus)
        carry_out = 1;
    else if (f_out.minus)
        carry_out = -1;

    return RbRawSum{RbNum(sum_plus, sum_minus), carry_out};
}

} // namespace rbsim
