/**
 * @file
 * Radix-4 signed-digit arithmetic — the comparison point of paper
 * section 3.4 (Nagendra et al. measured a radix-4 SD adder 2.6x faster
 * than a 32-bit CLA; the paper's radix-2 redundant binary adder is
 * faster still).
 *
 * Numbers are 32 digits of {-3..3} (maximally redundant radix 4), value
 * = sum d_i * 4^i modulo 2^64. Addition limits carry propagation to one
 * digit position: per-digit sums z in [-6, 6] split into a transfer
 * t in {-1, 0, 1} and an interim digit w with |w| <= 2, so w + t_in
 * never leaves the digit set.
 */

#ifndef RBSIM_RB_RSD4_HH
#define RBSIM_RB_RSD4_HH

#include <cassert>
#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace rbsim
{

/** A 32-digit radix-4 signed-digit number. */
class Rsd4Num
{
  public:
    /** Zero. */
    Rsd4Num() { digitsArr.fill(0); }

    /** Hardwired conversion from two's complement: each digit takes two
     * bits (all digits nonnegative; the value matches modulo 2^64). */
    static Rsd4Num fromTc(Word w);

    /** Two's complement value (sum of digit weights, wrapped). */
    Word toTc() const;

    /** Digit accessor, i in [0, 32). */
    int
    digit(unsigned i) const
    {
        return digitsArr[i];
    }

    /** Set a digit; d must be in [-3, 3]. */
    void
    setDigit(unsigned i, int d)
    {
        assert(d >= -3 && d <= 3);
        digitsArr[i] = static_cast<std::int8_t>(d);
    }

    /** All-digit negation (free: per-digit sign flip). */
    Rsd4Num negated() const;

    /** Representation rendering, most significant digit first. */
    std::string toString(unsigned ndigits = 32) const;

    bool operator==(const Rsd4Num &other) const = default;

  private:
    std::array<std::int8_t, 32> digitsArr;
};

/**
 * Carry-free radix-4 addition: transfer propagation bounded to one
 * digit. Returns the 32-digit sum (value preserved modulo 2^64).
 */
Rsd4Num rsd4Add(const Rsd4Num &x, const Rsd4Num &y);

/** Subtraction via free negation. */
inline Rsd4Num
rsd4Sub(const Rsd4Num &x, const Rsd4Num &y)
{
    return rsd4Add(x, y.negated());
}

/** Unit-gate critical-path depth of the radix-4 SD adder (width-
 * independent, slightly deeper than the radix-2 RB adder because each
 * digit slice handles a seven-valued digit sum). */
unsigned rsd4AdderDepth(unsigned width);

} // namespace rbsim

#endif // RBSIM_RB_RSD4_HH
