/**
 * @file
 * 64-digit redundant binary (signed-digit) number (paper section 3.1).
 *
 * Each digit takes a value in {-1, 0, 1} and is encoded in two bit planes:
 * a "plus" plane and a "minus" plane (the paper's X+ and X- components). A
 * digit may not be +1 and -1 at once, so `plusBits & minusBits == 0` is a
 * class invariant. The integer value of a number is `plus - minus`
 * interpreted modulo 2^64 (the wrap-around semantics of 64-bit
 * architectures); the *unwrapped* signed value `plus - minus` as a wide
 * integer is what the paper's sign test and overflow rules reason about.
 */

#ifndef RBSIM_RB_RBNUM_HH
#define RBSIM_RB_RBNUM_HH

#include <cassert>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace rbsim
{

/** One signed digit. */
enum class Digit : signed char
{
    Minus = -1,
    Zero = 0,
    Plus = 1,
};

/**
 * A 64-digit redundant binary number.
 *
 * The default-constructed number is zero. Factory functions build numbers
 * from two's complement values using the hardwired conversion of paper
 * section 3.2.
 */
class RbNum
{
  public:
    /** Zero. */
    RbNum() = default;

    /**
     * Build from explicit planes.
     * @param plus positive-digit plane (X+)
     * @param minus negative-digit plane (X-)
     * @pre plus & minus == 0
     */
    RbNum(std::uint64_t plus, std::uint64_t minus)
        : plusBits(plus), minusBits(minus)
    {
        assert((plus & minus) == 0 && "digit may not be +1 and -1 at once");
    }

    /**
     * Hardwired conversion from a 64-bit two's complement value (paper
     * section 3.2): all bits except the MSB go to the positive plane; the
     * MSB goes to the negative plane so the number keeps its sign.
     */
    static RbNum
    fromTc(Word w)
    {
        const std::uint64_t msb = w & (std::uint64_t{1} << 63);
        return RbNum(w & ~msb, msb);
    }

    /**
     * Hardwired conversion of a longword (32-bit) two's complement value:
     * bit 31 is wired to the negative plane of digit 31 so longwords retain
     * the correct sign (paper section 3.6, quadword-to-longword rule). The
     * upper 32 digits are zero.
     */
    static RbNum
    fromTcLong(std::uint32_t w)
    {
        const std::uint64_t msb = w & 0x80000000u;
        return RbNum(w & ~msb, msb);
    }

    /** Positive-digit plane (X+). */
    std::uint64_t plus() const { return plusBits; }

    /** Negative-digit plane (X-). */
    std::uint64_t minus() const { return minusBits; }

    /**
     * Two's complement value: X+ - X- modulo 2^64. In hardware this is the
     * full borrow-propagating subtraction of paper section 3.2.
     */
    Word toTc() const { return plusBits - minusBits; }

    /** Digit at position i. */
    Digit
    digit(unsigned i) const
    {
        assert(i < 64);
        const std::uint64_t m = std::uint64_t{1} << i;
        if (plusBits & m)
            return Digit::Plus;
        if (minusBits & m)
            return Digit::Minus;
        return Digit::Zero;
    }

    /** Replace the digit at position i. */
    void
    setDigit(unsigned i, Digit d)
    {
        assert(i < 64);
        const std::uint64_t m = std::uint64_t{1} << i;
        plusBits &= ~m;
        minusBits &= ~m;
        if (d == Digit::Plus)
            plusBits |= m;
        else if (d == Digit::Minus)
            minusBits |= m;
    }

    /**
     * True if the represented value is exactly zero. Because the planes are
     * disjoint, `plus - minus == 0 (mod 2^64)` is only possible when every
     * digit is zero, so the hardware zero test is an OR over all digit bits
     * (paper section 3.6, conditional operations).
     */
    bool isZero() const { return (plusBits | minusBits) == 0; }

    /**
     * Sign of the *unwrapped* value by most-significant-nonzero-digit scan
     * (paper section 3.6): negative iff the most significant nonzero digit
     * is -1. Returns false for zero.
     *
     * This equals the two's complement sign bit only for numbers whose
     * unwrapped value fits in [-2^63, 2^63), which the overflow
     * normalization of section 3.5 guarantees for every ALU result.
     */
    bool
    signNegative() const
    {
        const std::uint64_t nz = plusBits | minusBits;
        if (nz == 0)
            return false;
        const std::uint64_t top = std::uint64_t{1} << (63 - clzNonzero(nz));
        return (minusBits & top) != 0;
    }

    /**
     * Least significant digit is nonzero, i.e. the value is odd. A 2-input
     * OR of the two encoding bits of digit 0 (paper section 3.6).
     */
    bool lsbSet() const { return ((plusBits | minusBits) & 1) != 0; }

    /**
     * Number of trailing zero digits; equals CTTZ of the two's complement
     * value (the lowest nonzero digit position is the lowest set bit of the
     * value). Returns 64 for zero.
     */
    unsigned trailingZeroDigits() const;

    /** Representation equality (same digits, not just same value). */
    bool
    operator==(const RbNum &other) const
    {
        return plusBits == other.plusBits && minusBits == other.minusBits;
    }

    /** Render digits most-significant first, e.g. "<0,1,0,-1>". */
    std::string toString(unsigned ndigits = 64) const;

  private:
    static unsigned clzNonzero(std::uint64_t v);

    std::uint64_t plusBits = 0;
    std::uint64_t minusBits = 0;
};

} // namespace rbsim

#endif // RBSIM_RB_RBNUM_HH
