/**
 * @file
 * NEON (aarch64 Advanced SIMD) backend for the batched RB kernels: two
 * 64-digit numbers per vector, the same lane_math.hh formulas as the
 * scalar and AVX2 backends. Advanced SIMD is architecturally mandatory
 * on aarch64, so there is no runtime feature probe — the dispatcher
 * selects this table unconditionally on that architecture (unless
 * RBSIM_FORCE_SCALAR pins the portable path).
 *
 * Structure mirrors kernels_avx2.cc one-to-one; with only two lanes
 * per vector the mulReduce pair trick uses vzip1q/vzip2q instead of
 * unpack+permute. Tail lanes (n % 2) run the scalar lane functions.
 */

#include "rb/simd/kernels.hh"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "rb/simd/lane_math.hh"

namespace rbsim::simd::detail_neon
{

namespace
{

inline uint64x2_t
bcast(std::uint64_t v)
{
    return vdupq_n_u64(v);
}

/** NEON has no 64-bit vmvnq; complement via XOR with all-ones. */
inline uint64x2_t
vmvnq_u64_custom(uint64x2_t v)
{
    return veorq_u64(v, vdupq_n_u64(~std::uint64_t{0}));
}

struct VecAdd
{
    uint64x2_t plus;
    uint64x2_t minus;
    uint64x2_t bogus; //!< bit-63 mask per lane
    uint64x2_t ovf;   //!< bit-63 mask per lane
};

/** laneAddRaw + laneNormalizeQuad on two lanes. */
inline VecAdd
vecAdd(uint64x2_t xp, uint64x2_t xm, uint64x2_t yp, uint64x2_t ym)
{
    const uint64x2_t msd = bcast(std::uint64_t{1} << 63);

    const uint64x2_t z_p2 = vandq_u64(xp, yp);
    const uint64x2_t z_m2 = vandq_u64(xm, ym);
    const uint64x2_t notxm_ym = vmvnq_u64_custom(vorrq_u64(xm, ym));
    const uint64x2_t notxp_yp = vmvnq_u64_custom(vorrq_u64(xp, yp));
    const uint64x2_t z_p1 = vandq_u64(veorq_u64(xp, yp), notxm_ym);
    const uint64x2_t z_m1 = vandq_u64(veorq_u64(xm, ym), notxp_yp);

    const uint64x2_t bn = notxm_ym;
    const uint64x2_t bn1 =
        vorrq_u64(vshlq_n_u64(bn, 1), vdupq_n_u64(1));
    const uint64x2_t not_bn1 = vmvnq_u64_custom(bn1);

    const uint64x2_t t_plus = vorrq_u64(z_p2, vandq_u64(z_p1, bn1));
    const uint64x2_t t_minus =
        vorrq_u64(z_m2, vandq_u64(z_m1, not_bn1));
    const uint64x2_t z1 = vorrq_u64(z_p1, z_m1);
    const uint64x2_t d_plus = vandq_u64(z1, not_bn1);
    const uint64x2_t d_minus = vandq_u64(z1, bn1);

    const uint64x2_t c_plus = vshlq_n_u64(t_plus, 1);
    const uint64x2_t c_minus = vshlq_n_u64(t_minus, 1);

    const uint64x2_t raw_p =
        vorrq_u64(vbicq_u64(d_plus, c_minus), vbicq_u64(c_plus, d_minus));
    const uint64x2_t raw_m =
        vorrq_u64(vbicq_u64(d_minus, c_plus), vbicq_u64(c_minus, d_plus));
    const uint64x2_t tp63 = vandq_u64(t_plus, msd);
    const uint64x2_t tm63 = vandq_u64(t_minus, msd);

    const uint64x2_t bogus_p = vandq_u64(tp63, vandq_u64(raw_m, msd));
    const uint64x2_t bogus_m = vandq_u64(tm63, vandq_u64(raw_p, msd));
    uint64x2_t sp = vorrq_u64(vbicq_u64(raw_p, bogus_m), bogus_p);
    uint64x2_t sm = vorrq_u64(vbicq_u64(raw_m, bogus_p), bogus_m);
    const uint64x2_t cp = vbicq_u64(tp63, bogus_p);
    const uint64x2_t cm = vbicq_u64(tm63, bogus_m);
    uint64x2_t ovf = vorrq_u64(cp, cm);

    const uint64x2_t rest = bcast((std::uint64_t{1} << 63) - 1);
    const uint64x2_t rest_neg =
        vcgtq_u64(vandq_u64(sm, rest), vandq_u64(sp, rest));
    const uint64x2_t flip_up =
        vbicq_u64(vandq_u64(sp, msd), rest_neg);
    const uint64x2_t flip_down =
        vandq_u64(vandq_u64(sm, msd), rest_neg);
    sp = vorrq_u64(vbicq_u64(sp, flip_up), flip_down);
    sm = vorrq_u64(vbicq_u64(sm, flip_down), flip_up);
    ovf = vorrq_u64(ovf, vorrq_u64(flip_up, flip_down));

    return VecAdd{sp, sm, vorrq_u64(bogus_p, bogus_m), ovf};
}

/** laneShiftLeftDigits on two lanes with per-lane counts. */
inline void
vecShiftLeftDigits(uint64x2_t &xp, uint64x2_t &xm, uint64x2_t k)
{
    const uint64x2_t msd = bcast(std::uint64_t{1} << 63);
    const uint64x2_t k_is0 = vceqzq_u64(k);

    uint64x2_t sp = vshlq_u64(xp, vreinterpretq_s64_u64(k));
    uint64x2_t sm = vshlq_u64(xm, vreinterpretq_s64_u64(k));

    const uint64x2_t rest = bcast((std::uint64_t{1} << 63) - 1);
    const uint64x2_t rest_neg =
        vcgtq_u64(vandq_u64(sm, rest), vandq_u64(sp, rest));
    const uint64x2_t flip_up =
        vbicq_u64(vbicq_u64(vandq_u64(sp, msd), rest_neg), k_is0);
    const uint64x2_t flip_down =
        vbicq_u64(vandq_u64(vandq_u64(sm, msd), rest_neg), k_is0);
    xp = vorrq_u64(vbicq_u64(sp, flip_up), flip_down);
    xm = vorrq_u64(vbicq_u64(sm, flip_down), flip_up);
}

inline void
storeFlags(std::uint8_t *bogus, std::uint8_t *ovf, uint64x2_t bogus_v,
           uint64x2_t ovf_v, std::size_t i)
{
    bogus[i] = static_cast<std::uint8_t>(vgetq_lane_u64(bogus_v, 0) >> 63);
    bogus[i + 1] =
        static_cast<std::uint8_t>(vgetq_lane_u64(bogus_v, 1) >> 63);
    ovf[i] = static_cast<std::uint8_t>(vgetq_lane_u64(ovf_v, 0) >> 63);
    ovf[i + 1] = static_cast<std::uint8_t>(vgetq_lane_u64(ovf_v, 1) >> 63);
}

void
neonAddBatch(const std::uint64_t *ap, const std::uint64_t *am,
             const std::uint64_t *bp, const std::uint64_t *bm,
             std::uint64_t *sp, std::uint64_t *sm, std::uint8_t *bogus,
             std::uint8_t *ovf, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const VecAdd r = vecAdd(vld1q_u64(ap + i), vld1q_u64(am + i),
                                vld1q_u64(bp + i), vld1q_u64(bm + i));
        vst1q_u64(sp + i, r.plus);
        vst1q_u64(sm + i, r.minus);
        storeFlags(bogus, ovf, r.bogus, r.ovf, i);
    }
    for (; i < n; ++i) {
        const LaneAdd r = laneAdd(ap[i], am[i], bp[i], bm[i]);
        sp[i] = r.plus;
        sm[i] = r.minus;
        bogus[i] = static_cast<std::uint8_t>(r.bogus);
        ovf[i] = static_cast<std::uint8_t>(r.ovf);
    }
}

void
neonScaledAddBatch(const std::uint64_t *ap, const std::uint64_t *am,
                   const std::uint8_t *shift, const std::uint64_t *bp,
                   const std::uint64_t *bm, std::uint64_t *sp,
                   std::uint64_t *sm, std::uint8_t *bogus,
                   std::uint8_t *ovf, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        uint64x2_t k = vdupq_n_u64(0);
        k = vsetq_lane_u64(shift[i], k, 0);
        k = vsetq_lane_u64(shift[i + 1], k, 1);
        uint64x2_t xp = vld1q_u64(ap + i);
        uint64x2_t xm = vld1q_u64(am + i);
        vecShiftLeftDigits(xp, xm, k);
        const VecAdd r =
            vecAdd(xp, xm, vld1q_u64(bp + i), vld1q_u64(bm + i));
        vst1q_u64(sp + i, r.plus);
        vst1q_u64(sm + i, r.minus);
        storeFlags(bogus, ovf, r.bogus, r.ovf, i);
    }
    for (; i < n; ++i) {
        const LanePair a = laneShiftLeftDigits(ap[i], am[i], shift[i]);
        const LaneAdd r = laneAdd(a.plus, a.minus, bp[i], bm[i]);
        sp[i] = r.plus;
        sm[i] = r.minus;
        bogus[i] = static_cast<std::uint8_t>(r.bogus);
        ovf[i] = static_cast<std::uint8_t>(r.ovf);
    }
}

void
neonFromTcBatch(const std::uint64_t *w, std::uint64_t *p,
                std::uint64_t *m, std::size_t n)
{
    const uint64x2_t msd = bcast(std::uint64_t{1} << 63);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t v = vld1q_u64(w + i);
        vst1q_u64(p + i, vbicq_u64(v, msd));
        vst1q_u64(m + i, vandq_u64(v, msd));
    }
    for (; i < n; ++i) {
        const LanePair r = laneFromTc(w[i]);
        p[i] = r.plus;
        m[i] = r.minus;
    }
}

void
neonToTcBatch(const std::uint64_t *p, const std::uint64_t *m,
              std::uint64_t *w, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_u64(w + i, vsubq_u64(vld1q_u64(p + i), vld1q_u64(m + i)));
    for (; i < n; ++i)
        w[i] = p[i] - m[i];
}

/** Shared two-lane re-sign at an arbitrary digit position. */
inline void
vecResign(uint64x2_t &sp, uint64x2_t &sm, uint64x2_t msd, uint64x2_t rest)
{
    const uint64x2_t rest_neg =
        vcgtq_u64(vandq_u64(sm, rest), vandq_u64(sp, rest));
    const uint64x2_t flip_up =
        vbicq_u64(vandq_u64(sp, msd), rest_neg);
    const uint64x2_t flip_down =
        vandq_u64(vandq_u64(sm, msd), rest_neg);
    sp = vorrq_u64(vbicq_u64(sp, flip_up), flip_down);
    sm = vorrq_u64(vbicq_u64(sm, flip_down), flip_up);
}

void
neonNormalizeMsdBatch(std::uint64_t *p, std::uint64_t *m, std::size_t n)
{
    const uint64x2_t msd = bcast(std::uint64_t{1} << 63);
    const uint64x2_t rest = bcast((std::uint64_t{1} << 63) - 1);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        uint64x2_t sp = vld1q_u64(p + i);
        uint64x2_t sm = vld1q_u64(m + i);
        vecResign(sp, sm, msd, rest);
        vst1q_u64(p + i, sp);
        vst1q_u64(m + i, sm);
    }
    for (; i < n; ++i) {
        const std::uint64_t restw = (std::uint64_t{1} << 63) - 1;
        const std::uint64_t rest_neg =
            (m[i] & restw) > (p[i] & restw) ? 1u : 0u;
        const std::uint64_t flip_up = (p[i] >> 63) & (rest_neg ^ 1);
        const std::uint64_t flip_down = (m[i] >> 63) & rest_neg;
        p[i] = (p[i] & ~(flip_up << 63)) | (flip_down << 63);
        m[i] = (m[i] & ~(flip_down << 63)) | (flip_up << 63);
    }
}

void
neonExtractLongwordBatch(std::uint64_t *p, std::uint64_t *m,
                         std::size_t n)
{
    const uint64x2_t lmask = bcast(0xffffffffull);
    const uint64x2_t msd = bcast(std::uint64_t{1} << 31);
    const uint64x2_t rest = bcast((std::uint64_t{1} << 31) - 1);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        uint64x2_t sp = vandq_u64(vld1q_u64(p + i), lmask);
        uint64x2_t sm = vandq_u64(vld1q_u64(m + i), lmask);
        vecResign(sp, sm, msd, rest);
        vst1q_u64(p + i, sp);
        vst1q_u64(m + i, sm);
    }
    for (; i < n; ++i) {
        const LanePair r = laneExtractLongword(p[i], m[i]);
        p[i] = r.plus;
        m[i] = r.minus;
    }
}

unsigned
neonMulReduce(std::uint64_t *p, std::uint64_t *m, std::size_t n)
{
    unsigned levels = 0;
    while (n > 1) {
        std::size_t out = 0;
        std::size_t i = 0;
        // Four consecutive lanes -> two pairwise sums: uzp1/uzp2 of the
        // two vector halves give pair-evens {0,2} and pair-odds {1,3}
        // already in output order.
        for (; i + 4 <= n; i += 4) {
            const uint64x2_t p0 = vld1q_u64(p + i);
            const uint64x2_t p1 = vld1q_u64(p + i + 2);
            const uint64x2_t m0 = vld1q_u64(m + i);
            const uint64x2_t m1 = vld1q_u64(m + i + 2);
            const VecAdd r = vecAdd(vuzp1q_u64(p0, p1), vuzp1q_u64(m0, m1),
                                    vuzp2q_u64(p0, p1), vuzp2q_u64(m0, m1));
            vst1q_u64(p + out, r.plus);
            vst1q_u64(m + out, r.minus);
            out += 2;
        }
        for (; i + 1 < n; i += 2) {
            const LaneAdd r = laneAdd(p[i], m[i], p[i + 1], m[i + 1]);
            p[out] = r.plus;
            m[out] = r.minus;
            ++out;
        }
        if (n % 2) {
            p[out] = p[n - 1];
            m[out] = m[n - 1];
            ++out;
        }
        n = out;
        ++levels;
    }
    return levels;
}

constexpr KernelOps kNeonKernels = {
    neonAddBatch,        neonScaledAddBatch,
    neonFromTcBatch,     neonToTcBatch,
    neonNormalizeMsdBatch, neonExtractLongwordBatch,
    neonMulReduce,
};

} // namespace

const KernelOps &
table()
{
    return kNeonKernels;
}

} // namespace rbsim::simd::detail_neon

#endif // defined(__aarch64__)
