/**
 * @file
 * Batched redundant binary kernels behind runtime CPU-feature dispatch.
 *
 * Every kernel operates on structure-of-arrays operands: contiguous
 * `plus[]` / `minus[]` plane arrays (see rb_batch.hh for the container
 * the core uses). Each kernel exists in a portable scalar form and, on
 * hosts that have them, AVX2 (x86-64) or NEON (aarch64) forms. All
 * backends evaluate the identical straight-line formulas from
 * lane_math.hh, so results are bit-identical by construction — CI
 * asserts this (tests/test_rb_simd.cc and the forced-scalar matrix
 * lane).
 *
 * Dispatch is resolved once, at first use:
 *   - `RBSIM_FORCE_SCALAR` in the environment (set to anything but
 *     "0") pins the portable backend — the A/B and CI override;
 *   - otherwise x86-64 hosts with AVX2 (checked via
 *     __builtin_cpu_supports) get the AVX2 table, aarch64 hosts the
 *     NEON table, and everything else the scalar table.
 *
 * The SIMD translation units are always compiled (with per-file
 * `-mavx2`); `RBSIM_NATIVE` remains a separate, orthogonal opt-in that
 * tunes the *whole* build with -march=native. See
 * docs/PERFORMANCE.md §6.
 */

#ifndef RBSIM_RB_SIMD_KERNELS_HH
#define RBSIM_RB_SIMD_KERNELS_HH

#include <cstddef>
#include <cstdint>

namespace rbsim::simd
{

/**
 * A backend's kernel table. All array arguments may alias only as
 * documented on each member; `n` is a lane count, not a byte count.
 * Flag outputs are 0/1 bytes.
 */
struct KernelOps
{
    /**
     * sum[i] = normalize(a[i] + b[i]) — the batched rbAdd. `bogus[i]`
     * and `ovf[i]` receive the bogusCorrected / tcOverflow flags.
     * Output arrays may alias the inputs lane-for-lane.
     */
    void (*addBatch)(const std::uint64_t *ap, const std::uint64_t *am,
                     const std::uint64_t *bp, const std::uint64_t *bm,
                     std::uint64_t *sp, std::uint64_t *sm,
                     std::uint8_t *bogus, std::uint8_t *ovf,
                     std::size_t n);

    /**
     * sum[i] = normalize((a[i] << shift[i]) + b[i]) — the batched
     * rbScaledAdd. A lane with shift[i] == 0 degenerates to addBatch
     * exactly (no MSD re-sign of the unshifted operand, matching
     * rbShiftLeftDigits' k == 0 identity). shift[i] must be < 64.
     */
    void (*scaledAddBatch)(const std::uint64_t *ap,
                           const std::uint64_t *am,
                           const std::uint8_t *shift,
                           const std::uint64_t *bp,
                           const std::uint64_t *bm, std::uint64_t *sp,
                           std::uint64_t *sm, std::uint8_t *bogus,
                           std::uint8_t *ovf, std::size_t n);

    /** (p[i], m[i]) = RbNum::fromTc(w[i]) — hardwired TC -> RB. */
    void (*fromTcBatch)(const std::uint64_t *w, std::uint64_t *p,
                        std::uint64_t *m, std::size_t n);

    /** w[i] = p[i] - m[i] — the RB -> TC carry-propagate view. */
    void (*toTcBatch)(const std::uint64_t *p, const std::uint64_t *m,
                      std::uint64_t *w, std::size_t n);

    /** In-place MSD re-sign at digit 63 (batched normalizeMsd). */
    void (*normalizeMsdBatch)(std::uint64_t *p, std::uint64_t *m,
                              std::size_t n);

    /** In-place longword extraction (batched extractLongword). */
    void (*extractLongwordBatch)(std::uint64_t *p, std::uint64_t *m,
                                 std::size_t n);

    /**
     * In-place pairwise tree reduction of n partial products (the
     * multiplier's reduceTree): repeated rounds of
     * out[j] = normalize(lane[2j] + lane[2j+1]) with an odd leftover
     * passed through, until one lane remains in (p[0], m[0]). Returns
     * the number of rounds. n == 0 is a no-op returning 0.
     */
    unsigned (*mulReduce)(std::uint64_t *p, std::uint64_t *m,
                          std::size_t n);
};

/** Which table dispatch selected. */
enum class Backend
{
    Scalar,
    Avx2,
    Neon,
};

/** The dispatched table (resolved once; honors RBSIM_FORCE_SCALAR). */
const KernelOps &kernels();

/** The portable table, regardless of dispatch — the A/B reference. */
const KernelOps &scalarKernels();

/** Backend behind kernels(). */
Backend activeBackend();

/** Human-readable name of activeBackend(): "scalar", "avx2", "neon". */
const char *backendName();

/** rbSub is rbAdd of the negated subtrahend — a plane swap, so the
 *  batched subtraction is addBatch with b's plane arrays exchanged. */
inline void
rbSubBatch(const KernelOps &k, const std::uint64_t *ap,
           const std::uint64_t *am, const std::uint64_t *bp,
           const std::uint64_t *bm, std::uint64_t *sp, std::uint64_t *sm,
           std::uint8_t *bogus, std::uint8_t *ovf, std::size_t n)
{
    k.addBatch(ap, am, bm, bp, sp, sm, bogus, ovf, n);
}

} // namespace rbsim::simd

#endif // RBSIM_RB_SIMD_KERNELS_HH
