/**
 * @file
 * Branchless per-lane formulation of the redundant binary kernels.
 *
 * The batch backends (scalar loop, AVX2, NEON) all evaluate the same
 * straight-line bit-plane formulas defined here; the SIMD variants are
 * transliterations of these functions onto 64-bit vector lanes. Keeping
 * the math in one header is what makes "bit-identical across backends"
 * a structural property instead of a testing aspiration: a backend can
 * only diverge by mistranslating an operation, which the batch-vs-scalar
 * equivalence suite (tests/test_rb_simd.cc) and the rbalu/slice fuzz
 * oracles then catch.
 *
 * The formulas are the branchless rendering of the reference scalar
 * path (`rbAddRaw` + `normalizeQuad` + `rbShiftLeftDigits` +
 * `extractLongword`); tests assert exact agreement with those reference
 * functions over random plane pairs and all carry/overflow corner
 * cases. One non-obvious identity used throughout: the planes of a
 * legal number are disjoint, so "the most significant nonzero digit in
 * a range is -1" is exactly the unsigned comparison
 * `(minus & range) > (plus & range)` — no digit scan needed.
 */

#ifndef RBSIM_RB_SIMD_LANE_MATH_HH
#define RBSIM_RB_SIMD_LANE_MATH_HH

#include <cstdint>

namespace rbsim::simd
{

/** One lane's fully-normalized add result. */
struct LaneAdd
{
    std::uint64_t plus;
    std::uint64_t minus;
    std::uint64_t bogus; //!< 1 iff a bogus overflow was cancelled
    std::uint64_t ovf;   //!< 1 iff two's complement overflow
};

/**
 * Raw carry-free addition, identical to rbAddRaw but with the carry-out
 * kept as the top bit of the transfer planes (tp63/tm63) instead of an
 * int. Pure bit-plane logic; every operation is lane-local.
 */
struct LaneRaw
{
    std::uint64_t plus;
    std::uint64_t minus;
    std::uint64_t tp63; //!< 0/1: positive carry out of digit 63
    std::uint64_t tm63; //!< 0/1: negative carry out of digit 63
};

inline LaneRaw
laneAddRaw(std::uint64_t xp, std::uint64_t xm, std::uint64_t yp,
           std::uint64_t ym)
{
    // Per-position digit sums z_i = x_i + y_i, classified by value.
    const std::uint64_t z_p2 = xp & yp;
    const std::uint64_t z_m2 = xm & ym;
    const std::uint64_t z_p1 = (xp ^ yp) & ~xm & ~ym;
    const std::uint64_t z_m1 = (xm ^ ym) & ~xp & ~yp;

    // bn1_i = "both digits at position i-1 nonnegative" (true below 0).
    const std::uint64_t bn = ~xm & ~ym;
    const std::uint64_t bn1 = (bn << 1) | 1;

    // Transfer t and interim digit d per the signed-digit rule.
    const std::uint64_t t_plus = z_p2 | (z_p1 & bn1);
    const std::uint64_t t_minus = z_m2 | (z_m1 & ~bn1);
    const std::uint64_t d_plus = (z_p1 | z_m1) & ~bn1;
    const std::uint64_t d_minus = (z_p1 | z_m1) & bn1;

    const std::uint64_t c_plus = t_plus << 1;
    const std::uint64_t c_minus = t_minus << 1;

    LaneRaw r;
    r.plus = (d_plus & ~c_minus) | (c_plus & ~d_minus);
    r.minus = (d_minus & ~c_plus) | (c_minus & ~d_plus);
    r.tp63 = t_plus >> 63;
    r.tm63 = t_minus >> 63;
    return r;
}

/**
 * Section 3.5 normalization of a raw sum (branchless normalizeQuad):
 * cancel bogus overflow, flag genuine overflow, re-sign the MSD so the
 * unwrapped value lands in [-2^63, 2^63).
 */
inline LaneAdd
laneNormalizeQuad(LaneRaw r)
{
    const std::uint64_t msd = std::uint64_t{1} << 63;

    // Step 1: bogus overflow — carry-out and MSD of opposite signs
    // cancel (<1,-1> -> <0,1> at positions 64/63, and the mirror).
    const std::uint64_t bogus_p = r.tp63 & (r.minus >> 63);
    const std::uint64_t bogus_m = r.tm63 & (r.plus >> 63);
    std::uint64_t sp = (r.plus & ~(bogus_m << 63)) | (bogus_p << 63);
    std::uint64_t sm = (r.minus & ~(bogus_p << 63)) | (bogus_m << 63);
    const std::uint64_t cp = r.tp63 & ~bogus_p;
    const std::uint64_t cm = r.tm63 & ~bogus_m;

    // Step 2: a surviving carry is a genuine two's complement overflow
    // (the MSD is provably zero then; the carry is simply dropped).
    std::uint64_t ovf = cp | cm;

    // Step 3: re-sign the MSD. "Rest is negative" == its most
    // significant nonzero digit is -1 == (sm & rest) > (sp & rest),
    // because the planes are disjoint.
    const std::uint64_t rest = msd - 1;
    const std::uint64_t rest_neg = (sm & rest) > (sp & rest) ? 1u : 0u;
    const std::uint64_t flip_up = (sp >> 63) & (rest_neg ^ 1);
    const std::uint64_t flip_down = (sm >> 63) & rest_neg;
    sp = (sp & ~(flip_up << 63)) | (flip_down << 63);
    sm = (sm & ~(flip_down << 63)) | (flip_up << 63);
    ovf |= flip_up | flip_down;

    return LaneAdd{sp, sm, bogus_p | bogus_m, ovf};
}

/** Full normalized add: rbAdd's value and flags, branchlessly. */
inline LaneAdd
laneAdd(std::uint64_t xp, std::uint64_t xm, std::uint64_t yp,
        std::uint64_t ym)
{
    return laneNormalizeQuad(laneAddRaw(xp, xm, yp, ym));
}

/** One lane's plane pair (shift/conversion results carry no flags). */
struct LanePair
{
    std::uint64_t plus;
    std::uint64_t minus;
};

/**
 * Digit left shift with MSD re-sign (rbShiftLeftDigits): shift both
 * planes, then renormalize the top digit — except for k == 0, which is
 * the identity (the scalar reference returns the operand untouched, so
 * a k == 0 lane must not be re-signed: operands from the fuzz oracles'
 * redundant-encoding space may be unnormalized).
 */
inline LanePair
laneShiftLeftDigits(std::uint64_t xp, std::uint64_t xm, unsigned k)
{
    const std::uint64_t enable =
        k == 0 ? 0 : ~std::uint64_t{0}; // all-ones when k != 0
    std::uint64_t sp = xp << k;
    std::uint64_t sm = xm << k;
    const std::uint64_t rest = (std::uint64_t{1} << 63) - 1;
    const std::uint64_t rest_neg = (sm & rest) > (sp & rest) ? 1u : 0u;
    const std::uint64_t flip_up = (sp >> 63) & (rest_neg ^ 1) & enable;
    const std::uint64_t flip_down = (sm >> 63) & rest_neg & enable;
    sp = (sp & ~(flip_up << 63)) | (flip_down << 63);
    sm = (sm & ~(flip_down << 63)) | (flip_up << 63);
    return LanePair{sp, sm};
}

/**
 * Quadword-to-longword extraction (extractLongword): keep digits 31..0
 * and re-sign digit 31 so the 32-digit value lands in [-2^31, 2^31).
 */
inline LanePair
laneExtractLongword(std::uint64_t xp, std::uint64_t xm)
{
    const std::uint64_t msd = std::uint64_t{1} << 31;
    std::uint64_t sp = xp & 0xffffffffull;
    std::uint64_t sm = xm & 0xffffffffull;
    const std::uint64_t rest = msd - 1;
    const std::uint64_t rest_neg = (sm & rest) > (sp & rest) ? 1u : 0u;
    const std::uint64_t flip_up = ((sp >> 31) & 1) & (rest_neg ^ 1);
    const std::uint64_t flip_down = ((sm >> 31) & 1) & rest_neg;
    sp = (sp & ~(flip_up << 31)) | (flip_down << 31);
    sm = (sm & ~(flip_down << 31)) | (flip_up << 31);
    return LanePair{sp, sm};
}

/** Hardwired TC -> RB conversion (RbNum::fromTc). */
inline LanePair
laneFromTc(std::uint64_t w)
{
    const std::uint64_t msb = w & (std::uint64_t{1} << 63);
    return LanePair{w & ~msb, msb};
}

} // namespace rbsim::simd

#endif // RBSIM_RB_SIMD_LANE_MATH_HH
