/**
 * @file
 * AVX2 backend for the batched RB kernels: four 64-digit numbers per
 * vector, each lane evaluating exactly the lane_math.hh formulas.
 *
 * This TU is compiled with -mavx2 on every x86-64 build (see
 * src/CMakeLists.txt); nothing in it runs unless the dispatcher in
 * kernels.cc observed __builtin_cpu_supports("avx2").
 *
 * Two idioms carry the whole file:
 *   - unsigned 64-bit compare (the disjoint-planes "rest is negative"
 *     test) via signed compare of sign-bit-flipped operands;
 *   - flags live as bit-63 (or bit-31) masks inside the vector until
 *     the very end, where movemask_pd peels the four sign bits off in
 *     one instruction.
 * Tail lanes (n % 4) always run the scalar lane functions — identical
 * math, so tails are not a correctness special case.
 */

#include "rb/simd/kernels.hh"

#if defined(__x86_64__)

#include <immintrin.h>

#include <cstring>

#include "rb/simd/lane_math.hh"

namespace rbsim::simd::detail_avx2
{

namespace
{

inline __m256i
bcast(std::uint64_t v)
{
    return _mm256_set1_epi64x(static_cast<long long>(v));
}

/** Unsigned a > b per 64-bit lane (all-ones mask where true). */
inline __m256i
cmpgtU64(__m256i a, __m256i b)
{
    const __m256i flip = bcast(std::uint64_t{1} << 63);
    return _mm256_cmpgt_epi64(_mm256_xor_si256(a, flip),
                              _mm256_xor_si256(b, flip));
}

/** a & ~b (note: andnot's first operand is the complemented one). */
inline __m256i
andnot(__m256i a, __m256i b)
{
    return _mm256_andnot_si256(b, a);
}

/** The four lane sign bits (bit 63) as a 4-bit integer mask. */
inline int
signMask(__m256i v)
{
    return _mm256_movemask_pd(_mm256_castsi256_pd(v));
}

struct VecAdd
{
    __m256i plus;
    __m256i minus;
    __m256i bogus; //!< bit-63 mask per lane
    __m256i ovf;   //!< bit-63 mask per lane
};

/** laneAddRaw + laneNormalizeQuad on four lanes. */
inline VecAdd
vecAdd(__m256i xp, __m256i xm, __m256i yp, __m256i ym)
{
    const __m256i msd = bcast(std::uint64_t{1} << 63);
    const __m256i ones = _mm256_set1_epi64x(-1);

    // --- raw carry-free add (laneAddRaw) ---
    const __m256i z_p2 = _mm256_and_si256(xp, yp);
    const __m256i z_m2 = _mm256_and_si256(xm, ym);
    const __m256i notxm_ym =
        _mm256_andnot_si256(_mm256_or_si256(xm, ym), ones);
    const __m256i notxp_yp =
        _mm256_andnot_si256(_mm256_or_si256(xp, yp), ones);
    const __m256i z_p1 =
        _mm256_and_si256(_mm256_xor_si256(xp, yp), notxm_ym);
    const __m256i z_m1 =
        _mm256_and_si256(_mm256_xor_si256(xm, ym), notxp_yp);

    const __m256i bn = notxm_ym;
    const __m256i bn1 = _mm256_or_si256(_mm256_slli_epi64(bn, 1),
                                        _mm256_set1_epi64x(1));

    const __m256i t_plus =
        _mm256_or_si256(z_p2, _mm256_and_si256(z_p1, bn1));
    const __m256i t_minus =
        _mm256_or_si256(z_m2, andnot(z_m1, bn1));
    const __m256i z1 = _mm256_or_si256(z_p1, z_m1);
    const __m256i d_plus = andnot(z1, bn1);
    const __m256i d_minus = _mm256_and_si256(z1, bn1);

    const __m256i c_plus = _mm256_slli_epi64(t_plus, 1);
    const __m256i c_minus = _mm256_slli_epi64(t_minus, 1);

    const __m256i raw_p = _mm256_or_si256(andnot(d_plus, c_minus),
                                          andnot(c_plus, d_minus));
    const __m256i raw_m = _mm256_or_si256(andnot(d_minus, c_plus),
                                          andnot(c_minus, d_plus));
    // Carry-out kept as a bit-63 mask.
    const __m256i tp63 = _mm256_and_si256(t_plus, msd);
    const __m256i tm63 = _mm256_and_si256(t_minus, msd);

    // --- normalizeQuad, flags as bit-63 masks ---
    const __m256i bogus_p =
        _mm256_and_si256(tp63, _mm256_and_si256(raw_m, msd));
    const __m256i bogus_m =
        _mm256_and_si256(tm63, _mm256_and_si256(raw_p, msd));
    __m256i sp = _mm256_or_si256(andnot(raw_p, bogus_m), bogus_p);
    __m256i sm = _mm256_or_si256(andnot(raw_m, bogus_p), bogus_m);
    const __m256i cp = andnot(tp63, bogus_p);
    const __m256i cm = andnot(tm63, bogus_m);
    __m256i ovf = _mm256_or_si256(cp, cm);

    const __m256i rest = bcast((std::uint64_t{1} << 63) - 1);
    const __m256i rest_neg = cmpgtU64(_mm256_and_si256(sm, rest),
                                      _mm256_and_si256(sp, rest));
    const __m256i flip_up =
        andnot(_mm256_and_si256(sp, msd), rest_neg);
    const __m256i flip_down =
        _mm256_and_si256(_mm256_and_si256(sm, msd), rest_neg);
    sp = _mm256_or_si256(andnot(sp, flip_up), flip_down);
    sm = _mm256_or_si256(andnot(sm, flip_down), flip_up);
    ovf = _mm256_or_si256(ovf, _mm256_or_si256(flip_up, flip_down));

    return VecAdd{sp, sm, _mm256_or_si256(bogus_p, bogus_m), ovf};
}

/** laneShiftLeftDigits on four lanes with per-lane counts (k < 64,
 *  lanes with k == 0 pass through unresigned). */
inline void
vecShiftLeftDigits(__m256i &xp, __m256i &xm, __m256i k)
{
    const __m256i msd = bcast(std::uint64_t{1} << 63);
    const __m256i zero = _mm256_setzero_si256();
    const __m256i k_is0 = _mm256_cmpeq_epi64(k, zero);

    __m256i sp = _mm256_sllv_epi64(xp, k);
    __m256i sm = _mm256_sllv_epi64(xm, k);

    const __m256i rest = bcast((std::uint64_t{1} << 63) - 1);
    const __m256i rest_neg = cmpgtU64(_mm256_and_si256(sm, rest),
                                      _mm256_and_si256(sp, rest));
    const __m256i flip_up = andnot(
        andnot(_mm256_and_si256(sp, msd), rest_neg), k_is0);
    const __m256i flip_down = andnot(
        _mm256_and_si256(_mm256_and_si256(sm, msd), rest_neg), k_is0);
    xp = _mm256_or_si256(andnot(sp, flip_up), flip_down);
    xm = _mm256_or_si256(andnot(sm, flip_down), flip_up);
}

inline __m256i
loadu(const std::uint64_t *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

inline void
storeu(std::uint64_t *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

inline void
storeFlags(std::uint8_t *bogus, std::uint8_t *ovf, __m256i bogus_v,
           __m256i ovf_v, std::size_t i)
{
    const int bm = signMask(bogus_v);
    const int om = signMask(ovf_v);
    for (int j = 0; j < 4; ++j) {
        bogus[i + static_cast<std::size_t>(j)] =
            static_cast<std::uint8_t>((bm >> j) & 1);
        ovf[i + static_cast<std::size_t>(j)] =
            static_cast<std::uint8_t>((om >> j) & 1);
    }
}

void
avx2AddBatch(const std::uint64_t *ap, const std::uint64_t *am,
             const std::uint64_t *bp, const std::uint64_t *bm,
             std::uint64_t *sp, std::uint64_t *sm, std::uint8_t *bogus,
             std::uint8_t *ovf, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const VecAdd r =
            vecAdd(loadu(ap + i), loadu(am + i), loadu(bp + i),
                   loadu(bm + i));
        storeu(sp + i, r.plus);
        storeu(sm + i, r.minus);
        storeFlags(bogus, ovf, r.bogus, r.ovf, i);
    }
    for (; i < n; ++i) {
        const LaneAdd r = laneAdd(ap[i], am[i], bp[i], bm[i]);
        sp[i] = r.plus;
        sm[i] = r.minus;
        bogus[i] = static_cast<std::uint8_t>(r.bogus);
        ovf[i] = static_cast<std::uint8_t>(r.ovf);
    }
}

void
avx2ScaledAddBatch(const std::uint64_t *ap, const std::uint64_t *am,
                   const std::uint8_t *shift, const std::uint64_t *bp,
                   const std::uint64_t *bm, std::uint64_t *sp,
                   std::uint64_t *sm, std::uint8_t *bogus,
                   std::uint8_t *ovf, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        std::uint32_t k4;
        std::memcpy(&k4, shift + i, sizeof(k4));
        const __m256i k = _mm256_cvtepu8_epi64(
            _mm_cvtsi32_si128(static_cast<int>(k4)));
        __m256i xp = loadu(ap + i);
        __m256i xm = loadu(am + i);
        vecShiftLeftDigits(xp, xm, k);
        const VecAdd r = vecAdd(xp, xm, loadu(bp + i), loadu(bm + i));
        storeu(sp + i, r.plus);
        storeu(sm + i, r.minus);
        storeFlags(bogus, ovf, r.bogus, r.ovf, i);
    }
    for (; i < n; ++i) {
        const LanePair a = laneShiftLeftDigits(ap[i], am[i], shift[i]);
        const LaneAdd r = laneAdd(a.plus, a.minus, bp[i], bm[i]);
        sp[i] = r.plus;
        sm[i] = r.minus;
        bogus[i] = static_cast<std::uint8_t>(r.bogus);
        ovf[i] = static_cast<std::uint8_t>(r.ovf);
    }
}

void
avx2FromTcBatch(const std::uint64_t *w, std::uint64_t *p,
                std::uint64_t *m, std::size_t n)
{
    const __m256i msd = bcast(std::uint64_t{1} << 63);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = loadu(w + i);
        const __m256i msb = _mm256_and_si256(v, msd);
        storeu(p + i, andnot(v, msd));
        storeu(m + i, msb);
    }
    for (; i < n; ++i) {
        const LanePair r = laneFromTc(w[i]);
        p[i] = r.plus;
        m[i] = r.minus;
    }
}

void
avx2ToTcBatch(const std::uint64_t *p, const std::uint64_t *m,
              std::uint64_t *w, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        storeu(w + i, _mm256_sub_epi64(loadu(p + i), loadu(m + i)));
    for (; i < n; ++i)
        w[i] = p[i] - m[i];
}

/** Shared four-lane re-sign at an arbitrary digit position. */
inline void
vecResign(__m256i &sp, __m256i &sm, __m256i msd, __m256i rest)
{
    const __m256i rest_neg = cmpgtU64(_mm256_and_si256(sm, rest),
                                      _mm256_and_si256(sp, rest));
    const __m256i flip_up =
        andnot(_mm256_and_si256(sp, msd), rest_neg);
    const __m256i flip_down =
        _mm256_and_si256(_mm256_and_si256(sm, msd), rest_neg);
    sp = _mm256_or_si256(andnot(sp, flip_up), flip_down);
    sm = _mm256_or_si256(andnot(sm, flip_down), flip_up);
}

void
avx2NormalizeMsdBatch(std::uint64_t *p, std::uint64_t *m, std::size_t n)
{
    const __m256i msd = bcast(std::uint64_t{1} << 63);
    const __m256i rest = bcast((std::uint64_t{1} << 63) - 1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i sp = loadu(p + i);
        __m256i sm = loadu(m + i);
        vecResign(sp, sm, msd, rest);
        storeu(p + i, sp);
        storeu(m + i, sm);
    }
    for (; i < n; ++i) {
        const std::uint64_t restw = (std::uint64_t{1} << 63) - 1;
        const std::uint64_t rest_neg =
            (m[i] & restw) > (p[i] & restw) ? 1u : 0u;
        const std::uint64_t flip_up = (p[i] >> 63) & (rest_neg ^ 1);
        const std::uint64_t flip_down = (m[i] >> 63) & rest_neg;
        p[i] = (p[i] & ~(flip_up << 63)) | (flip_down << 63);
        m[i] = (m[i] & ~(flip_down << 63)) | (flip_up << 63);
    }
}

void
avx2ExtractLongwordBatch(std::uint64_t *p, std::uint64_t *m,
                         std::size_t n)
{
    const __m256i lmask = bcast(0xffffffffull);
    const __m256i msd = bcast(std::uint64_t{1} << 31);
    const __m256i rest = bcast((std::uint64_t{1} << 31) - 1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i sp = _mm256_and_si256(loadu(p + i), lmask);
        __m256i sm = _mm256_and_si256(loadu(m + i), lmask);
        vecResign(sp, sm, msd, rest);
        storeu(p + i, sp);
        storeu(m + i, sm);
    }
    for (; i < n; ++i) {
        const LanePair r = laneExtractLongword(p[i], m[i]);
        p[i] = r.plus;
        m[i] = r.minus;
    }
}

unsigned
avx2MulReduce(std::uint64_t *p, std::uint64_t *m, std::size_t n)
{
    unsigned levels = 0;
    while (n > 1) {
        std::size_t out = 0;
        std::size_t i = 0;
        // Eight consecutive lanes -> four pairwise sums per iteration:
        // unpacklo/hi of the two vector halves give the pair-even and
        // pair-odd lanes in the interleaved order {0,2,1,3}, which one
        // permute after the add restores.
        for (; i + 8 <= n; i += 8) {
            const __m256i p0 = loadu(p + i), p1 = loadu(p + i + 4);
            const __m256i m0 = loadu(m + i), m1 = loadu(m + i + 4);
            const __m256i pe = _mm256_unpacklo_epi64(p0, p1);
            const __m256i po = _mm256_unpackhi_epi64(p0, p1);
            const __m256i me = _mm256_unpacklo_epi64(m0, m1);
            const __m256i mo = _mm256_unpackhi_epi64(m0, m1);
            const VecAdd r = vecAdd(pe, me, po, mo);
            storeu(p + out, _mm256_permute4x64_epi64(r.plus, 0xD8));
            storeu(m + out, _mm256_permute4x64_epi64(r.minus, 0xD8));
            out += 4;
        }
        for (; i + 1 < n; i += 2) {
            const LaneAdd r = laneAdd(p[i], m[i], p[i + 1], m[i + 1]);
            p[out] = r.plus;
            m[out] = r.minus;
            ++out;
        }
        if (n % 2) {
            p[out] = p[n - 1];
            m[out] = m[n - 1];
            ++out;
        }
        n = out;
        ++levels;
    }
    return levels;
}

constexpr KernelOps kAvx2Kernels = {
    avx2AddBatch,        avx2ScaledAddBatch,
    avx2FromTcBatch,     avx2ToTcBatch,
    avx2NormalizeMsdBatch, avx2ExtractLongwordBatch,
    avx2MulReduce,
};

} // namespace

const KernelOps &
table()
{
    return kAvx2Kernels;
}

} // namespace rbsim::simd::detail_avx2

#endif // defined(__x86_64__)
