/**
 * @file
 * Portable scalar backend and the runtime dispatch for the batched RB
 * kernels. The scalar loops below are the reference the SIMD backends
 * are measured against; they are also what every non-x86/non-aarch64
 * host runs. See kernels.hh for the dispatch rules.
 */

#include "rb/simd/kernels.hh"

#include <cstdlib>

#include "rb/simd/lane_math.hh"

namespace rbsim::simd
{

// Backend tables, defined in their own translation units so their
// instruction-set flags never leak into dispatch code. Only referenced
// behind the matching architecture guard.
namespace detail_avx2
{
const KernelOps &table();
}
namespace detail_neon
{
const KernelOps &table();
}

namespace
{

void
scalarAddBatch(const std::uint64_t *ap, const std::uint64_t *am,
               const std::uint64_t *bp, const std::uint64_t *bm,
               std::uint64_t *sp, std::uint64_t *sm, std::uint8_t *bogus,
               std::uint8_t *ovf, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const LaneAdd r = laneAdd(ap[i], am[i], bp[i], bm[i]);
        sp[i] = r.plus;
        sm[i] = r.minus;
        bogus[i] = static_cast<std::uint8_t>(r.bogus);
        ovf[i] = static_cast<std::uint8_t>(r.ovf);
    }
}

void
scalarScaledAddBatch(const std::uint64_t *ap, const std::uint64_t *am,
                     const std::uint8_t *shift, const std::uint64_t *bp,
                     const std::uint64_t *bm, std::uint64_t *sp,
                     std::uint64_t *sm, std::uint8_t *bogus,
                     std::uint8_t *ovf, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const LanePair a = laneShiftLeftDigits(ap[i], am[i], shift[i]);
        const LaneAdd r = laneAdd(a.plus, a.minus, bp[i], bm[i]);
        sp[i] = r.plus;
        sm[i] = r.minus;
        bogus[i] = static_cast<std::uint8_t>(r.bogus);
        ovf[i] = static_cast<std::uint8_t>(r.ovf);
    }
}

void
scalarFromTcBatch(const std::uint64_t *w, std::uint64_t *p,
                  std::uint64_t *m, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const LanePair r = laneFromTc(w[i]);
        p[i] = r.plus;
        m[i] = r.minus;
    }
}

void
scalarToTcBatch(const std::uint64_t *p, const std::uint64_t *m,
                std::uint64_t *w, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        w[i] = p[i] - m[i];
}

void
scalarNormalizeMsdBatch(std::uint64_t *p, std::uint64_t *m, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        // laneShiftLeftDigits with k != 0 is shift + re-sign; re-sign
        // alone is the same flip logic with the shift removed.
        const std::uint64_t rest = (std::uint64_t{1} << 63) - 1;
        const std::uint64_t rest_neg =
            (m[i] & rest) > (p[i] & rest) ? 1u : 0u;
        const std::uint64_t flip_up = (p[i] >> 63) & (rest_neg ^ 1);
        const std::uint64_t flip_down = (m[i] >> 63) & rest_neg;
        p[i] = (p[i] & ~(flip_up << 63)) | (flip_down << 63);
        m[i] = (m[i] & ~(flip_down << 63)) | (flip_up << 63);
    }
}

void
scalarExtractLongwordBatch(std::uint64_t *p, std::uint64_t *m,
                           std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const LanePair r = laneExtractLongword(p[i], m[i]);
        p[i] = r.plus;
        m[i] = r.minus;
    }
}

unsigned
scalarMulReduce(std::uint64_t *p, std::uint64_t *m, std::size_t n)
{
    unsigned levels = 0;
    while (n > 1) {
        std::size_t out = 0;
        for (std::size_t i = 0; i + 1 < n; i += 2) {
            const LaneAdd r = laneAdd(p[i], m[i], p[i + 1], m[i + 1]);
            p[out] = r.plus;
            m[out] = r.minus;
            ++out;
        }
        if (n % 2) {
            p[out] = p[n - 1];
            m[out] = m[n - 1];
            ++out;
        }
        n = out;
        ++levels;
    }
    return levels;
}

constexpr KernelOps kScalarKernels = {
    scalarAddBatch,        scalarScaledAddBatch,
    scalarFromTcBatch,     scalarToTcBatch,
    scalarNormalizeMsdBatch, scalarExtractLongwordBatch,
    scalarMulReduce,
};

bool
forceScalarRequested()
{
    const char *env = std::getenv("RBSIM_FORCE_SCALAR");
    return env != nullptr && *env != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
}

struct Dispatch
{
    const KernelOps *ops;
    Backend backend;
};

Dispatch
resolve()
{
    if (forceScalarRequested())
        return {&kScalarKernels, Backend::Scalar};
#if defined(__x86_64__)
    // The AVX2 table lives in kernels_avx2.cc (compiled with -mavx2);
    // the feature check stays in this TU so no AVX2 instruction can
    // execute before the check passes.
    if (__builtin_cpu_supports("avx2"))
        return {&detail_avx2::table(), Backend::Avx2};
#elif defined(__aarch64__)
    // Advanced SIMD is architecturally mandatory on aarch64.
    return {&detail_neon::table(), Backend::Neon};
#endif
    return {&kScalarKernels, Backend::Scalar};
}

const Dispatch &
dispatch()
{
    static const Dispatch d = resolve();
    return d;
}

} // namespace

const KernelOps &
kernels()
{
    return *dispatch().ops;
}

const KernelOps &
scalarKernels()
{
    return kScalarKernels;
}

Backend
activeBackend()
{
    return dispatch().backend;
}

const char *
backendName()
{
    switch (activeBackend()) {
      case Backend::Scalar: return "scalar";
      case Backend::Avx2: return "avx2";
      case Backend::Neon: return "neon";
    }
    return "scalar";
}

} // namespace rbsim::simd
