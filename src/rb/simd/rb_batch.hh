/**
 * @file
 * RbBatch: a fixed-capacity structure-of-arrays operand batch for the
 * SIMD kernels (kernels.hh).
 *
 * The container holds the two operand plane pairs, a per-lane digit
 * shift, and the result planes + flags as separate contiguous arrays —
 * the layout every kernel backend consumes directly. Capacity is fixed
 * at construction and `clear()` keeps the storage, so a batch owned by
 * a hot-path component obeys the zero-allocation invariant
 * (docs/PERFORMANCE.md §2; tests/test_allocfree.cc extends its
 * operator-new audit over the core's batch).
 *
 * One kernel call — scaledAddBatch — evaluates the whole batch: a lane
 * with shift 0 is exactly rbAdd, one with a nonzero shift exactly
 * rbScaledAdd, and subtraction is encoded at push time by swapping the
 * subtrahend's planes (rbSub == rbAdd of the negation, and negation is
 * a plane swap). This is what lets the core funnel every batchable RB
 * ALU op selected in a cycle through a single dispatch.
 */

#ifndef RBSIM_RB_SIMD_RB_BATCH_HH
#define RBSIM_RB_SIMD_RB_BATCH_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "rb/rbnum.hh"
#include "rb/simd/kernels.hh"

namespace rbsim::simd
{

class RbBatch
{
  public:
    explicit RbBatch(std::size_t capacity)
        : aPlus_(capacity), aMinus_(capacity), bPlus_(capacity),
          bMinus_(capacity), shift_(capacity), sumPlus_(capacity),
          sumMinus_(capacity), bogus_(capacity), ovf_(capacity)
    {
    }

    std::size_t size() const { return n_; }
    std::size_t capacity() const { return aPlus_.size(); }
    bool empty() const { return n_ == 0; }
    bool full() const { return n_ == capacity(); }

    /** Drop all lanes; keeps storage (never allocates/frees). */
    void clear() { n_ = 0; }

    /** Lane for sum = a + b. Returns the lane index. */
    std::size_t
    pushAdd(const RbNum &a, const RbNum &b)
    {
        return pushScaledAdd(a, 0, b);
    }

    /** Lane for sum = a - b (plane-swapped b; no extra work). */
    std::size_t
    pushSub(const RbNum &a, const RbNum &b)
    {
        return pushScaledAdd(a, 0, RbNum(b.minus(), b.plus()));
    }

    /** Lane for sum = (a << scale_log2 digits) + b. */
    std::size_t
    pushScaledAdd(const RbNum &a, unsigned scale_log2, const RbNum &b)
    {
        assert(n_ < capacity() && "RbBatch overflow");
        assert(scale_log2 < 64);
        const std::size_t i = n_++;
        aPlus_[i] = a.plus();
        aMinus_[i] = a.minus();
        bPlus_[i] = b.plus();
        bMinus_[i] = b.minus();
        shift_[i] = static_cast<std::uint8_t>(scale_log2);
        return i;
    }

    /** Evaluate every lane with one kernel call. */
    void
    run(const KernelOps &k)
    {
        k.scaledAddBatch(aPlus_.data(), aMinus_.data(), shift_.data(),
                         bPlus_.data(), bMinus_.data(), sumPlus_.data(),
                         sumMinus_.data(), bogus_.data(), ovf_.data(),
                         n_);
    }

    /** Results, valid after run(). */
    RbNum
    sum(std::size_t i) const
    {
        assert(i < n_);
        return RbNum(sumPlus_[i], sumMinus_[i]);
    }

    bool bogusCorrected(std::size_t i) const { return bogus_[i] != 0; }
    bool tcOverflow(std::size_t i) const { return ovf_[i] != 0; }

  private:
    std::vector<std::uint64_t> aPlus_, aMinus_, bPlus_, bMinus_;
    std::vector<std::uint8_t> shift_;
    std::vector<std::uint64_t> sumPlus_, sumMinus_;
    std::vector<std::uint8_t> bogus_, ovf_;
    std::size_t n_ = 0;
};

} // namespace rbsim::simd

#endif // RBSIM_RB_SIMD_RB_BATCH_HH
