/**
 * @file
 * Conversions between two's complement and redundant binary (section 3.2).
 *
 * TC -> RB needs no logic (the paper's hardwired mapping, provided by
 * RbNum::fromTc). RB -> TC is the expensive direction: a full
 * borrow-propagating subtraction X+ - X-. The simulator uses the host's
 * subtraction; `rbToTcRipple` additionally models the bit-serial borrow
 * chain explicitly so tests can validate the circuit formulation and the
 * gate-delay model can point at a concrete structure.
 */

#ifndef RBSIM_RB_CONVERT_HH
#define RBSIM_RB_CONVERT_HH

#include "rb/rbnum.hh"

namespace rbsim
{

/** Hardwired TC -> RB conversion (alias for RbNum::fromTc). */
inline RbNum
tcToRb(Word w)
{
    return RbNum::fromTc(w);
}

/** Fast RB -> TC conversion (the value of the number, wrapped to 64 bit). */
inline Word
rbToTc(const RbNum &x)
{
    return x.toTc();
}

/**
 * RB -> TC via an explicit bit-serial borrow-propagating subtractor,
 * mirroring the conversion circuit structure. Equivalent to rbToTc; used
 * by unit tests.
 */
Word rbToTcRipple(const RbNum &x);

} // namespace rbsim

#endif // RBSIM_RB_CONVERT_HH
