/**
 * @file
 * Conversions between two's complement and redundant binary (section 3.2).
 *
 * TC -> RB needs no logic (the paper's hardwired mapping, provided by
 * RbNum::fromTc). RB -> TC is the expensive direction: a full
 * borrow-propagating subtraction X+ - X-. The simulator uses the host's
 * subtraction; `rbToTcRipple` additionally models the bit-serial borrow
 * chain explicitly so tests can validate the circuit formulation and the
 * gate-delay model can point at a concrete structure.
 */

#ifndef RBSIM_RB_CONVERT_HH
#define RBSIM_RB_CONVERT_HH

#include "rb/rbnum.hh"

namespace rbsim
{

/** Hardwired TC -> RB conversion (alias for RbNum::fromTc). */
inline RbNum
tcToRb(Word w)
{
    return RbNum::fromTc(w);
}

/** Fast RB -> TC conversion (the value of the number, wrapped to 64 bit). */
inline Word
rbToTc(const RbNum &x)
{
    return x.toTc();
}

/**
 * RB -> TC via an explicit bit-serial borrow-propagating subtractor,
 * mirroring the conversion circuit structure. Equivalent to rbToTc; used
 * by unit tests.
 */
Word rbToTcRipple(const RbNum &x);

class Rng;

/**
 * A random *legal* redundant encoding of the two's complement value `w`.
 *
 * Starts from the hardwired fromTc encoding and applies random local
 * carry/borrow rewrites (+1 at digit i <-> -1 at digit i plus +1 at digit
 * i+1, and the mirror rule), each of which preserves the unwrapped value
 * exactly. The result therefore has the same unwrapped signed value as
 * fromTc(w) — so every section 3.6 predicate (sign scan, zero test, LSB,
 * trailing-zero count) must still agree with the TC value. This is what
 * the round-trip and ALU differential oracles feed the datapath, so the
 * equivalences are checked across the encoding space rather than only on
 * canonical conversions.
 * @param rewrites number of rewrite attempts (more = less canonical)
 */
RbNum redundantEncodingOf(Word w, Rng &rng, unsigned rewrites = 64);

} // namespace rbsim

#endif // RBSIM_RB_CONVERT_HH
