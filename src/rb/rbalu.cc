#include "rb/rbalu.hh"

namespace rbsim
{

RbRawSum
rbAddRaw(const RbNum &x, const RbNum &y)
{
    const std::uint64_t xp = x.plus(), xm = x.minus();
    const std::uint64_t yp = y.plus(), ym = y.minus();

    // Per-position digit sums z_i = x_i + y_i, classified by value.
    const std::uint64_t z_p2 = xp & yp;                    // z == +2
    const std::uint64_t z_m2 = xm & ym;                    // z == -2
    const std::uint64_t z_p1 = (xp ^ yp) & ~xm & ~ym;      // z == +1
    const std::uint64_t z_m1 = (xm ^ ym) & ~xp & ~yp;      // z == -1

    // bn_i: both input digits at position i are nonnegative. The transfer
    // rule inspects this predicate one position down (bn1_i = bn_{i-1});
    // below position 0 there are no digits, which counts as nonnegative.
    const std::uint64_t bn = ~xm & ~ym;
    const std::uint64_t bn1 = (bn << 1) | 1;

    // Transfer (intermediate carry) t_{i+1} and interim sum digit d_i:
    //   z=+2          -> t=+1, d=0
    //   z=+1, bn1     -> t=+1, d=-1
    //   z=+1, !bn1    -> t= 0, d=+1
    //   z=-1, bn1     -> t= 0, d=-1
    //   z=-1, !bn1    -> t=-1, d=+1
    //   z=-2          -> t=-1, d=0
    // The bn1 condition guarantees an incoming transfer never has the same
    // sign as the interim digit, so the final digit stays in {-1, 0, 1}.
    const std::uint64_t t_plus = z_p2 | (z_p1 & bn1);
    const std::uint64_t t_minus = z_m2 | (z_m1 & ~bn1);
    const std::uint64_t d_plus = (z_p1 | z_m1) & ~bn1;
    const std::uint64_t d_minus = (z_p1 | z_m1) & bn1;

    // Incoming transfers (carry into position i from position i-1).
    const std::uint64_t c_plus = t_plus << 1;
    const std::uint64_t c_minus = t_minus << 1;

    // Final digits: s_i = d_i + c_i, where (+1,+1) and (-1,-1) cannot
    // occur; (+1,-1) and (-1,+1) cancel to zero.
    const std::uint64_t s_plus = (d_plus & ~c_minus) | (c_plus & ~d_minus);
    const std::uint64_t s_minus = (d_minus & ~c_plus) | (c_minus & ~d_plus);

    int carry_out = 0;
    if (t_plus >> 63)
        carry_out = 1;
    else if (t_minus >> 63)
        carry_out = -1;

    return RbRawSum{RbNum(s_plus, s_minus), carry_out};
}

RbAddResult
rbAdd(const RbNum &x, const RbNum &y)
{
    const RbRawSum raw = rbAddRaw(x, y);
    const NormalizeResult norm = normalizeQuad(raw.digits, raw.carryOut);
    return RbAddResult{norm.value, norm.tcOverflow, norm.bogusCorrected};
}

RbNum
rbShiftLeftDigits(const RbNum &x, unsigned k)
{
    assert(k < 64);
    if (k == 0)
        return x;
    return normalizeMsd(RbNum(x.plus() << k, x.minus() << k));
}

RbAddResult
rbScaledAdd(const RbNum &a, unsigned scale_log2, const RbNum &b)
{
    return rbAdd(rbShiftLeftDigits(a, scale_log2), b);
}

} // namespace rbsim
