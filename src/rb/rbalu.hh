/**
 * @file
 * Carry-free redundant binary ALU operations (paper sections 3.3 and 3.6).
 *
 * Addition limits carry propagation to at most two digit positions: the sum
 * digit at position i depends only on digits i, i-1, and i-2 of both
 * inputs, so the adder's critical path is independent of operand width.
 * The implementation here is the classic signed-digit transfer rule
 * (Avizienis / Takagi et al.), evaluated bit-parallel over the two digit
 * planes; `src/rb/digit_slice.*` provides the equivalent gate-level
 * digit-slice network of the paper's Figure 2 and is tested to match.
 */

#ifndef RBSIM_RB_RBALU_HH
#define RBSIM_RB_RBALU_HH

#include "rb/overflow.hh"
#include "rb/rbnum.hh"

namespace rbsim
{

/** Un-normalized adder output: 64 sum digits plus the carry out of digit
 * 63 (in {-1, 0, 1}). */
struct RbRawSum
{
    RbNum digits;
    int carryOut;
};

/** Normalized ALU result with overflow indications. */
struct RbAddResult
{
    RbNum sum;           //!< normalized sum, unwrapped value in 64-bit range
    bool tcOverflow;     //!< two's complement overflow occurred
    bool bogusCorrected; //!< a bogus overflow was cancelled (section 3.5)
};

/**
 * Raw carry-free addition: produces sum digits and carry-out without the
 * section 3.5 normalization. Exposed for the digit-slice equivalence tests
 * and the overflow unit tests.
 */
RbRawSum rbAddRaw(const RbNum &x, const RbNum &y);

/** Full addition: raw add followed by section 3.5 normalization. */
RbAddResult rbAdd(const RbNum &x, const RbNum &y);

/** Negation is free in redundant binary: swap the digit planes. */
inline RbNum
rbNegate(const RbNum &x)
{
    return RbNum(x.minus(), x.plus());
}

/** Subtraction: x + (-y). */
inline RbAddResult
rbSub(const RbNum &x, const RbNum &y)
{
    return rbAdd(x, rbNegate(y));
}

/**
 * Left shift by k digit positions (paper section 3.6): digits, not bits,
 * are shifted; the most significant digit is then re-signed so the result
 * keeps the two's complement sign of the wrapped value. (The paper states
 * the +1 -> -1 case of the rule; we apply the symmetric -1 -> +1 case as
 * well, which the section 3.5 machinery requires for exactness.)
 */
RbNum rbShiftLeftDigits(const RbNum &x, unsigned k);

/**
 * Scaled add (Alpha SxADD/SxSUB family): (a << scale_log2) + b, all in
 * redundant binary.
 */
RbAddResult rbScaledAdd(const RbNum &a, unsigned scale_log2, const RbNum &b);

/**
 * Count trailing zeros in redundant binary (paper section 3.6): the number
 * of trailing zero *digits* equals CTTZ of the two's complement value.
 */
inline unsigned
rbCttz(const RbNum &x)
{
    return x.trailingZeroDigits();
}

/**
 * Three-way compare against zero usable by conditional moves and branches
 * (paper section 3.6): -1, 0, or +1 according to the sign of the value.
 */
inline int
rbCompareZero(const RbNum &x)
{
    if (x.isZero())
        return 0;
    return x.signNegative() ? -1 : 1;
}

} // namespace rbsim

#endif // RBSIM_RB_RBALU_HH
