/**
 * @file
 * Overflow handling for redundant binary results (paper section 3.5).
 *
 * A chain of redundant binary additions propagates nonzero digits toward
 * the most significant end faster than two's complement does, so a result
 * can produce a carry out of the top digit even though its value still fits
 * ("bogus overflow"), and the top digit's sign can disagree with the two's
 * complement sign of the wrapped value. The rules in this module:
 *
 *  1. correct bogus overflow (carry-out and MSD of opposite signs cancel),
 *  2. detect genuine two's complement overflow, and
 *  3. re-sign the most significant digit so that the number's unwrapped
 *     value lies in [-2^63, 2^63) — making the paper's
 *     most-significant-nonzero-digit sign test agree with the two's
 *     complement sign of the value.
 *
 * The same machinery applied at digit 31 implements the quadword-to-
 * longword forwarding rule of section 3.6.
 */

#ifndef RBSIM_RB_OVERFLOW_HH
#define RBSIM_RB_OVERFLOW_HH

#include "rb/rbnum.hh"

namespace rbsim
{

/** Outcome of normalizing a raw adder result. */
struct NormalizeResult
{
    RbNum value;         //!< normalized number, unwrapped value in range
    bool bogusCorrected; //!< a bogus overflow was cancelled
    bool tcOverflow;     //!< the unwrapped value did not fit in 64 bits
};

/**
 * Normalize a raw 64-digit adder output with its carry-out digit.
 *
 * @param raw the 64 sum digits
 * @param carry_out the adder's carry out of digit 63, in {-1, 0, 1}
 * @pre the unwrapped value of (carry_out, raw) is in [-2^64, 2^64), which
 *      holds whenever both addends were themselves normalized
 */
NormalizeResult normalizeQuad(const RbNum &raw, int carry_out);

/**
 * Re-sign the most significant digit (no carry-out involved) so the
 * unwrapped value lands in [-2^63, 2^63). Used after digit shifts, whose
 * dropped high digits change the value by a multiple of 2^64.
 */
RbNum normalizeMsd(const RbNum &x);

/**
 * Quadword-to-longword extraction (paper section 3.6): keep digits 31..0,
 * re-sign digit 31 by the section 3.5 rules so the 32-digit value lands in
 * [-2^31, 2^31), and zero the upper digits. The result, read as a 64-digit
 * number, equals the sign-extended low 32 bits of the quadword's two's
 * complement value.
 */
RbNum extractLongword(const RbNum &x);

} // namespace rbsim

#endif // RBSIM_RB_OVERFLOW_HH
