#include "rb/overflow.hh"

#include <bit>

namespace rbsim
{

namespace
{

/**
 * Re-sign digit `msd_pos` of the planes so that the value of digits
 * [0, msd_pos] lands in [-2^msd_pos, 2^msd_pos). Digits above msd_pos must
 * be zero. Returns true if a flip happened (i.e. the value wrapped).
 */
bool
resignMsd(std::uint64_t &plus, std::uint64_t &minus, unsigned msd_pos)
{
    const std::uint64_t msd_bit = std::uint64_t{1} << msd_pos;
    const std::uint64_t rest_mask = msd_bit - 1;

    // Sign of the rest (digits below the MSD) by top-nonzero-digit scan.
    const std::uint64_t rest_nz = (plus | minus) & rest_mask;
    bool rest_negative = false;
    if (rest_nz != 0) {
        const std::uint64_t top =
            std::uint64_t{1} << (63 - std::countl_zero(rest_nz));
        rest_negative = (minus & top) != 0;
    }

    if ((minus & msd_bit) && rest_negative) {
        // MSD is -1 and the rest is negative: value below -2^msd_pos;
        // setting the MSD to +1 adds 2^(msd_pos+1), wrapping into range.
        minus &= ~msd_bit;
        plus |= msd_bit;
        return true;
    }
    if ((plus & msd_bit) && !rest_negative) {
        // MSD is +1 and the rest is not negative: value at or above
        // 2^msd_pos; setting the MSD to -1 subtracts 2^(msd_pos+1).
        plus &= ~msd_bit;
        minus |= msd_bit;
        return true;
    }
    return false;
}

} // namespace

NormalizeResult
normalizeQuad(const RbNum &raw, int carry_out)
{
    std::uint64_t plus = raw.plus();
    std::uint64_t minus = raw.minus();
    const std::uint64_t msd_bit = std::uint64_t{1} << 63;

    NormalizeResult res{raw, false, false};

    // Step 1: bogus overflow — carry-out and MSD of opposite signs cancel
    // (<1,-1> -> <0,1> and <-1,1> -> <0,-1> at positions 64/63).
    if (carry_out == 1 && (minus & msd_bit)) {
        minus &= ~msd_bit;
        plus |= msd_bit;
        carry_out = 0;
        res.bogusCorrected = true;
    } else if (carry_out == -1 && (plus & msd_bit)) {
        plus &= ~msd_bit;
        minus |= msd_bit;
        carry_out = 0;
        res.bogusCorrected = true;
    }

    // Step 2: a carry-out that survives correction is a genuine two's
    // complement overflow. With normalized addends the MSD is zero in this
    // case, so dropping the carry leaves the wrapped value in range.
    if (carry_out != 0) {
        assert((plus & msd_bit) == 0 && (minus & msd_bit) == 0);
        res.tcOverflow = true;
    }

    // Step 3: re-sign the MSD so the unwrapped value is in [-2^63, 2^63).
    if (resignMsd(plus, minus, 63))
        res.tcOverflow = true;

    res.value = RbNum(plus, minus);
    return res;
}

RbNum
normalizeMsd(const RbNum &x)
{
    std::uint64_t plus = x.plus();
    std::uint64_t minus = x.minus();
    resignMsd(plus, minus, 63);
    return RbNum(plus, minus);
}

RbNum
extractLongword(const RbNum &x)
{
    std::uint64_t plus = x.plus() & 0xffffffffull;
    std::uint64_t minus = x.minus() & 0xffffffffull;
    resignMsd(plus, minus, 31);
    return RbNum(plus, minus);
}

} // namespace rbsim
