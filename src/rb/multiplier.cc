#include "rb/multiplier.hh"

#include <array>
#include <cstdlib>

#include "common/bitutil.hh"
#include "rb/gatedelay.hh"
#include "rb/simd/kernels.hh"

namespace rbsim
{

namespace
{

/**
 * Partial products in structure-of-arrays form: one contiguous array
 * per plane, on the stack. The pairwise carry-free reduction runs
 * through the dispatched batch kernel (src/rb/simd/) — each round is
 * one adder delay regardless of operand width, and the kernel folds
 * four (AVX2) or two (NEON) adders per host instruction. The multiply
 * sits on the simulator's execute path, so nothing here touches the
 * heap (docs/PERFORMANCE.md).
 */
struct PartialProducts
{
    std::array<std::uint64_t, 64> plus;
    std::array<std::uint64_t, 64> minus;
    std::size_t n = 0;

    void
    push(const RbNum &x)
    {
        plus[n] = x.plus();
        minus[n] = x.minus();
        ++n;
    }

    RbMulResult
    reduce()
    {
        if (n == 0)
            return RbMulResult{RbNum(), 0};
        const unsigned levels =
            simd::kernels().mulReduce(plus.data(), minus.data(), n);
        return RbMulResult{RbNum(plus[0], minus[0]), levels};
    }
};

/** -x with the unwrapped value renormalized into 64-bit range. */
RbNum
negNormalized(const RbNum &x)
{
    return normalizeMsd(rbNegate(x));
}

} // namespace

RbMulResult
rbTreeMultiply(const RbNum &a, const RbNum &b)
{
    // Partial products straight from the multiplier's *digits*: no
    // conversion of b is needed, and negative digits cost only the free
    // plane swap.
    PartialProducts pps;
    for (unsigned i = 0; i < 64; ++i) {
        switch (b.digit(i)) {
          case Digit::Zero:
            break;
          case Digit::Plus:
            pps.push(rbShiftLeftDigits(a, i));
            break;
          case Digit::Minus:
            pps.push(negNormalized(rbShiftLeftDigits(a, i)));
            break;
        }
    }
    return pps.reduce();
}

RbMulResult
rbTreeMultiplyBooth(const RbNum &a, const RbNum &b)
{
    // Radix-4 Booth recode of the multiplier's two's complement view:
    // m_j in {-2,-1,0,1,2} from bit triples; +-a and +-2a are free in
    // the redundant representation.
    const Word w = b.toTc();
    PartialProducts pps;
    for (unsigned j = 0; j < 32; ++j) {
        const unsigned lo = 2 * j;
        const int b_m1 = lo == 0 ? 0 : static_cast<int>(bit(w, lo - 1));
        const int b_0 = static_cast<int>(bit(w, lo));
        const int b_1 = static_cast<int>(bit(w, lo + 1));
        const int m = b_m1 + b_0 - 2 * b_1;
        if (m == 0)
            continue;
        RbNum pp = rbShiftLeftDigits(a, lo + (std::abs(m) == 2 ? 1 : 0));
        if (m < 0)
            pp = negNormalized(pp);
        pps.push(pp);
    }
    return pps.reduce();
}

unsigned
rbMulTreeDepth(unsigned width, bool booth)
{
    // Partial-product generation (recode/select), then one constant
    // adder delay per tree level.
    unsigned pps = booth ? width / 2 : width;
    unsigned levels = 0;
    while (pps > 1) {
        pps = (pps + 1) / 2;
        ++levels;
    }
    return (booth ? 3 : 2) + levels * rbAdderDepth(width);
}

} // namespace rbsim
