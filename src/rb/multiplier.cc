#include "rb/multiplier.hh"

#include <cstdlib>
#include <vector>

#include "common/bitutil.hh"
#include "rb/gatedelay.hh"

namespace rbsim
{

namespace
{

/**
 * Reduce partial products pairwise with carry-free adders; each round is
 * one adder delay regardless of operand width.
 */
RbMulResult
reduceTree(std::vector<RbNum> pps)
{
    unsigned levels = 0;
    while (pps.size() > 1) {
        std::vector<RbNum> next;
        next.reserve((pps.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < pps.size(); i += 2)
            next.push_back(rbAdd(pps[i], pps[i + 1]).sum);
        if (pps.size() % 2)
            next.push_back(pps.back());
        pps = std::move(next);
        ++levels;
    }
    RbMulResult out;
    out.product = pps.empty() ? RbNum() : pps[0];
    out.treeLevels = levels;
    return out;
}

/** -x with the unwrapped value renormalized into 64-bit range. */
RbNum
negNormalized(const RbNum &x)
{
    return normalizeMsd(rbNegate(x));
}

} // namespace

RbMulResult
rbTreeMultiply(const RbNum &a, const RbNum &b)
{
    // Partial products straight from the multiplier's *digits*: no
    // conversion of b is needed, and negative digits cost only the free
    // plane swap.
    std::vector<RbNum> pps;
    pps.reserve(64);
    for (unsigned i = 0; i < 64; ++i) {
        switch (b.digit(i)) {
          case Digit::Zero:
            break;
          case Digit::Plus:
            pps.push_back(rbShiftLeftDigits(a, i));
            break;
          case Digit::Minus:
            pps.push_back(negNormalized(rbShiftLeftDigits(a, i)));
            break;
        }
    }
    if (pps.empty())
        return RbMulResult{RbNum(), 0};
    return reduceTree(std::move(pps));
}

RbMulResult
rbTreeMultiplyBooth(const RbNum &a, const RbNum &b)
{
    // Radix-4 Booth recode of the multiplier's two's complement view:
    // m_j in {-2,-1,0,1,2} from bit triples; +-a and +-2a are free in
    // the redundant representation.
    const Word w = b.toTc();
    std::vector<RbNum> pps;
    pps.reserve(32);
    for (unsigned j = 0; j < 32; ++j) {
        const unsigned lo = 2 * j;
        const int b_m1 = lo == 0 ? 0 : static_cast<int>(bit(w, lo - 1));
        const int b_0 = static_cast<int>(bit(w, lo));
        const int b_1 = static_cast<int>(bit(w, lo + 1));
        const int m = b_m1 + b_0 - 2 * b_1;
        if (m == 0)
            continue;
        RbNum pp = rbShiftLeftDigits(a, lo + (std::abs(m) == 2 ? 1 : 0));
        if (m < 0)
            pp = negNormalized(pp);
        pps.push_back(pp);
    }
    if (pps.empty())
        return RbMulResult{RbNum(), 0};
    return reduceTree(std::move(pps));
}

unsigned
rbMulTreeDepth(unsigned width, bool booth)
{
    // Partial-product generation (recode/select), then one constant
    // adder delay per tree level.
    unsigned pps = booth ? width / 2 : width;
    unsigned levels = 0;
    while (pps > 1) {
        pps = (pps + 1) / 2;
        ++levels;
    }
    return (booth ? 3 : 2) + levels * rbAdderDepth(width);
}

} // namespace rbsim
