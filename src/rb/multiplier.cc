#include "rb/multiplier.hh"

#include <array>
#include <cstdlib>

#include "common/bitutil.hh"
#include "rb/gatedelay.hh"

namespace rbsim
{

namespace
{

/**
 * Reduce partial products pairwise with carry-free adders; each round is
 * one adder delay regardless of operand width. Reduces in place — the
 * multiply sits on the simulator's execute path, so it must not touch
 * the heap (docs/PERFORMANCE.md).
 */
RbMulResult
reduceTree(RbNum *pps, std::size_t n)
{
    unsigned levels = 0;
    while (n > 1) {
        std::size_t out = 0;
        for (std::size_t i = 0; i + 1 < n; i += 2)
            pps[out++] = rbAdd(pps[i], pps[i + 1]).sum;
        if (n % 2)
            pps[out++] = pps[n - 1];
        n = out;
        ++levels;
    }
    RbMulResult res;
    res.product = n == 0 ? RbNum() : pps[0];
    res.treeLevels = levels;
    return res;
}

/** -x with the unwrapped value renormalized into 64-bit range. */
RbNum
negNormalized(const RbNum &x)
{
    return normalizeMsd(rbNegate(x));
}

} // namespace

RbMulResult
rbTreeMultiply(const RbNum &a, const RbNum &b)
{
    // Partial products straight from the multiplier's *digits*: no
    // conversion of b is needed, and negative digits cost only the free
    // plane swap.
    std::array<RbNum, 64> pps;
    std::size_t n = 0;
    for (unsigned i = 0; i < 64; ++i) {
        switch (b.digit(i)) {
          case Digit::Zero:
            break;
          case Digit::Plus:
            pps[n++] = rbShiftLeftDigits(a, i);
            break;
          case Digit::Minus:
            pps[n++] = negNormalized(rbShiftLeftDigits(a, i));
            break;
        }
    }
    if (n == 0)
        return RbMulResult{RbNum(), 0};
    return reduceTree(pps.data(), n);
}

RbMulResult
rbTreeMultiplyBooth(const RbNum &a, const RbNum &b)
{
    // Radix-4 Booth recode of the multiplier's two's complement view:
    // m_j in {-2,-1,0,1,2} from bit triples; +-a and +-2a are free in
    // the redundant representation.
    const Word w = b.toTc();
    std::array<RbNum, 32> pps;
    std::size_t n = 0;
    for (unsigned j = 0; j < 32; ++j) {
        const unsigned lo = 2 * j;
        const int b_m1 = lo == 0 ? 0 : static_cast<int>(bit(w, lo - 1));
        const int b_0 = static_cast<int>(bit(w, lo));
        const int b_1 = static_cast<int>(bit(w, lo + 1));
        const int m = b_m1 + b_0 - 2 * b_1;
        if (m == 0)
            continue;
        RbNum pp = rbShiftLeftDigits(a, lo + (std::abs(m) == 2 ? 1 : 0));
        if (m < 0)
            pp = negNormalized(pp);
        pps[n++] = pp;
    }
    if (n == 0)
        return RbMulResult{RbNum(), 0};
    return reduceTree(pps.data(), n);
}

unsigned
rbMulTreeDepth(unsigned width, bool booth)
{
    // Partial-product generation (recode/select), then one constant
    // adder delay per tree level.
    unsigned pps = booth ? width / 2 : width;
    unsigned levels = 0;
    while (pps > 1) {
        pps = (pps + 1) / 2;
        ++levels;
    }
    return (booth ? 3 : 2) + levels * rbAdderDepth(width);
}

} // namespace rbsim
