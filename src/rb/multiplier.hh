/**
 * @file
 * A 64x64-bit multiplier built from a redundant binary addition tree —
 * the historic home of redundant binary arithmetic (paper section 2:
 * "redundant binary arithmetic has mainly been used in adders that are
 * internal to hardware multipliers"; Takagi et al. 1985; Makino et al.
 * 1996).
 *
 * Structure: 64 partial products (one per multiplier bit, hardwired into
 * RB form for free) are reduced pairwise by carry-free RB adders in a
 * log2(64) = 6-level binary tree. Each tree level costs one constant
 * adder delay regardless of width, so the whole reduction is ~6 adder
 * delays; a conventional Wallace/CSA tree is comparable, but the RB tree
 * produces its result directly in the representation the rest of the RB
 * datapath consumes — the final carry-propagate conversion can be
 * skipped when the consumer accepts RB (which is how the paper's Table 3
 * can charge MUL the same latency on every machine).
 */

#ifndef RBSIM_RB_MULTIPLIER_HH
#define RBSIM_RB_MULTIPLIER_HH

#include "rb/rbalu.hh"
#include "rb/rbnum.hh"

namespace rbsim
{

/** Result of a tree multiplication. */
struct RbMulResult
{
    RbNum product;        //!< low 64 bits of the product, normalized
    unsigned treeLevels;  //!< adder levels the reduction used
};

/**
 * Multiply via the redundant binary addition tree. Produces the low 64
 * bits of a * b (the wrap-around semantics of MULQ).
 */
RbMulResult rbTreeMultiply(const RbNum &a, const RbNum &b);

/**
 * Booth-style variant: radix-4 recoding of the multiplier halves the
 * partial-product count (32 instead of 64) at the cost of one extra
 * level of trivial digit manipulation. Negative recoded digits cost
 * nothing in a redundant representation (negation is a plane swap).
 */
RbMulResult rbTreeMultiplyBooth(const RbNum &a, const RbNum &b);

/** Unit-gate depth of the RB reduction tree for an n x n multiply. */
unsigned rbMulTreeDepth(unsigned width, bool booth);

} // namespace rbsim

#endif // RBSIM_RB_MULTIPLIER_HH
