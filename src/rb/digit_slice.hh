/**
 * @file
 * Gate-level digit slice of the redundant binary adder (paper Figure 2).
 *
 * One slice computes three signal groups for digit position i:
 *
 *  - h_i: a function of digit i of both inputs only (the "both digits
 *    nonnegative" predicate that steers the transfer rule),
 *  - f_i: the transfer (intermediate carry) out of position i, a function
 *    of digit i and the neighbor signal h_{i-1},
 *  - s_i: the final sum digit, a function of digit i, h_{i-1}, and the
 *    incoming transfer f_{i-1}.
 *
 * The slice therefore sees only digits i, i-1, and i-2 of the inputs
 * (i-2 indirectly through f_{i-1}) — the bounded carry propagation that
 * gives the adder its width-independent latency. An adder built by
 * chaining slices must be (and is, see tests/test_rb_digit_slice.cc)
 * bit-for-bit equivalent to the bit-parallel rbAddRaw.
 */

#ifndef RBSIM_RB_DIGIT_SLICE_HH
#define RBSIM_RB_DIGIT_SLICE_HH

#include "rb/rbalu.hh"
#include "rb/rbnum.hh"

namespace rbsim
{

/** Encoded digit as it appears on wires: a (negative, positive) bit pair.
 * Legal encodings: (0,0)=0, (0,1)=+1, (1,0)=-1. */
struct DigitWires
{
    bool neg = false;
    bool pos = false;
};

/** Transfer (intermediate carry) wires out of a slice: at most one set. */
struct TransferWires
{
    bool plus = false;
    bool minus = false;
};

/** All outputs of one digit slice. */
struct SliceOutputs
{
    bool h;            //!< neighbor predicate forwarded to slice i+1
    TransferWires f;   //!< transfer into slice i+1
    DigitWires sum;    //!< final sum digit for position i
};

/**
 * Evaluate one digit slice.
 *
 * @param x digit i of the first operand
 * @param y digit i of the second operand
 * @param h_prev h_{i-1} from the slice below (true below digit 0)
 * @param f_prev f_{i-1}, the transfer from the slice below (zero below
 *               digit 0)
 */
SliceOutputs evalDigitSlice(DigitWires x, DigitWires y, bool h_prev,
                            TransferWires f_prev);

/**
 * A full adder built by chaining 64 digit slices. Returns raw (un-
 * normalized) digits and carry-out, like rbAddRaw.
 */
RbRawSum addBySlices(const RbNum &x, const RbNum &y);

/**
 * Up to 64 slice-chain additions evaluated lane-parallel by
 * bit-slicing: the operand planes are transposed into digit-position
 * words (bit j of word i = digit i of pair j), the *same* slice
 * equations as evalDigitSlice then run once per digit position with
 * every boolean signal widened to a 64-lane mask, and the sum planes
 * are transposed back. The gate chain stays structurally intact —
 * digit positions are still evaluated strictly in order through the
 * h/f neighbor wires — so the batch keeps its value as a gate-level
 * oracle while costing ~1/64th the slice evaluations per pair.
 *
 * Arrays are structure-of-arrays plane lanes as in rb/simd/kernels.hh;
 * carryOut[i] receives -1/0/+1 like RbRawSum::carryOut. n <= 64.
 */
void addBySlicesBatch(const std::uint64_t *xp, const std::uint64_t *xm,
                      const std::uint64_t *yp, const std::uint64_t *ym,
                      std::uint64_t *sp, std::uint64_t *sm,
                      std::int8_t *carryOut, std::size_t n);

} // namespace rbsim

#endif // RBSIM_RB_DIGIT_SLICE_HH
