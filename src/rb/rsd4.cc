#include "rb/rsd4.hh"

#include <sstream>

namespace rbsim
{

Rsd4Num
Rsd4Num::fromTc(Word w)
{
    Rsd4Num out;
    for (unsigned i = 0; i < 32; ++i)
        out.digitsArr[i] = static_cast<std::int8_t>((w >> (2 * i)) & 3);
    return out;
}

Word
Rsd4Num::toTc() const
{
    Word value = 0;
    for (unsigned i = 32; i-- > 0;) {
        value = (value << 2) +
                static_cast<Word>(static_cast<SWord>(digitsArr[i]));
    }
    return value;
}

Rsd4Num
Rsd4Num::negated() const
{
    Rsd4Num out;
    for (unsigned i = 0; i < 32; ++i)
        out.digitsArr[i] = static_cast<std::int8_t>(-digitsArr[i]);
    return out;
}

std::string
Rsd4Num::toString(unsigned ndigits) const
{
    assert(ndigits >= 1 && ndigits <= 32);
    std::ostringstream os;
    os << '<';
    for (unsigned i = ndigits; i-- > 0;) {
        os << static_cast<int>(digitsArr[i]);
        if (i != 0)
            os << ',';
    }
    os << '>';
    return os.str();
}

Rsd4Num
rsd4Add(const Rsd4Num &x, const Rsd4Num &y)
{
    // Stage 1: per-digit sums -> (transfer, interim digit) with |w| <= 2.
    std::array<int, 33> transfer{};
    std::array<int, 32> interim{};
    for (unsigned i = 0; i < 32; ++i) {
        const int z = x.digit(i) + y.digit(i);
        int t = 0;
        if (z >= 3)
            t = 1;
        else if (z <= -3)
            t = -1;
        transfer[i + 1] = t;
        interim[i] = z - 4 * t;
        assert(interim[i] >= -2 && interim[i] <= 2);
    }
    // Stage 2: absorb the incoming transfer; |w| <= 2 and |t| <= 1 keep
    // every final digit inside {-3..3} with no further propagation.
    // (The transfer out of digit 31 drops: arithmetic is modulo 2^64.)
    Rsd4Num out;
    for (unsigned i = 0; i < 32; ++i)
        out.setDigit(i, interim[i] + transfer[i]);
    return out;
}

unsigned
rsd4AdderDepth(unsigned width)
{
    (void)width;
    // One more level than the radix-2 slice: the digit-sum classifier
    // spans seven values instead of five.
    return 9;
}

} // namespace rbsim
