#include "rb/rbnum.hh"

#include <bit>
#include <sstream>

namespace rbsim
{

unsigned
RbNum::clzNonzero(std::uint64_t v)
{
    assert(v != 0);
    return static_cast<unsigned>(std::countl_zero(v));
}

unsigned
RbNum::trailingZeroDigits() const
{
    const std::uint64_t nz = plusBits | minusBits;
    if (nz == 0)
        return 64;
    return static_cast<unsigned>(std::countr_zero(nz));
}

std::string
RbNum::toString(unsigned ndigits) const
{
    assert(ndigits >= 1 && ndigits <= 64);
    std::ostringstream os;
    os << '<';
    for (unsigned i = ndigits; i-- > 0;) {
        switch (digit(i)) {
          case Digit::Plus:
            os << '1';
            break;
          case Digit::Zero:
            os << '0';
            break;
          case Digit::Minus:
            os << "-1";
            break;
        }
        if (i != 0)
            os << ',';
    }
    os << '>';
    return os.str();
}

} // namespace rbsim
