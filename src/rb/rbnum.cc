#include "rb/rbnum.hh"

#include <bit>

namespace rbsim
{

unsigned
RbNum::clzNonzero(std::uint64_t v)
{
    assert(v != 0);
    return static_cast<unsigned>(std::countl_zero(v));
}

unsigned
RbNum::trailingZeroDigits() const
{
    const std::uint64_t nz = plusBits | minusBits;
    if (nz == 0)
        return 64;
    return static_cast<unsigned>(std::countr_zero(nz));
}

std::string
RbNum::toString(unsigned ndigits) const
{
    assert(ndigits >= 1 && ndigits <= 64);
    std::string s;
    // Worst case: "-1," per digit plus "<>" — one reservation, no
    // ostringstream machinery (this shows up in trace/debug paths).
    s.reserve(3 * ndigits + 2);
    s += '<';
    for (unsigned i = ndigits; i-- > 0;) {
        switch (digit(i)) {
          case Digit::Plus:
            s += '1';
            break;
          case Digit::Zero:
            s += '0';
            break;
          case Digit::Minus:
            s += "-1";
            break;
        }
        if (i != 0)
            s += ',';
    }
    s += '>';
    return s;
}

} // namespace rbsim
