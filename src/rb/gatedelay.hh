/**
 * @file
 * Unit-gate delay model for the adder structures discussed in paper
 * section 3.4.
 *
 * The paper motivates 1-cycle redundant binary adders with circuit results
 * from the literature: a redundant binary adder's critical path is about
 * seven gate levels regardless of width, while a carry-lookahead adder
 * grows logarithmically (Makino et al. measured the RB adder 3x faster
 * than a 64-bit CLA and 2.7x faster than the RB->TC converter). This model
 * reproduces those *growth shapes and approximate ratios* with a
 * technology-independent unit-gate metric; `bench/adder_delay` prints the
 * resulting table.
 */

#ifndef RBSIM_RB_GATEDELAY_HH
#define RBSIM_RB_GATEDELAY_HH

namespace rbsim
{

/** Critical-path depth of a redundant binary adder: width-independent.
 * Seven levels, matching the seven-transistor path of section 3.4. */
unsigned rbAdderDepth(unsigned width);

/** Critical-path depth of a ripple-carry adder: linear in width. */
unsigned rippleAdderDepth(unsigned width);

/** Critical-path depth of a radix-4 carry-lookahead adder: logarithmic in
 * width. */
unsigned claAdderDepth(unsigned width);

/** Critical-path depth of the RB -> TC converter: a full borrow-propagating
 * subtract, i.e. CLA-subtractor depth. */
unsigned converterDepth(unsigned width);

/**
 * Depth of a 2-stage staggered (digit-serial) two's complement adder stage,
 * i.e. half-width CLA plus carry hand-off — the Pentium 4 style pipelining
 * the paper contrasts with (section 2).
 */
unsigned staggeredStageDepth(unsigned width);

} // namespace rbsim

#endif // RBSIM_RB_GATEDELAY_HH
