#include "rb/gatedelay.hh"

#include <cassert>

namespace rbsim
{

namespace
{

/** ceil(log4(n)) for n >= 1. */
unsigned
ceilLog4(unsigned n)
{
    assert(n >= 1);
    unsigned levels = 0;
    unsigned reach = 1;
    while (reach < n) {
        reach *= 4;
        ++levels;
    }
    return levels;
}

} // namespace

unsigned
rbAdderDepth(unsigned width)
{
    (void)width; // carry propagation is bounded; depth is width-independent
    return 7;
}

unsigned
rippleAdderDepth(unsigned width)
{
    // Two gate levels per full-adder carry stage plus the final sum XOR.
    return 2 * width + 2;
}

unsigned
claAdderDepth(unsigned width)
{
    // Propagate/generate (2 levels), a radix-4 lookahead tree traversed
    // up and down (2 levels per tree level each way), final sum (2).
    return 4 + 4 * ceilLog4(width);
}

unsigned
converterDepth(unsigned width)
{
    // The converter is a full-width two's complement subtraction.
    return claAdderDepth(width);
}

unsigned
staggeredStageDepth(unsigned width)
{
    // Each stage adds half the width and hands the carry to the next
    // stage's low end.
    return claAdderDepth(width / 2) + 1;
}

} // namespace rbsim
