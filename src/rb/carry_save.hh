/**
 * @file
 * Carry-save accumulation — the other redundant representation of paper
 * section 3.4 (Nagendra et al. found a carry-save adder twice as fast as
 * their signed-digit adder; the trade-off is that carry-save supports
 * only accumulate-then-resolve, not general forwarding).
 *
 * State is a (sum, carry) pair of 64-bit planes whose value is
 * sum + carry modulo 2^64. Adding a term is a single 3:2 compressor
 * level (constant depth ~3 gates); reading the value out requires one
 * full carry-propagating addition — exactly the conversion cost the
 * paper's redundant binary pipeline works to keep off the critical path.
 * The SAM decoder's 3-input variant uses the same compressor in front of
 * its row comparators.
 */

#ifndef RBSIM_RB_CARRY_SAVE_HH
#define RBSIM_RB_CARRY_SAVE_HH

#include <cassert>
#include "common/types.hh"

namespace rbsim
{

/** A carry-save redundant accumulator. */
class CsaAccumulator
{
  public:
    /** Start at zero. */
    CsaAccumulator() = default;

    /** Start at a value. */
    explicit CsaAccumulator(Word v)
        : sumPlane(v)
    {}

    /** Accumulate one term: one 3:2 compressor level, no carry chain. */
    void
    add(Word term)
    {
        const Word s = sumPlane ^ carryPlane ^ term;
        const Word c = (sumPlane & carryPlane) | (sumPlane & term) |
                       (carryPlane & term);
        sumPlane = s;
        carryPlane = c << 1;
    }

    /** Subtract a term (two's complement identity, still carry-free:
     * feed the complement and fold the +1 through a spare add). */
    void
    sub(Word term)
    {
        add(~term);
        add(1);
    }

    /** The redundant planes. */
    Word sumBits() const { return sumPlane; }
    Word carryBits() const { return carryPlane; }

    /** Resolve to two's complement: the full carry-propagate add. */
    Word resolve() const { return sumPlane + carryPlane; }

  private:
    Word sumPlane = 0;
    Word carryPlane = 0;
};

/** Unit-gate depth of one carry-save (3:2 compressor) level. */
inline unsigned
csaLevelDepth()
{
    return 3;
}

} // namespace rbsim

#endif // RBSIM_RB_CARRY_SAVE_HH
