/**
 * @file
 * Functional semantics of TinyAlpha instructions, in both number systems.
 *
 * `evalOp` is the architectural (two's complement) semantics used by the
 * reference interpreter and, on the conventional machines, by the timing
 * core. `evalOpRb` evaluates the RB-capable subset through the redundant
 * binary datapath (paper section 3.6); the timing core uses it on the RB
 * machines so the arithmetic library is exercised on the real execution
 * path, and tests prove it value-equivalent to `evalOp`.
 *
 * Memory instructions evaluate to their effective address here; the memory
 * access itself is performed by the interpreter or the load/store queue.
 */

#ifndef RBSIM_ISA_EVAL_HH
#define RBSIM_ISA_EVAL_HH

#include "isa/inst.hh"
#include "rb/rbnum.hh"

namespace rbsim
{

/** Resolved register operands of an instruction. */
struct Operands
{
    Word a = 0; //!< value of ra (0 when ra is r31)
    Word b = 0; //!< value of rb, or the zero-extended literal
    Word c = 0; //!< old value of rc (conditional moves only)
};

/** Result of functional evaluation. */
struct EvalResult
{
    Word value = 0;    //!< destination value, or effective address
    bool taken = false; //!< conditional branch outcome
};

/**
 * Evaluate one instruction in two's complement.
 * @param inst the instruction
 * @param ops resolved operand values
 * @param return_addr byte address of the sequentially next instruction
 *        (written by BR/BSR/JMP)
 */
EvalResult evalOp(const Inst &inst, const Operands &ops, Addr return_addr);

/** Redundant binary operand set. */
struct RbOperands
{
    RbNum a;
    RbNum b;
    RbNum c;
};

/** Result of redundant binary evaluation. */
struct RbEvalResult
{
    RbNum value;            //!< destination value in RB representation
    bool taken = false;     //!< conditional branch outcome
    bool usedRbPath = false; //!< false: op has no RB datapath, use evalOp
    bool bogusCorrected = false; //!< section 3.5 correction fired
    bool tcOverflow = false;     //!< two's complement overflow detected
};

/**
 * Evaluate through the redundant binary datapath. Sets usedRbPath=false
 * for opcodes that must execute in two's complement (the caller falls back
 * to evalOp). For the ops it implements, the result's toTc() equals
 * evalOp's value for all inputs (property-tested).
 */
RbEvalResult evalOpRb(const Inst &inst, const RbOperands &ops);

} // namespace rbsim

#endif // RBSIM_ISA_EVAL_HH
