#include "isa/eval.hh"

#include "common/bitutil.hh"
#include "rb/multiplier.hh"
#include "rb/rbalu.hh"

namespace rbsim
{

namespace
{

/** Sign-extend the low 32 bits (longword results). */
Word
sext32(Word w)
{
    return static_cast<Word>(sext(w, 32));
}

/** ZAPNOT byte mask: byte i of the result is kept iff bit i of mask set. */
Word
zapnotMask(Word mask)
{
    Word out = 0;
    for (unsigned i = 0; i < 8; ++i) {
        if ((mask >> i) & 1)
            out |= Word{0xff} << (8 * i);
    }
    return out;
}

/**
 * Signed a < b in redundant binary: the sign of a - b, corrected by the
 * section 3.5 overflow detection (when the subtraction overflows, the
 * wrapped sign is the complement of the true sign — the same rule a TC
 * comparator applies with its overflow flag).
 */
bool
rbSignedLess(const RbNum &a, const RbNum &b)
{
    const RbAddResult d = rbSub(a, b);
    const bool wrapped_negative = rbCompareZero(d.sum) < 0;
    return wrapped_negative != d.tcOverflow;
}

} // namespace

EvalResult
evalOp(const Inst &inst, const Operands &ops, Addr return_addr)
{
    const Word a = ops.a;
    const Word b = ops.b;
    const SWord sa = static_cast<SWord>(a);
    const SWord sb = static_cast<SWord>(b);
    EvalResult res;

    switch (inst.op) {
      case Opcode::ADDQ: res.value = a + b; break;
      case Opcode::SUBQ: res.value = a - b; break;
      case Opcode::ADDL: res.value = sext32(a + b); break;
      case Opcode::SUBL: res.value = sext32(a - b); break;
      case Opcode::S4ADDQ: res.value = (a << 2) + b; break;
      case Opcode::S8ADDQ: res.value = (a << 3) + b; break;
      case Opcode::S4SUBQ: res.value = (a << 2) - b; break;
      case Opcode::S8SUBQ: res.value = (a << 3) - b; break;
      case Opcode::LDA:
        res.value = b + static_cast<Word>(
            static_cast<SWord>(inst.disp));
        break;
      case Opcode::LDAH:
        res.value = b + (static_cast<Word>(
            static_cast<SWord>(inst.disp)) << 16);
        break;
      case Opcode::LDIQ:
        res.value = static_cast<Word>(inst.imm64);
        break;
      case Opcode::MULQ: res.value = a * b; break;
      case Opcode::MULL: res.value = sext32(a * b); break;

      case Opcode::AND: res.value = a & b; break;
      case Opcode::BIS: res.value = a | b; break;
      case Opcode::XOR: res.value = a ^ b; break;
      case Opcode::BIC: res.value = a & ~b; break;
      case Opcode::ORNOT: res.value = a | ~b; break;
      case Opcode::EQV: res.value = a ^ ~b; break;

      case Opcode::SLL: res.value = a << (b & 63); break;
      case Opcode::SRL: res.value = a >> (b & 63); break;
      case Opcode::SRA:
        res.value = static_cast<Word>(sa >> (b & 63));
        break;

      case Opcode::CMPEQ: res.value = (a == b); break;
      case Opcode::CMPLT: res.value = (sa < sb); break;
      case Opcode::CMPLE: res.value = (sa <= sb); break;
      case Opcode::CMPULT: res.value = (a < b); break;
      case Opcode::CMPULE: res.value = (a <= b); break;

      case Opcode::CMOVEQ: res.value = (a == 0) ? b : ops.c; break;
      case Opcode::CMOVNE: res.value = (a != 0) ? b : ops.c; break;
      case Opcode::CMOVLT: res.value = (sa < 0) ? b : ops.c; break;
      case Opcode::CMOVGE: res.value = (sa >= 0) ? b : ops.c; break;
      case Opcode::CMOVLE: res.value = (sa <= 0) ? b : ops.c; break;
      case Opcode::CMOVGT: res.value = (sa > 0) ? b : ops.c; break;
      case Opcode::CMOVLBS: res.value = (a & 1) ? b : ops.c; break;
      case Opcode::CMOVLBC: res.value = !(a & 1) ? b : ops.c; break;

      case Opcode::CTLZ: res.value = clz64(a); break;
      case Opcode::CTTZ: res.value = ctz64(a); break;
      case Opcode::CTPOP: res.value = popcount64(a); break;

      case Opcode::EXTBL: res.value = (a >> (8 * (b & 7))) & 0xff; break;
      case Opcode::EXTWL: res.value = (a >> (8 * (b & 7))) & 0xffff; break;
      case Opcode::EXTLL:
        res.value = (a >> (8 * (b & 7))) & 0xffffffffull;
        break;
      case Opcode::INSBL: res.value = (a & 0xff) << (8 * (b & 7)); break;
      case Opcode::MSKBL:
        res.value = a & ~(Word{0xff} << (8 * (b & 7)));
        break;
      case Opcode::ZAPNOT: res.value = a & zapnotMask(b); break;

      // Memory: evaluate to the effective address (SAM consumes base and
      // displacement together; the access itself happens elsewhere).
      case Opcode::LDQ: case Opcode::LDL:
      case Opcode::STQ: case Opcode::STL:
        res.value = b + static_cast<Word>(
            static_cast<SWord>(inst.disp));
        break;

      case Opcode::BEQ: res.taken = (a == 0); break;
      case Opcode::BNE: res.taken = (a != 0); break;
      case Opcode::BLT: res.taken = (sa < 0); break;
      case Opcode::BGE: res.taken = (sa >= 0); break;
      case Opcode::BLE: res.taken = (sa <= 0); break;
      case Opcode::BGT: res.taken = (sa > 0); break;
      case Opcode::BLBS: res.taken = (a & 1) != 0; break;
      case Opcode::BLBC: res.taken = (a & 1) == 0; break;

      case Opcode::BR: case Opcode::BSR: case Opcode::JMP:
        res.taken = true;
        res.value = return_addr;
        break;

      // The FP subset runs on integer values (see DESIGN.md): it exists to
      // exercise the fp latency classes, which SPECint touches rarely.
      case Opcode::ADDT: res.value = a + b; break;
      case Opcode::MULT: res.value = a * b; break;
      case Opcode::DIVT: res.value = sb == 0 ? 0 : a / (b | 1); break;

      case Opcode::NOP: case Opcode::HALT:
        break;
      default:
        assert(false && "unhandled opcode");
    }
    return res;
}

RbEvalResult
evalOpRb(const Inst &inst, const RbOperands &ops)
{
    RbEvalResult res;
    res.usedRbPath = true;

    auto finish = [&res](const RbAddResult &r) {
        res.value = r.sum;
        res.bogusCorrected = r.bogusCorrected;
        res.tcOverflow = r.tcOverflow;
    };
    auto dispRb = [&inst] {
        return RbNum::fromTc(
            static_cast<Word>(static_cast<SWord>(inst.disp)));
    };

    switch (inst.op) {
      case Opcode::ADDQ: finish(rbAdd(ops.a, ops.b)); break;
      case Opcode::SUBQ: finish(rbSub(ops.a, ops.b)); break;
      case Opcode::ADDL: {
        const RbAddResult r = rbAdd(ops.a, ops.b);
        res.value = extractLongword(r.sum);
        res.bogusCorrected = r.bogusCorrected;
        break;
      }
      case Opcode::SUBL: {
        const RbAddResult r = rbSub(ops.a, ops.b);
        res.value = extractLongword(r.sum);
        res.bogusCorrected = r.bogusCorrected;
        break;
      }
      case Opcode::S4ADDQ: finish(rbScaledAdd(ops.a, 2, ops.b)); break;
      case Opcode::S8ADDQ: finish(rbScaledAdd(ops.a, 3, ops.b)); break;
      case Opcode::S4SUBQ:
        finish(rbScaledAdd(ops.a, 2, rbNegate(ops.b)));
        break;
      case Opcode::S8SUBQ:
        finish(rbScaledAdd(ops.a, 3, rbNegate(ops.b)));
        break;
      case Opcode::LDA: finish(rbAdd(ops.b, dispRb())); break;
      case Opcode::LDAH:
        finish(rbAdd(ops.b, RbNum::fromTc(
            static_cast<Word>(static_cast<SWord>(inst.disp)) << 16)));
        break;
      case Opcode::LDIQ:
        res.value = RbNum::fromTc(static_cast<Word>(inst.imm64));
        break;

      case Opcode::MULQ:
        // The redundant binary addition tree (section 2's historic use
        // of RB arithmetic); neither operand is converted.
        res.value = rbTreeMultiplyBooth(ops.a, ops.b).product;
        break;
      case Opcode::MULL:
        res.value = extractLongword(
            rbTreeMultiplyBooth(ops.a, ops.b).product);
        break;

      case Opcode::SLL:
        // The shifted operand is redundant binary; the shift amount is a
        // small control value and is consumed in two's complement.
        res.value = rbShiftLeftDigits(ops.a, ops.b.toTc() & 63);
        break;

      // Compares: RB subtraction plus a zero/sign test; the 0/1 result is
      // identical in both encodings. Unsigned relations need borrow
      // information from the full conversion, so they evaluate via TC
      // values while keeping their RB-input timing class.
      case Opcode::CMPEQ:
        res.value = RbNum::fromTc(rbSub(ops.a, ops.b).sum.isZero());
        break;
      case Opcode::CMPLT:
        res.value = RbNum::fromTc(rbSignedLess(ops.a, ops.b));
        break;
      case Opcode::CMPLE:
        res.value = RbNum::fromTc(!rbSignedLess(ops.b, ops.a));
        break;
      case Opcode::CMPULT:
        res.value = RbNum::fromTc(ops.a.toTc() < ops.b.toTc());
        break;
      case Opcode::CMPULE:
        res.value = RbNum::fromTc(ops.a.toTc() <= ops.b.toTc());
        break;

      case Opcode::CMOVEQ:
        res.value = ops.a.isZero() ? ops.b : ops.c;
        break;
      case Opcode::CMOVNE:
        res.value = !ops.a.isZero() ? ops.b : ops.c;
        break;
      case Opcode::CMOVLT:
        res.value = rbCompareZero(ops.a) < 0 ? ops.b : ops.c;
        break;
      case Opcode::CMOVGE:
        res.value = rbCompareZero(ops.a) >= 0 ? ops.b : ops.c;
        break;
      case Opcode::CMOVLE:
        res.value = rbCompareZero(ops.a) <= 0 ? ops.b : ops.c;
        break;
      case Opcode::CMOVGT:
        res.value = rbCompareZero(ops.a) > 0 ? ops.b : ops.c;
        break;
      case Opcode::CMOVLBS:
        res.value = ops.a.lsbSet() ? ops.b : ops.c;
        break;
      case Opcode::CMOVLBC:
        res.value = !ops.a.lsbSet() ? ops.b : ops.c;
        break;

      case Opcode::CTTZ:
        res.value = RbNum::fromTc(rbCttz(ops.a));
        break;

      // Effective addresses stay in RB; SAM indexes the cache directly
      // from the (plus, minus) planes plus the TC displacement.
      case Opcode::LDQ: case Opcode::LDL:
      case Opcode::STQ: case Opcode::STL:
        finish(rbAdd(ops.b, dispRb()));
        break;

      case Opcode::BEQ: res.taken = ops.a.isZero(); break;
      case Opcode::BNE: res.taken = !ops.a.isZero(); break;
      case Opcode::BLT: res.taken = rbCompareZero(ops.a) < 0; break;
      case Opcode::BGE: res.taken = rbCompareZero(ops.a) >= 0; break;
      case Opcode::BLE: res.taken = rbCompareZero(ops.a) <= 0; break;
      case Opcode::BGT: res.taken = rbCompareZero(ops.a) > 0; break;
      case Opcode::BLBS: res.taken = ops.a.lsbSet(); break;
      case Opcode::BLBC: res.taken = !ops.a.lsbSet(); break;

      default:
        // TC-only opcode (logical, right shift, byte, CTLZ/CTPOP, MUL's
        // final carry-propagate product, FP, BR/BSR/JMP): no RB datapath.
        res.usedRbPath = false;
        break;
    }
    return res;
}

} // namespace rbsim
