/**
 * @file
 * A loadable TinyAlpha program: code, initial data image, entry point.
 *
 * Internally the simulator addresses code by instruction index; register
 * values holding code addresses (return addresses, jump tables) use byte
 * addresses `codeBase + 4 * index`, so computed control flow works like on
 * a real machine.
 */

#ifndef RBSIM_ISA_PROGRAM_HH
#define RBSIM_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "isa/inst.hh"

namespace rbsim
{

/** A contiguous chunk of initialized data. */
struct DataSegment
{
    Addr base = 0;
    std::vector<std::uint8_t> bytes;
};

/** A complete program image. */
struct Program
{
    std::string name = "program";
    std::vector<Inst> code;
    Addr codeBase = 0x10000;
    std::uint64_t entry = 0; //!< entry instruction index
    std::vector<DataSegment> data;

    /** Byte address of an instruction index. */
    Addr
    byteAddrOf(std::uint64_t index) const
    {
        return codeBase + 4 * index;
    }

    /** Instruction index of a code byte address. */
    std::uint64_t
    indexOf(Addr byte_addr) const
    {
        return (byte_addr - codeBase) / 4;
    }

    /** True if the byte address falls inside the code image. */
    bool
    isCodeAddr(Addr byte_addr) const
    {
        return byte_addr >= codeBase &&
               byte_addr < codeBase + 4 * code.size() &&
               (byte_addr & 3) == 0;
    }

    /** Append a data segment initialized with 64-bit little-endian words. */
    void addDataWords(Addr base, const std::vector<Word> &words);

    /** Append a raw byte segment. */
    void addDataBytes(Addr base, std::vector<std::uint8_t> bytes);

    /**
     * Stable 64-bit content hash over everything that affects execution:
     * every instruction field, the code base, the entry point, and the
     * *effective* initial data image (memory starts zeroed, so segment
     * boundaries and zero padding are construction artifacts, not
     * content). The `name` is deliberately excluded — two routes to the
     * same image (assembler vs CodeBuilder, or a disassemble/assemble
     * round trip) hash equal, and any single-instruction or single-byte
     * mutation hashes different with overwhelming probability. The
     * serve result cache keys on this (docs/SERVING.md).
     */
    std::uint64_t hash() const;
};

} // namespace rbsim

#endif // RBSIM_ISA_PROGRAM_HH
