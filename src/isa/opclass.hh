/**
 * @file
 * Static instruction classification: latency classes (paper Table 3),
 * input/output data formats, and the dynamic-mix rows of paper Table 1.
 */

#ifndef RBSIM_ISA_OPCLASS_HH
#define RBSIM_ISA_OPCLASS_HH

#include "isa/inst.hh"
#include "rb/format.hh"

namespace rbsim
{

/** Latency classes, one per row of paper Table 3 (plus control/nop). */
enum class OpClass : unsigned char
{
    IntArith,   //!< add/sub/scaled-add/LDA family
    IntMul,
    IntLogical,
    ShiftLeft,
    ShiftRight,
    IntCompare,
    CondMove,   //!< latencies of IntArith (Table 1 groups CMOV with ADD)
    Count,      //!< CTLZ/CTTZ/CTPOP; latencies of ByteManip
    ByteManip,
    Load,
    Store,
    Branch,
    FpArith,
    FpDiv,
    Nop,

    NumClasses,
};

/** Number of latency classes. */
constexpr unsigned numOpClasses = static_cast<unsigned>(OpClass::NumClasses);

/** Latency class of an opcode. */
OpClass opClass(Opcode op);

/** Printable class name. */
const char *opClassName(OpClass cls);

/**
 * Input format requirement of the instruction as a whole (paper Table 1):
 * Format::RB means operands may arrive in either representation;
 * Format::TC means all register operands must be two's complement.
 */
Format inputFormat(Opcode op);

/**
 * Per-source format requirement. Differs from inputFormat only for
 * stores, whose *data* operand must be two's complement while the *base*
 * address operand may be redundant binary (SAM absorbs it).
 * @param src_idx index into srcRegs(inst) order
 */
Format srcFormatReq(const Inst &inst, unsigned src_idx);

/**
 * Format the result is produced in on the RB machines (paper Table 1).
 * Only meaningful for instructions with a destination.
 */
Format outputFormat(Opcode op);

/** Rows of paper Table 1 for the dynamic instruction-mix experiment. */
enum class Table1Row : unsigned char
{
    ArithRbRb,   //!< ADD, SUB, MUL, LDA(H), CMOVLBx, SxADD/SUB, SLL (+CTTZ)
    CmovSign,    //!< CMOVLT/GE/LE/GT (sign test needs the logic tree)
    CmovZero,    //!< CMOVEQ/NE (zero test)
    MemAccess,   //!< loads and stores
    CmpEq,       //!< CMPEQ
    CmpRel,      //!< CMPLT/LE/ULT/ULE
    CondBranch,  //!< conditional branches
    Other,       //!< TC-only instructions

    NumRows,
};

/** Number of Table 1 rows. */
constexpr unsigned numTable1Rows = static_cast<unsigned>(Table1Row::NumRows);

/** Table 1 row of an opcode. */
Table1Row table1Row(Opcode op);

/** Printable row label matching the paper's Table 1. */
const char *table1RowLabel(Table1Row row);

} // namespace rbsim

#endif // RBSIM_ISA_OPCLASS_HH
