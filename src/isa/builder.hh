/**
 * @file
 * Programmatic code emission with labels — the API the workload generators
 * use to build TinyAlpha programs.
 *
 * Usage:
 * @code
 *   CodeBuilder cb("kernel");
 *   auto loop = cb.newLabel();
 *   cb.ldiq(R(1), 100);
 *   cb.bind(loop);
 *   cb.opi(Opcode::SUBQ, R(1), 1, R(1));
 *   cb.branch(Opcode::BNE, R(1), loop);
 *   cb.halt();
 *   Program p = cb.finish();
 * @endcode
 */

#ifndef RBSIM_ISA_BUILDER_HH
#define RBSIM_ISA_BUILDER_HH

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace rbsim
{

/** Typed wrapper for an architectural register number. */
struct Reg
{
    std::uint8_t n = zeroReg;
};

/** Shorthand constructor: R(7) is register r7. */
inline Reg
R(unsigned n)
{
    assert(n < numArchRegs);
    return Reg{static_cast<std::uint8_t>(n)};
}

/** An opaque label handle. */
struct Label
{
    std::uint32_t id = ~0u;
};

/**
 * Two-pass code builder: emit instructions referencing labels, bind labels
 * anywhere, and finish() patches displacements.
 */
class CodeBuilder
{
  public:
    explicit CodeBuilder(std::string program_name);

    /** Create an unbound label. */
    Label newLabel();

    /** Bind a label to the next emitted instruction. */
    void bind(Label l);

    /** Current instruction index (for size accounting). */
    std::uint64_t here() const { return code.size(); }

    /**
     * Byte address a bound label will have in the finished program
     * (for building jump tables in data memory).
     * @pre the label is already bound
     */
    Addr labelByteAddr(Label l) const;

    // --- operate format ---

    /** op ra, rb, rc */
    void op3(Opcode op, Reg ra, Reg rb, Reg rc);

    /** op ra, #lit, rc (8-bit zero-extended literal) */
    void opi(Opcode op, Reg ra, std::uint8_t lit, Reg rc);

    /** Unary operate (CTLZ/CTTZ/CTPOP): op ra, rc. */
    void op1(Opcode op, Reg ra, Reg rc);

    // --- immediates and address arithmetic ---

    /** lda ra, disp(rb): ra = rb + disp (16-bit signed reach). */
    void lda(Reg ra, std::int32_t disp, Reg rb);

    /** ldah ra, disp(rb): ra = rb + disp * 65536. */
    void ldah(Reg ra, std::int32_t disp, Reg rb);

    /** Materialize an arbitrary 64-bit constant. */
    void ldiq(Reg ra, std::int64_t value);

    /** Register move (the Alpha idiom BIS rb, rb, rc). */
    void mov(Reg src, Reg dst);

    // --- memory ---

    /** Load: op ra, disp(rb). */
    void load(Opcode op, Reg ra, std::int32_t disp, Reg rb);

    /** Store: op ra, disp(rb). */
    void store(Opcode op, Reg ra, std::int32_t disp, Reg rb);

    // --- control ---

    /** Conditional branch to a label. */
    void branch(Opcode op, Reg ra, Label target);

    /** Unconditional branch. */
    void br(Label target);

    /** Branch-to-subroutine: ra receives the return byte address. */
    void bsr(Reg ra, Label target);

    /** Indirect jump: ra receives the return address, target = value(rb). */
    void jmp(Reg ra, Reg rb);

    /** Return: jump to the byte address in rb. */
    void ret(Reg rb) { jmp(R(zeroReg), rb); }

    /** nop / halt */
    void nop();
    void halt();

    // --- data ---

    /** Attach a data segment of 64-bit words. */
    void dataWords(Addr base, const std::vector<Word> &words);

    /** Attach a raw byte segment. */
    void dataBytes(Addr base, std::vector<std::uint8_t> bytes);

    /**
     * Resolve labels and produce the program.
     * @pre every referenced label has been bound
     */
    Program finish();

  private:
    void emit(const Inst &inst);

    Program prog;
    std::vector<Inst> code;
    std::vector<std::int64_t> labelPos;          // -1 while unbound
    std::vector<std::pair<std::size_t, Label>> fixups;
    bool finished = false;
};

} // namespace rbsim

#endif // RBSIM_ISA_BUILDER_HH
