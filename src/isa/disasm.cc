#include "isa/disasm.hh"

#include <sstream>

#include "isa/opclass.hh"

namespace rbsim
{

std::string
disassemble(const Inst &inst, std::uint64_t index)
{
    std::ostringstream os;
    os << opcodeName(inst.op);

    auto reg = [](unsigned r) { return "r" + std::to_string(r); };
    auto target = [&]() -> std::string {
        if (index == ~0ull)
            return "." + std::to_string(inst.disp);
        return "@" + std::to_string(
            static_cast<std::int64_t>(index) + 1 + inst.disp);
    };

    switch (inst.op) {
      case Opcode::LDIQ:
        os << ' ' << reg(inst.ra) << ", " << inst.imm64;
        break;
      case Opcode::LDA: case Opcode::LDAH:
      case Opcode::LDQ: case Opcode::LDL:
      case Opcode::STQ: case Opcode::STL:
        os << ' ' << reg(inst.ra) << ", " << inst.disp << '('
           << reg(inst.rb) << ')';
        break;
      case Opcode::CTLZ: case Opcode::CTTZ: case Opcode::CTPOP:
        os << ' ' << reg(inst.ra) << ", " << reg(inst.rc);
        break;
      case Opcode::BR:
        os << ' ' << target();
        break;
      case Opcode::BSR:
        os << ' ' << reg(inst.ra) << ", " << target();
        break;
      case Opcode::JMP:
        os << ' ' << reg(inst.ra) << ", " << reg(inst.rb);
        break;
      case Opcode::NOP: case Opcode::HALT:
        break;
      default:
        if (isCondBranch(inst.op)) {
            os << ' ' << reg(inst.ra) << ", " << target();
        } else {
            os << ' ' << reg(inst.ra) << ", ";
            if (inst.useLit)
                os << '#' << static_cast<unsigned>(inst.lit);
            else
                os << reg(inst.rb);
            os << ", " << reg(inst.rc);
        }
        break;
    }
    return os.str();
}

} // namespace rbsim
