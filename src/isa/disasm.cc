#include "isa/disasm.hh"

#include <set>
#include <sstream>

#include "isa/opclass.hh"

namespace rbsim
{

std::string
disassemble(const Inst &inst, std::uint64_t index)
{
    std::ostringstream os;
    os << opcodeName(inst.op);

    auto reg = [](unsigned r) { return "r" + std::to_string(r); };
    auto target = [&]() -> std::string {
        if (index == ~0ull)
            return "." + std::to_string(inst.disp);
        return "@" + std::to_string(
            static_cast<std::int64_t>(index) + 1 + inst.disp);
    };

    switch (inst.op) {
      case Opcode::LDIQ:
        os << ' ' << reg(inst.ra) << ", " << inst.imm64;
        break;
      case Opcode::LDA: case Opcode::LDAH:
      case Opcode::LDQ: case Opcode::LDL:
      case Opcode::STQ: case Opcode::STL:
        os << ' ' << reg(inst.ra) << ", " << inst.disp << '('
           << reg(inst.rb) << ')';
        break;
      case Opcode::CTLZ: case Opcode::CTTZ: case Opcode::CTPOP:
        os << ' ' << reg(inst.ra) << ", " << reg(inst.rc);
        break;
      case Opcode::BR:
        os << ' ' << target();
        break;
      case Opcode::BSR:
        os << ' ' << reg(inst.ra) << ", " << target();
        break;
      case Opcode::JMP:
        os << ' ' << reg(inst.ra) << ", " << reg(inst.rb);
        break;
      case Opcode::NOP: case Opcode::HALT:
        break;
      default:
        if (isCondBranch(inst.op)) {
            os << ' ' << reg(inst.ra) << ", " << target();
        } else {
            os << ' ' << reg(inst.ra) << ", ";
            if (inst.useLit)
                os << '#' << static_cast<unsigned>(inst.lit);
            else
                os << reg(inst.rb);
            os << ", " << reg(inst.rc);
        }
        break;
    }
    return os.str();
}

namespace
{

/** True for opcodes whose disp is a label-resolved branch target. */
bool
usesLabelTarget(Opcode op)
{
    return isCondBranch(op) || op == Opcode::BR || op == Opcode::BSR;
}

} // namespace

std::string
disassembleProgram(const Program &prog)
{
    // Pass 1: collect every branch-target instruction index.
    std::set<std::uint64_t> targets;
    if (prog.entry != 0)
        targets.insert(prog.entry);
    for (std::size_t i = 0; i < prog.code.size(); ++i) {
        const Inst &inst = prog.code[i];
        if (usesLabelTarget(inst.op)) {
            targets.insert(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(i) + 1 + inst.disp));
        }
    }

    auto label = [](std::uint64_t idx) {
        return "L" + std::to_string(idx);
    };

    std::ostringstream os;
    os << "; " << prog.code.size() << " instructions\n";
    os << ".name " << prog.name << '\n';
    if (prog.entry != 0)
        os << ".entry " << label(prog.entry) << '\n';

    for (const DataSegment &seg : prog.data) {
        os << ".org 0x" << std::hex << seg.base << std::dec << '\n';
        for (std::size_t off = 0; off < seg.bytes.size(); off += 8) {
            Word w = 0;
            for (unsigned b = 0; b < 8; ++b) {
                if (off + b < seg.bytes.size())
                    w |= static_cast<Word>(seg.bytes[off + b]) << (8 * b);
            }
            // .quad operands parse as signed 64-bit; print accordingly.
            os << ".quad " << static_cast<SWord>(w) << '\n';
        }
    }

    for (std::size_t i = 0; i < prog.code.size(); ++i) {
        const Inst &inst = prog.code[i];
        if (targets.count(i))
            os << label(i) << ":\n";
        os << "    ";
        if (usesLabelTarget(inst.op)) {
            const std::uint64_t tgt = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(i) + 1 + inst.disp);
            os << opcodeName(inst.op) << ' ';
            if (inst.op != Opcode::BR)
                os << 'r' << static_cast<unsigned>(inst.ra) << ", ";
            os << label(tgt);
        } else {
            os << disassemble(inst);
        }
        os << '\n';
    }
    // A label bound past the last instruction (e.g. a branch over the
    // final body op) still needs a definition to re-assemble.
    if (targets.count(prog.code.size()))
        os << label(prog.code.size()) << ":\n";
    return os.str();
}

} // namespace rbsim
