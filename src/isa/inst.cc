#include "isa/inst.hh"

#include <cassert>

namespace rbsim
{

bool
isCondBranch(Opcode op)
{
    switch (op) {
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLE: case Opcode::BGT:
      case Opcode::BLBS: case Opcode::BLBC:
        return true;
      default:
        return false;
    }
}

bool
isUncondControl(Opcode op)
{
    return op == Opcode::BR || op == Opcode::BSR || op == Opcode::JMP;
}

bool
isControl(Opcode op)
{
    return isCondBranch(op) || isUncondControl(op);
}

bool
isLoad(Opcode op)
{
    return op == Opcode::LDQ || op == Opcode::LDL;
}

bool
isStore(Opcode op)
{
    return op == Opcode::STQ || op == Opcode::STL;
}

bool
isCondMove(Opcode op)
{
    switch (op) {
      case Opcode::CMOVEQ: case Opcode::CMOVNE: case Opcode::CMOVLT:
      case Opcode::CMOVGE: case Opcode::CMOVLE: case Opcode::CMOVGT:
      case Opcode::CMOVLBS: case Opcode::CMOVLBC:
        return true;
      default:
        return false;
    }
}

unsigned
memAccessSize(Opcode op)
{
    switch (op) {
      case Opcode::LDQ: case Opcode::STQ:
        return 8;
      case Opcode::LDL: case Opcode::STL:
        return 4;
      default:
        assert(false && "not a memory opcode");
        return 0;
    }
}

bool
writesDest(const Inst &inst)
{
    return destReg(inst) != zeroReg;
}

unsigned
destReg(const Inst &inst)
{
    switch (inst.op) {
      case Opcode::LDA: case Opcode::LDAH: case Opcode::LDIQ:
      case Opcode::LDQ: case Opcode::LDL:
      case Opcode::BR: case Opcode::BSR: case Opcode::JMP:
        return inst.ra;
      case Opcode::STQ: case Opcode::STL:
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLE: case Opcode::BGT:
      case Opcode::BLBS: case Opcode::BLBC:
      case Opcode::NOP: case Opcode::HALT:
        return zeroReg;
      default:
        // Operate format: rc is the destination.
        return inst.rc;
    }
}

SrcRegs
srcRegs(const Inst &inst)
{
    SrcRegs out;
    auto push = [&out](unsigned r) {
        if (r != zeroReg)
            out.reg[out.count++] = static_cast<std::uint8_t>(r);
    };

    switch (inst.op) {
      case Opcode::LDIQ:
      case Opcode::BR: case Opcode::BSR:
      case Opcode::NOP: case Opcode::HALT:
        break;
      case Opcode::LDA: case Opcode::LDAH:
      case Opcode::LDQ: case Opcode::LDL:
      case Opcode::JMP:
        push(inst.rb);
        break;
      case Opcode::STQ: case Opcode::STL:
        push(inst.ra); // store data
        push(inst.rb); // base register
        break;
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLE: case Opcode::BGT:
      case Opcode::BLBS: case Opcode::BLBC:
        push(inst.ra);
        break;
      case Opcode::CTLZ: case Opcode::CTTZ: case Opcode::CTPOP:
        push(inst.ra);
        break;
      default:
        // Operate format: ra and rb (unless a literal), and for
        // conditional moves the old destination value as well.
        push(inst.ra);
        if (!inst.useLit)
            push(inst.rb);
        if (isCondMove(inst.op))
            push(inst.rc);
        break;
    }
    return out;
}

} // namespace rbsim
