#include "isa/opclass.hh"

namespace rbsim
{

OpClass
opClass(Opcode op)
{
    switch (op) {
      case Opcode::ADDQ: case Opcode::SUBQ: case Opcode::ADDL:
      case Opcode::SUBL: case Opcode::S4ADDQ: case Opcode::S8ADDQ:
      case Opcode::S4SUBQ: case Opcode::S8SUBQ: case Opcode::LDA:
      case Opcode::LDAH: case Opcode::LDIQ:
        return OpClass::IntArith;
      case Opcode::MULQ: case Opcode::MULL:
        return OpClass::IntMul;
      case Opcode::AND: case Opcode::BIS: case Opcode::XOR:
      case Opcode::BIC: case Opcode::ORNOT: case Opcode::EQV:
        return OpClass::IntLogical;
      case Opcode::SLL:
        return OpClass::ShiftLeft;
      case Opcode::SRL: case Opcode::SRA:
        return OpClass::ShiftRight;
      case Opcode::CMPEQ: case Opcode::CMPLT: case Opcode::CMPLE:
      case Opcode::CMPULT: case Opcode::CMPULE:
        return OpClass::IntCompare;
      case Opcode::CMOVEQ: case Opcode::CMOVNE: case Opcode::CMOVLT:
      case Opcode::CMOVGE: case Opcode::CMOVLE: case Opcode::CMOVGT:
      case Opcode::CMOVLBS: case Opcode::CMOVLBC:
        return OpClass::CondMove;
      case Opcode::CTLZ: case Opcode::CTTZ: case Opcode::CTPOP:
        return OpClass::Count;
      case Opcode::EXTBL: case Opcode::EXTWL: case Opcode::EXTLL:
      case Opcode::INSBL: case Opcode::MSKBL: case Opcode::ZAPNOT:
        return OpClass::ByteManip;
      case Opcode::LDQ: case Opcode::LDL:
        return OpClass::Load;
      case Opcode::STQ: case Opcode::STL:
        return OpClass::Store;
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLE: case Opcode::BGT:
      case Opcode::BLBS: case Opcode::BLBC: case Opcode::BR:
      case Opcode::BSR: case Opcode::JMP:
        return OpClass::Branch;
      case Opcode::ADDT: case Opcode::MULT:
        return OpClass::FpArith;
      case Opcode::DIVT:
        return OpClass::FpDiv;
      default:
        return OpClass::Nop;
    }
}

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntArith: return "integer arithmetic";
      case OpClass::IntMul: return "integer multiply";
      case OpClass::IntLogical: return "integer logical";
      case OpClass::ShiftLeft: return "integer shift left";
      case OpClass::ShiftRight: return "integer shift right";
      case OpClass::IntCompare: return "integer compare";
      case OpClass::CondMove: return "conditional move";
      case OpClass::Count: return "count (ctlz/cttz/ctpop)";
      case OpClass::ByteManip: return "byte manipulation";
      case OpClass::Load: return "load";
      case OpClass::Store: return "store";
      case OpClass::Branch: return "branch";
      case OpClass::FpArith: return "fp arithmetic";
      case OpClass::FpDiv: return "fp divide";
      case OpClass::Nop: return "nop";
      default: return "<bad>";
    }
}

Format
inputFormat(Opcode op)
{
    switch (opClass(op)) {
      case OpClass::IntArith:
      case OpClass::IntMul:
      case OpClass::ShiftLeft:
      case OpClass::IntCompare:
      case OpClass::CondMove:
      case OpClass::Load:
      case OpClass::Store: // the store *address*; data is special-cased
        return Format::RB;
      case OpClass::Branch:
        // Conditional branches test values and accept RB; indirect jumps
        // feed a fetch address and are treated the same way (the target
        // comparison happens via SAM-like equality in the BTB check).
        return Format::RB;
      case OpClass::Count:
        // CTTZ counts trailing nonzero digits and works in RB; CTLZ and
        // CTPOP need the unique TC representation (paper section 3.6).
        return op == Opcode::CTTZ ? Format::RB : Format::TC;
      default:
        return Format::TC;
    }
}

Format
srcFormatReq(const Inst &inst, unsigned src_idx)
{
    if (isStore(inst.op)) {
        // srcRegs order for stores is [data, base]; memory holds TC data,
        // so the data operand needs conversion while SAM absorbs an RB
        // base (paper section 3.6, memory access instructions). When the
        // data register is r31 the only source is the base.
        const bool has_data_src = inst.ra != zeroReg;
        if (has_data_src && src_idx == 0)
            return Format::TC;
        return Format::RB;
    }
    return inputFormat(inst.op);
}

Format
outputFormat(Opcode op)
{
    switch (opClass(op)) {
      case OpClass::IntArith:
      case OpClass::IntMul:
      case OpClass::ShiftLeft:
      case OpClass::CondMove:
        return Format::RB;
      case OpClass::Count:
        return op == Opcode::CTTZ ? Format::RB : Format::TC;
      default:
        return Format::TC;
    }
}

Table1Row
table1Row(Opcode op)
{
    switch (op) {
      case Opcode::CMOVLT: case Opcode::CMOVGE: case Opcode::CMOVLE:
      case Opcode::CMOVGT:
        return Table1Row::CmovSign;
      case Opcode::CMOVEQ: case Opcode::CMOVNE:
        return Table1Row::CmovZero;
      case Opcode::LDQ: case Opcode::LDL: case Opcode::STQ:
      case Opcode::STL:
        return Table1Row::MemAccess;
      case Opcode::CMPEQ:
        return Table1Row::CmpEq;
      case Opcode::CMPLT: case Opcode::CMPLE: case Opcode::CMPULT:
      case Opcode::CMPULE:
        return Table1Row::CmpRel;
      default:
        break;
    }
    if (isCondBranch(op))
        return Table1Row::CondBranch;
    switch (opClass(op)) {
      case OpClass::IntArith: case OpClass::IntMul:
      case OpClass::ShiftLeft: case OpClass::CondMove:
        return Table1Row::ArithRbRb;
      case OpClass::Count:
        return op == Opcode::CTTZ ? Table1Row::ArithRbRb
                                  : Table1Row::Other;
      default:
        return Table1Row::Other;
    }
}

const char *
table1RowLabel(Table1Row row)
{
    switch (row) {
      case Table1Row::ArithRbRb:
        return "ADD, SUB, MUL, LDA(H), CMOVLBx, SxADD/SUB, SLL (RB->RB)";
      case Table1Row::CmovSign:
        return "CMOVLT, CMOVGE, CMOVLE, CMOVGT (RB->RB)";
      case Table1Row::CmovZero:
        return "CMOVEQ, CMOVNE (RB->RB)";
      case Table1Row::MemAccess:
        return "Memory Access (RB->TC)";
      case Table1Row::CmpEq:
        return "CMPEQ (RB->TC)";
      case Table1Row::CmpRel:
        return "CMPLT, CMPLE, CMPULT, CMPULE (RB->TC)";
      case Table1Row::CondBranch:
        return "conditional branches (RB)";
      case Table1Row::Other:
        return "Other (TC->TC)";
      default:
        return "<bad>";
    }
}

} // namespace rbsim
