#include "isa/opcode.hh"

#include <array>
#include <unordered_map>

#include "common/strutil.hh"

namespace rbsim
{

namespace
{

const std::array<const char *, numOpcodes> opcodeNames = {
    "addq", "subq", "addl", "subl",
    "s4addq", "s8addq", "s4subq", "s8subq",
    "lda", "ldah", "ldiq",
    "mulq", "mull",
    "and", "bis", "xor", "bic", "ornot", "eqv",
    "sll",
    "srl", "sra",
    "cmpeq", "cmplt", "cmple", "cmpult", "cmpule",
    "cmoveq", "cmovne", "cmovlt", "cmovge", "cmovle", "cmovgt",
    "cmovlbs", "cmovlbc",
    "ctlz", "ctpop",
    "cttz",
    "extbl", "extwl", "extll", "insbl", "mskbl", "zapnot",
    "ldq", "ldl", "stq", "stl",
    "beq", "bne", "blt", "bge", "ble", "bgt", "blbs", "blbc",
    "br", "bsr", "jmp",
    "addt", "mult", "divt",
    "nop", "halt",
};

} // namespace

const char *
opcodeName(Opcode op)
{
    const auto idx = static_cast<unsigned>(op);
    if (idx >= numOpcodes)
        return "<bad>";
    return opcodeNames[idx];
}

std::optional<Opcode>
parseOpcode(const std::string &name)
{
    static const std::unordered_map<std::string, Opcode> table = [] {
        std::unordered_map<std::string, Opcode> t;
        for (unsigned i = 0; i < numOpcodes; ++i)
            t.emplace(opcodeNames[i], static_cast<Opcode>(i));
        return t;
    }();
    const auto it = table.find(toLower(name));
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

} // namespace rbsim
