#include "isa/builder.hh"

namespace rbsim
{

CodeBuilder::CodeBuilder(std::string program_name)
{
    prog.name = std::move(program_name);
}

Label
CodeBuilder::newLabel()
{
    Label l{static_cast<std::uint32_t>(labelPos.size())};
    labelPos.push_back(-1);
    return l;
}

void
CodeBuilder::bind(Label l)
{
    assert(l.id < labelPos.size());
    assert(labelPos[l.id] == -1 && "label bound twice");
    labelPos[l.id] = static_cast<std::int64_t>(code.size());
}

Addr
CodeBuilder::labelByteAddr(Label l) const
{
    assert(l.id < labelPos.size() && labelPos[l.id] >= 0);
    return prog.codeBase +
           4 * static_cast<Addr>(labelPos[l.id]);
}

void
CodeBuilder::emit(const Inst &inst)
{
    assert(!finished);
    code.push_back(inst);
}

void
CodeBuilder::op3(Opcode op, Reg ra, Reg rb, Reg rc)
{
    Inst i;
    i.op = op;
    i.ra = ra.n;
    i.rb = rb.n;
    i.rc = rc.n;
    emit(i);
}

void
CodeBuilder::opi(Opcode op, Reg ra, std::uint8_t lit, Reg rc)
{
    Inst i;
    i.op = op;
    i.ra = ra.n;
    i.useLit = true;
    i.lit = lit;
    i.rc = rc.n;
    emit(i);
}

void
CodeBuilder::op1(Opcode op, Reg ra, Reg rc)
{
    Inst i;
    i.op = op;
    i.ra = ra.n;
    i.rc = rc.n;
    emit(i);
}

void
CodeBuilder::lda(Reg ra, std::int32_t disp, Reg rb)
{
    assert(disp >= -32768 && disp <= 32767);
    Inst i;
    i.op = Opcode::LDA;
    i.ra = ra.n;
    i.rb = rb.n;
    i.disp = disp;
    emit(i);
}

void
CodeBuilder::ldah(Reg ra, std::int32_t disp, Reg rb)
{
    assert(disp >= -32768 && disp <= 32767);
    Inst i;
    i.op = Opcode::LDAH;
    i.ra = ra.n;
    i.rb = rb.n;
    i.disp = disp;
    emit(i);
}

void
CodeBuilder::ldiq(Reg ra, std::int64_t value)
{
    Inst i;
    i.op = Opcode::LDIQ;
    i.ra = ra.n;
    i.imm64 = value;
    emit(i);
}

void
CodeBuilder::mov(Reg src, Reg dst)
{
    // The standard Alpha MOVE idiom: both logical sources are the same
    // register, which is the one case where a logical op accepts an RB
    // input (paper section 3.6).
    op3(Opcode::BIS, src, src, dst);
}

void
CodeBuilder::load(Opcode op, Reg ra, std::int32_t disp, Reg rb)
{
    assert(isLoad(op));
    Inst i;
    i.op = op;
    i.ra = ra.n;
    i.rb = rb.n;
    i.disp = disp;
    emit(i);
}

void
CodeBuilder::store(Opcode op, Reg ra, std::int32_t disp, Reg rb)
{
    assert(isStore(op));
    Inst i;
    i.op = op;
    i.ra = ra.n;
    i.rb = rb.n;
    i.disp = disp;
    emit(i);
}

void
CodeBuilder::branch(Opcode op, Reg ra, Label target)
{
    assert(isCondBranch(op));
    Inst i;
    i.op = op;
    i.ra = ra.n;
    fixups.emplace_back(code.size(), target);
    emit(i);
}

void
CodeBuilder::br(Label target)
{
    Inst i;
    i.op = Opcode::BR;
    i.ra = zeroReg;
    fixups.emplace_back(code.size(), target);
    emit(i);
}

void
CodeBuilder::bsr(Reg ra, Label target)
{
    Inst i;
    i.op = Opcode::BSR;
    i.ra = ra.n;
    fixups.emplace_back(code.size(), target);
    emit(i);
}

void
CodeBuilder::jmp(Reg ra, Reg rb)
{
    Inst i;
    i.op = Opcode::JMP;
    i.ra = ra.n;
    i.rb = rb.n;
    emit(i);
}

void
CodeBuilder::nop()
{
    emit(Inst{});
}

void
CodeBuilder::halt()
{
    Inst i;
    i.op = Opcode::HALT;
    emit(i);
}

void
CodeBuilder::dataWords(Addr base, const std::vector<Word> &words)
{
    prog.addDataWords(base, words);
}

void
CodeBuilder::dataBytes(Addr base, std::vector<std::uint8_t> bytes)
{
    prog.addDataBytes(base, std::move(bytes));
}

Program
CodeBuilder::finish()
{
    assert(!finished);
    for (const auto &[pos, label] : fixups) {
        assert(label.id < labelPos.size());
        const std::int64_t target = labelPos[label.id];
        assert(target >= 0 && "finish() with unbound label");
        code[pos].disp = static_cast<std::int32_t>(
            target - static_cast<std::int64_t>(pos) - 1);
    }
    prog.code = std::move(code);
    finished = true;
    return std::move(prog);
}

} // namespace rbsim
