/**
 * @file
 * Opcodes of TinyAlpha, the Alpha-like ISA used by rbsim.
 *
 * The set mirrors the fixed-point Alpha instructions the paper classifies
 * in Table 1 (plus a small FP subset so the FP latency rows of Table 3 have
 * something to exercise, and an LDIQ pseudo-op for constant
 * materialization).
 */

#ifndef RBSIM_ISA_OPCODE_HH
#define RBSIM_ISA_OPCODE_HH

#include <cstdint>
#include <optional>
#include <string>

namespace rbsim
{

/** All TinyAlpha opcodes. */
enum class Opcode : std::uint8_t
{
    // Integer arithmetic (RB in, RB out).
    ADDQ, SUBQ, ADDL, SUBL,
    S4ADDQ, S8ADDQ, S4SUBQ, S8SUBQ,
    LDA, LDAH, LDIQ,
    MULQ, MULL,

    // Logical (TC in, TC out).
    AND, BIS, XOR, BIC, ORNOT, EQV,

    // Shifts.
    SLL,            // RB in, RB out (digit shift)
    SRL, SRA,       // TC in, TC out

    // Compares (RB in, TC out).
    CMPEQ, CMPLT, CMPLE, CMPULT, CMPULE,

    // Conditional moves (RB in, RB out).
    CMOVEQ, CMOVNE, CMOVLT, CMOVGE, CMOVLE, CMOVGT, CMOVLBS, CMOVLBC,

    // Counts.
    CTLZ, CTPOP,    // TC in (need a unique representation)
    CTTZ,           // RB in (count trailing nonzero digits)

    // Byte manipulation (TC in).
    EXTBL, EXTWL, EXTLL, INSBL, MSKBL, ZAPNOT,

    // Memory (RB-in address computation via SAM; TC data).
    LDQ, LDL, STQ, STL,

    // Control.
    BEQ, BNE, BLT, BGE, BLE, BGT, BLBS, BLBC,
    BR, BSR, JMP,

    // FP subset (TC; exists to exercise Table 3's fp latency rows).
    ADDT, MULT, DIVT,

    // Misc.
    NOP, HALT,

    NumOpcodes,
};

/** Number of opcodes. */
constexpr unsigned numOpcodes = static_cast<unsigned>(Opcode::NumOpcodes);

/** Mnemonic of an opcode (lower case). */
const char *opcodeName(Opcode op);

/** Parse a mnemonic (case-insensitive); nullopt if unknown. */
std::optional<Opcode> parseOpcode(const std::string &name);

} // namespace rbsim

#endif // RBSIM_ISA_OPCODE_HH
