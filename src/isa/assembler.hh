/**
 * @file
 * Two-pass text assembler for TinyAlpha.
 *
 * Syntax (one instruction per line, ';' or '#' comments):
 *
 *     .name demo            ; program name
 *     .entry start          ; entry label (default: first instruction)
 *     .org 0x20000          ; base address for following .quad data
 *     .quad 1, 2, -3        ; 64-bit data words
 *     start:
 *         ldiq r1, 1000
 *         addq r1, r2, r3   ; operate: op ra, rb, rc
 *         subq r3, #5, r3   ; literal operand
 *         ldq  r4, 8(r2)    ; memory: op ra, disp(rb)
 *         lda  r5, -16(r4)
 *         beq  r3, start    ; branch to label
 *         bsr  r26, func
 *         jmp  r26, r27
 *         mov  r1, r2       ; pseudo-op -> bis r1, r1, r2
 *         halt
 */

#ifndef RBSIM_ISA_ASSEMBLER_HH
#define RBSIM_ISA_ASSEMBLER_HH

#include <stdexcept>
#include <string>

#include "isa/program.hh"

namespace rbsim
{

/** Error thrown on malformed assembly, carrying the 1-based line number. */
class AsmError : public std::runtime_error
{
  public:
    AsmError(unsigned line, const std::string &what_arg)
        : std::runtime_error("line " + std::to_string(line) + ": " +
                             what_arg),
          lineNo(line)
    {}

    /** 1-based source line of the error. */
    unsigned line() const { return lineNo; }

  private:
    unsigned lineNo;
};

/** Assemble a source string into a program. Throws AsmError. */
Program assemble(const std::string &source);

} // namespace rbsim

#endif // RBSIM_ISA_ASSEMBLER_HH
