#include "isa/program.hh"

namespace rbsim
{

void
Program::addDataWords(Addr base, const std::vector<Word> &words)
{
    DataSegment seg;
    seg.base = base;
    seg.bytes.reserve(words.size() * 8);
    for (Word w : words) {
        for (unsigned i = 0; i < 8; ++i)
            seg.bytes.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    }
    data.push_back(std::move(seg));
}

void
Program::addDataBytes(Addr base, std::vector<std::uint8_t> bytes)
{
    data.push_back(DataSegment{base, std::move(bytes)});
}

} // namespace rbsim
