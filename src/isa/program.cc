#include "isa/program.hh"

#include <map>

namespace rbsim
{

void
Program::addDataWords(Addr base, const std::vector<Word> &words)
{
    DataSegment seg;
    seg.base = base;
    seg.bytes.reserve(words.size() * 8);
    for (Word w : words) {
        for (unsigned i = 0; i < 8; ++i)
            seg.bytes.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    }
    data.push_back(std::move(seg));
}

void
Program::addDataBytes(Addr base, std::vector<std::uint8_t> bytes)
{
    data.push_back(DataSegment{base, std::move(bytes)});
}

namespace
{

// FNV-1a, 64-bit. Field-by-field (never over struct bytes) so padding
// and any future field reordering cannot silently change the hash.
constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t fnvPrime = 0x100000001b3ull;

void
mix(std::uint64_t &h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= fnvPrime;
    }
}

void
mixByte(std::uint64_t &h, std::uint8_t b)
{
    h ^= b;
    h *= fnvPrime;
}

} // namespace

std::uint64_t
Program::hash() const
{
    std::uint64_t h = fnvOffset;
    mix(h, codeBase);
    mix(h, entry);
    mix(h, code.size());
    for (const Inst &inst : code) {
        mixByte(h, static_cast<std::uint8_t>(inst.op));
        mixByte(h, inst.ra);
        mixByte(h, inst.rb);
        mixByte(h, inst.rc);
        mixByte(h, inst.useLit ? 1 : 0);
        mixByte(h, inst.lit);
        mix(h, static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(inst.disp)));
        mix(h, static_cast<std::uint64_t>(inst.imm64));
    }
    // Hash the effective memory image, not the segment list: memory
    // starts zeroed, so how the image was sliced into segments (one
    // builder call vs per-line `.quad` directives) and any zero
    // padding must not affect program identity. Segments apply in
    // order, so a later zero byte erases an earlier nonzero one.
    std::map<Addr, std::uint8_t> image;
    for (const DataSegment &seg : data) {
        for (std::size_t i = 0; i < seg.bytes.size(); ++i) {
            const Addr a = seg.base + i;
            if (seg.bytes[i] != 0)
                image[a] = seg.bytes[i];
            else
                image.erase(a);
        }
    }
    mix(h, image.size());
    for (const auto &[addr, byte] : image) {
        mix(h, addr);
        mixByte(h, byte);
    }
    return h;
}

} // namespace rbsim
