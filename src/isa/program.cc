#include "isa/program.hh"


namespace rbsim
{

void
Program::addDataWords(Addr base, const std::vector<Word> &words)
{
    DataSegment seg;
    seg.base = base;
    seg.bytes.reserve(words.size() * 8);
    for (Word w : words) {
        for (unsigned i = 0; i < 8; ++i)
            seg.bytes.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    }
    data.push_back(std::move(seg));
}

void
Program::addDataBytes(Addr base, std::vector<std::uint8_t> bytes)
{
    data.push_back(DataSegment{base, std::move(bytes)});
}

namespace
{

// FNV-1a, 64-bit. Field-by-field (never over struct bytes) so padding
// and any future field reordering cannot silently change the hash.
constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t fnvPrime = 0x100000001b3ull;

void
mix(std::uint64_t &h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= fnvPrime;
    }
}

void
mixByte(std::uint64_t &h, std::uint8_t b)
{
    h ^= b;
    h *= fnvPrime;
}

/** One effective data byte as a full-width token (splitmix64 finalizer)
 * so the image digest can combine tokens with plain XOR. Two distinct
 * (addr, byte) pairs never alias pre-finalizer: the multiplier is a
 * large odd constant, so equal tokens force equal addresses. */
std::uint64_t
mixPair(Addr addr, std::uint8_t byte)
{
    std::uint64_t z = addr * 0x9e3779b97f4a7c15ull + byte + 1;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

std::uint64_t
Program::hash() const
{
    std::uint64_t h = fnvOffset;
    mix(h, codeBase);
    mix(h, entry);
    mix(h, code.size());
    for (const Inst &inst : code) {
        mixByte(h, static_cast<std::uint8_t>(inst.op));
        mixByte(h, inst.ra);
        mixByte(h, inst.rb);
        mixByte(h, inst.rc);
        mixByte(h, inst.useLit ? 1 : 0);
        mixByte(h, inst.lit);
        mix(h, static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(inst.disp)));
        mix(h, static_cast<std::uint64_t>(inst.imm64));
    }
    // Hash the effective memory image, not the segment list: memory
    // starts zeroed, so how the image was sliced into segments (one
    // builder call vs per-line `.quad` directives) and any zero
    // padding must not affect program identity. Segments apply in
    // order, so a later zero byte erases an earlier nonzero one.
    //
    // The image is never materialized — hash() runs inside the serve
    // warm window (Interp::reset keys the predecode cache with it), so
    // it must not allocate. Instead each surviving (addr, byte) pair —
    // nonzero, and not overwritten by a later segment — folds into an
    // order-insensitive XOR digest, which makes the visit order (segment
    // order here, address order before) irrelevant by construction.
    std::uint64_t img = 0;
    std::uint64_t effective = 0;
    for (std::size_t s = 0; s < data.size(); ++s) {
        const DataSegment &seg = data[s];
        for (std::size_t i = 0; i < seg.bytes.size(); ++i) {
            if (seg.bytes[i] == 0)
                continue;
            const Addr a = seg.base + i;
            bool overwritten = false;
            for (std::size_t t = s + 1; t < data.size() && !overwritten;
                 ++t) {
                overwritten = a >= data[t].base &&
                              a - data[t].base < data[t].bytes.size();
            }
            if (overwritten)
                continue;
            img ^= mixPair(a, seg.bytes[i]);
            ++effective;
        }
    }
    mix(h, effective);
    mix(h, img);
    return h;
}

} // namespace rbsim
