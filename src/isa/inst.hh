/**
 * @file
 * Decoded TinyAlpha instruction and its static operand/property queries.
 *
 * Instructions are stored pre-decoded (there is no binary encoding layer):
 * operate format `op ra, rb|#lit, rc`, memory format `op ra, disp(rb)`,
 * branch format `op ra, disp`. Register 31 reads as zero and discards
 * writes, as on Alpha.
 */

#ifndef RBSIM_ISA_INST_HH
#define RBSIM_ISA_INST_HH

#include <cassert>
#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace rbsim
{

/** The architectural zero register. */
constexpr unsigned zeroReg = 31;

/** Number of architectural integer registers. */
constexpr unsigned numArchRegs = 32;

/** A decoded instruction. */
struct Inst
{
    Opcode op = Opcode::NOP;
    std::uint8_t ra = zeroReg; //!< first register field
    std::uint8_t rb = zeroReg; //!< second register field (or unused)
    std::uint8_t rc = zeroReg; //!< destination field of operate format
    bool useLit = false;       //!< operate format: rb replaced by literal
    std::uint8_t lit = 0;      //!< 8-bit zero-extended literal
    std::int32_t disp = 0;     //!< memory/branch displacement
    std::int64_t imm64 = 0;    //!< LDIQ immediate

    bool operator==(const Inst &other) const = default;
};

/** Source registers of an instruction (up to 3; unused slots are 31). */
struct SrcRegs
{
    std::array<std::uint8_t, 3> reg{zeroReg, zeroReg, zeroReg};
    unsigned count = 0;
};

/** True if the instruction writes an integer register. */
bool writesDest(const Inst &inst);

/** Destination architectural register (zeroReg when none). */
unsigned destReg(const Inst &inst);

/** Source architectural registers, zero-register sources omitted. */
SrcRegs srcRegs(const Inst &inst);

/** True for conditional branches (BEQ..BLBC). */
bool isCondBranch(Opcode op);

/** True for any control transfer (cond branches, BR, BSR, JMP). */
bool isControl(Opcode op);

/** True for BR/BSR/JMP (always taken). */
bool isUncondControl(Opcode op);

/** True for LDQ/LDL. */
bool isLoad(Opcode op);

/** True for STQ/STL. */
bool isStore(Opcode op);

/** True for conditional moves (which also read their old destination). */
bool isCondMove(Opcode op);

/** Memory access size in bytes (8 or 4); only valid for loads/stores. */
unsigned memAccessSize(Opcode op);

} // namespace rbsim

#endif // RBSIM_ISA_INST_HH
