/**
 * @file
 * Disassembler: renders decoded instructions back to assembler syntax.
 */

#ifndef RBSIM_ISA_DISASM_HH
#define RBSIM_ISA_DISASM_HH

#include <string>

#include "isa/inst.hh"
#include "isa/program.hh"

namespace rbsim
{

/**
 * Render one instruction. Branch displacements are shown as absolute
 * instruction indices when the instruction's own index is supplied.
 * @param inst the instruction
 * @param index its position in the code (for branch target resolution);
 *        pass ~0ull to print raw displacements
 */
std::string disassemble(const Inst &inst, std::uint64_t index = ~0ull);

/**
 * Render a whole program as an assembler-compatible listing: `.name` /
 * `.entry` directives, `Lk:` labels at every branch target, `.org` +
 * `.quad` data segments. The output re-assembles (via assemble()) into a
 * program with identical code, data, and entry point — the round trip
 * the fuzzer's repro corpus depends on, and it is tested.
 *
 * Data segments must be multiples of 8 bytes (they are padded with
 * zeroes otherwise, which is value-preserving against a zero-initialized
 * memory image).
 */
std::string disassembleProgram(const Program &prog);

} // namespace rbsim

#endif // RBSIM_ISA_DISASM_HH
