/**
 * @file
 * Disassembler: renders decoded instructions back to assembler syntax.
 */

#ifndef RBSIM_ISA_DISASM_HH
#define RBSIM_ISA_DISASM_HH

#include <string>

#include "isa/inst.hh"

namespace rbsim
{

/**
 * Render one instruction. Branch displacements are shown as absolute
 * instruction indices when the instruction's own index is supplied.
 * @param inst the instruction
 * @param index its position in the code (for branch target resolution);
 *        pass ~0ull to print raw displacements
 */
std::string disassemble(const Inst &inst, std::uint64_t index = ~0ull);

} // namespace rbsim

#endif // RBSIM_ISA_DISASM_HH
