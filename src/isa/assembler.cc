#include "isa/assembler.hh"

#include <map>
#include <optional>

#include "common/strutil.hh"
#include "isa/opcode.hh"

namespace rbsim
{

namespace
{

/** A tokenized source line. */
struct SrcLine
{
    unsigned number = 0;
    std::string label;           // empty if none
    std::string mnemonic;        // empty for label-only / directive lines
    std::vector<std::string> operands;
    bool isDirective = false;
};

std::string
stripComment(const std::string &line)
{
    // ';' always starts a comment. '#' does too, unless a digit follows
    // (then it is a literal operand like "#3").
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == ';')
            return line.substr(0, i);
        if (line[i] == '#' &&
            (i + 1 >= line.size() ||
             !std::isdigit(static_cast<unsigned char>(line[i + 1])))) {
            return line.substr(0, i);
        }
    }
    return line;
}

std::optional<SrcLine>
tokenize(unsigned number, const std::string &raw)
{
    std::string text = trim(stripComment(raw));
    if (text.empty())
        return std::nullopt;

    SrcLine out;
    out.number = number;

    // Leading "label:" prefix.
    const std::size_t colon = text.find(':');
    if (colon != std::string::npos &&
        text.find_first_of(" \t(") > colon) {
        out.label = trim(text.substr(0, colon));
        if (out.label.empty())
            throw AsmError(number, "empty label");
        text = trim(text.substr(colon + 1));
        if (text.empty())
            return out;
    }

    const std::size_t sp = text.find_first_of(" \t");
    out.mnemonic = toLower(text.substr(0, sp));
    out.isDirective = !out.mnemonic.empty() && out.mnemonic[0] == '.';
    if (sp != std::string::npos) {
        const std::string rest = text.substr(sp + 1);
        out.operands = splitTokens(rest, ", \t");
    }
    return out;
}

unsigned
parseReg(unsigned line, const std::string &tok)
{
    if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R'))
        throw AsmError(line, "expected register, got '" + tok + "'");
    unsigned n = 0;
    for (std::size_t i = 1; i < tok.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            throw AsmError(line, "bad register '" + tok + "'");
        n = n * 10 + static_cast<unsigned>(tok[i] - '0');
    }
    if (n >= numArchRegs)
        throw AsmError(line, "register out of range '" + tok + "'");
    return n;
}

std::int64_t
parseInt(unsigned line, const std::string &tok)
{
    try {
        std::size_t used = 0;
        const std::int64_t v = std::stoll(tok, &used, 0);
        if (used != tok.size())
            throw AsmError(line, "bad integer '" + tok + "'");
        return v;
    } catch (const AsmError &) {
        throw;
    } catch (const std::exception &) {
        throw AsmError(line, "bad integer '" + tok + "'");
    }
}

/** Parse "disp(rb)" for the memory format. */
void
parseMemOperand(unsigned line, const std::string &tok, std::int32_t &disp,
                std::uint8_t &rb)
{
    const std::size_t open = tok.find('(');
    const std::size_t close = tok.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open || close != tok.size() - 1) {
        throw AsmError(line, "expected disp(rb), got '" + tok + "'");
    }
    const std::string disp_str = tok.substr(0, open);
    disp = disp_str.empty()
        ? 0
        : static_cast<std::int32_t>(parseInt(line, disp_str));
    rb = static_cast<std::uint8_t>(
        parseReg(line, tok.substr(open + 1, close - open - 1)));
}

/** Kinds of pending label references. */
struct Fixup
{
    std::size_t instIndex;
    std::string label;
    unsigned line;
};

} // namespace

Program
assemble(const std::string &source)
{
    // Split into lines.
    std::vector<std::string> lines;
    {
        std::string cur;
        for (char c : source) {
            if (c == '\n') {
                lines.push_back(cur);
                cur.clear();
            } else {
                cur.push_back(c);
            }
        }
        lines.push_back(cur);
    }

    Program prog;
    std::map<std::string, std::uint64_t> labels;
    std::vector<Fixup> fixups;
    std::string entry_label;
    Addr data_org = 0x20000;
    bool entry_set = false;

    auto requireOperands = [](const SrcLine &sl, std::size_t n) {
        if (sl.operands.size() != n) {
            throw AsmError(sl.number,
                           "expected " + std::to_string(n) +
                           " operands for '" + sl.mnemonic + "'");
        }
    };

    for (unsigned i = 0; i < lines.size(); ++i) {
        const auto parsed = tokenize(i + 1, lines[i]);
        if (!parsed)
            continue;
        const SrcLine &sl = *parsed;

        if (!sl.label.empty()) {
            if (labels.count(sl.label))
                throw AsmError(sl.number, "duplicate label " + sl.label);
            labels[sl.label] = prog.code.size();
        }
        if (sl.mnemonic.empty())
            continue;

        if (sl.isDirective) {
            if (sl.mnemonic == ".name") {
                requireOperands(sl, 1);
                prog.name = sl.operands[0];
            } else if (sl.mnemonic == ".entry") {
                requireOperands(sl, 1);
                entry_label = sl.operands[0];
                entry_set = true;
            } else if (sl.mnemonic == ".org") {
                requireOperands(sl, 1);
                data_org = static_cast<Addr>(
                    parseInt(sl.number, sl.operands[0]));
            } else if (sl.mnemonic == ".quad") {
                std::vector<Word> words;
                for (const auto &tok : sl.operands) {
                    words.push_back(
                        static_cast<Word>(parseInt(sl.number, tok)));
                }
                prog.addDataWords(data_org, words);
                data_org += 8 * words.size();
            } else {
                throw AsmError(sl.number,
                               "unknown directive " + sl.mnemonic);
            }
            continue;
        }

        // Pseudo-ops.
        if (sl.mnemonic == "mov") {
            requireOperands(sl, 2);
            Inst inst;
            inst.op = Opcode::BIS;
            inst.ra = static_cast<std::uint8_t>(
                parseReg(sl.number, sl.operands[0]));
            inst.rb = inst.ra;
            inst.rc = static_cast<std::uint8_t>(
                parseReg(sl.number, sl.operands[1]));
            prog.code.push_back(inst);
            continue;
        }
        if (sl.mnemonic == "ret") {
            requireOperands(sl, 1);
            Inst inst;
            inst.op = Opcode::JMP;
            inst.ra = zeroReg;
            inst.rb = static_cast<std::uint8_t>(
                parseReg(sl.number, sl.operands[0]));
            prog.code.push_back(inst);
            continue;
        }

        const auto opcode = parseOpcode(sl.mnemonic);
        if (!opcode)
            throw AsmError(sl.number, "unknown mnemonic " + sl.mnemonic);

        Inst inst;
        inst.op = *opcode;

        switch (*opcode) {
          case Opcode::LDIQ:
            requireOperands(sl, 2);
            inst.ra = static_cast<std::uint8_t>(
                parseReg(sl.number, sl.operands[0]));
            inst.imm64 = parseInt(sl.number, sl.operands[1]);
            break;

          case Opcode::LDA: case Opcode::LDAH:
          case Opcode::LDQ: case Opcode::LDL:
          case Opcode::STQ: case Opcode::STL:
            requireOperands(sl, 2);
            inst.ra = static_cast<std::uint8_t>(
                parseReg(sl.number, sl.operands[0]));
            parseMemOperand(sl.number, sl.operands[1], inst.disp, inst.rb);
            break;

          case Opcode::CTLZ: case Opcode::CTTZ: case Opcode::CTPOP:
            requireOperands(sl, 2);
            inst.ra = static_cast<std::uint8_t>(
                parseReg(sl.number, sl.operands[0]));
            inst.rc = static_cast<std::uint8_t>(
                parseReg(sl.number, sl.operands[1]));
            break;

          case Opcode::BR:
            requireOperands(sl, 1);
            inst.ra = zeroReg;
            fixups.push_back({prog.code.size(), sl.operands[0], sl.number});
            break;

          case Opcode::BSR:
            requireOperands(sl, 2);
            inst.ra = static_cast<std::uint8_t>(
                parseReg(sl.number, sl.operands[0]));
            fixups.push_back({prog.code.size(), sl.operands[1], sl.number});
            break;

          case Opcode::JMP:
            requireOperands(sl, 2);
            inst.ra = static_cast<std::uint8_t>(
                parseReg(sl.number, sl.operands[0]));
            inst.rb = static_cast<std::uint8_t>(
                parseReg(sl.number, sl.operands[1]));
            break;

          case Opcode::NOP: case Opcode::HALT:
            requireOperands(sl, 0);
            break;

          default:
            if (isCondBranch(*opcode)) {
                requireOperands(sl, 2);
                inst.ra = static_cast<std::uint8_t>(
                    parseReg(sl.number, sl.operands[0]));
                fixups.push_back(
                    {prog.code.size(), sl.operands[1], sl.number});
            } else {
                // Operate format: op ra, rb|#lit, rc.
                requireOperands(sl, 3);
                inst.ra = static_cast<std::uint8_t>(
                    parseReg(sl.number, sl.operands[0]));
                const std::string &mid = sl.operands[1];
                if (!mid.empty() && mid[0] == '#') {
                    const std::int64_t lit =
                        parseInt(sl.number, mid.substr(1));
                    if (lit < 0 || lit > 255) {
                        throw AsmError(sl.number,
                                       "literal out of range " + mid);
                    }
                    inst.useLit = true;
                    inst.lit = static_cast<std::uint8_t>(lit);
                } else {
                    inst.rb = static_cast<std::uint8_t>(
                        parseReg(sl.number, mid));
                }
                inst.rc = static_cast<std::uint8_t>(
                    parseReg(sl.number, sl.operands[2]));
            }
            break;
        }
        prog.code.push_back(inst);
    }

    // Resolve label references.
    for (const Fixup &f : fixups) {
        const auto it = labels.find(f.label);
        if (it == labels.end())
            throw AsmError(f.line, "undefined label " + f.label);
        prog.code[f.instIndex].disp = static_cast<std::int32_t>(
            static_cast<std::int64_t>(it->second) -
            static_cast<std::int64_t>(f.instIndex) - 1);
    }

    if (entry_set) {
        const auto it = labels.find(entry_label);
        if (it == labels.end())
            throw AsmError(1, "undefined entry label " + entry_label);
        prog.entry = it->second;
    }
    return prog;
}

} // namespace rbsim
