#include "serve/service.hh"

#include <cinttypes>
#include <cstdio>

#include "common/alloccount.hh"
#include "serve/protocol.hh"
#include "trace/tracer.hh"

namespace rbsim::serve
{

SimService::SimService() : SimService(Options{}) {}

SimService::SimService(const Options &opts)
    : queue(opts.workers), warm(queue.workers()),
      cacheCapacity(opts.cacheCapacity)
{}

std::string
SimService::cacheKeyFor(const JobSpec &spec)
{
    char hash[24];
    std::snprintf(hash, sizeof(hash), "|%016" PRIx64 "|",
                  spec.prog.hash());
    // SimOptions canonicalizes its own result-affecting fields; the key
    // tracks the struct so a new option can never alias stale results.
    return configKey(spec.cfg) + "|" + spec.prog.name + hash +
           spec.opts.resultKey();
}

SimService::WarmSim &
SimService::warmFor(unsigned worker, const MachineConfig &cfg,
                    const std::string &config_key)
{
    auto &mine = warm[worker];
    auto it = mine.find(config_key);
    if (it == mine.end()) {
        WarmSim ws;
        ws.sim = std::make_unique<Simulator>(cfg);
        it = mine.emplace(config_key, std::move(ws)).first;
        warmCount.fetch_add(1, std::memory_order_relaxed);
    }
    return it->second;
}

bool
SimService::cacheLookup(const std::string &key, SimResult &out)
{
    std::lock_guard<std::mutex> lock(cacheMu);
    auto it = cacheIndex.find(key);
    if (it == cacheIndex.end())
        return false;
    lru.splice(lru.begin(), lru, it->second); // freshen
    out = it->second->second;
    return true;
}

void
SimService::cacheInsert(const std::string &key, const SimResult &result)
{
    if (!cacheCapacity)
        return;
    std::lock_guard<std::mutex> lock(cacheMu);
    auto it = cacheIndex.find(key);
    if (it != cacheIndex.end()) {
        // A concurrent worker raced us to the same key; keep the newer
        // copy fresh (the results are identical by determinism).
        lru.splice(lru.begin(), lru, it->second);
        return;
    }
    lru.emplace_front(key, result);
    cacheIndex[key] = lru.begin();
    while (lru.size() > cacheCapacity) {
        cacheIndex.erase(lru.back().first);
        lru.pop_back();
    }
}

void
SimService::submit(JobSpec spec, std::function<void(JobOutcome)> done)
{
    // configKey identifies the warm simulator; the full cache key adds
    // the program + options. Both are computed once, on the caller's
    // thread, so the worker's window stays allocation-free.
    std::string config_key = configKey(spec.cfg);
    std::string cache_key;
    if (!spec.bypassCache) {
        cache_key = cacheKeyFor(spec);
        JobOutcome hit;
        if (cacheLookup(cache_key, hit.result)) {
            cacheHits.fetch_add(1, std::memory_order_relaxed);
            hit.ok = true;
            hit.cacheHit = true;
            done(std::move(hit));
            return;
        }
        cacheMisses.fetch_add(1, std::memory_order_relaxed);
    }

    queue.submit([this, spec = std::move(spec),
                  config_key = std::move(config_key),
                  cache_key = std::move(cache_key),
                  done = std::move(done)](unsigned worker) mutable {
        WarmSim &ws = warmFor(worker, spec.cfg, config_key);
        JobOutcome out;
        // Abort-diagnostic ring (constructed before the measured window
        // so traced jobs don't perturb the allocation count; inert and
        // never attached when traceLast == 0, keeping the zero-alloc
        // hot path).
        trace::Tracer::Options ring_opts;
        ring_opts.ringCap = spec.traceLast;
        ring_opts.codeBase = spec.prog.codeBase;
        ring_opts.decodeDepth = spec.cfg.fetchDecodeDepth;
        ring_opts.renameDepth = spec.cfg.renameDepth;
        trace::Tracer ring(ring_opts);
        if (spec.traceLast && !spec.opts.tracer)
            spec.opts.tracer = &ring;
        // The measured window covers exactly the reset + run; the
        // result copy and cache insert below are host bookkeeping
        // outside the zero-alloc invariant.
        out.allocsCounted =
            alloccount::hooked() && alloccount::enabled();
        const std::uint64_t allocs0 = alloccount::threadCount();
        try {
            ws.sim->runInto(spec.prog, spec.opts, ws.scratch);
            out.ok = true;
        } catch (const std::exception &e) {
            out.error = e.what();
        }
        out.workerAllocs = alloccount::threadCount() - allocs0;
        jobsExecuted.fetch_add(1, std::memory_order_relaxed);
        if (out.ok) {
            out.result = ws.scratch;
            // Same triage a local run performs in bench/rbsim-run: a
            // run that stopped without HALT or an instruction budget is
            // an abort, classified by the watchdog counter, with the
            // last-N pipeline ring as the post-mortem.
            out.aborted = !out.result.halted && !out.result.instLimited;
            if (out.aborted) {
                out.deadlockAborts =
                    out.result.counter("core.deadlockAborts");
                out.abortKind = out.deadlockAborts ? "watchdog-deadlock"
                                                   : "cycle-budget";
                if (spec.traceLast)
                    out.traceDump = ring.renderRing();
            } else if (!spec.bypassCache) {
                // Aborted outcomes are deliberately not cached: their
                // value is the diagnostics, and a later retry with a
                // bigger budget must actually run.
                cacheInsert(cache_key, out.result);
            }
        }
        done(std::move(out));
    });
}

std::vector<JobOutcome>
SimService::runBatch(std::vector<JobSpec> specs)
{
    std::vector<JobOutcome> out(specs.size());

    // Coalesce duplicates inside the batch: only the first occurrence of
    // a cacheable key executes; the rest copy its outcome below.
    std::unordered_map<std::string, std::size_t> firstOf;
    std::vector<std::pair<std::size_t, std::size_t>> dups;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (!specs[i].bypassCache) {
            const auto [it, fresh] =
                firstOf.try_emplace(cacheKeyFor(specs[i]), i);
            if (!fresh) {
                dups.emplace_back(i, it->second);
                continue;
            }
        }
        // Distinct slots: no lock needed, wait() orders the writes.
        submit(std::move(specs[i]),
               [&out, i](JobOutcome o) { out[i] = std::move(o); });
    }
    wait();
    for (const auto &[dup, first] : dups) {
        out[dup] = out[first];
        out[dup].cacheHit = true;
    }
    return out;
}

SimService::Counters
SimService::counters() const
{
    Counters c;
    c.cacheHits = cacheHits.load(std::memory_order_relaxed);
    c.cacheMisses = cacheMisses.load(std::memory_order_relaxed);
    c.jobsExecuted = jobsExecuted.load(std::memory_order_relaxed);
    c.warmSimulators = warmCount.load(std::memory_order_relaxed);
    return c;
}

SimService &
SimService::instance()
{
    static SimService service;
    return service;
}

} // namespace rbsim::serve
