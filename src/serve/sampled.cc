#include "serve/sampled.hh"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace rbsim::serve
{

namespace
{

/** Shared accumulator for one campaign's in-flight windows. */
struct Campaign
{
    std::mutex mu;
    SampledOutcome out;
    //! Per-window results in STREAM order (not completion order), so
    //! the merge is deterministic.
    std::vector<double> ipcByWindow;
    std::vector<StatSnapshot> statsByWindow;
    std::size_t remaining = 0;
    std::chrono::steady_clock::time_point t0;
    std::function<void(SampledOutcome)> done;

    /** Call with mu held by the finisher of the last window. */
    void
    finalize()
    {
        if (out.ok) {
            for (std::size_t i = 0; i < ipcByWindow.size(); ++i) {
                out.result.windowIpc.push_back(ipcByWindow[i]);
                accumulateWindowStats(out.result.merged,
                                      statsByWindow[i]);
                ++out.result.windows;
            }
            finalizeMergedStats(out.result.merged);
            out.result.ipcMean = arithmeticMean(out.result.windowIpc);
            out.result.ipcCi95 = ci95HalfWidth(out.result.windowIpc);
        }
        out.result.hostSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        done(std::move(out));
    }
};

} // namespace

void
submitSampled(SimService &service, const MachineConfig &cfg,
              const Program &prog, const SamplingOptions &opts,
              std::function<void(SampledOutcome)> done)
{
    auto camp = std::make_shared<Campaign>();
    camp->t0 = std::chrono::steady_clock::now();
    camp->done = std::move(done);
    camp->out.ok = true;
    camp->out.result.machine = cfg.label;
    camp->out.result.workload = prog.name;

    const auto points =
        collectCheckpoints(cfg, prog, opts, &camp->out.result.ffInsts,
                           &camp->out.result.completed);
    if (points.empty()) {
        std::lock_guard<std::mutex> lock(camp->mu);
        camp->finalize();
        return;
    }

    camp->ipcByWindow.resize(points.size(), 0.0);
    camp->statsByWindow.resize(points.size());
    camp->remaining = points.size();

    for (std::size_t i = 0; i < points.size(); ++i) {
        JobSpec spec;
        spec.cfg = cfg;
        spec.prog = prog;
        spec.opts.maxCycles = opts.maxCyclesPerWindow;
        spec.opts.cosim = opts.cosim;
        spec.opts.warmupInsts = opts.warmupInsts;
        spec.opts.maxInsts = opts.measureInsts;
        spec.opts.startFrom = points[i];
        service.submit(
            std::move(spec), [camp, i](JobOutcome window) {
                bool last = false;
                {
                    std::lock_guard<std::mutex> lock(camp->mu);
                    if (!window.ok) {
                        if (camp->out.ok) {
                            camp->out.ok = false;
                            camp->out.error = window.error;
                        }
                    } else if (window.aborted) {
                        if (camp->out.ok) {
                            camp->out.ok = false;
                            camp->out.aborted = true;
                            camp->out.error = "sampling window " +
                                              std::to_string(i) +
                                              " aborted (" +
                                              window.abortKind + ")";
                        }
                    } else {
                        camp->ipcByWindow[i] = window.result.ipc();
                        camp->statsByWindow[i] = window.result.stats;
                    }
                    last = --camp->remaining == 0;
                    if (last)
                        camp->finalize();
                }
                (void)last;
            });
    }
}

SampledOutcome
runSampled(SimService &service, const MachineConfig &cfg,
           const Program &prog, const SamplingOptions &opts)
{
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    SampledOutcome out;
    submitSampled(service, cfg, prog, opts, [&](SampledOutcome o) {
        std::lock_guard<std::mutex> lock(mu);
        out = std::move(o);
        ready = true;
        cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ready; });
    return out;
}

} // namespace rbsim::serve
