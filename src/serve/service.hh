/**
 * @file
 * The simulation service: a fixed pool of worker threads, each owning a
 * cache of warm (pre-constructed, reset-in-place) Simulator instances,
 * fed through the shared WorkQueue, with a bounded LRU result cache in
 * front (docs/SERVING.md).
 *
 * This is the one execution path behind every parallel sweep: the bench
 * binaries submit their grids here (in-process), and rbsim-serve's
 * network front end submits parsed requests here. Construction cost
 * (rings, pools, rename tables, stat registration) is paid once per
 * (worker, configuration) pair; every later job on that pair is a
 * Simulator::reset() plus the run itself — zero steady-state heap
 * allocations on the worker thread (tests/test_serve.cc pins this).
 */

#ifndef RBSIM_SERVE_SERVICE_HH
#define RBSIM_SERVE_SERVICE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/work_queue.hh"
#include "sim/simulator.hh"

namespace rbsim::serve
{

/** One unit of work: a fully resolved (config, program, options) job. */
struct JobSpec
{
    MachineConfig cfg; //!< scheduler knobs already applied
    Program prog;
    SimOptions opts;
    //! Skip the result cache entirely (lookup and insert). Set for
    //! traced/profiled cells, which must actually execute to produce
    //! their side artifacts.
    bool bypassCache = false;
    //! Keep a worker-local ring of the last N instructions and ship it
    //! in JobOutcome::traceDump when the run aborts, so a served job's
    //! abort carries the same diagnostics a local run prints. 0 keeps
    //! the worker's zero-alloc hot path (no tracer attached).
    unsigned traceLast = 0;
};

/** What a job produced. */
struct JobOutcome
{
    bool ok = false;
    std::string error; //!< exception text when !ok (cosim mismatch, ...)
    bool cacheHit = false;
    //! The run executed but stopped without HALT or an instruction
    //! budget: watchdog deadlock or cycle-budget exhaustion. `result`
    //! still holds the stats up to the stop.
    bool aborted = false;
    std::string abortKind; //!< "watchdog-deadlock" | "cycle-budget"
    std::uint64_t deadlockAborts = 0; //!< core.deadlockAborts at stop
    //! O3PipeView dump of the last JobSpec::traceLast instructions
    //! (aborted runs with traceLast > 0 only).
    std::string traceDump;
    SimResult result;
    //! Heap allocations on the worker thread inside the runInto() window
    //! (meaningful only when allocsCounted).
    std::uint64_t workerAllocs = 0;
    bool allocsCounted = false;
};

/** The service. */
class SimService
{
  public:
    struct Options
    {
        unsigned workers = 0;          //!< 0 = WorkQueue::defaultThreads()
        std::size_t cacheCapacity = 256; //!< result-cache entries (LRU)
    };

    SimService();
    explicit SimService(const Options &opts);

    unsigned workers() const { return queue.workers(); }

    /**
     * The result-cache identity of a job: configKey (every MachineConfig
     * field, scheduler knobs included) + program name + Program::hash()
     * + SimOptions::resultKey(), which canonicalizes EVERY
     * result-affecting option field (tests/test_serve.cc guards that
     * new SimOptions fields revisit resultKey).
     */
    static std::string cacheKeyFor(const JobSpec &spec);

    /**
     * Submit one job. `done` runs exactly once — synchronously on the
     * calling thread for a cache hit, on a worker thread otherwise.
     * Borrowed pointers inside spec.opts (tracer, profiler) must outlive
     * the callback.
     */
    void submit(JobSpec spec, std::function<void(JobOutcome)> done);

    /**
     * Run a whole grid, preserving order. Identical cacheable specs are
     * coalesced: only the first occurrence executes, the rest are marked
     * cacheHit and copy its outcome.
     */
    std::vector<JobOutcome> runBatch(std::vector<JobSpec> specs);

    /** Block until every submitted job has completed. */
    void wait() { queue.wait(); }

    /** Service-wide telemetry (the serve summary line). */
    struct Counters
    {
        std::uint64_t cacheHits = 0;
        std::uint64_t cacheMisses = 0;
        std::uint64_t jobsExecuted = 0;
        std::uint64_t warmSimulators = 0;
    };

    Counters counters() const;

    /**
     * The process-wide instance every bench binary submits through
     * (default worker count, default cache). Constructed on first use.
     */
    static SimService &instance();

  private:
    /** A warm simulator plus its reusable result buffer. */
    struct WarmSim
    {
        std::unique_ptr<Simulator> sim;
        SimResult scratch;
    };

    /** Get or build worker-local warm state for a configuration. */
    WarmSim &warmFor(unsigned worker, const MachineConfig &cfg,
                     const std::string &config_key);

    /** Cache lookup; fills `out` and returns true on a hit. */
    bool cacheLookup(const std::string &key, SimResult &out);
    void cacheInsert(const std::string &key, const SimResult &result);

    WorkQueue queue;

    //! Per-worker warm simulators, keyed by configKey. Each map is only
    //! ever touched by its own worker thread — no locking on the
    //! simulation path.
    std::vector<std::map<std::string, WarmSim>> warm;

    // Result cache: LRU list of (key, result) with an index into it.
    mutable std::mutex cacheMu;
    std::size_t cacheCapacity;
    std::list<std::pair<std::string, SimResult>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, SimResult>>::iterator>
        cacheIndex;

    std::atomic<std::uint64_t> cacheHits{0};
    std::atomic<std::uint64_t> cacheMisses{0};
    std::atomic<std::uint64_t> jobsExecuted{0};
    std::atomic<std::uint64_t> warmCount{0};
};

} // namespace rbsim::serve

#endif // RBSIM_SERVE_SERVICE_HH
