/**
 * @file
 * Minimal JSON-lines TCP client for rbsim-serve — what a bench binary
 * speaks when given --server host:port (docs/SERVING.md).
 */

#ifndef RBSIM_SERVE_CLIENT_HH
#define RBSIM_SERVE_CLIENT_HH

#include <string>

namespace rbsim::serve
{

/** A blocking line-oriented connection to a serve instance. */
class Client
{
  public:
    /** Connect to "host:port". Throws std::runtime_error on failure. */
    explicit Client(const std::string &host_port);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Send one request line (newline appended). Throws on a dead
     *  connection. */
    void sendLine(const std::string &line);

    /** Read one response line. Returns false on EOF. */
    bool readLine(std::string &line);

  private:
    int fd = -1;
    std::string buffer; //!< bytes received past the last returned line
};

} // namespace rbsim::serve

#endif // RBSIM_SERVE_CLIENT_HH
