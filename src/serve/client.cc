#include "serve/client.hh"

#include <cstring>
#include <stdexcept>

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

namespace rbsim::serve
{

Client::Client(const std::string &host_port)
{
    const std::size_t colon = host_port.rfind(':');
    if (colon == std::string::npos || colon + 1 == host_port.size())
        throw std::runtime_error("--server wants host:port, got \"" +
                                 host_port + "\"");
    const std::string host = host_port.substr(0, colon);
    const std::string port = host_port.substr(colon + 1);

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (rc != 0)
        throw std::runtime_error("cannot resolve " + host_port + ": " +
                                 gai_strerror(rc));
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        const int s =
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (s < 0)
            continue;
        if (::connect(s, ai->ai_addr, ai->ai_addrlen) == 0) {
            fd = s;
            break;
        }
        ::close(s);
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        throw std::runtime_error("cannot connect to " + host_port);
}

Client::~Client()
{
    if (fd >= 0)
        ::close(fd);
}

void
Client::sendLine(const std::string &line)
{
    std::string out = line;
    out.push_back('\n');
    const char *data = out.data();
    std::size_t len = out.size();
    while (len) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n <= 0)
            throw std::runtime_error("server connection lost");
        data += n;
        len -= static_cast<std::size_t>(n);
    }
}

bool
Client::readLine(std::string &line)
{
    for (;;) {
        const std::size_t nl = buffer.find('\n');
        if (nl != std::string::npos) {
            line.assign(buffer, 0, nl);
            buffer.erase(0, nl + 1);
            return true;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            if (buffer.empty())
                return false;
            line = std::move(buffer);
            buffer.clear();
            return true;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace rbsim::serve
