#include "serve/server.hh"

#include <cstdio>
#include <stdexcept>

#include "isa/assembler.hh"
#include "workloads/workload.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace rbsim::serve
{

Server::Server(const Options &opts_,
               std::function<void(const std::string &)> sink_)
    : opts(opts_), service(opts_.service), sink(std::move(sink_))
{}

void
Server::emit(const std::string &line)
{
    std::lock_guard<std::mutex> lock(sinkMu);
    sink(line);
}

void
Server::finishJob(const std::string &id, const std::string &key,
                  const std::vector<std::string> &stat_select,
                  const JobOutcome &outcome)
{
    {
        std::lock_guard<std::mutex> lock(stateMu);
        inFlight.erase(key);
        if (outcome.ok && !outcome.aborted)
            ++okCount;
        else
            ++failCount;
    }
    if (!outcome.ok)
        emit(formatError(id, ErrorCode::SimFailed, outcome.error));
    else if (outcome.aborted)
        emit(formatAbort(id, outcome.abortKind, outcome.deadlockAborts,
                         outcome.traceDump));
    else
        emit(formatResult(id, outcome.result, outcome.cacheHit,
                          stat_select));
}

void
Server::finishSampled(const std::string &id, const std::string &key,
                      const std::vector<std::string> &stat_select,
                      const SampledOutcome &outcome)
{
    {
        std::lock_guard<std::mutex> lock(stateMu);
        inFlight.erase(key);
        if (outcome.ok)
            ++okCount;
        else
            ++failCount;
    }
    emit(outcome.ok
             ? formatSampledResult(id, outcome.result, stat_select)
             : formatError(id,
                           outcome.aborted ? ErrorCode::SimAborted
                                           : ErrorCode::SimFailed,
                           outcome.error));
}

void
Server::handleLine(const std::string &line)
{
    if (line.find_first_not_of(" \t\r\n") == std::string::npos)
        return;

    auto fail = [&](const std::string &id, ErrorCode code,
                    const std::string &msg) {
        {
            std::lock_guard<std::mutex> lock(stateMu);
            ++failCount;
        }
        emit(formatError(id, code, msg));
    };

    Json doc;
    try {
        doc = Json::parse(line);
    } catch (const JsonError &e) {
        fail("", ErrorCode::Parse, e.what());
        return;
    }

    // Best-effort id for error records on requests that fail validation.
    std::string id;
    if (doc.isObject()) {
        if (const Json *v = doc.find("id")) {
            if (v->isString())
                id = v->asString();
            else if (v->isIntegral())
                id = std::to_string(v->asU64());
        }
    }

    JobRequest req;
    MachineConfig cfg;
    try {
        req = parseRequest(doc);
        cfg = requestConfig(req);
    } catch (const RequestError &e) {
        fail(id, e.code, e.what());
        return;
    }

    Program prog;
    try {
        if (!req.workload.empty()) {
            if (req.scale > opts.maxScale) {
                fail(id, ErrorCode::OversizedProgram,
                     "scale " + std::to_string(req.scale) +
                         " exceeds the server cap of " +
                         std::to_string(opts.maxScale));
                return;
            }
            const WorkloadInfo &wl = findWorkload(req.workload);
            WorkloadParams wp;
            wp.scale = req.scale;
            prog = wl.build(wp);
        } else {
            prog = assemble(req.programAsm);
            // The program's name is part of the cache identity, so it
            // must depend on content, not on the request id — identical
            // submissions from different clients share a cache entry.
            if (prog.name.empty())
                prog.name = "program";
        }
    } catch (const std::out_of_range &) {
        fail(id, ErrorCode::UnknownWorkload,
             "unknown workload \"" + req.workload + "\"");
        return;
    } catch (const AsmError &e) {
        fail(id, ErrorCode::BadProgram, e.what());
        return;
    }
    if (prog.code.size() > opts.maxProgramInsts) {
        fail(id, ErrorCode::OversizedProgram,
             std::to_string(prog.code.size()) +
                 " instructions exceed the server cap of " +
                 std::to_string(opts.maxProgramInsts));
        return;
    }

    JobSpec spec;
    spec.cfg = std::move(cfg);
    spec.prog = std::move(prog);
    spec.opts.maxCycles = req.maxCycles;
    spec.opts.cosim = req.cosim;
    spec.opts.maxInsts = req.maxInsts;
    spec.traceLast = opts.traceLast;

    // Campaigns are tracked under their own key (the window jobs carry
    // the per-checkpoint cache identities): config + program + regimen.
    std::string key;
    if (req.sampled) {
        char regimen[192];
        std::snprintf(regimen, sizeof(regimen),
                      "|sample;sk=%llu;pd=%llu;wu=%llu;me=%llu;mw=%llu;"
                      "mc=%llu;co=%d",
                      static_cast<unsigned long long>(req.sample.skipInsts),
                      static_cast<unsigned long long>(req.sample.periodInsts),
                      static_cast<unsigned long long>(req.sample.warmupInsts),
                      static_cast<unsigned long long>(req.sample.measureInsts),
                      static_cast<unsigned long long>(req.sample.maxWindows),
                      static_cast<unsigned long long>(
                          req.sample.maxCyclesPerWindow),
                      int(req.sample.cosim));
        char hash[32];
        std::snprintf(hash, sizeof(hash), "%016llx",
                      static_cast<unsigned long long>(spec.prog.hash()));
        key = configKey(spec.cfg) + "|" + spec.prog.name + "|" + hash +
              regimen;
    } else {
        key = SimService::cacheKeyFor(spec);
    }

    {
        std::lock_guard<std::mutex> lock(stateMu);
        if (usedIds.count(req.id)) {
            ++failCount;
            emit(formatError(req.id, ErrorCode::DuplicateId,
                             "id \"" + req.id +
                                 "\" was already used this session"));
            return;
        }
        auto fit = inFlight.find(key);
        if (fit != inFlight.end()) {
            ++failCount;
            emit(formatError(
                req.id, ErrorCode::DuplicateInFlight,
                "identical job already executing as id \"" + fit->second +
                    "\" — resubmit after it completes for a cache hit"));
            return;
        }
        usedIds.insert(req.id);
        inFlight.emplace(key, req.id);
    }

    if (req.sampled) {
        // The fast-forward pass runs here on the request thread (it is
        // the cheap part); the detailed windows land on the worker pool
        // and the response is emitted by whichever worker finishes last.
        try {
            submitSampled(service, spec.cfg, spec.prog, req.sample,
                          [this, id = req.id, key,
                           sel = std::move(req.statSelect)](
                              SampledOutcome outcome) {
                              finishSampled(id, key, sel, outcome);
                          });
        } catch (const std::exception &e) {
            {
                std::lock_guard<std::mutex> lock(stateMu);
                inFlight.erase(key);
                ++failCount;
            }
            emit(formatError(req.id, ErrorCode::SimFailed, e.what()));
        }
        return;
    }

    service.submit(std::move(spec),
                   [this, id = req.id, key,
                    sel = std::move(req.statSelect)](JobOutcome outcome) {
                       finishJob(id, key, sel, outcome);
                   });
}

// ---------------------------------------------------------------- stdio

int
serveStdio(const Server::Options &opts)
{
    Server server(opts, [](const std::string &line) {
        std::fwrite(line.data(), 1, line.size(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
    });
    std::fprintf(stderr, "rbsim-serve: reading JSON-lines on stdin (%u "
                         "workers)\n",
                 server.simService().workers());

    std::string line;
    line.reserve(4096);
    int c;
    while ((c = std::fgetc(stdin)) != EOF) {
        if (c == '\n') {
            server.handleLine(line);
            line.clear();
        } else {
            line.push_back(static_cast<char>(c));
        }
    }
    if (!line.empty())
        server.handleLine(line);
    server.drain();

    const SimService::Counters ctr = server.simService().counters();
    std::fprintf(stderr,
                 "rbsim-serve: %llu ok, %llu failed; %llu executed, "
                 "%llu cache hits, %llu warm simulators\n",
                 static_cast<unsigned long long>(server.jobsOk()),
                 static_cast<unsigned long long>(server.jobsFailed()),
                 static_cast<unsigned long long>(ctr.jobsExecuted),
                 static_cast<unsigned long long>(ctr.cacheHits),
                 static_cast<unsigned long long>(ctr.warmSimulators));
    return 0;
}

// ------------------------------------------------------------------ tcp

namespace
{

void
sendAll(int fd, const char *data, std::size_t len)
{
    while (len) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n <= 0)
            return; // peer went away; responses are best-effort
        data += n;
        len -= static_cast<std::size_t>(n);
    }
}

} // namespace

int
serveTcp(const Server::Options &opts, std::uint16_t port)
{
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0) {
        std::perror("rbsim-serve: socket");
        return 1;
    }
    const int one = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listener, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listener, 8) < 0) {
        std::perror("rbsim-serve: bind/listen");
        ::close(listener);
        return 1;
    }

    // One connection at a time; the Server (and so the result cache and
    // warm simulators) persists across connections. drain() runs before
    // close(), so no worker response can race a dead descriptor.
    int conn = -1;
    Server server(opts, [&conn](const std::string &line) {
        if (conn >= 0) {
            sendAll(conn, line.data(), line.size());
            sendAll(conn, "\n", 1);
        }
    });
    std::fprintf(stderr,
                 "rbsim-serve: listening on 127.0.0.1:%u (%u workers)\n",
                 unsigned{port}, server.simService().workers());

    for (;;) {
        conn = ::accept(listener, nullptr, nullptr);
        if (conn < 0)
            continue;
        std::string line;
        char buf[4096];
        for (;;) {
            const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
            if (n <= 0)
                break;
            for (ssize_t i = 0; i < n; ++i) {
                if (buf[i] == '\n') {
                    server.handleLine(line);
                    line.clear();
                } else {
                    line.push_back(buf[i]);
                }
            }
        }
        if (!line.empty())
            server.handleLine(line);
        server.drain();
        ::close(conn);
        conn = -1;
    }
}

} // namespace rbsim::serve
