/**
 * @file
 * The rbsim-serve JSON-lines protocol (docs/SERVING.md).
 *
 * One request per input line, one response per job, order not
 * guaranteed (clients match on "id"). A request names its program
 * either as a registered workload ("workload" + "scale") or as TinyAlpha
 * assembly ("program"), and its machine either as a paper label/alias
 * ("machine" + "width") or as a full configuration object ("config",
 * the same shape configToJson emits — every MachineConfig field, so
 * ablation grids survive the wire).
 *
 * Responses are rbsim-bench-1 cells (machine/workload/ipc/host_ms/
 * sim_khz/stats) extended with the serve envelope: "schema"
 * ("rbsim-serve-1"), "id", "ok", "cache_hit", "halted". Failures are
 * structured per-job error records ({"ok": false, "code", "error"});
 * the server never dies on a bad request — the batch continues, the
 * same failure-isolation convention as rbsim-fuzz --replay.
 */

#ifndef RBSIM_SERVE_PROTOCOL_HH
#define RBSIM_SERVE_PROTOCOL_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "core/machine_config.hh"
#include "sim/sampling.hh"
#include "sim/simulator.hh"

namespace rbsim::serve
{

/** The response schema tag. */
inline constexpr const char *schemaName = "rbsim-serve-1";

/** Machine-readable failure categories (docs/SERVING.md). */
enum class ErrorCode
{
    Parse,            //!< malformed JSON line
    BadRequest,       //!< well-formed JSON, invalid shape/fields
    UnknownMachine,   //!< machine label/alias not recognized
    UnknownWorkload,  //!< workload name not registered
    UnknownScheduler, //!< scheduler not wakeup/polled/oracle
    BadProgram,       //!< assembly failed to assemble
    OversizedProgram, //!< program exceeds the server's instruction cap
    DuplicateId,      //!< request id already used this session
    DuplicateInFlight, //!< identical job already executing
    SimFailed,        //!< run threw (cosim mismatch)
    SimAborted,       //!< run stopped without HALT (watchdog deadlock or
                      //!< cycle budget); record carries the diagnostics
};

/** Wire name of an error code ("unknown-machine", ...). */
const char *errorCodeName(ErrorCode code);

/** A parsed job request. */
struct JobRequest
{
    std::string id;

    // Program: exactly one of the two.
    std::string workload;   //!< registered workload name
    std::string programAsm; //!< TinyAlpha assembly text
    unsigned scale = 1;     //!< workload scale factor

    // Machine: label/alias + width, or a full config object.
    std::string machine;
    unsigned width = 4;
    Json config; //!< full MachineConfig (null when machine/width used)

    std::string scheduler = "wakeup"; //!< wakeup | polled | oracle
    Cycle maxCycles = 100'000'000;
    bool cosim = true;
    //! "max_insts": retired-instruction budget (0 = run to HALT). A
    //! budget-limited stop is a success, not an abort.
    std::uint64_t maxInsts = 0;
    //! "sample" object present: run a SMARTS sampling campaign instead
    //! of one full-detail run. The response is a sampled cell
    //! (ipc/ipc_ci95/windows) whose windows are sharded across the
    //! service's worker pool.
    bool sampled = false;
    SamplingOptions sample; //!< regimen (sample.cosim mirrors `cosim`)
    //! Stat-name filter for the response ("core.ipc", ...); empty keeps
    //! every registered stat.
    std::vector<std::string> statSelect;
};

/** Thrown by parseRequest / requestConfig on an invalid request. */
class RequestError : public std::runtime_error
{
  public:
    RequestError(ErrorCode code_, const std::string &what_arg)
        : std::runtime_error(what_arg), code(code_)
    {}

    ErrorCode code;
};

/**
 * Parse one request line. Throws JsonError on malformed JSON and
 * RequestError on an invalid request object.
 */
JobRequest parseRequest(const std::string &line);

/** Same, from an already-parsed document (the server parses once). */
JobRequest parseRequest(const Json &j);

/**
 * Resolve a request's machine specification to a MachineConfig with the
 * requested scheduler applied. Throws RequestError (UnknownMachine /
 * UnknownScheduler / BadRequest).
 */
MachineConfig requestConfig(const JobRequest &req);

/** Serialize every MachineConfig field (requestConfig inverse). */
Json configToJson(const MachineConfig &cfg);

/** Rebuild a MachineConfig from configToJson output. Unknown keys are
 * rejected, missing keys keep the label's base construction — a dump
 * from a newer field set fails loudly instead of silently dropping an
 * ablation knob. Throws RequestError. */
MachineConfig configFromJson(const Json &j);

/**
 * Canonical configuration fingerprint: the compact JSON dump of
 * configToJson. Two configs simulate identically iff their keys match
 * (label included), so this keys both the per-worker warm-simulator
 * cache and the result cache.
 */
std::string configKey(const MachineConfig &cfg);

/** Render a success response line (no trailing newline). */
std::string formatResult(const std::string &id, const SimResult &result,
                         bool cache_hit,
                         const std::vector<std::string> &stat_select);

/** Render a structured per-job error record (no trailing newline). */
std::string formatError(const std::string &id, ErrorCode code,
                        const std::string &message);

/**
 * Render the structured record of an aborted run (code "sim-aborted"):
 * the same diagnostics a local run prints — abort classification, the
 * core.deadlockAborts counter, and the last-N pipeline trace ring dump
 * (omitted when empty).
 */
std::string formatAbort(const std::string &id,
                        const std::string &abort_kind,
                        std::uint64_t deadlock_aborts,
                        const std::string &trace_dump);

/**
 * Render a sampled-campaign response: the serve envelope plus
 * "sampled": true, mean IPC with its 95% CI half-width, window count,
 * and the merged window stats in the same nested shape as formatResult.
 */
std::string formatSampledResult(
    const std::string &id, const SampledResult &result,
    const std::vector<std::string> &stat_select);

} // namespace rbsim::serve

#endif // RBSIM_SERVE_PROTOCOL_HH
