/**
 * @file
 * The rbsim-serve front end: request-line handling, duplicate tracking,
 * and the stdio / TCP serving loops (docs/SERVING.md).
 *
 * The Server owns a SimService and turns protocol lines into jobs. One
 * thread feeds handleLine(); responses come back through the sink from
 * worker threads (or synchronously for cache hits and errors), so the
 * sink is serialized internally. Every failure is a structured per-job
 * error record — a bad request never takes the server down.
 */

#ifndef RBSIM_SERVE_SERVER_HH
#define RBSIM_SERVE_SERVER_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "serve/protocol.hh"
#include "serve/sampled.hh"
#include "serve/service.hh"

namespace rbsim::serve
{

/** The server. */
class Server
{
  public:
    struct Options
    {
        SimService::Options service;
        //! Reject programs above this many static instructions
        //! (OversizedProgram) — a cheap denial-of-service guard.
        std::size_t maxProgramInsts = 1u << 20;
        //! Reject workload requests above this scale factor (the build
        //! cost and dynamic length grow linearly with it).
        unsigned maxScale = 10000;
        //! Ring size for abort diagnostics: served jobs keep a
        //! worker-local trace of the last N instructions and ship it in
        //! the sim-aborted record, matching what a local run prints.
        //! 0 disables the ring (and restores the zero-alloc worker path).
        unsigned traceLast = 64;
    };

    /** `sink` receives one response line per job (no newline). It is
     *  called under an internal mutex, possibly from worker threads. */
    Server(const Options &opts, std::function<void(const std::string &)> sink);

    /**
     * Handle one request line (empty/whitespace lines are ignored).
     * Immediate failures emit an error record before returning;
     * accepted jobs respond asynchronously.
     */
    void handleLine(const std::string &line);

    /** Block until every accepted job has responded. */
    void drain() { service.wait(); }

    SimService &simService() { return service; }

    /** Jobs that responded ok / with an error record. */
    std::uint64_t jobsOk() const { return okCount; }
    std::uint64_t jobsFailed() const { return failCount; }

  private:
    void emit(const std::string &line);
    void finishJob(const std::string &id, const std::string &key,
                   const std::vector<std::string> &stat_select,
                   const JobOutcome &outcome);
    void finishSampled(const std::string &id, const std::string &key,
                       const std::vector<std::string> &stat_select,
                       const SampledOutcome &outcome);

    Options opts;
    SimService service;
    std::function<void(const std::string &)> sink;
    std::mutex sinkMu;

    // Request-tracking state. handleLine runs on one thread, but
    // completion callbacks mutate inFlight from workers.
    std::mutex stateMu;
    std::unordered_set<std::string> usedIds;
    std::unordered_map<std::string, std::string> inFlight; //!< key -> id
    std::uint64_t okCount = 0;
    std::uint64_t failCount = 0;
};

/**
 * Serve JSON-lines on stdin/stdout until EOF, then drain and print a
 * summary (jobs, cache hits, warm simulators) to stderr.
 * Returns a process exit code.
 */
int serveStdio(const Server::Options &opts);

/**
 * Serve on a TCP port (connections handled sequentially; the service
 * and its caches persist across connections). Returns a process exit
 * code (only on a socket setup failure — otherwise loops forever).
 */
int serveTcp(const Server::Options &opts, std::uint16_t port);

} // namespace rbsim::serve

#endif // RBSIM_SERVE_SERVER_HH
