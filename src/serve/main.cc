/**
 * @file
 * rbsim-serve: the persistent simulation service (docs/SERVING.md).
 *
 *   rbsim-serve                    # JSON-lines on stdin/stdout
 *   rbsim-serve --port 7774        # TCP on 127.0.0.1:7774
 *
 * Options:
 *   --workers <n>    worker threads (default: one per hardware thread)
 *   --cache <n>      result-cache entries (default 256; 0 disables)
 *   --max-insts <n>  static-instruction cap per program (default 1Mi)
 *   --max-scale <n>  workload scale cap (default 10000)
 *   --trace-ring <n> last-n instruction ring attached to aborted jobs'
 *                    error responses (default 64; 0 disables the ring
 *                    and restores the zero-allocation serving path)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.hh"

namespace
{

[[noreturn]] void
usageDie(const char *prog, const char *why)
{
    std::fprintf(stderr,
                 "%s: %s\n"
                 "usage: %s [--port <n>] [--workers <n>] [--cache <n>] "
                 "[--max-insts <n>] [--max-scale <n>] [--trace-ring <n>]\n",
                 prog, why, prog);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    rbsim::serve::Server::Options opts;
    long port = -1;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&](const char *flag) -> long {
            if (i + 1 >= argc)
                usageDie(argv[0],
                         (std::string(flag) + " needs a value").c_str());
            char *end = nullptr;
            const long n = std::strtol(argv[++i], &end, 10);
            if (!end || *end || n < 0)
                usageDie(argv[0], (std::string(flag) +
                                   " wants a non-negative integer")
                                      .c_str());
            return n;
        };
        if (std::strcmp(arg, "--port") == 0) {
            port = value("--port");
            if (port < 1 || port > 65535)
                usageDie(argv[0], "--port must be 1..65535");
        } else if (std::strcmp(arg, "--workers") == 0) {
            opts.service.workers = static_cast<unsigned>(value("--workers"));
        } else if (std::strcmp(arg, "--cache") == 0) {
            opts.service.cacheCapacity =
                static_cast<std::size_t>(value("--cache"));
        } else if (std::strcmp(arg, "--max-insts") == 0) {
            opts.maxProgramInsts =
                static_cast<std::size_t>(value("--max-insts"));
        } else if (std::strcmp(arg, "--max-scale") == 0) {
            opts.maxScale = static_cast<unsigned>(value("--max-scale"));
        } else if (std::strcmp(arg, "--trace-ring") == 0) {
            opts.traceLast = static_cast<unsigned>(value("--trace-ring"));
        } else {
            usageDie(argv[0],
                     (std::string("unknown flag ") + arg).c_str());
        }
    }

    return port < 0 ? rbsim::serve::serveStdio(opts)
                    : rbsim::serve::serveTcp(
                          opts, static_cast<std::uint16_t>(port));
}
