#include "serve/protocol.hh"

#include <cstdio>

namespace rbsim::serve
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Parse: return "parse";
      case ErrorCode::BadRequest: return "bad-request";
      case ErrorCode::UnknownMachine: return "unknown-machine";
      case ErrorCode::UnknownWorkload: return "unknown-workload";
      case ErrorCode::UnknownScheduler: return "unknown-scheduler";
      case ErrorCode::BadProgram: return "bad-program";
      case ErrorCode::OversizedProgram: return "oversized-program";
      case ErrorCode::DuplicateId: return "duplicate-id";
      case ErrorCode::DuplicateInFlight: return "duplicate-in-flight";
      case ErrorCode::SimFailed: return "sim-failed";
      case ErrorCode::SimAborted: return "sim-aborted";
      default: return "<bad>";
    }
}

namespace
{

[[noreturn]] void
bad(const std::string &msg)
{
    throw RequestError(ErrorCode::BadRequest, msg);
}

std::string
asStringField(const Json &v, const std::string &key)
{
    if (!v.isString())
        bad("\"" + key + "\" must be a string");
    return v.asString();
}

std::uint64_t
asU64Field(const Json &v, const std::string &key)
{
    if (!v.isIntegral())
        bad("\"" + key + "\" must be a non-negative integer");
    return v.asU64();
}

bool
asBoolField(const Json &v, const std::string &key)
{
    if (!v.isBool())
        bad("\"" + key + "\" must be a boolean");
    return v.asBool();
}

const char *
steeringName(Steering s)
{
    // Same wire names as the fuzz corpus headers (src/fuzz/corpus.cc).
    switch (s) {
      case Steering::RoundRobinPairs: return "rr-pairs";
      case Steering::DependenceAware: return "dep-aware";
      case Steering::ClassPartition: return "class-partition";
      default: return "<bad>";
    }
}

Steering
steeringFromName(const std::string &name)
{
    if (name == "rr-pairs")
        return Steering::RoundRobinPairs;
    if (name == "dep-aware")
        return Steering::DependenceAware;
    if (name == "class-partition")
        return Steering::ClassPartition;
    bad("unknown steering policy \"" + name + "\"");
}

const char *
kindName(MachineKind kind)
{
    switch (kind) {
      case MachineKind::Baseline: return "base";
      case MachineKind::RbLimited: return "rblim";
      case MachineKind::RbFull: return "rbfull";
      case MachineKind::Ideal: return "ideal";
      default: return "<bad>";
    }
}

/** Accepts both the short aliases and the paper's figure labels. */
bool
kindFromName(const std::string &name, MachineKind &out)
{
    if (name == "base" || name == "Baseline")
        out = MachineKind::Baseline;
    else if (name == "rblim" || name == "RB-limited")
        out = MachineKind::RbLimited;
    else if (name == "rbfull" || name == "RB-full")
        out = MachineKind::RbFull;
    else if (name == "ideal" || name == "Ideal")
        out = MachineKind::Ideal;
    else
        return false;
    return true;
}

Json
cacheToJson(const CacheParams &c)
{
    Json j = Json::object();
    j["size_bytes"] = Json(std::uint64_t{c.sizeBytes});
    j["assoc"] = Json(std::uint64_t{c.assoc});
    j["line_bytes"] = Json(std::uint64_t{c.lineBytes});
    j["latency"] = Json(std::uint64_t{c.latency});
    j["banks"] = Json(std::uint64_t{c.banks});
    j["bank_busy"] = Json(std::uint64_t{c.bankBusy});
    return j;
}

CacheParams
cacheFromJson(const Json &j, const std::string &key)
{
    if (!j.isObject())
        bad("\"" + key + "\" must be an object");
    CacheParams c;
    for (const auto &[k, v] : j.items()) {
        if (k == "size_bytes")
            c.sizeBytes = static_cast<std::uint32_t>(asU64Field(v, k));
        else if (k == "assoc")
            c.assoc = static_cast<std::uint32_t>(asU64Field(v, k));
        else if (k == "line_bytes")
            c.lineBytes = static_cast<std::uint32_t>(asU64Field(v, k));
        else if (k == "latency")
            c.latency = static_cast<unsigned>(asU64Field(v, k));
        else if (k == "banks")
            c.banks = static_cast<unsigned>(asU64Field(v, k));
        else if (k == "bank_busy")
            c.bankBusy = static_cast<unsigned>(asU64Field(v, k));
        else
            bad("unknown key \"" + k + "\" in \"" + key + "\"");
    }
    return c;
}

} // namespace

JobRequest
parseRequest(const std::string &line)
{
    return parseRequest(Json::parse(line)); // throws JsonError on bad JSON
}

JobRequest
parseRequest(const Json &j)
{
    if (!j.isObject())
        bad("request must be a JSON object");

    JobRequest req;
    bool sawId = false, sawWorkload = false, sawProgram = false;
    bool sawMachine = false, sawConfig = false;
    for (const auto &[key, v] : j.items()) {
        if (key == "id") {
            sawId = true;
            if (v.isString())
                req.id = v.asString();
            else if (v.isIntegral())
                req.id = std::to_string(v.asU64());
            else
                bad("\"id\" must be a string or integer");
        } else if (key == "workload") {
            sawWorkload = true;
            req.workload = asStringField(v, key);
        } else if (key == "program") {
            sawProgram = true;
            req.programAsm = asStringField(v, key);
        } else if (key == "scale") {
            req.scale = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "machine") {
            sawMachine = true;
            req.machine = asStringField(v, key);
        } else if (key == "width") {
            req.width = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "config") {
            sawConfig = true;
            if (!v.isObject())
                bad("\"config\" must be an object");
            req.config = v;
        } else if (key == "scheduler") {
            req.scheduler = asStringField(v, key);
        } else if (key == "max_cycles") {
            req.maxCycles = asU64Field(v, key);
        } else if (key == "cosim") {
            req.cosim = asBoolField(v, key);
        } else if (key == "max_insts") {
            req.maxInsts = asU64Field(v, key);
        } else if (key == "sample") {
            if (!v.isObject())
                bad("\"sample\" must be an object");
            req.sampled = true;
            for (const auto &[sk, sv] : v.items()) {
                if (sk == "skip_insts")
                    req.sample.skipInsts = asU64Field(sv, sk);
                else if (sk == "period_insts")
                    req.sample.periodInsts = asU64Field(sv, sk);
                else if (sk == "warmup_insts")
                    req.sample.warmupInsts = asU64Field(sv, sk);
                else if (sk == "measure_insts")
                    req.sample.measureInsts = asU64Field(sv, sk);
                else if (sk == "max_windows")
                    req.sample.maxWindows = asU64Field(sv, sk);
                else if (sk == "max_cycles_per_window")
                    req.sample.maxCyclesPerWindow = asU64Field(sv, sk);
                else
                    bad("unknown key \"" + sk + "\" in \"sample\"");
            }
            if (req.sample.periodInsts == 0 ||
                req.sample.measureInsts == 0)
                bad("\"sample\" needs nonzero period_insts and "
                    "measure_insts");
        } else if (key == "stats") {
            if (!v.isArray())
                bad("\"stats\" must be an array of stat names");
            for (const Json &e : v.elements())
                req.statSelect.push_back(asStringField(e, key));
        } else {
            bad("unknown key \"" + key + "\"");
        }
    }

    if (!sawId || req.id.empty())
        bad("missing \"id\"");
    if (sawWorkload == sawProgram)
        bad("exactly one of \"workload\" / \"program\" is required");
    if (sawMachine && sawConfig)
        bad("\"machine\" and \"config\" are mutually exclusive");
    if (!sawMachine && !sawConfig)
        bad("one of \"machine\" / \"config\" is required");
    if (sawWorkload && req.scale == 0)
        bad("\"scale\" must be at least 1");
    if (req.sampled && req.maxInsts)
        bad("\"max_insts\" and \"sample\" are mutually exclusive");
    req.sample.cosim = req.cosim;
    return req;
}

MachineConfig
requestConfig(const JobRequest &req)
{
    MachineConfig cfg;
    if (!req.config.isNull()) {
        cfg = configFromJson(req.config);
    } else {
        MachineKind kind;
        if (!kindFromName(req.machine, kind))
            throw RequestError(ErrorCode::UnknownMachine,
                               "unknown machine \"" + req.machine +
                                   "\" (want base/rblim/rbfull/ideal or a "
                                   "figure label)");
        if (req.width != 4 && req.width != 8 && req.width != 16)
            bad("\"width\" must be 4, 8, or 16");
        cfg = MachineConfig::make(kind, req.width);
    }

    // The scheduler knobs ride on top of whichever machine was named;
    // both produce bit-identical statistics (CI pins it), so the result
    // cache treats them as distinct keys only because the host-speed
    // numbers differ.
    if (req.scheduler == "wakeup") {
        cfg.polledScheduler = false;
        cfg.wakeupOracle = false;
    } else if (req.scheduler == "polled") {
        cfg.polledScheduler = true;
        cfg.wakeupOracle = false;
    } else if (req.scheduler == "oracle") {
        cfg.polledScheduler = false;
        cfg.wakeupOracle = true;
    } else {
        throw RequestError(ErrorCode::UnknownScheduler,
                           "unknown scheduler \"" + req.scheduler +
                               "\" (want wakeup, polled, or oracle)");
    }
    return cfg;
}

Json
configToJson(const MachineConfig &cfg)
{
    Json j = Json::object();
    j["kind"] = Json(kindName(cfg.kind));
    j["label"] = Json(cfg.label);
    j["width"] = Json(std::uint64_t{cfg.width});
    j["num_schedulers"] = Json(std::uint64_t{cfg.numSchedulers});
    j["sched_entries"] = Json(std::uint64_t{cfg.schedEntries});
    j["select_width"] = Json(std::uint64_t{cfg.selectWidth});
    j["num_clusters"] = Json(std::uint64_t{cfg.numClusters});
    j["cross_cluster_delay"] = Json(std::uint64_t{cfg.crossClusterDelay});
    j["fetch_width"] = Json(std::uint64_t{cfg.fetchWidth});
    j["fetch_blocks"] = Json(std::uint64_t{cfg.fetchBlocks});
    j["rename_width"] = Json(std::uint64_t{cfg.renameWidth});
    j["retire_width"] = Json(std::uint64_t{cfg.retireWidth});
    j["rob_entries"] = Json(std::uint64_t{cfg.robEntries});
    j["lsq_entries"] = Json(std::uint64_t{cfg.lsqEntries});
    j["phys_regs"] = Json(std::uint64_t{cfg.physRegs});
    j["fetch_decode_depth"] = Json(std::uint64_t{cfg.fetchDecodeDepth});
    j["rename_depth"] = Json(std::uint64_t{cfg.renameDepth});
    j["rf_read_depth"] = Json(std::uint64_t{cfg.rfReadDepth});
    j["num_bypass_levels"] = Json(std::uint64_t{cfg.numBypassLevels});
    j["bypass_level_mask"] = Json(std::uint64_t{cfg.bypassLevelMask});
    j["rb_limited_bypass"] = Json(cfg.rbLimitedBypass);
    j["has_rb_regfile"] = Json(cfg.hasRbRegfile);
    j["hole_aware_scheduling"] = Json(cfg.holeAwareScheduling);
    j["steering"] = Json(steeringName(cfg.steering));
    j["polled_scheduler"] = Json(cfg.polledScheduler);
    j["wakeup_oracle"] = Json(cfg.wakeupOracle);
    j["idle_skip"] = Json(cfg.idleSkip);
    j["deadlock_cycles"] = Json(std::uint64_t{cfg.deadlockCycles});
    j["il1"] = cacheToJson(cfg.il1);
    j["dl1"] = cacheToJson(cfg.dl1);
    j["l2"] = cacheToJson(cfg.l2);
    j["mem_latency"] = Json(std::uint64_t{cfg.memLatency});
    j["mem_banks"] = Json(std::uint64_t{cfg.memBanks});
    j["mem_bank_busy"] = Json(std::uint64_t{cfg.memBankBusy});
    Json lat = Json::array();
    for (const LatencyPair &p : cfg.latency) {
        Json pair = Json::array();
        pair.push(Json(std::uint64_t{p.early}));
        pair.push(Json(std::uint64_t{p.late}));
        lat.push(std::move(pair));
    }
    j["latency"] = std::move(lat);
    j["store_complete_lat"] = Json(std::uint64_t{cfg.storeCompleteLat});
    return j;
}

MachineConfig
configFromJson(const Json &j)
{
    if (!j.isObject())
        bad("\"config\" must be an object");

    // Start from the named base machine so a partial dump (kind + the
    // knobs an ablation actually turns) round-trips; then overlay every
    // present key. Unknown keys fail loudly — a dump from a newer field
    // set must not silently drop an ablation knob.
    const Json *kindField = j.find("kind");
    if (!kindField || !kindField->isString())
        bad("\"config\" requires a string \"kind\"");
    MachineKind kind;
    if (!kindFromName(kindField->asString(), kind))
        throw RequestError(ErrorCode::UnknownMachine,
                           "unknown config kind \"" +
                               kindField->asString() + "\"");
    const Json *widthField = j.find("width");
    const unsigned width =
        widthField ? static_cast<unsigned>(asU64Field(*widthField, "width"))
                   : 4u;
    if (width != 4 && width != 8 && width != 16)
        bad("\"width\" must be 4, 8, or 16");
    MachineConfig cfg = MachineConfig::make(kind, width);

    for (const auto &[key, v] : j.items()) {
        if (key == "kind" || key == "width") {
            // consumed above
        } else if (key == "label") {
            cfg.label = asStringField(v, key);
        } else if (key == "num_schedulers") {
            cfg.numSchedulers = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "sched_entries") {
            cfg.schedEntries = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "select_width") {
            cfg.selectWidth = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "num_clusters") {
            cfg.numClusters = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "cross_cluster_delay") {
            cfg.crossClusterDelay =
                static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "fetch_width") {
            cfg.fetchWidth = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "fetch_blocks") {
            cfg.fetchBlocks = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "rename_width") {
            cfg.renameWidth = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "retire_width") {
            cfg.retireWidth = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "rob_entries") {
            cfg.robEntries = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "lsq_entries") {
            cfg.lsqEntries = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "phys_regs") {
            cfg.physRegs = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "fetch_decode_depth") {
            cfg.fetchDecodeDepth =
                static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "rename_depth") {
            cfg.renameDepth = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "rf_read_depth") {
            cfg.rfReadDepth = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "num_bypass_levels") {
            cfg.numBypassLevels =
                static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "bypass_level_mask") {
            cfg.bypassLevelMask =
                static_cast<std::uint8_t>(asU64Field(v, key));
        } else if (key == "rb_limited_bypass") {
            cfg.rbLimitedBypass = asBoolField(v, key);
        } else if (key == "has_rb_regfile") {
            cfg.hasRbRegfile = asBoolField(v, key);
        } else if (key == "hole_aware_scheduling") {
            cfg.holeAwareScheduling = asBoolField(v, key);
        } else if (key == "steering") {
            cfg.steering = steeringFromName(asStringField(v, key));
        } else if (key == "polled_scheduler") {
            cfg.polledScheduler = asBoolField(v, key);
        } else if (key == "wakeup_oracle") {
            cfg.wakeupOracle = asBoolField(v, key);
        } else if (key == "idle_skip") {
            cfg.idleSkip = asBoolField(v, key);
        } else if (key == "deadlock_cycles") {
            cfg.deadlockCycles = asU64Field(v, key);
        } else if (key == "il1") {
            cfg.il1 = cacheFromJson(v, key);
        } else if (key == "dl1") {
            cfg.dl1 = cacheFromJson(v, key);
        } else if (key == "l2") {
            cfg.l2 = cacheFromJson(v, key);
        } else if (key == "mem_latency") {
            cfg.memLatency = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "mem_banks") {
            cfg.memBanks = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "mem_bank_busy") {
            cfg.memBankBusy = static_cast<unsigned>(asU64Field(v, key));
        } else if (key == "latency") {
            if (!v.isArray() || v.size() != cfg.latency.size())
                bad("\"latency\" must be an array of " +
                    std::to_string(cfg.latency.size()) +
                    " [early, late] pairs");
            for (std::size_t i = 0; i < cfg.latency.size(); ++i) {
                const Json &pair = v.elements()[i];
                if (!pair.isArray() || pair.size() != 2)
                    bad("\"latency\" entries must be [early, late] pairs");
                cfg.latency[i].early = static_cast<unsigned>(
                    asU64Field(pair.elements()[0], key));
                cfg.latency[i].late = static_cast<unsigned>(
                    asU64Field(pair.elements()[1], key));
            }
        } else if (key == "store_complete_lat") {
            cfg.storeCompleteLat =
                static_cast<unsigned>(asU64Field(v, key));
        } else {
            bad("unknown config key \"" + key + "\"");
        }
    }
    return cfg;
}

std::string
configKey(const MachineConfig &cfg)
{
    return configToJson(cfg).dump();
}

namespace
{

/** The nested "stats" object shared by full and sampled responses —
 * same shape as a bench JSON cell's "stats", so responses drop into
 * rbsim-bench-1 files (and bench_diff) unchanged. */
Json
statsToJson(const StatSnapshot &snap,
            const std::vector<std::string> &stat_select)
{
    const auto want = [&](const std::string &name) {
        if (stat_select.empty())
            return true;
        for (const std::string &sel : stat_select)
            if (sel == name)
                return true;
        return false;
    };
    Json stats = Json::object();
    Json counters = Json::object();
    for (const auto &[name, value] : snap.counters)
        if (want(name))
            counters[name] = Json(value);
    Json formulas = Json::object();
    for (const auto &[name, value] : snap.formulas)
        if (want(name))
            formulas[name] = Json(value);
    Json vectors = Json::object();
    for (const auto &[name, values] : snap.vectors) {
        if (!want(name))
            continue;
        Json arr = Json::array();
        for (std::uint64_t v : values)
            arr.push(Json(v));
        vectors[name] = std::move(arr);
    }
    stats["counters"] = std::move(counters);
    stats["formulas"] = std::move(formulas);
    stats["vectors"] = std::move(vectors);
    return stats;
}

} // namespace

std::string
formatResult(const std::string &id, const SimResult &result,
             bool cache_hit, const std::vector<std::string> &stat_select)
{
    Json j = Json::object();
    j["schema"] = Json(schemaName);
    j["id"] = Json(id);
    j["ok"] = Json(true);
    j["cache_hit"] = Json(cache_hit);
    // The rbsim-bench-1 cell fields, so a response line can be dropped
    // straight into a bench JSON's "cells" array.
    j["machine"] = Json(result.machine);
    j["workload"] = Json(result.workload);
    j["ipc"] = Json(result.ipc());
    j["host_ms"] = Json(result.hostSeconds * 1e3);
    j["sim_khz"] = Json(result.simKhz());
    j["halted"] = Json(result.halted);
    if (result.instLimited)
        j["inst_limited"] = Json(true);
    j["stats"] = statsToJson(result.stats, stat_select);
    return j.dump();
}

std::string
formatSampledResult(const std::string &id, const SampledResult &result,
                    const std::vector<std::string> &stat_select)
{
    Json j = Json::object();
    j["schema"] = Json(schemaName);
    j["id"] = Json(id);
    j["ok"] = Json(true);
    j["cache_hit"] = Json(false);
    j["sampled"] = Json(true);
    j["machine"] = Json(result.machine);
    j["workload"] = Json(result.workload);
    j["ipc"] = Json(result.ipcMean);
    j["ipc_ci95"] = Json(result.ipcCi95);
    j["windows"] = Json(result.windows);
    j["ff_insts"] = Json(result.ffInsts);
    j["completed"] = Json(result.completed);
    j["host_ms"] = Json(result.hostSeconds * 1e3);
    j["halted"] = Json(result.completed);
    j["stats"] = statsToJson(result.merged, stat_select);
    return j.dump();
}

std::string
formatAbort(const std::string &id, const std::string &abort_kind,
            std::uint64_t deadlock_aborts, const std::string &trace_dump)
{
    Json j = Json::object();
    j["schema"] = Json(schemaName);
    j["id"] = Json(id);
    j["ok"] = Json(false);
    j["code"] = Json(errorCodeName(ErrorCode::SimAborted));
    j["error"] =
        Json("simulation stopped before HALT (" + abort_kind + ")");
    j["abort_kind"] = Json(abort_kind);
    j["deadlock_aborts"] = Json(deadlock_aborts);
    if (!trace_dump.empty())
        j["trace"] = Json(trace_dump);
    return j.dump();
}

std::string
formatError(const std::string &id, ErrorCode code,
            const std::string &message)
{
    Json j = Json::object();
    j["schema"] = Json(schemaName);
    if (!id.empty())
        j["id"] = Json(id);
    j["ok"] = Json(false);
    j["code"] = Json(errorCodeName(code));
    j["error"] = Json(message);
    return j.dump();
}

} // namespace rbsim::serve
