/**
 * @file
 * Sharded sampling campaigns: run one long workload's SMARTS windows
 * (src/sim/sampling.hh) across the SimService worker pool.
 *
 * Because the functional model carries all inter-window state, every
 * detailed window is an independent (checkpoint -> warmup -> measure)
 * job; sharding them across workers is embarrassingly parallel and
 * bit-reproducible: window results are accumulated in stream order, so
 * a sharded campaign merges to exactly the in-process
 * simulateSampled() numbers regardless of completion order (pinned by
 * tests/test_sampling.cc).
 */

#ifndef RBSIM_SERVE_SAMPLED_HH
#define RBSIM_SERVE_SAMPLED_HH

#include "serve/service.hh"
#include "sim/sampling.hh"

namespace rbsim::serve
{

/** What a sharded campaign delivers to its completion callback. */
struct SampledOutcome
{
    bool ok = false;
    std::string error; //!< first failing window's error (!ok)
    //! Set with `error` when a window stopped on the watchdog or cycle
    //! budget rather than throwing.
    bool aborted = false;
    SampledResult result;
};

/**
 * Fast-forward `prog` collecting checkpoints (on the calling thread —
 * functional execution is cheap), then submit every detailed window to
 * `service` and merge as windows complete. `done` runs exactly once, on
 * whichever thread finishes the last window (synchronously for a
 * zero-window program). Window results land in the service's result
 * cache keyed by checkpoint fingerprint, so repeating a campaign is
 * all cache hits.
 */
void submitSampled(SimService &service, const MachineConfig &cfg,
                   const Program &prog, const SamplingOptions &opts,
                   std::function<void(SampledOutcome)> done);

/** Blocking convenience: submitSampled + wait (bench --server path). */
SampledOutcome runSampled(SimService &service, const MachineConfig &cfg,
                          const Program &prog,
                          const SamplingOptions &opts);

} // namespace rbsim::serve

#endif // RBSIM_SERVE_SAMPLED_HH
