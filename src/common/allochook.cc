/**
 * @file
 * Counting global operator new/delete replacement (see
 * common/alloccount.hh). Built as its own static library
 * (`rbsim-allochook`); executables that link it get per-thread
 * allocation counts, everything else keeps the stock allocator. The
 * replacement operators are referenced by practically every TU, so the
 * linker always pulls this object (and its markHooked initializer) in.
 */

#include <cstdlib>
#include <new>

#include "common/alloccount.hh"

namespace
{

struct HookInit
{
    HookInit() { rbsim::alloccount::markHooked(); }
} hookInit;

inline void
bump()
{
    using namespace rbsim::alloccount;
    if (detail::g_enabled)
        ++detail::t_allocs;
}

void *
allocOrThrow(std::size_t n)
{
    bump();
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
allocAlignedOrThrow(std::size_t n, std::size_t align)
{
    bump();
    if (void *p = std::aligned_alloc(align, (n + align - 1) / align *
                                                align))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t n)
{
    return allocOrThrow(n);
}

void *
operator new[](std::size_t n)
{
    return allocOrThrow(n);
}

void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    bump();
    return std::malloc(n ? n : 1);
}

void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    bump();
    return std::malloc(n ? n : 1);
}

void *
operator new(std::size_t n, std::align_val_t align)
{
    return allocAlignedOrThrow(n, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t n, std::align_val_t align)
{
    return allocAlignedOrThrow(n, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
