/**
 * @file
 * Heap-allocation accounting for the zero-alloc hot-path invariant
 * (docs/PERFORMANCE.md).
 *
 * The counters live in the core library so any code can read them, but
 * they only move when the counting operator new/delete replacement in
 * common/allochook.cc is linked into the executable (the `rbsim-
 * allochook` CMake target; linked by the bench binaries and
 * tests/test_allocfree). Counting is per-thread, so a parallel bench
 * sweep still attributes allocations to the cell running on the thread.
 *
 * Counting is off until enabled — either programmatically (the bench
 * harness's --profile does this) or by setting the RBSIM_COUNT_ALLOCS
 * environment variable before the first allocation.
 */

#ifndef RBSIM_COMMON_ALLOCCOUNT_HH
#define RBSIM_COMMON_ALLOCCOUNT_HH

#include <cstdint>

namespace rbsim::alloccount
{

/** True when the counting operator new replacement is linked in. */
bool hooked();

/** Turn counting on/off (process-wide). */
void enable(bool on);

/** Is counting currently on (RBSIM_COUNT_ALLOCS or enable())? */
bool enabled();

/** Heap allocations observed on the calling thread while enabled. */
std::uint64_t threadCount();

// ------------------------------------------------------------------
// Internals shared with the hook translation unit.

namespace detail
{
extern thread_local std::uint64_t t_allocs;
extern bool g_hooked;
extern bool g_enabled;
} // namespace detail

/** Called once by the hook TU's initializer. */
void markHooked();

} // namespace rbsim::alloccount

#endif // RBSIM_COMMON_ALLOCCOUNT_HH
