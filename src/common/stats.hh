/**
 * @file
 * Small statistics toolkit: counters, means, histograms.
 *
 * The simulator reports IPC per benchmark and harmonic means across
 * benchmark suites (as in the paper's Figure 14), plus distributions such as
 * the bypass-case breakdown of Figure 13.
 */

#ifndef RBSIM_COMMON_STATS_HH
#define RBSIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rbsim
{

/** Arithmetic mean of a sample vector (0 for empty input). */
double arithmeticMean(const std::vector<double> &xs);

/** Harmonic mean of a sample vector; all samples must be positive. */
double harmonicMean(const std::vector<double> &xs);

/** Geometric mean of a sample vector; all samples must be positive. */
double geometricMean(const std::vector<double> &xs);

/**
 * A named bag of integer counters with insertion-order-independent
 * deterministic formatting. Used for per-run simulator statistics.
 */
class StatSet
{
  public:
    /** Add delta to the named counter (creating it at zero). */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters[name] += delta;
    }

    /** Read a counter (0 if absent). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    /** Ratio of two counters; 0 when the denominator is 0. */
    double
    ratio(const std::string &num, const std::string &den) const
    {
        const std::uint64_t d = get(den);
        return d == 0 ? 0.0 : static_cast<double>(get(num)) / d;
    }

    /** All counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &all() const
    { return counters; }

    /** Render "name = value" lines. */
    std::string format() const;

  private:
    std::map<std::string, std::uint64_t> counters;
};

/**
 * Fixed-bucket histogram over small unsigned values (e.g. bypass level
 * used, scheduler wait cycles).
 */
class Histogram
{
  public:
    /** Create with the given number of buckets; larger samples clamp. */
    explicit Histogram(std::size_t nbuckets = 16)
        : buckets(nbuckets, 0)
    {}

    /** Record one sample. */
    void
    record(std::size_t value)
    {
        if (value >= buckets.size())
            value = buckets.size() - 1;
        ++buckets[value];
        ++count;
    }

    /** Samples recorded so far. */
    std::uint64_t samples() const { return count; }

    /** Raw bucket counts. */
    const std::vector<std::uint64_t> &raw() const { return buckets; }

    /** Fraction of samples in bucket i. */
    double
    fraction(std::size_t i) const
    {
        if (count == 0 || i >= buckets.size())
            return 0.0;
        return static_cast<double>(buckets[i]) / static_cast<double>(count);
    }

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
};

} // namespace rbsim

#endif // RBSIM_COMMON_STATS_HH
