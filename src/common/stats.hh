/**
 * @file
 * Statistics toolkit: counters, means, histograms, and the
 * self-registering stat registry.
 *
 * The registry is the instrumentation backbone (gem5-style): each
 * pipeline component binds its named counters, vectors, histograms, and
 * derived formulas into a `StatRegistry` under a hierarchical dotted
 * prefix ("core.retired", "dl1.misses", "bypass.slot"). A run ends by
 * taking a `StatSnapshot` — a plain value copy that outlives the
 * components, compares for equality (determinism tests), and serializes
 * to/from JSON for the bench result pipeline.
 */

#ifndef RBSIM_COMMON_STATS_HH
#define RBSIM_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace rbsim
{

/** Arithmetic mean of a sample vector (0 for empty input). */
double arithmeticMean(const std::vector<double> &xs);

/** Harmonic mean of a sample vector; all samples must be positive. */
double harmonicMean(const std::vector<double> &xs);

/** Geometric mean of a sample vector; all samples must be positive. */
double geometricMean(const std::vector<double> &xs);

/**
 * A named bag of integer counters with insertion-order-independent
 * deterministic formatting. Used for per-run simulator statistics.
 */
class StatSet
{
  public:
    /** Add delta to the named counter (creating it at zero). */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters[name] += delta;
    }

    /** Read a counter (0 if absent). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    /** Ratio of two counters; 0 when the denominator is 0. */
    double
    ratio(const std::string &num, const std::string &den) const
    {
        const std::uint64_t d = get(den);
        return d == 0 ? 0.0 : static_cast<double>(get(num)) / d;
    }

    /** All counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &all() const
    { return counters; }

    /** Render "name = value" lines. */
    std::string format() const;

  private:
    std::map<std::string, std::uint64_t> counters;
};

/**
 * Fixed-bucket histogram over small unsigned values (e.g. bypass level
 * used, scheduler wait cycles).
 */
class Histogram
{
  public:
    /** Create with the given number of buckets; larger samples clamp. */
    explicit Histogram(std::size_t nbuckets = 16)
        : buckets(nbuckets, 0)
    {}

    /** Record one sample. */
    void
    record(std::size_t value)
    {
        if (value >= buckets.size())
            value = buckets.size() - 1;
        ++buckets[value];
        ++count;
    }

    /** Record the same sample `n` times (idle-cycle fast-forward). */
    void
    record(std::size_t value, std::uint64_t n)
    {
        if (value >= buckets.size())
            value = buckets.size() - 1;
        buckets[value] += n;
        count += n;
    }

    /** Zero every bucket in place (storage and address stay stable, so
     * registered histogram views survive a simulator reset). */
    void
    reset()
    {
        std::fill(buckets.begin(), buckets.end(), 0);
        count = 0;
    }

    /** Samples recorded so far. */
    std::uint64_t samples() const { return count; }

    /** Raw bucket counts. */
    const std::vector<std::uint64_t> &raw() const { return buckets; }

    /** Fraction of samples in bucket i. */
    double
    fraction(std::size_t i) const
    {
        if (count == 0 || i >= buckets.size())
            return 0.0;
        return static_cast<double>(buckets[i]) / static_cast<double>(count);
    }

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
};

/**
 * A point-in-time value copy of every registered statistic. Snapshots
 * are plain data: they survive the components they were taken from,
 * compare for equality, and round-trip through JSON.
 */
struct StatSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> formulas;
    //!< vector stats and histogram buckets, keyed like counters
    std::map<std::string, std::vector<std::uint64_t>> vectors;

    /** Counter value (0 when absent). */
    std::uint64_t counter(const std::string &name) const;

    /** Formula value, falling back to the counter (0 when absent). */
    double value(const std::string &name) const;

    /** Vector/histogram buckets (empty when absent). */
    const std::vector<std::uint64_t> &vec(const std::string &name) const;

    /** Ratio of two counters; 0 when the denominator is 0. */
    double ratio(const std::string &num, const std::string &den) const;

    /** Serialize as a {"counters": .., "formulas": .., "vectors": ..}
     * JSON object string. */
    std::string toJson() const;

    /** Inverse of toJson(). Throws JsonError on malformed input. */
    static StatSnapshot fromJson(const std::string &text);

    bool operator==(const StatSnapshot &) const = default;
};

/**
 * The self-registering stat registry. Components register *views* onto
 * their own counters (the registry stores pointers, not values), so
 * registration happens once at construction and reads are always
 * current. Names are hierarchical dotted paths; `StatGroup` carries a
 * prefix so a component never spells its parent's name.
 */
class StatRegistry
{
  public:
    /** Register a scalar counter view. Names must be unique. */
    void addCounter(const std::string &name, const std::uint64_t *v,
                    const std::string &desc = "");

    /** Register a fixed-size vector-of-counters view. */
    void addVector(const std::string &name, const std::uint64_t *v,
                   std::size_t n, const std::string &desc = "");

    /** Register a histogram view (snapshots its buckets). */
    void addHistogram(const std::string &name, const Histogram *h,
                      const std::string &desc = "");

    /** Register a derived value, evaluated at snapshot time. */
    void addFormula(const std::string &name, std::function<double()> fn,
                    const std::string &desc = "");

    /** Copy every current value out. */
    StatSnapshot snapshot() const;

    /**
     * Copy every current value into an existing snapshot, updating nodes
     * in place. After one warming call, repeat calls against the same
     * registry perform no heap allocations (map keys already exist and
     * vector assigns fit the established capacity) — the serving hot
     * path takes its per-job snapshots through this.
     */
    void snapshotInto(StatSnapshot &snap) const;

    /** Deterministic "name = value" text dump of all scalars. */
    std::string format() const;

  private:
    void claimName(const std::string &name);

    struct CounterRef { const std::uint64_t *v; std::string desc; };
    struct VectorRef
    {
        const std::uint64_t *v;
        std::size_t n;
        std::string desc;
    };
    struct HistRef { const Histogram *h; std::string desc; };
    struct FormulaRef { std::function<double()> fn; std::string desc; };

    std::map<std::string, CounterRef> counterRefs;
    std::map<std::string, VectorRef> vectorRefs;
    std::map<std::string, HistRef> histRefs;
    std::map<std::string, FormulaRef> formulaRefs;
};

/**
 * A dotted-prefix handle into a registry: `group("core").counter(
 * "retired", ..)` registers "core.retired". Cheap to copy; components
 * take one by value in their registerStats() hook.
 */
class StatGroup
{
  public:
    StatGroup(StatRegistry &r, std::string prefix_)
        : reg(&r), prefix(std::move(prefix_))
    {}

    /** A child group ("core" -> "core.bypass"). */
    StatGroup
    group(const std::string &sub) const
    {
        return StatGroup(*reg, prefix + sub + ".");
    }

    void
    counter(const std::string &name, const std::uint64_t *v,
            const std::string &desc = "") const
    {
        reg->addCounter(prefix + name, v, desc);
    }

    void
    vector(const std::string &name, const std::uint64_t *v,
           std::size_t n, const std::string &desc = "") const
    {
        reg->addVector(prefix + name, v, n, desc);
    }

    void
    histogram(const std::string &name, const Histogram *h,
              const std::string &desc = "") const
    {
        reg->addHistogram(prefix + name, h, desc);
    }

    void
    formula(const std::string &name, std::function<double()> fn,
            const std::string &desc = "") const
    {
        reg->addFormula(prefix + name, std::move(fn), desc);
    }

  private:
    StatRegistry *reg;
    std::string prefix; //!< includes the trailing dot
};

/** Root-level group ("core", "dl1", ...) of a registry. */
inline StatGroup
statGroup(StatRegistry &reg, const std::string &name)
{
    return StatGroup(reg, name + ".");
}

} // namespace rbsim

#endif // RBSIM_COMMON_STATS_HH
