/**
 * @file
 * Opt-in host-side (wall-clock) per-stage profiler for the simulator's
 * own speed (docs/PERFORMANCE.md). Attached to an OooCore like a
 * tracer; when absent the hot path pays one predicted branch per cycle.
 *
 * Stage accounting is hierarchical, not partitioned: `exec` and `lsq`
 * time is spent inside `select`, and `cosim` inside `commit` — the
 * fine-grained rows name where `select`/`commit` time actually goes.
 */

#ifndef RBSIM_COMMON_HOSTPROF_HH
#define RBSIM_COMMON_HOSTPROF_HH

#include <array>
#include <chrono>
#include <cstdint>

namespace rbsim
{

/** Per-stage wall-time accumulator. */
class HostProfiler
{
  public:
    enum Stage : unsigned
    {
        Fetch = 0, //!< FetchEngine::fetchCycle + front-pipe fill
        Dispatch,  //!< rename + dispatch (doDispatch)
        Select,    //!< wakeup drain + select scan (includes exec/lsq)
        Exec,      //!< executeInst inside issue (subset of Select)
        Lsq,       //!< load disambiguation/search (subset of Select)
        Kernel,    //!< batched RB kernel flush (subset of Select)
        Commit,    //!< retirement (includes Cosim)
        Cosim,     //!< retire hook / lockstep checker (subset of Commit)
        Flush,     //!< pending-flush scan + squash walks
        NumStages,
    };

    using clock = std::chrono::steady_clock;

    static const char *
    stageName(unsigned s)
    {
        static constexpr const char *names[NumStages] = {
            "fetch", "dispatch", "select", "exec",  "lsq",
            "kernel", "commit",  "cosim",  "flush",
        };
        return s < NumStages ? names[s] : "?";
    }

    void add(Stage s, clock::duration d) { acc[s] += d; }

    double
    seconds(unsigned s) const
    {
        return std::chrono::duration<double>(acc[s]).count();
    }

    //! Heap allocations observed across the run (0 unless the counting
    //! allocator is linked; see common/alloccount.hh).
    std::uint64_t allocations = 0;
    bool allocationsCounted = false;

  private:
    std::array<clock::duration, NumStages> acc{};
};

/** RAII stage timer; inert when the profiler pointer is null. */
class StageTimer
{
  public:
    StageTimer(HostProfiler *p, HostProfiler::Stage s)
        : prof(p), stage(s)
    {
        if (prof)
            start = HostProfiler::clock::now();
    }

    ~StageTimer()
    {
        if (prof)
            prof->add(stage, HostProfiler::clock::now() - start);
    }

    StageTimer(const StageTimer &) = delete;
    StageTimer &operator=(const StageTimer &) = delete;

  private:
    HostProfiler *prof;
    HostProfiler::Stage stage;
    HostProfiler::clock::time_point start;
};

} // namespace rbsim

#endif // RBSIM_COMMON_HOSTPROF_HH
