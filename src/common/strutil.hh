/**
 * @file
 * String helpers used by the assembler and report writers.
 */

#ifndef RBSIM_COMMON_STRUTIL_HH
#define RBSIM_COMMON_STRUTIL_HH

#include <string>
#include <string_view>
#include <vector>

namespace rbsim
{

/** Strip leading and trailing whitespace. */
std::string trim(std::string_view s);

/** Split on any of the given delimiter characters, dropping empty tokens. */
std::vector<std::string> splitTokens(std::string_view s,
                                     std::string_view delims);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** True if s starts with the given prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** printf-style number formatting with fixed decimals. */
std::string fmtDouble(double value, int decimals);

} // namespace rbsim

#endif // RBSIM_COMMON_STRUTIL_HH
