/**
 * @file
 * Deterministic xorshift-based pseudo-random number generator.
 *
 * Workload generators and property tests need reproducible streams that do
 * not depend on the C++ standard library's unspecified distributions, so we
 * use a self-contained xorshift128+ generator.
 */

#ifndef RBSIM_COMMON_RNG_HH
#define RBSIM_COMMON_RNG_HH

#include <cassert>
#include <cstdint>
#include <initializer_list>

namespace rbsim
{

/**
 * xorshift128+ generator with convenience helpers for bounded draws.
 */
class Rng
{
  public:
    /** Seed the generator; any seed (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 expansion of the seed into the two state words.
        std::uint64_t z = seed;
        for (std::uint64_t *s : {&state0, &state1}) {
            z += 0x9e3779b97f4a7c15ull;
            std::uint64_t w = z;
            w = (w ^ (w >> 30)) * 0xbf58476d1ce4e5b9ull;
            w = (w ^ (w >> 27)) * 0x94d049bb133111ebull;
            *s = w ^ (w >> 31);
        }
        if (state0 == 0 && state1 == 0)
            state1 = 1;
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        std::uint64_t s1 = state0;
        const std::uint64_t s0 = state1;
        const std::uint64_t result = s0 + s1;
        state0 = s0;
        s1 ^= s1 << 23;
        state1 = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
        return result;
    }

    /** Uniform draw in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        assert(bound != 0);
        // Modulo bias is irrelevant for simulation workloads.
        return next() % bound;
    }

    /** Uniform draw in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        assert(lo <= hi);
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Bernoulli draw: true with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Raw generator state, e.g. for serializing into a repro file. */
    struct State
    {
        std::uint64_t s0 = 0;
        std::uint64_t s1 = 0;

        bool operator==(const State &) const = default;
    };

    /** Dump the current state (resume with fromState). */
    State state() const { return State{state0, state1}; }

    /** Rebuild a generator at an exact dumped state. */
    static Rng
    fromState(State s)
    {
        Rng r;
        r.state0 = s.s0;
        r.state1 = s.s1;
        if (r.state0 == 0 && r.state1 == 0)
            r.state1 = 1;
        return r;
    }

    /**
     * Split off an independent child stream. The child is seeded through
     * the SplitMix64 expansion of one parent draw, so parent and child
     * streams stay statistically independent, and the parent advances by
     * exactly one draw — forking is itself reproducible.
     */
    Rng fork() { return Rng(next()); }

    /**
     * Derive a stream seed from a master seed and a stream index
     * (SplitMix64-style mixing). Worker threads and per-case generators
     * use this so case N sees the same stream no matter how many jobs
     * run or which thread picks it up.
     */
    static std::uint64_t
    mixSeed(std::uint64_t seed, std::uint64_t stream)
    {
        std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state0 = 0;
    std::uint64_t state1 = 0;
};

} // namespace rbsim

#endif // RBSIM_COMMON_RNG_HH
