/**
 * @file
 * Minimal JSON value tree: build, serialize, and parse.
 *
 * This is the machine-readable half of the instrumentation layer: stat
 * snapshots and bench sweeps serialize through it, and
 * `scripts/bench_diff.py` consumes the output. Objects preserve
 * insertion order so dumps are deterministic and diffable. Integers up
 * to 64 bits round-trip exactly (counters are never forced through a
 * double).
 */

#ifndef RBSIM_COMMON_JSON_HH
#define RBSIM_COMMON_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace rbsim
{

/** Thrown by Json::parse on malformed input. */
class JsonError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One JSON value (recursively, a whole document). */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() = default;
    Json(bool v) : ty(Type::Bool), boolean(v) {}
    Json(double v) : ty(Type::Number), num(v) {}
    Json(std::uint64_t v)
        : ty(Type::Number), num(static_cast<double>(v)), unum(v),
          integral(true)
    {}
    Json(int v)
    {
        // Negative integers travel as doubles ("%g" still renders "-5");
        // the integral path exists for exact 64-bit counters.
        if (v >= 0)
            *this = Json(static_cast<std::uint64_t>(v));
        else
            *this = Json(static_cast<double>(v));
    }
    Json(unsigned v) : Json(static_cast<std::uint64_t>(v)) {}
    Json(std::string v) : ty(Type::String), str(std::move(v)) {}
    Json(const char *v) : Json(std::string(v)) {}

    /** An empty object / array (distinct from null). */
    static Json object();
    static Json array();

    Type type() const { return ty; }
    bool isNull() const { return ty == Type::Null; }
    bool isBool() const { return ty == Type::Bool; }
    bool isNumber() const { return ty == Type::Number; }
    bool isString() const { return ty == Type::String; }
    bool isObject() const { return ty == Type::Object; }
    bool isArray() const { return ty == Type::Array; }

    /** True when the number was built from (or parsed as) an integer. */
    bool isIntegral() const { return ty == Type::Number && integral; }

    bool asBool() const;
    double asDouble() const;
    std::uint64_t asU64() const;
    const std::string &asString() const;

    /** Object member access, inserting a null on first use. */
    Json &operator[](const std::string &key);

    /** Object member lookup; nullptr when absent (or not an object). */
    const Json *find(const std::string &key) const;

    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &items() const
    { return obj; }

    /** Append to an array. */
    void push(Json v);

    /** Array elements. */
    const std::vector<Json> &elements() const { return arr; }

    std::size_t size() const;

    /**
     * Serialize. indent == 0 renders compact one-line JSON; indent > 0
     * pretty-prints with that many spaces per level.
     */
    std::string dump(unsigned indent = 0) const;

    /** Parse a document. Throws JsonError on malformed input. */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, unsigned indent, unsigned depth) const;

    Type ty = Type::Null;
    bool boolean = false;
    double num = 0.0;
    std::uint64_t unum = 0;
    bool integral = false;
    std::string str;
    std::vector<Json> arr;
    std::vector<std::pair<std::string, Json>> obj;
};

} // namespace rbsim

#endif // RBSIM_COMMON_JSON_HH
