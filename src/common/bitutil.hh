/**
 * @file
 * Bit-manipulation helpers shared by the arithmetic and cache models.
 */

#ifndef RBSIM_COMMON_BITUTIL_HH
#define RBSIM_COMMON_BITUTIL_HH

#include <bit>
#include <cassert>
#include <cstdint>

namespace rbsim
{

/** Extract bits [lo, lo+len) of value (len <= 64, lo+len <= 64). */
inline std::uint64_t
bits(std::uint64_t value, unsigned lo, unsigned len)
{
    assert(lo < 64 && len <= 64 && lo + len <= 64);
    if (len == 64)
        return value >> lo;
    return (value >> lo) & ((std::uint64_t{1} << len) - 1);
}

/** Test bit i of value. */
inline bool
bit(std::uint64_t value, unsigned i)
{
    assert(i < 64);
    return (value >> i) & 1;
}

/** Sign-extend the low `width` bits of value to 64 bits. */
inline std::int64_t
sext(std::uint64_t value, unsigned width)
{
    assert(width >= 1 && width <= 64);
    if (width == 64)
        return static_cast<std::int64_t>(value);
    const std::uint64_t m = std::uint64_t{1} << (width - 1);
    value &= (std::uint64_t{1} << width) - 1;
    return static_cast<std::int64_t>((value ^ m) - m);
}

/** True if value is a power of two (zero excluded). */
inline bool
isPow2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** log2 of a power of two. */
inline unsigned
log2i(std::uint64_t value)
{
    assert(isPow2(value));
    return static_cast<unsigned>(std::countr_zero(value));
}

/** Count leading zeros of a 64-bit value (64 when value == 0). */
inline unsigned
clz64(std::uint64_t value)
{
    return value ? static_cast<unsigned>(std::countl_zero(value)) : 64;
}

/** Count trailing zeros of a 64-bit value (64 when value == 0). */
inline unsigned
ctz64(std::uint64_t value)
{
    return value ? static_cast<unsigned>(std::countr_zero(value)) : 64;
}

/** Population count of a 64-bit value. */
inline unsigned
popcount64(std::uint64_t value)
{
    return static_cast<unsigned>(std::popcount(value));
}

} // namespace rbsim

#endif // RBSIM_COMMON_BITUTIL_HH
