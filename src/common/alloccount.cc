#include "common/alloccount.hh"

#include <cstdlib>

namespace rbsim::alloccount
{

namespace detail
{
thread_local std::uint64_t t_allocs = 0;
bool g_hooked = false;
// Initialized from the environment before main() so a run can be
// counted end to end without code changes.
bool g_enabled = std::getenv("RBSIM_COUNT_ALLOCS") != nullptr;
} // namespace detail

bool
hooked()
{
    return detail::g_hooked;
}

void
enable(bool on)
{
    detail::g_enabled = on;
}

bool
enabled()
{
    return detail::g_enabled;
}

std::uint64_t
threadCount()
{
    return detail::t_allocs;
}

void
markHooked()
{
    detail::g_hooked = true;
}

} // namespace rbsim::alloccount
