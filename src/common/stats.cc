#include "common/stats.hh"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/json.hh"

namespace rbsim
{

double
arithmeticMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
harmonicMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double inv = 0.0;
    for (double x : xs) {
        assert(x > 0.0);
        inv += 1.0 / x;
    }
    return static_cast<double>(xs.size()) / inv;
}

double
geometricMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double lg = 0.0;
    for (double x : xs) {
        assert(x > 0.0);
        lg += std::log(x);
    }
    return std::exp(lg / static_cast<double>(xs.size()));
}

std::string
StatSet::format() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters)
        os << name << " = " << value << "\n";
    return os.str();
}

// ------------------------------------------------------------- snapshot

std::uint64_t
StatSnapshot::counter(const std::string &name) const
{
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

double
StatSnapshot::value(const std::string &name) const
{
    const auto it = formulas.find(name);
    if (it != formulas.end())
        return it->second;
    return static_cast<double>(counter(name));
}

const std::vector<std::uint64_t> &
StatSnapshot::vec(const std::string &name) const
{
    static const std::vector<std::uint64_t> empty;
    const auto it = vectors.find(name);
    return it == vectors.end() ? empty : it->second;
}

double
StatSnapshot::ratio(const std::string &num, const std::string &den) const
{
    const std::uint64_t d = counter(den);
    return d == 0 ? 0.0 : static_cast<double>(counter(num)) / d;
}

std::string
StatSnapshot::toJson() const
{
    Json j = Json::object();
    Json &c = (j["counters"] = Json::object());
    for (const auto &[name, v] : counters)
        c[name] = Json(v);
    Json &f = (j["formulas"] = Json::object());
    for (const auto &[name, v] : formulas)
        f[name] = Json(v);
    Json &vecs = (j["vectors"] = Json::object());
    for (const auto &[name, buckets] : vectors) {
        Json a = Json::array();
        for (std::uint64_t b : buckets)
            a.push(Json(b));
        vecs[name] = std::move(a);
    }
    return j.dump();
}

StatSnapshot
StatSnapshot::fromJson(const std::string &text)
{
    const Json j = Json::parse(text);
    StatSnapshot s;
    if (const Json *c = j.find("counters")) {
        for (const auto &[name, v] : c->items())
            s.counters[name] = v.asU64();
    }
    if (const Json *f = j.find("formulas")) {
        for (const auto &[name, v] : f->items())
            s.formulas[name] = v.asDouble();
    }
    if (const Json *vecs = j.find("vectors")) {
        for (const auto &[name, a] : vecs->items()) {
            std::vector<std::uint64_t> buckets;
            for (const Json &b : a.elements())
                buckets.push_back(b.asU64());
            s.vectors[name] = std::move(buckets);
        }
    }
    return s;
}

// ------------------------------------------------------------- registry

void
StatRegistry::claimName(const std::string &name)
{
    if (counterRefs.count(name) || vectorRefs.count(name) ||
        histRefs.count(name) || formulaRefs.count(name)) {
        throw std::logic_error("duplicate stat name: " + name);
    }
}

void
StatRegistry::addCounter(const std::string &name, const std::uint64_t *v,
                         const std::string &desc)
{
    assert(v);
    claimName(name);
    counterRefs[name] = CounterRef{v, desc};
}

void
StatRegistry::addVector(const std::string &name, const std::uint64_t *v,
                        std::size_t n, const std::string &desc)
{
    assert(v);
    claimName(name);
    vectorRefs[name] = VectorRef{v, n, desc};
}

void
StatRegistry::addHistogram(const std::string &name, const Histogram *h,
                           const std::string &desc)
{
    assert(h);
    claimName(name);
    histRefs[name] = HistRef{h, desc};
}

void
StatRegistry::addFormula(const std::string &name,
                         std::function<double()> fn,
                         const std::string &desc)
{
    assert(fn);
    claimName(name);
    formulaRefs[name] = FormulaRef{std::move(fn), desc};
}

StatSnapshot
StatRegistry::snapshot() const
{
    StatSnapshot s;
    snapshotInto(s);
    return s;
}

void
StatRegistry::snapshotInto(StatSnapshot &snap) const
{
    // operator[] with an existing key and assign() within capacity do
    // not allocate, so after the first (warming) call against a given
    // registry this is heap-quiet — the serving hot path depends on it.
    for (const auto &[name, ref] : counterRefs)
        snap.counters[name] = *ref.v;
    for (const auto &[name, ref] : formulaRefs)
        snap.formulas[name] = ref.fn();
    for (const auto &[name, ref] : vectorRefs)
        snap.vectors[name].assign(ref.v, ref.v + ref.n);
    for (const auto &[name, ref] : histRefs) {
        const std::vector<std::uint64_t> &raw = ref.h->raw();
        snap.vectors[name].assign(raw.begin(), raw.end());
    }
}

std::string
StatRegistry::format() const
{
    // Scalars only, merged alphabetically: the quick human-readable view.
    std::ostringstream os;
    for (const auto &[name, ref] : counterRefs)
        os << name << " = " << *ref.v << "\n";
    for (const auto &[name, ref] : formulaRefs)
        os << name << " = " << ref.fn() << "\n";
    return os.str();
}

} // namespace rbsim
