#include "common/stats.hh"

#include <cassert>
#include <cmath>
#include <sstream>

namespace rbsim
{

double
arithmeticMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
harmonicMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double inv = 0.0;
    for (double x : xs) {
        assert(x > 0.0);
        inv += 1.0 / x;
    }
    return static_cast<double>(xs.size()) / inv;
}

double
geometricMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double lg = 0.0;
    for (double x : xs) {
        assert(x > 0.0);
        lg += std::log(x);
    }
    return std::exp(lg / static_cast<double>(xs.size()));
}

std::string
StatSet::format() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters)
        os << name << " = " << value << "\n";
    return os.str();
}

} // namespace rbsim
