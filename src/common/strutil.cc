#include "common/strutil.hh"

#include <cctype>
#include <cstdio>

namespace rbsim
{

std::string
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::vector<std::string>
splitTokens(std::string_view s, std::string_view delims)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (delims.find(c) != std::string_view::npos) {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string
fmtDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

} // namespace rbsim
