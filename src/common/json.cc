#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rbsim
{

Json
Json::object()
{
    Json j;
    j.ty = Type::Object;
    return j;
}

Json
Json::array()
{
    Json j;
    j.ty = Type::Array;
    return j;
}

bool
Json::asBool() const
{
    if (ty != Type::Bool)
        throw JsonError("not a bool");
    return boolean;
}

double
Json::asDouble() const
{
    if (ty != Type::Number)
        throw JsonError("not a number");
    return integral ? static_cast<double>(unum) : num;
}

std::uint64_t
Json::asU64() const
{
    if (ty != Type::Number)
        throw JsonError("not a number");
    if (integral)
        return unum;
    if (num < 0 || num != std::floor(num))
        throw JsonError("not an unsigned integer");
    return static_cast<std::uint64_t>(num);
}

const std::string &
Json::asString() const
{
    if (ty != Type::String)
        throw JsonError("not a string");
    return str;
}

Json &
Json::operator[](const std::string &key)
{
    if (ty == Type::Null)
        ty = Type::Object;
    if (ty != Type::Object)
        throw JsonError("not an object");
    for (auto &[k, v] : obj) {
        if (k == key)
            return v;
    }
    obj.emplace_back(key, Json{});
    return obj.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    if (ty != Type::Object)
        return nullptr;
    for (const auto &[k, v] : obj) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

void
Json::push(Json v)
{
    if (ty == Type::Null)
        ty = Type::Array;
    if (ty != Type::Array)
        throw JsonError("not an array");
    arr.push_back(std::move(v));
}

std::size_t
Json::size() const
{
    switch (ty) {
      case Type::Array:
        return arr.size();
      case Type::Object:
        return obj.size();
      default:
        return 0;
    }
}

namespace
{

void
escapeTo(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
newlineIndent(std::string &out, unsigned indent, unsigned depth)
{
    if (indent == 0)
        return;
    out += '\n';
    out.append(std::size_t{indent} * depth, ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, unsigned indent, unsigned depth) const
{
    switch (ty) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += boolean ? "true" : "false";
        break;
      case Type::Number:
        if (integral) {
            out += std::to_string(unum);
        } else if (!std::isfinite(num)) {
            out += "null"; // JSON has no inf/nan
        } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", num);
            out += buf;
        }
        break;
      case Type::String:
        escapeTo(out, str);
        break;
      case Type::Array:
        out += '[';
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i)
                out += ',';
            newlineIndent(out, indent, depth + 1);
            arr[i].dumpTo(out, indent, depth + 1);
        }
        if (!arr.empty())
            newlineIndent(out, indent, depth);
        out += ']';
        break;
      case Type::Object:
        out += '{';
        for (std::size_t i = 0; i < obj.size(); ++i) {
            if (i)
                out += ',';
            newlineIndent(out, indent, depth + 1);
            escapeTo(out, obj[i].first);
            out += indent ? ": " : ":";
            obj[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!obj.empty())
            newlineIndent(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(unsigned indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ----------------------------------------------------------------- parse

namespace
{

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw JsonError("json parse error at offset " +
                        std::to_string(pos) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos < text.size() && std::isspace(
                   static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consumeWord(const char *w)
    {
        const std::size_t n = std::string(w).size();
        if (text.compare(pos, n, w) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos >= text.size())
                fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            c = text[pos++];
            switch (c) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (pos + 4 > text.size())
                      fail("truncated \\u escape");
                  const unsigned cp = static_cast<unsigned>(
                      std::strtoul(text.substr(pos, 4).c_str(), nullptr,
                                   16));
                  pos += 4;
                  // Basic-multilingual-plane code points only; enough
                  // for the escapes this library itself emits.
                  if (cp < 0x80) {
                      out += static_cast<char>(cp);
                  } else if (cp < 0x800) {
                      out += static_cast<char>(0xc0 | (cp >> 6));
                      out += static_cast<char>(0x80 | (cp & 0x3f));
                  } else {
                      out += static_cast<char>(0xe0 | (cp >> 12));
                      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                      out += static_cast<char>(0x80 | (cp & 0x3f));
                  }
                  break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos;
        const bool neg = peek() == '-';
        if (neg)
            ++pos;
        bool isInt = !neg;
        char prev = '\0';
        while (pos < text.size()) {
            const char c = text[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' ||
                       ((c == '+' || c == '-') &&
                        (prev == 'e' || prev == 'E'))) {
                isInt = false;
                ++pos;
            } else {
                break;
            }
            prev = c;
        }
        const std::string tok = text.substr(start, pos - start);
        if (tok.empty() || tok == "-")
            fail("bad number");
        if (isInt && tok[0] != '-') {
            errno = 0;
            char *end = nullptr;
            const std::uint64_t u = std::strtoull(tok.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0')
                return Json(u);
        }
        return Json(std::strtod(tok.c_str(), nullptr));
    }

    Json
    parseValue()
    {
        skipWs();
        const char c = peek();
        if (c == '{') {
            ++pos;
            Json j = Json::object();
            skipWs();
            if (peek() == '}') {
                ++pos;
                return j;
            }
            for (;;) {
                skipWs();
                const std::string key = parseString();
                skipWs();
                expect(':');
                j[key] = parseValue();
                skipWs();
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                expect('}');
                return j;
            }
        }
        if (c == '[') {
            ++pos;
            Json j = Json::array();
            skipWs();
            if (peek() == ']') {
                ++pos;
                return j;
            }
            for (;;) {
                j.push(parseValue());
                skipWs();
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                expect(']');
                return j;
            }
        }
        if (c == '"')
            return Json(parseString());
        if (consumeWord("true"))
            return Json(true);
        if (consumeWord("false"))
            return Json(false);
        if (consumeWord("null"))
            return Json();
        return parseNumber();
    }
};

} // namespace

Json
Json::parse(const std::string &text)
{
    Parser p{text};
    Json j = p.parseValue();
    p.skipWs();
    if (p.pos != text.size())
        p.fail("trailing content");
    return j;
}

} // namespace rbsim
