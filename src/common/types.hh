/**
 * @file
 * Fundamental scalar type aliases used throughout rbsim.
 */

#ifndef RBSIM_COMMON_TYPES_HH
#define RBSIM_COMMON_TYPES_HH

#include <cstdint>

namespace rbsim
{

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** A 64-bit virtual address. */
using Addr = std::uint64_t;

/** Architectural register value (two's complement). */
using Word = std::uint64_t;

/** Signed view of a register value. */
using SWord = std::int64_t;

/** Physical register tag. */
using PhysReg = std::uint16_t;

/** Sentinel for "no physical register". */
constexpr PhysReg invalidPhysReg = 0xffff;

/** Sentinel cycle meaning "never". */
constexpr Cycle neverCycle = ~static_cast<Cycle>(0);

} // namespace rbsim

#endif // RBSIM_COMMON_TYPES_HH
