/**
 * @file
 * The shared fixed-thread work queue behind every parallel sweep in the
 * repo (bench binaries, the serve worker pool).
 *
 * Each bench binary used to spawn its own ad-hoc thread pool per
 * invocation, each re-reading and re-clamping hardware_concurrency().
 * This class is the single place that sizing/fallback logic lives now
 * (defaultThreads()); callers submit tasks and wait.
 *
 * Tasks receive the index of the worker running them (0..workers()-1),
 * which is how the serve layer keeps a per-worker cache of warm
 * Simulator instances without any locking on the simulation path.
 */

#ifndef RBSIM_COMMON_WORK_QUEUE_HH
#define RBSIM_COMMON_WORK_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rbsim
{

/** The queue. */
class WorkQueue
{
  public:
    /** A unit of work; `worker` identifies the executing thread. */
    using Task = std::function<void(unsigned worker)>;

    /** Start `threads` workers (0 = defaultThreads()). */
    explicit WorkQueue(unsigned threads = 0);

    /** Drains the queue, then joins every worker. */
    ~WorkQueue();

    WorkQueue(const WorkQueue &) = delete;
    WorkQueue &operator=(const WorkQueue &) = delete;

    /** Number of worker threads. */
    unsigned workers() const
    { return static_cast<unsigned>(pool.size()); }

    /** Enqueue one task. */
    void submit(Task task);

    /** Block until every submitted task has finished. */
    void wait();

    /**
     * The process-wide worker-count policy — the one place that reads
     * hardware_concurrency() and handles its its-legitimately-0 case
     * (always at least one worker).
     */
    static unsigned defaultThreads();

  private:
    void workerMain(unsigned index);

    std::vector<std::thread> pool;
    std::deque<Task> tasks;
    std::mutex mu;
    std::condition_variable cvWork; //!< workers: task available / stop
    std::condition_variable cvIdle; //!< waiters: everything drained
    std::size_t active = 0;         //!< tasks currently executing
    bool stopping = false;
};

} // namespace rbsim

#endif // RBSIM_COMMON_WORK_QUEUE_HH
