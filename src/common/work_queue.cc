#include "common/work_queue.hh"

#include <algorithm>

namespace rbsim
{

unsigned
WorkQueue::defaultThreads()
{
    // hardware_concurrency() may legitimately report 0 (unknown);
    // always run at least one worker.
    const unsigned hw = std::thread::hardware_concurrency();
    return std::max(1u, hw);
}

WorkQueue::WorkQueue(unsigned threads)
{
    const unsigned n = threads ? threads : defaultThreads();
    pool.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        pool.emplace_back([this, i] { workerMain(i); });
}

WorkQueue::~WorkQueue()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cvWork.notify_all();
    for (std::thread &t : pool)
        t.join();
}

void
WorkQueue::submit(Task task)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        tasks.push_back(std::move(task));
    }
    cvWork.notify_one();
}

void
WorkQueue::wait()
{
    std::unique_lock<std::mutex> lock(mu);
    cvIdle.wait(lock, [this] { return tasks.empty() && active == 0; });
}

void
WorkQueue::workerMain(unsigned index)
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mu);
            cvWork.wait(lock,
                        [this] { return stopping || !tasks.empty(); });
            if (tasks.empty())
                return; // stopping, queue drained
            task = std::move(tasks.front());
            tasks.pop_front();
            ++active;
        }
        task(index);
        {
            std::lock_guard<std::mutex> lock(mu);
            --active;
            if (tasks.empty() && active == 0)
                cvIdle.notify_all();
        }
    }
}

} // namespace rbsim
