/**
 * @file
 * Fixed-capacity power-of-two ring buffer for the per-cycle hot path.
 *
 * The core's in-order pipeline queues (front pipe, ROB, LSQ) used to
 * live in std::deque, whose segmented storage allocates and frees nodes
 * as the queue breathes. StaticRing allocates once at init() and never
 * again: positions are monotonically increasing virtual indices, the
 * slot of position p is p & mask, and push/pop are index arithmetic.
 * Elements must be assignable; popped slots keep their (dead) objects,
 * which is fine for the trivially-copyable entry types used here.
 */

#ifndef RBSIM_COMMON_RING_HH
#define RBSIM_COMMON_RING_HH

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rbsim
{

template <class T>
class StaticRing
{
  public:
    StaticRing() = default;

    explicit StaticRing(std::size_t min_capacity) { init(min_capacity); }

    /** Size storage for at least `min_capacity` elements (rounded up to
     * a power of two). Resets the ring. */
    void
    init(std::size_t min_capacity)
    {
        const std::size_t cap =
            std::bit_ceil(min_capacity ? min_capacity : 1);
        slots.assign(cap, T{});
        mask = cap - 1;
        headPos = tailPos = 0;
    }

    bool empty() const { return headPos == tailPos; }
    std::size_t size() const
    { return static_cast<std::size_t>(tailPos - headPos); }
    std::size_t capacity() const { return slots.size(); }
    bool full() const { return size() == capacity(); }

    void
    push_back(const T &v)
    {
        assert(!full());
        slots[tailPos++ & mask] = v;
    }

    T &front()
    {
        assert(!empty());
        return slots[headPos & mask];
    }
    const T &front() const
    {
        assert(!empty());
        return slots[headPos & mask];
    }
    T &back()
    {
        assert(!empty());
        return slots[(tailPos - 1) & mask];
    }
    const T &back() const
    {
        assert(!empty());
        return slots[(tailPos - 1) & mask];
    }

    /** Element i positions past the front. */
    T &operator[](std::size_t i)
    {
        assert(i < size());
        return slots[(headPos + i) & mask];
    }
    const T &operator[](std::size_t i) const
    {
        assert(i < size());
        return slots[(headPos + i) & mask];
    }

    void
    pop_front()
    {
        assert(!empty());
        ++headPos;
    }

    void
    pop_back()
    {
        assert(!empty());
        --tailPos;
    }

    void clear() { headPos = tailPos; }

  private:
    std::vector<T> slots;
    std::uint64_t mask = 0;
    std::uint64_t headPos = 0;
    std::uint64_t tailPos = 0;
};

} // namespace rbsim

#endif // RBSIM_COMMON_RING_HH
