/**
 * @file
 * Biasable structured random-program generator for differential fuzzing.
 *
 * Generation is split into two stages so failing cases can be shrunk:
 *
 *  1. `generateRecipe` draws a `ProgRecipe` — an explicit, mutable
 *     description of the program (initial register values, sandbox
 *     contents, loop trip count, a vector of abstract body ops, leaf
 *     subroutines, jump-table/call placement).
 *  2. `lowerRecipe` deterministically lowers a recipe to a `Program`
 *     through CodeBuilder. Lowering is a pure function of the recipe, so
 *     the delta-debugging shrinker can delete body ops, shrink loop
 *     counts, and zero constants, then re-lower and re-check.
 *
 * The recipe family generalizes the generator that used to live in
 * tests/test_random_programs.cc: counted loops over random bodies of
 * arithmetic, logicals, shifts, compares, cmovs, byte ops, counts,
 * multiplies, sandboxed loads/stores (with a controllable aliasing
 * window), forward branches in both directions of every condition, leaf
 * calls through a link register, and a data-dependent two-way jump
 * table. Programs always terminate structurally.
 *
 * Machine configurations are fuzzed too: `randomConfig` spans the four
 * machine kinds, both widths, limited bypass-level masks, hole-aware
 * scheduling on/off, and all steering variants.
 */

#ifndef RBSIM_FUZZ_GENERATOR_HH
#define RBSIM_FUZZ_GENERATOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/rng.hh"
#include "core/machine_config.hh"
#include "isa/program.hh"
#include "workloads/gen/opstream.hh"

namespace rbsim::fuzz
{

/** Body-op kinds the generator mixes (covers every Table 1 class). */
enum class OpKind : unsigned char
{
    Arith,   //!< ADDQ/SUBQ/ADDL/SUBL/SxADDQ/SxSUBQ
    Logical, //!< AND/BIS/XOR/BIC/ORNOT/EQV
    Shift,   //!< SLL/SRL/SRA by literal
    Compare, //!< CMPEQ/CMPLT/CMPLE/CMPULT/CMPULE
    Cmov,    //!< all eight conditional moves
    Byte,    //!< EXTxL/INSBL/MSKBL/ZAPNOT by literal
    Count,   //!< CTLZ/CTTZ/CTPOP
    Load,    //!< LDQ/LDL from the sandbox
    Store,   //!< STQ/STL into the sandbox
    Branch,  //!< forward conditional branch (all six conditions)
    Mul,     //!< MULQ by literal
    Lda,     //!< LDA with a signed displacement

    NumKinds,
};

/** Number of body-op kinds. */
constexpr unsigned numOpKinds = static_cast<unsigned>(OpKind::NumKinds);

/** Printable kind name. */
const char *opKindName(OpKind kind);

/** Generator bias knobs. */
struct GenOptions
{
    /** Relative weight per OpKind; 0 removes the kind entirely. */
    std::array<unsigned, numOpKinds> weight;

    unsigned minBody = 12;  //!< loop body length range (body ops)
    unsigned maxBody = 41;
    unsigned minTrips = 40; //!< loop trip count range
    unsigned maxTrips = 79;
    unsigned numSubs = 2;   //!< leaf subroutines (0 disables calls)
    bool jumpTable = true;  //!< emit the data-dependent two-way jump table
    unsigned sandboxWords = 64; //!< initialized sandbox size
    /** Distinct 8-byte sandbox slots loads/stores address. Smaller values
     * concentrate accesses and force store-to-load forwarding and memory
     * aliasing; must be >= 1. */
    unsigned aliasSlots = 64;

    /** When set, loop bodies are bridged from a workload-generator op
     * stream (`stream`) instead of the weighted random mix: key accesses
     * become sandbox loads/stores at the drawn key's slot, compute
     * bursts become the matching arith or shift->logical chains, and so
     * on — so the oracles inherit the generated-workload op-mix shapes.
     * Subroutine bodies and structural features still use the weights. */
    bool useStream = false;
    /** The stream description used when `useStream` is set. */
    gen::GenConfig stream;

    GenOptions();

    /**
     * Named presets:
     *  - "default": the uniform mix (the historical random-program test)
     *  - "memory":  load/store heavy with a 4-slot aliasing window
     *  - "branchy": branch/compare/cmov heavy, short bodies
     *  - "arith":   adds/multiplies/shifts only (RB datapath stress)
     * Stream-bridged presets (one per generator family):
     *  - "ycsb":           zipfian key-access mix (gen "ycsb-a" mold)
     *  - "pointer-chase":  dependent-load chains + key traffic
     *  - "branch-entropy": data-shaped branches at a 0.9 taken-rate
     *  - "rb-adversarial": serial shift->logical chains (Table 3 worst
     *                      case for the RB machines)
     * Throws std::invalid_argument for unknown names.
     */
    static GenOptions preset(const std::string &name);

    /** All preset names. */
    static std::vector<std::string> presetNames();

    bool operator==(const GenOptions &) const = default;
};

/** Serialize the full bias-knob state (weights, shape bounds, stream
 * bridge) so presets round-trip through .repro files. */
Json genOptionsToJson(const GenOptions &opts);

/** Rebuild from genOptionsToJson output; unknown keys are rejected,
 * missing keys keep their defaults. Throws on malformed input. */
GenOptions genOptionsFromJson(const Json &j);

/** One abstract body instruction. */
struct BodyOp
{
    OpKind kind = OpKind::Arith;
    Opcode op = Opcode::ADDQ;
    std::uint8_t a = 31;    //!< first source (temp register number)
    std::uint8_t b = 31;    //!< second source
    std::uint8_t c = 31;    //!< destination
    std::uint8_t lit = 0;   //!< shift amount / byte index / mul literal
    std::int32_t disp = 0;  //!< memory or LDA displacement
    /** Branch only: the target binds after this many following body ops
     * (clamped at structural boundaries), so every branch is forward. */
    std::uint8_t skip = 0;
};

/** A leaf subroutine: straight-line body ops, then `ret r26`. */
struct SubRecipe
{
    std::vector<BodyOp> ops;
};

/**
 * The full mutable program description. Every field the shrinker touches
 * is explicit; `lowerRecipe` consumes no randomness.
 */
struct ProgRecipe
{
    std::string name = "fuzz";
    std::vector<std::int64_t> initVals; //!< r1..r(initVals.size()) seeds
    std::vector<Word> sandboxInit;      //!< initial sandbox words
    std::uint64_t loopTrips = 1;        //!< >= 1; 1 lowers straight-line
    std::vector<BodyOp> body;
    std::vector<SubRecipe> subs;        //!< callable leaves (r26 linkage)
    bool hasCall = false;               //!< one BSR per loop iteration
    std::uint8_t callSub = 0;           //!< which subroutine it calls
    unsigned callAt = 0;                //!< body position of the call
    bool hasJumpTable = false;
    unsigned jtabAt = 0;                //!< body position of the table
    std::uint8_t jtabReg = 1;           //!< register steering the table
    unsigned foldStores = 8;            //!< r1..rN stored to the sandbox
                                        //!< at the end of each iteration
};

/** Registers the generator uses for temporaries: r1..r20.
 * r21 = sandbox base, r22 = loop counter, r23..r26 structural. */
constexpr unsigned fuzzFirstTemp = 1;
constexpr unsigned fuzzLastTemp = 20;

/** Sandbox and jump-table base addresses used by lowered recipes. */
constexpr Addr fuzzSandboxBase = 0x40000;
constexpr Addr fuzzJtabBase = 0x48000;

/** Draw a recipe. */
ProgRecipe generateRecipe(Rng &rng, const GenOptions &opts);

/** Deterministically lower a recipe to a runnable program. */
Program lowerRecipe(const ProgRecipe &recipe);

/** Convenience: generateRecipe + lowerRecipe from a bare seed. */
Program generateProgram(std::uint64_t seed,
                        const GenOptions &opts = GenOptions());

/**
 * A random machine configuration: any of the four kinds, width 4 or 8,
 * optionally a limited bypass-level mask (Figure 14 space), hole-aware
 * scheduling toggled, and any steering variant.
 */
MachineConfig randomConfig(Rng &rng);

/**
 * A set of 2..5 distinct-labelled configurations for cross-machine
 * differential runs. Always contains a Baseline machine (the golden
 * two's-complement datapath) plus random RB/Ideal variants.
 */
std::vector<MachineConfig> randomConfigSet(Rng &rng);

} // namespace rbsim::fuzz

#endif // RBSIM_FUZZ_GENERATOR_HH
