/**
 * @file
 * Serialized fuzz repros and the committed regression corpus.
 *
 * A repro file is a valid TinyAlpha assembly file: the failing program
 * travels as assembly text (the assembler round-trips everything the
 * generator emits) and the metadata — which oracle failed, the case
 * seed, the machine configurations, a note — travels in `; rbsim-repro`
 * comment lines the assembler ignores. Value-level oracle failures have
 * no program; they replay from the recorded seed and iteration count.
 *
 * Files under tests/corpus/ are replayed by ctest (test_corpus) and must
 * stay green: they are regression tests, so a repro minted from a
 * planted bug records the *unplanted* configuration and documents the
 * plant in its note.
 */

#ifndef RBSIM_FUZZ_CORPUS_HH
#define RBSIM_FUZZ_CORPUS_HH

#include <string>
#include <vector>

#include "fuzz/oracle.hh"

namespace rbsim::fuzz
{

/** One serialized repro. */
struct ReproFile
{
    std::string oracle;             //!< oracle name (see oracleNames())
    std::uint64_t seed = 0;         //!< case seed
    std::uint64_t valueIters = 0;   //!< value-level: iterations to replay
    std::string note;               //!< free-form failure description
    /** Generator bias knobs (genOptionsToJson one-liner) the case was
     * drawn with, "" when the defaults were in force — with the seed,
     * enough to re-derive the recipe, so presets round-trip through
     * repro files. */
    std::string genJson;
    std::vector<MachineConfig> configs; //!< program-level machines
    std::string asmText;            //!< program assembly ("" = value-level)
    /** Replay window (Oracle::setRunLimits): detailed-simulate at most
     * this many retired instructions (0 = to HALT). Recorded so shrunk
     * repros of deep failures stay replayable without resimulating the
     * whole prefix. */
    std::uint64_t maxInsts = 0;
    /** Replay window: functionally fast-forward this many instructions
     * (checkpoint capture + resume) before the detailed window. */
    std::uint64_t resumeSkip = 0;

    bool programLevel() const { return !asmText.empty(); }
};

/** Compact one-line JSON for the configuration fields the fuzzer varies
 * (kind, width, bypass mask, hole-aware wakeup, steering, scheduler
 * implementation, label). */
std::string configToJson(const MachineConfig &cfg);

/** Rebuild a configuration from configToJson output: MachineConfig::make
 * plus the recorded overrides. Throws JsonError / invalid_argument on
 * malformed input. */
MachineConfig configFromJson(const std::string &text);

/** Render a repro as an assemblable file with metadata comments. */
std::string formatRepro(const ReproFile &repro);

/** Inverse of formatRepro. Throws std::invalid_argument when the
 * metadata is missing or malformed. */
ReproFile parseRepro(const std::string &text);

/** Load and parse a repro file. Throws on I/O or parse errors. */
ReproFile loadRepro(const std::string &path);

/**
 * Write a repro into `dir` (created if needed) as
 * "<stem>.repro"; returns the full path.
 */
std::string writeRepro(const std::string &dir, const std::string &stem,
                       const ReproFile &repro);

/** All *.repro paths under `dir`, sorted (empty when dir is absent). */
std::vector<std::string> listCorpus(const std::string &dir);

/**
 * Re-run a repro through its oracle (with an optional plant, for
 * pipeline self-tests). Program-level repros assemble `asmText` and run
 * it on the recorded configs; value-level repros replay the seed.
 * `spec` arms pipeline tracing for the replayed runs (see TraceSpec).
 *
 * A repro naming an oracle this build does not know (a corpus file from
 * a newer build) is reported as a *failed* result with a diagnostic —
 * never silently skipped or passed.
 */
OracleResult replayRepro(const ReproFile &repro,
                         Plant plant = Plant::None,
                         const TraceSpec &spec = {});

} // namespace rbsim::fuzz

#endif // RBSIM_FUZZ_CORPUS_HH
