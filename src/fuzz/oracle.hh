/**
 * @file
 * Differential oracles for the fuzzer. Each oracle checks one exact
 * equivalence the paper's claims rest on:
 *
 *  - "cosim":     lockstep co-simulation of OooCore against the
 *                 functional interpreter on a set of fuzzed machine
 *                 configs, plus cross-machine agreement of the final
 *                 architectural memory (every machine must compute the
 *                 same program state).
 *  - "sched":     bit-identical StatSnapshot parity of the event-driven
 *                 wakeup-array scheduler against the polled scheduler.
 *  - "rbalu":     redundant binary add/sub/scaled-add/shift against a
 *                 __int128 two's-complement reference, including the
 *                 section 3.5 overflow flag and the section 3.6
 *                 sign/zero/LSB/trailing-zero predicates — across
 *                 randomized redundant encodings, not just canonical
 *                 conversions.
 *  - "slice":     the gate-level Figure 2 digit-slice adder against the
 *                 bit-parallel arithmetic model, raw digits and carry.
 *  - "roundtrip": TC -> RB -> TC identity across the redundant encoding
 *                 space (fast subtractor and explicit ripple circuit).
 *
 * Oracles are either program-level (they consume a generated program and
 * machine configs; failures can be shrunk) or value-level (they consume
 * a seed and draw operand streams; failures replay from the seed).
 *
 * A `Plant` selects an intentionally injected bug so the
 * detect-shrink-repro pipeline itself can be tested end to end.
 */

#ifndef RBSIM_FUZZ_ORACLE_HH
#define RBSIM_FUZZ_ORACLE_HH

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "fuzz/generator.hh"

namespace rbsim::fuzz
{

/** Intentionally injected bugs (pipeline self-tests). */
enum class Plant : unsigned char
{
    None,
    /** The "sched" oracle silently widens the bypass-level mask on the
     * wakeup-side run only — the two runs simulate different machines
     * and their snapshots must diverge. */
    SchedBypassWiden,
    /** The "cosim" oracle is replaced by a fake that fails exactly when
     * the program contains both a MULQ and an STQ — a deterministic
     * target for shrinker tests. */
    CosimOpcodePair,
};

/** Parse a plant name ("", "sched-bypass-widen", "cosim-opcode-pair").
 * Throws std::invalid_argument on unknown names. */
Plant parsePlant(const std::string &name);

/** Verdict of one oracle case. */
struct OracleResult
{
    bool failed = false;
    std::string detail; //!< human-readable failure description
};

/**
 * Pipeline-trace sink configuration for program-level oracle runs (see
 * src/trace). Default-constructed = no tracing. When `streamPath` is
 * set, each simulated machine writes a full O3PipeView trace to
 * "<streamPath>.<label>"; when `ringLast` is set, the last N
 * instructions of the failing run are dumped to `ringPath` and the
 * failure detail names the file. Value-level oracles ignore it.
 */
struct TraceSpec
{
    std::string streamPath; //!< per-machine full-trace file prefix
    std::size_t ringLast = 0; //!< ring-buffer the last N instructions
    std::string ringPath;   //!< failure dump target for the ring

    bool
    enabled() const
    {
        return !streamPath.empty() ||
               (ringLast != 0 && !ringPath.empty());
    }
};

/** One differential oracle. */
class Oracle
{
  public:
    explicit Oracle(Plant plant_ = Plant::None) : plant(plant_) {}
    virtual ~Oracle() = default;

    /** Stable oracle name (CLI flag, repro files, stats keys). */
    virtual std::string name() const = 0;

    /** True when the oracle consumes generated programs (and failures
     * are shrinkable); false for seed-driven value oracles. */
    virtual bool programLevel() const = 0;

    /** Program-level: the machine configs one case runs against. */
    virtual std::vector<MachineConfig> pickConfigs(Rng &rng) const;

    /** Program-level: run the differential check. */
    virtual OracleResult
    runProgram(const Program &prog,
               const std::vector<MachineConfig> &configs) const;

    /** Value-level: draw `iters` operand sets from `seed` and check. */
    virtual OracleResult runSeed(std::uint64_t seed,
                                 std::uint64_t iters) const;

    /** Arm pipeline tracing for subsequent runProgram calls. */
    void setTrace(const TraceSpec &spec) { traceSpec = spec; }

    /**
     * Bound every later runProgram call to a window of the dynamic
     * instruction stream: functionally fast-forward `resume_skip`
     * retired instructions (checkpoint capture + resume, exactly the
     * sampling engine's discipline), then simulate at most `max_insts`
     * (0 = to HALT). Makes shrunk repros of deep failures replayable in
     * seconds instead of resimulating the full prefix. Oracles without
     * a windowed mode ignore the limits. A program that halts inside
     * the skip passes vacuously — the shrinker evaluates candidates
     * under the same limits, so the window pins the same failure.
     */
    void
    setRunLimits(std::uint64_t max_insts, std::uint64_t resume_skip)
    {
        maxInsts = max_insts;
        resumeSkip = resume_skip;
    }

  protected:
    Plant plant;
    TraceSpec traceSpec;
    std::uint64_t maxInsts = 0;   //!< measured-window budget (0 = off)
    std::uint64_t resumeSkip = 0; //!< fast-forward skip (0 = off)
};

/** Canonical oracle names, in default fuzzing order. */
std::vector<std::string> oracleNames();

/**
 * Build oracles by name (all five when `names` is empty), wiring the
 * requested plant into the affected oracle and arming the trace sinks
 * on every oracle. Throws std::invalid_argument for unknown names.
 */
std::vector<std::unique_ptr<Oracle>>
makeOracles(const std::vector<std::string> &names = {},
            Plant plant = Plant::None, const TraceSpec &spec = {});

/**
 * First difference between two snapshots as "name: a=<x> b=<y>", or ""
 * when equal. Used by the scheduler-parity oracle and its tests.
 */
std::string snapshotDiff(const StatSnapshot &a, const StatSnapshot &b);

} // namespace rbsim::fuzz

#endif // RBSIM_FUZZ_ORACLE_HH
