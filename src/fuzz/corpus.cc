#include "fuzz/corpus.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json.hh"
#include "fuzz/generator.hh"
#include "isa/assembler.hh"

namespace rbsim::fuzz
{

namespace
{

constexpr const char *metaPrefix = "; rbsim-repro-";

const char *
steeringName(Steering s)
{
    switch (s) {
      case Steering::RoundRobinPairs: return "rr-pairs";
      case Steering::DependenceAware: return "dep-aware";
      case Steering::ClassPartition: return "class-partition";
      default: return "<bad>";
    }
}

Steering
steeringFromName(const std::string &name)
{
    if (name == "rr-pairs")
        return Steering::RoundRobinPairs;
    if (name == "dep-aware")
        return Steering::DependenceAware;
    if (name == "class-partition")
        return Steering::ClassPartition;
    throw std::invalid_argument("unknown steering '" + name + "'");
}

MachineKind
kindFromName(const std::string &name)
{
    for (MachineKind k : {MachineKind::Baseline, MachineKind::RbLimited,
                          MachineKind::RbFull, MachineKind::Ideal}) {
        if (name == machineName(k))
            return k;
    }
    throw std::invalid_argument("unknown machine kind '" + name + "'");
}

/** One-line form of a note (details never need embedded newlines). */
std::string
flatten(const std::string &s)
{
    std::string out = s;
    std::replace(out.begin(), out.end(), '\n', ' ');
    return out;
}

} // namespace

std::string
configToJson(const MachineConfig &cfg)
{
    Json j = Json::object();
    j["kind"] = Json(machineName(cfg.kind));
    j["width"] = Json(cfg.width);
    j["bypassMask"] = Json(static_cast<unsigned>(cfg.bypassLevelMask));
    j["holeAware"] = Json(cfg.holeAwareScheduling);
    j["steering"] = Json(steeringName(cfg.steering));
    j["polled"] = Json(cfg.polledScheduler);
    j["label"] = Json(cfg.label);
    return j.dump();
}

MachineConfig
configFromJson(const std::string &text)
{
    const Json j = Json::parse(text);
    auto str = [&j](const char *key, const std::string &dflt) {
        const Json *v = j.find(key);
        return v ? v->asString() : dflt;
    };

    const MachineKind kind = kindFromName(str("kind", "Ideal"));
    const unsigned width = j.find("width")
        ? static_cast<unsigned>(j.find("width")->asU64()) : 8;
    MachineConfig cfg = MachineConfig::make(kind, width);
    if (const Json *v = j.find("bypassMask"))
        cfg.bypassLevelMask = static_cast<std::uint8_t>(v->asU64());
    if (const Json *v = j.find("holeAware"))
        cfg.holeAwareScheduling = v->asBool();
    if (const Json *v = j.find("polled"))
        cfg.polledScheduler = v->asBool();
    cfg.steering = steeringFromName(str("steering", "rr-pairs"));
    cfg.label = str("label", cfg.label);
    return cfg;
}

std::string
formatRepro(const ReproFile &repro)
{
    std::ostringstream os;
    os << metaPrefix << "oracle: " << repro.oracle << "\n";
    os << metaPrefix << "seed: " << repro.seed << "\n";
    if (repro.valueIters)
        os << metaPrefix << "iters: " << repro.valueIters << "\n";
    if (!repro.note.empty())
        os << metaPrefix << "note: " << flatten(repro.note) << "\n";
    if (!repro.genJson.empty())
        os << metaPrefix << "gen: " << flatten(repro.genJson) << "\n";
    if (repro.maxInsts)
        os << metaPrefix << "max-insts: " << repro.maxInsts << "\n";
    if (repro.resumeSkip)
        os << metaPrefix << "resume-skip: " << repro.resumeSkip << "\n";
    for (const MachineConfig &cfg : repro.configs)
        os << metaPrefix << "config: " << configToJson(cfg) << "\n";
    if (!repro.asmText.empty()) {
        os << "\n" << repro.asmText;
        if (repro.asmText.back() != '\n')
            os << "\n";
    }
    return os.str();
}

ReproFile
parseRepro(const std::string &text)
{
    ReproFile out;
    bool have_oracle = false;
    std::string body;

    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind(metaPrefix, 0) != 0) {
            body += line;
            body += "\n";
            continue;
        }
        const std::string rest = line.substr(std::string(metaPrefix).size());
        const std::size_t colon = rest.find(": ");
        if (colon == std::string::npos) {
            throw std::invalid_argument("malformed repro metadata line: " +
                                        line);
        }
        const std::string key = rest.substr(0, colon);
        const std::string val = rest.substr(colon + 2);
        if (key == "oracle") {
            out.oracle = val;
            have_oracle = true;
        } else if (key == "seed") {
            out.seed = std::stoull(val, nullptr, 0);
        } else if (key == "iters") {
            out.valueIters = std::stoull(val, nullptr, 0);
        } else if (key == "note") {
            out.note = val;
        } else if (key == "gen") {
            // Validate eagerly: a malformed gen line should fail the
            // parse, not the eventual re-generation.
            genOptionsFromJson(Json::parse(val));
            out.genJson = val;
        } else if (key == "max-insts") {
            out.maxInsts = std::stoull(val, nullptr, 0);
        } else if (key == "resume-skip") {
            out.resumeSkip = std::stoull(val, nullptr, 0);
        } else if (key == "config") {
            out.configs.push_back(configFromJson(val));
        } else {
            throw std::invalid_argument("unknown repro metadata key '" +
                                        key + "'");
        }
    }
    if (!have_oracle)
        throw std::invalid_argument("repro has no oracle line");

    // Keep the body only when it contains actual source.
    if (body.find_first_not_of(" \t\n") != std::string::npos)
        out.asmText = body;
    return out;
}

ReproFile
loadRepro(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open repro file " + path);
    std::ostringstream os;
    os << in.rdbuf();
    return parseRepro(os.str());
}

std::string
writeRepro(const std::string &dir, const std::string &stem,
           const ReproFile &repro)
{
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/" + stem + ".repro";
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write repro file " + path);
    out << formatRepro(repro);
    return path;
}

std::vector<std::string>
listCorpus(const std::string &dir)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".repro")
            out.push_back(entry.path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

OracleResult
replayRepro(const ReproFile &repro, Plant plant, const TraceSpec &spec)
{
    // Validate the oracle name up front so a corpus file written by a
    // newer build fails loudly with a diagnostic instead of throwing
    // out of the replay loop (or, worse, passing vacuously).
    const std::vector<std::string> known = oracleNames();
    if (std::find(known.begin(), known.end(), repro.oracle) ==
        known.end()) {
        std::string names;
        for (const std::string &n : known)
            names += (names.empty() ? "" : ", ") + n;
        return {true, "unknown oracle '" + repro.oracle +
                    "' — is this repro from a newer build? known "
                    "oracles: " + names};
    }
    const auto oracles = makeOracles({repro.oracle}, plant, spec);
    Oracle &oracle = *oracles.front();
    if (repro.maxInsts || repro.resumeSkip)
        oracle.setRunLimits(repro.maxInsts, repro.resumeSkip);
    if (repro.programLevel()) {
        if (!oracle.programLevel()) {
            return {true, repro.oracle +
                        ": repro has a program but the oracle is "
                        "value-level"};
        }
        return oracle.runProgram(assemble(repro.asmText), repro.configs);
    }
    if (oracle.programLevel()) {
        return {true, repro.oracle +
                    ": repro has no program but the oracle is "
                    "program-level"};
    }
    return oracle.runSeed(repro.seed,
                          repro.valueIters ? repro.valueIters : 4096);
}

} // namespace rbsim::fuzz
