#include "fuzz/shrink.hh"

#include <algorithm>

namespace rbsim::fuzz
{

namespace
{

/** Budgeted oracle evaluation of a candidate recipe. */
class Checker
{
  public:
    Checker(const Oracle &oracle_,
            const std::vector<MachineConfig> &configs_,
            unsigned max_evals)
        : oracle(oracle_), configs(configs_), budget(max_evals)
    {}

    /** True when the candidate still fails; records the failure detail.
     * Returns false without evaluating once the budget is spent. */
    bool
    fails(const ProgRecipe &candidate)
    {
        if (evals >= budget)
            return false;
        ++evals;
        const OracleResult r =
            oracle.runProgram(lowerRecipe(candidate), configs);
        if (r.failed)
            lastDetail = r.detail;
        return r.failed;
    }

    bool exhausted() const { return evals >= budget; }
    unsigned spent() const { return evals; }
    const std::string &detail() const { return lastDetail; }

  private:
    const Oracle &oracle;
    const std::vector<MachineConfig> &configs;
    unsigned budget;
    unsigned evals = 0;
    std::string lastDetail;
};

/**
 * Greedy ddmin-style chunk removal over an op vector: try dropping
 * chunks of half the vector, then quarters, ... down to single ops,
 * keeping every removal that still fails. `mutate` installs a candidate
 * op vector into a candidate recipe.
 */
template <typename Install>
bool
shrinkOps(Checker &check, const ProgRecipe &best, ProgRecipe &out,
          const std::vector<BodyOp> &ops, Install install)
{
    bool changed = false;
    std::vector<BodyOp> cur = ops;
    for (std::size_t chunk = std::max<std::size_t>(cur.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
        std::size_t i = 0;
        while (i < cur.size() && !check.exhausted()) {
            std::vector<BodyOp> cand = cur;
            const std::size_t n =
                std::min(chunk, cand.size() - i);
            cand.erase(cand.begin() +
                           static_cast<std::ptrdiff_t>(i),
                       cand.begin() +
                           static_cast<std::ptrdiff_t>(i + n));
            ProgRecipe r = best;
            install(r, cand);
            if (check.fails(r)) {
                cur = std::move(cand);
                changed = true;
            } else {
                i += chunk;
            }
        }
        if (chunk == 1)
            break;
    }
    if (changed)
        install(out, cur);
    return changed;
}

/** Try one whole-recipe mutation; keep it when the failure survives. */
template <typename Mutate>
bool
tryMutation(Checker &check, ProgRecipe &best, Mutate mutate)
{
    ProgRecipe cand = best;
    mutate(cand);
    if (check.fails(cand)) {
        best = std::move(cand);
        return true;
    }
    return false;
}

/** Free normalization: drop pieces lowering would ignore anyway. */
void
normalize(ProgRecipe &r)
{
    if (!r.hasCall || r.subs.empty() || r.callSub >= r.subs.size()) {
        r.hasCall = false;
        r.subs.clear();
        r.callSub = 0;
    } else if (r.subs.size() > 1) {
        // Only the called subroutine is ever emitted.
        const SubRecipe keep = r.subs[r.callSub];
        r.subs.assign(1, keep);
        r.callSub = 0;
    }
    r.callAt = std::min<unsigned>(
        r.callAt, static_cast<unsigned>(r.body.size()));
    r.jtabAt = std::min<unsigned>(
        r.jtabAt, static_cast<unsigned>(r.body.size()));
}

} // namespace

ShrinkOutcome
shrinkRecipe(const Oracle &oracle,
             const std::vector<MachineConfig> &configs,
             const ProgRecipe &seed, unsigned maxEvals)
{
    Checker check(oracle, configs, maxEvals);
    ShrinkOutcome out;
    out.recipe = seed;

    if (!check.fails(seed)) {
        out.evals = check.spent();
        return out; // did not reproduce; nothing to shrink
    }
    out.reproduced = true;

    ProgRecipe best = seed;
    normalize(best);

    bool changed = true;
    while (changed && !check.exhausted()) {
        changed = false;

        // Structural simplifications first — each removes many
        // instructions at once.
        changed |= tryMutation(check, best, [](ProgRecipe &r) {
            r.loopTrips = 1;
        });
        changed |= tryMutation(check, best, [](ProgRecipe &r) {
            r.hasJumpTable = false;
        });
        changed |= tryMutation(check, best, [](ProgRecipe &r) {
            r.hasCall = false;
            r.subs.clear();
        });
        changed |= tryMutation(check, best, [](ProgRecipe &r) {
            r.foldStores = 0;
        });
        changed |= tryMutation(check, best, [](ProgRecipe &r) {
            r.sandboxInit.clear();
        });

        // Loop count: binary descent when 1 did not work outright.
        while (best.loopTrips > 1 && !check.exhausted()) {
            const std::uint64_t half = best.loopTrips / 2;
            if (!tryMutation(check, best, [half](ProgRecipe &r) {
                    r.loopTrips = half;
                }))
                break;
            changed = true;
        }

        // Body and subroutine ddmin.
        changed |= shrinkOps(
            check, best, best, best.body,
            [](ProgRecipe &r, const std::vector<BodyOp> &ops) {
                r.body = ops;
                r.callAt = std::min<unsigned>(
                    r.callAt, static_cast<unsigned>(ops.size()));
                r.jtabAt = std::min<unsigned>(
                    r.jtabAt, static_cast<unsigned>(ops.size()));
            });
        if (best.hasCall && !best.subs.empty()) {
            changed |= shrinkOps(
                check, best, best, best.subs[0].ops,
                [](ProgRecipe &r, const std::vector<BodyOp> &ops) {
                    r.subs[0].ops = ops;
                });
        }

        // Constant simplification: zero register seeds and
        // displacements one at a time.
        for (std::size_t i = 0;
             i < best.initVals.size() && !check.exhausted(); ++i) {
            if (best.initVals[i] == 0)
                continue;
            changed |= tryMutation(check, best, [i](ProgRecipe &r) {
                r.initVals[i] = 0;
            });
        }
        for (std::size_t i = 0;
             i < best.body.size() && !check.exhausted(); ++i) {
            if (best.body[i].disp == 0 && best.body[i].lit == 0)
                continue;
            changed |= tryMutation(check, best, [i](ProgRecipe &r) {
                r.body[i].disp = 0;
                r.body[i].lit = 0;
            });
        }

        normalize(best);
    }

    // Drop register seeds past the last mentioned temp (no effect on
    // the lowered program; keeps the serialized repro short).
    best.name = seed.name + "-min";
    out.recipe = best;
    out.detail = check.detail();
    out.evals = check.spent();
    return out;
}

} // namespace rbsim::fuzz
