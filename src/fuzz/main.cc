/**
 * @file
 * rbsim-fuzz: differential fuzzing front end.
 *
 *   rbsim-fuzz --seconds 30                  # all five oracles, 30 s
 *   rbsim-fuzz --oracle cosim --iterations 50
 *   rbsim-fuzz --jobs 8 --seed 7 --corpus-dir out/
 *   rbsim-fuzz --replay tests/corpus/foo.repro
 *   rbsim-fuzz --replay foo.repro --trace foo.pipeview
 *   rbsim-fuzz --plant sched-bypass-widen --iterations 4
 *
 * Exit status: 0 when every case passed (or every replay passed),
 * 1 on failures (including unreadable/unknown-oracle repros),
 * 2 on usage errors.
 */

#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz/corpus.hh"
#include "fuzz/fuzzer.hh"

namespace
{

using namespace rbsim;
using namespace rbsim::fuzz;

void
usage(std::ostream &os)
{
    os << "usage: rbsim-fuzz [options]\n"
          "  --seconds <s>      wall-clock budget\n"
          "  --iterations <n>   case budget (default 100 when no budget "
          "given)\n"
          "  --jobs <n>         worker threads (default 1)\n"
          "  --seed <n>         master seed (default 1)\n"
          "  --oracle <name>    restrict to one oracle (repeatable; "
          "default all)\n"
          "  --preset <name>    generator bias preset (default/memory/"
          "branchy/arith,\n"
          "                     or a workload-stream family: ycsb/"
          "pointer-chase/\n"
          "                     branch-entropy/rb-adversarial)\n"
          "  --value-iters <n>  draws per value-level case (default "
          "4096)\n"
          "  --corpus-dir <d>   write shrunk repro files into <d>\n"
          "  --max-failures <n> repros kept per oracle (default 3)\n"
          "  --plant <name>     inject a known bug (sched-bypass-widen, "
          "cosim-opcode-pair)\n"
          "  --max-insts <n>    cosim: cap the detailed window per case "
          "at n retired\n"
          "                     instructions (recorded in minted "
          "repros)\n"
          "  --resume-skip <n>  cosim: fast-forward n instructions "
          "(checkpoint\n"
          "                     capture + resume) before the detailed "
          "window\n"
          "  --no-shrink        skip delta-debugging of failures\n"
          "  --json             print a JSON summary instead of text\n"
          "  --replay <file>    replay repro files instead of fuzzing "
          "(repeatable)\n"
          "  --trace <file>     replay: write an O3PipeView pipeline "
          "trace per\n"
          "                     simulated machine (<file>.<machine>; "
          "load in Konata)\n"
          "  --trace-last <n>   replay: ring-buffer the last n "
          "instructions and\n"
          "                     dump them to <repro>.trace on failure\n"
          "  --list-oracles     print oracle names and exit\n";
}

int
replayFiles(const std::vector<std::string> &files, Plant plant,
            bool json, const std::string &traceFile,
            std::size_t traceLast)
{
    unsigned failed = 0;
    for (const std::string &path : files) {
        TraceSpec spec;
        if (!traceFile.empty()) {
            // With several repros, keep the per-machine trace files of
            // each one apart by suffixing the repro's stem.
            spec.streamPath = traceFile;
            if (files.size() > 1) {
                const std::size_t slash = path.find_last_of('/');
                spec.streamPath +=
                    "." + path.substr(slash == std::string::npos
                                          ? 0 : slash + 1);
            }
        }
        if (traceLast) {
            spec.ringLast = traceLast;
            spec.ringPath = path + ".trace";
        }
        OracleResult r;
        try {
            r = replayRepro(loadRepro(path), plant, spec);
        } catch (const std::exception &e) {
            // An unreadable or malformed repro fails that file only;
            // the remaining replays still run.
            r = {true, e.what()};
        }
        if (!json) {
            std::cout << (r.failed ? "FAIL " : "ok   ") << path;
            if (r.failed)
                std::cout << "\n  " << r.detail;
            std::cout << "\n";
        }
        failed += r.failed ? 1 : 0;
    }
    if (json) {
        std::cout << "{\"replayed\": " << files.size()
                  << ", \"failed\": " << failed << "}\n";
    }
    return failed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzOptions opts;
    std::vector<std::string> replays;
    bool json = false;
    std::string trace_file;
    std::size_t trace_last = 0;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&]() -> std::string {
                if (i + 1 >= argc) {
                    throw std::invalid_argument("missing value for " +
                                                arg);
                }
                return argv[++i];
            };
            if (arg == "--seconds") {
                opts.seconds = std::stod(value());
            } else if (arg == "--iterations") {
                opts.iterations = std::stoull(value());
            } else if (arg == "--jobs") {
                opts.jobs = static_cast<unsigned>(std::stoul(value()));
            } else if (arg == "--seed") {
                opts.seed = std::stoull(value(), nullptr, 0);
            } else if (arg == "--oracle") {
                opts.oracles.push_back(value());
            } else if (arg == "--preset") {
                opts.gen = GenOptions::preset(value());
            } else if (arg == "--value-iters") {
                opts.valueIters = std::stoull(value());
            } else if (arg == "--corpus-dir") {
                opts.corpusDir = value();
            } else if (arg == "--max-failures") {
                opts.maxFailures =
                    static_cast<unsigned>(std::stoul(value()));
            } else if (arg == "--plant") {
                opts.plant = parsePlant(value());
            } else if (arg == "--max-insts") {
                opts.maxInsts = std::stoull(value());
            } else if (arg == "--resume-skip") {
                opts.resumeSkip = std::stoull(value());
            } else if (arg == "--no-shrink") {
                opts.shrink = false;
            } else if (arg == "--json") {
                json = true;
            } else if (arg == "--replay") {
                replays.push_back(value());
            } else if (arg == "--trace") {
                trace_file = value();
            } else if (arg == "--trace-last") {
                trace_last = std::stoull(value());
            } else if (arg == "--list-oracles") {
                for (const std::string &n : oracleNames())
                    std::cout << n << "\n";
                return 0;
            } else if (arg == "--help" || arg == "-h") {
                usage(std::cout);
                return 0;
            } else {
                throw std::invalid_argument("unknown option " + arg);
            }
        }

        if (!replays.empty()) {
            return replayFiles(replays, opts.plant, json, trace_file,
                               trace_last);
        }

        const FuzzSummary summary = runFuzz(opts);
        std::cout << (json ? summary.toJson() + "\n" : summary.format());
        return summary.ok() ? 0 : 1;
    } catch (const std::exception &e) {
        std::cerr << "rbsim-fuzz: " << e.what() << "\n";
        usage(std::cerr);
        return 2;
    }
}
