/**
 * @file
 * The differential fuzzing driver behind rbsim-fuzz.
 *
 * Cases are numbered by a global atomic counter; case i derives its seed
 * as Rng::mixSeed(masterSeed, i) and round-robins over the selected
 * oracles — so the (case, seed, oracle) mapping is a pure function of
 * the master seed, independent of the number of worker threads or their
 * interleaving. Failures are collected (capped per oracle), then shrunk
 * single-threaded after the workers join, and serialized as repro files
 * into the corpus directory.
 */

#ifndef RBSIM_FUZZ_FUZZER_HH
#define RBSIM_FUZZ_FUZZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/corpus.hh"
#include "fuzz/generator.hh"
#include "fuzz/oracle.hh"

namespace rbsim::fuzz
{

/** Driver options (the rbsim-fuzz command line). */
struct FuzzOptions
{
    std::vector<std::string> oracles; //!< empty = all five
    std::uint64_t seed = 1;           //!< master seed
    double seconds = 0.0;             //!< wall-clock budget (0 = off)
    std::uint64_t iterations = 0;     //!< case budget (0 = off)
    unsigned jobs = 1;                //!< worker threads
    std::uint64_t valueIters = 4096;  //!< draws per value-level case
    GenOptions gen;                   //!< program generator bias
    std::string corpusDir;            //!< write repros here ("" = don't)
    Plant plant = Plant::None;        //!< injected bug (self-test)
    bool shrink = true;               //!< delta-debug failing programs
    unsigned maxShrinkEvals = 400;    //!< shrinker oracle-eval budget
    unsigned maxFailures = 3;         //!< repros kept per oracle
    //! Ring-buffer size for the pipeline trace written next to every
    //! program-level repro ("<repro>.trace"); 0 disables.
    std::size_t traceLast = 64;
    //! Windowed replay (Oracle::setRunLimits): cap the detailed cosim
    //! window per case at this many retired instructions (0 = to HALT)
    //! and record the window in minted repros.
    std::uint64_t maxInsts = 0;
    //! Windowed replay: fast-forward this many instructions via
    //! checkpoint capture + resume before the detailed window.
    std::uint64_t resumeSkip = 0;
};

/** Per-oracle case/failure accounting. */
struct OracleTally
{
    std::string name;
    std::uint64_t cases = 0;
    std::uint64_t failures = 0;
};

/** One collected (and possibly shrunk) failure. */
struct FuzzFailure
{
    std::string oracle;
    std::uint64_t seed = 0;
    std::string detail;        //!< oracle detail (post-shrink when shrunk)
    ReproFile repro;
    std::string path;          //!< repro file path ("" when not written)
    unsigned shrinkEvals = 0;
    unsigned programInsts = 0; //!< lowered instruction count (program-level)
};

/** Everything one fuzzing run produced. */
struct FuzzSummary
{
    std::vector<OracleTally> oracles;
    std::vector<FuzzFailure> failures;
    std::uint64_t cases = 0;
    double seconds = 0.0;

    bool ok() const { return failures.empty(); }

    /** Render for humans. */
    std::string format() const;

    /** Render as a JSON document (the --json output). */
    std::string toJson() const;
};

/** Run one fuzzing campaign. When neither `seconds` nor `iterations`
 * is set, runs 100 cases. */
FuzzSummary runFuzz(const FuzzOptions &opts);

} // namespace rbsim::fuzz

#endif // RBSIM_FUZZ_FUZZER_HH
