#include "fuzz/generator.hh"

#include <cassert>
#include <stdexcept>

#include "isa/builder.hh"

namespace rbsim::fuzz
{

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Arith: return "arith";
      case OpKind::Logical: return "logical";
      case OpKind::Shift: return "shift";
      case OpKind::Compare: return "compare";
      case OpKind::Cmov: return "cmov";
      case OpKind::Byte: return "byte";
      case OpKind::Count: return "count";
      case OpKind::Load: return "load";
      case OpKind::Store: return "store";
      case OpKind::Branch: return "branch";
      case OpKind::Mul: return "mul";
      case OpKind::Lda: return "lda";
      default: return "<bad>";
    }
}

GenOptions::GenOptions()
{
    weight.fill(1); // the historical uniform 12-way mix
}

GenOptions
GenOptions::preset(const std::string &name)
{
    GenOptions o;
    if (name == "default" || name.empty())
        return o;
    auto w = [&o](OpKind k) -> unsigned & {
        return o.weight[static_cast<unsigned>(k)];
    };
    if (name == "memory") {
        w(OpKind::Load) = 6;
        w(OpKind::Store) = 6;
        w(OpKind::Lda) = 2;
        o.aliasSlots = 4; // hammer a tiny window: forwarding + aliasing
        return o;
    }
    if (name == "branchy") {
        w(OpKind::Branch) = 6;
        w(OpKind::Compare) = 4;
        w(OpKind::Cmov) = 4;
        o.minBody = 8;
        o.maxBody = 20;
        return o;
    }
    if (name == "arith") {
        o.weight.fill(0);
        w(OpKind::Arith) = 6;
        w(OpKind::Mul) = 2;
        w(OpKind::Shift) = 2;
        w(OpKind::Lda) = 1;
        w(OpKind::Store) = 1; // keep results observable in memory
        return o;
    }
    // Stream-bridged presets: loop bodies follow a workload-generator op
    // stream. Key spaces are clamped small — sandbox displacements are
    // 16-bit, and a tight window also forces aliasing/forwarding.
    if (name == "ycsb") {
        o.useStream = true;
        o.stream = gen::genPreset("ycsb-a");
        o.stream.numKeys = 256;
        return o;
    }
    if (name == "pointer-chase") {
        o.useStream = true;
        o.stream = gen::genPreset("chase-dl1");
        o.stream.numKeys = 256;
        return o;
    }
    if (name == "branch-entropy") {
        o.useStream = true;
        o.stream = gen::genPreset("branch-0.9");
        return o;
    }
    if (name == "rb-adversarial") {
        o.useStream = true;
        o.stream = gen::genPreset("rb-adversarial");
        o.stream.numKeys = 256;
        return o;
    }
    throw std::invalid_argument("unknown generator preset '" + name + "'");
}

std::vector<std::string>
GenOptions::presetNames()
{
    return {"default",       "memory",         "branchy",
            "arith",         "ycsb",           "pointer-chase",
            "branch-entropy", "rb-adversarial"};
}

Json
genOptionsToJson(const GenOptions &opts)
{
    Json j = Json::object();
    Json weights = Json::object();
    for (unsigned k = 0; k < numOpKinds; ++k)
        weights[opKindName(static_cast<OpKind>(k))] = opts.weight[k];
    j["weights"] = std::move(weights);
    j["minBody"] = opts.minBody;
    j["maxBody"] = opts.maxBody;
    j["minTrips"] = opts.minTrips;
    j["maxTrips"] = opts.maxTrips;
    j["numSubs"] = opts.numSubs;
    j["jumpTable"] = opts.jumpTable;
    j["sandboxWords"] = opts.sandboxWords;
    j["aliasSlots"] = opts.aliasSlots;
    if (opts.useStream) {
        j["useStream"] = true;
        j["stream"] = opts.stream.toJsonValue();
    }
    return j;
}

GenOptions
genOptionsFromJson(const Json &j)
{
    if (!j.isObject())
        throw std::invalid_argument("gen options must be a JSON object");
    GenOptions o;
    auto u = [](const Json &v) {
        return static_cast<unsigned>(v.asU64());
    };
    for (const auto &[key, v] : j.items()) {
        if (key == "weights") {
            for (const auto &[kname, w] : v.items()) {
                bool known = false;
                for (unsigned k = 0; k < numOpKinds; ++k) {
                    if (kname == opKindName(static_cast<OpKind>(k))) {
                        o.weight[k] = u(w);
                        known = true;
                    }
                }
                if (!known)
                    throw std::invalid_argument(
                        "unknown op kind \"" + kname + "\"");
            }
        } else if (key == "minBody") {
            o.minBody = u(v);
        } else if (key == "maxBody") {
            o.maxBody = u(v);
        } else if (key == "minTrips") {
            o.minTrips = u(v);
        } else if (key == "maxTrips") {
            o.maxTrips = u(v);
        } else if (key == "numSubs") {
            o.numSubs = u(v);
        } else if (key == "jumpTable") {
            o.jumpTable = v.asBool();
        } else if (key == "sandboxWords") {
            o.sandboxWords = u(v);
        } else if (key == "aliasSlots") {
            o.aliasSlots = u(v);
        } else if (key == "useStream") {
            o.useStream = v.asBool();
        } else if (key == "stream") {
            o.stream = gen::GenConfig::fromJsonValue(v);
        } else {
            throw std::invalid_argument("unknown gen-options key \"" +
                                        key + "\"");
        }
    }
    return o;
}

namespace
{

std::uint8_t
randTemp(Rng &rng)
{
    return static_cast<std::uint8_t>(
        fuzzFirstTemp +
        rng.below(fuzzLastTemp - fuzzFirstTemp + 1));
}

OpKind
drawKind(Rng &rng, const GenOptions &opts)
{
    std::uint64_t total = 0;
    for (unsigned w : opts.weight)
        total += w;
    if (total == 0)
        return OpKind::Arith;
    std::uint64_t pick = rng.below(total);
    for (unsigned k = 0; k < numOpKinds; ++k) {
        if (pick < opts.weight[k])
            return static_cast<OpKind>(k);
        pick -= opts.weight[k];
    }
    return OpKind::Arith;
}

BodyOp
drawOp(Rng &rng, const GenOptions &opts)
{
    BodyOp op;
    op.kind = drawKind(rng, opts);
    op.a = randTemp(rng);
    op.b = randTemp(rng);
    op.c = randTemp(rng);

    switch (op.kind) {
      case OpKind::Arith: {
        static const Opcode arith[] = {
            Opcode::ADDQ, Opcode::SUBQ, Opcode::ADDL, Opcode::SUBL,
            Opcode::S4ADDQ, Opcode::S8ADDQ, Opcode::S4SUBQ,
            Opcode::S8SUBQ};
        op.op = arith[rng.below(std::size(arith))];
        break;
      }
      case OpKind::Logical: {
        static const Opcode logical[] = {
            Opcode::AND, Opcode::BIS, Opcode::XOR, Opcode::BIC,
            Opcode::ORNOT, Opcode::EQV};
        op.op = logical[rng.below(std::size(logical))];
        break;
      }
      case OpKind::Shift: {
        static const Opcode shifts[] = {Opcode::SLL, Opcode::SRL,
                                        Opcode::SRA};
        op.op = shifts[rng.below(std::size(shifts))];
        op.lit = static_cast<std::uint8_t>(rng.below(64));
        break;
      }
      case OpKind::Compare: {
        static const Opcode cmps[] = {Opcode::CMPEQ, Opcode::CMPLT,
                                      Opcode::CMPLE, Opcode::CMPULT,
                                      Opcode::CMPULE};
        op.op = cmps[rng.below(std::size(cmps))];
        break;
      }
      case OpKind::Cmov: {
        static const Opcode cmovs[] = {
            Opcode::CMOVEQ, Opcode::CMOVNE, Opcode::CMOVLT,
            Opcode::CMOVGE, Opcode::CMOVLE, Opcode::CMOVGT,
            Opcode::CMOVLBS, Opcode::CMOVLBC};
        op.op = cmovs[rng.below(std::size(cmovs))];
        break;
      }
      case OpKind::Byte: {
        static const Opcode bytes[] = {Opcode::EXTBL, Opcode::EXTWL,
                                       Opcode::EXTLL, Opcode::INSBL,
                                       Opcode::MSKBL, Opcode::ZAPNOT};
        op.op = bytes[rng.below(std::size(bytes))];
        op.lit = static_cast<std::uint8_t>(rng.below(8));
        break;
      }
      case OpKind::Count: {
        static const Opcode counts[] = {Opcode::CTLZ, Opcode::CTTZ,
                                        Opcode::CTPOP};
        op.op = counts[rng.below(std::size(counts))];
        break;
      }
      case OpKind::Load:
        op.op = rng.chance(1, 2) ? Opcode::LDQ : Opcode::LDL;
        op.disp = static_cast<std::int32_t>(
            rng.below(opts.aliasSlots ? opts.aliasSlots : 1)) * 8;
        break;
      case OpKind::Store:
        op.op = rng.chance(1, 2) ? Opcode::STQ : Opcode::STL;
        op.disp = static_cast<std::int32_t>(
            rng.below(opts.aliasSlots ? opts.aliasSlots : 1)) * 8;
        break;
      case OpKind::Branch: {
        static const Opcode brs[] = {Opcode::BEQ, Opcode::BNE,
                                     Opcode::BLT, Opcode::BGE,
                                     Opcode::BLBS, Opcode::BLBC};
        op.op = brs[rng.below(std::size(brs))];
        op.skip = static_cast<std::uint8_t>(1 + rng.below(4));
        break;
      }
      case OpKind::Mul:
        op.op = Opcode::MULQ;
        op.lit = static_cast<std::uint8_t>(rng.below(256));
        break;
      case OpKind::Lda:
      default:
        op.kind = OpKind::Lda;
        op.op = Opcode::LDA;
        op.disp = static_cast<std::int32_t>(rng.range(-512, 511));
        break;
    }
    return op;
}

/** Range draw helper tolerating min > max. */
unsigned
drawRange(Rng &rng, unsigned lo, unsigned hi)
{
    if (hi < lo)
        hi = lo;
    return lo + static_cast<unsigned>(rng.below(hi - lo + 1));
}

/**
 * Bridge a workload-generator op stream into recipe body ops. Key
 * accesses hit the fuzz sandbox at the drawn key's slot (so the
 * configured key-popularity skew shapes the aliasing pattern), compute
 * bursts become the matching serial chains on one temp, chases become
 * dependent load->use pairs, branches keep their drawn spacing. The
 * bridge stops at `target` body ops; a too-short stream is padded with
 * the weighted mix.
 */
void
bridgeStream(std::vector<BodyOp> &body, Rng &rng, const GenOptions &opts,
             unsigned target)
{
    gen::GenConfig cfg = opts.stream;
    cfg.streamOps = target; // at least one body op per abstract op
    auto workload = gen::makeWorkloadGen(cfg.family);
    workload->load(cfg, rng.next());

    // 16-bit load/store displacements bound the addressable key window.
    const std::uint64_t slots =
        std::max<std::uint64_t>(1, std::min<std::uint64_t>(cfg.numKeys,
                                                           4096));
    auto slotDisp = [&](std::uint64_t key) {
        return static_cast<std::int32_t>((key % slots) * 8);
    };
    auto memOp = [&](OpKind kind, Opcode opc, std::int32_t disp) {
        BodyOp op;
        op.kind = kind;
        op.op = opc;
        op.a = randTemp(rng);
        op.c = randTemp(rng);
        op.disp = disp;
        return op;
    };
    auto aluOp = [&](OpKind kind, Opcode opc, std::uint8_t a,
                     std::uint8_t b, std::uint8_t c, std::uint8_t lit) {
        BodyOp op;
        op.kind = kind;
        op.op = opc;
        op.a = a;
        op.b = b;
        op.c = c;
        op.lit = lit;
        return op;
    };

    gen::WorkloadOp wop;
    while (body.size() < target && workload->next(wop)) {
        switch (wop.kind) {
          case gen::WorkloadOp::Kind::KeyRead:
            body.push_back(
                memOp(OpKind::Load, Opcode::LDQ, slotDisp(wop.key)));
            break;
          case gen::WorkloadOp::Kind::KeyUpdate:
            body.push_back(
                memOp(OpKind::Store, Opcode::STQ, slotDisp(wop.key)));
            break;
          case gen::WorkloadOp::Kind::KeyRmw: {
            const std::int32_t disp = slotDisp(wop.key);
            const std::uint8_t t = randTemp(rng);
            BodyOp ld = memOp(OpKind::Load, Opcode::LDQ, disp);
            ld.c = t;
            body.push_back(ld);
            body.push_back(
                aluOp(OpKind::Arith, Opcode::ADDQ, t, t, t, 0));
            BodyOp st = memOp(OpKind::Store, Opcode::STQ, disp);
            st.a = t;
            body.push_back(st);
            break;
          }
          case gen::WorkloadOp::Kind::KeyScan:
            for (unsigned s = 0; s < std::max(1u, wop.len) &&
                                 body.size() < target + 8;
                 ++s) {
                body.push_back(memOp(
                    OpKind::Load, Opcode::LDQ,
                    slotDisp(wop.key + s)));
            }
            break;
          case gen::WorkloadOp::Kind::PointerChase:
            // No dependent addressing in the sandbox; approximate the
            // serial dependence with load -> use chains on one temp.
            for (unsigned s = 0; s < std::max(1u, wop.len) &&
                                 body.size() < target + 8;
                 ++s) {
                const std::uint8_t t = randTemp(rng);
                BodyOp ld = memOp(
                    OpKind::Load, Opcode::LDQ,
                    static_cast<std::int32_t>(rng.below(slots) * 8));
                ld.c = t;
                body.push_back(ld);
                body.push_back(
                    aluOp(OpKind::Arith, Opcode::ADDQ, t, t, t, 0));
            }
            break;
          case gen::WorkloadOp::Kind::Compute: {
            const std::uint8_t t = randTemp(rng);
            const std::uint8_t u = randTemp(rng);
            for (unsigned s = 0; s < std::max(1u, wop.len) &&
                                 body.size() < target + 8;
                 ++s) {
                if (wop.rb) {
                    // The Table 3 worst case: SLL (5-cycle TC
                    // conversion) feeding a logical, serially.
                    body.push_back(aluOp(
                        OpKind::Shift, Opcode::SLL, t, t, u,
                        static_cast<std::uint8_t>(1 + rng.below(23))));
                    body.push_back(aluOp(OpKind::Logical,
                                         s % 4 == 3 ? Opcode::BIS
                                                    : Opcode::XOR,
                                         t, u, t, 0));
                } else {
                    body.push_back(aluOp(OpKind::Arith, Opcode::ADDQ, t,
                                         u, t, 0));
                }
            }
            break;
          }
          case gen::WorkloadOp::Kind::Branch:
          default: {
            BodyOp op;
            op.kind = OpKind::Branch;
            static const Opcode brs[] = {Opcode::BEQ, Opcode::BNE,
                                         Opcode::BLT, Opcode::BGE,
                                         Opcode::BLBS, Opcode::BLBC};
            op.op = brs[rng.below(std::size(brs))];
            op.a = randTemp(rng);
            op.skip = static_cast<std::uint8_t>(1 + rng.below(4));
            body.push_back(op);
            break;
          }
        }
    }
    while (body.size() < target)
        body.push_back(drawOp(rng, opts));
}

} // namespace

ProgRecipe
generateRecipe(Rng &rng, const GenOptions &opts)
{
    ProgRecipe r;
    r.initVals.resize(fuzzLastTemp - fuzzFirstTemp + 1);
    for (std::int64_t &v : r.initVals)
        v = static_cast<std::int64_t>(rng.next());
    r.sandboxInit.resize(opts.sandboxWords);
    for (Word &w : r.sandboxInit)
        w = rng.next();
    r.loopTrips = drawRange(rng, opts.minTrips, opts.maxTrips);

    const unsigned body_len = drawRange(rng, opts.minBody, opts.maxBody);
    r.body.reserve(body_len);
    if (opts.useStream)
        bridgeStream(r.body, rng, opts, body_len);
    else
        for (unsigned i = 0; i < body_len; ++i)
            r.body.push_back(drawOp(rng, opts));

    r.subs.resize(opts.numSubs);
    for (SubRecipe &sub : r.subs) {
        const unsigned len = 3 + static_cast<unsigned>(rng.below(4));
        for (unsigned i = 0; i < len; ++i)
            sub.ops.push_back(drawOp(rng, opts));
    }
    r.hasCall = !r.subs.empty();
    if (r.hasCall) {
        r.callSub = static_cast<std::uint8_t>(rng.below(r.subs.size()));
        r.callAt = static_cast<unsigned>(rng.below(body_len));
    }
    r.hasJumpTable = opts.jumpTable;
    if (r.hasJumpTable) {
        r.jtabAt = static_cast<unsigned>(rng.below(body_len));
        r.jtabReg = randTemp(rng);
    }
    r.foldStores = 8;
    return r;
}

namespace
{

/** Lowering context for one straight-line op stream (body or sub). */
struct PendingBinds
{
    CodeBuilder &cb;
    std::vector<std::pair<Label, unsigned>> pending; // label, ops left

    explicit PendingBinds(CodeBuilder &builder) : cb(builder) {}

    void
    afterOp()
    {
        // Count down every pending forward branch and bind the expiring
        // targets (LIFO order is irrelevant; labels are independent).
        std::vector<std::pair<Label, unsigned>> keep;
        for (auto &[label, left] : pending) {
            if (left <= 1)
                cb.bind(label);
            else
                keep.emplace_back(label, left - 1);
        }
        pending = std::move(keep);
    }

    void
    bindAll()
    {
        for (auto &[label, left] : pending)
            cb.bind(label);
        pending.clear();
    }
};

void
emitBodyOp(CodeBuilder &cb, const BodyOp &op, PendingBinds &binds)
{
    const Reg a = R(op.a);
    const Reg b = R(op.b);
    const Reg c = R(op.c);
    switch (op.kind) {
      case OpKind::Arith:
      case OpKind::Logical:
      case OpKind::Compare:
      case OpKind::Cmov:
        cb.op3(op.op, a, b, c);
        break;
      case OpKind::Shift:
      case OpKind::Byte:
      case OpKind::Mul:
        cb.opi(op.op, a, op.lit, c);
        break;
      case OpKind::Count:
        cb.op1(op.op, a, c);
        break;
      case OpKind::Load:
        cb.load(op.op, c, op.disp, R(21));
        break;
      case OpKind::Store:
        cb.store(op.op, a, op.disp, R(21));
        break;
      case OpKind::Branch: {
        const Label skip = cb.newLabel();
        cb.branch(op.op, a, skip);
        binds.pending.emplace_back(skip, op.skip ? op.skip : 1);
        return; // a branch is not an op its own pending counters see
      }
      case OpKind::Lda:
      default:
        cb.lda(c, op.disp, b);
        break;
    }
    binds.afterOp();
}

bool
usesMemory(const ProgRecipe &r)
{
    if (r.foldStores > 0)
        return true;
    auto scan = [](const std::vector<BodyOp> &ops) {
        for (const BodyOp &op : ops) {
            if (op.kind == OpKind::Load || op.kind == OpKind::Store)
                return true;
        }
        return false;
    };
    if (scan(r.body))
        return true;
    if (r.hasCall) {
        for (const SubRecipe &sub : r.subs) {
            if (scan(sub.ops))
                return true;
        }
    }
    return false;
}

/** Which temp registers any op mentions (sources or destinations). */
std::array<bool, fuzzLastTemp + 1>
mentionedTemps(const ProgRecipe &r)
{
    std::array<bool, fuzzLastTemp + 1> used{};
    auto mark = [&used](std::uint8_t reg) {
        if (reg >= fuzzFirstTemp && reg <= fuzzLastTemp)
            used[reg] = true;
    };
    auto scan = [&](const std::vector<BodyOp> &ops) {
        for (const BodyOp &op : ops) {
            mark(op.a);
            mark(op.b);
            mark(op.c);
        }
    };
    scan(r.body);
    if (r.hasCall) {
        for (const SubRecipe &sub : r.subs)
            scan(sub.ops);
    }
    if (r.hasJumpTable) {
        mark(r.jtabReg);
        // The jump-table cases touch r1/r2.
        used[1] = used[2] = true;
    }
    return used;
}

} // namespace

Program
lowerRecipe(const ProgRecipe &recipe)
{
    CodeBuilder cb(recipe.name);
    if (!recipe.sandboxInit.empty())
        cb.dataWords(fuzzSandboxBase, recipe.sandboxInit);

    const bool has_call = recipe.hasCall && !recipe.subs.empty() &&
                          recipe.callSub < recipe.subs.size();
    const bool need_mem = usesMemory(recipe);
    const bool counted = recipe.loopTrips > 1;

    // Leaf subroutines first (skipped over), only when actually called.
    std::vector<Label> sub_labels;
    if (has_call) {
        const Label past_subs = cb.newLabel();
        cb.br(past_subs);
        for (const SubRecipe &sub : recipe.subs) {
            sub_labels.push_back(cb.newLabel());
            cb.bind(sub_labels.back());
            PendingBinds binds(cb);
            for (const BodyOp &op : sub.ops)
                emitBodyOp(cb, op, binds);
            binds.bindAll();
            cb.ret(R(26));
        }
        cb.bind(past_subs);
    }

    // Initialize only the registers the program mentions, so shrunk
    // repros stay minimal.
    const auto used = mentionedTemps(recipe);
    for (unsigned r = fuzzFirstTemp; r <= fuzzLastTemp; ++r) {
        if (!used[r])
            continue;
        const std::size_t idx = r - fuzzFirstTemp;
        cb.ldiq(R(r), idx < recipe.initVals.size()
                          ? recipe.initVals[idx] : 0);
    }
    if (need_mem)
        cb.ldiq(R(21), static_cast<std::int64_t>(fuzzSandboxBase));
    if (counted)
        cb.ldiq(R(22), static_cast<std::int64_t>(recipe.loopTrips));
    if (recipe.hasJumpTable)
        cb.ldiq(R(23), static_cast<std::int64_t>(fuzzJtabBase));

    const Label loop = cb.newLabel();
    if (counted)
        cb.bind(loop);

    std::array<Label, 2> cases{};
    const unsigned call_at =
        std::min<unsigned>(recipe.callAt,
                           static_cast<unsigned>(recipe.body.size()));
    const unsigned jtab_at =
        std::min<unsigned>(recipe.jtabAt,
                           static_cast<unsigned>(recipe.body.size()));

    PendingBinds binds(cb);
    for (unsigned i = 0; i <= recipe.body.size(); ++i) {
        if (has_call && i == call_at)
            cb.bsr(R(26), sub_labels[recipe.callSub]);
        if (recipe.hasJumpTable && i == jtab_at) {
            // Data-dependent two-way jump table (BTB-predicted). No
            // branches may jump into the cases.
            binds.bindAll();
            cases[0] = cb.newLabel();
            cases[1] = cb.newLabel();
            const Label merge = cb.newLabel();
            cb.opi(Opcode::AND, R(recipe.jtabReg), 1, R(24));
            cb.op3(Opcode::S8ADDQ, R(24), R(23), R(24));
            cb.load(Opcode::LDQ, R(24), 0, R(24));
            cb.jmp(R(25), R(24));
            cb.bind(cases[0]);
            cb.opi(Opcode::ADDQ, R(1), 1, R(1));
            cb.br(merge);
            cb.bind(cases[1]);
            cb.opi(Opcode::XOR, R(2), 255, R(2));
            cb.bind(merge);
        }
        if (i < recipe.body.size())
            emitBodyOp(cb, recipe.body[i], binds);
    }
    binds.bindAll();

    // Fold live state into the sandbox so everything is observable.
    const unsigned folds = std::min<unsigned>(recipe.foldStores, 8);
    for (unsigned r = fuzzFirstTemp; r < fuzzFirstTemp + folds; ++r) {
        cb.store(Opcode::STQ, R(r),
                 static_cast<std::int32_t>((r - fuzzFirstTemp) * 8),
                 R(21));
    }
    if (counted) {
        cb.opi(Opcode::SUBQ, R(22), 1, R(22));
        cb.branch(Opcode::BNE, R(22), loop);
    }
    cb.halt();

    if (recipe.hasJumpTable) {
        cb.dataWords(fuzzJtabBase, {cb.labelByteAddr(cases[0]),
                                    cb.labelByteAddr(cases[1])});
    }
    return cb.finish();
}

Program
generateProgram(std::uint64_t seed, const GenOptions &opts)
{
    Rng rng(seed);
    ProgRecipe recipe = generateRecipe(rng, opts);
    recipe.name = "fuzz-" + std::to_string(seed);
    return lowerRecipe(recipe);
}

MachineConfig
randomConfig(Rng &rng)
{
    const MachineKind kind = static_cast<MachineKind>(rng.below(4));
    const unsigned width = rng.chance(1, 2) ? 4 : 8;

    MachineConfig cfg;
    if (kind == MachineKind::Ideal && rng.chance(1, 2)) {
        // Figure 14 space: any non-full bypass-level mask.
        cfg = MachineConfig::makeIdealLimited(
            width, static_cast<std::uint8_t>(1 + rng.below(6)));
    } else {
        cfg = MachineConfig::make(kind, width);
    }

    const bool is_rb = kind == MachineKind::RbLimited ||
                       kind == MachineKind::RbFull;
    if (is_rb && rng.chance(1, 4))
        cfg.holeAwareScheduling = false;
    switch (rng.below(4)) {
      case 2:
        cfg.steering = Steering::DependenceAware;
        break;
      case 3:
        if (is_rb)
            cfg.steering = Steering::ClassPartition;
        break;
      default:
        break;
    }

    // Descriptive label so differential failures name the variant.
    cfg.label += "/w" + std::to_string(width);
    if (!cfg.holeAwareScheduling)
        cfg.label += "/noholes";
    if (cfg.steering == Steering::DependenceAware)
        cfg.label += "/depsteer";
    else if (cfg.steering == Steering::ClassPartition)
        cfg.label += "/classpart";
    return cfg;
}

std::vector<MachineConfig>
randomConfigSet(Rng &rng)
{
    std::vector<MachineConfig> out;
    // The Baseline machine is the pure two's-complement datapath — the
    // natural golden reference for cross-machine state comparison.
    out.push_back(MachineConfig::make(MachineKind::Baseline,
                                      rng.chance(1, 2) ? 4 : 8));
    const unsigned extra = 1 + static_cast<unsigned>(rng.below(4));
    for (unsigned i = 0; i < extra; ++i)
        out.push_back(randomConfig(rng));
    return out;
}

} // namespace rbsim::fuzz
