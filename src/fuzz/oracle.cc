#include "fuzz/oracle.hh"

#include <bit>
#include <cctype>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/core.hh"
#include "rb/convert.hh"
#include "rb/digit_slice.hh"
#include "rb/rbalu.hh"
#include "sim/cosim.hh"
#include "sim/fastfwd.hh"
#include "sim/simulator.hh"
#include "trace/tracer.hh"

namespace rbsim::fuzz
{

namespace
{

/** Cycle budget per simulated machine; generated programs retire within
 * a small fraction of this, so hitting it means a real stall. */
constexpr Cycle fuzzMaxCycles = 5'000'000;

/** Sandbox words compared across machines. */
constexpr unsigned checksumWords = 64;

std::string
hex(Word w)
{
    std::ostringstream os;
    os << "0x" << std::hex << w;
    return os.str();
}

/** Operand patterns for the value-level oracles: uniform draws alone
 * rarely land on overflow boundaries, small counts, or 32-bit edges. */
Word
patternedWord(Rng &rng)
{
    switch (rng.below(6)) {
      case 0:
        return rng.next();
      case 1: // large magnitude (overflow-prone)
        return rng.next() | 0xc000000000000000ull;
      case 2: // small signed
        return static_cast<Word>(rng.range(-512, 511));
      case 3: // around a single power of two
        return (Word{1} << rng.below(64)) +
               static_cast<Word>(rng.range(-1, 1));
      case 4: // int64 extremes
        return (rng.chance(1, 2) ? 0x7fffffffffffffffull
                                 : 0x8000000000000000ull) +
               static_cast<Word>(rng.range(-2, 2));
      default: // 32-bit boundary neighborhood
        return static_cast<Word>(static_cast<SWord>(
            static_cast<std::int32_t>(rng.next())));
    }
}

/** Canonical or randomized redundant encoding of a value. */
RbNum
encodingOf(Word w, Rng &rng)
{
    if (rng.chance(1, 2))
        return RbNum::fromTc(w);
    return redundantEncodingOf(w, rng,
                               static_cast<unsigned>(rng.below(96)));
}

/** Machine label as a filename fragment. */
std::string
fileTag(const std::string &label)
{
    std::string out = label;
    for (char &c : out) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
            c != '_' && c != '.') {
            c = '-';
        }
    }
    return out;
}

/**
 * Arms one simulated machine run with the trace sinks a TraceSpec asks
 * for, and renders the failure artifacts. Inert (all no-ops) when the
 * spec is disabled, so untraced fuzzing pays nothing.
 */
class TraceRun
{
  public:
    TraceRun(const TraceSpec &spec_, const MachineConfig &cfg,
             const Program &prog)
        : spec(spec_)
    {
        if (!spec.enabled())
            return;
        trace::Tracer::Options topts;
        if (!spec.streamPath.empty()) {
            streamFile = spec.streamPath + "." + fileTag(cfg.label);
            out.open(streamFile);
            if (out)
                topts.stream = &out;
        }
        topts.ringCap = spec.ringLast;
        topts.codeBase = prog.codeBase;
        topts.decodeDepth = cfg.fetchDecodeDepth;
        topts.renameDepth = cfg.renameDepth;
        tracer = std::make_unique<trace::Tracer>(topts);
    }

    trace::Tracer *get() const { return tracer.get(); }

    /** Flush after a direct OooCore run (simulate() settles its own). */
    void
    settle(OooCore &core, const char *why)
    {
        if (!tracer)
            return;
        core.traceInFlight(why);
        tracer->finish();
    }

    /** Dump the ring buffer and name every artifact written; the return
     * value is appended to the oracle's failure detail. */
    std::string
    noteFailure()
    {
        std::string note;
        if (!tracer)
            return note;
        if (spec.ringLast && !spec.ringPath.empty()) {
            std::ofstream ring(spec.ringPath);
            ring << tracer->renderRing();
            note += " [pipeline ring: " + spec.ringPath + "]";
        }
        if (!streamFile.empty())
            note += " [pipeline trace: " + streamFile + "]";
        return note;
    }

  private:
    TraceSpec spec;
    std::string streamFile;
    std::ofstream out;
    std::unique_ptr<trace::Tracer> tracer;
};

// ------------------------------------------------------------- cosim

class CosimOracle : public Oracle
{
  public:
    using Oracle::Oracle;

    std::string name() const override { return "cosim"; }
    bool programLevel() const override { return true; }

    std::vector<MachineConfig>
    pickConfigs(Rng &rng) const override
    {
        return randomConfigSet(rng);
    }

    OracleResult
    runProgram(const Program &prog,
               const std::vector<MachineConfig> &configs) const override
    {
        if (maxInsts || resumeSkip)
            return runWindowed(prog, configs);
        std::vector<Word> golden;
        for (const MachineConfig &cfg : configs) {
            OooCore core(cfg, prog);
            TraceRun tr(traceSpec, cfg, prog);
            core.attachTracer(tr.get());
            CosimChecker checker(prog);
            core.onRetire([&checker](const RobEntry &e) {
                checker.onRetire(e);
            });
            try {
                if (!core.run(fuzzMaxCycles)) {
                    tr.settle(core, "run-aborted");
                    return {true, cfg.label + ": no clean halt (" +
                                (core.deadlocked()
                                     ? "retirement deadlock watchdog"
                                     : "cycle budget exhausted") + ")" +
                                tr.noteFailure()};
                }
            } catch (const CosimMismatch &e) {
                tr.settle(core, "cosim-mismatch");
                return {true,
                        cfg.label + ": " + e.what() + tr.noteFailure()};
            }
            tr.settle(core, "post-halt");
            if (checker.checked() != core.stats().retired) {
                return {true, cfg.label + ": checked " +
                            std::to_string(checker.checked()) + " of " +
                            std::to_string(core.stats().retired) +
                            " retired" + tr.noteFailure()};
            }

            std::vector<Word> mem(checksumWords);
            for (unsigned i = 0; i < checksumWords; ++i)
                mem[i] = core.committedMem().read64(
                    fuzzSandboxBase + Addr{i} * 8);
            if (golden.empty()) {
                golden = std::move(mem);
            } else {
                for (unsigned i = 0; i < checksumWords; ++i) {
                    if (mem[i] != golden[i]) {
                        return {true, cfg.label +
                                    ": final memory diverges from " +
                                    configs.front().label + " at word " +
                                    std::to_string(i) + ": " +
                                    hex(mem[i]) + " vs " +
                                    hex(golden[i]) + tr.noteFailure()};
                    }
                }
            }
        }
        return {};
    }

  private:
    /**
     * The --max-insts / --resume-skip replay mode: per machine,
     * fast-forward `resumeSkip` instructions functionally (checkpoint
     * capture + resume, the sampling engine's own discipline), then run
     * the detailed pipeline under full lockstep co-simulation for at
     * most `maxInsts` retired instructions. The cross-machine sandbox
     * compare of the full-run mode is skipped: an instruction budget
     * can cut different machines mid-cycle at slightly different points
     * past the budget (retire width differs), so their final images are
     * not comparable — the per-instruction cosim check is the oracle
     * here. Pipeline tracing is likewise a full-run-only feature.
     */
    OracleResult
    runWindowed(const Program &prog,
                const std::vector<MachineConfig> &configs) const
    {
        for (const MachineConfig &cfg : configs) {
            SimOptions opts;
            opts.maxCycles = fuzzMaxCycles;
            opts.cosim = true;
            opts.maxInsts = maxInsts;
            if (resumeSkip) {
                FastForward ff(cfg, prog);
                try {
                    ff.run(resumeSkip);
                } catch (const InterpError &e) {
                    return {true, cfg.label +
                                ": fast-forward fault: " + e.what()};
                }
                if (ff.halted())
                    continue; // window lies past the program's end
                auto ck = std::make_shared<ArchCheckpoint>();
                ff.capture(*ck);
                opts.startFrom = std::move(ck);
            }
            try {
                const SimResult r = simulate(cfg, prog, opts);
                if (!r.halted && !r.instLimited) {
                    return {true, cfg.label +
                                ": no clean halt in replay window "
                                "(cycle budget exhausted or watchdog "
                                "abort)"};
                }
            } catch (const CosimMismatch &e) {
                return {true, cfg.label + ": " + e.what()};
            }
        }
        return {};
    }
};

/** Plant::CosimOpcodePair stand-in: "fails" exactly when the program
 * contains both a MULQ and an STQ. Deterministic and simulation-free —
 * the shrinker tests reduce against it. */
class PlantedOpcodePairOracle : public Oracle
{
  public:
    using Oracle::Oracle;

    std::string name() const override { return "cosim"; }
    bool programLevel() const override { return true; }

    std::vector<MachineConfig>
    pickConfigs(Rng &rng) const override
    {
        return {randomConfig(rng)};
    }

    OracleResult
    runProgram(const Program &prog,
               const std::vector<MachineConfig> &) const override
    {
        bool mul = false, stq = false;
        for (const Inst &inst : prog.code) {
            mul = mul || inst.op == Opcode::MULQ;
            stq = stq || inst.op == Opcode::STQ;
        }
        if (mul && stq)
            return {true, "planted: program contains MULQ and STQ"};
        return {};
    }
};

// ------------------------------------------------------------- sched

class SchedOracle : public Oracle
{
  public:
    using Oracle::Oracle;

    std::string name() const override { return "sched"; }
    bool programLevel() const override { return true; }

    std::vector<MachineConfig>
    pickConfigs(Rng &rng) const override
    {
        if (plant == Plant::SchedBypassWiden) {
            // Detection needs a non-full mask for the widening to change.
            return {MachineConfig::makeIdealLimited(
                rng.chance(1, 2) ? 4 : 8,
                static_cast<std::uint8_t>(1 + rng.below(6)))};
        }
        return {randomConfig(rng)};
    }

    OracleResult
    runProgram(const Program &prog,
               const std::vector<MachineConfig> &configs) const override
    {
        if (configs.empty())
            return {true, "sched oracle needs one config"};
        MachineConfig wake = configs.front();
        wake.polledScheduler = false;
        if (plant == Plant::SchedBypassWiden)
            wake.bypassLevelMask = 0b111; // the silently widened network
        MachineConfig poll = configs.front();
        poll.polledScheduler = true;

        // Trace the wakeup-side run: that is the side under test, and
        // its ring is what a divergence needs to explain.
        TraceRun tr(traceSpec, wake, prog);
        SimOptions opts;
        opts.maxCycles = fuzzMaxCycles;
        opts.tracer = tr.get();
        SimOptions popts = opts;
        popts.tracer = nullptr;
        try {
            const SimResult w = simulate(wake, prog, opts);
            const SimResult p = simulate(poll, prog, popts);
            if (w.halted != p.halted) {
                return {true, configs.front().label +
                            ": halt disagreement (wakeup=" +
                            std::to_string(w.halted) + " polled=" +
                            std::to_string(p.halted) + ")" +
                            tr.noteFailure()};
            }
            const std::string diff = snapshotDiff(w.stats, p.stats);
            if (!diff.empty()) {
                return {true, configs.front().label +
                            ": snapshot divergence — " + diff +
                            tr.noteFailure()};
            }
        } catch (const CosimMismatch &e) {
            return {true, configs.front().label + ": " + e.what() +
                        tr.noteFailure()};
        }
        return {};
    }
};

// ------------------------------------------------------------- rbalu

class RbAluOracle : public Oracle
{
  public:
    using Oracle::Oracle;

    std::string name() const override { return "rbalu"; }
    bool programLevel() const override { return false; }

    OracleResult
    runSeed(std::uint64_t seed, std::uint64_t iters) const override
    {
        Rng rng(seed);
        for (std::uint64_t i = 0; i < iters; ++i) {
            const Word a = patternedWord(rng);
            const Word b = patternedWord(rng);
            const RbNum x = encodingOf(a, rng);
            const RbNum y = encodingOf(b, rng);

            auto fail = [&](const std::string &what) -> OracleResult {
                return {true, "seed " + std::to_string(seed) + " iter " +
                            std::to_string(i) + ": " + what + " for a=" +
                            hex(a) + " b=" + hex(b)};
            };
            auto checkResult = [&](const char *opname,
                                   const RbAddResult &r,
                                   Word expect, __int128 wide)
                -> OracleResult {
                if (r.sum.toTc() != expect) {
                    return fail(std::string(opname) + " value " +
                                hex(r.sum.toTc()) + " != " + hex(expect));
                }
                const bool ovf =
                    wide < -(static_cast<__int128>(1) << 63) ||
                    wide >= (static_cast<__int128>(1) << 63);
                if (r.tcOverflow != ovf) {
                    return fail(std::string(opname) + " overflow flag " +
                                std::to_string(r.tcOverflow));
                }
                if (r.sum.signNegative() !=
                    (static_cast<SWord>(expect) < 0)) {
                    return fail(std::string(opname) + " sign scan");
                }
                if (r.sum.isZero() != (expect == 0))
                    return fail(std::string(opname) + " zero test");
                if (r.sum.lsbSet() != ((expect & 1) != 0))
                    return fail(std::string(opname) + " LSB test");
                const unsigned tz = expect == 0
                    ? 64u
                    : static_cast<unsigned>(std::countr_zero(expect));
                if (rbCttz(r.sum) != tz)
                    return fail(std::string(opname) + " trailing zeros");
                return {};
            };

            const __int128 sa = static_cast<SWord>(a);
            const __int128 sb = static_cast<SWord>(b);
            OracleResult r =
                checkResult("add", rbAdd(x, y), a + b, sa + sb);
            if (r.failed)
                return r;
            r = checkResult("sub", rbSub(x, y), a - b, sa - sb);
            if (r.failed)
                return r;
            // The digit shift re-signs the MSD (section 3.5), so the
            // scaled add computes wrapped(a << s) + b and its overflow
            // flag is relative to the wrapped shifted addend.
            const unsigned scale = rng.chance(1, 2) ? 2 : 3;
            const __int128 sshift =
                static_cast<SWord>(a << scale);
            r = checkResult("scaledadd", rbScaledAdd(x, scale, y),
                            (a << scale) + b, sshift + sb);
            if (r.failed)
                return r;

            const unsigned k = static_cast<unsigned>(rng.below(64));
            const RbNum sh = rbShiftLeftDigits(x, k);
            if (sh.toTc() != a << k)
                return fail("digit shift by " + std::to_string(k));
            if (sh.signNegative() !=
                (static_cast<SWord>(a << k) < 0)) {
                return fail("digit-shift sign scan by " +
                            std::to_string(k));
            }
        }
        return {};
    }
};

// ------------------------------------------------------------- slice

class SliceOracle : public Oracle
{
  public:
    using Oracle::Oracle;

    std::string name() const override { return "slice"; }
    bool programLevel() const override { return false; }

    OracleResult
    runSeed(std::uint64_t seed, std::uint64_t iters) const override
    {
        Rng rng(seed);
        for (std::uint64_t i = 0; i < iters; ++i) {
            // A random-length batch (including the n=0 and n=64 edges)
            // of arbitrary legal digit planes — the whole encoding
            // space, not just reachable ALU outputs. Each lane is
            // checked three ways: scalar gate chain vs bit-parallel
            // arithmetic, and the bit-sliced batch vs both.
            const std::size_t n = static_cast<std::size_t>(rng.below(65));
            std::uint64_t xp[64], xm[64], yp[64], ym[64];
            std::uint64_t sp[64], sm[64];
            std::int8_t co[64];
            for (std::size_t j = 0; j < n; ++j) {
                xp[j] = rng.next();
                xm[j] = rng.next() & ~xp[j];
                yp[j] = rng.next();
                ym[j] = rng.next() & ~yp[j];
            }
            addBySlicesBatch(xp, xm, yp, ym, sp, sm, co, n);

            for (std::size_t j = 0; j < n; ++j) {
                const RbNum x(xp[j], xm[j]);
                const RbNum y(yp[j], ym[j]);
                auto fail = [&](const char *what) -> OracleResult {
                    return {true, "seed " + std::to_string(seed) +
                                " iter " + std::to_string(i) + " lane " +
                                std::to_string(j) + ": " + what +
                                " for x=(" + hex(x.plus()) + "," +
                                hex(x.minus()) + ") y=(" + hex(y.plus()) +
                                "," + hex(y.minus()) + ")"};
                };

                const RbRawSum gate = addBySlices(x, y);
                const RbRawSum arith = rbAddRaw(x, y);
                if (!(gate.digits == arith.digits) ||
                    gate.carryOut != arith.carryOut)
                    return fail("digit-slice adder diverges");
                if ((sp[j] & sm[j]) != 0)
                    return fail("batched slice illegal digit planes");
                if (sp[j] != gate.digits.plus() ||
                    sm[j] != gate.digits.minus() ||
                    co[j] != gate.carryOut)
                    return fail("batched slice diverges from gate chain");
            }
        }
        return {};
    }
};

// --------------------------------------------------------- roundtrip

class RoundTripOracle : public Oracle
{
  public:
    using Oracle::Oracle;

    std::string name() const override { return "roundtrip"; }
    bool programLevel() const override { return false; }

    OracleResult
    runSeed(std::uint64_t seed, std::uint64_t iters) const override
    {
        Rng rng(seed);
        for (std::uint64_t i = 0; i < iters; ++i) {
            const Word w = patternedWord(rng);
            auto fail = [&](const std::string &what) -> OracleResult {
                return {true, "seed " + std::to_string(seed) + " iter " +
                            std::to_string(i) + ": " + what + " for w=" +
                            hex(w)};
            };
            for (unsigned e = 0; e < 4; ++e) {
                const RbNum enc = redundantEncodingOf(
                    w, rng, static_cast<unsigned>(rng.below(128)));
                if ((enc.plus() & enc.minus()) != 0)
                    return fail("illegal digit encoding");
                if (enc.toTc() != w)
                    return fail("TC->RB->TC fast conversion");
                if (rbToTcRipple(enc) != w)
                    return fail("TC->RB->TC ripple subtractor");
                if (enc.isZero() != (w == 0))
                    return fail("zero test on redundant encoding");
                if (enc.signNegative() != (static_cast<SWord>(w) < 0))
                    return fail("sign scan on redundant encoding");
                if (enc.lsbSet() != ((w & 1) != 0))
                    return fail("LSB test on redundant encoding");
                const unsigned tz = w == 0
                    ? 64u
                    : static_cast<unsigned>(std::countr_zero(w));
                if (enc.trailingZeroDigits() != tz)
                    return fail("trailing-zero count");
            }
            // Longword conversion keeps the 32-bit sign (section 3.6).
            const std::uint32_t lo =
                static_cast<std::uint32_t>(w);
            const Word sext = static_cast<Word>(static_cast<SWord>(
                static_cast<std::int32_t>(lo)));
            if (RbNum::fromTcLong(lo).toTc() != sext)
                return fail("longword conversion");
        }
        return {};
    }
};

} // namespace

// ------------------------------------------------------------ shared

Plant
parsePlant(const std::string &name)
{
    if (name.empty() || name == "none")
        return Plant::None;
    if (name == "sched-bypass-widen")
        return Plant::SchedBypassWiden;
    if (name == "cosim-opcode-pair")
        return Plant::CosimOpcodePair;
    throw std::invalid_argument("unknown plant '" + name + "'");
}

std::vector<MachineConfig>
Oracle::pickConfigs(Rng &) const
{
    return {};
}

OracleResult
Oracle::runProgram(const Program &, const std::vector<MachineConfig> &)
    const
{
    return {true, name() + " is not a program-level oracle"};
}

OracleResult
Oracle::runSeed(std::uint64_t, std::uint64_t) const
{
    return {true, name() + " is not a value-level oracle"};
}

std::vector<std::string>
oracleNames()
{
    return {"cosim", "sched", "rbalu", "slice", "roundtrip"};
}

std::vector<std::unique_ptr<Oracle>>
makeOracles(const std::vector<std::string> &names, Plant plant,
            const TraceSpec &spec)
{
    std::vector<std::string> want = names;
    if (want.empty())
        want = oracleNames();

    std::vector<std::unique_ptr<Oracle>> out;
    for (const std::string &n : want) {
        if (n == "cosim") {
            if (plant == Plant::CosimOpcodePair)
                out.push_back(
                    std::make_unique<PlantedOpcodePairOracle>(plant));
            else
                out.push_back(std::make_unique<CosimOracle>(plant));
        } else if (n == "sched") {
            out.push_back(std::make_unique<SchedOracle>(plant));
        } else if (n == "rbalu") {
            out.push_back(std::make_unique<RbAluOracle>(plant));
        } else if (n == "slice") {
            out.push_back(std::make_unique<SliceOracle>(plant));
        } else if (n == "roundtrip") {
            out.push_back(std::make_unique<RoundTripOracle>(plant));
        } else {
            throw std::invalid_argument("unknown oracle '" + n + "'");
        }
    }
    for (auto &o : out)
        o->setTrace(spec);
    return out;
}

std::string
snapshotDiff(const StatSnapshot &a, const StatSnapshot &b)
{
    for (const auto &[name, va] : a.counters) {
        const auto it = b.counters.find(name);
        if (it == b.counters.end())
            return "counter " + name + " missing on one side";
        if (it->second != va) {
            return "counter " + name + ": a=" + std::to_string(va) +
                   " b=" + std::to_string(it->second);
        }
    }
    if (b.counters.size() != a.counters.size())
        return "counter sets differ in size";
    for (const auto &[name, va] : a.vectors) {
        const auto it = b.vectors.find(name);
        if (it == b.vectors.end() || it->second != va)
            return "vector " + name + " differs";
    }
    if (b.vectors.size() != a.vectors.size())
        return "vector sets differ in size";
    for (const auto &[name, va] : a.formulas) {
        const auto it = b.formulas.find(name);
        if (it == b.formulas.end() || it->second != va)
            return "formula " + name + " differs";
    }
    if (b.formulas.size() != a.formulas.size())
        return "formula sets differ in size";
    return "";
}

} // namespace rbsim::fuzz
