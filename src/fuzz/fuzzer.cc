#include "fuzz/fuzzer.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>

#include "common/json.hh"
#include "common/work_queue.hh"
#include "fuzz/shrink.hh"
#include "isa/disasm.hh"

namespace rbsim::fuzz
{

namespace
{

/** A failure as caught by a worker, before shrinking. */
struct RawFailure
{
    std::size_t oracleIdx = 0;
    std::uint64_t seed = 0;
    std::string detail;
    ProgRecipe recipe;                  // program-level only
    std::vector<MachineConfig> configs; // program-level only
    bool programLevel = false;
};

std::string
hexSeed(std::uint64_t seed)
{
    std::ostringstream os;
    os << std::hex << seed;
    return os.str();
}

} // namespace

FuzzSummary
runFuzz(const FuzzOptions &opts)
{
    const auto oracles = makeOracles(opts.oracles, opts.plant);
    if (opts.maxInsts || opts.resumeSkip) {
        for (const auto &oracle : oracles)
            oracle->setRunLimits(opts.maxInsts, opts.resumeSkip);
    }

    std::uint64_t iterations = opts.iterations;
    if (opts.seconds <= 0.0 && iterations == 0)
        iterations = 100;

    const auto start = std::chrono::steady_clock::now();
    auto elapsed = [&start]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    std::atomic<std::uint64_t> nextCase{0};
    std::mutex mtx;
    std::vector<RawFailure> raw;
    std::vector<std::uint64_t> caseCount(oracles.size(), 0);
    std::vector<std::uint64_t> failCount(oracles.size(), 0);

    auto worker = [&]() {
        for (;;) {
            const std::uint64_t idx =
                nextCase.fetch_add(1, std::memory_order_relaxed);
            if (iterations != 0 && idx >= iterations)
                return;
            if (opts.seconds > 0.0 && elapsed() >= opts.seconds)
                return;

            const std::size_t which = idx % oracles.size();
            const Oracle &oracle = *oracles[which];
            const std::uint64_t case_seed =
                Rng::mixSeed(opts.seed, idx);

            OracleResult result;
            ProgRecipe recipe;
            std::vector<MachineConfig> configs;
            if (oracle.programLevel()) {
                Rng rng(case_seed);
                configs = oracle.pickConfigs(rng);
                recipe = generateRecipe(rng, opts.gen);
                recipe.name = "fuzz-" + hexSeed(case_seed);
                result = oracle.runProgram(lowerRecipe(recipe), configs);
            } else {
                result = oracle.runSeed(case_seed, opts.valueIters);
            }

            std::lock_guard<std::mutex> lock(mtx);
            ++caseCount[which];
            if (result.failed) {
                ++failCount[which];
                if (failCount[which] <= opts.maxFailures) {
                    RawFailure f;
                    f.oracleIdx = which;
                    f.seed = case_seed;
                    f.detail = result.detail;
                    f.programLevel = oracle.programLevel();
                    if (f.programLevel) {
                        f.recipe = std::move(recipe);
                        f.configs = std::move(configs);
                    }
                    raw.push_back(std::move(f));
                }
            }
        }
    };

    // Thread management lives in the shared WorkQueue (one self-
    // scheduling case loop per worker); --jobs only picks the count.
    {
        WorkQueue pool(std::max(1u, opts.jobs));
        for (unsigned i = 0; i < pool.workers(); ++i)
            pool.submit([&](unsigned) { worker(); });
        pool.wait();
    }

    // Deterministic failure order regardless of thread interleaving.
    std::sort(raw.begin(), raw.end(),
              [](const RawFailure &a, const RawFailure &b) {
                  return a.seed < b.seed;
              });

    // Shrink and serialize single-threaded.
    FuzzSummary summary;
    for (RawFailure &f : raw) {
        const Oracle &oracle = *oracles[f.oracleIdx];
        FuzzFailure out;
        out.oracle = oracle.name();
        out.seed = f.seed;
        out.detail = f.detail;
        out.repro.oracle = oracle.name();
        out.repro.seed = f.seed;
        out.repro.note = f.detail;
        // Record non-default bias knobs so the preset that drew the
        // case round-trips through the file.
        if (!(opts.gen == GenOptions()))
            out.repro.genJson = genOptionsToJson(opts.gen).dump();
        // Window limits are part of the failure's identity: the case
        // (and its shrink) was evaluated under them, so the repro must
        // replay under them too.
        out.repro.maxInsts = opts.maxInsts;
        out.repro.resumeSkip = opts.resumeSkip;

        if (f.programLevel) {
            ProgRecipe minimal = f.recipe;
            if (opts.shrink) {
                const ShrinkOutcome s = shrinkRecipe(
                    oracle, f.configs, f.recipe, opts.maxShrinkEvals);
                out.shrinkEvals = s.evals;
                if (s.reproduced) {
                    minimal = s.recipe;
                    out.detail = s.detail;
                    out.repro.note = s.detail;
                }
            }
            const Program prog = lowerRecipe(minimal);
            out.programInsts = static_cast<unsigned>(prog.code.size());
            out.repro.configs = f.configs;
            out.repro.asmText = disassembleProgram(prog);
        } else {
            out.repro.valueIters = opts.valueIters;
        }

        if (!opts.corpusDir.empty()) {
            out.path = writeRepro(opts.corpusDir,
                                  out.oracle + "-" + hexSeed(f.seed),
                                  out.repro);
            if (f.programLevel && opts.traceLast) {
                // Re-run the shrunk repro with the ring armed so every
                // written .repro ships with a pipeline visualization of
                // its failure (<repro>.trace, O3PipeView format).
                TraceSpec spec;
                spec.ringLast = opts.traceLast;
                spec.ringPath = out.path + ".trace";
                replayRepro(out.repro, opts.plant, spec);
            }
        }
        summary.failures.push_back(std::move(out));
    }

    for (std::size_t i = 0; i < oracles.size(); ++i) {
        summary.oracles.push_back(
            {oracles[i]->name(), caseCount[i], failCount[i]});
        summary.cases += caseCount[i];
    }
    summary.seconds = elapsed();
    return summary;
}

std::string
FuzzSummary::format() const
{
    std::ostringstream os;
    for (const OracleTally &t : oracles) {
        os << "  " << t.name << ": " << t.cases << " cases, "
           << t.failures << " failures\n";
    }
    os << "total: " << cases << " cases in " << seconds << " s\n";
    for (const FuzzFailure &f : failures) {
        os << "FAIL [" << f.oracle << "] seed=0x" << std::hex << f.seed
           << std::dec;
        if (f.programInsts)
            os << " (" << f.programInsts << " insts after "
               << f.shrinkEvals << " shrink evals)";
        os << "\n  " << f.detail << "\n";
        if (!f.path.empty())
            os << "  repro: " << f.path << "\n";
    }
    return os.str();
}

std::string
FuzzSummary::toJson() const
{
    Json doc = Json::object();
    Json per = Json::array();
    for (const OracleTally &t : oracles) {
        Json o = Json::object();
        o["oracle"] = Json(t.name);
        o["cases"] = Json(t.cases);
        o["failures"] = Json(t.failures);
        per.push(std::move(o));
    }
    doc["oracles"] = std::move(per);
    doc["cases"] = Json(cases);
    doc["seconds"] = Json(seconds);
    Json fails = Json::array();
    for (const FuzzFailure &f : failures) {
        Json o = Json::object();
        o["oracle"] = Json(f.oracle);
        o["seed"] = Json(f.seed);
        o["detail"] = Json(f.detail);
        if (f.programInsts) {
            o["programInsts"] = Json(f.programInsts);
            o["shrinkEvals"] = Json(f.shrinkEvals);
        }
        if (!f.path.empty())
            o["repro"] = Json(f.path);
        fails.push(std::move(o));
    }
    doc["failures"] = std::move(fails);
    doc["ok"] = Json(ok());
    return doc.dump(2);
}

} // namespace rbsim::fuzz
