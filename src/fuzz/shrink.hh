/**
 * @file
 * Delta-debugging shrinker for failing program-level fuzz cases.
 *
 * The shrinker never touches instructions directly: it mutates the
 * `ProgRecipe` (drop body ops in ddmin-style chunks, strip the jump
 * table / call / fold stores, collapse the loop trip count, zero
 * constants), re-lowers, and re-checks against the oracle that failed.
 * Anything that still fails is kept. Lowering clamps structural
 * positions, so every mutation yields a well-formed program.
 */

#ifndef RBSIM_FUZZ_SHRINK_HH
#define RBSIM_FUZZ_SHRINK_HH

#include "fuzz/generator.hh"
#include "fuzz/oracle.hh"

namespace rbsim::fuzz
{

/** Result of one shrink run. */
struct ShrinkOutcome
{
    ProgRecipe recipe;  //!< the smallest still-failing recipe found
    std::string detail; //!< oracle failure detail at that recipe
    unsigned evals = 0; //!< oracle evaluations spent
    /** True when the input recipe reproduced the failure (shrinking only
     * happens then; otherwise `recipe` is the unmodified input). */
    bool reproduced = false;
};

/**
 * Shrink a failing recipe against `oracle` on fixed `configs`.
 * At most `maxEvals` oracle evaluations are spent; the best recipe found
 * so far is returned when the budget runs out.
 */
ShrinkOutcome shrinkRecipe(const Oracle &oracle,
                           const std::vector<MachineConfig> &configs,
                           const ProgRecipe &seed,
                           unsigned maxEvals = 400);

} // namespace rbsim::fuzz

#endif // RBSIM_FUZZ_SHRINK_HH
