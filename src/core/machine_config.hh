/**
 * @file
 * Machine configurations: the four machines of paper section 5.1 (Table 2
 * structure, Table 3 latencies) plus the limited-bypass variants of the
 * Ideal machine used for Figure 14.
 *
 * Latency convention: all latencies are in select-to-select cycles — a
 * producer selected at cycle s with early latency L can feed a dependent
 * selected at cycle s + L through the first bypass level. `early` is the
 * first availability in redundant binary (or the only availability for
 * single-format machines); `late` is the first availability in two's
 * complement (early + 2 when the result passes the format converter).
 *
 * Table 3 ambiguities resolved here (see DESIGN.md):
 *  - integer multiply is printed without a parenthesized TC latency, so
 *    the multiplier is modeled as folding the conversion into its final
 *    carry-propagate add (early == late == 10);
 *  - byte manipulation keeps the printed 1 (3) pair on the RB machines;
 *  - CTLZ/CTTZ/CTPOP are not in Table 3 and use the byte-manipulation row;
 *  - conditional moves use the integer-arithmetic row (Table 1 groups
 *    CMOV with ADD/SUB);
 *  - branch resolution uses the integer-compare early latency.
 */

#ifndef RBSIM_CORE_MACHINE_CONFIG_HH
#define RBSIM_CORE_MACHINE_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/opclass.hh"

namespace rbsim
{

/** The four machine models compared in section 5. */
enum class MachineKind : unsigned char
{
    Baseline,  //!< 2-cycle pipelined two's complement ALUs
    RbLimited, //!< RB adders, TC register file, limited bypass (§4.2)
    RbFull,    //!< RB adders, TC + RB register files (§4.1)
    Ideal,     //!< 1-cycle two's complement ALUs
};

/** Printable machine name as used in the paper's figures. */
const char *machineName(MachineKind kind);

/** Dispatch steering policy. */
enum class Steering : unsigned char
{
    RoundRobinPairs, //!< the paper's policy: consecutive pairs, strict RR
    DependenceAware, //!< future-work policy (section 4.2): steer toward
                     //!< the producer's scheduler to keep dependence
                     //!< chains inside one cluster / near their bypass
    ClassPartition,  //!< section 4.3's "separate schedulers" technique:
                     //!< RB-output classes use the lower half of the
                     //!< schedulers, TC-only classes the upper half
};

/** Early/late result availability latencies (select-to-select cycles). */
struct LatencyPair
{
    unsigned early = 1; //!< RB-format availability (first bypass level)
    unsigned late = 1;  //!< TC-format availability (early + conversion)
};

/** Cache geometry and timing. */
struct CacheParams
{
    std::uint32_t sizeBytes = 0;
    std::uint32_t assoc = 1;
    std::uint32_t lineBytes = 64;
    unsigned latency = 1;      //!< access latency in cycles (pipelined)
    unsigned banks = 1;        //!< number of banks for contention
    unsigned bankBusy = 1;     //!< cycles a bank stays busy per access
};

/** Full machine configuration. */
struct MachineConfig
{
    MachineKind kind = MachineKind::Ideal;
    std::string label = "Ideal";

    // Execution resources (paper Table 2).
    unsigned width = 8;          //!< number of functional units (4 or 8)
    unsigned numSchedulers = 4;  //!< select-2 schedulers
    unsigned schedEntries = 32;  //!< entries per scheduler (window = 128)
    unsigned selectWidth = 2;    //!< instructions each scheduler picks
    unsigned numClusters = 2;    //!< 8-wide machines are 2-clustered
    unsigned crossClusterDelay = 1;

    // Front end and window.
    unsigned fetchWidth = 8;
    unsigned fetchBlocks = 2;    //!< basic blocks fetched per cycle
    unsigned renameWidth = 8;
    unsigned retireWidth = 8;
    unsigned robEntries = 128;
    unsigned lsqEntries = 64;
    unsigned physRegs = 320;
    unsigned fetchDecodeDepth = 6;
    unsigned renameDepth = 2;
    unsigned rfReadDepth = 2;    //!< 2-cycle register file

    // Bypass network.
    unsigned numBypassLevels = 3;     //!< full network: 3 levels + RF
    std::uint8_t bypassLevelMask = 0b111; //!< bit k-1: level k present
    bool rbLimitedBypass = false;     //!< the section 4.2 limited network
    bool hasRbRegfile = false;        //!< RB-full keeps RB register files
    bool holeAwareScheduling = true;  //!< section 4.3 wakeup; ablation knob
    Steering steering = Steering::RoundRobinPairs;

    // Host-simulation knobs (no effect on simulated behavior; the
    // polled scheduler and the wakeup array produce bit-identical
    // statistics — CI enforces it via scripts/bench_diff.py).
    bool polledScheduler = false; //!< debug: per-cycle readiness polling
                                  //!< instead of the bitset wakeup array
    bool wakeupOracle = false;    //!< cross-check wakeup bits against the
                                  //!< polled readiness oracle every cycle
    bool idleSkip = true;         //!< fast-forward provably idle cycles
                                  //!< (stats stay cycle-exact)
    Cycle deadlockCycles = 100000; //!< abort a run after this many cycles
                                   //!< without retirement progress

    // Memory system (paper Table 2).
    CacheParams il1{64 * 1024, 4, 64, 2, 1, 1};
    CacheParams dl1{8 * 1024, 2, 64, 2, 1, 1};
    CacheParams l2{1024 * 1024, 8, 64, 8, 2, 2};
    unsigned memLatency = 100;
    unsigned memBanks = 32;
    unsigned memBankBusy = 16;

    // Latencies per op class (Table 3).
    std::array<LatencyPair, numOpClasses> latency{};
    unsigned storeCompleteLat = 1; //!< 3 on RB machines (data conversion)

    /** Latency pair for an op class. */
    LatencyPair
    latencyOf(OpClass cls) const
    {
        return latency[static_cast<unsigned>(cls)];
    }

    /** Branch resolution latency (select to resolved). */
    unsigned
    branchResolveLat() const
    {
        return latencyOf(OpClass::IntCompare).early;
    }

    /** True when results of this class pass the format converter. */
    bool
    isDualFormat(OpClass cls) const
    {
        const LatencyPair p = latencyOf(cls);
        return p.late > p.early;
    }

    /**
     * Build one of the paper's machines.
     * @param kind which machine
     * @param width execution width (4 or 8 functional units)
     */
    static MachineConfig make(MachineKind kind, unsigned width);

    /**
     * An Ideal machine with a limited bypass network for Figure 14.
     * @param width 4 or 8
     * @param level_mask bit k-1 set iff bypass level k is present
     */
    static MachineConfig makeIdealLimited(unsigned width,
                                          std::uint8_t level_mask);
};

} // namespace rbsim

#endif // RBSIM_CORE_MACHINE_CONFIG_HH
