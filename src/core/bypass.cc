#include "core/bypass.hh"

#include <cassert>

namespace rbsim
{

namespace
{

/** Hole-aware availability: exact per-cycle truth. */
bool
rawAvail(const MachineConfig &cfg, const ProdAvail &p, bool needs_tc,
         unsigned consumer_cluster, Cycle t)
{
    // Not yet produced (scoreboard markPending): nothing to bypass, and
    // `never + cross` must not be allowed to wrap.
    if (p.early == neverCycle)
        return false;

    // The TC register file serves everyone from rfTc on.
    if (t >= p.rfTc)
        return true;

    const Cycle cross =
        (cfg.numClusters > 1 && p.cluster != consumer_cluster)
            ? cfg.crossClusterDelay : 0;

    switch (cfg.kind) {
      case MachineKind::Baseline:
      case MachineKind::Ideal:
        // Single format: level k catches at early + k - 1 when present.
        for (unsigned k = 1; k <= cfg.numBypassLevels; ++k) {
            if (!(cfg.bypassLevelMask & (1u << (k - 1))))
                continue;
            if (t == p.early + cross + (k - 1))
                return true;
        }
        return false;

      case MachineKind::RbFull:
        // Level 1 (and the RB register file immediately behind it) serve
        // RB-input consumers from `early`; the converter output and the
        // TC register file serve TC consumers from `late`. Availability
        // is continuous (paper: "the timing of operations is the same as
        // when using all TC register files").
        if (!needs_tc)
            return t >= p.early + cross;
        return t >= p.late + cross;

      case MachineKind::RbLimited:
        // BYP-2 removed; BYP-3 is not wired into RB-input functional
        // units (paper section 4.2). Dual-format producers expose BYP-1
        // (RB) and BYP-3 (TC); TC producers expose TC data on both.
        if (p.dual) {
            if (!needs_tc)
                return t == p.early + cross; // BYP-1 only, then the hole
            return t == p.late + cross;      // BYP-3, then the RF
        }
        if (!needs_tc)
            return t == p.early + cross;     // level 1; level 3 unwired
        return t == p.early + cross || t == p.early + 2 + cross;
    }
    return false;
}

/**
 * First cycle c such that the operand is available at every cycle in
 * [c, rfTc] — what a plain from-now-on wakeup (no interleaved pattern)
 * must wait for.
 */
Cycle
continuousFrom(const MachineConfig &cfg, const ProdAvail &p, bool needs_tc,
               unsigned consumer_cluster)
{
    Cycle c = p.rfTc;
    while (c > 0 && rawAvail(cfg, p, needs_tc, consumer_cluster, c - 1))
        --c;
    return c;
}

} // namespace

bool
operandAvail(const MachineConfig &cfg, const ProdAvail &p, bool needs_tc,
             unsigned consumer_cluster, Cycle t)
{
    if (!cfg.holeAwareScheduling) {
        return t >= continuousFrom(cfg, p, needs_tc, consumer_cluster);
    }
    return rawAvail(cfg, p, needs_tc, consumer_cluster, t);
}

Cycle
firstAvail(const MachineConfig &cfg, const ProdAvail &p, bool needs_tc,
           unsigned consumer_cluster, Cycle from)
{
    Cycle t = from;
    while (t < p.rfTc &&
           !operandAvail(cfg, p, needs_tc, consumer_cluster, t))
        ++t;
    return t;
}

Cycle
stableAvailFrom(const MachineConfig &cfg, const ProdAvail &p,
                bool needs_tc, unsigned consumer_cluster)
{
    // With hole-aware scheduling off, operandAvail is already a single
    // step function at continuousFrom; with it on, the raw pattern is
    // continuous from the same cycle. Either way this is the exact
    // per-cycle truth's last edge.
    return continuousFrom(cfg, p, needs_tc, consumer_cluster);
}

std::uint64_t
availabilityPattern(const MachineConfig &cfg, const ProdAvail &p,
                    bool needs_tc, unsigned consumer_cluster, Cycle base,
                    unsigned window)
{
    assert(window <= 64);
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < window; ++i) {
        if (operandAvail(cfg, p, needs_tc, consumer_cluster, base + i))
            bits |= std::uint64_t{1} << i;
    }
    return bits;
}

bool
servedByBypass(const ProdAvail &p, Cycle t)
{
    return t < p.rfTc;
}

} // namespace rbsim
