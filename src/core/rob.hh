/**
 * @file
 * Reorder buffer: in-order window of every in-flight instruction, from
 * dispatch to retirement, with walk-based squash.
 *
 * Storage is a fixed power-of-two ring allocated once at construction
 * (no per-cycle heap traffic; see docs/PERFORMANCE.md). Sequence
 * numbers are dense across the in-flight window — dispatch allocates
 * them consecutively and squash recycles them — so the slot of `seq`
 * is simply seq & mask, and get() is one masked index.
 */

#ifndef RBSIM_CORE_ROB_HH
#define RBSIM_CORE_ROB_HH

#include <bit>
#include <cassert>
#include <vector>

#include "common/types.hh"
#include "frontend/branch_pred.hh"
#include "isa/inst.hh"
#include "rb/rbnum.hh"

namespace rbsim
{

/** One in-flight instruction. */
struct RobEntry
{
    std::uint64_t seq = 0;      //!< dispatch-order sequence number
    std::uint64_t pcIndex = 0;  //!< instruction index
    Inst inst;

    // Rename state.
    PhysReg dest = invalidPhysReg;
    PhysReg prevDest = invalidPhysReg;
    std::uint8_t archDest = zeroReg;
    struct Src
    {
        PhysReg reg = invalidPhysReg;
        bool needsTc = false;
    };
    std::array<Src, 3> src{};
    std::uint8_t numSrcs = 0;
    PhysReg physA = invalidPhysReg; //!< mapping of ra at rename
    PhysReg physB = invalidPhysReg; //!< mapping of rb at rename
    PhysReg physC = invalidPhysReg; //!< mapping of rc at rename (old dest)

    // Placement.
    std::uint8_t sched = 0;    //!< scheduler id
    std::uint8_t cluster = 0;  //!< cluster id
    Cycle dispatchCycle = 0;

    // Execution status.
    bool issued = false;
    bool complete = false;
    Cycle issueCycle = 0;
    Cycle completeCycle = 0;

    // Results (for retirement and co-simulation).
    Word resultTc = 0;
    bool wroteReg = false;

    // Control flow.
    bool isCtrl = false;
    bool predTaken = false;
    std::uint64_t predNextPc = 0;  //!< predicted next instruction index
    bool fetchStalledJmp = false;  //!< JMP with no predicted target
    bool actualTaken = false;
    std::uint64_t actualNextPc = 0;
    bool mispredicted = false;
    BpSnapshot snapshot;           //!< predictor repair state

    // Memory.
    bool isMemLoad = false;
    bool isMemStore = false;
    bool storeAddrRecorded = false; //!< early AGEN already hit the LSQ
    Addr effAddr = 0;
    unsigned memSize = 0;
    Word storeData = 0;

    bool isHalt = false;

    // Issue-time observations, tallied at retirement (wrong-path
    // instructions never reach the tallies).
    std::uint8_t bypassCaseIdx = 0xff; //!< Figure 13 case of the
                                       //!< last-arriving bypassed source
    bool anyBypassed = false;          //!< >= 1 source came off a bypass
    std::uint8_t bypassSlot = 0xff;    //!< cycles past first availability
    std::uint32_t holeWait = 0;        //!< wait cycles where every
                                       //!< missing operand sat in a hole
    bool usedRbPath = false;           //!< executed on the RB datapath
    bool bogusCorrected = false;       //!< section 3.5 correction fired
    bool loadForwarded = false;        //!< store-to-load forwarding hit

    // Pipeline tracing (src/trace). `fetchCycle` is always stamped at
    // dispatch; the rest are written only while a tracer is attached, so
    // the disabled-tracing hot path stays untouched.
    Cycle fetchCycle = 0;       //!< cycle this instruction left fetch
    std::uint64_t traceId = 0;  //!< tracer dynamic id (0 = not traced)
    //! Per-source bypass annotation (see trace::srcLevelMask): low
    //! nibble = bypass level that fed the operand (0 = register file),
    //! trace::srcRbForm set when it arrived in redundant binary.
    std::array<std::uint8_t, 3> srcBypass{0xff, 0xff, 0xff};
};

/** The reorder buffer. */
class Rob
{
  public:
    explicit Rob(unsigned max_entries)
        : slots(std::bit_ceil<std::size_t>(
              max_entries ? max_entries : 1)),
          mask(slots.size() - 1), capacity(max_entries)
    {}

    bool hasSpace() const { return count < capacity; }
    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }

    /** Empty the ring in place (slots keep their storage; dead entries
     * are overwritten on the next alloc, as after retirement). */
    void
    reset()
    {
        headSeq = 0;
        count = 0;
    }

    /** Allocate the next entry; returns a stable-until-retire reference. */
    RobEntry &
    alloc(std::uint64_t seq)
    {
        assert(hasSpace());
        assert(count == 0 || seq == headSeq + count);
        if (count == 0)
            headSeq = seq;
        ++count;
        RobEntry &e = slots[seq & mask];
        e = RobEntry{};
        e.seq = seq;
        return e;
    }

    /** Entry by sequence number (must be in flight). */
    RobEntry &
    get(std::uint64_t seq)
    {
        assert(contains(seq));
        return slots[seq & mask];
    }

    /** Entry at the head (oldest). */
    RobEntry &
    head()
    {
        assert(count != 0);
        return slots[headSeq & mask];
    }

    /** Is this sequence number still in flight? */
    bool
    contains(std::uint64_t seq) const
    {
        return count != 0 && seq >= headSeq && seq - headSeq < count;
    }

    /** Retire the head entry. */
    void
    retireHead()
    {
        assert(count != 0);
        ++headSeq;
        --count;
    }

    /**
     * Squash every entry younger than `seq`, youngest first, invoking
     * `undo` for each before it is removed. Templated so the core's
     * squash lambda inlines into the walk (no std::function on the
     * flush path).
     */
    template <class Undo>
    void
    squashAfter(std::uint64_t seq, Undo &&undo)
    {
        while (count != 0 && slots[(headSeq + count - 1) & mask].seq >
                                 seq) {
            undo(slots[(headSeq + count - 1) & mask]);
            --count;
        }
    }

  private:
    std::vector<RobEntry> slots;
    std::uint64_t mask;
    std::uint64_t headSeq = 0;
    std::size_t count = 0;
    unsigned capacity;
};

} // namespace rbsim

#endif // RBSIM_CORE_ROB_HH
