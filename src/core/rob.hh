/**
 * @file
 * Reorder buffer: in-order window of every in-flight instruction, from
 * dispatch to retirement, with walk-based squash.
 */

#ifndef RBSIM_CORE_ROB_HH
#define RBSIM_CORE_ROB_HH

#include <deque>
#include <functional>

#include "common/types.hh"
#include "frontend/branch_pred.hh"
#include "isa/inst.hh"
#include "rb/rbnum.hh"

namespace rbsim
{

/** One in-flight instruction. */
struct RobEntry
{
    std::uint64_t seq = 0;      //!< dispatch-order sequence number
    std::uint64_t pcIndex = 0;  //!< instruction index
    Inst inst;

    // Rename state.
    PhysReg dest = invalidPhysReg;
    PhysReg prevDest = invalidPhysReg;
    std::uint8_t archDest = zeroReg;
    struct Src
    {
        PhysReg reg = invalidPhysReg;
        bool needsTc = false;
    };
    std::array<Src, 3> src{};
    std::uint8_t numSrcs = 0;
    PhysReg physA = invalidPhysReg; //!< mapping of ra at rename
    PhysReg physB = invalidPhysReg; //!< mapping of rb at rename
    PhysReg physC = invalidPhysReg; //!< mapping of rc at rename (old dest)

    // Placement.
    std::uint8_t sched = 0;    //!< scheduler id
    std::uint8_t cluster = 0;  //!< cluster id
    Cycle dispatchCycle = 0;

    // Execution status.
    bool issued = false;
    bool complete = false;
    Cycle issueCycle = 0;
    Cycle completeCycle = 0;

    // Results (for retirement and co-simulation).
    Word resultTc = 0;
    bool wroteReg = false;

    // Control flow.
    bool isCtrl = false;
    bool predTaken = false;
    std::uint64_t predNextPc = 0;  //!< predicted next instruction index
    bool fetchStalledJmp = false;  //!< JMP with no predicted target
    bool actualTaken = false;
    std::uint64_t actualNextPc = 0;
    bool mispredicted = false;
    BpSnapshot snapshot;           //!< predictor repair state

    // Memory.
    bool isMemLoad = false;
    bool isMemStore = false;
    bool storeAddrRecorded = false; //!< early AGEN already hit the LSQ
    Addr effAddr = 0;
    unsigned memSize = 0;
    Word storeData = 0;

    bool isHalt = false;

    // Issue-time observations, tallied at retirement (wrong-path
    // instructions never reach the tallies).
    std::uint8_t bypassCaseIdx = 0xff; //!< Figure 13 case of the
                                       //!< last-arriving bypassed source
    bool anyBypassed = false;          //!< >= 1 source came off a bypass
    std::uint8_t bypassSlot = 0xff;    //!< cycles past first availability
    std::uint32_t holeWait = 0;        //!< wait cycles where every
                                       //!< missing operand sat in a hole
    bool usedRbPath = false;           //!< executed on the RB datapath
    bool bogusCorrected = false;       //!< section 3.5 correction fired
    bool loadForwarded = false;        //!< store-to-load forwarding hit

    // Pipeline tracing (src/trace). `fetchCycle` is always stamped at
    // dispatch; the rest are written only while a tracer is attached, so
    // the disabled-tracing hot path stays untouched.
    Cycle fetchCycle = 0;       //!< cycle this instruction left fetch
    std::uint64_t traceId = 0;  //!< tracer dynamic id (0 = not traced)
    //! Per-source bypass annotation (see trace::srcLevelMask): low
    //! nibble = bypass level that fed the operand (0 = register file),
    //! trace::srcRbForm set when it arrived in redundant binary.
    std::array<std::uint8_t, 3> srcBypass{0xff, 0xff, 0xff};
};

/** The reorder buffer. */
class Rob
{
  public:
    explicit Rob(unsigned max_entries)
        : capacity(max_entries)
    {}

    bool hasSpace() const { return entries.size() < capacity; }
    bool empty() const { return entries.empty(); }
    std::size_t size() const { return entries.size(); }

    /** Allocate the next entry; returns a stable-until-retire reference. */
    RobEntry &
    alloc(std::uint64_t seq)
    {
        entries.emplace_back();
        entries.back().seq = seq;
        return entries.back();
    }

    /** Entry by sequence number (must be in flight). */
    RobEntry &
    get(std::uint64_t seq)
    {
        assert(!entries.empty());
        const std::uint64_t head = entries.front().seq;
        assert(seq >= head && seq - head < entries.size());
        return entries[seq - head];
    }

    /** Entry at the head (oldest). */
    RobEntry &head() { return entries.front(); }

    /** Is this sequence number still in flight? */
    bool
    contains(std::uint64_t seq) const
    {
        if (entries.empty())
            return false;
        const std::uint64_t head_seq = entries.front().seq;
        return seq >= head_seq && seq - head_seq < entries.size();
    }

    /** Retire the head entry. */
    void
    retireHead()
    {
        assert(!entries.empty());
        entries.pop_front();
    }

    /**
     * Squash every entry younger than `seq`, youngest first, invoking
     * `undo` for each before it is removed.
     */
    void
    squashAfter(std::uint64_t seq,
                const std::function<void(RobEntry &)> &undo)
    {
        while (!entries.empty() && entries.back().seq > seq) {
            undo(entries.back());
            entries.pop_back();
        }
    }

  private:
    std::deque<RobEntry> entries;
    unsigned capacity;
};

} // namespace rbsim

#endif // RBSIM_CORE_ROB_HH
