/**
 * @file
 * Physical register value storage, in both representations.
 *
 * Every physical register holds a two's complement value; on the RB
 * machines, registers written by dual-format producers additionally hold
 * the redundant binary representation that flowed through the bypass
 * network (so consumers of RB operands really consume RB digit planes,
 * and the conversion is observable). On the RB-full machine this models
 * the RB register file copy; on RB-limited it models in-flight bypass
 * values (architecturally both views always agree — co-sim enforces it).
 */

#ifndef RBSIM_CORE_REGFILE_HH
#define RBSIM_CORE_REGFILE_HH

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/types.hh"
#include "rb/rbnum.hh"

namespace rbsim
{

/** The physical register file(s). */
class PhysRegFile
{
  public:
    explicit PhysRegFile(unsigned num_regs)
        : tcVals(num_regs, 0), rbVals(num_regs), hasRbVal(num_regs, 0)
    {}

    /** Back to construction state: all zeros, no RB planes. The RbNum
     * storage itself is left in place (it is dead once hasRbVal is 0). */
    void
    reset()
    {
        std::fill(tcVals.begin(), tcVals.end(), 0);
        std::fill(hasRbVal.begin(), hasRbVal.end(), 0);
    }

    /** Write a two's complement result. */
    void
    writeTc(PhysReg r, Word v)
    {
        assert(r < tcVals.size());
        tcVals[r] = v;
        hasRbVal[r] = 0;
    }

    /** Write a redundant binary result (TC view derived). */
    void
    writeRb(PhysReg r, const RbNum &v)
    {
        assert(r < tcVals.size());
        rbVals[r] = v;
        tcVals[r] = v.toTc();
        hasRbVal[r] = 1;
    }

    /** Two's complement view. */
    Word
    readTc(PhysReg r) const
    {
        assert(r < tcVals.size());
        return tcVals[r];
    }

    /**
     * Redundant binary view: the stored digit planes when the value was
     * produced in RB, else the hardwired (free) TC -> RB conversion.
     */
    RbNum
    readRb(PhysReg r) const
    {
        assert(r < tcVals.size());
        return hasRbVal[r] ? rbVals[r] : RbNum::fromTc(tcVals[r]);
    }

    /** True when the register holds genuine RB digit planes. */
    bool
    holdsRb(PhysReg r) const
    {
        assert(r < tcVals.size());
        return hasRbVal[r] != 0;
    }

  private:
    std::vector<Word> tcVals;
    std::vector<RbNum> rbVals;
    std::vector<std::uint8_t> hasRbVal;
};

} // namespace rbsim

#endif // RBSIM_CORE_REGFILE_HH
