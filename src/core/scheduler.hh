/**
 * @file
 * Partitioned select-2 schedulers (paper sections 4.3 and 5.1).
 *
 * The 128-entry instruction window is split into select-2 schedulers
 * (2 x 64 for the 4-wide machine, 4 x 32 for the 8-wide machine). Pairs
 * of consecutive instructions are steered round-robin at dispatch. Each
 * cycle, every scheduler scans its entries oldest-first and picks up to
 * two whose RESOURCE AVAILABLE conditions hold *this* cycle — which is
 * where the hole-aware wakeup of Figure 8 lives (the availability test is
 * delegated to the core via a per-entry readiness callback).
 */

#ifndef RBSIM_CORE_SCHEDULER_HH
#define RBSIM_CORE_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace rbsim
{

/** The partitioned scheduler bank. */
class SchedulerBank
{
  public:
    /**
     * @param num_schedulers scheduler count
     * @param entries_per capacity of each scheduler
     * @param select_width instructions each scheduler picks per cycle
     */
    SchedulerBank(unsigned num_schedulers, unsigned entries_per,
                  unsigned select_width = 2);

    /** Scheduler the next dispatch group goes to (round-robin pairs). */
    unsigned steerTarget() const { return rrIndex; }

    /** Advance round-robin steering after a dispatched instruction. */
    void advanceSteering();

    /** Can scheduler s accept another entry? */
    bool hasSpace(unsigned s) const;

    /** Insert an instruction (by sequence number) into scheduler s. */
    void insert(unsigned s, std::uint64_t seq);

    /**
     * Run one select cycle: for each scheduler, scan oldest-first and
     * pick up to select_width entries for which `ready(seq, scheduler)`
     * is true; picked entries are removed and reported via `issue`.
     */
    void selectCycle(
        const std::function<bool(std::uint64_t, unsigned)> &ready,
        const std::function<void(std::uint64_t, unsigned)> &issue);

    /** Remove every entry younger than seq (squash). */
    void squashAfter(std::uint64_t seq);

    /** Total occupied entries. */
    std::size_t occupancy() const;

    /** Occupancy of one scheduler. */
    std::size_t occupancyOf(unsigned s) const { return queues[s].size(); }

  private:
    std::vector<std::vector<std::uint64_t>> queues; // age-ordered seqs
    unsigned entriesPer;
    unsigned selectWidth;
    unsigned rrIndex = 0;
    unsigned steerCount = 0;
};

} // namespace rbsim

#endif // RBSIM_CORE_SCHEDULER_HH
