/**
 * @file
 * Partitioned select-2 schedulers with a bitset wakeup array (paper
 * sections 4.3 and 5.1, Figure 8).
 *
 * The 128-entry instruction window is split into select-2 schedulers
 * (2 x 64 for the 4-wide machine, 4 x 32 for the 8-wide machine). Pairs
 * of consecutive instructions are steered round-robin at dispatch.
 *
 * Each scheduler keeps fixed entry slots and three per-slot bit masks,
 * the in-simulator image of Figure 8's latched RESOURCE AVAILABLE bits:
 *
 *  - `ready`: every operand is obtainable this cycle. Maintained by the
 *    core via availability events broadcast when producers are selected
 *    (set at the first usable cycle, cleared and re-set across
 *    availability holes), not recomputed by polling.
 *  - `hole`: the entry is blocked *only* by availability holes this
 *    cycle (drives the hole-wait accounting without a per-entry poll).
 *  - `storeScan`: an unrecorded-address store whose base register's
 *    producer is known; it wants early address generation when scanned.
 *
 * Select is then an oldest-first scan over the union of the masks: up
 * to `select_width` ready entries issue, non-ready attention entries get
 * their per-cycle side effects (hole statistics, early store AGEN). The
 * legacy per-entry polling loop is kept as `selectCycle` — it is the
 * debug/oracle path and the fallback when a scheduler holds more than 64
 * entries (masks are one `uint64_t` wide).
 *
 * Both select paths take their callbacks as template parameters so the
 * readiness/issue code of OooCore inlines into the scan (no
 * `std::function` allocation or indirect calls on the hot path).
 */

#ifndef RBSIM_CORE_SCHEDULER_HH
#define RBSIM_CORE_SCHEDULER_HH

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace rbsim
{

/** The partitioned scheduler bank. */
class SchedulerBank
{
  public:
    /** A (scheduler, slot) coordinate of an inserted entry. */
    struct SlotRef
    {
        std::uint16_t sched = 0;
        std::uint16_t slot = 0;
    };

    /**
     * @param num_schedulers scheduler count
     * @param entries_per capacity of each scheduler
     * @param select_width instructions each scheduler picks per cycle
     */
    SchedulerBank(unsigned num_schedulers, unsigned entries_per,
                  unsigned select_width = 2);

    /** Scheduler the next dispatch group goes to (round-robin pairs). */
    unsigned steerTarget() const { return rrIndex; }

    /** Advance round-robin steering after a dispatched instruction. */
    void advanceSteering();

    /** Can scheduler s accept another entry? */
    bool hasSpace(unsigned s) const;

    /**
     * Insert an instruction (by sequence number) into scheduler s.
     * @return the slot the wakeup masks address it by
     */
    SlotRef insert(unsigned s, std::uint64_t seq);

    /** Back to construction state in place: masks, slot seqs and reuse
     * generations cleared (a reset core re-issues identical (ref, gen)
     * pairs for determinism), fallback queues emptied with capacity
     * kept, steering restarted at scheduler 0. */
    void
    reset()
    {
        for (Bank &b : banks) {
            std::fill(b.seqs.begin(), b.seqs.end(), 0);
            std::fill(b.gens.begin(), b.gens.end(), 0);
            b.queue.clear();
            b.valid = b.ready = b.hole = b.storeScan = 0;
        }
        rrIndex = 0;
        steerCount = 0;
    }

    /** Remove every entry younger than seq (squash). A squash that
     * empties every scheduler also resets the steering state, so
     * post-flush dispatch steering restarts pair-aligned at scheduler 0
     * (section 5.1 determinism). */
    void squashAfter(std::uint64_t seq);

    /** Total occupied entries. */
    std::size_t occupancy() const;

    /** Occupancy of one scheduler. */
    std::size_t occupancyOf(unsigned s) const;

    /** Number of schedulers. */
    unsigned numSchedulers() const
    { return static_cast<unsigned>(banks.size()); }

    /** Entries each scheduler can hold. */
    unsigned capacityPer() const { return entriesPer; }

    /** True when the bitset wakeup array is usable (<= 64 slots per
     * scheduler); otherwise only the polled path works. */
    bool wakeupCapable() const { return entriesPer <= 64; }

    // ------------------------------------------------- wakeup array

    /** Latch/clear the RESOURCE AVAILABLE bit of a slot. */
    void
    setReady(SlotRef r, bool on)
    {
        setBit(banks[r.sched].ready, r.slot, on);
    }

    /** Latch/clear the blocked-only-by-holes bit of a slot. */
    void
    setHole(SlotRef r, bool on)
    {
        setBit(banks[r.sched].hole, r.slot, on);
    }

    /** Latch/clear the wants-early-store-AGEN bit of a slot. */
    void
    setStoreScan(SlotRef r, bool on)
    {
        setBit(banks[r.sched].storeScan, r.slot, on);
    }

    /** Is the slot's ready bit set? */
    bool
    isReady(SlotRef r) const
    {
        return banks[r.sched].ready >> r.slot & 1;
    }

    /** Does the slot currently hold this sequence number?
     *
     * Debug assertions ONLY — never use this to validate a queued
     * wakeup event. Sequence numbers are recycled on squash (flushAfter
     * rewinds nextSeq to branch.seq + 1), so after squash → same-cycle
     * re-dispatch a reused slot can hold the *same* seq as the squashed
     * occupant and a stale event would be accepted. The (SlotRef, gen)
     * pair checked by live() names one occupancy uniquely; all event
     * validation goes through it. */
    bool
    holds(SlotRef r, std::uint64_t seq) const
    {
        const Bank &b = banks[r.sched];
        return (b.valid >> r.slot & 1) && b.seqs[r.slot] == seq;
    }

    /** Generation of a slot; bumped on every insert, so a (ref, gen)
     * pair names one occupancy of the slot. */
    std::uint32_t
    genOf(SlotRef r) const
    {
        return banks[r.sched].gens[r.slot];
    }

    /** Is the occupancy named by (ref, gen) still live (not issued, not
     * squashed, slot not reused)? */
    bool
    live(SlotRef r, std::uint32_t gen) const
    {
        const Bank &b = banks[r.sched];
        return (b.valid >> r.slot & 1) && b.gens[r.slot] == gen;
    }

    /** Ready mask of one scheduler (tests, oracle). */
    std::uint64_t readyMaskOf(unsigned s) const { return banks[s].ready; }

    /** Hole mask of one scheduler (tests, oracle). */
    std::uint64_t holeMaskOf(unsigned s) const { return banks[s].hole; }

    /** Valid mask of one scheduler (tests, oracle). */
    std::uint64_t validMaskOf(unsigned s) const { return banks[s].valid; }

    /** Sequence number held by a slot (must be valid). */
    std::uint64_t
    seqAt(unsigned s, unsigned slot) const
    {
        assert(banks[s].valid >> slot & 1);
        return banks[s].seqs[slot];
    }

    /** Any ready bit set across all schedulers? */
    bool
    anyReady() const
    {
        for (const Bank &b : banks)
            if (b.ready)
                return true;
        return false;
    }

    /** Any per-cycle attention (hole accounting / store AGEN) pending? */
    bool
    anyAttention() const
    {
        for (const Bank &b : banks)
            if (b.hole | b.storeScan)
                return true;
        return false;
    }

    /**
     * Event-driven select cycle: for each scheduler, walk the union of
     * the ready/hole/storeScan masks oldest-first. Ready entries are
     * offered to `try_issue(seq, scheduler)`: a true return issues and
     * removes the entry (counting against select_width); false (a load
     * failing memory disambiguation) leaves it latched. Non-ready
     * attention entries get `attend(seq, scheduler, slot)` for their
     * per-cycle side effects. The walk stops once the select ports are
     * exhausted, exactly like the polled scan.
     */
    template <class TryIssue, class Attend>
    void
    selectWakeup(TryIssue &&try_issue, Attend &&attend)
    {
        assert(wakeupCapable());
        for (unsigned s = 0; s < banks.size(); ++s) {
            Bank &b = banks[s];
            const std::uint64_t work = b.ready | b.hole | b.storeScan;
            if (!work)
                continue;
            // Age-order the work set; seqs grow monotonically with age.
            struct Ent
            {
                std::uint64_t seq;
                std::uint8_t slot;
            };
            Ent ents[64];
            unsigned n = 0;
            for (std::uint64_t m = work; m; m &= m - 1) {
                const unsigned slot =
                    static_cast<unsigned>(std::countr_zero(m));
                ents[n++] = Ent{b.seqs[slot],
                                static_cast<std::uint8_t>(slot)};
            }
            std::sort(ents, ents + n,
                      [](const Ent &a, const Ent &e) {
                          return a.seq < e.seq;
                      });
            unsigned picked = 0;
            for (unsigned i = 0; i < n && picked < selectWidth; ++i) {
                const unsigned slot = ents[i].slot;
                if (b.ready >> slot & 1) {
                    if (try_issue(ents[i].seq, s)) {
                        removeSlot(b, slot);
                        ++picked;
                    }
                } else {
                    attend(ents[i].seq, s,
                           SlotRef{static_cast<std::uint16_t>(s),
                                   static_cast<std::uint16_t>(slot)});
                }
            }
        }
    }

    // ------------------------------------------------- polled select

    /**
     * Legacy polled select cycle: for each scheduler, scan entries
     * oldest-first and pick up to select_width for which
     * `ready(seq, scheduler)` holds; picked entries are removed and
     * reported via `issue`. Once the select ports are exhausted the rest
     * are not evaluated. This is the Figure 8 *oracle*: readiness is
     * recomputed from scratch per entry per cycle.
     */
    template <class Ready, class Issue>
    void
    selectCycle(Ready &&ready, Issue &&issue)
    {
        for (unsigned s = 0; s < banks.size(); ++s) {
            Bank &b = banks[s];
            if (!wakeupCapable()) {
                selectQueue(b, s, ready, issue);
                continue;
            }
            struct Ent
            {
                std::uint64_t seq;
                std::uint8_t slot;
            };
            Ent ents[64];
            unsigned n = 0;
            for (std::uint64_t m = b.valid; m; m &= m - 1) {
                const unsigned slot =
                    static_cast<unsigned>(std::countr_zero(m));
                ents[n++] = Ent{b.seqs[slot],
                                static_cast<std::uint8_t>(slot)};
            }
            std::sort(ents, ents + n,
                      [](const Ent &a, const Ent &e) {
                          return a.seq < e.seq;
                      });
            unsigned picked = 0;
            for (unsigned i = 0; i < n && picked < selectWidth; ++i) {
                if (ready(ents[i].seq, s)) {
                    issue(ents[i].seq, s);
                    removeSlot(b, ents[i].slot);
                    ++picked;
                }
            }
        }
    }

  private:
    struct Bank
    {
        std::vector<std::uint64_t> seqs; //!< per-slot seq (wakeup mode)
        std::vector<std::uint32_t> gens; //!< per-slot reuse generation
        std::vector<std::uint64_t> queue; //!< age-ordered (fallback mode)
        std::uint64_t valid = 0;
        std::uint64_t ready = 0;
        std::uint64_t hole = 0;
        std::uint64_t storeScan = 0;
    };

    static void
    setBit(std::uint64_t &mask, unsigned slot, bool on)
    {
        if (on)
            mask |= std::uint64_t{1} << slot;
        else
            mask &= ~(std::uint64_t{1} << slot);
    }

    void
    removeSlot(Bank &b, unsigned slot)
    {
        const std::uint64_t clear = ~(std::uint64_t{1} << slot);
        b.valid &= clear;
        b.ready &= clear;
        b.hole &= clear;
        b.storeScan &= clear;
    }

    /** Old contiguous-queue scan for > 64-entry schedulers. */
    template <class Ready, class Issue>
    void
    selectQueue(Bank &b, unsigned s, Ready &&ready, Issue &&issue)
    {
        auto &q = b.queue;
        unsigned picked = 0;
        std::size_t out = 0;
        std::size_t i = 0;
        for (; i < q.size() && picked < selectWidth; ++i) {
            if (ready(q[i], s)) {
                issue(q[i], s);
                ++picked;
            } else {
                q[out++] = q[i];
            }
        }
        for (; i < q.size(); ++i)
            q[out++] = q[i];
        q.resize(out);
    }

    std::vector<Bank> banks;
    unsigned entriesPer;
    unsigned selectWidth;
    unsigned rrIndex = 0;
    unsigned steerCount = 0;
};

} // namespace rbsim

#endif // RBSIM_CORE_SCHEDULER_HH
