// Rob is header-only; this translation unit anchors the header.
#include "core/rob.hh"
