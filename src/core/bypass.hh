/**
 * @file
 * Result-availability model for full and limited bypass networks (paper
 * sections 4.1 and 4.2).
 *
 * A producer selected at cycle `s` with latencies (early, late) drops its
 * result onto bypass level k at select cycle `s + early + k - 1`
 * (k = 1..3); levels 1-2 carry the redundant binary form when the producer
 * is dual-format, level 3 carries two's complement (the converter output),
 * and the register file serves every later cycle starting at
 * `s + early + 3`. Consumers requiring two's complement cannot use
 * RB-carrying levels; RB-input consumers accept either form.
 *
 * Limited networks remove levels, producing *holes* in availability that
 * the section 4.3 scheduler schedules around. `availabilityPattern`
 * renders the same information as the interleaved-0/1 shift-register
 * initialization of the paper's Figure 8 wakeup logic, and is tested
 * equivalent to `operandAvail`.
 */

#ifndef RBSIM_CORE_BYPASS_HH
#define RBSIM_CORE_BYPASS_HH

#include "core/machine_config.hh"

namespace rbsim
{

/** Availability of one produced value, written at producer select time. */
struct ProdAvail
{
    Cycle early = 0;      //!< first bypass availability (RB form if dual)
    Cycle late = 0;       //!< first TC availability (== early if !dual)
    Cycle rfTc = 0;       //!< TC register file serves [rfTc, inf)
    std::uint8_t cluster = 0; //!< producing cluster
    bool dual = false;    //!< result passes the format converter

    /** Availability record for a value that is simply "in the register
     * file" (e.g. before the program starts, or after retire). */
    static ProdAvail
    always()
    {
        return ProdAvail{0, 0, 0, 0, false};
    }

    /** Build from a producer's select cycle and its latency pair. */
    static ProdAvail
    make(Cycle select, LatencyPair lat, unsigned num_levels,
         std::uint8_t producing_cluster)
    {
        ProdAvail p;
        p.early = select + lat.early;
        p.late = select + lat.late;
        p.rfTc = select + lat.early + num_levels;
        p.cluster = producing_cluster;
        p.dual = lat.late > lat.early;
        return p;
    }
};

/**
 * Can a consumer selected at cycle t in cluster `consumer_cluster` obtain
 * this operand?
 *
 * @param cfg the machine (bypass structure, cross-cluster delay)
 * @param p the producer's availability record
 * @param needs_tc true when the consuming operand requires two's
 *        complement (TC-input instruction, or store data)
 * @param consumer_cluster cluster of the consuming functional unit
 * @param t candidate select cycle
 */
bool operandAvail(const MachineConfig &cfg, const ProdAvail &p,
                  bool needs_tc, unsigned consumer_cluster, Cycle t);

/**
 * First cycle at or after `from` at which the operand is available
 * (bounded: falls back to the register file, which always serves).
 */
Cycle firstAvail(const MachineConfig &cfg, const ProdAvail &p,
                 bool needs_tc, unsigned consumer_cluster, Cycle from);

/**
 * First cycle from which the operand is available at *every* later
 * cycle — the end of the last availability hole. Together with
 * `firstAvail(.., p.early)` this brackets the window the wakeup array
 * must latch per-cycle bits for; outside it the ready bit is constant.
 */
Cycle stableAvailFrom(const MachineConfig &cfg, const ProdAvail &p,
                      bool needs_tc, unsigned consumer_cluster);

/**
 * The wakeup shift-register pattern of paper Figure 8: bit i is 1 iff the
 * operand is available at select cycle `base + i`. Bits beyond the window
 * are implied 1 (register file). Used by tests and the scheduling-logic
 * demo; the scheduler itself calls operandAvail.
 *
 * @param base pattern origin cycle
 * @param window number of bits to render (<= 64)
 */
std::uint64_t availabilityPattern(const MachineConfig &cfg,
                                  const ProdAvail &p, bool needs_tc,
                                  unsigned consumer_cluster, Cycle base,
                                  unsigned window);

/** True if the operand was served from a bypass path rather than the
 * register file at cycle t (for the Figure 13 accounting). */
bool servedByBypass(const ProdAvail &p, Cycle t);

} // namespace rbsim

#endif // RBSIM_CORE_BYPASS_HH
