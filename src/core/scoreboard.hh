/**
 * @file
 * Availability scoreboard: the per-physical-register RESOURCE AVAILABLE
 * state of the paper's Figure 8 wakeup logic, plus the Figure 13 bypass-
 * case accounting.
 *
 * Each physical register carries a ProdAvail timeline written when its
 * producer is selected. Registers holding architectural state (or whose
 * producer has long since completed) are "always available".
 */

#ifndef RBSIM_CORE_SCOREBOARD_HH
#define RBSIM_CORE_SCOREBOARD_HH

#include <algorithm>
#include <vector>

#include "core/bypass.hh"

namespace rbsim
{

/** The four bypass cases of the paper's Figure 13. */
enum class BypassCase : unsigned char
{
    TcToTc, //!< TC result forwarded to a TC-input operand
    TcToRb, //!< TC result forwarded to an RB-capable operand
    RbToRb, //!< RB result forwarded to an RB-capable operand
    RbToTc, //!< RB result forwarded to a TC operand: needs conversion

    NumCases,
};

/** Number of bypass cases. */
constexpr unsigned numBypassCases =
    static_cast<unsigned>(BypassCase::NumCases);

/** Figure 13 label for a case. */
const char *bypassCaseName(BypassCase c);

/** Classify a (producer, consumer-operand) pair. */
inline BypassCase
classifyBypass(bool producer_dual, bool consumer_needs_tc)
{
    if (producer_dual)
        return consumer_needs_tc ? BypassCase::RbToTc : BypassCase::RbToRb;
    return consumer_needs_tc ? BypassCase::TcToTc : BypassCase::TcToRb;
}

/** The scoreboard. */
class Scoreboard
{
  public:
    explicit Scoreboard(unsigned num_phys_regs)
        : avail(num_phys_regs, ProdAvail::always())
    {}

    /** Back to construction state: every register always-available. */
    void
    reset()
    {
        std::fill(avail.begin(), avail.end(), ProdAvail::always());
    }

    /** Record a producer's availability timeline at select. */
    void
    produce(PhysReg r, const ProdAvail &p)
    {
        avail[r] = p;
    }

    /** Mark a register always-available (free-list recycling). */
    void
    clear(PhysReg r)
    {
        avail[r] = ProdAvail::always();
    }

    /** Mark a register never-available (allocated, producer not issued). */
    void
    markPending(PhysReg r)
    {
        ProdAvail p;
        p.early = p.late = p.rfTc = neverCycle;
        avail[r] = p;
    }

    /** The availability record of a register. */
    const ProdAvail &
    of(PhysReg r) const
    {
        return avail[r];
    }

  private:
    std::vector<ProdAvail> avail;
};

} // namespace rbsim

#endif // RBSIM_CORE_SCOREBOARD_HH
