#include "core/machine_config.hh"

#include <cassert>

namespace rbsim
{

const char *
machineName(MachineKind kind)
{
    switch (kind) {
      case MachineKind::Baseline: return "Baseline";
      case MachineKind::RbLimited: return "RB-limited";
      case MachineKind::RbFull: return "RB-full";
      case MachineKind::Ideal: return "Ideal";
      default: return "<bad>";
    }
}

namespace
{

/** Fill the Table 3 latency rows for one machine. */
void
fillLatencies(MachineConfig &cfg)
{
    auto set = [&cfg](OpClass cls, unsigned early, unsigned late) {
        cfg.latency[static_cast<unsigned>(cls)] = LatencyPair{early, late};
    };

    // Rows common to all machines.
    set(OpClass::IntLogical, 1, 1);
    set(OpClass::ShiftRight, 3, 3);
    set(OpClass::IntMul, 10, 10);
    set(OpClass::FpArith, 8, 8);
    set(OpClass::FpDiv, 32, 32);
    set(OpClass::Load, 1, 1);   // SAM decoder; dcache latency added on top
    set(OpClass::Store, 1, 1);
    set(OpClass::Nop, 1, 1);

    switch (cfg.kind) {
      case MachineKind::Baseline:
        set(OpClass::IntArith, 2, 2);
        set(OpClass::CondMove, 2, 2);
        set(OpClass::IntCompare, 2, 2);
        set(OpClass::ByteManip, 2, 2);
        set(OpClass::Count, 2, 2);
        set(OpClass::ShiftLeft, 3, 3);
        set(OpClass::Branch, 2, 2);
        cfg.storeCompleteLat = 1;
        break;
      case MachineKind::RbLimited:
      case MachineKind::RbFull:
        set(OpClass::IntArith, 1, 3);
        set(OpClass::CondMove, 1, 3);
        set(OpClass::IntCompare, 1, 3);
        set(OpClass::ByteManip, 1, 3);
        set(OpClass::Count, 1, 3);
        set(OpClass::ShiftLeft, 3, 5);
        set(OpClass::Branch, 1, 1);
        cfg.storeCompleteLat = 3; // store data needs the TC conversion
        break;
      case MachineKind::Ideal:
        set(OpClass::IntArith, 1, 1);
        set(OpClass::CondMove, 1, 1);
        set(OpClass::IntCompare, 1, 1);
        set(OpClass::ByteManip, 1, 1);
        set(OpClass::Count, 1, 1);
        set(OpClass::ShiftLeft, 3, 3);
        set(OpClass::Branch, 1, 1);
        cfg.storeCompleteLat = 1;
        break;
    }
}

} // namespace

MachineConfig
MachineConfig::make(MachineKind kind, unsigned width)
{
    // 4 and 8 are the paper's machines; 16 is this reproduction's
    // scaling extension (4 clusters, scaled front end and window).
    assert(width == 4 || width == 8 || width == 16);
    MachineConfig cfg;
    cfg.kind = kind;
    cfg.label = machineName(kind);
    cfg.width = width;
    cfg.numSchedulers = width / 2;
    cfg.schedEntries = (width == 16 ? 256 : 128) / cfg.numSchedulers;
    cfg.numClusters = width <= 4 ? 1 : width / 4;
    cfg.rbLimitedBypass = kind == MachineKind::RbLimited;
    cfg.hasRbRegfile = kind == MachineKind::RbFull;
    if (width == 16) {
        cfg.fetchWidth = 16;
        cfg.fetchBlocks = 3;
        cfg.renameWidth = 16;
        cfg.retireWidth = 16;
        cfg.robEntries = 256;
        cfg.lsqEntries = 128;
        cfg.physRegs = 640;
    }
    fillLatencies(cfg);
    return cfg;
}

MachineConfig
MachineConfig::makeIdealLimited(unsigned width, std::uint8_t level_mask)
{
    MachineConfig cfg = make(MachineKind::Ideal, width);
    assert((level_mask & ~0b111u) == 0);
    cfg.bypassLevelMask = level_mask;
    std::string missing;
    for (unsigned k = 1; k <= 3; ++k) {
        if (!(level_mask & (1u << (k - 1)))) {
            missing += missing.empty() ? "" : ",";
            missing += std::to_string(k);
        }
    }
    cfg.label = missing.empty() ? "Ideal (full)" : ("Ideal No-" + missing);
    return cfg;
}

} // namespace rbsim
