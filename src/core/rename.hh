/**
 * @file
 * Register renaming: architectural-to-physical map (RAT), free list, and
 * walk-based misprediction recovery.
 *
 * Recovery is checkpoint-free: each ROB entry remembers the previous
 * mapping of its destination, and a squash walks the ROB from the tail
 * toward the branch undoing mappings in reverse order.
 */

#ifndef RBSIM_CORE_RENAME_HH
#define RBSIM_CORE_RENAME_HH

#include <cassert>
#include <vector>

#include "common/types.hh"
#include "isa/inst.hh"

namespace rbsim
{

/** The rename table and free list. */
class RenameTable
{
  public:
    /**
     * @param num_phys_regs total physical registers; the first 32 are the
     *        initial architectural mappings
     */
    explicit RenameTable(unsigned num_phys_regs);

    /** Back to construction state: identity RAT, free list refilled in
     * the exact constructor order (determinism: a reset core allocates
     * the same physical registers as a fresh one). No reallocation. */
    void reset();

    /** Current mapping of an architectural register. */
    PhysReg
    lookup(unsigned arch) const
    {
        assert(arch < numArchRegs);
        return rat[arch];
    }

    /** True if a destination can be allocated. */
    bool hasFree() const { return !freeList.empty(); }

    /** Free physical registers remaining. */
    std::size_t freeCount() const { return freeList.size(); }

    /**
     * Allocate a new mapping for an architectural destination.
     * @return {new physical register, previous mapping}
     */
    std::pair<PhysReg, PhysReg> allocate(unsigned arch);

    /** Undo one allocation during a squash walk (reverse order!). */
    void undo(unsigned arch, PhysReg allocated, PhysReg previous);

    /** Release the previous mapping when its overwriter retires. */
    void release(PhysReg previous);

  private:
    std::vector<PhysReg> rat;
    std::vector<PhysReg> freeList;
    unsigned numPhys; //!< total physical registers (reset refill bound)
};

} // namespace rbsim

#endif // RBSIM_CORE_RENAME_HH
