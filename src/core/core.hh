/**
 * @file
 * The out-of-order execution core: 13+-stage pipeline with fetch,
 * rename/dispatch, partitioned select-2 schedulers with hole-aware
 * wakeup, format-aware bypass, clustered execution, LSQ, ROB, and
 * in-order retirement with a co-simulation hook.
 */

#ifndef RBSIM_CORE_CORE_HH
#define RBSIM_CORE_CORE_HH

#include <deque>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "core/exec.hh"
#include "core/machine_config.hh"
#include "core/regfile.hh"
#include "core/rename.hh"
#include "core/rob.hh"
#include "core/scheduler.hh"
#include "core/scoreboard.hh"
#include "frontend/fetch.hh"
#include "func/mem_image.hh"
#include "mem/lsq.hh"
#include "mem/sam.hh"

namespace rbsim
{

/** Everything the core counts. */
struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
    std::uint64_t fetched = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t issued = 0;
    std::uint64_t squashed = 0;

    std::uint64_t condBranches = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t flushes = 0;
    std::uint64_t jmpFetchStalls = 0;

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t loadForwards = 0;

    std::uint64_t rbPathExecs = 0;
    std::uint64_t rbBogusCorrections = 0;

    //! Retired-instruction counts per paper Table 1 row.
    std::array<std::uint64_t, numTable1Rows> table1{};

    //! Figure 13: last-arriving bypassed source classification (retired).
    std::array<std::uint64_t, numBypassCases> bypassCase{};
    std::uint64_t withBypassedSource = 0; //!< >= 1 bypassed source
    std::uint64_t withAnySource = 0;

    //! Which bypass slot (cycles past first availability) served the
    //! last-arriving operand; [numBypassLevels] means register file.
    std::array<std::uint64_t, 8> bypassSlotUsed{};

    //! Issue-wait accounting.
    std::uint64_t issueWaitSum = 0; //!< sum of (issue - dispatch - 1)
    std::uint64_t holeWaitCycles = 0; //!< entry-cycles blocked only by a
                                      //!< hole in availability

    //! Per-stage cycle accounting (first-class histograms).
    Histogram issueWait{16};   //!< per retired inst: issue-dispatch-1
    Histogram holeWait{16};    //!< per retired inst: cycles blocked only
                               //!< by availability holes
    Histogram retireSlots{17}; //!< per cycle: instructions retired
    Histogram fetchSlots{17};  //!< per cycle: instructions fetched

    double ipc() const
    { return cycles ? double(retired) / double(cycles) : 0.0; }
};

/** The core. */
class OooCore
{
  public:
    /**
     * @param cfg machine configuration (must outlive the core)
     * @param prog program to run (must outlive the core)
     */
    OooCore(const MachineConfig &cfg, const Program &prog);

    /** Callback invoked for every retired instruction (co-simulation). */
    void
    onRetire(std::function<void(const RobEntry &)> cb)
    {
        retireHook = std::move(cb);
    }

    /**
     * Run until HALT retires or `max_cycles` elapse.
     * @return true if the program halted cleanly
     */
    bool run(Cycle max_cycles);

    /** Advance one cycle. */
    void cycle();

    /** True once HALT has retired (or the program ran off its code). */
    bool halted() const { return haltRetired; }

    /** Statistics. */
    const CoreStats &stats() const { return coreStats; }

    /**
     * Self-register every statistic of the core and its subcomponents
     * (memory hierarchy, fetch/predictor, LSQ) into `reg`. The registry
     * must not outlive the core.
     */
    void registerStats(StatRegistry &reg) const;

    /** The memory hierarchy (cache stats). */
    const MemHierarchy &memoryHierarchy() const { return hierarchy; }

    /** Committed memory state (inspection after a run). */
    const MemImage &committedMem() const { return commitMem; }

    /** The fetch engine (predictor stats). */
    const FetchEngine &fetchEngine() const { return fetch; }

  private:
    struct FrontEntry
    {
        FetchedInst fi;
        Cycle fetchedAt;
    };

    struct PendingFlush
    {
        Cycle at;
        std::uint64_t seq;
        std::uint64_t redirectPc;
    };

    void doFlushes();
    void doRetire();
    void doSelect();
    void doDispatch();
    unsigned pickScheduler(const Inst &inst);
    void doFetch();

    bool readyToIssue(std::uint64_t seq, unsigned sched);
    void issueInst(std::uint64_t seq);
    void flushAfter(const RobEntry &branch);
    void recordBypassStats(RobEntry &e);

    const MachineConfig &config;
    const Program &program;

    MemImage commitMem;      //!< architecturally committed memory
    MemHierarchy hierarchy;
    FetchEngine fetch;
    RenameTable rename;
    PhysRegFile regs;
    Scoreboard scoreboard;
    Rob rob;
    SchedulerBank sched;
    LoadStoreQueue lsq;
    SamDecoder samDl1;

    /** Scheduler that dispatched the producer of each physical register
     * (dependence-aware steering heuristic; 0xff = unknown/retired). */
    std::vector<std::uint8_t> producerSched;

    std::deque<FrontEntry> frontPipe;
    std::vector<PendingFlush> pendingFlushes;

    CoreStats coreStats;
    std::function<void(const RobEntry &)> retireHook;

    Cycle now = 0;
    unsigned classRr = 0; //!< round-robin cursor for ClassPartition
    std::uint64_t nextSeq = 1;
    bool haltRetired = false;
    unsigned frontPipeCap;
    std::uint64_t samCheckCounter = 0;
};

} // namespace rbsim

#endif // RBSIM_CORE_CORE_HH
