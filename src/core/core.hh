/**
 * @file
 * The out-of-order execution core: 13+-stage pipeline with fetch,
 * rename/dispatch, partitioned select-2 schedulers with hole-aware
 * wakeup, format-aware bypass, clustered execution, LSQ, ROB, and
 * in-order retirement with a co-simulation hook.
 */

#ifndef RBSIM_CORE_CORE_HH
#define RBSIM_CORE_CORE_HH

#include <functional>
#include <queue>
#include <vector>

#include "common/hostprof.hh"
#include "common/ring.hh"
#include "common/stats.hh"
#include "core/exec.hh"
#include "core/machine_config.hh"
#include "core/regfile.hh"
#include "core/rename.hh"
#include "core/rob.hh"
#include "core/scheduler.hh"
#include "core/scoreboard.hh"
#include "frontend/fetch.hh"
#include "func/mem_image.hh"
#include "mem/lsq.hh"
#include "mem/sam.hh"
#include "rb/simd/rb_batch.hh"
#include "trace/tracer.hh"

namespace rbsim
{

struct ArchCheckpoint;

/** Everything the core counts. */
struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
    std::uint64_t fetched = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t issued = 0;
    std::uint64_t squashed = 0;

    std::uint64_t condBranches = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t flushes = 0;
    std::uint64_t jmpFetchStalls = 0;

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t loadForwards = 0;

    std::uint64_t rbPathExecs = 0;
    std::uint64_t rbBogusCorrections = 0;

    //! Retired-instruction counts per paper Table 1 row.
    std::array<std::uint64_t, numTable1Rows> table1{};

    //! Figure 13: last-arriving bypassed source classification (retired).
    std::array<std::uint64_t, numBypassCases> bypassCase{};
    std::uint64_t withBypassedSource = 0; //!< >= 1 bypassed source
    std::uint64_t withAnySource = 0;

    //! Which bypass slot (cycles past first availability) served the
    //! last-arriving operand; [numBypassLevels] means register file.
    std::array<std::uint64_t, 8> bypassSlotUsed{};

    //! Issue-wait accounting.
    std::uint64_t issueWaitSum = 0; //!< sum of (issue - dispatch - 1)
    std::uint64_t holeWaitCycles = 0; //!< entry-cycles blocked only by a
                                      //!< hole in availability

    //! Runs aborted by the no-retirement-progress watchdog.
    std::uint64_t deadlockAborts = 0;

    //! Per-stage cycle accounting (first-class histograms).
    Histogram issueWait{16};   //!< per retired inst: issue-dispatch-1
    Histogram holeWait{16};    //!< per retired inst: cycles blocked only
                               //!< by availability holes
    Histogram retireSlots{17}; //!< per cycle: instructions retired
    Histogram fetchSlots{17};  //!< per cycle: instructions fetched

    double ipc() const
    { return cycles ? double(retired) / double(cycles) : 0.0; }

    /** Zero everything in place, allocation-free. Every counter and
     * histogram keeps its address, so stat-registry views registered
     * once at construction stay valid across a simulator reset. */
    void
    reset()
    {
        cycles = retired = fetched = dispatched = issued = squashed = 0;
        condBranches = condMispredicts = flushes = jmpFetchStalls = 0;
        loads = stores = loadForwards = 0;
        rbPathExecs = rbBogusCorrections = 0;
        table1.fill(0);
        bypassCase.fill(0);
        withBypassedSource = withAnySource = 0;
        bypassSlotUsed.fill(0);
        issueWaitSum = holeWaitCycles = 0;
        deadlockAborts = 0;
        issueWait.reset();
        holeWait.reset();
        retireSlots.reset();
        fetchSlots.reset();
    }
};

/** The core. */
class OooCore
{
  public:
    /**
     * @param cfg machine configuration (must outlive the core)
     * @param prog program to run (must outlive the core)
     */
    OooCore(const MachineConfig &cfg, const Program &prog);

    /**
     * Back to construction state in place, rebound to `prog` (which
     * must outlive the core; the machine configuration is fixed for the
     * core's lifetime). Every ring, pool, table, predictor, cache, and
     * stat is re-initialized without releasing its storage, so a reset
     * core re-running a same-footprint program allocates nothing and
     * produces a bit-identical StatSnapshot to a freshly constructed
     * one (tests/test_serve.cc pins both properties). The retire hook,
     * tracer, and profiler attachments are left as-is.
     */
    void reset(const Program &prog);

    /** Callback invoked for every retired instruction (co-simulation). */
    void
    onRetire(std::function<void(const RobEntry &)> cb)
    {
        retireHook = std::move(cb);
    }

    /**
     * Attach a pipeline tracer (may be nullptr to detach). Must be done
     * before the first cycle; tracing mid-run leaves earlier
     * instructions untraced. The tracer must outlive the run.
     */
    void attachTracer(trace::Tracer *t) { tracer = t; }

    /**
     * Attach a host-time per-stage profiler (may be nullptr to detach;
     * must outlive the run). When detached the per-cycle cost is one
     * predicted branch.
     */
    void attachProfiler(HostProfiler *p) { profiler = p; }

    /**
     * Report every instruction still in flight to the attached tracer
     * (no-op without one). Call after a run that did not drain cleanly —
     * watchdog deadlock, cosim mismatch, cycle budget — so the tail of
     * the pipeline appears in the trace; then Tracer::finish().
     */
    void traceInFlight(const char *why);

    /**
     * Install a checkpoint's architectural + warm state on a freshly
     * reset core (call right after reset(prog) with the same program):
     * committed memory pages, architectural registers through the
     * identity rename map, fetch PC, predictor/BTB/RAS tables, and the
     * three cache tag arrays. Throws std::logic_error for a checkpoint
     * of a halted program (nothing to resume).
     */
    void restoreArchState(const ArchCheckpoint &ck);

    /**
     * Zero every registered statistic of the core and its subcomponents
     * without touching any model state (tags, predictor tables, queue
     * contents, `now`). Ends a warmup leg: the following measurement
     * window's counters — including cycles, so core.ipc — cover only
     * post-clear work.
     */
    void clearStats();

    /**
     * Run until HALT retires, `max_cycles` elapse, or — when `max_insts`
     * is nonzero — coreStats.retired reaches `max_insts` (counted from
     * the last reset()/clearStats(); see instLimitHit()).
     * @return true if the program halted cleanly
     */
    bool run(Cycle max_cycles, std::uint64_t max_insts = 0);

    /** True when the last run() stopped on its instruction budget
     * (distinguishes a budget stop from a cycle-budget or watchdog
     * abort). */
    bool instLimitHit() const { return limitHit; }

    /** Advance one cycle. */
    void cycle();

    /** One cycle with per-stage host timers (profiler attached). */
    void cycleProfiled();

    /** True once HALT has retired (or the program ran off its code). */
    bool halted() const { return haltRetired; }

    /** True when run() aborted on the no-retirement-progress watchdog. */
    bool deadlocked() const { return coreStats.deadlockAborts != 0; }

    /** Cycles fast-forwarded by idle skipping (host-perf telemetry; not
     * a registered statistic so polled and wakeup snapshots compare
     * equal). */
    Cycle idleSkippedCycles() const { return idleSkipped; }

    /** Wakeup-bit vs polled-oracle comparisons performed (oracle mode). */
    std::uint64_t wakeupOracleChecks() const { return oracleChecks; }

    /** Statistics. */
    const CoreStats &stats() const { return coreStats; }

    /**
     * Self-register every statistic of the core and its subcomponents
     * (memory hierarchy, fetch/predictor, LSQ) into `reg`. The registry
     * must not outlive the core.
     */
    void registerStats(StatRegistry &reg) const;

    /** The memory hierarchy (cache stats). */
    const MemHierarchy &memoryHierarchy() const { return hierarchy; }

    /** Committed memory state (inspection after a run). */
    const MemImage &committedMem() const { return commitMem; }

    /** The fetch engine (predictor stats). */
    const FetchEngine &fetchEngine() const { return fetch; }

  private:
    struct FrontEntry
    {
        FetchedInst fi;
        Cycle fetchedAt;
    };

    struct PendingFlush
    {
        Cycle at;
        std::uint64_t seq;
        std::uint64_t redirectPc;
    };

    void doFlushes();
    void doRetire();
    void doSelect();
    void doDispatch();
    unsigned pickScheduler(const Inst &inst, bool commit = true);
    void doFetch();

    bool readyToIssue(std::uint64_t seq, unsigned sched);
    bool operandScan(RobEntry &e);
    bool loadMayIssue(std::uint64_t seq, const RobEntry &e);
    void issueInst(std::uint64_t seq);
    bool tryBatchRbIssue(RobEntry &e);
    void flushExecBatch();
    void flushAfter(const RobEntry &branch);
    void recordBypassStats(RobEntry &e);
    void recordTraceBypass(RobEntry &e);

    // Wakeup-array machinery (Figure 8 as an event-driven bitset).
    void produceAndWake(PhysReg r, const ProdAvail &p);
    void armDispatch(const RobEntry &e, SchedulerBank::SlotRef ref);
    void armWakeup(const RobEntry &e, SchedulerBank::SlotRef ref);
    void drainWakeupEvents();
    bool tryIssueWakeup(std::uint64_t seq);
    void attendEntry(std::uint64_t seq, SchedulerBank::SlotRef ref);
    void verifyWakeupOracle();
    bool operandsReadyPure(const RobEntry &e) const;
    bool holeClassPure(const RobEntry &e) const;
    void maybeSkipIdle(Cycle max_cycles, Cycle last_progress);
    void diagnoseDeadlock() const;

    const MachineConfig &config;
    //! Pointer, not reference: reset(prog) rebinds it. Never null.
    const Program *program;

    MemImage commitMem;      //!< architecturally committed memory
    MemHierarchy hierarchy;
    FetchEngine fetch;
    RenameTable rename;
    PhysRegFile regs;
    Scoreboard scoreboard;
    Rob rob;
    SchedulerBank sched;
    LoadStoreQueue lsq;
    SamDecoder samDl1;

    /** Scheduler that dispatched the producer of each physical register
     * (dependence-aware steering heuristic; 0xff = unknown/retired). */
    std::vector<std::uint8_t> producerSched;

    StaticRing<FrontEntry> frontPipe;
    std::vector<PendingFlush> pendingFlushes;
    //! Reused fetch landing buffer (capacity retained across cycles).
    std::vector<FetchedInst> fetchBuf;

    // ------------------------------------------- batched RB execute
    //
    // On the RB machines, plain register-writing carry-free ALU ops
    // selected in a cycle are gathered into this SoA batch and
    // evaluated with ONE kernel call (src/rb/simd/) at the end of
    // doSelect, instead of per-instruction rbAdd calls. Only the
    // *value* is deferred: wakeup broadcast, scoreboard timelines,
    // completion bookkeeping, and stats all happen eagerly at select
    // time in original select order (ProdAvail::make needs no result).
    // Deferral to end-of-select is invisible because no consumer can
    // observe a register value in the cycle it is produced: every
    // latency has early >= 1 select-to-select, so firstAvail >= now+1,
    // retirement reads resultTc cycles later, and squashes fire in
    // doFlushes at the start of a later cycle — after the batch
    // drained. Capacity = numSchedulers x selectWidth (max selections
    // per cycle); storage is fixed at construction (zero-alloc,
    // docs/PERFORMANCE.md).
    struct ExecBatchRef
    {
        std::uint64_t seq;
        bool lword; //!< ADDL/SUBL: extract longword from the sum
    };
    simd::RbBatch execBatch;
    std::vector<ExecBatchRef> execBatchRefs;
    bool rbBatchEnabled = false;

    CoreStats coreStats;
    std::function<void(const RobEntry &)> retireHook;
    trace::Tracer *tracer = nullptr; //!< optional; guarded at each hook
    HostProfiler *profiler = nullptr; //!< optional; see cycleProfiled()

    // ---------------------------------------------- wakeup-array state
    //
    // The in-core half of Figure 8: when a producer is selected, its
    // availability timeline is broadcast to the waiting consumers
    // (`regWaiters`, the CAM match), and once a consumer knows all of its
    // producers, `armWakeup` converts the timelines into a handful of
    // ready/hole bit-transition events on a time-ordered heap — the
    // software image of the interleaved 0/1 shift-register patterns.
    // Slot-generation counters guard events and waiter records against
    // slot reuse after issue or squash.

    /** One scheduled transition of a slot's ready/hole bits. */
    struct WakeupEvent
    {
        Cycle at = 0;
        SchedulerBank::SlotRef ref;
        std::uint32_t gen = 0; //!< slot generation at arm time
        bool ready = false;
        bool hole = false;
    };

    struct EventLater
    {
        bool
        operator()(const WakeupEvent &a, const WakeupEvent &b) const
        {
            return a.at > b.at;
        }
    };

    /**
     * A consumer slot waiting for one producer register's broadcast.
     * Waiters are pool-allocated intrusive list nodes (`waiterPool`,
     * chained per register through `regWaiterHead`) so steady-state
     * dispatch/wakeup churn never touches the heap.
     */
    struct WaiterNode
    {
        SchedulerBank::SlotRef ref;
        std::uint32_t gen = 0;
        std::int32_t next = -1; //!< pool index of next waiter, -1 = end
    };

    /** Pop a node off the free list and link it onto register r. */
    void addWaiter(PhysReg r, SchedulerBank::SlotRef ref);

    std::priority_queue<WakeupEvent, std::vector<WakeupEvent>, EventLater>
        wakeupEvents;
    //! Fixed pool of waiter nodes (one per scheduler-slot operand).
    std::vector<WaiterNode> waiterPool;
    //! Per physical register: head pool index of its waiter list (-1 =
    //! empty).
    std::vector<std::int32_t> regWaiterHead;
    std::int32_t waiterFree = -1; //!< free-list head into waiterPool
    //! Per (scheduler, slot): producers still unknown (not yet issued).
    std::vector<std::uint8_t> slotPendingOps;
    bool useWakeup = false; //!< wakeup array active (vs polled debug path)

    // Host-perf telemetry; deliberately NOT registered statistics, so
    // polled and wakeup StatSnapshots stay bit-identical.
    Cycle idleSkipped = 0;
    std::uint64_t oracleChecks = 0;

    Cycle now = 0;
    unsigned classRr = 0; //!< round-robin cursor for ClassPartition
    std::uint64_t nextSeq = 1;
    bool haltRetired = false;
    //! Retired-instruction budget of the current run() (0 = none),
    //! against coreStats.retired; doRetire stops at the boundary.
    std::uint64_t instLimit = 0;
    bool limitHit = false;
    unsigned frontPipeCap;
    std::uint64_t samCheckCounter = 0;
};

} // namespace rbsim

#endif // RBSIM_CORE_CORE_HH
