// PhysRegFile is header-only; this translation unit anchors the header
// for build-system completeness.
#include "core/regfile.hh"
