#include "core/rename.hh"

namespace rbsim
{

RenameTable::RenameTable(unsigned num_phys_regs)
    : numPhys(num_phys_regs)
{
    assert(num_phys_regs > numArchRegs);
    rat.resize(numArchRegs);
    freeList.reserve(num_phys_regs - numArchRegs);
    reset();
}

void
RenameTable::reset()
{
    for (unsigned i = 0; i < numArchRegs; ++i)
        rat[i] = static_cast<PhysReg>(i);
    freeList.clear();
    // Pop from the back; keep low registers first for readable traces.
    for (unsigned p = numPhys; p-- > numArchRegs;)
        freeList.push_back(static_cast<PhysReg>(p));
}

std::pair<PhysReg, PhysReg>
RenameTable::allocate(unsigned arch)
{
    assert(arch < numArchRegs && arch != zeroReg);
    assert(hasFree());
    const PhysReg fresh = freeList.back();
    freeList.pop_back();
    const PhysReg previous = rat[arch];
    rat[arch] = fresh;
    return {fresh, previous};
}

void
RenameTable::undo(unsigned arch, PhysReg allocated, PhysReg previous)
{
    assert(arch < numArchRegs && arch != zeroReg);
    assert(rat[arch] == allocated && "squash walk out of order");
    rat[arch] = previous;
    freeList.push_back(allocated);
}

void
RenameTable::release(PhysReg previous)
{
    assert(previous != invalidPhysReg);
    freeList.push_back(previous);
}

} // namespace rbsim
