#include "core/exec.hh"

#include "common/bitutil.hh"
#include "isa/eval.hh"
#include "isa/opclass.hh"

namespace rbsim
{

ExecOut
executeInst(const MachineConfig &cfg, const Program &prog,
            const RobEntry &entry, const PhysRegFile &regs)
{
    const Inst &inst = entry.inst;
    ExecOut out;

    auto readTc = [&regs](unsigned arch, PhysReg phys) -> Word {
        return arch == zeroReg ? 0 : regs.readTc(phys);
    };

    Operands ops;
    ops.a = readTc(inst.ra, entry.physA);
    ops.b = inst.useLit ? inst.lit : readTc(inst.rb, entry.physB);
    ops.c = readTc(inst.rc, entry.physC);

    const Addr return_addr = prog.byteAddrOf(entry.pcIndex + 1);

    const bool rb_machine = cfg.kind == MachineKind::RbFull ||
                            cfg.kind == MachineKind::RbLimited;
    bool have_value = false;
    if (rb_machine && inputFormat(inst.op) == Format::RB) {
        auto readRb = [&regs](unsigned arch, PhysReg phys) -> RbNum {
            return arch == zeroReg ? RbNum() : regs.readRb(phys);
        };
        RbOperands rops;
        rops.a = readRb(inst.ra, entry.physA);
        rops.b = inst.useLit ? RbNum::fromTc(inst.lit)
                             : readRb(inst.rb, entry.physB);
        rops.c = readRb(inst.rc, entry.physC);
        const RbEvalResult rres = evalOpRb(inst, rops);
        if (rres.usedRbPath) {
            out.rb = rres.value;
            out.tc = rres.value.toTc();
            out.hasRb = true;
            out.taken = rres.taken;
            out.usedRbPath = true;
            out.bogusCorrected = rres.bogusCorrected;
            have_value = true;
        }
    }
    if (!have_value) {
        const EvalResult res = evalOp(inst, ops, return_addr);
        out.tc = res.value;
        out.taken = res.taken;
    }

    if (isLoad(inst.op) || isStore(inst.op)) {
        const unsigned size = memAccessSize(inst.op);
        out.effAddr = out.tc & ~Addr{size - 1};
        if (isStore(inst.op)) {
            out.storeData = size == 8 ? ops.a : (ops.a & 0xffffffffull);
        }
        // Memory data is two's complement; the address RbNum (if any) was
        // only for SAM indexing, so the destination carries no RB planes.
        out.hasRb = false;
    }

    if (isControl(inst.op)) {
        if (isCondBranch(inst.op)) {
            out.nextPc = out.taken
                ? static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(entry.pcIndex) + 1 +
                      inst.disp)
                : entry.pcIndex + 1;
        } else if (inst.op == Opcode::BR || inst.op == Opcode::BSR) {
            out.taken = true;
            out.nextPc = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(entry.pcIndex) + 1 + inst.disp);
            out.tc = return_addr;
            out.hasRb = false;
        } else { // JMP
            out.taken = true;
            const Word target = ops.b;
            // A wrong-path JMP may hold a non-code target; park the fetch
            // off the end of the code so it stalls until an older branch
            // squashes this path.
            out.nextPc = prog.isCodeAddr(target) ? prog.indexOf(target)
                                                 : prog.code.size();
            out.tc = return_addr;
            out.hasRb = false;
        }
    }

    // Loads: the core overwrites out.tc with the memory data after the
    // access; conditional-move passthrough, arithmetic etc. are final.
    return out;
}

} // namespace rbsim
