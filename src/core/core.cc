#include "core/core.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/bitutil.hh"
#include "isa/opclass.hh"
#include "rb/overflow.hh"
#include "rb/rbalu.hh"
#include "sim/checkpoint.hh"

namespace rbsim
{

OooCore::OooCore(const MachineConfig &cfg, const Program &prog)
    : config(cfg), program(&prog),
      hierarchy(cfg),
      fetch(cfg, prog, hierarchy),
      rename(cfg.physRegs),
      regs(cfg.physRegs),
      scoreboard(cfg.physRegs),
      rob(cfg.robEntries),
      sched(cfg.numSchedulers, cfg.schedEntries, cfg.selectWidth),
      // The LSQ's seq window (oldest-to-youngest in-flight span) is
      // bounded by the ROB capacity: the ROB is dense in seq, so no two
      // live instructions are more than robEntries seqs apart.
      lsq(cfg.lsqEntries, cfg.robEntries),
      samDl1(cfg.dl1.sizeBytes / (cfg.dl1.assoc * cfg.dl1.lineBytes),
             cfg.dl1.lineBytes),
      producerSched(cfg.physRegs, 0xff),
      execBatch(static_cast<std::size_t>(cfg.numSchedulers) *
                cfg.selectWidth),
      rbBatchEnabled(cfg.kind == MachineKind::RbFull ||
                     cfg.kind == MachineKind::RbLimited),
      regWaiterHead(cfg.physRegs, -1),
      slotPendingOps(
          static_cast<std::size_t>(cfg.numSchedulers) * cfg.schedEntries,
          0),
      useWakeup(!cfg.polledScheduler &&
                cfg.schedEntries <= 64 /* wakeupCapable */)
{
    execBatchRefs.reserve(execBatch.capacity());
    execBatchRefs.reserve(execBatch.capacity());
    commitMem.loadProgram(prog);
    frontPipeCap =
        cfg.fetchWidth * (cfg.fetchDecodeDepth + cfg.renameDepth + 4);
    frontPipe.init(frontPipeCap);
    fetchBuf.reserve(cfg.fetchWidth);
    pendingFlushes.reserve(cfg.robEntries);

    // Waiter pool: at most one node per (scheduler slot, source operand)
    // is ever live (dead nodes are reclaimed on broadcast and on flush).
    const std::size_t slot_count =
        static_cast<std::size_t>(cfg.numSchedulers) * cfg.schedEntries;
    waiterPool.resize(slot_count * 3 /* max sources per instruction */);
    for (std::size_t i = 0; i < waiterPool.size(); ++i) {
        waiterPool[i].next = i + 1 < waiterPool.size()
                                 ? static_cast<std::int32_t>(i + 1)
                                 : -1;
    }
    waiterFree = waiterPool.empty() ? -1 : 0;

    // Pre-size the wakeup heap's backing store so steady-state event
    // churn stays off the heap (a slot arms at most a handful of
    // transition events; stale events drain time-bounded).
    {
        std::vector<WakeupEvent> storage;
        storage.reserve(slot_count * 8);
        wakeupEvents = decltype(wakeupEvents)(EventLater{},
                                              std::move(storage));
    }
}

void
OooCore::reset(const Program &prog)
{
    program = &prog;

    commitMem.reset();
    commitMem.loadProgram(prog);
    hierarchy.reset();
    fetch.reset(prog);
    rename.reset();
    regs.reset();
    scoreboard.reset();
    rob.reset();
    sched.reset();
    lsq.reset();
    // samDl1 is stateless (pure address decode).

    std::fill(producerSched.begin(), producerSched.end(), 0xff);
    frontPipe.clear();
    pendingFlushes.clear();
    fetchBuf.clear();
    execBatch.clear();
    execBatchRefs.clear();
    coreStats.reset();

    // Wakeup array: drain the event heap (its reserved backing store
    // survives pops) and re-link the waiter pool free list exactly as
    // the constructor does.
    while (!wakeupEvents.empty())
        wakeupEvents.pop();
    for (std::size_t i = 0; i < waiterPool.size(); ++i) {
        waiterPool[i].next = i + 1 < waiterPool.size()
                                 ? static_cast<std::int32_t>(i + 1)
                                 : -1;
    }
    waiterFree = waiterPool.empty() ? -1 : 0;
    std::fill(regWaiterHead.begin(), regWaiterHead.end(), -1);
    std::fill(slotPendingOps.begin(), slotPendingOps.end(), 0);

    idleSkipped = 0;
    oracleChecks = 0;
    now = 0;
    classRr = 0;
    nextSeq = 1;
    haltRetired = false;
    instLimit = 0;
    limitHit = false;
    samCheckCounter = 0;
}

void
OooCore::restoreArchState(const ArchCheckpoint &ck)
{
    if (ck.pc >= program->code.size())
        throw std::logic_error("cannot resume a halted checkpoint");

    commitMem.restorePages(ck.pages);
    // Right after reset() the rename map is the identity, so the
    // architectural registers land in their home physical registers.
    for (unsigned r = 0; r < numArchRegs; ++r) {
        if (r != zeroReg)
            regs.writeTc(rename.lookup(r), ck.regs[r]);
    }
    fetch.startAt(ck.pc);
    fetch.predictor.restoreState(ck.bpred);
    fetch.btb.restoreEntries(ck.btb);
    fetch.ras.restore(ck.ras);
    hierarchy.il1().restoreTags(ck.il1);
    hierarchy.dl1().restoreTags(ck.dl1);
    hierarchy.l2().restoreTags(ck.l2);
}

void
OooCore::clearStats()
{
    coreStats.reset();
    hierarchy.clearStats();
    fetch.clearStats();
    lsq.clearStats();
}

bool
OooCore::run(Cycle max_cycles, std::uint64_t max_insts)
{
    instLimit = max_insts;
    limitHit = false;
    Cycle last_progress = now;
    std::uint64_t last_retired = 0;
    while (!haltRetired && !limitHit && coreStats.cycles < max_cycles) {
        cycle();
        if (coreStats.retired != last_retired) {
            last_retired = coreStats.retired;
            last_progress = now;
        }
        if (now - last_progress >= config.deadlockCycles) {
            // No retirement progress for an entire watchdog window: a
            // genuine model deadlock. Diagnose and abort the run instead
            // of spinning until max_cycles (the assert that used to live
            // here vanished in -DNDEBUG builds).
            ++coreStats.deadlockAborts;
            diagnoseDeadlock();
            if (tracer)
                traceInFlight("watchdog-deadlock");
            return false;
        }
        // A program that runs off the end of its code without HALT drains
        // and stops.
        if (fetch.parked() && frontPipe.empty() && rob.empty() &&
            pendingFlushes.empty()) {
            haltRetired = true;
        } else if (useWakeup && config.idleSkip) {
            maybeSkipIdle(max_cycles, last_progress);
        }
    }
    return haltRetired;
}

void
OooCore::traceInFlight(const char *why)
{
    if (!tracer || rob.empty())
        return;
    const std::uint64_t head = rob.head().seq;
    for (std::size_t i = 0, n = rob.size(); i < n; ++i)
        tracer->onAbort(rob.get(head + i), now, why);
}

void
OooCore::diagnoseDeadlock() const
{
    std::fprintf(stderr,
                 "rbsim: core deadlock: no retirement progress for %llu "
                 "cycles (cycle=%llu retired=%llu rob=%zu sched=%zu "
                 "lsq=%zu frontPipe=%zu flushes=%zu fetchParked=%d)\n",
                 static_cast<unsigned long long>(config.deadlockCycles),
                 static_cast<unsigned long long>(now),
                 static_cast<unsigned long long>(coreStats.retired),
                 rob.size(), sched.occupancy(), lsq.size(),
                 frontPipe.size(), pendingFlushes.size(),
                 static_cast<int>(fetch.parked()));
}

void
OooCore::maybeSkipIdle(Cycle max_cycles, Cycle last_progress)
{
    // Anything latched for this cycle's select means work now.
    if (sched.anyReady() || sched.anyAttention())
        return;

    Cycle target = neverCycle;

    for (const PendingFlush &f : pendingFlushes)
        target = std::min(target, f.at);

    if (!rob.empty()) {
        const RobEntry &h = rob.head();
        // !complete == !issued here (completion is timestamped at
        // issue), so an incomplete head is covered by the select/event
        // bounds below.
        if (h.complete) {
            if (h.completeCycle <= now)
                return; // retirement due this cycle
            target = std::min(target, h.completeCycle);
        }
    }

    if (!wakeupEvents.empty()) {
        if (wakeupEvents.top().at <= now)
            return;
        target = std::min(target, wakeupEvents.top().at);
    }

    if (!frontPipe.empty()) {
        const FrontEntry &fe = frontPipe.front();
        const Cycle mature = fe.fetchedAt + config.fetchDecodeDepth +
                             config.renameDepth;
        if (mature > now) {
            target = std::min(target, mature);
        } else {
            // A mature head may only be skipped past when provably
            // blocked by a resource that frees via retire, issue, or
            // flush — all already bounded above.
            const Inst &inst = fe.fi.inst;
            const bool is_mem = isLoad(inst.op) || isStore(inst.op);
            const bool blocked =
                !rob.hasSpace() || (is_mem && !lsq.hasSpace()) ||
                pickScheduler(inst, /*commit=*/false) >=
                    config.numSchedulers ||
                (writesDest(inst) && !rename.hasFree());
            if (!blocked)
                return;
        }
    }

    if (!fetch.parked() &&
        frontPipe.size() + config.fetchWidth <= frontPipeCap) {
        // Fetch is live and not backpressured: inert only while stalled
        // on an instruction-cache fill (the miss cost was charged when
        // the miss was discovered, so skipped stall cycles are
        // stat-exact).
        const Cycle resume = fetch.resumeAt();
        if (resume <= now)
            return;
        target = std::min(target, resume);
    }

    // A target of neverCycle with in-flight state means a genuine
    // deadlock: fast-forward straight into the watchdog window. Either
    // way, never overrun the watchdog or the caller's cycle budget, so
    // aborted and budget-capped runs report the same cycle counts as a
    // cycle-by-cycle (polled) simulation.
    target = std::min(target, last_progress + config.deadlockCycles - 1);
    target = std::min(target, max_cycles);
    if (target <= now)
        return;

    const Cycle n = target - now;
    now += n;
    coreStats.cycles += n;
    coreStats.retireSlots.record(0, n);
    coreStats.fetchSlots.record(0, n);
    idleSkipped += n;
}

void
OooCore::cycle()
{
    if (profiler) {
        cycleProfiled();
        return;
    }
    doFlushes();
    const std::uint64_t retired0 = coreStats.retired;
    doRetire();
    coreStats.retireSlots.record(coreStats.retired - retired0);
    doSelect();
    doDispatch();
    const std::uint64_t fetched0 = coreStats.fetched;
    doFetch();
    coreStats.fetchSlots.record(coreStats.fetched - fetched0);
    ++now;
    ++coreStats.cycles;
}

void
OooCore::cycleProfiled()
{
    // Same stage order as cycle(), with a wall-clock timer around each
    // stage. Exec/Lsq/Cosim are timed at their call sites (subsets of
    // Select and Commit respectively; see common/hostprof.hh).
    {
        StageTimer t(profiler, HostProfiler::Flush);
        doFlushes();
    }
    const std::uint64_t retired0 = coreStats.retired;
    {
        StageTimer t(profiler, HostProfiler::Commit);
        doRetire();
    }
    coreStats.retireSlots.record(coreStats.retired - retired0);
    {
        StageTimer t(profiler, HostProfiler::Select);
        doSelect();
    }
    {
        StageTimer t(profiler, HostProfiler::Dispatch);
        doDispatch();
    }
    const std::uint64_t fetched0 = coreStats.fetched;
    {
        StageTimer t(profiler, HostProfiler::Fetch);
        doFetch();
    }
    coreStats.fetchSlots.record(coreStats.fetched - fetched0);
    ++now;
    ++coreStats.cycles;
}

void
OooCore::registerStats(StatRegistry &reg) const
{
    const CoreStats &s = coreStats;
    StatGroup core = statGroup(reg, "core");
    core.counter("cycles", &s.cycles, "simulated cycles");
    core.counter("retired", &s.retired, "instructions retired");
    core.counter("fetched", &s.fetched, "instructions fetched");
    core.counter("dispatched", &s.dispatched,
                 "instructions renamed and dispatched");
    core.counter("issued", &s.issued, "instructions issued");
    core.counter("squashed", &s.squashed,
                 "in-flight instructions squashed");
    core.counter("condBranches", &s.condBranches,
                 "conditional branches retired");
    core.counter("condMispredicts", &s.condMispredicts,
                 "conditional branches mispredicted");
    core.counter("flushes", &s.flushes, "pipeline flushes fired");
    core.counter("jmpFetchStalls", &s.jmpFetchStalls,
                 "mispredicted JMPs that also stalled fetch");
    core.counter("loads", &s.loads, "loads retired");
    core.counter("stores", &s.stores, "stores retired");
    core.counter("loadForwards", &s.loadForwards,
                 "retired loads served by store forwarding");
    core.counter("rbPathExecs", &s.rbPathExecs,
                 "retired instructions executed on the RB datapath");
    core.counter("rbBogusCorrections", &s.rbBogusCorrections,
                 "section 3.5 bogus-overflow corrections");
    core.counter("deadlockAborts", &s.deadlockAborts,
                 "runs aborted by the retirement-progress watchdog");
    core.counter("withBypassedSource", &s.withBypassedSource,
                 "retired instructions with >= 1 bypassed source");
    core.counter("withAnySource", &s.withAnySource,
                 "retired instructions with >= 1 register source");
    core.counter("issueWaitSum", &s.issueWaitSum,
                 "total cycles between dispatch and issue");
    core.counter("holeWaitCycles", &s.holeWaitCycles,
                 "entry-cycles blocked only by availability holes");
    core.vector("table1", s.table1.data(), s.table1.size(),
                "retired instructions per paper Table 1 row");
    StatGroup bypass = statGroup(reg, "bypass");
    bypass.vector("case", s.bypassCase.data(), s.bypassCase.size(),
                  "Figure 13 classification of last-arriving bypassed "
                  "sources");
    bypass.vector("slot", s.bypassSlotUsed.data(),
                  s.bypassSlotUsed.size(),
                  "bypass level serving the last-arriving operand "
                  "(last bucket = register file)");
    core.histogram("issueWait", &s.issueWait,
                   "per-instruction cycles from dispatch to issue");
    core.histogram("holeWait", &s.holeWait,
                   "per-instruction cycles waiting only on holes");
    core.histogram("retireSlots", &s.retireSlots,
                   "instructions retired per cycle");
    core.histogram("fetchSlots", &s.fetchSlots,
                   "instructions fetched per cycle");
    core.formula("ipc", [&s] { return s.ipc(); },
                 "retired instructions per cycle");
    core.formula("branchAccuracy",
                 [&s] {
                     return s.condBranches
                                ? 1.0 - double(s.condMispredicts) /
                                            double(s.condBranches)
                                : 1.0;
                 },
                 "conditional-branch prediction accuracy");
    core.formula("issueWaitMean",
                 [&s] {
                     return s.retired ? double(s.issueWaitSum) /
                                            double(s.retired)
                                      : 0.0;
                 },
                 "mean dispatch-to-issue wait of retired instructions");

    hierarchy.registerStats(reg);
    fetch.registerStats(reg);
    lsq.registerStats(statGroup(reg, "lsq"));
}

// ---------------------------------------------------------------- flush

void
OooCore::doFlushes()
{
    // Fire the oldest due flush this cycle, if any.
    const PendingFlush *due = nullptr;
    for (const PendingFlush &f : pendingFlushes) {
        if (f.at <= now && (!due || f.seq < due->seq))
            due = &f;
    }
    if (!due)
        return;
    const PendingFlush fired = *due;

    assert(rob.contains(fired.seq));
    RobEntry &branch = rob.get(fired.seq);
    flushAfter(branch);

    // Drop this flush and any flush belonging to a squashed instruction.
    pendingFlushes.erase(
        std::remove_if(pendingFlushes.begin(), pendingFlushes.end(),
                       [&fired](const PendingFlush &f) {
                           return f.seq >= fired.seq;
                       }),
        pendingFlushes.end());

    fetch.redirect(fired.redirectPc, now);
    ++coreStats.flushes;
}

void
OooCore::flushAfter(const RobEntry &branch)
{
    // Squash younger instructions, youngest first (rename walk order).
    rob.squashAfter(branch.seq, [this, &branch](RobEntry &e) {
        if (tracer)
            tracer->onSquash(e, now, branch.seq, branch.pcIndex);
        if (e.dest != invalidPhysReg) {
            rename.undo(e.archDest, e.dest, e.prevDest);
            scoreboard.clear(e.dest);
        }
        ++coreStats.squashed;
    });
    sched.squashAfter(branch.seq);
    lsq.squashAfter(branch.seq);
    if (useWakeup) {
        // Squashed consumers' waiter records are now dead (their slot
        // generation no longer matches); unlink them back onto the free
        // list so a hot mispredict loop cannot exhaust the pool. Stale
        // heap events are cheaper to drain lazily (generation-guarded,
        // time-bounded).
        for (std::int32_t &head : regWaiterHead) {
            std::int32_t *link = &head;
            while (*link != -1) {
                WaiterNode &n = waiterPool[*link];
                if (sched.live(n.ref, n.gen)) {
                    link = &n.next;
                } else {
                    const std::int32_t dead = *link;
                    *link = n.next;
                    n.next = waiterFree;
                    waiterFree = dead;
                }
            }
        }
    }
    coreStats.squashed += frontPipe.size();
    frontPipe.clear();

    // Repair the predictor to the state before this branch predicted,
    // then re-apply the architectural outcome.
    fetch.predictor.restoreHistory(branch.snapshot.globalHistory);
    fetch.ras.restore(branch.snapshot);
    const Inst &inst = branch.inst;
    if (isCondBranch(inst.op)) {
        fetch.predictor.speculate(branch.pcIndex, branch.actualTaken);
    } else if (inst.op == Opcode::JMP) {
        if (inst.ra == zeroReg)
            fetch.ras.pop(); // the return consumed its RAS entry
        else
            fetch.ras.push(program->byteAddrOf(branch.pcIndex + 1));
    }

    // Sequence numbers of squashed instructions are recycled so the ROB
    // stays densely indexable.
    nextSeq = branch.seq + 1;
}

// --------------------------------------------------------------- retire

void
OooCore::doRetire()
{
    for (unsigned n = 0; n < config.retireWidth; ++n) {
        if (instLimit && coreStats.retired >= instLimit) {
            limitHit = true; // measurement-window boundary
            return;
        }
        if (rob.empty())
            return;
        RobEntry &e = rob.head();
        if (!e.complete || e.completeCycle > now)
            return;
        // A mispredicted branch must have had its flush fire before it
        // retires (the flush is scheduled at its resolution cycle, which
        // is <= its completion cycle).
        assert(!e.mispredicted ||
               std::none_of(pendingFlushes.begin(), pendingFlushes.end(),
                            [&e](const PendingFlush &f) {
                                return f.seq == e.seq;
                            }));

        if (e.isMemStore) {
            commitMem.write(e.effAddr, e.memSize == 8
                                ? e.storeData
                                : (e.storeData & 0xffffffffull),
                            e.memSize);
            hierarchy.dataWriteTouch(e.effAddr, now);
            lsq.retire(e.seq);
            ++coreStats.stores;
        } else if (e.isMemLoad) {
            lsq.retire(e.seq);
            ++coreStats.loads;
            if (e.loadForwarded)
                ++coreStats.loadForwards;
        }

        if (isCondBranch(e.inst.op)) {
            ++coreStats.condBranches;
            if (e.mispredicted)
                ++coreStats.condMispredicts;
            fetch.predictor.update(e.snapshot.indices, e.actualTaken);
        } else if (e.inst.op == Opcode::JMP && e.inst.ra != zeroReg) {
            fetch.btb.update(e.pcIndex, e.actualNextPc);
        }

        // Retired-instruction tallies.
        ++coreStats.table1[static_cast<unsigned>(table1Row(e.inst.op))];
        if (e.numSrcs > 0)
            ++coreStats.withAnySource;
        if (e.anyBypassed)
            ++coreStats.withBypassedSource;
        if (e.bypassCaseIdx != 0xff)
            ++coreStats.bypassCase[e.bypassCaseIdx];
        if (e.bypassSlot != 0xff) {
            ++coreStats.bypassSlotUsed[std::min<unsigned>(
                e.bypassSlot, coreStats.bypassSlotUsed.size() - 1)];
        }
        if (e.usedRbPath)
            ++coreStats.rbPathExecs;
        if (e.bogusCorrected)
            ++coreStats.rbBogusCorrections;
        coreStats.issueWaitSum += e.issueCycle - e.dispatchCycle - 1;
        coreStats.issueWait.record(static_cast<std::size_t>(
            e.issueCycle - e.dispatchCycle - 1));
        coreStats.holeWait.record(e.holeWait);

        // Trace before the cosim hook so a mismatching instruction is
        // already in the ring buffer when the checker throws.
        if (tracer)
            tracer->onRetire(e, now);

        if (retireHook) {
            StageTimer timer(profiler, HostProfiler::Cosim);
            retireHook(e);
        }

        if (e.dest != invalidPhysReg)
            rename.release(e.prevDest);

        ++coreStats.retired;
        if (e.isHalt)
            haltRetired = true;
        rob.retireHead();
        if (haltRetired)
            return;
    }
}

// --------------------------------------------------------------- select

bool
OooCore::operandScan(RobEntry &e)
{
    bool failed = false;
    bool all_failing_are_holes = true;
    for (unsigned i = 0; i < e.numSrcs; ++i) {
        const ProdAvail &p = scoreboard.of(e.src[i].reg);
        if (operandAvail(config, p, e.src[i].needsTc, e.cluster, now))
            continue;
        failed = true;
        // Store address generation is decoupled from store data: once
        // the base register is ready, publish the address so younger
        // loads can disambiguate (and forward once the data arrives).
        if (e.isMemStore && !e.storeAddrRecorded) {
            const ProdAvail &bp = scoreboard.of(
                e.inst.rb == zeroReg ? PhysReg{0} : e.physB);
            const bool base_ready = e.inst.rb == zeroReg ||
                bp.rfTc <= now || operandAvail(config, bp, false,
                                               e.cluster, now);
            if (base_ready) {
                const Word base =
                    e.inst.rb == zeroReg ? 0 : regs.readTc(e.physB);
                const unsigned size = memAccessSize(e.inst.op);
                const Addr ea =
                    (base +
                     static_cast<Word>(static_cast<SWord>(e.inst.disp))) &
                    ~Addr{size - 1};
                lsq.setAddress(e.seq, ea, size);
                e.storeAddrRecorded = true;
                e.effAddr = ea;
                e.memSize = size;
            }
        }
        // Is this operand in a *hole* (was available earlier, will be
        // again later) rather than simply not produced yet?
        if (p.rfTc == neverCycle ||
            now <= firstAvail(config, p, e.src[i].needsTc, e.cluster,
                              p.early)) {
            all_failing_are_holes = false;
        }
    }
    if (failed) {
        if (all_failing_are_holes) {
            ++coreStats.holeWaitCycles;
            ++e.holeWait;
        }
        return false;
    }
    return true;
}

bool
OooCore::loadMayIssue(std::uint64_t seq, const RobEntry &e)
{
    StageTimer timer(profiler, HostProfiler::Lsq);
    // Loads additionally pass memory disambiguation: all older store
    // addresses known and no partial overlap (DESIGN.md).
    if (!lsq.olderStoreAddrsKnown(seq))
        return false;
    const Word base = e.inst.rb == zeroReg ? 0 : regs.readTc(e.physB);
    const unsigned size = memAccessSize(e.inst.op);
    const Addr ea =
        (base + static_cast<Word>(static_cast<SWord>(e.inst.disp))) &
        ~Addr{size - 1};
    return lsq.searchForLoad(seq, ea, size).mayIssue;
}

bool
OooCore::readyToIssue(std::uint64_t seq, unsigned scheduler)
{
    (void)scheduler;
    RobEntry &e = rob.get(seq);
    if (now <= e.dispatchCycle)
        return false;
    if (!operandScan(e))
        return false;
    if (e.isMemLoad)
        return loadMayIssue(seq, e);
    return true;
}

bool
OooCore::tryIssueWakeup(std::uint64_t seq)
{
    RobEntry &e = rob.get(seq);
    assert(now > e.dispatchCycle);
    // The ready bit already certifies every operand; loads still pass
    // memory disambiguation per scan, exactly like the polled path (the
    // LSQ search counters tick identically).
    if (e.isMemLoad && !loadMayIssue(seq, e))
        return false;
    issueInst(seq);
    return true;
}

void
OooCore::attendEntry(std::uint64_t seq, SchedulerBank::SlotRef ref)
{
    // Per-cycle side effects of scanning a non-ready entry: hole-wait
    // accounting and early store address generation, computed by the
    // same operand walk the polled path runs.
    RobEntry &e = rob.get(seq);
    assert(now > e.dispatchCycle);
    const bool all_ready = operandScan(e);
    assert(!all_ready && "wakeup ready bit missed an available entry");
    (void)all_ready;
    if (e.isMemStore && e.storeAddrRecorded)
        sched.setStoreScan(ref, false);
}

void
OooCore::doSelect()
{
    if (!useWakeup) {
        sched.selectCycle(
            [this](std::uint64_t seq, unsigned s) {
                return readyToIssue(seq, s);
            },
            [this](std::uint64_t seq, unsigned) { issueInst(seq); });
    } else {
        drainWakeupEvents();
        if (config.wakeupOracle)
            verifyWakeupOracle();
        sched.selectWakeup(
            [this](std::uint64_t seq, unsigned) {
                return tryIssueWakeup(seq);
            },
            [this](std::uint64_t seq, unsigned,
                   SchedulerBank::SlotRef ref) { attendEntry(seq, ref); });
    }
    // All RB ALU ops selected this cycle evaluate in one kernel call.
    flushExecBatch();
}

// ---------------------------------------------------------------- wakeup

void
OooCore::drainWakeupEvents()
{
    while (!wakeupEvents.empty() && wakeupEvents.top().at <= now) {
        const WakeupEvent ev = wakeupEvents.top();
        wakeupEvents.pop();
        // Stale events are filtered on (SlotRef, gen), never on the
        // slot's seq: squash recycles sequence numbers, so a slot
        // refilled in the same cycle can hold an identical seq and a
        // seq check (SchedulerBank::holds) would deliver the dead
        // occupant's event to the new one.
        if (!sched.live(ev.ref, ev.gen))
            continue; // issued, squashed, or slot reused
        sched.setReady(ev.ref, ev.ready);
        sched.setHole(ev.ref, ev.hole);
    }
}

void
OooCore::addWaiter(PhysReg r, SchedulerBank::SlotRef ref)
{
    assert(waiterFree != -1 && "waiter pool exhausted");
    const std::int32_t idx = waiterFree;
    WaiterNode &n = waiterPool[idx];
    waiterFree = n.next;
    n.ref = ref;
    n.gen = sched.genOf(ref);
    n.next = regWaiterHead[r];
    regWaiterHead[r] = idx;
}

void
OooCore::armDispatch(const RobEntry &e, SchedulerBank::SlotRef ref)
{
    const std::size_t idx =
        static_cast<std::size_t>(ref.sched) * config.schedEntries +
        ref.slot;
    std::uint8_t pending = 0;
    for (unsigned i = 0; i < e.numSrcs; ++i) {
        if (scoreboard.of(e.src[i].reg).rfTc == neverCycle) {
            ++pending;
            addWaiter(e.src[i].reg, ref);
        }
    }
    slotPendingOps[idx] = pending;
    // Stores want the oldest-first scan's attention until their address
    // reaches the LSQ, even while the data producer is still unknown.
    if (e.isMemStore && !e.storeAddrRecorded)
        sched.setStoreScan(ref, true);
    if (pending == 0)
        armWakeup(e, ref);
}

void
OooCore::produceAndWake(PhysReg r, const ProdAvail &p)
{
    scoreboard.produce(r, p);
    if (!useWakeup)
        return;
    // Walk the register's waiter list, arming consumers whose last
    // unknown producer this is, and return every node to the free list.
    // List order is insertion-reversed, which is behavior-neutral: armed
    // wakeup events land on distinct slots (setReady/setHole commute)
    // and each slot arms exactly once.
    std::int32_t it = regWaiterHead[r];
    regWaiterHead[r] = -1;
    while (it != -1) {
        WaiterNode &w = waiterPool[it];
        const std::int32_t next = w.next;
        if (sched.live(w.ref, w.gen)) {
            const std::size_t idx =
                static_cast<std::size_t>(w.ref.sched) *
                    config.schedEntries +
                w.ref.slot;
            assert(slotPendingOps[idx] > 0);
            if (--slotPendingOps[idx] == 0) {
                armWakeup(rob.get(sched.seqAt(w.ref.sched, w.ref.slot)),
                          w.ref);
            }
        }
        w.next = waiterFree;
        waiterFree = it;
        it = next;
    }
}

void
OooCore::armWakeup(const RobEntry &e, SchedulerBank::SlotRef ref)
{
    // Every producer timeline is now final: render the entry's whole
    // readiness future as ready/hole bit transitions. Before the last
    // producer's first availability (fmax) the entry is plain not-ready
    // (no bits); from fmax to the end of the last availability hole
    // (stable) not-ready means hole-blocked; from stable on it stays
    // ready until selected.
    const Cycle start = now + 1; // polled readiness needs now > dispatch
    Cycle fmax = 0;
    Cycle stable = 0;
    for (unsigned i = 0; i < e.numSrcs; ++i) {
        const ProdAvail &p = scoreboard.of(e.src[i].reg);
        assert(p.rfTc != neverCycle);
        fmax = std::max(fmax, firstAvail(config, p, e.src[i].needsTc,
                                         e.cluster, p.early));
        stable = std::max(stable,
                          stableAvailFrom(config, p, e.src[i].needsTc,
                                          e.cluster));
    }
    const std::uint32_t gen = sched.genOf(ref);
    const Cycle base = std::max(start, fmax);
    if (base >= stable) {
        wakeupEvents.push(WakeupEvent{base, ref, gen, true, false});
        return;
    }
    auto all_avail = [&](Cycle t) {
        for (unsigned i = 0; i < e.numSrcs; ++i) {
            const ProdAvail &p = scoreboard.of(e.src[i].reg);
            if (!operandAvail(config, p, e.src[i].needsTc, e.cluster, t))
                return false;
        }
        return true;
    };
    bool prev_ready = false;
    bool first = true;
    for (Cycle t = base; t <= stable; ++t) {
        const bool r = all_avail(t);
        if (first || r != prev_ready) {
            // For t >= fmax, "blocked only by holes" is exactly
            // !ready: every failing operand has been available before.
            wakeupEvents.push(WakeupEvent{t, ref, gen, r, !r});
            first = false;
            prev_ready = r;
        }
    }
}

void
OooCore::verifyWakeupOracle()
{
    for (unsigned s = 0; s < sched.numSchedulers(); ++s) {
        const std::uint64_t ready_mask = sched.readyMaskOf(s);
        const std::uint64_t hole_mask = sched.holeMaskOf(s);
        for (std::uint64_t m = sched.validMaskOf(s); m; m &= m - 1) {
            const unsigned slot =
                static_cast<unsigned>(std::countr_zero(m));
            const std::uint64_t seq = sched.seqAt(s, slot);
            const RobEntry &e = rob.get(seq);
            const bool bit = ready_mask >> slot & 1;
            const bool pure = operandsReadyPure(e);
            const bool hole_bit = hole_mask >> slot & 1;
            const bool hole_pure = holeClassPure(e);
            ++oracleChecks;
            if (bit != pure || hole_bit != hole_pure) {
                std::fprintf(stderr,
                             "rbsim: wakeup oracle mismatch: cycle=%llu "
                             "seq=%llu sched=%u slot=%u ready=%d/%d "
                             "hole=%d/%d\n",
                             static_cast<unsigned long long>(now),
                             static_cast<unsigned long long>(seq), s,
                             slot, static_cast<int>(bit),
                             static_cast<int>(pure),
                             static_cast<int>(hole_bit),
                             static_cast<int>(hole_pure));
                std::abort();
            }
        }
    }
}

bool
OooCore::operandsReadyPure(const RobEntry &e) const
{
    if (now <= e.dispatchCycle)
        return false;
    for (unsigned i = 0; i < e.numSrcs; ++i) {
        const ProdAvail &p = scoreboard.of(e.src[i].reg);
        if (!operandAvail(config, p, e.src[i].needsTc, e.cluster, now))
            return false;
    }
    return true;
}

bool
OooCore::holeClassPure(const RobEntry &e) const
{
    if (now <= e.dispatchCycle)
        return false;
    bool failed = false;
    for (unsigned i = 0; i < e.numSrcs; ++i) {
        const ProdAvail &p = scoreboard.of(e.src[i].reg);
        if (operandAvail(config, p, e.src[i].needsTc, e.cluster, now))
            continue;
        failed = true;
        if (p.rfTc == neverCycle ||
            now <= firstAvail(config, p, e.src[i].needsTc, e.cluster,
                              p.early)) {
            return false;
        }
    }
    return failed;
}

void
OooCore::recordBypassStats(RobEntry &e)
{
    if (e.numSrcs == 0)
        return;
    // Find the last-arriving source: the operand whose first availability
    // to this consumer is latest (the one that delayed execution).
    unsigned last = 0;
    Cycle last_first = 0;
    bool any_bypassed = false;
    for (unsigned i = 0; i < e.numSrcs; ++i) {
        const ProdAvail &p = scoreboard.of(e.src[i].reg);
        const Cycle first =
            p.rfTc == 0 ? 0
                        : firstAvail(config, p, e.src[i].needsTc,
                                     e.cluster, p.early);
        if (first >= last_first) {
            last_first = first;
            last = i;
        }
        if (servedByBypass(p, now))
            any_bypassed = true;
    }
    e.anyBypassed = any_bypassed;
    const ProdAvail &lp = scoreboard.of(e.src[last].reg);
    if (servedByBypass(lp, now)) {
        e.bypassCaseIdx = static_cast<std::uint8_t>(
            classifyBypass(lp.dual, e.src[last].needsTc));
        const Cycle fmt_first = e.src[last].needsTc ? lp.late : lp.early;
        e.bypassSlot = static_cast<std::uint8_t>(
            std::min<Cycle>(now - std::min(now, fmt_first), 7));
    } else if (lp.rfTc != 0) {
        // Served by the register file after bypass windows passed.
        e.bypassSlot = static_cast<std::uint8_t>(
            std::min<Cycle>(now - std::min(now, lp.early), 7));
    }
}

void
OooCore::recordTraceBypass(RobEntry &e)
{
    // Per-source trace annotation: which delivery path feeds each
    // operand at this issue cycle — the register file, or bypass level
    // k (cycles past the operand's first availability in the consumed
    // format, 1-based), and in which number format it arrives.
    for (unsigned i = 0; i < e.numSrcs; ++i) {
        const ProdAvail &p = scoreboard.of(e.src[i].reg);
        std::uint8_t v = 0; // register file
        if (servedByBypass(p, now)) {
            const bool needs_tc = e.src[i].needsTc;
            const Cycle fmt_first = needs_tc ? p.late : p.early;
            const Cycle level =
                now >= fmt_first ? now - fmt_first + 1 : 1;
            v = static_cast<std::uint8_t>(
                std::min<Cycle>(level, trace::srcLevelMask));
            if (p.dual && !needs_tc)
                v |= trace::srcRbForm;
        }
        e.srcBypass[i] = v;
    }
}

void
OooCore::issueInst(std::uint64_t seq)
{
    RobEntry &e = rob.get(seq);
    assert(!e.issued);
    e.issued = true;
    e.issueCycle = now;
    static const bool trace_issue =
        std::getenv("RBSIM_DEBUG_ISSUE") != nullptr;
    if (trace_issue) {
        std::printf("issue seq=%llu pc=%llu op=%d cyc=%llu cluster=%d sched=%d\n",
            (unsigned long long)e.seq, (unsigned long long)e.pcIndex,
            (int)e.inst.op, (unsigned long long)now, (int)e.cluster, (int)e.sched);
    }
    ++coreStats.issued;

    recordBypassStats(e);
    if (tracer)
        recordTraceBypass(e);

    if (tryBatchRbIssue(e))
        return;

    ExecOut x;
    {
        StageTimer timer(profiler, HostProfiler::Exec);
        x = executeInst(config, *program, e, regs);
    }
    e.usedRbPath = x.usedRbPath;
    e.bogusCorrected = x.bogusCorrected;

    const OpClass cls = opClass(e.inst.op);
    const LatencyPair lat = config.latencyOf(cls);

    if (e.isMemLoad) {
        const unsigned size = memAccessSize(e.inst.op);
        e.effAddr = x.effAddr;
        e.memSize = size;
        LoadSearch search;
        {
            StageTimer timer(profiler, HostProfiler::Lsq);
            lsq.setAddress(seq, x.effAddr, size);
            search = lsq.searchForLoad(seq, x.effAddr, size);
        }
        assert(search.mayIssue);
        Cycle data_ready;
        Word value;
        if (search.forwarded) {
            // Store-to-load forwarding at cache-hit speed.
            data_ready = now + lat.early + config.dl1.latency;
            value = search.data;
            e.loadForwarded = true;
        } else {
            data_ready = hierarchy.dataRead(x.effAddr, now + lat.early);
            value = commitMem.read(x.effAddr, size);
        }
        if (e.inst.op == Opcode::LDL)
            value = static_cast<Word>(sext(value, 32));

        // Periodically cross-check the SAM decoder against the set index
        // the cache would compute with a full addition (section 3.6).
        if ((++samCheckCounter & 1023) == 0) {
            const Word base =
                e.inst.rb == zeroReg ? 0 : regs.readTc(e.physB);
            const Word disp =
                static_cast<Word>(static_cast<SWord>(e.inst.disp));
            const unsigned expect = static_cast<unsigned>(
                ((base + disp) / config.dl1.lineBytes) %
                samDl1.numSets());
            assert(samDl1.decode(base, disp) == expect);
            if (e.inst.rb != zeroReg && regs.holdsRb(e.physB)) {
                assert(samDl1.decodeRb(regs.readRb(e.physB),
                                       static_cast<SWord>(e.inst.disp)) ==
                       expect);
            }
        }

        e.resultTc = value;
        e.wroteReg = e.dest != invalidPhysReg;
        if (e.dest != invalidPhysReg) {
            regs.writeTc(e.dest, value);
            ProdAvail p;
            p.early = p.late = data_ready;
            p.rfTc = data_ready + config.numBypassLevels;
            p.cluster = e.cluster;
            p.dual = false;
            produceAndWake(e.dest, p);
        }
        e.complete = true;
        e.completeCycle = data_ready + config.rfReadDepth;
        return;
    }

    if (e.isMemStore) {
        e.effAddr = x.effAddr;
        e.memSize = memAccessSize(e.inst.op);
        e.storeData = x.storeData;
        if (!e.storeAddrRecorded) {
            lsq.setAddress(seq, x.effAddr, e.memSize);
            e.storeAddrRecorded = true;
        }
        lsq.setStoreData(seq, x.storeData);
        e.complete = true;
        e.completeCycle =
            now + config.rfReadDepth + config.storeCompleteLat;
        return;
    }

    if (e.isCtrl) {
        e.actualTaken = x.taken;
        e.actualNextPc = x.nextPc;
        const Cycle resolve =
            now + config.rfReadDepth + config.branchResolveLat();
        if (e.dest != invalidPhysReg) {
            regs.writeTc(e.dest, x.tc);
            produceAndWake(
                e.dest, ProdAvail::make(now, lat, config.numBypassLevels,
                                        e.cluster));
            e.resultTc = x.tc;
            e.wroteReg = true;
        }
        if (e.actualNextPc != e.predNextPc) {
            e.mispredicted = true;
            pendingFlushes.push_back(
                PendingFlush{resolve, e.seq, e.actualNextPc});
            if (e.fetchStalledJmp)
                ++coreStats.jmpFetchStalls;
        }
        e.complete = true;
        e.completeCycle = resolve;
        return;
    }

    // Plain register-writing (or no-op) instruction.
    if (e.dest != invalidPhysReg) {
        if (x.hasRb)
            regs.writeRb(e.dest, x.rb);
        else
            regs.writeTc(e.dest, x.tc);
        produceAndWake(
            e.dest, ProdAvail::make(now, lat, config.numBypassLevels,
                                    e.cluster));
        e.resultTc = x.tc;
        e.wroteReg = true;
    }
    e.complete = true;
    e.completeCycle = now + config.rfReadDepth + lat.late;
}

bool
OooCore::tryBatchRbIssue(RobEntry &e)
{
    if (!rbBatchEnabled || e.isMemLoad || e.isMemStore || e.isCtrl)
        return false;
    const Inst &inst = e.inst;
    if (inputFormat(inst.op) != Format::RB)
        return false;

    const auto readRb = [this](unsigned arch, PhysReg phys) -> RbNum {
        return arch == zeroReg ? RbNum() : regs.readRb(phys);
    };
    const auto dispTc = [&inst] {
        return static_cast<Word>(static_cast<SWord>(inst.disp));
    };

    unsigned shift = 0;
    bool neg_b = false;
    bool lword = false;
    switch (inst.op) {
      case Opcode::ADDQ: break;
      case Opcode::SUBQ: neg_b = true; break;
      case Opcode::ADDL: lword = true; break;
      case Opcode::SUBL: neg_b = true; lword = true; break;
      case Opcode::S4ADDQ: shift = 2; break;
      case Opcode::S8ADDQ: shift = 3; break;
      case Opcode::S4SUBQ: shift = 2; neg_b = true; break;
      case Opcode::S8SUBQ: shift = 3; neg_b = true; break;
      case Opcode::LDA: case Opcode::LDAH: break;
      default:
        // MULx run their own vectorized reduction; LDIQ is a pure
        // conversion (rbAdd(0, x) would renormalize the planes); the
        // rest have no scaled-add form. All keep the scalar path.
        return false;
    }

    RbNum a, b;
    if (inst.op == Opcode::LDA || inst.op == Opcode::LDAH) {
        // evalOpRb: rbAdd(ops.b, fromTc(disp [<< 16])).
        a = inst.useLit ? RbNum::fromTc(inst.lit)
                        : readRb(inst.rb, e.physB);
        b = RbNum::fromTc(inst.op == Opcode::LDA ? dispTc()
                                                 : dispTc() << 16);
    } else {
        a = readRb(inst.ra, e.physA);
        b = inst.useLit ? RbNum::fromTc(inst.lit)
                        : readRb(inst.rb, e.physB);
        if (neg_b)
            b = rbNegate(b);
    }

    execBatch.pushScaledAdd(a, shift, b);
    execBatchRefs.push_back(ExecBatchRef{e.seq, lword});

    // Every same-cycle-visible effect stays eager and in select order;
    // only the sum itself is deferred to flushExecBatch() at the end of
    // doSelect(). Nothing can read the value this cycle: ProdAvail::make
    // yields firstAvail >= now + 1 (lat.early >= 1), and retirement of
    // this entry is at least rfReadDepth cycles out.
    const LatencyPair lat = config.latencyOf(opClass(inst.op));
    e.usedRbPath = true;
    if (e.dest != invalidPhysReg) {
        produceAndWake(e.dest,
                       ProdAvail::make(now, lat, config.numBypassLevels,
                                       e.cluster));
        e.wroteReg = true;
    }
    e.complete = true;
    e.completeCycle = now + config.rfReadDepth + lat.late;
    return true;
}

void
OooCore::flushExecBatch()
{
    if (execBatchRefs.empty())
        return;
    StageTimer timer(profiler, HostProfiler::Kernel);
    execBatch.run(simd::kernels());
    for (std::size_t i = 0; i < execBatchRefs.size(); ++i) {
        RobEntry &e = rob.get(execBatchRefs[i].seq);
        RbNum sum = execBatch.sum(i);
        if (execBatchRefs[i].lword)
            sum = extractLongword(sum);
        e.bogusCorrected = execBatch.bogusCorrected(i);
        if (e.dest != invalidPhysReg) {
            regs.writeRb(e.dest, sum);
            e.resultTc = sum.toTc();
        }
    }
    execBatch.clear();
    execBatchRefs.clear();
}

// ------------------------------------------------------------- dispatch

void
OooCore::doDispatch()
{
    for (unsigned n = 0; n < config.renameWidth; ++n) {
        if (frontPipe.empty())
            return;
        const FrontEntry &fe = frontPipe.front();
        if (now < fe.fetchedAt + config.fetchDecodeDepth +
                      config.renameDepth)
            return;
        const Inst &inst = fe.fi.inst;
        const bool is_mem = isLoad(inst.op) || isStore(inst.op);

        if (!rob.hasSpace())
            return;
        if (is_mem && !lsq.hasSpace())
            return;
        const unsigned target = pickScheduler(inst);
        if (target >= config.numSchedulers)
            return; // no scheduler can accept (strict RR: target full)
        if (writesDest(inst) && !rename.hasFree())
            return;

        const std::uint64_t seq = nextSeq++;
        RobEntry &e = rob.alloc(seq);
        e.pcIndex = fe.fi.pcIndex;
        e.inst = inst;
        e.dispatchCycle = now;
        e.fetchCycle = fe.fetchedAt;
        e.sched = static_cast<std::uint8_t>(target);
        e.cluster = static_cast<std::uint8_t>(
            target * config.numClusters / config.numSchedulers);
        e.isCtrl = fe.fi.isCtrl;
        e.predTaken = fe.fi.predTaken;
        e.predNextPc =
            fe.fi.stalledJmp ? ~std::uint64_t{0} : fe.fi.predNextPc;
        e.fetchStalledJmp = fe.fi.stalledJmp;
        e.snapshot = fe.fi.snapshot;
        e.isMemLoad = isLoad(inst.op);
        e.isMemStore = isStore(inst.op);
        e.isHalt = inst.op == Opcode::HALT;

        // Source mappings (before destination allocation).
        const SrcRegs srcs = srcRegs(inst);
        e.numSrcs = static_cast<std::uint8_t>(srcs.count);
        for (unsigned i = 0; i < srcs.count; ++i) {
            e.src[i].reg = rename.lookup(srcs.reg[i]);
            e.src[i].needsTc =
                srcFormatReq(inst, i) == Format::TC;
        }
        e.physA = inst.ra == zeroReg ? invalidPhysReg
                                     : rename.lookup(inst.ra);
        e.physB = inst.rb == zeroReg ? invalidPhysReg
                                     : rename.lookup(inst.rb);
        e.physC = inst.rc == zeroReg ? invalidPhysReg
                                     : rename.lookup(inst.rc);

        // Destination allocation.
        const unsigned dst = destReg(inst);
        if (dst != zeroReg) {
            e.archDest = static_cast<std::uint8_t>(dst);
            const auto [fresh, prev] = rename.allocate(dst);
            e.dest = fresh;
            e.prevDest = prev;
            scoreboard.markPending(fresh);
        }

        if (e.dest != invalidPhysReg)
            producerSched[e.dest] = static_cast<std::uint8_t>(target);

        if (is_mem)
            lsq.insert(seq, e.isMemStore);
        const SchedulerBank::SlotRef ref = sched.insert(target, seq);
        sched.advanceSteering();
        if (useWakeup)
            armDispatch(e, ref);
        if (tracer)
            tracer->onDispatch(e);

        frontPipe.pop_front();
        ++coreStats.dispatched;
    }
}

unsigned
OooCore::pickScheduler(const Inst &inst, bool commit)
{
    if (config.steering == Steering::RoundRobinPairs) {
        const unsigned target = sched.steerTarget();
        return sched.hasSpace(target) ? target : config.numSchedulers;
    }

    if (config.steering == Steering::ClassPartition) {
        // Section 4.3's separate-scheduler organization: RB-output
        // instruction classes fill the lower half of the schedulers
        // round-robin, TC-only classes the upper half (wakeup latching
        // between them is already embodied by the late latencies).
        const bool rb_class = outputFormat(inst.op) == Format::RB ||
                              inputFormat(inst.op) == Format::RB;
        const unsigned half = config.numSchedulers / 2;
        const unsigned lo = rb_class ? 0 : half;
        const unsigned n = std::max(1u, half);
        for (unsigned k = 0; k < n; ++k) {
            const unsigned s = lo + (classRr + k) % n;
            if (s < config.numSchedulers && sched.hasSpace(s)) {
                if (commit)
                    classRr = (classRr + k + 1) % n;
                return s;
            }
        }
        return config.numSchedulers; // partition full: stall
    }

    // Dependence-aware: prefer the scheduler that dispatched the first
    // register source's producer; fall back to the least-occupied
    // scheduler with space.
    const SrcRegs srcs = srcRegs(inst);
    for (unsigned i = 0; i < srcs.count; ++i) {
        const PhysReg p = rename.lookup(srcs.reg[i]);
        const std::uint8_t s = producerSched[p];
        if (s != 0xff && sched.hasSpace(s))
            return s;
    }
    unsigned best = config.numSchedulers;
    std::size_t best_occ = ~std::size_t{0};
    for (unsigned s = 0; s < config.numSchedulers; ++s) {
        if (sched.hasSpace(s) && sched.occupancyOf(s) < best_occ) {
            best = s;
            best_occ = sched.occupancyOf(s);
        }
    }
    return best;
}

// ---------------------------------------------------------------- fetch

void
OooCore::doFetch()
{
    if (frontPipe.size() + config.fetchWidth > frontPipeCap)
        return;
    fetchBuf.clear();
    fetch.fetchCycle(now, fetchBuf);
    for (const FetchedInst &fi : fetchBuf) {
        frontPipe.push_back(FrontEntry{fi, now});
        ++coreStats.fetched;
    }
}

} // namespace rbsim
