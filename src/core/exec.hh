/**
 * @file
 * Functional execution of one renamed instruction inside the timing core.
 *
 * On the RB machines, RB-capable instructions execute through the
 * redundant binary datapath (digit-plane operands read from the physical
 * registers, carry-free ALU, section 3.5 normalization); everything else
 * — and everything on the conventional machines — executes in two's
 * complement. Memory instructions produce their (aligned) effective
 * address; the core performs the access.
 */

#ifndef RBSIM_CORE_EXEC_HH
#define RBSIM_CORE_EXEC_HH

#include "core/machine_config.hh"
#include "core/regfile.hh"
#include "core/rob.hh"
#include "isa/program.hh"

namespace rbsim
{

/** Result of functionally executing an instruction. */
struct ExecOut
{
    Word tc = 0;            //!< destination value (TC view)
    RbNum rb;               //!< destination value (RB planes)
    bool hasRb = false;     //!< rb holds genuine digit planes
    bool taken = false;     //!< control: taken?
    std::uint64_t nextPc = 0; //!< control: actual next instruction index
    Addr effAddr = 0;       //!< memory: aligned effective address
    Word storeData = 0;     //!< memory: store data (size-masked)
    bool usedRbPath = false; //!< executed on the RB datapath
    bool bogusCorrected = false; //!< section 3.5 correction fired
};

/**
 * Execute entry's instruction.
 * @param cfg machine (selects the datapath)
 * @param prog program (for control-flow targets)
 * @param entry the renamed instruction (physA/B/C already resolved)
 * @param regs physical register values
 */
ExecOut executeInst(const MachineConfig &cfg, const Program &prog,
                    const RobEntry &entry, const PhysRegFile &regs);

} // namespace rbsim

#endif // RBSIM_CORE_EXEC_HH
