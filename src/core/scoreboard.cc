#include "core/scoreboard.hh"

namespace rbsim
{

const char *
bypassCaseName(BypassCase c)
{
    switch (c) {
      case BypassCase::TcToTc: return "TC result -> TC operation";
      case BypassCase::TcToRb: return "TC result -> RB operation";
      case BypassCase::RbToRb: return "RB result -> RB operation";
      case BypassCase::RbToTc: return "RB result -> TC operation (convert)";
      default: return "<bad>";
    }
}

} // namespace rbsim
