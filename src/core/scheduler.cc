#include "core/scheduler.hh"

namespace rbsim
{

SchedulerBank::SchedulerBank(unsigned num_schedulers, unsigned entries_per,
                             unsigned select_width)
    : banks(num_schedulers), entriesPer(entries_per),
      selectWidth(select_width)
{
    for (Bank &b : banks) {
        if (wakeupCapable()) {
            b.seqs.resize(entries_per, 0);
            b.gens.resize(entries_per, 0);
        } else {
            b.queue.reserve(entries_per);
        }
    }
}

void
SchedulerBank::advanceSteering()
{
    // Groups of two consecutive instructions go to each scheduler in a
    // round-robin manner (paper section 5.1).
    if (++steerCount == 2) {
        steerCount = 0;
        rrIndex = (rrIndex + 1) % banks.size();
    }
}

bool
SchedulerBank::hasSpace(unsigned s) const
{
    assert(s < banks.size());
    return occupancyOf(s) < entriesPer;
}

SchedulerBank::SlotRef
SchedulerBank::insert(unsigned s, std::uint64_t seq)
{
    assert(hasSpace(s));
    Bank &b = banks[s];
    if (!wakeupCapable()) {
        assert(b.queue.empty() || b.queue.back() < seq);
        b.queue.push_back(seq);
        return SlotRef{static_cast<std::uint16_t>(s), 0xffff};
    }
    const std::uint64_t cap =
        entriesPer == 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << entriesPer) - 1;
    const unsigned slot =
        static_cast<unsigned>(std::countr_zero(~b.valid & cap));
    assert(slot < entriesPer);
    b.valid |= std::uint64_t{1} << slot;
    b.seqs[slot] = seq;
    ++b.gens[slot];
    return SlotRef{static_cast<std::uint16_t>(s),
                   static_cast<std::uint16_t>(slot)};
}

void
SchedulerBank::squashAfter(std::uint64_t seq)
{
    for (Bank &b : banks) {
        if (!wakeupCapable()) {
            b.queue.erase(
                std::remove_if(b.queue.begin(), b.queue.end(),
                               [seq](std::uint64_t e) { return e > seq; }),
                b.queue.end());
            continue;
        }
        for (std::uint64_t m = b.valid; m; m &= m - 1) {
            const unsigned slot =
                static_cast<unsigned>(std::countr_zero(m));
            if (b.seqs[slot] > seq)
                removeSlot(b, slot);
        }
    }
    // A flush that emptied the whole window restarts steering at
    // scheduler 0, pair-aligned, so post-flush dispatch is independent
    // of the squashed instructions' steering history.
    if (occupancy() == 0) {
        rrIndex = 0;
        steerCount = 0;
    }
}

std::size_t
SchedulerBank::occupancy() const
{
    std::size_t n = 0;
    for (std::size_t s = 0; s < banks.size(); ++s)
        n += occupancyOf(static_cast<unsigned>(s));
    return n;
}

std::size_t
SchedulerBank::occupancyOf(unsigned s) const
{
    const Bank &b = banks[s];
    return wakeupCapable()
               ? static_cast<std::size_t>(std::popcount(b.valid))
               : b.queue.size();
}

} // namespace rbsim
