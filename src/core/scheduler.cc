#include "core/scheduler.hh"

#include <algorithm>
#include <cassert>

namespace rbsim
{

SchedulerBank::SchedulerBank(unsigned num_schedulers, unsigned entries_per,
                             unsigned select_width)
    : queues(num_schedulers), entriesPer(entries_per),
      selectWidth(select_width)
{
    for (auto &q : queues)
        q.reserve(entries_per);
}

void
SchedulerBank::advanceSteering()
{
    // Groups of two consecutive instructions go to each scheduler in a
    // round-robin manner (paper section 5.1).
    if (++steerCount == 2) {
        steerCount = 0;
        rrIndex = (rrIndex + 1) % queues.size();
    }
}

bool
SchedulerBank::hasSpace(unsigned s) const
{
    assert(s < queues.size());
    return queues[s].size() < entriesPer;
}

void
SchedulerBank::insert(unsigned s, std::uint64_t seq)
{
    assert(hasSpace(s));
    assert(queues[s].empty() || queues[s].back() < seq);
    queues[s].push_back(seq);
}

void
SchedulerBank::selectCycle(
    const std::function<bool(std::uint64_t, unsigned)> &ready,
    const std::function<void(std::uint64_t, unsigned)> &issue)
{
    for (unsigned s = 0; s < queues.size(); ++s) {
        auto &q = queues[s];
        unsigned picked = 0;
        // Oldest-first scan; erase picked entries in one pass.
        std::size_t out = 0;
        std::size_t i = 0;
        for (; i < q.size() && picked < selectWidth; ++i) {
            if (ready(q[i], s)) {
                issue(q[i], s);
                ++picked;
            } else {
                q[out++] = q[i];
            }
        }
        // Once the select ports are exhausted, keep the rest untouched
        // without evaluating readiness.
        for (; i < q.size(); ++i)
            q[out++] = q[i];
        q.resize(out);
    }
}

void
SchedulerBank::squashAfter(std::uint64_t seq)
{
    for (auto &q : queues) {
        q.erase(std::remove_if(q.begin(), q.end(),
                               [seq](std::uint64_t e) { return e > seq; }),
                q.end());
    }
}

std::size_t
SchedulerBank::occupancy() const
{
    std::size_t n = 0;
    for (const auto &q : queues)
        n += q.size();
    return n;
}

} // namespace rbsim
