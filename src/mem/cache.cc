#include "mem/cache.hh"

#include <cassert>

#include "common/bitutil.hh"

namespace rbsim
{

CacheModel::CacheModel(const CacheParams &params)
    : ways(params.assoc), lineSize(params.lineBytes)
{
    assert(params.sizeBytes % (params.assoc * params.lineBytes) == 0);
    sets = params.sizeBytes / (params.assoc * params.lineBytes);
    assert(isPow2(sets) && isPow2(lineSize));
    array.resize(static_cast<std::size_t>(sets) * ways);
}

void
CacheModel::registerStats(StatGroup g) const
{
    g.counter("accesses", &accesses, "tag array accesses");
    g.counter("misses", &misses, "tag array misses");
    g.formula("missRate",
              [this] {
                  return accesses
                             ? double(misses) / double(accesses)
                             : 0.0;
              },
              "misses / accesses");
}

unsigned
CacheModel::setOf(Addr addr) const
{
    return static_cast<unsigned>((addr / lineSize) & (sets - 1));
}

Addr
CacheModel::tagOf(Addr addr) const
{
    return addr / lineSize / sets;
}

bool
CacheModel::probe(Addr addr) const
{
    const unsigned set = setOf(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < ways; ++w) {
        const Way &way = array[static_cast<std::size_t>(set) * ways + w];
        if (way.valid && way.tag == tag)
            return true;
    }
    return false;
}

bool
CacheModel::access(Addr addr)
{
    ++accesses;
    ++useClock;
    const unsigned set = setOf(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < ways; ++w) {
        Way &way = array[static_cast<std::size_t>(set) * ways + w];
        if (way.valid && way.tag == tag) {
            way.lastUse = useClock;
            return true;
        }
    }
    ++misses;
    return false;
}

void
CacheModel::fill(Addr addr)
{
    ++useClock;
    const unsigned set = setOf(addr);
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < ways; ++w) {
        Way &way = array[static_cast<std::size_t>(set) * ways + w];
        if (way.valid && way.tag == tag) {
            way.lastUse = useClock; // already filled by a racing access
            return;
        }
    }
    Way *victim = nullptr;
    for (unsigned w = 0; w < ways; ++w) {
        Way &way = array[static_cast<std::size_t>(set) * ways + w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (!victim || way.lastUse < victim->lastUse)
            victim = &way;
    }
    assert(victim);
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
}

void
CacheModel::reset()
{
    for (Way &w : array)
        w = Way{};
    useClock = 0;
    accesses = 0;
    misses = 0;
}

} // namespace rbsim
