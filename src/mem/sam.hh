/**
 * @file
 * Sum-addressed memory (SAM) decoder model (paper section 3.6; Heald et
 * al., Lynch et al.).
 *
 * A SAM decoder accepts a base and a displacement and asserts one word
 * line using a separate carry-free equality test per row instead of a
 * full carry-propagating addition: row K matches A + B + cin iff
 * P == (G << 1 | cin) over the index field, where P = A ^ B ^ K and
 * G = (A & B) | ((A ^ B) & ~K). A short adder over the line-offset field
 * supplies the carry into the index field.
 *
 * The paper's modified SAM takes a redundant binary base plus a two's
 * complement displacement: a 3:2 carry-save compression folds
 * X+ + (~X-) + 1 + disp into two terms, which feed the conventional SAM.
 * This lets the RB machines index the data cache without ever converting
 * the address to two's complement.
 */

#ifndef RBSIM_MEM_SAM_HH
#define RBSIM_MEM_SAM_HH

#include "common/types.hh"
#include "rb/rbnum.hh"

namespace rbsim
{

/** The SAM decoder for one cache's index field. */
class SamDecoder
{
  public:
    /**
     * @param sets number of cache sets (power of two)
     * @param line_bytes line size (power of two)
     */
    SamDecoder(unsigned sets, unsigned line_bytes);

    /**
     * Decode base + disp with the per-row equality test.
     * Asserts that exactly one row matches.
     * @return the selected set index
     */
    unsigned decode(Addr base, Addr disp) const;

    /**
     * Modified SAM: redundant binary base plus two's complement
     * displacement, via 3:2 carry-save compression in front of the
     * conventional decoder.
     */
    unsigned decodeRb(const RbNum &base, SWord disp) const;

    /** Row-match predicate, exposed for the property tests. */
    bool rowMatches(Addr a, Addr b, unsigned row) const;

    unsigned numSets() const { return sets; }

  private:
    unsigned sets;
    unsigned lineShift;
    unsigned setMask;
};

} // namespace rbsim

#endif // RBSIM_MEM_SAM_HH
