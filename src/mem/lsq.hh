/**
 * @file
 * Load/store queue with address-based disambiguation and store-to-load
 * forwarding.
 *
 * Policy (uniform across machines, documented in DESIGN.md): a load may
 * issue once every older store's address is known; it forwards from the
 * youngest older store that exactly contains its bytes, is delayed behind
 * a partially-overlapping store until that store leaves the queue, and
 * otherwise reads committed memory. Stores write memory at retirement.
 */

#ifndef RBSIM_MEM_LSQ_HH
#define RBSIM_MEM_LSQ_HH

#include <cstdint>
#include <deque>
#include <optional>

#include "common/stats.hh"
#include "common/types.hh"

namespace rbsim
{

/** One queue entry. */
struct LsqEntry
{
    std::uint64_t seq = 0;   //!< program-order sequence number
    bool isStore = false;
    bool addrKnown = false;
    bool dataReady = false;  //!< store data present (stores only)
    Addr addr = 0;           //!< size-aligned effective address
    unsigned size = 0;       //!< 4 or 8
    Word data = 0;           //!< store data (valid once dataReady)
};

/** Outcome of a load's search of older stores. */
struct LoadSearch
{
    bool mayIssue = false;    //!< all older store addresses known, no
                              //!< partial overlap
    bool forwarded = false;   //!< hit a containing older store
    Word data = 0;            //!< forwarded data (size-extracted)
};

/** The queue. */
class LoadStoreQueue
{
  public:
    explicit LoadStoreQueue(unsigned max_entries)
        : capacity(max_entries)
    {}

    /** True if another entry can be inserted. */
    bool hasSpace() const { return entries.size() < capacity; }

    /** Insert at dispatch (program order). */
    void insert(std::uint64_t seq, bool is_store);

    /**
     * Record a computed address. Store address generation is decoupled
     * from store data: a store's address arrives as soon as its base
     * operand is ready, unblocking younger loads' disambiguation.
     */
    void setAddress(std::uint64_t seq, Addr addr, unsigned size);

    /** Record store data once the data operand is ready. */
    void setStoreData(std::uint64_t seq, Word data);

    /**
     * Disambiguation check and forwarding search for the load `seq` with
     * (aligned) address/size. Call only after the load's own address is
     * known.
     */
    LoadSearch searchForLoad(std::uint64_t seq, Addr addr,
                             unsigned size) const;

    /**
     * True when every store older than `seq` has a known address (the
     * load-issue gate, usable before the load's own address exists).
     */
    bool olderStoreAddrsKnown(std::uint64_t seq) const;

    /** Remove the entry for a retired instruction. @return the entry */
    LsqEntry retire(std::uint64_t seq);

    /** Drop all entries younger than `seq` (branch squash). */
    void squashAfter(std::uint64_t seq);

    /** Occupancy (tests). */
    std::size_t size() const { return entries.size(); }

    /** Bind queue stats into `g` (the "lsq" group). */
    void
    registerStats(StatGroup g) const
    {
        g.counter("inserted", &inserted, "entries inserted at dispatch");
        g.counter("searches", &searches,
                  "load disambiguation/forwarding searches");
        g.counter("forwards", &forwards,
                  "searches served by store-to-load forwarding");
    }

  private:
    std::deque<LsqEntry> entries; // ordered by seq
    unsigned capacity;

    std::uint64_t inserted = 0;
    // Counted inside const search paths (wrong-path searches included).
    mutable std::uint64_t searches = 0;
    mutable std::uint64_t forwards = 0;
};

} // namespace rbsim

#endif // RBSIM_MEM_LSQ_HH
