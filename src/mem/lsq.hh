/**
 * @file
 * Load/store queue with address-based disambiguation and store-to-load
 * forwarding.
 *
 * Policy (uniform across machines, documented in DESIGN.md): a load may
 * issue once every older store's address is known; it forwards from the
 * youngest older store that exactly contains its bytes, is delayed behind
 * a partially-overlapping store until that store leaves the queue, and
 * otherwise reads committed memory. Stores write memory at retirement.
 *
 * Hot-path structure (see docs/PERFORMANCE.md): entries live in a
 * power-of-two ring ordered by insertion, and a direct-mapped seq->slot
 * table makes setAddress/setStoreData O(1). The LSQ holds only memory
 * instructions, so seqs inside it are sparse; the table is sized from
 * the in-flight seq window (bounded by the ROB capacity) and validated
 * against the slot's own seq on every lookup. Stores additionally sit
 * in a compact side ring of [lo, hi) address tags, so disambiguation
 * (olderStoreAddrsKnown, via an amortized known-address prefix cursor)
 * and the youngest-first forwarding search walk candidate stores only,
 * never intervening loads.
 */

#ifndef RBSIM_MEM_LSQ_HH
#define RBSIM_MEM_LSQ_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace rbsim
{

/** One queue entry. */
struct LsqEntry
{
    std::uint64_t seq = 0;   //!< program-order sequence number
    bool isStore = false;
    bool addrKnown = false;
    bool dataReady = false;  //!< store data present (stores only)
    Addr addr = 0;           //!< size-aligned effective address
    unsigned size = 0;       //!< 4 or 8
    Word data = 0;           //!< store data (valid once dataReady)
    std::uint64_t storePos = 0; //!< store-ring position (stores only)
};

/** Outcome of a load's search of older stores. */
struct LoadSearch
{
    bool mayIssue = false;    //!< all older store addresses known, no
                              //!< partial overlap
    bool forwarded = false;   //!< hit a containing older store
    Word data = 0;            //!< forwarded data (size-extracted)
};

/** The queue. */
class LoadStoreQueue
{
  public:
    /**
     * @param max_entries queue capacity
     * @param seq_window upper bound on the live seq span (the core
     *        passes its ROB capacity; sequence numbers of entries in
     *        the queue always fall within one in-flight window). The
     *        default accommodates standalone/test use.
     */
    explicit LoadStoreQueue(unsigned max_entries,
                            unsigned seq_window = 4096);

    /** Back to construction state in place: both rings emptied (dead
     * slots are fully overwritten on insert), the known-address prefix
     * cursor rewound, and the registered stat counters zeroed. The
     * seq->pos table needs no cleaning — lookups validate against the
     * live slot's own seq. */
    void
    reset()
    {
        headPos = tailPos = 0;
        storeHeadPos = storeTailPos = 0;
        knownPrefix = 0;
        inserted = searches = forwards = 0;
    }

    /** Zero the stat counters without touching queue contents
     * (measurement windows after a warmup leg). */
    void clearStats() { inserted = searches = forwards = 0; }

    /** True if another entry can be inserted. */
    bool hasSpace() const { return size() < capacity; }

    /** Insert at dispatch (program order). */
    void insert(std::uint64_t seq, bool is_store);

    /**
     * Record a computed address. Store address generation is decoupled
     * from store data: a store's address arrives as soon as its base
     * operand is ready, unblocking younger loads' disambiguation.
     */
    void setAddress(std::uint64_t seq, Addr addr, unsigned size);

    /** Record store data once the data operand is ready. */
    void setStoreData(std::uint64_t seq, Word data);

    /**
     * Disambiguation check and forwarding search for the load `seq` with
     * (aligned) address/size. Call only after the load's own address is
     * known.
     */
    LoadSearch searchForLoad(std::uint64_t seq, Addr addr,
                             unsigned size) const;

    /**
     * True when every store older than `seq` has a known address (the
     * load-issue gate, usable before the load's own address exists).
     */
    bool olderStoreAddrsKnown(std::uint64_t seq) const;

    /** Remove the entry for a retired instruction. @return the entry */
    LsqEntry retire(std::uint64_t seq);

    /** Drop all entries younger than `seq` (branch squash). */
    void squashAfter(std::uint64_t seq);

    /** Occupancy (tests). */
    std::size_t size() const
    { return static_cast<std::size_t>(tailPos - headPos); }

    /** Bind queue stats into `g` (the "lsq" group). */
    void
    registerStats(StatGroup g) const
    {
        g.counter("inserted", &inserted, "entries inserted at dispatch");
        g.counter("searches", &searches,
                  "load disambiguation/forwarding searches");
        g.counter("forwards", &forwards,
                  "searches served by store-to-load forwarding");
    }

  private:
    /** A model-invariant violation: diagnose and abort the run (the
     * assert that used to guard these paths vanished in -DNDEBUG
     * builds and let bad seqs fall through silently). */
    [[noreturn]] void fatal(const char *what, std::uint64_t seq) const;

    /** Entry holding `seq`, or fatal(). */
    LsqEntry &find(const char *who, std::uint64_t seq);

    LsqEntry &at(std::uint64_t pos) { return slots[pos & slotMask]; }
    const LsqEntry &at(std::uint64_t pos) const
    { return slots[pos & slotMask]; }

    // Entry ring: positions [headPos, tailPos) are live, slot of a
    // position is pos & slotMask.
    std::vector<LsqEntry> slots;
    std::uint64_t slotMask = 0;
    std::uint64_t headPos = 0;
    std::uint64_t tailPos = 0;
    unsigned capacity;

    // Direct-mapped seq -> ring position. Valid only when the named
    // position is live and its slot's seq matches (squash/retire need
    // not clean it up).
    std::vector<std::uint64_t> seqToPos;
    std::uint64_t seqMask = 0;

    // Store side ring: compact address tags of the stores in the queue,
    // in insertion (= seq) order. storeAddrHi == 0 means the address is
    // not known yet (a known store always has hi = lo + size > 0; the
    // entry's addrKnown flag stays authoritative).
    std::vector<std::uint64_t> storeSeqs;
    std::vector<Addr> storeAddrLo;
    std::vector<Addr> storeAddrHi;
    std::vector<std::uint8_t> storeDataRdy;
    std::vector<std::uint64_t> storeEntryPos; //!< back-ref into `slots`
    std::uint64_t storeMask = 0;
    std::uint64_t storeHeadPos = 0;
    std::uint64_t storeTailPos = 0;

    // All stores with store-ring position < knownPrefix have a known
    // address. Advanced lazily in olderStoreAddrsKnown (amortized O(1):
    // it only moves forward, except for a clamp at squash), clamped up
    // at retire and down at squash.
    mutable std::uint64_t knownPrefix = 0;

    std::uint64_t inserted = 0;
    // Counted inside const search paths (wrong-path searches included).
    mutable std::uint64_t searches = 0;
    mutable std::uint64_t forwards = 0;
};

} // namespace rbsim

#endif // RBSIM_MEM_LSQ_HH
