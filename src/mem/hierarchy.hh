/**
 * @file
 * Memory hierarchy timing: pipelined L1 caches, a 2-banked unified L2,
 * and a 32-banked main memory (paper Table 2).
 *
 * All timestamps are in core cycles. Bank contention is modeled with
 * per-bank next-free times: an access that finds its bank busy starts
 * when the bank frees. L1 caches are pipelined and un-banked; stores
 * update tags at retirement through a write buffer without stalling.
 */

#ifndef RBSIM_MEM_HIERARCHY_HH
#define RBSIM_MEM_HIERARCHY_HH

#include <vector>

#include "mem/cache.hh"

namespace rbsim
{

/** The three-level hierarchy. */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const MachineConfig &cfg);

    /**
     * Instruction fetch of the line containing addr starting at `now`.
     * @return cycle at which the fetch group is available
     */
    Cycle instFetch(Addr addr, Cycle now);

    /**
     * Data read starting at `now` (the cycle the SAM-decoded access
     * begins). @return cycle at which the data is available
     */
    Cycle dataRead(Addr addr, Cycle now);

    /**
     * Retired-store tag update: allocate the line on miss without
     * stalling (write-buffered), keeping tag state warm for later loads.
     */
    void dataWriteTouch(Addr addr, Cycle now);

    /** Reset tags, banks, and stats. */
    void reset();

    /** Tag arrays (stats inspection). */
    const CacheModel &il1() const { return il1Cache; }
    const CacheModel &dl1() const { return dl1Cache; }
    const CacheModel &l2() const { return l2Cache; }

    /** Accumulated memory (DRAM) accesses. */
    std::uint64_t memAccesses = 0;

    /** Register il1/dl1/l2/mem stats as root groups of `reg`. */
    void registerStats(StatRegistry &reg) const;

  private:
    /** L2 access beginning at `start`; returns data-ready cycle. */
    Cycle accessL2(Addr addr, Cycle start);

    /** DRAM access beginning at `start`; returns data-ready cycle. */
    Cycle accessMem(Addr addr, Cycle start);

    const MachineConfig &config;
    CacheModel il1Cache;
    CacheModel dl1Cache;
    CacheModel l2Cache;
    std::vector<Cycle> l2BankFree;
    std::vector<Cycle> memBankFree;
};

} // namespace rbsim

#endif // RBSIM_MEM_HIERARCHY_HH
