/**
 * @file
 * Memory hierarchy timing: pipelined L1 caches, a 2-banked unified L2,
 * and a 32-banked main memory (paper Table 2).
 *
 * All timestamps are in core cycles. Bank contention is modeled with
 * per-bank next-free times: an access that finds its bank busy starts
 * when the bank frees. L1 caches are pipelined and un-banked; stores
 * update tags at retirement through a write buffer without stalling.
 */

#ifndef RBSIM_MEM_HIERARCHY_HH
#define RBSIM_MEM_HIERARCHY_HH

#include <vector>

#include "mem/cache.hh"

namespace rbsim
{

/** The three-level hierarchy. */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const MachineConfig &cfg);

    /**
     * Instruction fetch of the line containing addr starting at `now`.
     * @return cycle at which the fetch group is available
     */
    Cycle instFetch(Addr addr, Cycle now);

    /**
     * Data read starting at `now` (the cycle the SAM-decoded access
     * begins). @return cycle at which the data is available
     */
    Cycle dataRead(Addr addr, Cycle now);

    /**
     * Retired-store tag update: allocate the line on miss without
     * stalling (write-buffered), keeping tag state warm for later loads.
     */
    void dataWriteTouch(Addr addr, Cycle now);

    /** Reset tags, banks, and stats. */
    void reset();

    /**
     * Functional-touch API (fast-forward warming): walk the same tag
     * hit/miss/fill paths as the timed accessors, but with no bank
     * timestamps, so a functional-only pass keeps the tag arrays exactly
     * as warm as a detailed run would. The owning FastForward engine's
     * own hit/miss counters absorb the accounting.
     */
    void warmInstTouch(Addr addr);
    void warmLoadTouch(Addr addr);
    void warmStoreTouch(Addr addr);

    /** Tag arrays (stats inspection). */
    const CacheModel &il1() const { return il1Cache; }
    const CacheModel &dl1() const { return dl1Cache; }
    const CacheModel &l2() const { return l2Cache; }

    /** Mutable tag arrays (checkpoint restore). */
    CacheModel &il1() { return il1Cache; }
    CacheModel &dl1() { return dl1Cache; }
    CacheModel &l2() { return l2Cache; }

    /** Zero every cache/DRAM counter without touching tags or bank
     * timestamps (measurement windows after a warmup leg). */
    void
    clearStats()
    {
        il1Cache.clearStats();
        dl1Cache.clearStats();
        l2Cache.clearStats();
        memAccesses = 0;
    }

    /** Accumulated memory (DRAM) accesses. */
    std::uint64_t memAccesses = 0;

    /** Register il1/dl1/l2/mem stats as root groups of `reg`. */
    void registerStats(StatRegistry &reg) const;

  private:
    /** L2 access beginning at `start`; returns data-ready cycle. */
    Cycle accessL2(Addr addr, Cycle start);

    /** DRAM access beginning at `start`; returns data-ready cycle. */
    Cycle accessMem(Addr addr, Cycle start);

    const MachineConfig &config;
    CacheModel il1Cache;
    CacheModel dl1Cache;
    CacheModel l2Cache;
    std::vector<Cycle> l2BankFree;
    std::vector<Cycle> memBankFree;
};

} // namespace rbsim

#endif // RBSIM_MEM_HIERARCHY_HH
