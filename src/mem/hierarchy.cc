#include "mem/hierarchy.hh"

#include <algorithm>

namespace rbsim
{

MemHierarchy::MemHierarchy(const MachineConfig &cfg)
    : config(cfg),
      il1Cache(cfg.il1),
      dl1Cache(cfg.dl1),
      l2Cache(cfg.l2),
      l2BankFree(cfg.l2.banks, 0),
      memBankFree(cfg.memBanks, 0)
{
}

void
MemHierarchy::registerStats(StatRegistry &reg) const
{
    il1Cache.registerStats(statGroup(reg, "il1"));
    dl1Cache.registerStats(statGroup(reg, "dl1"));
    l2Cache.registerStats(statGroup(reg, "l2"));
    statGroup(reg, "mem").counter("accesses", &memAccesses,
                                  "DRAM accesses");
}

Cycle
MemHierarchy::accessMem(Addr addr, Cycle start)
{
    ++memAccesses;
    const unsigned bank = static_cast<unsigned>(
        (addr / config.l2.lineBytes) % config.memBanks);
    const Cycle begin = std::max(start, memBankFree[bank]);
    memBankFree[bank] = begin + config.memBankBusy;
    return begin + config.memLatency;
}

Cycle
MemHierarchy::accessL2(Addr addr, Cycle start)
{
    const unsigned bank = l2Cache.bankOf(addr, config.l2.banks);
    const Cycle begin = std::max(start, l2BankFree[bank]);
    l2BankFree[bank] = begin + config.l2.bankBusy;
    if (l2Cache.access(addr))
        return begin + config.l2.latency;
    const Cycle ready = accessMem(addr, begin + config.l2.latency);
    l2Cache.fill(addr);
    return ready;
}

Cycle
MemHierarchy::instFetch(Addr addr, Cycle now)
{
    if (il1Cache.access(addr))
        return now + config.il1.latency;
    const Cycle ready = accessL2(addr, now + config.il1.latency);
    il1Cache.fill(addr);
    return ready;
}

Cycle
MemHierarchy::dataRead(Addr addr, Cycle now)
{
    if (dl1Cache.access(addr))
        return now + config.dl1.latency;
    const Cycle ready = accessL2(addr, now + config.dl1.latency);
    dl1Cache.fill(addr);
    return ready;
}

void
MemHierarchy::dataWriteTouch(Addr addr, Cycle now)
{
    if (!dl1Cache.access(addr)) {
        // Write-allocate through the write buffer: occupy the L2 bank but
        // do not stall retirement.
        accessL2(addr, now + config.dl1.latency);
        dl1Cache.fill(addr);
    }
}

// Warming mirrors instFetch/dataRead/dataWriteTouch tag-for-tag: access
// the L1, walk to L2 and fill both on a miss, count a DRAM access on an
// L2 miss. Timing (bank busy windows, latencies) is the one thing left
// out — a restored core starts its window with zeroed bank timestamps
// anyway, exactly like a reset one.

void
MemHierarchy::warmInstTouch(Addr addr)
{
    if (il1Cache.access(addr))
        return;
    if (!l2Cache.access(addr)) {
        ++memAccesses;
        l2Cache.fill(addr);
    }
    il1Cache.fill(addr);
}

void
MemHierarchy::warmLoadTouch(Addr addr)
{
    if (dl1Cache.access(addr))
        return;
    if (!l2Cache.access(addr)) {
        ++memAccesses;
        l2Cache.fill(addr);
    }
    dl1Cache.fill(addr);
}

void
MemHierarchy::warmStoreTouch(Addr addr)
{
    // Write-allocate, same as dataWriteTouch.
    warmLoadTouch(addr);
}

void
MemHierarchy::reset()
{
    il1Cache.reset();
    dl1Cache.reset();
    l2Cache.reset();
    std::fill(l2BankFree.begin(), l2BankFree.end(), 0);
    std::fill(memBankFree.begin(), memBankFree.end(), 0);
    memAccesses = 0;
}

} // namespace rbsim
