#include "mem/sam.hh"

#include <cassert>

#include "common/bitutil.hh"

namespace rbsim
{

SamDecoder::SamDecoder(unsigned num_sets, unsigned line_bytes)
    : sets(num_sets)
{
    assert(isPow2(num_sets) && isPow2(line_bytes));
    lineShift = log2i(line_bytes);
    setMask = num_sets - 1;
}

bool
SamDecoder::rowMatches(Addr a, Addr b, unsigned row) const
{
    // Carry into the index field from the line-offset field: a short
    // adder over lineShift bits, off the critical path.
    const Addr off_mask = (Addr{1} << lineShift) - 1;
    const Addr cin = ((a & off_mask) + (b & off_mask)) >> lineShift;

    const Addr ai = a >> lineShift;
    const Addr bi = b >> lineShift;
    const Addr k = row;

    // Required carries equal generated carries at every index bit.
    const Addr p = ai ^ bi ^ k;
    const Addr g = (ai & bi) | ((ai ^ bi) & ~k);
    return ((p ^ ((g << 1) | cin)) & setMask) == 0;
}

unsigned
SamDecoder::decode(Addr base, Addr disp) const
{
    unsigned selected = sets; // invalid
    for (unsigned row = 0; row < sets; ++row) {
        if (rowMatches(base, disp, row)) {
            assert(selected == sets && "SAM asserted two word lines");
            selected = row;
        }
    }
    assert(selected < sets && "SAM asserted no word line");
    return selected;
}

unsigned
SamDecoder::decodeRb(const RbNum &base, SWord disp) const
{
    // base value = X+ - X- = X+ + ~X- + 1. Fold the three terms
    // (X+, ~X- and disp) plus the +1 into two with a 3:2 carry-save
    // compressor, exactly the "circuit similar to a carry-save adder"
    // the paper describes in front of the conventional SAM.
    const Addr x = base.plus();
    const Addr y = ~base.minus();
    const Addr z = static_cast<Addr>(disp);

    const Addr sum = x ^ y ^ z;
    const Addr carry = ((x & y) | (x & z) | (y & z)) << 1;

    // The trailing +1 of the negation folds into the displacement term's
    // free carry-in slot: feed it as the second SAM input's +1 by adding
    // it to the carry word (bit 0 of `carry` is always zero).
    return decode(sum, carry | 1);
}

} // namespace rbsim
