#include "mem/lsq.hh"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>

namespace rbsim
{

LoadStoreQueue::LoadStoreQueue(unsigned max_entries, unsigned seq_window)
    : capacity(max_entries)
{
    const std::size_t cap = std::bit_ceil<std::size_t>(
        std::max(1u, max_entries));
    slots.resize(cap);
    slotMask = cap - 1;
    storeSeqs.resize(cap);
    storeAddrLo.resize(cap);
    storeAddrHi.resize(cap);
    storeDataRdy.resize(cap);
    storeEntryPos.resize(cap);
    storeMask = cap - 1;
    const std::size_t win = std::bit_ceil<std::size_t>(
        std::max<std::size_t>(cap, std::max(1u, seq_window)));
    seqToPos.resize(win);
    seqMask = win - 1;
}

void
LoadStoreQueue::fatal(const char *what, std::uint64_t seq) const
{
    std::fprintf(stderr,
                 "rbsim: LSQ %s: seq %llu not in queue (head seq=%llu "
                 "size=%zu) — model invariant violated\n",
                 what, static_cast<unsigned long long>(seq),
                 static_cast<unsigned long long>(
                     size() ? at(headPos).seq : 0),
                 size());
    std::abort();
}

LsqEntry &
LoadStoreQueue::find(const char *who, std::uint64_t seq)
{
    const std::uint64_t pos = seqToPos[seq & seqMask];
    if (pos < headPos || pos >= tailPos || at(pos).seq != seq)
        fatal(who, seq);
    return at(pos);
}

void
LoadStoreQueue::insert(std::uint64_t seq, bool is_store)
{
    if (!hasSpace())
        fatal("insert into a full queue", seq);
    if (size() != 0 && at(tailPos - 1).seq >= seq)
        fatal("out-of-order insert", seq);
    if (size() != 0 && seq - at(headPos).seq > seqMask)
        fatal("insert outside the seq window", seq);
    LsqEntry &e = at(tailPos);
    e = LsqEntry{};
    e.seq = seq;
    e.isStore = is_store;
    seqToPos[seq & seqMask] = tailPos;
    if (is_store) {
        const std::uint64_t si = storeTailPos & storeMask;
        storeSeqs[si] = seq;
        storeAddrLo[si] = 0;
        storeAddrHi[si] = 0;
        storeDataRdy[si] = 0;
        storeEntryPos[si] = tailPos;
        e.storePos = storeTailPos;
        ++storeTailPos;
    }
    ++tailPos;
    ++inserted;
}

void
LoadStoreQueue::setAddress(std::uint64_t seq, Addr addr, unsigned size)
{
    LsqEntry &e = find("setAddress", seq);
    e.addrKnown = true;
    e.addr = addr;
    e.size = size;
    if (e.isStore) {
        const std::uint64_t si = e.storePos & storeMask;
        storeAddrLo[si] = addr;
        storeAddrHi[si] = addr + size;
    }
}

void
LoadStoreQueue::setStoreData(std::uint64_t seq, Word data)
{
    LsqEntry &e = find("setStoreData", seq);
    if (!e.isStore)
        fatal("setStoreData on a load", seq);
    e.dataReady = true;
    e.data = data;
    storeDataRdy[e.storePos & storeMask] = 1;
}

bool
LoadStoreQueue::olderStoreAddrsKnown(std::uint64_t seq) const
{
    while (knownPrefix < storeTailPos &&
           storeAddrHi[knownPrefix & storeMask] != 0) {
        ++knownPrefix;
    }
    return knownPrefix == storeTailPos ||
           storeSeqs[knownPrefix & storeMask] >= seq;
}

LoadSearch
LoadStoreQueue::searchForLoad(std::uint64_t seq, Addr addr,
                              unsigned size) const
{
    LoadSearch out;
    ++searches;
    const Addr lo = addr;
    const Addr hi = addr + size;

    // Stores younger than the load sit contiguously at the store-ring
    // tail; skip them, then walk older stores youngest-first over the
    // compact tag arrays.
    std::uint64_t p = storeTailPos;
    while (p > storeHeadPos && storeSeqs[(p - 1) & storeMask] >= seq)
        --p;
    std::uint64_t hit_pos = 0;
    bool have_hit = false;
    while (p-- > storeHeadPos) {
        const std::uint64_t si = p & storeMask;
        const Addr shi = storeAddrHi[si];
        if (shi == 0)
            return out; // address not known yet: must wait
        const Addr slo = storeAddrLo[si];
        if (shi <= lo || slo >= hi)
            continue; // disjoint
        if (slo <= lo && shi >= hi) {
            if (!storeDataRdy[si])
                return out; // forwardable, but the data is not here yet
            hit_pos = storeEntryPos[si]; // youngest containing store
            have_hit = true;             // decides
            break;
        }
        // Partial overlap: delay until the store drains.
        return out;
    }

    out.mayIssue = true;
    if (have_hit) {
        const LsqEntry &e = at(hit_pos);
        out.forwarded = true;
        ++forwards;
        const unsigned shift =
            static_cast<unsigned>((lo - e.addr) * 8);
        Word v = e.data >> shift;
        if (size == 4)
            v &= 0xffffffffull;
        out.data = v;
    }
    return out;
}

LsqEntry
LoadStoreQueue::retire(std::uint64_t seq)
{
    if (size() == 0 || at(headPos).seq != seq)
        fatal("retire out of order", seq);
    const LsqEntry e = at(headPos);
    if (e.isStore) {
        ++storeHeadPos;
        knownPrefix = std::max(knownPrefix, storeHeadPos);
    }
    ++headPos;
    return e;
}

void
LoadStoreQueue::squashAfter(std::uint64_t seq)
{
    while (size() != 0 && at(tailPos - 1).seq > seq) {
        if (at(tailPos - 1).isStore)
            --storeTailPos;
        --tailPos;
    }
    knownPrefix = std::min(knownPrefix, storeTailPos);
}

} // namespace rbsim
