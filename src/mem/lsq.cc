#include "mem/lsq.hh"

#include <cassert>

namespace rbsim
{

void
LoadStoreQueue::insert(std::uint64_t seq, bool is_store)
{
    assert(hasSpace());
    assert(entries.empty() || entries.back().seq < seq);
    LsqEntry e;
    e.seq = seq;
    e.isStore = is_store;
    entries.push_back(e);
    ++inserted;
}

void
LoadStoreQueue::setAddress(std::uint64_t seq, Addr addr, unsigned size)
{
    for (LsqEntry &e : entries) {
        if (e.seq == seq) {
            e.addrKnown = true;
            e.addr = addr;
            e.size = size;
            return;
        }
    }
    assert(false && "setAddress: seq not in LSQ");
}

void
LoadStoreQueue::setStoreData(std::uint64_t seq, Word data)
{
    for (LsqEntry &e : entries) {
        if (e.seq == seq) {
            assert(e.isStore);
            e.dataReady = true;
            e.data = data;
            return;
        }
    }
    assert(false && "setStoreData: seq not in LSQ");
}

bool
LoadStoreQueue::olderStoreAddrsKnown(std::uint64_t seq) const
{
    for (const LsqEntry &e : entries) {
        if (e.seq >= seq)
            break;
        if (e.isStore && !e.addrKnown)
            return false;
    }
    return true;
}

LoadSearch
LoadStoreQueue::searchForLoad(std::uint64_t seq, Addr addr,
                              unsigned size) const
{
    LoadSearch out;
    ++searches;
    const Addr lo = addr;
    const Addr hi = addr + size;

    // Walk older stores youngest-first.
    const LsqEntry *hit = nullptr;
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        const LsqEntry &e = *it;
        if (e.seq >= seq || !e.isStore)
            continue;
        if (!e.addrKnown)
            return out; // must wait
        const Addr slo = e.addr;
        const Addr shi = e.addr + e.size;
        if (shi <= lo || slo >= hi)
            continue; // disjoint
        if (slo <= lo && shi >= hi) {
            if (!e.dataReady)
                return out; // forwardable, but the data is not here yet
            hit = &e; // youngest containing store decides
            break;
        }
        // Partial overlap: delay until the store drains.
        return out;
    }

    out.mayIssue = true;
    if (hit) {
        out.forwarded = true;
        ++forwards;
        const unsigned shift =
            static_cast<unsigned>((lo - hit->addr) * 8);
        Word v = hit->data >> shift;
        if (size == 4)
            v &= 0xffffffffull;
        out.data = v;
    }
    return out;
}

LsqEntry
LoadStoreQueue::retire(std::uint64_t seq)
{
    assert(!entries.empty());
    assert(entries.front().seq == seq && "LSQ retire out of order");
    const LsqEntry e = entries.front();
    entries.pop_front();
    return e;
}

void
LoadStoreQueue::squashAfter(std::uint64_t seq)
{
    while (!entries.empty() && entries.back().seq > seq)
        entries.pop_back();
}

} // namespace rbsim
