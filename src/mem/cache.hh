/**
 * @file
 * Generic set-associative cache tag model with LRU replacement.
 *
 * Only tags and recency are modeled (data lives in the functional memory
 * image); the timing wrapper in mem/hierarchy.* turns hits and misses into
 * latencies and bank contention.
 */

#ifndef RBSIM_MEM_CACHE_HH
#define RBSIM_MEM_CACHE_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/machine_config.hh"

namespace rbsim
{

/** Set-associative LRU tag array. */
class CacheModel
{
  public:
    /** One way of one set (public for checkpoint serialization). */
    struct Way
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    /** The complete replacement-relevant state of the tag array. */
    struct TagState
    {
        std::vector<Way> array; //!< sets x ways
        std::uint64_t useClock = 0;
    };

    /** Build from geometry parameters. */
    explicit CacheModel(const CacheParams &params);

    /** True if the line containing addr is present (no state change). */
    bool probe(Addr addr) const;

    /**
     * Access the line: on hit, update recency and return true; on miss,
     * return false (call fill() to install).
     */
    bool access(Addr addr);

    /** Install the line, evicting the LRU way. */
    void fill(Addr addr);

    /** Invalidate everything (between benchmark runs). */
    void reset();

    /** Copy out the tag/recency state (checkpoint capture). */
    TagState
    saveTags() const
    {
        return TagState{array, useClock};
    }

    /**
     * Install a previously saved tag state (checkpoint restore). The
     * geometry must match; stats counters are left untouched so a
     * restored measurement window starts clean.
     */
    void
    restoreTags(const TagState &state)
    {
        assert(state.array.size() == array.size() &&
               "cache tag state geometry mismatch");
        array = state.array;
        useClock = state.useClock;
    }

    /** Zero the hit/miss counters without touching tags (measurement
     * windows after a warmup leg). */
    void clearStats() { accesses = misses = 0; }

    /** Geometry introspection. */
    unsigned numSets() const { return sets; }
    unsigned numWays() const { return ways; }
    unsigned lineBytes() const { return lineSize; }

    /** Bank index of an address (line interleaved). */
    unsigned
    bankOf(Addr addr, unsigned banks) const
    {
        return static_cast<unsigned>((addr / lineSize) % banks);
    }

    /** Accumulated stats. */
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    /** Bind this cache's stats into `g` (e.g. the "dl1" group). */
    void registerStats(StatGroup g) const;

  private:
    unsigned setOf(Addr addr) const;
    Addr tagOf(Addr addr) const;

    unsigned sets;
    unsigned ways;
    unsigned lineSize;
    std::vector<Way> array; // sets x ways
    std::uint64_t useClock = 0;
};

} // namespace rbsim

#endif // RBSIM_MEM_CACHE_HH
