#include "trace/tracer.hh"

#include <sstream>

#include "isa/disasm.hh"

namespace rbsim::trace
{

TraceEntry
Tracer::build(const RobEntry &e, Cycle now) const
{
    TraceEntry t;
    t.id = e.traceId;
    t.seq = e.seq;
    t.pc = opts.codeBase + 4 * e.pcIndex;
    t.fetch = e.fetchCycle;
    t.decode = e.fetchCycle + opts.decodeDepth;
    t.rename = t.decode + opts.renameDepth;
    t.dispatch = e.dispatchCycle;
    // A squashed instruction may have issued but not yet reached its
    // (future-dated) completion cycle: clamp to what really happened.
    t.issued = e.issued && e.issueCycle <= now;
    t.issue = t.issued ? e.issueCycle : 0;
    t.completed = e.complete && e.completeCycle <= now;
    t.complete = t.completed ? e.completeCycle : 0;
    t.isStore = e.isMemStore;

    std::ostringstream text;
    text << disassemble(e.inst, e.pcIndex);
    for (unsigned i = 0; i < e.numSrcs; ++i) {
        const std::uint8_t v = e.srcBypass[i];
        if (v == srcUnknown)
            continue;
        text << " s" << i << '=';
        const unsigned level = v & srcLevelMask;
        if (level == 0)
            text << "RF";
        else
            text << "BYP" << level;
        text << (v & srcRbForm ? "/RB" : "/TC");
    }
    if (e.holeWait)
        text << " hole=" << e.holeWait;
    if (e.loadForwarded)
        text << " stlf";
    if (e.usedRbPath)
        text << " rb";
    if (e.bogusCorrected)
        text << " bogusfix";
    if (e.mispredicted)
        text << " mispred";
    t.text = text.str();
    return t;
}

void
Tracer::onRetire(RobEntry &e, Cycle now)
{
    if (e.traceId == 0)
        return; // dispatched before the tracer was attached
    TraceEntry t = build(e, now);
    t.retire = now;
    e.traceId = 0;
    finalize(std::move(t));
}

void
Tracer::onSquash(RobEntry &e, Cycle now, std::uint64_t causeSeq,
                 std::uint64_t causePc)
{
    if (e.traceId == 0)
        return;
    TraceEntry t = build(e, now);
    t.squashed = true;
    std::ostringstream cause;
    cause << " SQUASHED@" << now << " by seq=" << causeSeq
          << " pc=" << causePc;
    t.text += cause.str();
    e.traceId = 0;
    finalize(std::move(t));
}

void
Tracer::onAbort(RobEntry &e, Cycle now, const char *why)
{
    if (e.traceId == 0)
        return; // already finalized (e.g. retired into a throwing hook)
    TraceEntry t = build(e, now);
    t.squashed = true;
    t.text += std::string(" IN-FLIGHT(") + why + ")";
    e.traceId = 0;
    finalize(std::move(t));
}

void
Tracer::finalize(TraceEntry &&t)
{
    ++numFinalized;
    pendingEmit.emplace(t.id, std::move(t));
    // Emit the contiguous dispatch-order prefix.
    for (auto it = pendingEmit.begin();
         it != pendingEmit.end() && it->first == nextEmit;
         it = pendingEmit.erase(it), ++nextEmit) {
        emit(it->second);
    }
}

void
Tracer::emit(const TraceEntry &t)
{
    if (opts.stream)
        *opts.stream << render(t, opts.ticksPerCycle);
    if (opts.ringCap) {
        ringBuf.push_back(t);
        while (ringBuf.size() > opts.ringCap)
            ringBuf.pop_front();
    }
}

void
Tracer::finish()
{
    // Ids can have gaps here only if some in-flight entries were never
    // reported (traceInFlight not called); emit what we have, in order.
    for (auto &[id, entry] : pendingEmit)
        emit(entry);
    pendingEmit.clear();
    nextEmit = nextId;
    if (opts.stream)
        opts.stream->flush();
}

std::string
Tracer::render(const TraceEntry &e, Cycle ticksPerCycle)
{
    const auto tick = [ticksPerCycle](Cycle c, bool reached) -> Cycle {
        return reached ? (c + 1) * ticksPerCycle : 0;
    };
    std::ostringstream os;
    os << "O3PipeView:fetch:" << tick(e.fetch, true) << ":0x" << std::hex
       << e.pc << std::dec << ":0:" << e.id << ':' << e.text << '\n';
    os << "O3PipeView:decode:" << tick(e.decode, true) << '\n';
    os << "O3PipeView:rename:" << tick(e.rename, true) << '\n';
    os << "O3PipeView:dispatch:" << tick(e.dispatch, true) << '\n';
    os << "O3PipeView:issue:" << tick(e.issue, e.issued) << '\n';
    os << "O3PipeView:complete:" << tick(e.complete, e.completed) << '\n';
    const Cycle retire_tick = tick(e.retire, !e.squashed);
    os << "O3PipeView:retire:" << retire_tick << ":store:"
       << (e.isStore && !e.squashed ? retire_tick : 0) << '\n';
    return os.str();
}

std::string
Tracer::renderRing() const
{
    std::string out;
    for (const TraceEntry &t : ringBuf)
        out += render(t, opts.ticksPerCycle);
    return out;
}

} // namespace rbsim::trace
