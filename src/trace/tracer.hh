/**
 * @file
 * Per-instruction pipeline lifecycle tracing.
 *
 * Each dynamic instruction that reaches dispatch is assigned a
 * monotonically increasing trace id; when it retires, is squashed, or is
 * stranded by an aborted run, its full lifecycle (fetch through retire,
 * plus rbsim-specific annotations: per-source bypass level and format,
 * hole-wait cycles, squash cause) is rendered as one gem5
 * `O3PipeView`-format block, loadable in the Konata pipeline viewer.
 *
 * Two sinks hang behind the one class: an optional text stream (written
 * in trace-id order, i.e. dispatch order, as O3PipeView requires) and an
 * optional in-memory ring buffer of the last N instructions, dumped on
 * cosim mismatch, watchdog abort, or fuzz-oracle failure.
 *
 * Tracing is zero-cost when disabled: the core holds a raw
 * `trace::Tracer *` (nullptr by default) and every hook sits behind a
 * single pointer test — no virtual calls, no allocation, no stats. A
 * tracer must be attached before the core runs and adds no registered
 * statistics, so traced and untraced runs produce bit-identical
 * StatSnapshots.
 */

#ifndef RBSIM_TRACE_TRACER_HH
#define RBSIM_TRACE_TRACER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>

#include "common/types.hh"
#include "core/rob.hh"

namespace rbsim::trace
{

// Encoding of RobEntry::srcBypass (one byte per source operand).
constexpr std::uint8_t srcUnknown = 0xff; //!< never issued / untraced
constexpr std::uint8_t srcLevelMask = 0x0f; //!< bypass level; 0 = RF
constexpr std::uint8_t srcRbForm = 0x40; //!< arrived in redundant binary

/** One finalized dynamic instruction, ready to render. */
struct TraceEntry
{
    std::uint64_t id = 0;  //!< dispatch-order trace id (unique)
    std::uint64_t seq = 0; //!< ROB sequence number (recycled on squash)
    Addr pc = 0;           //!< byte address of the instruction

    Cycle fetch = 0;
    Cycle decode = 0;
    Cycle rename = 0;
    Cycle dispatch = 0;
    Cycle issue = 0;    //!< valid iff `issued`
    Cycle complete = 0; //!< valid iff `completed`
    Cycle retire = 0;   //!< valid iff neither squashed nor aborted

    bool issued = false;
    bool completed = false;
    bool squashed = false; //!< squashed or stranded at abort
    bool isStore = false;

    //! Disassembly plus annotations (bypass levels, hole waits, squash
    //! cause) — becomes the instruction text Konata displays.
    std::string text;
};

/**
 * The tracer. Constructed with a sink configuration, attached to an
 * OooCore (OooCore::attachTracer) before the run; call finish() after
 * the run (and OooCore::traceInFlight first, if the run did not drain
 * cleanly) to flush instructions still buffered for in-order emission.
 */
class Tracer
{
  public:
    struct Options
    {
        std::ostream *stream = nullptr; //!< O3PipeView text sink
        std::size_t ringCap = 0;        //!< keep last N entries (0 = off)
        //! O3PipeView ticks per simulated cycle. Stage ticks are
        //! (cycle + 1) * ticksPerCycle so tick 0 can mean "stage never
        //! happened" (gem5's convention for squashed instructions) even
        //! for instructions fetched at cycle 0.
        Cycle ticksPerCycle = 1000;
        Addr codeBase = 0x10000;  //!< Program::codeBase of the run
        unsigned decodeDepth = 6; //!< MachineConfig::fetchDecodeDepth
        unsigned renameDepth = 2; //!< MachineConfig::renameDepth
    };

    explicit Tracer(const Options &opts_) : opts(opts_) {}

    // ------------------------------------------------------ core hooks

    /** Dispatch: assign the entry its trace id. */
    void
    onDispatch(RobEntry &e)
    {
        e.traceId = nextId++;
    }

    /** In-order retirement at cycle `now` (called before the cosim
     * retire hook, so a mismatching instruction is already in the ring
     * when the checker throws). */
    void onRetire(RobEntry &e, Cycle now);

    /** Squash at cycle `now`, caused by the branch with sequence number
     * `causeSeq` at instruction index `causePc`. */
    void onSquash(RobEntry &e, Cycle now, std::uint64_t causeSeq,
                  std::uint64_t causePc);

    /** An instruction stranded in flight when the run aborted (watchdog
     * deadlock, cosim mismatch, cycle budget). Idempotent per entry. */
    void onAbort(RobEntry &e, Cycle now, const char *why);

    /** Flush entries still held for in-order emission and the stream.
     * Idempotent; rendering after finish() is still allowed. */
    void finish();

    // ------------------------------------------------------------ sinks

    /** The ring buffer (oldest first). */
    const std::deque<TraceEntry> &ring() const { return ringBuf; }

    /** Render the whole ring buffer as one O3PipeView document. */
    std::string renderRing() const;

    /** Instructions finalized (retired + squashed + aborted) so far. */
    std::uint64_t finalized() const { return numFinalized; }

    /** Render one entry as an O3PipeView block (7 lines). */
    static std::string render(const TraceEntry &e, Cycle ticksPerCycle);

  private:
    TraceEntry build(const RobEntry &e, Cycle now) const;
    void finalize(TraceEntry &&t);
    void emit(const TraceEntry &t);

    Options opts;
    std::uint64_t nextId = 1;
    std::uint64_t nextEmit = 1;
    std::uint64_t numFinalized = 0;
    //! Finalization is out of order (squash walks youngest-first while
    //! older instructions are still in flight); O3PipeView wants fetch
    //! order. Buffer by id and emit the contiguous prefix.
    std::map<std::uint64_t, TraceEntry> pendingEmit;
    std::deque<TraceEntry> ringBuf;
};

} // namespace rbsim::trace

#endif // RBSIM_TRACE_TRACER_HH
