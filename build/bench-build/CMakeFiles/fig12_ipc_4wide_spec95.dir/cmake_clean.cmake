file(REMOVE_RECURSE
  "../bench/fig12_ipc_4wide_spec95"
  "../bench/fig12_ipc_4wide_spec95.pdb"
  "CMakeFiles/fig12_ipc_4wide_spec95.dir/fig12_ipc_4wide_spec95.cc.o"
  "CMakeFiles/fig12_ipc_4wide_spec95.dir/fig12_ipc_4wide_spec95.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ipc_4wide_spec95.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
