# Empty compiler generated dependencies file for fig12_ipc_4wide_spec95.
# This may be replaced when dependencies are built.
