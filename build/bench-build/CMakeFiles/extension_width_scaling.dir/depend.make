# Empty dependencies file for extension_width_scaling.
# This may be replaced when dependencies are built.
