file(REMOVE_RECURSE
  "../bench/extension_width_scaling"
  "../bench/extension_width_scaling.pdb"
  "CMakeFiles/extension_width_scaling.dir/extension_width_scaling.cc.o"
  "CMakeFiles/extension_width_scaling.dir/extension_width_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_width_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
