# Empty compiler generated dependencies file for fig11_ipc_4wide_spec2000.
# This may be replaced when dependencies are built.
