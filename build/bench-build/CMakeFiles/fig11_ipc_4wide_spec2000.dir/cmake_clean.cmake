file(REMOVE_RECURSE
  "../bench/fig11_ipc_4wide_spec2000"
  "../bench/fig11_ipc_4wide_spec2000.pdb"
  "CMakeFiles/fig11_ipc_4wide_spec2000.dir/fig11_ipc_4wide_spec2000.cc.o"
  "CMakeFiles/fig11_ipc_4wide_spec2000.dir/fig11_ipc_4wide_spec2000.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_ipc_4wide_spec2000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
