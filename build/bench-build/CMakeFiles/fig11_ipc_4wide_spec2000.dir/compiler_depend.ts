# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig11_ipc_4wide_spec2000.
