file(REMOVE_RECURSE
  "../bench/ablation_steering"
  "../bench/ablation_steering.pdb"
  "CMakeFiles/ablation_steering.dir/ablation_steering.cc.o"
  "CMakeFiles/ablation_steering.dir/ablation_steering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
