# Empty compiler generated dependencies file for ablation_steering.
# This may be replaced when dependencies are built.
