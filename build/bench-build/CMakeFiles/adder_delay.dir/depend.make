# Empty dependencies file for adder_delay.
# This may be replaced when dependencies are built.
