file(REMOVE_RECURSE
  "../bench/adder_delay"
  "../bench/adder_delay.pdb"
  "CMakeFiles/adder_delay.dir/adder_delay.cc.o"
  "CMakeFiles/adder_delay.dir/adder_delay.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
