file(REMOVE_RECURSE
  "../bench/fig13_bypass_cases"
  "../bench/fig13_bypass_cases.pdb"
  "CMakeFiles/fig13_bypass_cases.dir/fig13_bypass_cases.cc.o"
  "CMakeFiles/fig13_bypass_cases.dir/fig13_bypass_cases.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_bypass_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
