# Empty dependencies file for fig13_bypass_cases.
# This may be replaced when dependencies are built.
