# Empty dependencies file for fig10_ipc_8wide_spec95.
# This may be replaced when dependencies are built.
