file(REMOVE_RECURSE
  "../bench/fig10_ipc_8wide_spec95"
  "../bench/fig10_ipc_8wide_spec95.pdb"
  "CMakeFiles/fig10_ipc_8wide_spec95.dir/fig10_ipc_8wide_spec95.cc.o"
  "CMakeFiles/fig10_ipc_8wide_spec95.dir/fig10_ipc_8wide_spec95.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ipc_8wide_spec95.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
