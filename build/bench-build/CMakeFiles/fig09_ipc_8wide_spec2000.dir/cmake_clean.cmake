file(REMOVE_RECURSE
  "../bench/fig09_ipc_8wide_spec2000"
  "../bench/fig09_ipc_8wide_spec2000.pdb"
  "CMakeFiles/fig09_ipc_8wide_spec2000.dir/fig09_ipc_8wide_spec2000.cc.o"
  "CMakeFiles/fig09_ipc_8wide_spec2000.dir/fig09_ipc_8wide_spec2000.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ipc_8wide_spec2000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
