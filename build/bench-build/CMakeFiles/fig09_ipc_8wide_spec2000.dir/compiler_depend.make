# Empty compiler generated dependencies file for fig09_ipc_8wide_spec2000.
# This may be replaced when dependencies are built.
