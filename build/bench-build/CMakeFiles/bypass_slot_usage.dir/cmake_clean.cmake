file(REMOVE_RECURSE
  "../bench/bypass_slot_usage"
  "../bench/bypass_slot_usage.pdb"
  "CMakeFiles/bypass_slot_usage.dir/bypass_slot_usage.cc.o"
  "CMakeFiles/bypass_slot_usage.dir/bypass_slot_usage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bypass_slot_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
