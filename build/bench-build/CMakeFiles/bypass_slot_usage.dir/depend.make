# Empty dependencies file for bypass_slot_usage.
# This may be replaced when dependencies are built.
