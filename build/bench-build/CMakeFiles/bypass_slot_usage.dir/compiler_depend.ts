# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bypass_slot_usage.
