file(REMOVE_RECURSE
  "../bench/table3_latencies"
  "../bench/table3_latencies.pdb"
  "CMakeFiles/table3_latencies.dir/table3_latencies.cc.o"
  "CMakeFiles/table3_latencies.dir/table3_latencies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_latencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
