# Empty compiler generated dependencies file for table3_latencies.
# This may be replaced when dependencies are built.
