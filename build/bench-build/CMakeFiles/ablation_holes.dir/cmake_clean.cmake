file(REMOVE_RECURSE
  "../bench/ablation_holes"
  "../bench/ablation_holes.pdb"
  "CMakeFiles/ablation_holes.dir/ablation_holes.cc.o"
  "CMakeFiles/ablation_holes.dir/ablation_holes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_holes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
