# Empty dependencies file for ablation_holes.
# This may be replaced when dependencies are built.
