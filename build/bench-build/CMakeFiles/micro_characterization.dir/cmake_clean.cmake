file(REMOVE_RECURSE
  "../bench/micro_characterization"
  "../bench/micro_characterization.pdb"
  "CMakeFiles/micro_characterization.dir/micro_characterization.cc.o"
  "CMakeFiles/micro_characterization.dir/micro_characterization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
