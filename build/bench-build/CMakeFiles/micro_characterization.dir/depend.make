# Empty dependencies file for micro_characterization.
# This may be replaced when dependencies are built.
