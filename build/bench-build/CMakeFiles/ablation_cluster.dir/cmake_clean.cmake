file(REMOVE_RECURSE
  "../bench/ablation_cluster"
  "../bench/ablation_cluster.pdb"
  "CMakeFiles/ablation_cluster.dir/ablation_cluster.cc.o"
  "CMakeFiles/ablation_cluster.dir/ablation_cluster.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
