file(REMOVE_RECURSE
  "../bench/fig14_limited_bypass"
  "../bench/fig14_limited_bypass.pdb"
  "CMakeFiles/fig14_limited_bypass.dir/fig14_limited_bypass.cc.o"
  "CMakeFiles/fig14_limited_bypass.dir/fig14_limited_bypass.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_limited_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
