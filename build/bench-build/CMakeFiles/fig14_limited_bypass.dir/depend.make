# Empty dependencies file for fig14_limited_bypass.
# This may be replaced when dependencies are built.
