# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rb_tour "/root/repo/build/examples/rb_arithmetic_tour")
set_tests_properties(example_rb_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline_diagram "/root/repo/build/examples/pipeline_diagram")
set_tests_properties(example_pipeline_diagram PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sam_demo "/root/repo/build/examples/sam_cache_demo")
set_tests_properties(example_sam_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_workload_explorer "/root/repo/build/examples/workload_explorer" "crafty" "rbfull")
set_tests_properties(example_workload_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_machine_compare "/root/repo/build/examples/machine_compare" "u-depchain")
set_tests_properties(example_machine_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_run_asm "/root/repo/build/examples/run_asm" "/root/repo/examples/asm/fib.s" "--machine" "rblim" "--width" "4" "--dump-mem" "0x200e8,1")
set_tests_properties(example_run_asm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_run_asm_gcd "/root/repo/build/examples/run_asm" "/root/repo/examples/asm/gcd.s" "--machine" "ideal" "--dump-mem" "0x20000,1")
set_tests_properties(example_run_asm_gcd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_run_asm_memcopy "/root/repo/build/examples/run_asm" "/root/repo/examples/asm/memcopy.s" "--steer-dep" "--dump-mem" "0x22000,1")
set_tests_properties(example_run_asm_memcopy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
