# Empty dependencies file for machine_compare.
# This may be replaced when dependencies are built.
