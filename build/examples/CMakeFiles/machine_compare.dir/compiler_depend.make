# Empty compiler generated dependencies file for machine_compare.
# This may be replaced when dependencies are built.
