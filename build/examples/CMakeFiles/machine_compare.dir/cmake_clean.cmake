file(REMOVE_RECURSE
  "CMakeFiles/machine_compare.dir/machine_compare.cpp.o"
  "CMakeFiles/machine_compare.dir/machine_compare.cpp.o.d"
  "machine_compare"
  "machine_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
