file(REMOVE_RECURSE
  "CMakeFiles/sam_cache_demo.dir/sam_cache_demo.cpp.o"
  "CMakeFiles/sam_cache_demo.dir/sam_cache_demo.cpp.o.d"
  "sam_cache_demo"
  "sam_cache_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sam_cache_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
