# Empty dependencies file for sam_cache_demo.
# This may be replaced when dependencies are built.
