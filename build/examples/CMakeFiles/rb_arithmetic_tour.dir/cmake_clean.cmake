file(REMOVE_RECURSE
  "CMakeFiles/rb_arithmetic_tour.dir/rb_arithmetic_tour.cpp.o"
  "CMakeFiles/rb_arithmetic_tour.dir/rb_arithmetic_tour.cpp.o.d"
  "rb_arithmetic_tour"
  "rb_arithmetic_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rb_arithmetic_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
