# Empty dependencies file for rb_arithmetic_tour.
# This may be replaced when dependencies are built.
