file(REMOVE_RECURSE
  "librbsim.a"
)
