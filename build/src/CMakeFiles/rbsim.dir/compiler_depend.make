# Empty compiler generated dependencies file for rbsim.
# This may be replaced when dependencies are built.
