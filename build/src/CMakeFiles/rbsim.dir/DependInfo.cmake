
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/rbsim.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/common/stats.cc.o.d"
  "/root/repo/src/common/strutil.cc" "src/CMakeFiles/rbsim.dir/common/strutil.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/common/strutil.cc.o.d"
  "/root/repo/src/core/bypass.cc" "src/CMakeFiles/rbsim.dir/core/bypass.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/core/bypass.cc.o.d"
  "/root/repo/src/core/core.cc" "src/CMakeFiles/rbsim.dir/core/core.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/core/core.cc.o.d"
  "/root/repo/src/core/exec.cc" "src/CMakeFiles/rbsim.dir/core/exec.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/core/exec.cc.o.d"
  "/root/repo/src/core/machine_config.cc" "src/CMakeFiles/rbsim.dir/core/machine_config.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/core/machine_config.cc.o.d"
  "/root/repo/src/core/regfile.cc" "src/CMakeFiles/rbsim.dir/core/regfile.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/core/regfile.cc.o.d"
  "/root/repo/src/core/rename.cc" "src/CMakeFiles/rbsim.dir/core/rename.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/core/rename.cc.o.d"
  "/root/repo/src/core/rob.cc" "src/CMakeFiles/rbsim.dir/core/rob.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/core/rob.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/CMakeFiles/rbsim.dir/core/scheduler.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/core/scheduler.cc.o.d"
  "/root/repo/src/core/scoreboard.cc" "src/CMakeFiles/rbsim.dir/core/scoreboard.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/core/scoreboard.cc.o.d"
  "/root/repo/src/frontend/branch_pred.cc" "src/CMakeFiles/rbsim.dir/frontend/branch_pred.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/frontend/branch_pred.cc.o.d"
  "/root/repo/src/frontend/fetch.cc" "src/CMakeFiles/rbsim.dir/frontend/fetch.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/frontend/fetch.cc.o.d"
  "/root/repo/src/func/interp.cc" "src/CMakeFiles/rbsim.dir/func/interp.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/func/interp.cc.o.d"
  "/root/repo/src/func/mem_image.cc" "src/CMakeFiles/rbsim.dir/func/mem_image.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/func/mem_image.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/CMakeFiles/rbsim.dir/isa/assembler.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/isa/assembler.cc.o.d"
  "/root/repo/src/isa/builder.cc" "src/CMakeFiles/rbsim.dir/isa/builder.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/isa/builder.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/rbsim.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/eval.cc" "src/CMakeFiles/rbsim.dir/isa/eval.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/isa/eval.cc.o.d"
  "/root/repo/src/isa/inst.cc" "src/CMakeFiles/rbsim.dir/isa/inst.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/isa/inst.cc.o.d"
  "/root/repo/src/isa/opclass.cc" "src/CMakeFiles/rbsim.dir/isa/opclass.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/isa/opclass.cc.o.d"
  "/root/repo/src/isa/opcode.cc" "src/CMakeFiles/rbsim.dir/isa/opcode.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/isa/opcode.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/rbsim.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/isa/program.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/rbsim.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/rbsim.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/mem/lsq.cc" "src/CMakeFiles/rbsim.dir/mem/lsq.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/mem/lsq.cc.o.d"
  "/root/repo/src/mem/sam.cc" "src/CMakeFiles/rbsim.dir/mem/sam.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/mem/sam.cc.o.d"
  "/root/repo/src/rb/convert.cc" "src/CMakeFiles/rbsim.dir/rb/convert.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/rb/convert.cc.o.d"
  "/root/repo/src/rb/digit_slice.cc" "src/CMakeFiles/rbsim.dir/rb/digit_slice.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/rb/digit_slice.cc.o.d"
  "/root/repo/src/rb/gatedelay.cc" "src/CMakeFiles/rbsim.dir/rb/gatedelay.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/rb/gatedelay.cc.o.d"
  "/root/repo/src/rb/multiplier.cc" "src/CMakeFiles/rbsim.dir/rb/multiplier.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/rb/multiplier.cc.o.d"
  "/root/repo/src/rb/overflow.cc" "src/CMakeFiles/rbsim.dir/rb/overflow.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/rb/overflow.cc.o.d"
  "/root/repo/src/rb/rbalu.cc" "src/CMakeFiles/rbsim.dir/rb/rbalu.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/rb/rbalu.cc.o.d"
  "/root/repo/src/rb/rbnum.cc" "src/CMakeFiles/rbsim.dir/rb/rbnum.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/rb/rbnum.cc.o.d"
  "/root/repo/src/rb/rsd4.cc" "src/CMakeFiles/rbsim.dir/rb/rsd4.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/rb/rsd4.cc.o.d"
  "/root/repo/src/sim/cosim.cc" "src/CMakeFiles/rbsim.dir/sim/cosim.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/sim/cosim.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/CMakeFiles/rbsim.dir/sim/report.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/sim/report.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/rbsim.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/rbsim.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/sim/trace.cc.o.d"
  "/root/repo/src/workloads/kernels.cc" "src/CMakeFiles/rbsim.dir/workloads/kernels.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/workloads/kernels.cc.o.d"
  "/root/repo/src/workloads/micro.cc" "src/CMakeFiles/rbsim.dir/workloads/micro.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/workloads/micro.cc.o.d"
  "/root/repo/src/workloads/spec2000.cc" "src/CMakeFiles/rbsim.dir/workloads/spec2000.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/workloads/spec2000.cc.o.d"
  "/root/repo/src/workloads/spec95.cc" "src/CMakeFiles/rbsim.dir/workloads/spec95.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/workloads/spec95.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/rbsim.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/rbsim.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
