file(REMOVE_RECURSE
  "CMakeFiles/test_rsd4.dir/test_rsd4.cc.o"
  "CMakeFiles/test_rsd4.dir/test_rsd4.cc.o.d"
  "test_rsd4"
  "test_rsd4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rsd4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
