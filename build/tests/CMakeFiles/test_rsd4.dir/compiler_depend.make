# Empty compiler generated dependencies file for test_rsd4.
# This may be replaced when dependencies are built.
