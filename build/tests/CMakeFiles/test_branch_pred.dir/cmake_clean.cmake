file(REMOVE_RECURSE
  "CMakeFiles/test_branch_pred.dir/test_branch_pred.cc.o"
  "CMakeFiles/test_branch_pred.dir/test_branch_pred.cc.o.d"
  "test_branch_pred"
  "test_branch_pred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_branch_pred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
