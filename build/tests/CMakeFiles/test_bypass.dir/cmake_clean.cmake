file(REMOVE_RECURSE
  "CMakeFiles/test_bypass.dir/test_bypass.cc.o"
  "CMakeFiles/test_bypass.dir/test_bypass.cc.o.d"
  "test_bypass"
  "test_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
