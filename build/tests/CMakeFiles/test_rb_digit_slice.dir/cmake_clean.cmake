file(REMOVE_RECURSE
  "CMakeFiles/test_rb_digit_slice.dir/test_rb_digit_slice.cc.o"
  "CMakeFiles/test_rb_digit_slice.dir/test_rb_digit_slice.cc.o.d"
  "test_rb_digit_slice"
  "test_rb_digit_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rb_digit_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
