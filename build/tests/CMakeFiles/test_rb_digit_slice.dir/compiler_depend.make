# Empty compiler generated dependencies file for test_rb_digit_slice.
# This may be replaced when dependencies are built.
