# Empty compiler generated dependencies file for test_core_structures.
# This may be replaced when dependencies are built.
