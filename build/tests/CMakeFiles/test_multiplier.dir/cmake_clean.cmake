file(REMOVE_RECURSE
  "CMakeFiles/test_multiplier.dir/test_multiplier.cc.o"
  "CMakeFiles/test_multiplier.dir/test_multiplier.cc.o.d"
  "test_multiplier"
  "test_multiplier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiplier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
