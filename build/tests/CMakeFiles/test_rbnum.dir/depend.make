# Empty dependencies file for test_rbnum.
# This may be replaced when dependencies are built.
