file(REMOVE_RECURSE
  "CMakeFiles/test_rbnum.dir/test_rbnum.cc.o"
  "CMakeFiles/test_rbnum.dir/test_rbnum.cc.o.d"
  "test_rbnum"
  "test_rbnum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rbnum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
