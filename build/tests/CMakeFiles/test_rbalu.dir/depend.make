# Empty dependencies file for test_rbalu.
# This may be replaced when dependencies are built.
