file(REMOVE_RECURSE
  "CMakeFiles/test_rbalu.dir/test_rbalu.cc.o"
  "CMakeFiles/test_rbalu.dir/test_rbalu.cc.o.d"
  "test_rbalu"
  "test_rbalu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rbalu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
