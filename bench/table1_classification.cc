/**
 * @file
 * Reproduces paper Table 1: classification of the dynamic instruction
 * stream by input/output data format, measured over all 20 workloads on
 * the reference interpreter (format classification is machine-
 * independent). The paper's reported fractions are printed alongside.
 */

#include <array>
#include <cstdio>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "func/interp.hh"
#include "isa/opclass.hh"
#include "sim/report.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv);

    std::array<std::uint64_t, numTable1Rows> totals{};
    std::uint64_t all = 0;
    for (const WorkloadInfo &w : allWorkloads()) {
        WorkloadParams wp;
        wp.scale = opts.scale;
        const Program p = w.build(wp);
        Interp in(p);
        while (!in.halted()) {
            const StepRecord rec = in.step();
            ++totals[static_cast<unsigned>(table1Row(rec.inst.op))];
            ++all;
        }
    }

    std::printf("%s", banner("Table 1: Instruction Classifications "
                             "(dynamic, all 20 workloads)").c_str());

    // The paper's measured fractions for the Alpha SPEC binaries.
    const std::array<double, numTable1Rows> paper = {
        18.0, 0.4, 0.5, 36.6, 0.5, 3.9, 14.4, 25.7};

    BenchReport report("table1_classification", opts);

    TextTable t;
    t.header({"Instruction class", "measured", "paper"});
    double rb_out = 0, tc_in = 0;
    for (unsigned r = 0; r < numTable1Rows; ++r) {
        const double frac = 100.0 * double(totals[r]) / double(all);
        t.row({table1RowLabel(static_cast<Table1Row>(r)),
               fmtDouble(frac, 1) + "%", fmtDouble(paper[r], 1) + "%"});
        report.addMetric(std::string("pct.") +
                             table1RowLabel(static_cast<Table1Row>(r)),
                         frac);
        const auto row = static_cast<Table1Row>(r);
        if (row == Table1Row::ArithRbRb || row == Table1Row::CmovSign ||
            row == Table1Row::CmovZero) {
            rb_out += frac;
        }
        if (row == Table1Row::Other)
            tc_in += frac;
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("instructions producing RB results: measured %.1f%% "
                "(paper: ~33%% of instructions with register "
                "destinations)\n",
                rb_out);
    std::printf("instructions requiring TC inputs:  measured %.1f%% "
                "(paper: ~25%%)\n\n",
                tc_in);
    std::printf("dynamic instructions classified: %llu\n",
                static_cast<unsigned long long>(all));

    report.addMetric("pct_rb_results", rb_out);
    report.addMetric("pct_tc_inputs", tc_in);
    report.addMetric("dynamic_instructions", double(all));
    report.write();
    return 0;
}
