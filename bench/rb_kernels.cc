/**
 * @file
 * Batched RB kernel micro-benchmark (docs/PERFORMANCE.md §6): host
 * throughput of the SIMD kernel layer (rb/simd/kernels.hh) — batched
 * add, scaled add, the TC conversions, and the multiplier's
 * partial-product reduction — measured for the portable scalar backend
 * and, when dispatch picked one, the SIMD backend, at batch sizes 1
 * through 64.
 *
 * Results go into the shared "rbsim-bench-1" JSON (--json) as synthetic
 * cells: machine = backend name, workload = "<op>@<batch>", sim_khz =
 * kilo lane-operations per second (see bench::throughputCell), which is
 * what the CI --speed-gate lane ratchets against the committed
 * BENCH_rb_kernels.json baseline.
 *
 * RBSIM_FORCE_SCALAR=1 pins dispatch to the portable backend, in which
 * case only the scalar rows are emitted.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/strutil.hh"
#include "rb/simd/kernels.hh"
#include "sim/report.hh"

#include "bench_common.hh"

namespace
{

using namespace rbsim;
using Clock = std::chrono::steady_clock;

constexpr std::size_t maxBatch = 64;
const std::size_t batchSizes[] = {1, 2, 4, 8, 16, 32, 64};

/** Keeps results observable so the kernel loops cannot be elided. */
std::uint64_t g_sink = 0;

struct Operands
{
    std::uint64_t ap[maxBatch], am[maxBatch];
    std::uint64_t bp[maxBatch], bm[maxBatch];
    std::uint64_t sp[maxBatch], sm[maxBatch];
    std::uint64_t w[maxBatch];
    std::uint8_t shift[maxBatch];
    std::uint8_t bogus[maxBatch], ovf[maxBatch];

    explicit Operands(std::uint64_t seed)
    {
        Rng rng(seed);
        for (std::size_t i = 0; i < maxBatch; ++i) {
            ap[i] = rng.next();
            am[i] = rng.next() & ~ap[i];
            bp[i] = rng.next();
            bm[i] = rng.next() & ~bp[i];
            w[i] = rng.next();
            shift[i] = static_cast<std::uint8_t>(rng.below(4));
        }
    }
};

/**
 * Time `body` (one kernel call over `lanes` lanes) until enough wall
 * time has accumulated for a stable rate; returns {lane-ops, seconds}.
 */
template <typename F>
std::pair<std::uint64_t, double>
measure(F &&body, std::size_t lanes)
{
    body(); // warm up: first-touch, dispatch resolution
    constexpr double minSeconds = 0.02;
    std::uint64_t iters = 0;
    const auto t0 = Clock::now();
    double sec = 0.0;
    do {
        for (int rep = 0; rep < 256; ++rep)
            body();
        iters += 256;
        sec = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (sec < minSeconds);
    return {iters * lanes, sec};
}

struct Row
{
    std::string op;
    std::size_t batch;
    double scalarMops = 0.0;
    double simdMops = 0.0;
};

void
runBackend(const simd::KernelOps &k, const std::string &label,
           bench::BenchReport &report, std::vector<Row> &rows,
           bool simdColumn)
{
    Operands data(42);
    std::size_t rowIdx = 0;
    auto record = [&](const char *op, std::size_t n, std::uint64_t ops,
                      double sec) {
        report.addCell(bench::throughputCell(
            label, std::string(op) + "@" + std::to_string(n), ops, sec));
        if (rows.size() <= rowIdx)
            rows.push_back(Row{op, n, 0.0, 0.0});
        (simdColumn ? rows[rowIdx].simdMops : rows[rowIdx].scalarMops) =
            double(ops) / sec / 1e6;
        ++rowIdx;
    };

    for (std::size_t n : batchSizes) {
        const auto [ops, sec] = measure(
            [&] {
                k.addBatch(data.ap, data.am, data.bp, data.bm, data.sp,
                           data.sm, data.bogus, data.ovf, n);
                g_sink ^= data.sp[n - 1];
            },
            n);
        record("add", n, ops, sec);
    }
    for (std::size_t n : batchSizes) {
        const auto [ops, sec] = measure(
            [&] {
                k.scaledAddBatch(data.ap, data.am, data.shift, data.bp,
                                 data.bm, data.sp, data.sm, data.bogus,
                                 data.ovf, n);
                g_sink ^= data.sp[n - 1];
            },
            n);
        record("scaledadd", n, ops, sec);
    }
    for (std::size_t n : batchSizes) {
        const auto [ops, sec] = measure(
            [&] {
                k.fromTcBatch(data.w, data.sp, data.sm, n);
                g_sink ^= data.sp[n - 1];
            },
            n);
        record("fromtc", n, ops, sec);
    }
    for (std::size_t n : batchSizes) {
        const auto [ops, sec] = measure(
            [&] {
                k.toTcBatch(data.ap, data.am, data.w, n);
                g_sink ^= data.w[n - 1];
            },
            n);
        record("totc", n, ops, sec);
    }
    for (std::size_t n : batchSizes) {
        // mulReduce folds its input in place, so each iteration pays a
        // refill memcpy — the same pattern the multiplier runs (fresh
        // partial products each multiply).
        const auto [ops, sec] = measure(
            [&] {
                std::memcpy(data.sp, data.ap, n * sizeof(std::uint64_t));
                std::memcpy(data.sm, data.am, n * sizeof(std::uint64_t));
                g_sink += k.mulReduce(data.sp, data.sm, n);
                g_sink ^= data.sp[0];
            },
            n);
        record("mulreduce", n, ops, sec);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;
    const BenchOptions opts = parseBenchArgs(argc, argv);
    (void)argc;
    (void)argv;

    BenchReport report("rb_kernels", opts);
    std::vector<Row> rows;

    std::printf("%s", banner("Batched RB kernel throughput "
                             "(million lane-ops per second)").c_str());
    runBackend(simd::scalarKernels(), "scalar", report, rows, false);
    const bool have_simd =
        simd::activeBackend() != simd::Backend::Scalar;
    if (have_simd)
        runBackend(simd::kernels(), simd::backendName(), report, rows,
                   true);

    TextTable t;
    t.header(have_simd
                 ? std::vector<std::string>{"kernel", "batch", "scalar",
                                            simd::backendName(),
                                            "speedup"}
                 : std::vector<std::string>{"kernel", "batch", "scalar"});
    for (const Row &r : rows) {
        std::vector<std::string> row{r.op, std::to_string(r.batch),
                                     fmtDouble(r.scalarMops, 1)};
        if (have_simd) {
            row.push_back(fmtDouble(r.simdMops, 1));
            row.push_back(
                fmtDouble(r.scalarMops > 0 ? r.simdMops / r.scalarMops
                                           : 0.0,
                          2) +
                "x");
        }
        t.row(row);
    }
    std::printf("%s", t.render().c_str());
    std::printf("dispatched backend: %s%s\n", simd::backendName(),
                have_simd ? "" : " (no SIMD rows emitted)");
    if (g_sink == 0xdeadbeefcafebabeull)
        std::printf("\n"); // keep g_sink and the kernel loops alive

    report.write();
    return 0;
}
