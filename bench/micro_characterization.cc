/**
 * @file
 * Machine characterization on single-behavior microkernels: isolates
 * where each machine wins and loses (dependent adds: RB ~ Ideal << Base;
 * shift-xor chains: RB loses to Base, the Table 3 conversion cost; pure
 * bandwidth / memory latency / misprediction: all equal). A compact
 * sanity map of the whole timing model.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/micro.hh"

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv);
    const std::vector<MachineConfig> configs =
        filterMachines(paperMachines(8), opts);

    std::printf("%s",
                banner("Microbenchmark characterization (IPC, 8-wide)")
                    .c_str());

    BenchReport report("micro_characterization", opts);

    TextTable t;
    std::vector<std::string> head{"kernel"};
    for (const MachineConfig &cfg : configs)
        head.push_back(cfg.label);
    head.push_back("what it isolates");
    t.header(head);
    for (const WorkloadInfo &w : microWorkloads()) {
        WorkloadParams wp;
        wp.scale = opts.scale;
        const Program p = w.build(wp);
        std::vector<std::string> row{w.name};
        for (const MachineConfig &cfg : configs) {
            SimResult r = simulate(cfg, p);
            row.push_back(fmtDouble(r.ipc(), 3));
            Cell cell;
            cell.machine = cfg.label;
            cell.workload = w.name;
            cell.result = std::move(r);
            report.addCell(cell);
        }
        row.push_back(w.description);
        t.row(row);
        std::fflush(stdout);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("expected: u-depchain separates the adders (Ideal ~ RB "
                ">> Baseline); u-shiftxor inverts it\n(the RB machines "
                "pay the 5-cycle shift-to-TC conversion); u-ilp, "
                "u-chase, u-stld and\nu-branch are adder-insensitive "
                "and come out nearly equal.\n");

    report.write();
    return 0;
}
