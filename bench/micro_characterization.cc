/**
 * @file
 * Machine characterization on single-behavior microkernels: isolates
 * where each machine wins and loses (dependent adds: RB ~ Ideal << Base;
 * shift-xor chains: RB loses to Base, the Table 3 conversion cost; pure
 * bandwidth / memory latency / misprediction: all equal). A compact
 * sanity map of the whole timing model.
 */

#include <cstdio>

#include "common/strutil.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/micro.hh"

int
main()
{
    using namespace rbsim;

    std::printf("%s",
                banner("Microbenchmark characterization (IPC, 8-wide)")
                    .c_str());

    TextTable t;
    t.header({"kernel", "Baseline", "RB-limited", "RB-full", "Ideal",
              "what it isolates"});
    for (const WorkloadInfo &w : microWorkloads()) {
        const Program p = w.build(WorkloadParams{});
        std::vector<std::string> row{w.name};
        for (MachineKind kind : {MachineKind::Baseline,
                                 MachineKind::RbLimited,
                                 MachineKind::RbFull, MachineKind::Ideal}) {
            const SimResult r =
                simulate(MachineConfig::make(kind, 8), p);
            row.push_back(fmtDouble(r.ipc(), 3));
        }
        row.push_back(w.description);
        t.row(row);
        std::fflush(stdout);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("expected: u-depchain separates the adders (Ideal ~ RB "
                ">> Baseline); u-shiftxor inverts it\n(the RB machines "
                "pay the 5-cycle shift-to-TC conversion); u-ilp, "
                "u-chase, u-stld and\nu-branch are adder-insensitive "
                "and come out nearly equal.\n");
    return 0;
}
