/**
 * @file
 * Ablation: cross-cluster forwarding delay on the 8-wide machines.
 *
 * The paper's 8-wide machines are split into two clusters with a 1-cycle
 * forwarding penalty. This bench sweeps the penalty (0 = one flat
 * cluster's timing, 1 = paper, 2 = slower interconnect) on the Ideal and
 * RB-full machines, showing how clustering interacts with the adder
 * latency advantage (the Figure 14 discussion notes 4-wide No-1,2
 * beating 8-wide No-1,2 because of clustering).
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/stats.hh"
#include "common/strutil.hh"
#include "sim/report.hh"

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv);

    std::printf("%s",
                banner("Ablation: cross-cluster forwarding delay, 8-wide"
                       " (hmean IPC, all 20 benchmarks)").c_str());

    BenchReport report("ablation_cluster", opts);

    TextTable t;
    t.header({"machine", "delay 0", "delay 1 (paper)", "delay 2"});
    for (MachineKind kind : {MachineKind::Ideal, MachineKind::RbFull,
                             MachineKind::Baseline}) {
        std::vector<std::string> row{machineName(kind)};
        for (unsigned delay : {0u, 1u, 2u}) {
            MachineConfig cfg = MachineConfig::make(kind, 8);
            cfg.crossClusterDelay = delay;
            cfg.label += " delay-" + std::to_string(delay);
            const auto cells = sweepAll({cfg}, opts.scale);
            std::vector<double> ipcs;
            for (const Cell &c : cells)
                ipcs.push_back(c.result.ipc());
            row.push_back(fmtDouble(harmonicMean(ipcs), 3));
            report.addCells(cells);
        }
        t.row(row);
        std::fflush(stdout);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("expected: the faster the adders, the more the extra "
                "forwarding cycle costs relative to execution latency.\n");

    report.write();
    return 0;
}
