/**
 * @file
 * Reproduces paper Figure 14: harmonic-mean IPC of the Ideal machine
 * with limited bypass networks over all 20 benchmarks, for the 4-wide
 * and 8-wide machines. Configurations: full, No-1, No-2, No-3, No-1,2,
 * No-2,3 (removing level k removes availability k-1 cycles after first
 * production; the register file serves from 3 cycles after).
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/stats.hh"
#include "common/strutil.hh"
#include "sim/report.hh"

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv);

    struct Variant
    {
        const char *name;
        std::uint8_t mask;
    };
    const Variant variants[] = {
        {"full", 0b111}, {"No-1", 0b110}, {"No-2", 0b101},
        {"No-3", 0b011}, {"No-1,2", 0b100}, {"No-2,3", 0b001},
    };

    std::printf("%s",
                banner("Figure 14: IPC with limited bypass networks "
                       "(Ideal machine, harmonic mean of all 20 "
                       "benchmarks)").c_str());

    BenchReport report("fig14_limited_bypass", opts);

    TextTable t;
    t.header({"config", "4-wide hmean IPC", "8-wide hmean IPC"});
    std::vector<std::vector<double>> table_vals;
    for (const Variant &v : variants) {
        std::vector<double> row_vals;
        for (unsigned width : {4u, 8u}) {
            MachineConfig cfg =
                MachineConfig::makeIdealLimited(width, v.mask);
            // Width in the label keeps the JSON's (machine, workload)
            // cells distinct across the two sweeps.
            cfg.label += " " + std::to_string(width) + "w";
            const auto cells = sweepAll({cfg}, opts.scale);
            std::vector<double> ipcs;
            for (const Cell &c : cells)
                ipcs.push_back(c.result.ipc());
            row_vals.push_back(harmonicMean(ipcs));
            report.addCells(cells);
        }
        table_vals.push_back(row_vals);
        t.row({v.name, fmtDouble(row_vals[0], 3),
               fmtDouble(row_vals[1], 3)});
        std::fflush(stdout);
    }
    std::printf("%s\n", t.render().c_str());

    // Bars, grouped like the paper's figure.
    double full8 = table_vals[0][1];
    for (std::size_t i = 0; i < std::size(variants); ++i) {
        std::printf("  %-7s 4w |%s| %.3f\n", variants[i].name,
                    textBar(table_vals[i][0], full8, 40).c_str(),
                    table_vals[i][0]);
        std::printf("          8w |%s| %.3f\n",
                    textBar(table_vals[i][1], full8, 40).c_str(),
                    table_vals[i][1]);
    }
    std::printf("\nexpected shape (paper): removing level 1 hurts most "
                "(first-level paths serve 51-70%% of bypassed operands); "
                "one level can be removed while staying within 3%%-1%% "
                "of the full network; the 4-wide No-1,2 machine "
                "outperforms the 8-wide No-1,2 machine.\n");

    report.write();
    return 0;
}
