/**
 * @file
 * Reproduces the paper's section 5.2 bypass-usage measurement: "In the
 * Ideal machine, 21% to 38% of the instructions did not receive any
 * sources off of the bypass network, 51% to 70% retrieved a source
 * operand from the first-level bypass bus, and 5% to 14% of the
 * instructions received a source operand from another bypass path."
 *
 * Classification here follows the last-arriving operand of each retired
 * instruction (the one that gated execution): slot 0 = first-level
 * bypass, slots 1-2 = other bypass levels, slot >= 3 or no tracked
 * operand = register file / none.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "sim/report.hh"

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv);
    const std::vector<MachineConfig> configs = filterMachines(
        {MachineConfig::make(MachineKind::Ideal, 8)}, opts);
    const auto cells = sweepAll(configs, opts.scale);

    std::printf("%s",
                banner("Section 5.2: where last-arriving operands come "
                       "from (Ideal, 8-wide)").c_str());

    TextTable t;
    t.header({"benchmark", "no bypass source", "first-level bypass",
              "other bypass level"});
    double min_first = 100, max_first = 0;
    for (const Cell &c : cells) {
        const auto &slots = c.result.vec("bypass.slot");
        const double retired =
            double(c.result.counter("core.retired"));
        const double first = 100.0 * slots[0] / retired;
        const double other = 100.0 * (slots[1] + slots[2]) / retired;
        const double none = 100.0 - first - other;
        min_first = std::min(min_first, first);
        max_first = std::max(max_first, first);
        t.row({c.workload, fmtDouble(none, 1) + "%",
               fmtDouble(first, 1) + "%", fmtDouble(other, 1) + "%"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("first-level share across the suite: %.0f%%-%.0f%%\n",
                min_first, max_first);
    std::printf("paper: 21%%-38%% no bypass source, 51%%-70%% "
                "first-level, 5%%-14%% another bypass path — the heavy "
                "first-level skew is why removing BYP-1 hurts most in "
                "Figure 14.\n");

    BenchReport report("bypass_slot_usage", opts);
    report.addCells(cells);
    report.addMetric("first_level_min_pct", min_first);
    report.addMetric("first_level_max_pct", max_first);
    report.write();
    return 0;
}
