/**
 * @file
 * Adder delay study (paper section 3.4): prints the unit-gate critical-
 * path model — redundant binary constant depth versus logarithmic CLA
 * and linear ripple growth, plus the converter cost — and then measures
 * host throughput of the arithmetic library's software models with
 * google-benchmark (bit-parallel adder, gate-level digit-slice chain,
 * normalization, conversions).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/rng.hh"
#include "rb/convert.hh"
#include "rb/digit_slice.hh"
#include "rb/carry_save.hh"
#include "rb/gatedelay.hh"
#include "rb/multiplier.hh"
#include "rb/rsd4.hh"
#include "rb/rbalu.hh"
#include "sim/report.hh"

#include "bench_common.hh"

namespace
{

using namespace rbsim;

void
printGateModel()
{
    std::printf("%s",
                banner("Section 3.4: adder critical-path model "
                       "(unit gate delays)").c_str());
    TextTable t;
    t.header({"width", "ripple", "CLA(r4)", "CSA", "RB adder", "SD(r4)",
              "RB->TC conv", "CLA/RB"});
    for (unsigned w : {8u, 16u, 32u, 64u, 128u}) {
        t.row({std::to_string(w), std::to_string(rippleAdderDepth(w)),
               std::to_string(claAdderDepth(w)),
               std::to_string(csaLevelDepth()),
               std::to_string(rbAdderDepth(w)),
               std::to_string(rsd4AdderDepth(w)),
               std::to_string(converterDepth(w)),
               std::to_string(double(claAdderDepth(w)) /
                              rbAdderDepth(w)).substr(0, 4)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("multiplier reduction tree (64x64): digit-direct %u "
                "levels deep, Booth-recoded %u (unit gates)\n",
                rbMulTreeDepth(64, false), rbMulTreeDepth(64, true));
    std::printf("paper: RB adder ~3x faster than a 64-bit CLA and ~2.7x "
                "faster than the RB->TC converter (Makino et al.); the "
                "RB depth is width-independent.\n");
    std::printf("staggered 2-stage adder per-stage depth (64-bit): %u "
                "(not half a full add: pipelining helps the clock, not "
                "the latency)\n\n",
                staggeredStageDepth(64));
}

void
BM_RbAddBitParallel(benchmark::State &state)
{
    Rng rng(7);
    RbNum a = RbNum::fromTc(rng.next());
    const RbNum b = RbNum::fromTc(rng.next());
    for (auto _ : state) {
        a = rbAdd(a, b).sum;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_RbAddBitParallel);

void
BM_RbAddDigitSliceChain(benchmark::State &state)
{
    Rng rng(8);
    RbNum a = RbNum::fromTc(rng.next());
    const RbNum b = RbNum::fromTc(rng.next());
    for (auto _ : state) {
        const RbRawSum raw = addBySlices(a, b);
        a = normalizeQuad(raw.digits, raw.carryOut).value;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_RbAddDigitSliceChain);

void
BM_TcToRbHardwired(benchmark::State &state)
{
    Rng rng(9);
    Word w = rng.next();
    for (auto _ : state) {
        RbNum x = tcToRb(w);
        benchmark::DoNotOptimize(x);
        w += 0x9e3779b9;
    }
}
BENCHMARK(BM_TcToRbHardwired);

void
BM_RbToTcConversion(benchmark::State &state)
{
    Rng rng(10);
    const RbNum x = rbAdd(RbNum::fromTc(rng.next()),
                          RbNum::fromTc(rng.next())).sum;
    for (auto _ : state) {
        Word w = rbToTc(x);
        benchmark::DoNotOptimize(w);
    }
}
BENCHMARK(BM_RbToTcConversion);

void
BM_RbToTcRippleModel(benchmark::State &state)
{
    Rng rng(11);
    const RbNum x = rbAdd(RbNum::fromTc(rng.next()),
                          RbNum::fromTc(rng.next())).sum;
    for (auto _ : state) {
        Word w = rbToTcRipple(x);
        benchmark::DoNotOptimize(w);
    }
}
BENCHMARK(BM_RbToTcRippleModel);

void
BM_SignTestMsdScan(benchmark::State &state)
{
    Rng rng(12);
    RbNum x = rbAdd(RbNum::fromTc(rng.next()),
                    RbNum::fromTc(rng.next())).sum;
    for (auto _ : state) {
        bool neg = x.signNegative();
        benchmark::DoNotOptimize(neg);
    }
}
BENCHMARK(BM_SignTestMsdScan);

/**
 * Host-throughput cells for the JSON dump: the CI --speed-gate lane
 * ratchets these against the committed baseline (the google-benchmark
 * run below stays human-facing). One cell per software model, machine
 * "hostmodel", sim_khz = kilo-operations per second.
 */
void
addThroughputCells(bench::BenchReport &report)
{
    using Clock = std::chrono::steady_clock;
    auto time = [](auto &&body) -> std::pair<std::uint64_t, double> {
        body();
        std::uint64_t iters = 0;
        const auto t0 = Clock::now();
        double sec = 0.0;
        do {
            for (int rep = 0; rep < 4096; ++rep)
                body();
            iters += 4096;
            sec = std::chrono::duration<double>(Clock::now() - t0)
                      .count();
        } while (sec < 0.02);
        return {iters, sec};
    };

    Rng rng(21);
    RbNum a = RbNum::fromTc(rng.next());
    const RbNum b = RbNum::fromTc(rng.next());
    Word w = rng.next();

    {
        const auto [ops, sec] = time([&] {
            a = rbAdd(a, b).sum;
            benchmark::DoNotOptimize(a);
        });
        report.addCell(
            bench::throughputCell("hostmodel", "rbadd", ops, sec));
    }
    {
        const auto [ops, sec] = time([&] {
            const RbRawSum raw = addBySlices(a, b);
            a = normalizeQuad(raw.digits, raw.carryOut).value;
            benchmark::DoNotOptimize(a);
        });
        report.addCell(
            bench::throughputCell("hostmodel", "slicechain", ops, sec));
    }
    {
        const auto [ops, sec] = time([&] {
            RbNum x = tcToRb(w);
            benchmark::DoNotOptimize(x);
            w += 0x9e3779b9;
        });
        report.addCell(
            bench::throughputCell("hostmodel", "tctorb", ops, sec));
    }
    {
        const auto [ops, sec] = time([&] {
            Word v = rbToTc(a);
            benchmark::DoNotOptimize(v);
        });
        report.addCell(
            bench::throughputCell("hostmodel", "rbtotc", ops, sec));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rbsim::bench;
    // Take the shared flags first; whatever is left belongs to
    // google-benchmark (e.g. --benchmark_filter).
    const BenchOptions opts = parseBenchArgs(argc, argv);
    printGateModel();

    BenchReport report("adder_delay", opts);
    addThroughputCells(report);
    for (unsigned w : {8u, 16u, 32u, 64u, 128u}) {
        const std::string suffix = "." + std::to_string(w);
        report.addMetric("depth.ripple" + suffix, rippleAdderDepth(w));
        report.addMetric("depth.cla" + suffix, claAdderDepth(w));
        report.addMetric("depth.rb" + suffix, rbAdderDepth(w));
        report.addMetric("depth.rsd4" + suffix, rsd4AdderDepth(w));
        report.addMetric("depth.converter" + suffix, converterDepth(w));
    }
    report.addMetric("depth.csa", csaLevelDepth());
    report.addMetric("depth.staggered_stage.64", staggeredStageDepth(64));
    report.write();

    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
