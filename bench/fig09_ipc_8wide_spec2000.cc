/**
 * @file
 * Reproduces paper Figure 9: IPC of the 8-wide Baseline, RB-limited,
 * RB-full, and Ideal machines on the SPECint2000(-like) benchmarks.
 */

#include "bench_common.hh"

int
main()
{
    using namespace rbsim;
    using namespace rbsim::bench;
    const auto configs = paperMachines(8);
    const auto cells = sweepSuite(configs, "spec2000");
    printIpcFigure("Figure 9: IPC, 8-wide machines, SPECint2000-like",
                   configs, cells, suiteWorkloads("spec2000"));
    printHeadline(configs, cells,
                  "RB-full +7% vs Baseline, within 1.1% of Ideal; "
                  "RB-limited within 2% of RB-full");
    return 0;
}
