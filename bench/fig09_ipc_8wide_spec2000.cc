/**
 * @file
 * Reproduces paper Figure 9: IPC of the 8-wide Baseline, RB-limited,
 * RB-full, and Ideal machines on the SPECint2000(-like) benchmarks.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const auto configs = filterMachines(paperMachines(8), opts);
    const auto cells = sweepSuite(configs, "spec2000", opts.scale);
    printIpcFigure("Figure 9: IPC, 8-wide machines, SPECint2000-like",
                   configs, cells, suiteWorkloads("spec2000"));
    printHeadline(configs, cells,
                  "RB-full +7% vs Baseline, within 1.1% of Ideal; "
                  "RB-limited within 2% of RB-full");
    BenchReport report("fig09_ipc_8wide_spec2000", opts);
    report.addCells(cells);
    report.write();
    return 0;
}
