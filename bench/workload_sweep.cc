/**
 * @file
 * Sweep of the generated workloads (src/workloads/gen): zipfian key
 * access across a skew range, self-similar/uniform key access, the
 * three pointer-chase working-set levels, the branch-entropy sweep, and
 * the RB-adversarial shift->logical mode — on the paper's machine grid.
 *
 * Beyond the shared bench flags (bench_common.hh):
 *   --skews <csv>     zipfian skew points (default 0.5,0.6,...,0.99)
 *   --presets <csv>   sweep exactly these generator presets instead of
 *                     the default set (names per gen::genPreset: ycsb-a
 *                     .. ycsb-f, uniform, zipf-<s>, selfsim-<h>,
 *                     chase-dl1/l2/mem, branch-<r>, rb-adversarial)
 *   --width <n>       machine width (default 8)
 *
 * The locality table makes the acceptance property visible: the zipfian
 * skew sweep must produce monotonically falling DL1 miss rates (rising
 * key reuse) as skew grows.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/strutil.hh"
#include "sim/report.hh"
#include "workloads/gen/opstream.hh"

namespace
{

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start < csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > start)
            out.push_back(csv.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;
    const BenchOptions opts = parseBenchArgs(argc, argv);

    std::vector<double> skews;
    std::vector<std::string> presets;
    unsigned width = 8;
    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--skews") == 0) {
            for (const std::string &s : splitCsv(value("--skews")))
                skews.push_back(std::stod(s));
        } else if (std::strcmp(argv[i], "--presets") == 0) {
            presets = splitCsv(value("--presets"));
        } else if (std::strcmp(argv[i], "--width") == 0) {
            width = static_cast<unsigned>(
                std::strtoul(value("--width"), nullptr, 10));
        } else {
            std::fprintf(stderr,
                         "unknown flag %s (see workload_sweep.cc)\n",
                         argv[i]);
            return 2;
        }
    }

    std::vector<gen::GenConfig> genConfigs;
    if (!presets.empty()) {
        for (const std::string &p : presets)
            genConfigs.push_back(gen::genPreset(p));
    } else {
        genConfigs = gen::genSweepConfigs(skews);
    }
    std::vector<WorkloadInfo> workloads;
    for (const gen::GenConfig &c : genConfigs)
        workloads.push_back(gen::genWorkloadInfo(c));

    const auto configs = filterMachines(paperMachines(width), opts);
    const auto cells = sweepWorkloads(configs, workloads, opts.scale);

    printIpcFigure("Generated-workload sweep, " + std::to_string(width) +
                       "-wide machines",
                   configs, cells, workloads);

    // Locality/entropy per workload, from the first machine's cells
    // (cache geometry is identical across the grid).
    TextTable loc;
    loc.header({"workload", "dl1 access", "dl1 miss%", "l2 miss%",
                "br accuracy"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const SimResult &r = cells[w * configs.size()].result;
        const auto miss = [&r](const char *grp) {
            const double acc =
                double(r.counter(std::string(grp) + ".accesses"));
            return acc > 0
                ? 100.0 * double(r.counter(std::string(grp) + ".misses")) /
                      acc
                : 0.0;
        };
        loc.row({workloads[w].name,
                 std::to_string(r.counter("dl1.accesses")),
                 fmtDouble(miss("dl1"), 1), fmtDouble(miss("l2"), 1),
                 fmtDouble(r.branchAccuracy(), 3)});
    }
    std::printf("Locality and branch behaviour (%s):\n%s\n",
                configs.front().label.c_str(), loc.render().c_str());

    BenchReport report("workload_sweep", opts);
    report.addCells(cells);
    report.write();
    return 0;
}
