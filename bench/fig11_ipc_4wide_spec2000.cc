/**
 * @file
 * Reproduces paper Figure 11: IPC of the 4-wide machines on the
 * SPECint2000(-like) benchmarks. The paper's point: with less execution
 * bandwidth, fast adders matter less, so all gaps shrink versus the
 * 8-wide machines of Figure 9.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const auto configs = filterMachines(paperMachines(4), opts);
    const auto cells = sweepSuite(configs, "spec2000", opts.scale);
    printIpcFigure("Figure 11: IPC, 4-wide machines, SPECint2000-like",
                   configs, cells, suiteWorkloads("spec2000"));
    printHeadline(configs, cells,
                  "RB-full +5% vs Baseline, within 0.5% of Ideal; "
                  "RB-limited within 2.3% of RB-full");
    BenchReport report("fig11_ipc_4wide_spec2000", opts);
    report.addCells(cells);
    report.write();
    return 0;
}
