/**
 * @file
 * Shared sweep machinery for the figure/table reproduction binaries:
 * runs (machine, workload) grids in parallel and prints IPC tables in
 * the layout of the paper's figures.
 */

#ifndef RBSIM_BENCH_COMMON_HH
#define RBSIM_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace rbsim::bench
{

/** One (machine, workload) cell of a sweep. */
struct Cell
{
    std::string machine;
    std::string workload;
    SimResult result;
};

/**
 * Simulate every workload of `suite` on every config, in parallel.
 * Results are ordered workload-major, matching the input orders.
 * Co-simulation stays enabled: every cell is architecturally verified.
 */
std::vector<Cell> sweepSuite(const std::vector<MachineConfig> &configs,
                             const std::string &suite,
                             unsigned scale = 1);

/** Like sweepSuite over both suites (all 20 benchmarks). */
std::vector<Cell> sweepAll(const std::vector<MachineConfig> &configs,
                           unsigned scale = 1);

/**
 * Print a per-benchmark IPC table (benchmarks as rows, machines as
 * columns) followed by harmonic and arithmetic means, the layout of the
 * paper's Figures 9-12.
 */
void printIpcFigure(const std::string &title,
                    const std::vector<MachineConfig> &configs,
                    const std::vector<Cell> &cells,
                    const std::vector<WorkloadInfo> &workloads);

/** The paper's four machines at a width, in figure order. */
std::vector<MachineConfig> paperMachines(unsigned width);

/**
 * Print the headline comparisons for a 4-machine sweep (Baseline,
 * RB-limited, RB-full, Ideal) next to the numbers the paper reports for
 * this figure.
 * @param paper_note the paper's claim, printed verbatim for comparison
 */
void printHeadline(const std::vector<MachineConfig> &configs,
                   const std::vector<Cell> &cells,
                   const std::string &paper_note);

} // namespace rbsim::bench

#endif // RBSIM_BENCH_COMMON_HH
