/**
 * @file
 * Shared sweep machinery for the figure/table reproduction binaries:
 * runs (machine, workload) grids in parallel, prints IPC tables in the
 * layout of the paper's figures, and dumps machine-readable JSON results
 * (`--json <path>`) for scripts/bench_diff.py.
 */

#ifndef RBSIM_BENCH_COMMON_HH
#define RBSIM_BENCH_COMMON_HH

#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/sampling.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace rbsim::bench
{

/** One (machine, workload) cell of a sweep. */
struct Cell
{
    std::string machine;
    std::string workload;
    SimResult result;
    //! Host-time per-stage profile (filled only under --profile).
    HostProfiler profiler;
    bool profiled = false;
    //! Sampled cells (bench/sampled_sweep): IPC is the mean over the
    //! measured windows with a 95% CI half-width; the JSON cell gains
    //! "sampled"/"ci95"/"windows" and scripts/bench_diff.py switches
    //! that cell from the exact gate to the CI-overlap gate.
    bool sampled = false;
    double sampledIpc = 0.0;
    double ci95 = 0.0;
    std::uint64_t windows = 0;
};

/** A sampled-campaign cell (result.stats carries the merged windows). */
Cell sampledCell(const SampledResult &sampled);

/** The cell's headline IPC: mean-of-windows for sampled cells, the
 * core.ipc formula otherwise. */
double cellIpc(const Cell &cell);

/**
 * Options every bench binary accepts:
 *   --json <path>     dump a structured result file (schema
 *                     "rbsim-bench-1") next to the text output
 *   --scale <n>       workload scale factor (default 1)
 *   --machines <csv>  comma-separated machine labels to keep
 *                     (e.g. "Baseline,RB-full"); default all
 *   --scheduler <m>   scheduler select mechanism: "wakeup" (default,
 *                     event-driven bitset array), "polled" (the original
 *                     per-cycle operand scan), or "oracle" (wakeup with
 *                     the polled model co-simulated every cycle as a
 *                     cross-check)
 *   --trace <prefix>  write an O3PipeView pipeline trace per sweep cell
 *                     to "<prefix>.<machine>.<workload>.trace" (load in
 *                     Konata); slow — meant for single-cell grids
 *   --trace-last <n>  ring-buffer the last n instructions per cell and
 *                     dump the ring of a failing cell (cosim mismatch or
 *                     non-halt) to "<prefix>.<machine>.<workload>.trace"
 *                     ("rbsim-bench-fail" prefix when --trace not given)
 *   --profile         host-time profiling: per-stage wall time (fetch /
 *                     dispatch / select / exec / lsq / commit / cosim /
 *                     flush) and heap-allocation counts per cell, printed
 *                     as a table and embedded in the JSON dump (the
 *                     allocation counter needs the rbsim-allochook
 *                     library, which the bench binaries link)
 *   --server <h:p>    submit the sweep to a running rbsim-serve instance
 *                     instead of simulating in-process (docs/SERVING.md);
 *                     incompatible with --trace/--trace-last/--profile,
 *                     whose artifacts are host-side
 */
struct BenchOptions
{
    std::string jsonPath;
    unsigned scale = 1;
    std::vector<std::string> machines;
    std::string scheduler = "wakeup";
    std::string tracePrefix;
    std::size_t traceLast = 0;
    bool profile = false;
    std::string server; //!< host:port of an rbsim-serve; empty = local
};

/**
 * Parse and REMOVE the shared bench flags from argv (so leftovers can be
 * forwarded, e.g. to google-benchmark). Exits with a usage message on a
 * malformed flag.
 */
BenchOptions parseBenchArgs(int &argc, char **argv);

/** Keep only the configs whose label is listed in `opts.machines`
 *  (all of them when the filter is empty). */
std::vector<MachineConfig>
filterMachines(std::vector<MachineConfig> configs,
               const BenchOptions &opts);

/**
 * Accumulates cells and scalar metrics and writes the JSON dump on
 * destruction-free explicit write(). Every bench funnels its results
 * through one of these so all dumps share one schema:
 *
 *   { "schema": "rbsim-bench-1", "bench": ..., "scale": ...,
 *     "scheduler": "wakeup"|"polled"|"oracle",
 *     "machines": [...],
 *     "cells": [ {machine, workload, ipc, host_ms, sim_khz,
 *                 stats:{counters,formulas,vectors}} ],
 *     "summary": { "hmean_ipc": {machine: value},
 *                  "hmean_sim_khz": {machine: value},
 *                  "metrics": {...} } }
 */
class BenchReport
{
  public:
    BenchReport(std::string bench, BenchOptions opts);

    void addCell(const Cell &cell);
    void addCells(const std::vector<Cell> &cells);
    /** A named scalar that isn't tied to one cell (e.g. a gate depth). */
    void addMetric(const std::string &name, double value);

    /** Write the dump if --json was given; no-op otherwise. */
    void write() const;

  private:
    std::string bench;
    BenchOptions opts;
    std::vector<Cell> cells; //!< owned copies; cheap next to a sim run
    std::vector<std::pair<std::string, double>> metrics;
};

/**
 * A synthetic cell carrying a host-throughput measurement through the
 * "rbsim-bench-1" schema: `sim_khz` becomes kilo-operations per second
 * (ops / seconds / 1e3 via the core.cycles counter) and `ipc` is pinned
 * to 1.0, so scripts/bench_diff.py gates the throughput with
 * --speed-gate unmodified while its IPC gate stays inert. Used by the
 * arithmetic micro-benches (rb_kernels, adder_delay), whose cells have
 * no simulation behind them.
 */
Cell throughputCell(const std::string &machine,
                    const std::string &workload, std::uint64_t ops,
                    double seconds);

/**
 * Simulate every workload of `suite` on every config, in parallel.
 * Results are ordered workload-major, matching the input orders.
 * Co-simulation stays enabled: every cell is architecturally verified.
 *
 * Every sweep goes through the process-wide serve::SimService (the
 * shared WorkQueue worker pool with warm reset-in-place simulators), or
 * over the wire to an rbsim-serve instance under --server.
 */
std::vector<Cell> sweepSuite(const std::vector<MachineConfig> &configs,
                             const std::string &suite,
                             unsigned scale = 1);

/** Like sweepSuite over both suites (all 20 benchmarks). */
std::vector<Cell> sweepAll(const std::vector<MachineConfig> &configs,
                           unsigned scale = 1);

/** Sweep an explicit workload list (e.g. generator-backed entries from
 * gen::genWorkloadInfo) through the same service/remote machinery. */
std::vector<Cell>
sweepWorkloads(const std::vector<MachineConfig> &configs,
               const std::vector<WorkloadInfo> &workloads,
               unsigned scale = 1);

/**
 * Print a per-benchmark IPC table (benchmarks as rows, machines as
 * columns) followed by harmonic and arithmetic means, the layout of the
 * paper's Figures 9-12, and close with a per-stage cycle-accounting
 * table (retire/fetch idle, icache stalls, hole waits, issue wait).
 */
void printIpcFigure(const std::string &title,
                    const std::vector<MachineConfig> &configs,
                    const std::vector<Cell> &cells,
                    const std::vector<WorkloadInfo> &workloads);

/** The paper's four machines at a width, in figure order. */
std::vector<MachineConfig> paperMachines(unsigned width);

/**
 * Print the headline comparisons for a 4-machine sweep (Baseline,
 * RB-limited, RB-full, Ideal) next to the numbers the paper reports for
 * this figure. Skipped when --machines trimmed the grid.
 * @param paper_note the paper's claim, printed verbatim for comparison
 */
void printHeadline(const std::vector<MachineConfig> &configs,
                   const std::vector<Cell> &cells,
                   const std::string &paper_note);

} // namespace rbsim::bench

#endif // RBSIM_BENCH_COMMON_HH
