/**
 * @file
 * Prints paper Table 2 (machine configuration) and reproduces paper
 * Table 3 (instruction-class latencies per machine) directly from the
 * MachineConfig latency model, so the configuration driving every other
 * experiment is visible and auditable.
 */

#include <cstdio>

#include "bench_common.hh"

#include "core/machine_config.hh"
#include "sim/report.hh"

int
main(int argc, char **argv)
{
    using namespace rbsim;
    using namespace rbsim::bench;

    const BenchOptions opts = parseBenchArgs(argc, argv);
    BenchReport report("table3_latencies", opts);

    const MachineConfig base = MachineConfig::make(MachineKind::Baseline, 8);
    const MachineConfig rb = MachineConfig::make(MachineKind::RbFull, 8);
    const MachineConfig ideal = MachineConfig::make(MachineKind::Ideal, 8);

    std::printf("%s", banner("Table 2: Machine Configuration").c_str());
    TextTable t2;
    t2.header({"parameter", "value"});
    t2.row({"branch predictor",
            "48KB hybrid gshare/PAs, 4096-entry BTB, 16-entry RAS"});
    t2.row({"fetch", "2 basic blocks per cycle, 8 instructions"});
    t2.row({"decode/rename/issue width", "8 instructions"});
    t2.row({"instruction cache", "64KB 4-way, 2-cycle, pipelined"});
    t2.row({"instruction window",
            "128 RS entries (select-2 schedulers: 2x64 or 4x32)"});
    t2.row({"execution width", "4 or 8 functional units"});
    t2.row({"clusters (8-wide)", "2, +1 cycle cross-cluster forwarding"});
    t2.row({"data cache", "8KB 2-way, 2-cycle, pipelined"});
    t2.row({"unified L2", "1MB 8-way, 8-cycle, 2 banks with contention"});
    t2.row({"memory", "100-cycle, 32 banks with contention"});
    t2.row({"pipeline minimum", "13 cycles (6 fetch/decode + 2 rename + "
            "1 schedule + 2 RF + 1 EX + 1 retire)"});
    std::printf("%s\n", t2.render().c_str());

    std::printf("%s", banner("Table 3: Instruction Class Latencies").c_str());
    TextTable t3;
    t3.header({"Instruction class", "Base", "RB (TC result)", "Ideal"});
    const OpClass rows[] = {
        OpClass::IntArith, OpClass::IntLogical, OpClass::ShiftLeft,
        OpClass::ShiftRight, OpClass::IntCompare, OpClass::ByteManip,
        OpClass::IntMul, OpClass::FpArith, OpClass::FpDiv,
        OpClass::Load, OpClass::Store,
    };
    for (OpClass cls : rows) {
        const LatencyPair b = base.latencyOf(cls);
        const LatencyPair r = rb.latencyOf(cls);
        const LatencyPair i = ideal.latencyOf(cls);
        std::string rbs = std::to_string(r.early);
        if (r.late != r.early)
            rbs += " (" + std::to_string(r.late) + ")";
        if (cls == OpClass::Store && rb.storeCompleteLat != 1)
            rbs += " [" + std::to_string(rb.storeCompleteLat) +
                   " for stores]";
        t3.row({opClassName(cls), std::to_string(b.early), rbs,
                std::to_string(i.early)});
        const std::string key = opClassName(cls);
        report.addMetric("latency.base." + key, b.early);
        report.addMetric("latency.rb_early." + key, r.early);
        report.addMetric("latency.rb_late." + key, r.late);
        report.addMetric("latency.ideal." + key, i.early);
    }
    t3.row({"dcache latency", "2", "2", "2"});
    std::printf("%s\n", t3.render().c_str());
    std::printf("RB machines resolve conditional branches with the "
                "1-cycle compare (Baseline: 2 cycles).\n");
    report.write();
    return 0;
}
